#include "core/shift.h"

#include <gtest/gtest.h>

#include <atomic>

#include "core/cell_array.h"
#include "core/exchange.h"
#include "simmpi/cart.h"

namespace brickx {
namespace {

using mpi::Cart;
using mpi::Comm;
using mpi::NetModel;
using mpi::Runtime;

double gval(Vec3 g, const Vec3& ext) {
  for (int a = 0; a < 3; ++a) g[a] = ((g[a] % ext[a]) + ext[a]) % ext[a];
  return static_cast<double>((g[2] * ext[1] + g[1]) * ext[0] + g[0]) + 0.5;
}

// Full ghost validation for the Shift exchange on a periodic rank grid.
std::int64_t run_shift(int nranks, std::int64_t domain, std::int64_t brick,
                       std::int64_t ghost) {
  Runtime rt(nranks, NetModel{});
  std::atomic<std::int64_t> msgs{-1};
  rt.run([&](Comm& comm) {
    const Vec3 dims = mpi::dims_create<3>(comm.size());
    Cart<3> cart(comm, dims);
    const Vec3 N = Vec3::fill(domain);
    const Vec3 ext = dims * N;
    BrickDecomp<3> dec(N, ghost, Vec3::fill(brick), surface3d());
    BrickStorage store = dec.allocate(1);
    const Vec3 off = cart.coords() * N;
    CellArray3 own(Box<3>{{0, 0, 0}, N});
    for_each(own.box(), [&](const Vec3& p) { own.at(p) = gval(p + off, ext); });
    cells_to_bricks(dec, own, store, 0);

    ShiftExchanger<3> sh(dec, store, shift_neighbors(cart));
    sh.exchange(comm);

    const Vec3 G = Vec3::fill(ghost);
    CellArray3 frame(Box<3>{Vec3{0, 0, 0} - G, N + G});
    bricks_to_cells(dec, store, 0, frame);
    std::int64_t bad = 0;
    for_each(frame.box(), [&](const Vec3& p) {
      if (frame.at(p) != gval(p + off, ext)) ++bad;
    });
    EXPECT_EQ(bad, 0) << "rank " << comm.rank();
    const std::int64_t prev = msgs.exchange(sh.send_message_count());
    EXPECT_TRUE(prev == -1 || prev == sh.send_message_count());
  });
  return msgs.load();
}

TEST(Shift, FillsEveryGhostIncludingCornersEightRanks) {
  // Corners arrive via forwarding through face neighbors — the defining
  // behaviour of Shift.
  EXPECT_GT(run_shift(8, 16, 4, 4), 0);
}

TEST(Shift, PaperConfiguration) { EXPECT_GT(run_shift(8, 32, 8, 8), 0); }

TEST(Shift, WorksOnNonCubicGridsAndOddCounts) {
  EXPECT_GT(run_shift(12, 16, 4, 4), 0);
  EXPECT_GT(run_shift(3, 16, 4, 4), 0);
  EXPECT_GT(run_shift(1, 16, 4, 4), 0);  // self-exchange
}

TEST(Shift, MinimalSubdomain) { EXPECT_GT(run_shift(8, 8, 4, 4), 0); }

TEST(Shift, AddressesOnlyFaceNeighbors) {
  // Shift's whole point: 2*D neighbor pairs, not 3^D - 1 neighbors.
  Runtime rt(27, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, {3, 3, 3});
    BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
    BrickStorage store = dec.allocate(1);
    ShiftExchanger<3> sh(dec, store, shift_neighbors(cart));
    EXPECT_EQ(sh.phase_count(), 3);
    sh.exchange(comm);  // completes without touching diagonal ranks
  });
}

TEST(Shift, MovesSameVolumeInFewerMessages) {
  // Although corner data is forwarded through multiple hops, every ghost
  // brick is still *received* exactly once, so Shift's total wire volume
  // equals Put's (both equal the ghost-frame volume). The difference is
  // message count (and the D-phase synchronization).
  BrickDecomp<3> dec({32, 32, 32}, 8, {8, 8, 8}, surface3d());
  BrickStorage s1 = dec.allocate(1);
  BrickStorage s2 = dec.allocate(1);
  std::vector<std::array<int, 2>> nb(3, {0, 0});
  ShiftExchanger<3> sh(dec, s1, nb);
  std::vector<int> ranks(26, 0);
  Exchanger<3> put(dec, s2, ranks, Exchanger<3>::Mode::Layout);
  EXPECT_EQ(sh.send_byte_count(), put.send_byte_count());
  // Ghost-frame volume in bytes: (6^3 - 4^3) bricks of 8^3 doubles.
  EXPECT_EQ(sh.send_byte_count(), (216 - 64) * 512 * 8);
  EXPECT_LT(sh.send_message_count(), put.send_message_count());
}

TEST(Shift, MessageCountIsSmall) {
  // With contiguous-run merging the per-phase slabs decompose into a small
  // number of ranges; the floor is 2 per phase (one per direction).
  const std::int64_t m = run_shift(8, 32, 8, 8);
  EXPECT_GE(m, 6);
  EXPECT_LT(m, 42);  // fewer than the Put-style optimized layout
}

TEST(Shift, RepeatedExchangesStable) {
  Runtime rt(8, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, {2, 2, 2});
    const Vec3 N{16, 16, 16};
    BrickDecomp<3> dec(N, 4, {4, 4, 4}, surface3d());
    BrickStorage store = dec.allocate(1);
    const Vec3 ext{32, 32, 32};
    const Vec3 off = cart.coords() * N;
    CellArray3 own(Box<3>{{0, 0, 0}, N});
    for_each(own.box(), [&](const Vec3& p) { own.at(p) = gval(p + off, ext); });
    cells_to_bricks(dec, own, store, 0);
    ShiftExchanger<3> sh(dec, store, shift_neighbors(cart));
    for (int i = 0; i < 4; ++i) {
      sh.exchange(comm);
      CellArray3 frame(Box<3>{{-4, -4, -4}, {20, 20, 20}});
      bricks_to_cells(dec, store, 0, frame);
      std::int64_t bad = 0;
      for_each(frame.box(), [&](const Vec3& p) {
        if (frame.at(p) != gval(p + off, ext)) ++bad;
      });
      ASSERT_EQ(bad, 0) << "iteration " << i;
    }
  });
}

TEST(Shift, TwoDimensional) {
  Runtime rt(4, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<2> cart(comm, {2, 2});
    const Vec2 N{16, 16};
    BrickDecomp<2> dec(N, 4, {4, 4}, surface2d());
    BrickStorage store = dec.allocate(1);
    const Vec2 off = cart.coords() * N;
    const Vec2 ext{32, 32};
    auto f = [&](Vec2 g) {
      for (int a = 0; a < 2; ++a) g[a] = ((g[a] % 32) + 32) % 32;
      return static_cast<double>(g[1] * 32 + g[0]);
    };
    CellArray<2> own(Box<2>{{0, 0}, N});
    for_each(own.box(), [&](const Vec2& p) { own.at(p) = f(p + off); });
    cells_to_bricks(dec, own, store, 0);
    ShiftExchanger<2> sh(dec, store, shift_neighbors(cart));
    EXPECT_EQ(sh.phase_count(), 2);
    sh.exchange(comm);
    CellArray<2> frame(Box<2>{{-4, -4}, {20, 20}});
    bricks_to_cells(dec, store, 0, frame);
    std::int64_t bad = 0;
    for_each(frame.box(), [&](const Vec2& p) {
      if (frame.at(p) != f(p + off)) ++bad;
    });
    EXPECT_EQ(bad, 0);
    (void)ext;
  });
}

}  // namespace
}  // namespace brickx
