#include "common/bitset.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace brickx {
namespace {

TEST(BitSet, EmptyByDefault) {
  BitSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0);
  EXPECT_EQ(s.str(), "{}");
}

TEST(BitSet, InitializerListMatchesPaperNotation) {
  // Figure 3's surface2d entries, e.g. r({A1-, A2-}) == {-1,-2}.
  BitSet s{-1, -2};
  EXPECT_TRUE(s.has(-1));
  EXPECT_TRUE(s.has(-2));
  EXPECT_FALSE(s.has(1));
  EXPECT_FALSE(s.has(2));
  EXPECT_EQ(s.size(), 2);
}

TEST(BitSet, SetClearRoundtrip) {
  BitSet s;
  for (int a = 1; a <= BitSet::kMaxAxis; ++a) {
    s.set(a);
    s.set(-a);
  }
  EXPECT_EQ(s.size(), 2 * BitSet::kMaxAxis);
  for (int a = 1; a <= BitSet::kMaxAxis; ++a) {
    EXPECT_TRUE(s.has(a));
    EXPECT_TRUE(s.has(-a));
    s.clear(a);
    EXPECT_FALSE(s.has(a));
    EXPECT_TRUE(s.has(-a));
  }
  EXPECT_EQ(s.size(), BitSet::kMaxAxis);
}

TEST(BitSet, OutOfRangeElementsThrow) {
  BitSet s;
  EXPECT_THROW(s.set(0), Error);
  EXPECT_THROW(s.set(BitSet::kMaxAxis + 1), Error);
  EXPECT_THROW(s.set(-BitSet::kMaxAxis - 1), Error);
}

TEST(BitSet, SubsetRelation) {
  BitSet region{1, -2, 3};
  // Destinations of a surface region are its nonempty signed subsets.
  EXPECT_TRUE(BitSet{1}.subset_of(region));
  EXPECT_TRUE((BitSet{1, -2}).subset_of(region));
  EXPECT_TRUE(region.subset_of(region));
  EXPECT_TRUE(BitSet{}.subset_of(region));
  EXPECT_FALSE(BitSet{2}.subset_of(region));     // wrong direction
  EXPECT_FALSE((BitSet{1, 2}).subset_of(region));
}

TEST(BitSet, FlippedMirrorsEveryDirection) {
  BitSet s{1, -2, 3};
  BitSet f = s.flipped();
  EXPECT_TRUE(f.has(-1));
  EXPECT_TRUE(f.has(2));
  EXPECT_TRUE(f.has(-3));
  EXPECT_EQ(f.size(), 3);
  EXPECT_EQ(f.flipped(), s);
}

TEST(BitSet, FlippedIsInvolutionPropertySweep) {
  // Every direction set over 3 axes.
  for (int z = -1; z <= 1; ++z)
    for (int y = -1; y <= 1; ++y)
      for (int x = -1; x <= 1; ++x) {
        BitSet s;
        if (x) s.set(x > 0 ? 1 : -1);
        if (y) s.set(y > 0 ? 2 : -2);
        if (z) s.set(z > 0 ? 3 : -3);
        EXPECT_EQ(s.flipped().flipped(), s);
        EXPECT_EQ(s.flipped().size(), s.size());
      }
}

TEST(BitSet, DirOf) {
  BitSet s{1, -3};
  EXPECT_EQ(s.dir_of(1), 1);
  EXPECT_EQ(s.dir_of(2), 0);
  EXPECT_EQ(s.dir_of(3), -1);
}

TEST(BitSet, DirOfBothDirectionsThrows) {
  BitSet s{2, -2};
  EXPECT_THROW((void)s.dir_of(2), Error);
}

TEST(BitSet, SetOperations) {
  BitSet a{1, 2}, b{2, 3};
  EXPECT_EQ((a & b), BitSet{2});
  EXPECT_EQ((a | b), (BitSet{1, 2, 3}));
}

TEST(BitSet, RawIsUniquePerSet) {
  std::map<std::uint64_t, BitSet> seen;
  for (int z = -1; z <= 1; ++z)
    for (int y = -1; y <= 1; ++y)
      for (int x = -1; x <= 1; ++x) {
        BitSet s;
        if (x) s.set(x > 0 ? 1 : -1);
        if (y) s.set(y > 0 ? 2 : -2);
        if (z) s.set(z > 0 ? 3 : -3);
        auto [it, inserted] = seen.emplace(s.raw(), s);
        EXPECT_TRUE(inserted || it->second == s);
      }
  EXPECT_EQ(seen.size(), 27u);
}

TEST(BitSet, StrFormat) {
  EXPECT_EQ((BitSet{-1, -2}).str(), "{-1,-2}");
  EXPECT_EQ((BitSet{1, 2}).str(), "{1,2}");
  EXPECT_EQ((BitSet{2}).str(), "{2}");
}

}  // namespace
}  // namespace brickx
