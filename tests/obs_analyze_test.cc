// Tests for the causal critical-path analyzer (src/obs/analyze): the exact
// decomposition on a hand-built DAG with known geometry, the critical-path
// identity (the path tiles [0, makespan] with shared-boundary doubles) on
// fuzz-seeded harness runs across methods × fabrics × fault schedules, and
// byte-determinism of the rendered reports.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "obs/analyze.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/session.h"
#include "simmpi/fault.h"

namespace obs = brickx::obs;
namespace harness = brickx::harness;

TEST(Analyze, SegClassNamesAreStable) {
  EXPECT_STREQ(obs::seg_class(obs::SegKind::MsgQueue), "msg.queue");
  EXPECT_STREQ(obs::seg_class(obs::SegKind::MsgInject), "msg.inject");
  EXPECT_STREQ(obs::seg_class(obs::SegKind::MsgContend), "msg.contention");
  EXPECT_STREQ(obs::seg_class(obs::SegKind::MsgWire), "msg.wire");
  EXPECT_STREQ(obs::seg_class(obs::SegKind::MsgFault), "msg.fault_delay");
  EXPECT_STREQ(obs::seg_class(obs::SegKind::MsgRecvLat), "msg.recv_latency");
  EXPECT_STREQ(obs::seg_class(obs::SegKind::Collective), "collective");
}

#if BRICKX_OBS

namespace {

// A two-rank late-sender scenario with hand-picked times. Rank 0 computes
// until t=5, then sends a message that serializes for 1s and flies for 1s;
// rank 1 posted its wait at t=1 and computes [7, 9] once the data lands.
// Every edge of the causality DAG is known, so the expected critical path
// is exact: calc(r0)[0,5] → msg.inject[5,6] → msg.wire[6,7] → calc(r1)[7,9].
obs::Session::Run late_sender_run() {
  obs::Session::Run run;
  run.label = "hand/late-sender";
  run.nranks = 2;
  run.logs.resize(2);

  obs::RankLog& r0 = run.logs[0];
  const std::size_t c0 = r0.open_span(obs::Cat::Calc, nullptr, 0, 0.0);
  r0.close_span(c0, 5.0);

  obs::RankLog& r1 = run.logs[1];
  const std::size_t c1 = r1.open_span(obs::Cat::Calc, nullptr, 0, 0.0);
  r1.close_span(c1, 1.0);
  const std::size_t w1 = r1.open_span(obs::Cat::Wait, nullptr, 0, 1.0);
  r1.close_span(w1, 7.0);
  const std::size_t c2 = r1.open_span(obs::Cat::Calc, nullptr, 0, 7.0);
  r1.close_span(c2, 9.0);

  obs::RecvEvent rv;
  rv.src = 0;
  rv.tag = 0;
  rv.bytes = 1024;
  rv.post = 5.0;
  rv.inject_start = 5.0;
  rv.inject_nominal = 1.0;
  rv.depart = 6.0;
  rv.arrive = 7.0;
  rv.fault_delay = 0.0;
  rv.sharing = 1.0;
  rv.wait_start = 1.0;
  rv.avail = 7.0;
  r1.recv(rv);
  return run;
}

}  // namespace

TEST(Analyze, HandBuiltLateSenderPathIsExact) {
  const obs::Session::Run run = late_sender_run();
  const obs::RunAnalysis a = obs::analyze_run(run);

  EXPECT_EQ(a.label, "hand/late-sender");
  EXPECT_EQ(a.nranks, 2);
  EXPECT_EQ(a.makespan, 9.0);
  EXPECT_TRUE(a.identity_ok);

  ASSERT_EQ(a.segments.size(), 4u);
  const obs::PathSegment& s0 = a.segments[0];
  EXPECT_EQ(s0.rank, 0);
  EXPECT_EQ(s0.kind, obs::SegKind::Local);
  EXPECT_EQ(s0.cat, obs::Cat::Calc);
  EXPECT_EQ(s0.t0, 0.0);
  EXPECT_EQ(s0.t1, 5.0);

  const obs::PathSegment& s1 = a.segments[1];
  EXPECT_EQ(s1.rank, 0);  // injection is billed to the sender
  EXPECT_EQ(s1.kind, obs::SegKind::MsgInject);
  EXPECT_EQ(s1.t0, 5.0);
  EXPECT_EQ(s1.t1, 6.0);

  const obs::PathSegment& s2 = a.segments[2];
  EXPECT_EQ(s2.rank, 0);
  EXPECT_EQ(s2.kind, obs::SegKind::MsgWire);
  EXPECT_EQ(s2.t0, 6.0);
  EXPECT_EQ(s2.t1, 7.0);

  const obs::PathSegment& s3 = a.segments[3];
  EXPECT_EQ(s3.rank, 1);
  EXPECT_EQ(s3.kind, obs::SegKind::Local);
  EXPECT_EQ(s3.cat, obs::Cat::Calc);
  EXPECT_EQ(s3.t0, 7.0);
  EXPECT_EQ(s3.t1, 9.0);

  EXPECT_EQ(a.path_seconds, 9.0);  // exact: the boundaries are shared

  // Wait-state taxonomy: rank 1 waited 6s total (wait_start=1 → avail=7);
  // 4s of that predate the sender's post (late sender), 2s are transfer.
  EXPECT_EQ(a.waits.binding_waits, 1);
  EXPECT_EQ(a.waits.late_sender_waits, 1);
  EXPECT_EQ(a.waits.late_sender_s, 4.0);
  EXPECT_EQ(a.waits.transfer_s, 2.0);
  EXPECT_EQ(a.waits.late_receiver_msgs, 0);
  EXPECT_EQ(a.waits.queue_s, 0.0);
  EXPECT_EQ(a.waits.contention_s, 0.0);
  EXPECT_EQ(a.waits.fault_delay_s, 0.0);

  // Overlap headroom = min(comm on path = 2s, calc on path = 7s).
  EXPECT_EQ(a.comm_on_path, 2.0);
  EXPECT_EQ(a.calc_on_path, 7.0);
  EXPECT_EQ(a.overlap_headroom, 2.0);
}

// A message that arrived before the receiver even asked for it must not
// pull the path across ranks: the receive is non-binding (late receiver).
TEST(Analyze, LateReceiverMessageStaysOffThePath) {
  obs::Session::Run run;
  run.label = "hand/late-receiver";
  run.nranks = 2;
  run.logs.resize(2);

  obs::RankLog& r0 = run.logs[0];
  const std::size_t c0 = r0.open_span(obs::Cat::Calc, nullptr, 0, 0.0);
  r0.close_span(c0, 2.0);

  obs::RankLog& r1 = run.logs[1];
  const std::size_t c1 = r1.open_span(obs::Cat::Calc, nullptr, 0, 0.0);
  r1.close_span(c1, 6.0);

  obs::RecvEvent rv;
  rv.src = 0;
  rv.post = 1.0;
  rv.inject_start = 1.0;
  rv.inject_nominal = 0.5;
  rv.depart = 1.5;
  rv.arrive = 2.0;
  rv.avail = 2.0;
  rv.wait_start = 6.0;  // data was long since available
  r1.recv(rv);

  const obs::RunAnalysis a = obs::analyze_run(run);
  EXPECT_TRUE(a.identity_ok);
  EXPECT_EQ(a.makespan, 6.0);
  ASSERT_EQ(a.segments.size(), 1u);
  EXPECT_EQ(a.segments[0].rank, 1);
  EXPECT_EQ(a.segments[0].kind, obs::SegKind::Local);
  EXPECT_EQ(a.waits.binding_waits, 0);
  EXPECT_EQ(a.waits.late_receiver_msgs, 1);
}

// Collective rendezvous: the barrier segment is billed to the last rank in,
// and the walk continues on that rank.
TEST(Analyze, CollectiveSegmentBilledToLatestEntry) {
  obs::Session::Run run;
  run.label = "hand/collective";
  run.nranks = 2;
  run.logs.resize(2);

  obs::RankLog& r0 = run.logs[0];
  const std::size_t a0 = r0.open_span(obs::Cat::Calc, nullptr, 0, 0.0);
  r0.close_span(a0, 1.0);
  r0.collective({1.0, 4.5});
  const std::size_t b0 = r0.open_span(obs::Cat::Calc, nullptr, 0, 4.5);
  r0.close_span(b0, 5.0);

  obs::RankLog& r1 = run.logs[1];
  const std::size_t a1 = r1.open_span(obs::Cat::Calc, nullptr, 0, 0.0);
  r1.close_span(a1, 4.0);
  r1.collective({4.0, 4.5});
  const std::size_t b1 = r1.open_span(obs::Cat::Calc, nullptr, 0, 4.5);
  r1.close_span(b1, 6.0);

  const obs::RunAnalysis a = obs::analyze_run(run);
  EXPECT_TRUE(a.identity_ok);
  EXPECT_EQ(a.makespan, 6.0);
  ASSERT_EQ(a.segments.size(), 3u);
  // calc(r1)[0,4] → collective(r1)[4,4.5] → calc(r1)[4.5,6]: rank 1 entered
  // last, so the barrier cost and the pre-barrier work are both its.
  EXPECT_EQ(a.segments[0].rank, 1);
  EXPECT_EQ(a.segments[0].kind, obs::SegKind::Local);
  EXPECT_EQ(a.segments[0].t1, 4.0);
  EXPECT_EQ(a.segments[1].rank, 1);
  EXPECT_EQ(a.segments[1].kind, obs::SegKind::Collective);
  EXPECT_EQ(a.segments[1].t0, 4.0);
  EXPECT_EQ(a.segments[1].t1, 4.5);
  EXPECT_EQ(a.segments[2].kind, obs::SegKind::Local);
  EXPECT_EQ(a.waits.collectives, 1);
  EXPECT_EQ(a.waits.coll_skew_s, 3.0);  // rank 0 entered 3s early
}

// Partition-granularity message edges (the overlap scheduler's traffic):
// each partition of a partitioned exchange is its own RecvEvent, so the
// analyzer judges each independently. A partition the interior compute hid
// is a late-receiver record and stays off the path; a partition that landed
// late is a binding edge that routes the path through its sender timeline.
TEST(Analyze, HiddenPartitionOffPathLatePartitionRoutesThroughSender) {
  obs::Session::Run run;
  run.label = "hand/partitions";
  run.nranks = 2;
  run.logs.resize(2);

  // Sender: boundary compute until t=4 (partition 0 was readied early at
  // t=0.5; partition 1 only at t=4, after the last boundary brick).
  obs::RankLog& r0 = run.logs[0];
  const std::size_t c0 = r0.open_span(obs::Cat::Calc, nullptr, 0, 0.0);
  r0.close_span(c0, 4.0);

  // Receiver: interior compute [0,5] (the hiding window), a binding wait
  // [5,6.5] on the late partition, then the dependent shell [6.5,8].
  obs::RankLog& r1 = run.logs[1];
  const std::size_t c1 = r1.open_span(obs::Cat::Calc, nullptr, 0, 0.0);
  r1.close_span(c1, 5.0);
  const std::size_t w1 = r1.open_span(obs::Cat::Wait, nullptr, 0, 5.0);
  r1.close_span(w1, 6.5);
  const std::size_t c2 = r1.open_span(obs::Cat::Calc, nullptr, 0, 6.5);
  r1.close_span(c2, 8.0);

  obs::RecvEvent hidden;  // partition 0: long since available when asked
  hidden.src = 0;
  hidden.part = 0;
  hidden.post = 0.5;
  hidden.inject_start = 0.5;
  hidden.inject_nominal = 0.5;
  hidden.depart = 1.0;
  hidden.arrive = 2.0;
  hidden.avail = 2.0;
  hidden.wait_start = 5.0;
  r1.recv(hidden);

  obs::RecvEvent late;  // partition 1: readied at t=4, lands at t=6.5
  late.src = 0;
  late.part = 1;
  late.post = 4.0;
  late.inject_start = 4.0;
  late.inject_nominal = 0.5;
  late.depart = 4.5;
  late.arrive = 6.5;
  late.avail = 6.5;
  late.wait_start = 5.0;
  r1.recv(late);

  const obs::RunAnalysis a = obs::analyze_run(run);
  EXPECT_TRUE(a.identity_ok);
  EXPECT_EQ(a.makespan, 8.0);

  // calc(r0)[0,4] → inject[4,4.5] → wire[4.5,6.5] → shell calc(r1)[6.5,8]:
  // only partition 1's timeline is on the path; partition 0 never appears.
  ASSERT_EQ(a.segments.size(), 4u);
  EXPECT_EQ(a.segments[0].rank, 0);
  EXPECT_EQ(a.segments[0].kind, obs::SegKind::Local);
  EXPECT_EQ(a.segments[0].t1, 4.0);
  EXPECT_EQ(a.segments[1].rank, 0);
  EXPECT_EQ(a.segments[1].kind, obs::SegKind::MsgInject);
  EXPECT_EQ(a.segments[1].t0, 4.0);
  EXPECT_EQ(a.segments[1].t1, 4.5);
  EXPECT_EQ(a.segments[2].rank, 0);
  EXPECT_EQ(a.segments[2].kind, obs::SegKind::MsgWire);
  EXPECT_EQ(a.segments[2].t1, 6.5);
  EXPECT_EQ(a.segments[3].rank, 1);
  EXPECT_EQ(a.segments[3].kind, obs::SegKind::Local);
  EXPECT_EQ(a.segments[3].t0, 6.5);
  EXPECT_EQ(a.segments[3].t1, 8.0);

  // Taxonomy: one hidden partition, one binding wait — all of it transfer
  // time (the sender had posted long before the receiver asked).
  EXPECT_EQ(a.waits.late_receiver_msgs, 1);
  EXPECT_EQ(a.waits.binding_waits, 1);
  EXPECT_EQ(a.waits.late_sender_waits, 0);
  EXPECT_EQ(a.waits.transfer_s, 1.5);
  EXPECT_EQ(a.waits.late_sender_s, 0.0);
}

// When every partition beats the consumer (full overlap), the path never
// leaves the receiver and the whole exchange is late-receiver traffic —
// the trace-level signature of a perfectly hidden exchange.
TEST(Analyze, FullyHiddenPartitionsKeepThePathLocal) {
  obs::Session::Run run;
  run.label = "hand/partitions-hidden";
  run.nranks = 2;
  run.logs.resize(2);

  obs::RankLog& r0 = run.logs[0];
  const std::size_t c0 = r0.open_span(obs::Cat::Calc, nullptr, 0, 0.0);
  r0.close_span(c0, 2.0);

  obs::RankLog& r1 = run.logs[1];
  const std::size_t c1 = r1.open_span(obs::Cat::Calc, nullptr, 0, 0.0);
  r1.close_span(c1, 7.0);

  for (int p = 0; p < 3; ++p) {
    obs::RecvEvent rv;
    rv.src = 0;
    rv.part = p;
    rv.post = 0.5 * (p + 1);
    rv.inject_start = rv.post;
    rv.inject_nominal = 0.25;
    rv.depart = rv.post + 0.25;
    rv.arrive = rv.depart + 1.0;
    rv.avail = rv.arrive;
    rv.wait_start = 6.0;  // interior compute outlasted every arrival
    r1.recv(rv);
  }

  const obs::RunAnalysis a = obs::analyze_run(run);
  EXPECT_TRUE(a.identity_ok);
  EXPECT_EQ(a.makespan, 7.0);
  ASSERT_EQ(a.segments.size(), 1u);
  EXPECT_EQ(a.segments[0].rank, 1);
  EXPECT_EQ(a.segments[0].kind, obs::SegKind::Local);
  EXPECT_EQ(a.waits.binding_waits, 0);
  EXPECT_EQ(a.waits.late_receiver_msgs, 3);
}

namespace {

harness::Config fuzz_config(harness::Method m, brickx::netsim::FabricKind f,
                            std::uint64_t fault_seed) {
  harness::Config cfg;
  cfg.rank_dims = {2, 2, 1};
  cfg.subdomain = brickx::Vec3::fill(16);
  cfg.brick = 8;
  cfg.ghost = 8;
  cfg.method = m;
  cfg.timesteps = 4;
  cfg.warmup_exchanges = 1;
  cfg.execute_kernels = false;
  cfg.fabric = f;
  if (fault_seed != 0) {
    cfg.faults.seed = fault_seed;
    cfg.faults.delay = 0.4;
    cfg.faults.max_delay = 2e-5;
  }
  return cfg;
}

}  // namespace

// The critical-path identity must hold on every real run: the segments
// tile [0, makespan] with exact shared-boundary equality, regardless of
// method, fabric, or (delay-only) fault schedule.
TEST(Analyze, CriticalPathIdentityHoldsOnFuzzSeededRuns) {
  using harness::Method;
  using brickx::netsim::FabricKind;
  obs::Session ses;
  {
    obs::Session::Scope scope(ses);
    (void)harness::run(fuzz_config(Method::Yask, FabricKind::Flat, 0));
    (void)harness::run(fuzz_config(Method::MpiTypes, FabricKind::Flat, 0));
    (void)harness::run(fuzz_config(Method::Layout, FabricKind::Flat, 3));
    (void)harness::run(
        fuzz_config(Method::MemMap, FabricKind::Dragonfly, 0));
    (void)harness::run(fuzz_config(Method::MemMap, FabricKind::FatTree, 7));
    (void)harness::run(fuzz_config(Method::Yask, FabricKind::Torus3d, 11));
  }
  ASSERT_EQ(ses.runs().size(), 6u);
  for (const obs::Session::Run& run : ses.runs()) {
    const obs::RunAnalysis a = obs::analyze_run(run);
    SCOPED_TRACE(run.label);
    EXPECT_TRUE(a.identity_ok);
    EXPECT_GT(a.makespan, 0.0);
    ASSERT_FALSE(a.segments.empty());
    // Structural identity, re-checked here: shared boundaries, full tiling.
    double expect = 0.0;
    for (const obs::PathSegment& s : a.segments) {
      EXPECT_EQ(s.t0, expect);
      EXPECT_LT(s.t0, s.t1);
      expect = s.t1;
    }
    EXPECT_EQ(expect, a.makespan);
    // The FP sum of durations is near (not exactly) the makespan.
    EXPECT_NEAR(a.path_seconds, a.makespan, 1e-9 * a.makespan);
    // Composition totals the path exactly as the segments do.
    double comp = 0.0;
    for (const auto& [name, secs] : a.composition) comp += secs;
    EXPECT_NEAR(comp, a.path_seconds, 1e-9 * a.makespan);
  }
}

// Rendered analysis artifacts are byte-deterministic across identical
// sessions — the same contract chrome_trace_json advertises.
TEST(Analyze, ReportsAreByteDeterministic) {
  auto once = [] {
    obs::Session ses;
    {
      obs::Session::Scope scope(ses);
      (void)harness::run(fuzz_config(harness::Method::Layout,
                                     brickx::netsim::FabricKind::Flat, 3));
      (void)harness::run(fuzz_config(harness::Method::MemMap,
                                     brickx::netsim::FabricKind::Dragonfly,
                                     0));
    }
    return std::pair<std::string, std::string>(obs::analysis_json(ses),
                                               obs::analysis_text(ses));
  };
  const auto a = once();
  const auto b = once();
  EXPECT_GT(a.first.size(), 100u);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_NE(a.first.find("\"identity_ok\":true"), std::string::npos);
  EXPECT_EQ(a.first.find("\"identity_ok\":false"), std::string::npos);
}

#else  // !BRICKX_OBS

// With obs compiled out the analyzer sees empty logs and must still return
// a well-formed (empty) analysis instead of tripping on missing data.
TEST(Analyze, DisabledBuildYieldsEmptyAnalysis) {
  obs::Session ses;
  const std::string j = obs::analysis_json(ses);
  EXPECT_NE(j.find("\"runs\":[]"), std::string::npos);
}

#endif  // BRICKX_OBS
