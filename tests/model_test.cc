#include "model/machine.h"

#include <gtest/gtest.h>

namespace brickx::model {
namespace {

TEST(Machine, ThetaConstantsSane) {
  const Machine m = theta();
  EXPECT_EQ(m.name, "theta-knl");
  EXPECT_FALSE(m.is_gpu);
  EXPECT_GT(m.stream_bw, 0.0);
  EXPECT_LT(m.stream_bw, 467e9);  // below STREAM, as real stencils are
  EXPECT_GT(m.yask_sweep_overhead, m.sweep_overhead);  // two-level parallelism
  EXPECT_EQ(m.net.ranks_per_node, 1);
}

TEST(Machine, SummitConstantsSane) {
  const Machine m = summit();
  EXPECT_TRUE(m.is_gpu);
  EXPECT_DOUBLE_EQ(m.gpu.hbm_bw, 828.8e9);   // paper Section 2
  EXPECT_DOUBLE_EQ(m.gpu.flops, 7.8e12);
  EXPECT_EQ(m.gpu.page_size, 64u * 1024);    // Power9 pages
  EXPECT_EQ(m.net.ranks_per_node, 6);        // 6 GPUs per node
  EXPECT_GT(m.net.um_alpha_extra, m.net.device_alpha_extra);
}

TEST(Roofline, BandwidthBoundSevenPoint) {
  const Machine m = theta();
  const std::int64_t cells = 1 << 24;
  const double t = cpu_stencil_seconds(m, cells, 8.0, 16.0, false);
  // 16 B/cell: memory term dominates for the 7-point stencil.
  EXPECT_NEAR(t, cells * 16.0 / m.stream_bw + m.sweep_overhead, 1e-9);
}

TEST(Roofline, FlopBoundHighOrder) {
  Machine m = theta();
  m.flops = 1e9;  // cripple flops so the 125-point becomes compute bound
  const std::int64_t cells = 1 << 20;
  const double t = cpu_stencil_seconds(m, cells, 139.0, 16.0, false);
  EXPECT_NEAR(t, cells * 139.0 / 1e9 + m.sweep_overhead, 1e-9);
}

TEST(Roofline, SweepOverheadDominatesTinySubdomains) {
  const Machine m = theta();
  // 16^3 cells stream in ~0.4 us; the parallel-region overhead is larger —
  // this is the small-subdomain regime of Figures 1 and 10.
  const double t = cpu_stencil_seconds(m, 16 * 16 * 16, 8.0, 16.0, false);
  EXPECT_GT(m.sweep_overhead, t - m.sweep_overhead);
}

TEST(Roofline, YaskVariantTradesOverheadForBandwidth) {
  const Machine m = theta();
  const std::int64_t big = 1 << 27, tiny = 16 * 16 * 16;
  // At scale the autotuned baseline wins...
  EXPECT_LT(cpu_stencil_seconds(m, big, 8.0, 16.0, true),
            cpu_stencil_seconds(m, big, 8.0, 16.0, false));
  // ...on tiny subdomains its nested parallelism loses (Figure 10).
  EXPECT_GT(cpu_stencil_seconds(m, tiny, 8.0, 16.0, true),
            cpu_stencil_seconds(m, tiny, 8.0, 16.0, false));
}

TEST(PackModel, LinearInBytesAndPieces) {
  const Machine m = theta();
  const double one = pack_seconds(m, 1 << 20, 26);
  const double two = pack_seconds(m, 2 << 20, 26);
  EXPECT_GT(two, one);
  EXPECT_NEAR(two - one, (1 << 20) / m.pack_bw, 1e-12);
  EXPECT_NEAR(pack_seconds(m, 0, 52) - pack_seconds(m, 0, 26),
              26 * m.pack_overhead, 1e-12);
}

}  // namespace
}  // namespace brickx::model
