# Golden-output regression driver, invoked by ctest via `cmake -P`.
#
# Runs BIN with ARGS, captures stdout to OUT, and compares it
# byte-for-byte against the checked-in GOLDEN file. stderr is not part of
# the contract (the harness prints environment warnings there).
#
# To regenerate a golden after an intentional output change:
#   cmake -DBIN=build/bench/table1_messages "-DARGS=-s;16" \
#         -DGOLDEN=tests/data/golden/table1_messages.txt \
#         -DOUT=/tmp/g.out -DUPDATE=1 -P tests/golden_check.cmake

foreach(var BIN GOLDEN OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "golden_check: missing -D${var}")
  endif()
endforeach()

execute_process(COMMAND ${BIN} ${ARGS}
                OUTPUT_FILE ${OUT}
                ERROR_VARIABLE stderr_text
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "golden_check: ${BIN} exited with ${rc}\nstderr:\n${stderr_text}")
endif()

if(UPDATE)
  configure_file(${OUT} ${GOLDEN} COPYONLY)
  message(STATUS "golden_check: updated ${GOLDEN}")
  return()
endif()

if(NOT EXISTS ${GOLDEN})
  message(FATAL_ERROR "golden_check: missing golden file ${GOLDEN} "
                      "(regenerate with -DUPDATE=1)")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E compare_files ${OUT} ${GOLDEN}
                RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  message(FATAL_ERROR
          "golden_check: stdout differs from ${GOLDEN}\n"
          "inspect with: diff ${GOLDEN} ${OUT}\n"
          "if the change is intentional, regenerate with -DUPDATE=1")
endif()
