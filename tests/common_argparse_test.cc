#include "common/argparse.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace brickx {
namespace {

ArgParser make() {
  ArgParser ap("prog", "test parser");
  ap.add("-d", "dimension", "64");
  ap.add("-s", "sizes", "128,64,32");
  ap.add("-x", "factor", "1.5");
  ap.add_flag("-v", "verbose");
  return ap;
}

TEST(ArgParser, Defaults) {
  ArgParser ap = make();
  const char* argv[] = {"prog"};
  ap.parse(1, argv);
  EXPECT_EQ(ap.get_int("-d"), 64);
  EXPECT_DOUBLE_EQ(ap.get_double("-x"), 1.5);
  EXPECT_FALSE(ap.get_flag("-v"));
  const auto list = ap.get_int_list("-s");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0], 128);
  EXPECT_EQ(list[2], 32);
}

TEST(ArgParser, ParseOverrides) {
  ArgParser ap = make();
  const char* argv[] = {"prog", "-d", "16", "-v", "-s", "8,4"};
  ap.parse(6, argv);
  EXPECT_EQ(ap.get_int("-d"), 16);
  EXPECT_TRUE(ap.get_flag("-v"));
  EXPECT_EQ(ap.get_int_list("-s").size(), 2u);
}

TEST(ArgParser, UnknownOptionIsHardErrorListingValidFlags) {
  ArgParser ap = make();
  const char* argv[] = {"prog", "--bogus"};
  // Unknown flags exit(2) with a stderr diagnostic that names the flag and
  // lists every registered option (not a throw, which benches would turn
  // into an uncaught-exception abort). gtest's simple regex is line-based,
  // so assert the pieces with separate spawns.
  EXPECT_EXIT(ap.parse(2, argv), testing::ExitedWithCode(2),
              "unknown option: --bogus");
  EXPECT_EXIT(ap.parse(2, argv), testing::ExitedWithCode(2),
              "valid options:");
  EXPECT_EXIT(ap.parse(2, argv), testing::ExitedWithCode(2), "  -d");
}

TEST(ArgParser, UnknownAttachedValueOptionIsHardError) {
  ArgParser ap = make();
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_EXIT(ap.parse(2, argv), testing::ExitedWithCode(2),
              "unknown option: --bogus");
}

TEST(ArgParser, MissingValueThrows) {
  ArgParser ap = make();
  const char* argv[] = {"prog", "-d"};
  EXPECT_THROW(ap.parse(2, argv), Error);
}

TEST(ArgParser, UnregisteredLookupThrows) {
  ArgParser ap = make();
  const char* argv[] = {"prog"};
  ap.parse(1, argv);
  EXPECT_THROW((void)ap.get("-z"), Error);
  EXPECT_THROW((void)ap.get_flag("-z"), Error);
}

TEST(ArgParser, DuplicateRegistrationThrows) {
  ArgParser ap("p", "d");
  ap.add("-a", "x", "1");
  EXPECT_THROW(ap.add("-a", "again", "2"), Error);
}

TEST(ArgParser, UsageListsOptions) {
  ArgParser ap = make();
  const std::string u = ap.usage();
  EXPECT_NE(u.find("-d"), std::string::npos);
  EXPECT_NE(u.find("dimension"), std::string::npos);
  EXPECT_NE(u.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace brickx
