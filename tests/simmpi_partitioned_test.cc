#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "simmpi/comm.h"
#include "simmpi/fault.h"

namespace brickx::mpi {
namespace {

NetModel quiet() { return NetModel{}; }

// ---- lifecycle edges: every misuse is a typed error, never UB --------------

TEST(Partitioned, StartBeforeInitThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm&) {
    Partitioned p;  // never initialized
    p.start();
  }),
               PartitionedError);
}

TEST(Partitioned, WaitBeforeInitThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm&) {
    Partitioned p;
    p.wait();
  }),
               PartitionedError);
}

TEST(Partitioned, PreadyBeforeStartThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[4] = {1, 2, 3, 4};
    Partitioned s = c.psend_init(x, sizeof x, 0, 0, 4);
    s.pready(0);  // no round in flight yet
  }),
               PartitionedError);
}

TEST(Partitioned, DoublePreadyThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[4] = {0, 1, 2, 3}, y[4] = {0, 0, 0, 0};
    Partitioned r = c.precv_init(y, sizeof y, 0, 0, 4);
    Partitioned s = c.psend_init(x, sizeof x, 0, 0, 4);
    r.start();
    s.start();
    s.pready(1);
    s.pready(1);  // partition 1 readied twice in one round
  }),
               PartitionedError);
}

TEST(Partitioned, WaitWithUnreadyPartitionsThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[4] = {0, 1, 2, 3}, y[4] = {0, 0, 0, 0};
    Partitioned r = c.precv_init(y, sizeof y, 0, 0, 4);
    Partitioned s = c.psend_init(x, sizeof x, 0, 0, 4);
    r.start();
    s.start();
    s.pready(0);
    s.pready(2);
    s.wait();  // partitions 1 and 3 were never readied
  }),
               PartitionedError);
}

TEST(Partitioned, FreeWhileActiveThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[2] = {7, 8}, y[2] = {0, 0};
    Partitioned r = c.precv_init(y, sizeof y, 0, 0, 2);
    Partitioned s = c.psend_init(x, sizeof x, 0, 0, 2);
    r.start();
    s.start();
    s.free();  // round in flight: typed error, mirrors MPI_Request_free
  }),
               PartitionedError);
}

TEST(Partitioned, DoubleStartThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[2] = {0, 0};
    Partitioned r = c.precv_init(x, sizeof x, 0, 0, 2);
    r.start();
    r.start();  // round already in flight
  }),
               PartitionedError);
}

TEST(Partitioned, WaitWithoutStartThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[2] = {0, 0};
    Partitioned r = c.precv_init(x, sizeof x, 0, 0, 2);
    r.wait();  // no round started
  }),
               PartitionedError);
}

// ---- side confusion: pready is send-only, arrived is receive-only ----------

TEST(Partitioned, PreadyOnRecvSideThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int y[2] = {0, 0};
    Partitioned r = c.precv_init(y, sizeof y, 0, 0, 2);
    r.start();
    r.pready(0);  // receive side has nothing to ready
  }),
               PartitionedError);
}

TEST(Partitioned, ArrivedOnSendSideThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[2] = {5, 6}, y[2] = {0, 0};
    Partitioned r = c.precv_init(y, sizeof y, 0, 0, 2);
    Partitioned s = c.psend_init(x, sizeof x, 0, 0, 2);
    r.start();
    s.start();
    (void)s.arrived(0);  // send side has nothing to consume
  }),
               PartitionedError);
}

TEST(Partitioned, PreadyIndexOutOfRangeThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[4] = {0, 1, 2, 3}, y[4] = {0, 0, 0, 0};
    Partitioned r = c.precv_init(y, sizeof y, 0, 0, 4);
    Partitioned s = c.psend_init(x, sizeof x, 0, 0, 4);
    r.start();
    s.start();
    s.pready(4);  // valid indices are 0..3
  }),
               PartitionedError);
}

TEST(Partitioned, ArrivedTwiceThrows) {
  Runtime rt(2, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int buf[2] = {11, 22};
    if (c.rank() == 0) {
      Partitioned s = c.psend_init(buf, sizeof buf, 1, 0, 2);
      s.start();
      s.pready(0);
      s.pready(1);
      s.wait();
      c.barrier();
    } else {
      Partitioned r = c.precv_init(buf, sizeof buf, 0, 0, 2);
      r.start();
      (void)r.arrived(1);
      c.barrier();
      (void)r.arrived(1);  // partition 1 already consumed this round
    }
  }),
               PartitionedError);
}

// ---- init-time validation: the partition table is checked once, up front ---

TEST(Partitioned, InitValidatesPeerBounds) {
  Runtime rt(2, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[2] = {0, 0};
    (void)c.psend_init(x, sizeof x, c.size(), 0, 2);  // out of range
  }),
               brickx::Error);
}

TEST(Partitioned, InitRejectsEmptyPartitionTable) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[2] = {0, 0};
    (void)c.psend_init(x, sizeof x, 0, 0, std::vector<std::size_t>{});
  }),
               PartitionedError);
}

TEST(Partitioned, InitRejectsZeroSizePartition) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[2] = {0, 0};
    (void)c.precv_init(x, sizeof x, 0, 0,
                       std::vector<std::size_t>{sizeof x, 0});
  }),
               PartitionedError);
}

TEST(Partitioned, InitRejectsPartitionSumMismatch) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[4] = {0, 1, 2, 3};
    (void)c.psend_init(x, sizeof x, 0, 0,
                       std::vector<std::size_t>{4, 4});  // sums to 8, not 16
  }),
               PartitionedError);
}

TEST(Partitioned, InitRejectsUnevenPartitionCount) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x[4] = {0, 1, 2, 3};
    (void)c.psend_init(x, sizeof x, 0, 0, 3);  // 3 does not divide 16
  }),
               PartitionedError);
}

TEST(Partitioned, FreeThenReinitIsClean) {
  Runtime rt(1, quiet());
  rt.run([](Comm& c) {
    int x[2] = {1, 2}, y[2] = {0, 0};
    Partitioned s = c.psend_init(x, sizeof x, 0, 0, 2);
    Partitioned r = c.precv_init(y, sizeof y, 0, 0, 2);
    r.start();
    s.start();
    s.pready(0);
    s.pready(1);
    r.wait();
    s.wait();
    EXPECT_EQ(y[0], 1);
    EXPECT_EQ(y[1], 2);
    s.free();
    EXPECT_FALSE(s.valid());
    s.free();  // idempotent on an empty handle
    // The handle can be re-pointed at a fresh init.
    s = c.psend_init(x, sizeof x, 0, 5, 2);
    EXPECT_TRUE(s.valid());
    EXPECT_FALSE(s.active());
    EXPECT_EQ(s.partitions(), 2);
  });
}

// Dropping an active handle (e.g. a faulted exchange unwinding) must not
// crash or leak into a later run — the abandoned round dies with its state.
TEST(Partitioned, DestructorWhileActiveIsSafe) {
  Runtime rt(2, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    if (c.rank() == 0) {
      int x[2] = {9, 9};
      Partitioned s = c.psend_init(x, sizeof x, 1, 0, 2);
      s.start();
      s.pready(0);
      brickx::fail("injected failure with a round in flight");
    } else {
      c.barrier();  // released by the abort
    }
  }),
               brickx::Error);
  Runtime rt2(2, quiet());
  rt2.run([](Comm& c) { c.barrier(); });
}

TEST(Partitioned, InitChargesNothing) {
  Runtime rt(2, quiet());
  rt.run([](Comm& c) {
    const double t0 = c.clock().now();
    int x[4] = {0, 0, 0, 0};
    Partitioned s = c.psend_init(x, sizeof x, 1 - c.rank(), 0, 4);
    Partitioned r = c.precv_init(x, sizeof x, 1 - c.rank(), 0, 4);
    EXPECT_EQ(c.clock().now(), t0);  // all modeled cost is on start/pready
    (void)s;
    (void)r;
  });
}

// ---- rounds: data, counters, and per-partition arrival semantics -----------

TEST(Partitioned, RingRoundsDeliverEveryPartition) {
  // Each rank streams 64 ints to its successor, split into 4 partitions,
  // readied in a scrambled order, across 3 rounds. A round is one logical
  // message: msgs_sent counts rounds, bytes count the whole payload.
  constexpr int kRanks = 4;
  constexpr int kRounds = 3;
  Runtime rt(kRanks, quiet());
  rt.run([&](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<int> out(64), in(64);
    Partitioned pr = c.precv_init(in.data(), in.size() * sizeof(int), prev,
                                  3, 4);
    Partitioned ps = c.psend_init(out.data(), out.size() * sizeof(int), next,
                                  3, 4);
    for (int round = 0; round < kRounds; ++round) {
      std::iota(out.begin(), out.end(), 1000 * c.rank() + 10000 * round);
      pr.start();
      ps.start();
      for (int i : {2, 0, 3, 1}) ps.pready(i);
      pr.wait();
      ps.wait();
      std::vector<int> want(64);
      std::iota(want.begin(), want.end(), 1000 * prev + 10000 * round);
      EXPECT_EQ(in, want) << "rank " << c.rank() << " round " << round;
    }
    pr.free();
    ps.free();
    EXPECT_EQ(c.counters().msgs_sent, kRounds);
    EXPECT_EQ(c.counters().msgs_recv, kRounds);
    EXPECT_EQ(c.counters().bytes_sent,
              static_cast<std::int64_t>(kRounds * 64 * sizeof(int)));
    EXPECT_EQ(c.counters().bytes_recv,
              static_cast<std::int64_t>(kRounds * 64 * sizeof(int)));
  });
}

TEST(Partitioned, BulkTrafficNeverSatisfiesAPartition) {
  // An ordinary send on the same (src, tag) must not be consumed by
  // arrived(): partitioned matching requires exact partition identity.
  Runtime rt(2, quiet());
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      int bulk = 42;
      int parts[2] = {7, 8};
      c.send(&bulk, sizeof bulk, 1, 0);  // same tag as the partitioned round
      Partitioned s = c.psend_init(parts, sizeof parts, 1, 0, 2);
      s.start();
      s.pready(0);
      s.pready(1);
      s.wait();
    } else {
      int parts[2] = {0, 0};
      Partitioned r = c.precv_init(parts, sizeof parts, 0, 0, 2);
      r.start();
      r.wait();
      EXPECT_EQ(parts[0], 7);
      EXPECT_EQ(parts[1], 8);
      int bulk = 0;
      c.recv(&bulk, sizeof bulk, 0, 0);  // the plain message is still there
      EXPECT_EQ(bulk, 42);
    }
  });
}

TEST(Partitioned, ArrivedReportsHiddenVsExposedLatency) {
  // arrived(i) returns true iff the partition landed before the receiver
  // asked — the "was this wait hidden by compute" bit the overlap
  // scheduler's accounting leans on. Consuming immediately exposes the
  // network latency; consuming after a long compute block hides it.
  for (const bool hide : {false, true}) {
    Runtime rt(2, quiet());
    rt.run([hide](Comm& c) {
      int buf[2] = {1, 2};
      if (c.rank() == 0) {
        Partitioned s = c.psend_init(buf, sizeof buf, 1, 0, 2);
        s.start();
        s.pready(0);
        s.pready(1);
        s.wait();
      } else {
        Partitioned r = c.precv_init(buf, sizeof buf, 0, 0, 2);
        r.start();
        if (hide) c.compute(1.0e-3);  // far longer than any modeled latency
        EXPECT_EQ(r.arrived(0), hide);
        EXPECT_EQ(r.arrived(1), hide);
        r.wait();
      }
    });
  }
}

TEST(Partitioned, RoundsAreDeterministic) {
  // Two identical runs produce bit-identical virtual time and payloads —
  // the schedule is a pure function of the program, never of host timing.
  auto run_once = [](std::vector<double>& t, std::vector<int>& data) {
    Runtime rt(2, quiet());
    rt.run([&](Comm& c) {
      std::vector<int> buf(32);
      if (c.rank() == 0) {
        std::iota(buf.begin(), buf.end(), 17);
        Partitioned s = c.psend_init(buf.data(), buf.size() * sizeof(int),
                                     1, 0, 4);
        for (int round = 0; round < 4; ++round) {
          s.start();
          for (int i : {3, 1, 2, 0}) s.pready(i);
          s.wait();
        }
      } else {
        Partitioned r = c.precv_init(buf.data(), buf.size() * sizeof(int),
                                     0, 0, 4);
        for (int round = 0; round < 4; ++round) {
          r.start();
          c.compute(2.0e-6);
          r.wait();
        }
        data = buf;
      }
    });
    t = {rt.final_vtime(0), rt.final_vtime(1)};
  };
  std::vector<double> ta, tb;
  std::vector<int> da, db;
  run_once(ta, da);
  run_once(tb, db);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(da, db);
}

// ---- fault seam: each partition is its own integrity stream ----------------

TEST(Partitioned, DelayedPartitionsKeepDataExactAndShiftTime) {
  auto stream = [](FaultInjector* fi, std::vector<int>& got) {
    Runtime rt(2, quiet());
    if (fi != nullptr) rt.set_fault_injector(fi);
    rt.run([&](Comm& c) {
      std::vector<int> buf(64);
      if (c.rank() == 0) {
        std::iota(buf.begin(), buf.end(), 5);
        Partitioned s = c.psend_init(buf.data(), buf.size() * sizeof(int),
                                     1, 0, 8);
        for (int round = 0; round < 3; ++round) {
          s.start();
          for (int i = 0; i < 8; ++i) s.pready(i);
          s.wait();
        }
      } else {
        Partitioned r = c.precv_init(buf.data(), buf.size() * sizeof(int),
                                     0, 0, 8);
        for (int round = 0; round < 3; ++round) {
          r.start();
          r.wait();
          got.insert(got.end(), buf.begin(), buf.end());
        }
      }
    });
    return rt.final_vtime(1);
  };

  std::vector<int> clean_data;
  const double clean_t = stream(nullptr, clean_data);

  FaultSpec spec;
  spec.delay = 1.0;  // every partition delayed
  spec.max_delay = 1e-3;
  FaultInjector fi(spec);
  std::vector<int> faulty_data;
  const double faulty_t = stream(&fi, faulty_data);

  EXPECT_EQ(faulty_data, clean_data);  // delay never changes payloads
  // The injector saw each partition as its own message: 3 rounds x 8.
  EXPECT_EQ(fi.counts().messages, 24);
  EXPECT_EQ(fi.counts().delayed, 24);
  EXPECT_EQ(fi.counts().detected, 0);
  EXPECT_GT(faulty_t, clean_t);
}

TEST(Partitioned, PartialFaultSchedulePerturbsPartitionsIndependently) {
  // With p = 0.5 some partitions are delayed and others are not, yet every
  // partition's own sequence stream stays clean: no integrity violations,
  // bit-exact payloads.
  FaultSpec spec;
  spec.delay = 0.5;
  spec.seed = 99;
  FaultInjector fi(spec);
  Runtime rt(2, quiet());
  rt.set_fault_injector(&fi);
  rt.run([](Comm& c) {
    std::vector<int> buf(48);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0);
      Partitioned s = c.psend_init(buf.data(), buf.size() * sizeof(int),
                                   1, 2, 6);
      for (int round = 0; round < 4; ++round) {
        s.start();
        for (int i = 0; i < 6; ++i) s.pready(i);
        s.wait();
      }
    } else {
      Partitioned r = c.precv_init(buf.data(), buf.size() * sizeof(int),
                                   0, 2, 6);
      for (int round = 0; round < 4; ++round) {
        r.start();
        r.wait();
        std::vector<int> want(48);
        std::iota(want.begin(), want.end(), 0);
        EXPECT_EQ(buf, want) << "round " << round;
      }
    }
  });
  EXPECT_EQ(fi.counts().messages, 24);  // 4 rounds x 6 partitions
  EXPECT_GT(fi.counts().delayed, 0);
  EXPECT_LT(fi.counts().delayed, 24);  // a partial schedule, by design
  EXPECT_EQ(fi.counts().detected, 0);
}

TEST(Partitioned, ReorderedPartitionsStillLandExactly) {
  // Reorder holds a partition's envelope back until the sender's next flush
  // point; the receive side must still assemble the full payload and the
  // per-partition integrity streams must stay clean.
  FaultSpec spec;
  spec.reorder = 0.5;
  spec.seed = 7;
  FaultInjector fi(spec);
  Runtime rt(2, quiet());
  rt.set_fault_injector(&fi);
  rt.run([](Comm& c) {
    std::vector<int> buf(32);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 100);
      Partitioned s = c.psend_init(buf.data(), buf.size() * sizeof(int),
                                   1, 0, 4);
      for (int round = 0; round < 3; ++round) {
        s.start();
        for (int i = 0; i < 4; ++i) s.pready(i);
        s.wait();  // flush point: held envelopes reach the wire here
      }
    } else {
      Partitioned r = c.precv_init(buf.data(), buf.size() * sizeof(int),
                                   0, 0, 4);
      for (int round = 0; round < 3; ++round) {
        r.start();
        r.wait();
        std::vector<int> want(32);
        std::iota(want.begin(), want.end(), 100);
        EXPECT_EQ(buf, want) << "round " << round;
      }
    }
  });
  EXPECT_GT(fi.counts().reordered, 0);
  EXPECT_EQ(fi.counts().detected, 0);
}

}  // namespace
}  // namespace brickx::mpi
