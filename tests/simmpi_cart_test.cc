#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "simmpi/cart.h"

namespace brickx::mpi {
namespace {

TEST(DimsCreate, CubicCounts) {
  EXPECT_EQ(dims_create<3>(8), (Vec3{2, 2, 2}));
  EXPECT_EQ(dims_create<3>(27), (Vec3{3, 3, 3}));
  EXPECT_EQ(dims_create<3>(64), (Vec3{4, 4, 4}));
}

TEST(DimsCreate, NonCubicCountsFactorEvenly) {
  EXPECT_EQ(dims_create<3>(16).prod(), 16);
  EXPECT_EQ(dims_create<3>(16), (Vec3{4, 2, 2}));
  EXPECT_EQ(dims_create<3>(32), (Vec3{4, 4, 2}));
  EXPECT_EQ(dims_create<3>(128).prod(), 128);
  EXPECT_EQ(dims_create<3>(6), (Vec3{3, 2, 1}));
  EXPECT_EQ(dims_create<3>(1), (Vec3{1, 1, 1}));
}

TEST(DimsCreate, LargestFactorOnAxis0) {
  const auto d = dims_create<3>(48);
  EXPECT_GE(d[0], d[1]);
  EXPECT_GE(d[1], d[2]);
  EXPECT_EQ(d.prod(), 48);
}

TEST(DimsCreate, Dimension2) {
  EXPECT_EQ(dims_create<2>(12), (Vec2{4, 3}));
  EXPECT_EQ(dims_create<2>(7), (Vec2{7, 1}));
}

TEST(Cart, CoordsRoundtrip) {
  Runtime rt(8, NetModel{});
  rt.run([](Comm& c) {
    Cart<3> cart(c, {2, 2, 2});
    EXPECT_EQ(cart.rank_of(cart.coords()), c.rank());
  });
}

TEST(Cart, MismatchedDimsThrow) {
  Runtime rt(4, NetModel{});
  EXPECT_THROW(rt.run([](Comm& c) { Cart<3> cart(c, {2, 2, 2}); }),
               brickx::Error);
}

TEST(Cart, PeriodicNeighbors) {
  Runtime rt(8, NetModel{});
  rt.run([](Comm& c) {
    Cart<3> cart(c, {2, 2, 2});
    // With extent 2 and periodicity, +1 and -1 along an axis are the same
    // rank.
    EXPECT_EQ(cart.neighbor(BitSet{1}), cart.neighbor(BitSet{-1}));
    // Moving +1 twice returns home.
    Vec3 cc = cart.coords();
    cc[0] += 2;
    EXPECT_EQ(cart.rank_of(cc), c.rank());
    // The diagonal neighbor differs in all three coords (mod 2).
    const int diag = cart.neighbor(BitSet{1, 2, 3});
    EXPECT_EQ(diag, cart.rank_of(Vec3{cart.coords()[0] + 1,
                                      cart.coords()[1] + 1,
                                      cart.coords()[2] + 1}));
  });
}

TEST(Cart, EveryRankHas26DistinctDirections) {
  const auto dirs = Cart<3>::all_directions();
  EXPECT_EQ(dirs.size(), 26u);
  std::set<std::uint64_t> uniq;
  for (const auto& d : dirs) uniq.insert(d.raw());
  EXPECT_EQ(uniq.size(), 26u);
}

TEST(Cart, AllDirectionsCountMatchesEq2) {
  // Eq. 2: number of neighbors = 3^D - 1.
  EXPECT_EQ(Cart<1>::all_directions().size(), 2u);
  EXPECT_EQ(Cart<2>::all_directions().size(), 8u);
  EXPECT_EQ(Cart<3>::all_directions().size(), 26u);
  EXPECT_EQ(Cart<4>::all_directions().size(), 80u);
}

TEST(Cart, NeighborExchangeDeliversFromCorrectSource) {
  // Each rank sends its rank id toward +1 along axis 1; everyone must
  // receive from the -1 neighbor.
  Runtime rt(8, NetModel{});
  rt.run([](Comm& c) {
    Cart<3> cart(c, {2, 2, 2});
    const int to = cart.neighbor(BitSet{1});
    const int from = cart.neighbor(BitSet{-1});
    int mine = c.rank(), got = -1;
    Request r = c.irecv(&got, sizeof got, from, 0);
    Request s = c.isend(&mine, sizeof mine, to, 0);
    c.wait(r);
    c.wait(s);
    EXPECT_EQ(got, from);
  });
}

TEST(Cart, LargerGridCoordsConsistent) {
  Runtime rt(24, NetModel{});
  rt.run([](Comm& c) {
    const auto dims = dims_create<3>(c.size());
    Cart<3> cart(c, dims);
    // rank_of is a bijection over the grid.
    EXPECT_EQ(cart.rank_of(cart.coords()), c.rank());
    for (const auto& d : Cart<3>::all_directions()) {
      const int nb = cart.neighbor(d);
      EXPECT_GE(nb, 0);
      EXPECT_LT(nb, c.size());
    }
  });
}

}  // namespace
}  // namespace brickx::mpi
