// Multi-field AoSoA workload tests (DESIGN.md §16): FieldSet / ArrayFields
// layout contracts, the field-count-invariant message counts of every
// exchanger, the differential oracle over fields > 1 (including under
// fault injection), and the harness-level invariance of Table-1 counters.

#include "core/field_set.h"

#include <gtest/gtest.h>

#include <cstring>

#include "baseline/array_exchange.h"
#include "check/fuzz.h"
#include "check/oracle.h"
#include "core/cell_array.h"
#include "core/decomp.h"
#include "core/exchange.h"
#include "harness/experiment.h"
#include "simmpi/cart.h"

namespace brickx {
namespace {

using mpi::Cart;
using mpi::Comm;
using mpi::NetModel;
using mpi::Runtime;

// ------------------------------------------------------------- layout ----

TEST(ArrayFields, SlabsAreFieldMajorAndCellArrayOrdered) {
  const Box<3> frame{{-2, -2, -2}, {6, 6, 6}};
  ArrayFields af(frame, 3);
  EXPECT_EQ(af.fields(), 3);
  EXPECT_EQ(af.field_elems(), frame.volume());
  EXPECT_EQ(af.raw().size(),
            static_cast<std::size_t>(3 * frame.volume()));
  // Slab f starts exactly f * volume doubles into the single allocation.
  for (int f = 0; f < 3; ++f)
    EXPECT_EQ(af.field_base(f), af.raw().data() + f * frame.volume());
  // Within a slab, at(f, p) follows CellArray3's lexicographic order
  // (axis 0 fastest) — byte-compatible with the span kernels.
  CellArray3 ca(frame);
  std::int64_t i = 0;
  for_each(frame, [&](const Vec3& p) {
    ca.at(p) = static_cast<double>(i);
    af.at(1, p) = static_cast<double>(i);
    ++i;
  });
  EXPECT_EQ(std::memcmp(af.field_base(1), ca.raw().data(),
                        static_cast<std::size_t>(frame.volume()) *
                            sizeof(double)),
            0);
}

TEST(FieldSet, FieldAccessorsHitAoSoAChunkOffsets) {
  constexpr int B = 4;
  BrickDecomp<3> dec({8, 8, 8}, B, Vec3::fill(B), surface3d());
  BrickInfo<3> info = dec.brick_info();
  BrickStorage store = dec.allocate(3);
  EXPECT_EQ(store.fields(), 3);
  FieldSet<B, B, B> fs(&info, &store);
  EXPECT_EQ(fs.fields(), 3);
  for (int f = 0; f < 3; ++f) {
    // Each field's Brick view anchors f * B^3 elements into every chunk —
    // the AoSoA contract the single-message exchange depends on.
    EXPECT_EQ(fs.field(f).elem_offset(), (f * Brick<B, B, B>::kElems));
    fs.field(f).at(0, 1, 2, 3) = 100.0 + f;
  }
  for (int f = 0; f < 3; ++f)
    EXPECT_EQ(fs.field(f).at(0, 1, 2, 3), 100.0 + f);
}

// -------------------------------------- exchanger message invariance ----

double gv(std::uint64_t salt, Vec3 g, const Vec3& ext) {
  for (int a = 0; a < 3; ++a) g[a] = ((g[a] % ext[a]) + ext[a]) % ext[a];
  return static_cast<double>(salt * 1000000 +
                             static_cast<std::uint64_t>(
                                 (g[2] * ext[1] + g[1]) * ext[0] + g[0]));
}

template <typename MakeExchange>
void multi_field_end_to_end(int fields, MakeExchange&& make) {
  Runtime rt(8, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, {2, 2, 2});
    const Vec3 N{8, 8, 8};
    const std::int64_t g = 2;
    const Vec3 ext{16, 16, 16};
    const Vec3 off = cart.coords() * N;
    ArrayFields af(Box<3>{{-g, -g, -g}, {10, 10, 10}}, fields);
    for (int f = 0; f < fields; ++f)
      for_each(Box<3>{{0, 0, 0}, N}, [&](const Vec3& p) {
        af.at(f, p) = gv(static_cast<std::uint64_t>(f), p + off, ext);
      });
    const auto dirs = Cart<3>::all_directions();
    std::vector<int> ranks;
    for (const auto& d : dirs) ranks.push_back(cart.neighbor(d));
    make(comm, N, g, dirs, ranks, af);
    // Every field's ghost frame must hold that field's salted fill — a
    // cross-field routing error shows up as the wrong millions digit.
    for (int f = 0; f < fields; ++f) {
      std::int64_t bad = 0;
      for_each(af.box(), [&](const Vec3& p) {
        if (af.at(f, p) != gv(static_cast<std::uint64_t>(f), p + off, ext))
          ++bad;
      });
      EXPECT_EQ(bad, 0) << "rank " << comm.rank() << " field " << f;
    }
  });
}

TEST(MultiFieldExchange, PackSendsOneMessagePerNeighbor) {
  std::int64_t bytes1 = 0, bytes3 = 0;
  multi_field_end_to_end(1, [&](Comm& comm, const Vec3& N, std::int64_t g,
                                const std::vector<BitSet>& dirs,
                                const std::vector<int>& ranks,
                                ArrayFields& af) {
    baseline::PackExchanger ex(N, g, dirs, ranks, 1);
    EXPECT_EQ(ex.send_message_count(), 26);
    bytes1 = ex.send_byte_count();
    ex.exchange(comm, af);
  });
  multi_field_end_to_end(3, [&](Comm& comm, const Vec3& N, std::int64_t g,
                                const std::vector<BitSet>& dirs,
                                const std::vector<int>& ranks,
                                ArrayFields& af) {
    baseline::PackExchanger ex(N, g, dirs, ranks, 3);
    // The acceptance property: message count is field-count-invariant,
    // bytes scale exactly linearly.
    EXPECT_EQ(ex.send_message_count(), 26);
    bytes3 = ex.send_byte_count();
    ex.exchange(comm, af);
  });
  EXPECT_EQ(bytes3, 3 * bytes1);
}

TEST(MultiFieldExchange, MpiTypesConcatDatatypePerNeighbor) {
  std::int64_t bytes1 = 0, bytes3 = 0;
  multi_field_end_to_end(1, [&](Comm& comm, const Vec3& N, std::int64_t g,
                                const std::vector<BitSet>& dirs,
                                const std::vector<int>& ranks,
                                ArrayFields& af) {
    baseline::MpiTypesExchanger ex(N, g, dirs, ranks, af);
    EXPECT_EQ(ex.send_message_count(), 26);
    bytes1 = ex.send_byte_count();
    ex.exchange(comm, af);
  });
  multi_field_end_to_end(3, [&](Comm& comm, const Vec3& N, std::int64_t g,
                                const std::vector<BitSet>& dirs,
                                const std::vector<int>& ranks,
                                ArrayFields& af) {
    baseline::MpiTypesExchanger ex(N, g, dirs, ranks, af);
    EXPECT_EQ(ex.send_message_count(), 26);
    bytes3 = ex.send_byte_count();
    ex.exchange(comm, af);
  });
  EXPECT_EQ(bytes3, 3 * bytes1);
}

TEST(MultiFieldExchange, PersistentPlansCarryAllFields) {
  multi_field_end_to_end(2, [&](Comm& comm, const Vec3& N, std::int64_t g,
                                const std::vector<BitSet>& dirs,
                                const std::vector<int>& ranks,
                                ArrayFields& af) {
    baseline::MpiTypesExchanger ex(N, g, dirs, ranks, af);
    ex.make_persistent(comm, af);
    for (int round = 0; round < 2; ++round) ex.exchange(comm, af);
  });
}

// -------------------------------------------------------------- oracle ----

conformance::FuzzConfig oracle_config(int fields) {
  conformance::FuzzConfig cfg;
  cfg.seed = 42;
  cfg.rank_dims = {2, 1, 1};
  cfg.brick = {4, 4, 4};
  cfg.ghost = 4;
  cfg.subdomain = {12, 12, 12};
  cfg.rounds = 2;
  cfg.fields = fields;
  return cfg;
}

TEST(MultiFieldOracle, AllFiveMethodsConform) {
  const conformance::OracleReport rep =
      conformance::run_oracle(oracle_config(3));
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_EQ(rep.methods_compared, 5);
  // Message counts stay the exact single-field 98/42/26 structure.
  EXPECT_EQ(rep.basic_msgs, 98);
  EXPECT_EQ(rep.layout_msgs, 42);
  EXPECT_EQ(rep.memmap_msgs, 26);
  // Payload scales exactly linearly in the field count.
  EXPECT_EQ(rep.payload_bytes, 3 * (20 * 20 * 20 - 12 * 12 * 12) * 8);
}

TEST(MultiFieldOracle, ConformsWithPaddingAndPersistence) {
  conformance::FuzzConfig cfg = oracle_config(2);
  cfg.page_size = 16384;
  cfg.persistent = true;
  const conformance::OracleReport rep = conformance::run_oracle(cfg);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
}

TEST(MultiFieldOracle, SerializeParseRoundTripsFields) {
  const conformance::FuzzConfig cfg = oracle_config(2);
  const auto back =
      conformance::parse_config(conformance::serialize_config(cfg));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->fields, 2);
  EXPECT_EQ(conformance::serialize_config(*back),
            conformance::serialize_config(cfg));
}

TEST(MultiFieldFaultOracle, CorruptionInAnyFieldIsDetected) {
  mpi::FaultSpec spec;
  spec.corrupt = 1.0;
  spec.seed = 5;
  const conformance::FaultOracleReport rep =
      conformance::run_fault_oracle(oracle_config(2), spec);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_TRUE(rep.error_raised);
  EXPECT_TRUE(rep.fault_diagnosed);
}

TEST(MultiFieldFaultOracle, BenignDelaysLeaveEveryFieldBitIdentical) {
  mpi::FaultSpec spec;
  spec.delay = 1.0;
  spec.max_delay = 1e-3;
  spec.seed = 77;
  const conformance::FaultOracleReport rep =
      conformance::run_fault_oracle(oracle_config(2), spec);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_FALSE(rep.error_raised);
}

// ------------------------------------------------------------- harness ----

TEST(MultiFieldHarness, MessageCountsAreFieldCountInvariant) {
  for (harness::Method m :
       {harness::Method::Yask, harness::Method::MpiTypes,
        harness::Method::Basic, harness::Method::Layout,
        harness::Method::MemMap}) {
    harness::Config cfg;
    cfg.rank_dims = {2, 1, 1};
    cfg.subdomain = {16, 16, 16};
    cfg.brick = 8;
    cfg.ghost = 8;
    cfg.method = m;
    cfg.timesteps = 2;
    cfg.validate = true;
    const harness::Result one = harness::run(cfg);
    cfg.fields = 3;
    const harness::Result three = harness::run(cfg);
    EXPECT_TRUE(one.validated && three.validated)
        << harness::method_name(m);
    // One message per (neighbor, round) regardless of field count —
    // Table 1's counters must not move; only bytes scale.
    EXPECT_EQ(three.msgs_per_rank, one.msgs_per_rank)
        << harness::method_name(m);
    EXPECT_EQ(three.wire_bytes_per_rank, 3 * one.wire_bytes_per_rank)
        << harness::method_name(m);
    EXPECT_EQ(three.payload_bytes_per_rank, 3 * one.payload_bytes_per_rank)
        << harness::method_name(m);
  }
}

TEST(MultiFieldHarness, FieldZeroReproducesSingleFieldRunExactly) {
  // fields = 1 must stay byte-identical to the historical single-field
  // path: same messages, same bytes, same validation — the golden-stdout
  // guarantee depends on it.
  harness::Config cfg;
  cfg.rank_dims = {2, 1, 1};
  cfg.subdomain = {24, 24, 24};  // > 2 * ghost: the full 42-message regime
  cfg.brick = 8;
  cfg.ghost = 8;
  cfg.method = harness::Method::Layout;
  cfg.timesteps = 2;
  cfg.validate = true;
  cfg.fields = 1;
  const harness::Result r = harness::run(cfg);
  EXPECT_TRUE(r.validated);
  EXPECT_EQ(r.msgs_per_rank, 42);
}

}  // namespace
}  // namespace brickx
