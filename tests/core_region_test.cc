#include "core/region.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.h"

namespace brickx {
namespace {

TEST(Region, SignatureCountIsEq2) {
  EXPECT_EQ(all_surface_signatures(1).size(), 2u);
  EXPECT_EQ(all_surface_signatures(2).size(), 8u);
  EXPECT_EQ(all_surface_signatures(3).size(), 26u);
  EXPECT_EQ(all_surface_signatures(4).size(), 80u);
  EXPECT_EQ(all_surface_signatures(5).size(), 242u);
}

TEST(Region, DestinationsAreNonemptySignedSubsets) {
  const BitSet corner{1, -2, 3};
  const auto dst = region_destinations(corner, 3);
  EXPECT_EQ(dst.size(), 7u);  // 2^3 - 1
  for (const auto& nu : dst) {
    EXPECT_FALSE(nu.empty());
    EXPECT_TRUE(nu.subset_of(corner));
  }
  // A face region goes to exactly one neighbor.
  EXPECT_EQ(region_destinations(BitSet{-2}, 3).size(), 1u);
  // An edge region goes to three.
  EXPECT_EQ(region_destinations(BitSet{1, 3}, 3).size(), 3u);
}

TEST(Region, TotalSendInstancesMatchEq3) {
  for (int d = 1; d <= 4; ++d) {
    std::int64_t five = 1, three = 1;
    for (int i = 0; i < d; ++i) {
      five *= 5;
      three *= 3;
    }
    std::int64_t instances = 0;
    for (const auto& sigma : all_surface_signatures(d))
      instances += static_cast<std::int64_t>(
          region_destinations(sigma, d).size());
    EXPECT_EQ(instances, five - three) << "D=" << d;
  }
}

TEST(Region, GhostSubregionsCountAndUniqueness) {
  const auto nbrs = all_surface_signatures(3);
  const auto ghosts = ghost_subregions(nbrs, nbrs, 3);
  EXPECT_EQ(ghosts.size(), 98u);  // 5^3 - 3^3
  std::set<std::pair<std::uint64_t, std::uint64_t>> uniq;
  for (const auto& g : ghosts) {
    EXPECT_TRUE(g.sigma.subset_of(g.sigma));
    // Membership rule: the sender's region must cover the mirrored source.
    EXPECT_TRUE(region_sent_to(g.sigma, g.nu.flipped()));
    EXPECT_TRUE(uniq.insert({g.nu.raw(), g.sigma.raw()}).second);
  }
}

TEST(Region, SurfaceBoxesPartitionTheSurface) {
  const Vec3 n{6, 5, 4};
  const Vec3 gb{1, 1, 1};
  std::map<std::int64_t, int> cover;
  Box<3> whole{{0, 0, 0}, {6, 5, 4}};
  for (const auto& sigma : all_surface_signatures(3)) {
    const Box<3> b = surface_box<3>(sigma, n, gb);
    for_each(b, [&](const Vec3& p) {
      ++cover[linearize(p, Vec3{16, 16, 16})];
    });
  }
  // Interior middle box.
  Box<3> mid{{1, 1, 1}, {5, 4, 3}};
  std::int64_t surface_cells = 0;
  for_each(whole, [&](const Vec3& p) {
    if (!mid.contains(p)) ++surface_cells;
  });
  EXPECT_EQ(static_cast<std::int64_t>(cover.size()), surface_cells);
  for (const auto& [k, v] : cover) EXPECT_EQ(v, 1) << "cell covered twice";
}

TEST(Region, GhostBoxesPartitionTheFrame) {
  const Vec3 n{4, 4, 4};
  const Vec3 gb{1, 1, 1};
  const auto nbrs = all_surface_signatures(3);
  std::map<std::int64_t, int> cover;
  for (const auto& g : ghost_subregions(nbrs, nbrs, 3)) {
    const Box<3> b = ghost_box<3>(g, n, gb);
    for_each(b, [&](const Vec3& p) {
      // Frame coordinates offset by +1 to stay positive for linearize.
      ++cover[linearize(p + Vec3{1, 1, 1}, Vec3{8, 8, 8})];
    });
  }
  EXPECT_EQ(cover.size(), 6u * 6 * 6 - 4 * 4 * 4);
  for (const auto& [k, v] : cover) EXPECT_EQ(v, 1);
}

TEST(Region, GhostBoxMatchesSenderSurfaceExtent) {
  const Vec3 n{8, 6, 4};
  const Vec3 gb{2, 1, 1};
  const auto nbrs = all_surface_signatures(3);
  for (const auto& g : ghost_subregions(nbrs, nbrs, 3)) {
    const Box<3> gbx = ghost_box<3>(g, n, gb);
    const Box<3> sbx = surface_box<3>(g.sigma, n, gb);
    EXPECT_EQ(gbx.extent(), sbx.extent())
        << "nu=" << g.nu.str() << " sigma=" << g.sigma.str();
  }
}

TEST(Region, EmptyMiddleBandWhenMinimal) {
  // n == 2*gb: regions with any 0-direction axis vanish.
  const Vec3 n{2, 2, 2};
  const Vec3 gb{1, 1, 1};
  for (const auto& sigma : all_surface_signatures(3)) {
    const Box<3> b = surface_box<3>(sigma, n, gb);
    if (sigma.size() == 3) {
      EXPECT_EQ(b.volume(), 1);
    } else {
      EXPECT_EQ(b.volume(), 0);
    }
  }
}

TEST(Region, TooSmallSubdomainRejected) {
  EXPECT_THROW((surface_box<3>(BitSet{1}, Vec3{1, 2, 2}, Vec3{1, 1, 1})),
               Error);
}

TEST(Region, TwoDimensionalBoxes) {
  const Vec2 n{4, 4};
  const Vec2 gb{1, 1};
  // Figure 2's region 4 (left face, {-1}) spans the middle rows.
  const Box<2> left = surface_box<2>(BitSet{-1}, n, gb);
  EXPECT_EQ(left.lo, (Vec2{0, 1}));
  EXPECT_EQ(left.hi, (Vec2{1, 3}));
  // Corner {1, 2}: top-right single block.
  const Box<2> tr = surface_box<2>(BitSet{1, 2}, n, gb);
  EXPECT_EQ(tr.lo, (Vec2{3, 3}));
  EXPECT_EQ(tr.hi, (Vec2{4, 4}));
}

}  // namespace
}  // namespace brickx
