// Tests for the joint autotuner (src/tune): canonical-key soundness, the
// memo cache's serialize-and-compare collision safety (with the unsafe
// hash-trusting mode demonstrated for contrast), bit-exact artifact replay,
// the tuned-beats-hand-picked guarantee, thread-count invariance of the
// emitted artifact bytes, and replay of the committed tuned_config.json.

#include <gtest/gtest.h>

#include <string>

#include "tune/tuner.h"

namespace brickx::tune {
namespace {

/// A deliberately small tuned problem: 2 ranks, 16^3 subdomain, dragonfly
/// fabric so the mapping axis stays in the space. Search space: 3 layouts
/// x 5 mappings x 2 bricks x 3 pages = 90 candidates, each a 2-rank
/// virtual-clock run — fast enough to tune several times per test binary.
harness::Config small_problem() {
  harness::Config cfg;
  cfg.machine = model::theta();
  cfg.machine.net.ranks_per_node = 2;
  cfg.rank_dims = {2, 1, 1};
  cfg.subdomain = {16, 16, 16};
  cfg.brick = 8;
  cfg.ghost = 8;
  cfg.method = harness::Method::MemMap;
  cfg.timesteps = 2;
  cfg.warmup_exchanges = 1;
  cfg.execute_kernels = false;
  cfg.fabric = netsim::FabricKind::Dragonfly;
  return cfg;
}

// -------------------------------------------------------- canonical key ----

TEST(CanonicalKey, DistinguishesEveryTunedLever) {
  const harness::Config base = small_problem();
  const std::string k = canonical_key(base);

  harness::Config c = base;
  c.brick = 4;
  EXPECT_NE(canonical_key(c), k);
  c = base;
  c.page_size = 16384;
  EXPECT_NE(canonical_key(c), k);
  c = base;
  c.mapping = netsim::MapKind::Rcb;
  EXPECT_NE(canonical_key(c), k);
  c = base;
  c.layout = lexicographic_layout(3);
  EXPECT_NE(canonical_key(c), k);
  c = base;
  c.fabric = netsim::FabricKind::FatTree;
  EXPECT_NE(canonical_key(c), k);
  c = base;
  c.method = harness::Method::Layout;
  EXPECT_NE(canonical_key(c), k);
  c = base;
  c.machine.net.ranks_per_node = 1;
  EXPECT_NE(canonical_key(c), k);
  c = base;
  c.subdomain = {16, 16, 32};
  EXPECT_NE(canonical_key(c), k);
  c = base;
  c.timesteps = 3;
  EXPECT_NE(canonical_key(c), k);
  c = base;
  c.overlap = true;
  EXPECT_NE(canonical_key(c), k);
  c = base;
  c.transport = transport::Kind::Shm;
  EXPECT_NE(canonical_key(c), k);

  // Two layouts with different permutations serialize differently even
  // though both are "set".
  harness::Config a = base, b = base;
  a.layout = surface3d();
  b.layout = lexicographic_layout(3);
  EXPECT_NE(canonical_key(a), canonical_key(b));
  // And equality is preserved: same Config, same key.
  EXPECT_EQ(canonical_key(base), canonical_key(small_problem()));
}

// ----------------------------------------------------------- memo cache ----

/// Two distinct canonical-ish strings landing in the same masked bucket.
/// With hash_bits = 1 there are only two buckets, so among any three
/// distinct keys two must collide.
std::pair<std::string, std::string> colliding_pair(int hash_bits) {
  const std::uint64_t mask = (1ull << hash_bits) - 1;
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < 64; ++i)
    keys.push_back("config-variant-" + std::to_string(i));
  for (std::size_t i = 0; i < keys.size(); ++i)
    for (std::size_t j = i + 1; j < keys.size(); ++j)
      if ((fnv1a(keys[i]) & mask) == (fnv1a(keys[j]) & mask))
        return {keys[i], keys[j]};
  ADD_FAILURE() << "no colliding pair found";
  return {"", ""};
}

TEST(EvalCache, VerifiedModeSurvivesForcedHashCollisionsExactly) {
  // hash_bits = 1: every second key collides. The serialize-and-compare
  // chain must keep each key's evaluation exact and count the collisions
  // instead of aliasing.
  EvalCache cache(/*verify_keys=*/true, /*hash_bits=*/1);
  const auto [ka, kb] = colliding_pair(1);
  const Evaluation ea{1.0, 0.25, 10.0};
  const Evaluation eb{2.0, 0.50, 20.0};
  cache.store(ka, ea);
  cache.store(kb, eb);
  const auto got_a = cache.lookup(ka);
  const auto got_b = cache.lookup(kb);
  ASSERT_TRUE(got_a.has_value());
  ASSERT_TRUE(got_b.has_value());
  EXPECT_EQ(*got_a, ea);
  EXPECT_EQ(*got_b, eb);
  // The kb store probed a bucket already holding ka — a detected,
  // chained collision, never a silent merge.
  EXPECT_GT(cache.stats().hits, 0);
  const auto miss = cache.lookup("a-third-key-entirely");
  EXPECT_FALSE(miss.has_value());
}

TEST(EvalCache, HashTrustingModeDemonstrablyAliases) {
  // The same forced collision under verify_keys = false: the cache
  // returns the *other* config's evaluation. This is the failure mode the
  // default mode makes structurally impossible.
  EvalCache cache(/*verify_keys=*/false, /*hash_bits=*/1);
  const auto [ka, kb] = colliding_pair(1);
  const Evaluation ea{1.0, 0.25, 10.0};
  cache.store(ka, ea);
  const auto aliased = cache.lookup(kb);  // never stored!
  ASSERT_TRUE(aliased.has_value());
  EXPECT_EQ(*aliased, ea);
}

TEST(EvalCache, CollisionCounterDetectsBucketConflicts) {
  EvalCache cache(/*verify_keys=*/true, /*hash_bits=*/1);
  const auto [ka, kb] = colliding_pair(1);
  cache.store(ka, Evaluation{});
  (void)cache.lookup(kb);  // occupied bucket, different key
  EXPECT_EQ(cache.stats().collisions, 1);
  EXPECT_EQ(cache.stats().hits, 0);
}

// ---------------------------------------------------------------- tune ----

TEST(Tune, MemoizedRetuneIsBitIdenticalAndEvaluationFree) {
  const harness::Config problem = small_problem();
  const SearchSpace space = SearchSpace::standard(problem, 200);
  EvalCache cache;
  const TuneResult cold = tune(problem, space, 2, &cache);
  EXPECT_EQ(cold.evaluated, cold.distinct);  // every distinct key ran once
  const TuneResult warm = tune(problem, space, 2, &cache);
  EXPECT_EQ(warm.evaluated, 0);
  EXPECT_EQ(warm.best, cold.best);
  EXPECT_EQ(to_json(warm.artifact), to_json(cold.artifact));
}

TEST(Tune, TunedMeetsOrBeatsTheHandPickedBaseline) {
  const harness::Config problem = small_problem();
  const harness::Result hand = harness::run(problem);
  const TuneResult res =
      tune(problem, SearchSpace::standard(problem, 200), 2);
  EXPECT_LE(res.best.total_seconds, hand.total_seconds);
}

TEST(Tune, ArtifactReplayReproducesThePredictionBitExactly) {
  const harness::Config problem = small_problem();
  const TuneResult res =
      tune(problem, SearchSpace::standard(problem, 200), 2);
  const harness::Result replay = harness::run(tuned_config(res.artifact));
  EXPECT_EQ(replay.total_seconds, res.artifact.predicted_total_seconds);
  EXPECT_EQ(replay.comm_per_step, res.artifact.predicted_comm_per_step);
  EXPECT_EQ(replay.gstencils, res.artifact.predicted_gstencils);
}

TEST(Tune, ArtifactBytesAreInvariantUnderTheWorkerThreadCount) {
  const harness::Config problem = small_problem();
  const SearchSpace space = SearchSpace::standard(problem, 200);
  const TuneResult one = tune(problem, space, 1);
  const TuneResult four = tune(problem, space, 4);
  EXPECT_EQ(one.best_index, four.best_index);
  EXPECT_EQ(to_json(one.artifact), to_json(four.artifact));
}

// ------------------------------------------------------------- artifact ----

TEST(Artifact, JsonRoundTripsByteExactly) {
  const harness::Config problem = small_problem();
  const TuneResult res =
      tune(problem, SearchSpace::standard(problem, 200), 2);
  const std::string json = to_json(res.artifact);
  const auto back = from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(to_json(*back), json);
  EXPECT_EQ(back->config_hash, res.artifact.config_hash);
}

TEST(Artifact, ParserRejectsCorruptDocuments) {
  const harness::Config problem = small_problem();
  const TunedArtifact art = artifact_from(problem);
  const std::string good = to_json(art);
  EXPECT_TRUE(from_json(good).has_value());
  EXPECT_FALSE(from_json("").has_value());
  EXPECT_FALSE(from_json("{").has_value());
  // Wrong schema version.
  {
    std::string bad = good;
    const auto at = bad.find("brickx-tuned-config-v1");
    ASSERT_NE(at, std::string::npos);
    bad.replace(at, 22, "brickx-tuned-config-v9");
    EXPECT_FALSE(from_json(bad).has_value());
  }
  // Unknown mapping name.
  {
    std::string bad = good;
    const auto at = bad.find("\"block\"");
    ASSERT_NE(at, std::string::npos);
    bad.replace(at, 7, "\"blorp\"");
    EXPECT_FALSE(from_json(bad).has_value());
  }
}

TEST(Artifact, CommittedArtifactReplaysItsPredictionExactly) {
  // tests/data/tuned_config.json is a real brickx_tune output committed to
  // the repo; the cost model must keep reproducing its recorded prediction
  // bit-for-bit, or the artifact (and the committed goldens) are stale.
  const auto art =
      load_artifact(std::string(BRICKX_TESTDATA_DIR) + "/tuned_config.json");
  ASSERT_TRUE(art.has_value());
  EXPECT_EQ(art->candidates, art->distinct);
  const harness::Result replay = harness::run(tuned_config(*art));
  EXPECT_EQ(replay.total_seconds, art->predicted_total_seconds);
  EXPECT_EQ(replay.comm_per_step, art->predicted_comm_per_step);
  EXPECT_EQ(replay.gstencils, art->predicted_gstencils);
  // And the hand-picked baseline for the same problem is still no better.
  const harness::Result hand = harness::run(problem_config(*art));
  EXPECT_LE(art->predicted_total_seconds, hand.total_seconds);
}

}  // namespace
}  // namespace brickx::tune
