#include "core/exchange_view.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/cell_array.h"
#include "core/exchange.h"
#include "memmap/pagesize.h"
#include "memmap/view.h"
#include "simmpi/cart.h"

namespace brickx {
namespace {

using mpi::Cart;
using mpi::Comm;
using mpi::NetModel;
using mpi::Runtime;

TEST(ExchangeViewTest, RequiresMmapStorage) {
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickStorage heap = dec.allocate(1);
  std::vector<int> ranks(26, 0);
  EXPECT_THROW((ExchangeView<3>(dec, heap, ranks)), Error);
}

TEST(ExchangeViewTest, OneMessagePerNeighbor) {
  BrickDecomp<3> dec({32, 32, 32}, 8, {8, 8, 8}, surface3d());
  BrickStorage store = dec.mmap_alloc(1);
  std::vector<int> ranks(26, 0);
  ExchangeView<3> ev(dec, store, ranks);
  EXPECT_EQ(ev.send_message_count(), 26);
}

TEST(ExchangeViewTest, PayloadMatchesLayoutBytes) {
  BrickDecomp<3> dec({32, 32, 32}, 8, {8, 8, 8}, surface3d());
  BrickStorage mstore = dec.mmap_alloc(1);
  BrickStorage hstore = dec.allocate(1);
  std::vector<int> ranks(26, 0);
  ExchangeView<3> ev(dec, mstore, ranks);
  Exchanger<3> ex(dec, hstore, ranks, Exchanger<3>::Mode::Layout);
  EXPECT_EQ(ev.payload_byte_count(), ex.send_byte_count());
  // 8^3 doubles on 4 KiB pages: zero padding overhead (the Theta case).
  if (mm::host_page_size() == 4096) {
    EXPECT_EQ(ev.send_byte_count(), ev.payload_byte_count());
    EXPECT_EQ(ev.padding_overhead_percent(), 0.0);
  }
}

TEST(ExchangeViewTest, LargePagePaddingOverheadGrowsForSmallSubdomains) {
  // The Table 2 effect: on 64 KiB pages, small subdomains waste most of
  // each page; large subdomains hardly notice.
  const std::size_t big = 64 * 1024;
  std::vector<int> ranks(26, 0);
  BrickDecomp<3> small({16, 16, 16}, 8, {8, 8, 8}, surface3d());
  BrickStorage ssto = small.mmap_alloc(1, big);
  ExchangeView<3> sev(small, ssto, ranks);
  BrickDecomp<3> large({64, 64, 64}, 8, {8, 8, 8}, surface3d());
  BrickStorage lsto = large.mmap_alloc(1, big);
  ExchangeView<3> lev(large, lsto, ranks);
  EXPECT_GT(sev.padding_overhead_percent(), lev.padding_overhead_percent());
  EXPECT_GT(sev.padding_overhead_percent(), 100.0);  // mostly padding
}

TEST(ExchangeViewTest, ViewSegmentsStayFarBelowMapLimit) {
  BrickDecomp<3> dec({32, 32, 32}, 8, {8, 8, 8}, surface3d());
  BrickStorage store = dec.mmap_alloc(1);
  std::vector<int> ranks(26, 0);
  ExchangeView<3> ev(dec, store, ranks);
  // 98 send segments + 98 recv segments; the paper's concern threshold is
  // vm.max_map_count = 65530.
  EXPECT_EQ(ev.view_segment_count(), 2 * 98);
  EXPECT_LT(ev.view_segment_count(), 65530);
}

TEST(ExchangeViewTest, ViewsAliasStorageWithoutCopy) {
  // Writing through brick storage must be immediately visible in the send
  // view — that is the whole point of MemMap (zero on-node data movement).
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickStorage store = dec.mmap_alloc(1);
  std::vector<int> ranks(26, 0);

  // Reconstruct a send view for one neighbor by hand and spot-check
  // aliasing: pick neighbor {1} (positive x face).
  mm::ViewBuilder vb(*store.file());
  std::size_t payload = 0;
  for (int o = 0; o < dec.surface_region_count(); ++o) {
    const auto& r = dec.regions()[static_cast<std::size_t>(o)];
    if (!region_sent_to(r.sigma, BitSet{1})) continue;
    const auto& c = store.chunks()[static_cast<std::size_t>(o)];
    vb.add(c.offset, c.padded_bytes);
    payload += c.bytes;
  }
  mm::View v = vb.build();
  ASSERT_TRUE(v.valid());
  EXPECT_GE(v.size(), payload);

  // First chunk in the view is the first layout region sent to {1}.
  int first = -1;
  for (int o = 0; o < dec.surface_region_count() && first < 0; ++o)
    if (region_sent_to(dec.regions()[static_cast<std::size_t>(o)].sigma,
                       BitSet{1}) &&
        dec.regions()[static_cast<std::size_t>(o)].brick_count > 0)
      first = o;
  ASSERT_GE(first, 0);
  const std::int64_t brick0 =
      dec.regions()[static_cast<std::size_t>(first)].first_brick;
  store.brick(brick0)[0] = 1234.5;
  EXPECT_EQ(*reinterpret_cast<double*>(v.data()), 1234.5);
  // And the aliasing goes both ways.
  *reinterpret_cast<double*>(v.data()) = 77.25;
  EXPECT_EQ(store.brick(brick0)[0], 77.25);
}

TEST(ExchangeViewTest, EndToEndOnEmulatedLargePages) {
  // Full 8-rank exchange with 64 KiB emulated pages: padding travels but
  // ghost data still lands exactly.
  Runtime rt(8, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, {2, 2, 2});
    const Vec3 N{16, 16, 16};
    BrickDecomp<3> dec(N, 4, {4, 4, 4}, surface3d());
    BrickStorage store = dec.mmap_alloc(1, 64 * 1024);
    const auto ranks = populate(cart, dec);
    const Vec3 offset = cart.coords() * N;
    const Vec3 global{32, 32, 32};
    auto f = [&](Vec3 g) {
      for (int a = 0; a < 3; ++a) g[a] = ((g[a] % 32) + 32) % 32;
      return static_cast<double>((g[2] * 32 + g[1]) * 32 + g[0]);
    };
    (void)global;
    CellArray3 own(Box<3>{{0, 0, 0}, N});
    for_each(own.box(), [&](const Vec3& p) { own.at(p) = f(p + offset); });
    cells_to_bricks(dec, own, store, 0);
    ExchangeView<3> ev(dec, store, ranks);
    EXPECT_GT(ev.padding_overhead_percent(), 0.0);
    ev.exchange(comm);
    CellArray3 frame(Box<3>{{-4, -4, -4}, {20, 20, 20}});
    bricks_to_cells(dec, store, 0, frame);
    std::int64_t bad = 0;
    for_each(frame.box(), [&](const Vec3& p) {
      if (frame.at(p) != f(p + offset)) ++bad;
    });
    EXPECT_EQ(bad, 0);
  });
}

TEST(ExchangeViewTest, TwoDimensionalViews) {
  Runtime rt(4, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<2> cart(comm, {2, 2});
    const Vec2 N{16, 16};
    BrickDecomp<2> dec(N, 8, {8, 8}, surface2d());
    BrickStorage store = dec.mmap_alloc(1);
    const auto ranks = populate(cart, dec);
    ExchangeView<2> ev(dec, store, ranks);
    EXPECT_EQ(ev.send_message_count(), 8);
    ev.exchange(comm);
  });
}

}  // namespace
}  // namespace brickx
