// Differential tests for the fast-path kernel engine (DESIGN.md §10):
// the engine must be bit-identical to the naive per-access kernels over
// arbitrary output boxes — full-domain, ghost-adjacent, clipped to odd
// offsets, single-brick, and empty — for both brick sizes and both
// stencils. Storage buffers are compared byte-for-byte, which also proves
// the brick-range pruning never writes a brick outside the output box.

#include "stencil/kernel_engine.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "core/brick.h"
#include "core/cell_array.h"
#include "harness/experiment.h"
#include "stencil/stencils.h"

namespace brickx::stencil {
namespace {

/// Fill every allocated brick of `store` (field 0) with reproducible
/// pseudo-random values, including the ghost frame.
void fill_random(const BrickDecomp<3>& dec, BrickStorage& store, Rng& rng) {
  for (std::int64_t b = 0; b < dec.total_brick_count(); ++b) {
    double* p = store.brick(b);
    for (std::int64_t e = 0; e < dec.elements_per_brick(); ++e)
      p[e] = rng.uniform() * 2.0 - 1.0;
  }
}

template <int B>
void expect_paths_identical(const Box<3>& box, bool use125,
                            std::uint64_t seed) {
  const std::int64_t g = B;  // one ghost brick layer
  BrickDecomp<3> dec({16, 16, 16}, g, Vec3::fill(B), surface3d());
  BrickInfo<3> info = dec.brick_info();
  BrickStorage sin = dec.allocate(1);
  BrickStorage out_fast = dec.allocate(1), out_naive = dec.allocate(1);
  Rng rng(seed);
  fill_random(dec, sin, rng);
  Brick<B, B, B> bin(&info, &sin, 0);
  Brick<B, B, B> bfast(&info, &out_fast, 0), bnaive(&info, &out_naive, 0);
  if (use125) {
    apply125_bricks<B, B, B>(dec, bfast, bin, box);
    apply125_bricks_naive<B, B, B>(dec, bnaive, bin, box);
  } else {
    apply7_bricks<B, B, B>(dec, bfast, bin, box);
    apply7_bricks_naive<B, B, B>(dec, bnaive, bin, box);
  }
  // Byte-compare whole storages: allocated zeroed, so any write outside
  // the output box (pruning bug) diverges just like a wrong value would.
  EXPECT_EQ(std::memcmp(out_fast.data(), out_naive.data(), out_fast.bytes()),
            0)
      << "B=" << B << " use125=" << use125 << " seed=" << seed << " box=["
      << box.lo[0] << "," << box.lo[1] << "," << box.lo[2] << ")-["
      << box.hi[0] << "," << box.hi[1] << "," << box.hi[2] << ")";
}

/// Boxes exercising every engine path. Radius-r reads from cells in the
/// box's margin must stay inside the allocated frame [-g, 16+g), so random
/// boxes are drawn from [-(g-r), 16+g-r).
template <int B>
std::vector<Box<3>> test_boxes(bool use125, std::uint64_t seed) {
  const std::int64_t g = B, r = use125 ? 2 : 1;
  std::vector<Box<3>> boxes;
  // Full domain: every interior brick takes the fast path.
  boxes.push_back(Box<3>{{0, 0, 0}, {16, 16, 16}});
  // Ghost-cell expansion box (ghost-adjacent reads and ghost-brick
  // writes; frame-edge bricks must fall back to the boundary path).
  boxes.push_back(expansion_output_box<3>({16, 16, 16}, g, r, 0));
  // Single brick, interior.
  boxes.push_back(Box<3>{{B, B, B}, {2 * B, 2 * B, 2 * B}});
  // Single cell (clipped everywhere).
  boxes.push_back(Box<3>{{3, 5, 7}, {4, 6, 8}});
  // Empty boxes: zero-extent and inverted.
  boxes.push_back(Box<3>{{0, 0, 0}, {0, 0, 0}});
  boxes.push_back(Box<3>{{5, 5, 5}, {5, 9, 9}});
  // Randomized clipped boxes (odd offsets, partial bricks, some reaching
  // into the ghost frame).
  Rng rng(seed);
  for (int t = 0; t < 10; ++t) {
    Box<3> b;
    for (int a = 0; a < 3; ++a) {
      const std::int64_t span = 16 + 2 * (g - r);
      const std::int64_t lo =
          -(g - r) + static_cast<std::int64_t>(rng.below(
                         static_cast<std::uint64_t>(span)));
      const std::int64_t len = 1 + static_cast<std::int64_t>(rng.below(
                                       static_cast<std::uint64_t>(
                                           16 + (g - r) - lo)));
      b.lo[a] = lo;
      b.hi[a] = lo + len;
    }
    boxes.push_back(b);
  }
  return boxes;
}

class KernelEngine
    : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(KernelEngine, FastMatchesNaiveBitExactly) {
  const bool use125 = std::get<0>(GetParam());
  const int brick = std::get<1>(GetParam());
  std::uint64_t seed = use125 ? 1000 : 2000;
  if (brick == 4) {
    for (const Box<3>& b : test_boxes<4>(use125, seed))
      expect_paths_identical<4>(b, use125, ++seed);
  } else {
    for (const Box<3>& b : test_boxes<8>(use125, seed))
      expect_paths_identical<8>(b, use125, ++seed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelEngine,
    ::testing::Combine(::testing::Bool(), ::testing::Values(4, 8)),
    [](const auto& i) {
      return std::string(std::get<0>(i.param) ? "p125" : "p7") + "_b" +
             std::to_string(std::get<1>(i.param));
    });

TEST(BrickGridRange, MatchesExhaustiveScan) {
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  const Vec3 B = dec.brick_dims();
  Rng rng(42);
  std::vector<Box<3>> boxes = {
      {{0, 0, 0}, {16, 16, 16}},  {{-4, -4, -4}, {20, 20, 20}},
      {{-3, 1, 5}, {2, 4, 17}},   {{0, 0, 0}, {1, 1, 1}},
      {{0, 0, 0}, {0, 0, 0}},     {{-20, -20, -20}, {-18, -18, -18}},
      {{30, 30, 30}, {40, 40, 40}}};
  for (int t = 0; t < 20; ++t) {
    Box<3> b;
    for (int a = 0; a < 3; ++a) {
      b.lo[a] = -6 + static_cast<std::int64_t>(rng.below(28));
      b.hi[a] = b.lo[a] + static_cast<std::int64_t>(rng.below(12));
    }
    boxes.push_back(b);
  }
  for (const Box<3>& box : boxes) {
    const Box<3> gr = brick_grid_range(dec, box);
    // Every allocated brick intersecting `box` is inside the range, and
    // every brick inside the range intersects `box`.
    for (std::int64_t s = 0; s < dec.total_brick_count(); ++s) {
      const Vec3 g = dec.grid_of(s);
      Box<3> cells{g * B, g * B + B};
      bool overlaps = true;
      for (int a = 0; a < 3; ++a)
        overlaps = overlaps && std::max(cells.lo[a], box.lo[a]) <
                                   std::min(cells.hi[a], box.hi[a]);
      EXPECT_EQ(overlaps, gr.contains(g))
          << "brick " << s << " box lo=" << box.lo[0] << "," << box.lo[1]
          << "," << box.lo[2];
    }
  }
}

TEST(ArrayKernels, FastMatchesNaiveBitExactly) {
  Rng rng(7);
  const Box<3> frame{{-5, -5, -5}, {15, 15, 15}};
  CellArray3 in(frame);
  for_each(frame, [&](const Vec3& p) { in.at(p) = rng.uniform() - 0.5; });
  std::vector<Box<3>> boxes = {{{0, 0, 0}, {10, 10, 10}},
                               {{-3, -3, -3}, {13, 13, 13}},
                               {{1, 2, 3}, {4, 9, 6}},
                               {{0, 0, 0}, {0, 0, 0}}};
  for (int t = 0; t < 10; ++t) {
    Box<3> b;
    for (int a = 0; a < 3; ++a) {
      b.lo[a] = -3 + static_cast<std::int64_t>(rng.below(14));
      b.hi[a] = b.lo[a] + static_cast<std::int64_t>(
                              rng.below(static_cast<std::uint64_t>(
                                  13 - b.lo[a] + 1)));
    }
    boxes.push_back(b);
  }
  for (const Box<3>& box : boxes) {
    for (int use125 = 0; use125 < 2; ++use125) {
      CellArray3 of(frame), on(frame);
      if (use125) {
        apply125_array(in, of, box);
        apply125_array_naive(in, on, box);
      } else {
        apply7_array(in, of, box);
        apply7_array_naive(in, on, box);
      }
      EXPECT_EQ(std::memcmp(of.raw().data(), on.raw().data(),
                            of.raw().size() * sizeof(double)),
                0)
          << "use125=" << use125 << " box lo=" << box.lo[0] << ","
          << box.lo[1] << "," << box.lo[2];
    }
  }
}

TEST(EvolveReference, HoistedScratchMatchesPerStepRebuild) {
  // Re-run the pre-hoist algorithm (fresh padded array + wrap indexing
  // every step) and require bit-equality with the hoisted implementation.
  for (int use125 = 0; use125 < 2; ++use125) {
    const Box<3> box{{0, 0, 0}, {6, 6, 6}};
    const Vec3 ext = box.extent();
    const int r = use125 ? 2 : 1;
    CellArray3 hoisted(box), rebuilt(box);
    Rng rng(99);
    for_each(box, [&](const Vec3& p) {
      hoisted.at(p) = rng.uniform();
    });
    rebuilt.raw() = hoisted.raw();
    const int steps = 5;
    evolve_reference(hoisted, steps, use125 != 0);
    for (int s = 0; s < steps; ++s) {
      CellArray3 padded(
          Box<3>{box.lo - Vec3::fill(r), box.hi + Vec3::fill(r)});
      for_each(padded.box(), [&](const Vec3& p) {
        Vec3 q = p - box.lo;
        for (int a = 0; a < 3; ++a)
          q[a] = ((q[a] % ext[a]) + ext[a]) % ext[a];
        padded.at(p) = rebuilt.at(q + box.lo);
      });
      if (use125) {
        apply125_array_naive(padded, rebuilt, box);
      } else {
        apply7_array_naive(padded, rebuilt, box);
      }
    }
    EXPECT_EQ(std::memcmp(hoisted.raw().data(), rebuilt.raw().data(),
                          hoisted.raw().size() * sizeof(double)),
              0)
        << "use125=" << use125;
  }
}

TEST(HarnessDispatch, NaiveAndFastRunsProduceIdenticalResults) {
  // End-to-end guard: a full harness run (exchange + ghost-cell expansion
  // + validation against the global reference) must be invariant to the
  // kernel path — virtual-time results depend on the model, not on
  // wall-clock kernel speed, and the computed data is bit-identical.
  for (bool use125 : {false, true}) {
    harness::Config cfg;
    cfg.rank_dims = {2, 1, 1};
    cfg.subdomain = {8, 8, 8};
    cfg.brick = 4;
    cfg.ghost = 4;
    cfg.use125 = use125;
    cfg.method = harness::Method::Layout;
    cfg.timesteps = 4;
    cfg.validate = true;
    harness::Result fast = harness::run(cfg);
    cfg.naive_kernels = true;
    harness::Result naive = harness::run(cfg);
    EXPECT_TRUE(fast.validated);
    EXPECT_TRUE(naive.validated);
    EXPECT_EQ(fast.total_seconds, naive.total_seconds);
    EXPECT_EQ(fast.calc_per_step, naive.calc_per_step);
    EXPECT_EQ(fast.comm_per_step, naive.comm_per_step);
    EXPECT_EQ(fast.gstencils, naive.gstencils);
  }
}

}  // namespace
}  // namespace brickx::stencil
