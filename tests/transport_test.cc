// The on-node transport tier (DESIGN.md §13): the generic aggregation
// protocol in isolation (transport::Aggregator is deliberately
// runtime-free), then the simmpi integration — shared-memory short-circuit
// and node-leader frames — for delivery correctness, determinism and
// stats accounting.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "simmpi/comm.h"
#include "transport/aggregate.h"
#include "transport/transport.h"

namespace brickx::transport {
namespace {

// ---- Kind parsing -----------------------------------------------------------

TEST(TransportKind, NamesRoundTrip) {
  for (Kind k : {Kind::Flat, Kind::Shm, Kind::ShmAgg}) {
    Kind back = Kind::Flat;
    ASSERT_TRUE(parse_kind(kind_name(k), &back)) << kind_name(k);
    EXPECT_EQ(back, k);
  }
}

TEST(TransportKind, RejectsUnknownNames) {
  Kind k = Kind::Flat;
  EXPECT_FALSE(parse_kind("", &k));
  EXPECT_FALSE(parse_kind("shm-aggregate", &k));
  EXPECT_FALSE(parse_kind("SHM", &k));
}

// ---- the aggregation protocol, runtime-free ---------------------------------

struct Rec {
  int src_node, dst_node;
  std::int64_t gen;
  std::vector<int> subs;
};

struct Agg {
  std::vector<Rec> frames;
  Aggregator<int> agg;
  explicit Agg(std::vector<int> node_of)
      : agg(std::move(node_of), [this](Aggregator<int>::Frame&& f) {
          frames.push_back(Rec{f.src_node, f.dst_node, f.gen, f.subs});
        }) {}
};

TEST(Aggregator, FrameSealsOnlyWhenEveryMemberCommitsPastItsGeneration) {
  Agg a({0, 0, 1, 1});
  a.agg.stage(0, 1, 100);
  a.agg.stage(1, 1, 101);
  EXPECT_EQ(a.agg.pending(), 2);
  a.agg.commit(0);  // rank 1 has not committed: node minimum still gen 0
  EXPECT_TRUE(a.frames.empty());
  a.agg.commit(1);
  ASSERT_EQ(a.frames.size(), 1u);
  EXPECT_EQ(a.frames[0].src_node, 0);
  EXPECT_EQ(a.frames[0].dst_node, 1);
  EXPECT_EQ(a.frames[0].gen, 0);
  EXPECT_EQ(a.agg.pending(), 0);
}

TEST(Aggregator, SubsOrderedByMemberRankThenProgramOrder) {
  Agg a({0, 0, 1, 1});
  // Interleave staging across the two members; thread timing can never do
  // worse than an adversarial interleave of the same program orders.
  a.agg.stage(1, 1, 10);
  a.agg.stage(0, 1, 20);
  a.agg.stage(1, 1, 11);
  a.agg.stage(0, 1, 21);
  a.agg.commit(0);
  a.agg.commit(1);
  ASSERT_EQ(a.frames.size(), 1u);
  EXPECT_EQ(a.frames[0].subs, (std::vector<int>{20, 21, 10, 11}));
}

TEST(Aggregator, SealOrderIsGenerationThenDstNode) {
  Agg a({0, 0, 1, 1, 2, 2});
  a.agg.stage(0, 2, 1);  // gen 0 -> node 2
  a.agg.stage(0, 1, 2);  // gen 0 -> node 1
  a.agg.commit(0);
  a.agg.commit(1);  // min commit 1: both gen-0 frames seal, node 1 first
  ASSERT_EQ(a.frames.size(), 2u);
  EXPECT_EQ(a.frames[0].dst_node, 1);
  EXPECT_EQ(a.frames[1].dst_node, 2);

  a.frames.clear();
  a.agg.stage(0, 1, 3);  // gen 1
  a.agg.stage(1, 2, 4);  // gen 1
  a.agg.commit(0);
  a.agg.commit(1);
  ASSERT_EQ(a.frames.size(), 2u);
  EXPECT_EQ(a.frames[0].gen, 1);
  EXPECT_EQ(a.frames[0].dst_node, 1);
  EXPECT_EQ(a.frames[1].dst_node, 2);
}

TEST(Aggregator, DeferDisplacesIntoTheNextGeneration) {
  Agg a({0, 0, 1});
  a.agg.stage(0, 1, 1);
  a.agg.stage(0, 1, 2, /*defer=*/true);  // reorder-fault displacement
  a.agg.commit(0);
  a.agg.commit(1);
  ASSERT_EQ(a.frames.size(), 1u);
  EXPECT_EQ(a.frames[0].subs, (std::vector<int>{1}));
  EXPECT_EQ(a.agg.pending(), 1);  // the deferred sub rides generation 1
  a.agg.commit(0);
  a.agg.commit(1);
  ASSERT_EQ(a.frames.size(), 2u);
  EXPECT_EQ(a.frames[1].gen, 1);
  EXPECT_EQ(a.frames[1].subs, (std::vector<int>{2}));
}

TEST(Aggregator, FinalizeForceSealsEverythingLeft) {
  Agg a({0, 0});
  a.agg.stage(0, 3, 7);
  a.agg.stage(1, 3, 8);
  a.agg.stage(0, 5, 9);
  a.agg.finalize(0);
  EXPECT_TRUE(a.frames.empty());  // member 1 still live
  a.agg.finalize(1);
  ASSERT_EQ(a.frames.size(), 2u);
  EXPECT_EQ(a.frames[0].dst_node, 3);
  EXPECT_EQ(a.frames[0].subs, (std::vector<int>{7, 8}));
  EXPECT_EQ(a.frames[1].dst_node, 5);
  EXPECT_EQ(a.agg.pending(), 0);
}

TEST(Aggregator, PerNodeProtocolsAreIndependent) {
  Agg a({0, 0, 1, 1});
  a.agg.stage(2, 0, 40);
  a.agg.stage(3, 0, 41);
  a.agg.commit(2);
  a.agg.commit(3);  // node 1 seals without node 0 committing at all
  ASSERT_EQ(a.frames.size(), 1u);
  EXPECT_EQ(a.frames[0].src_node, 1);
  EXPECT_EQ(a.frames[0].subs, (std::vector<int>{40, 41}));
}

}  // namespace
}  // namespace brickx::transport

// ---- simmpi integration -----------------------------------------------------

namespace brickx::mpi {
namespace {

/// 4 ranks, 2 per node. Every rank sends one tagged message to every other
/// rank and receives from every other rank — intra- and inter-node pairs in
/// one symmetric program (recv routes through wait, which is a commit
/// point, so aggregation frames seal without an explicit barrier).
void all_pairs(Comm& c, std::vector<std::vector<int>>& got) {
  const int n = c.size();
  std::vector<int> out(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d)
    out[static_cast<std::size_t>(d)] = 1000 * c.rank() + d;
  std::vector<Request> reqs;
  for (int d = 0; d < n; ++d) {
    if (d == c.rank()) continue;
    reqs.push_back(c.isend(&out[static_cast<std::size_t>(d)], sizeof(int), d,
                           c.rank()));
  }
  got[static_cast<std::size_t>(c.rank())].assign(static_cast<std::size_t>(n),
                                                 -1);
  for (int s = 0; s < n; ++s) {
    if (s == c.rank()) continue;
    c.recv(&got[static_cast<std::size_t>(c.rank())][static_cast<std::size_t>(s)],
           sizeof(int), s, s);
  }
  for (Request& r : reqs) c.wait(r);
}

NetModel two_per_node() {
  NetModel m;
  m.ranks_per_node = 2;
  return m;
}

struct RunOut {
  std::vector<std::vector<int>> got;
  std::vector<double> vtimes;
  transport::Stats stats;
  CommCounters c0;
};

RunOut run_all_pairs(transport::Kind k) {
  Runtime rt(4, two_per_node());
  rt.set_transport(k);
  RunOut out;
  out.got.resize(4);
  rt.run([&](Comm& c) { all_pairs(c, out.got); });
  for (int r = 0; r < 4; ++r) out.vtimes.push_back(rt.final_vtime(r));
  out.stats = rt.transport_stats();
  out.c0 = rt.final_counters(0);
  return out;
}

TEST(TransportRuntime, DeliveredDataIsTransportInvariant) {
  const RunOut flat = run_all_pairs(transport::Kind::Flat);
  const RunOut shm = run_all_pairs(transport::Kind::Shm);
  const RunOut agg = run_all_pairs(transport::Kind::ShmAgg);
  for (int r = 0; r < 4; ++r) {
    for (int s = 0; s < 4; ++s) {
      if (s == r) continue;
      const int want = 1000 * s + r;
      EXPECT_EQ(flat.got[r][s], want) << "flat " << r << "<-" << s;
      EXPECT_EQ(shm.got[r][s], want) << "shm " << r << "<-" << s;
      EXPECT_EQ(agg.got[r][s], want) << "shm-agg " << r << "<-" << s;
    }
  }
}

TEST(TransportRuntime, VirtualTimesAreBitDeterministic) {
  for (transport::Kind k : {transport::Kind::Shm, transport::Kind::ShmAgg}) {
    const RunOut a = run_all_pairs(k);
    const RunOut b = run_all_pairs(k);
    for (int r = 0; r < 4; ++r)
      EXPECT_EQ(a.vtimes[static_cast<std::size_t>(r)],
                b.vtimes[static_cast<std::size_t>(r)])
          << transport::kind_name(k) << " rank " << r;
  }
}

TEST(TransportRuntime, StatsAccountForEveryMessageExactlyOnce) {
  // Each of the 4 ranks sends 1 intra (its node peer) and 2 inter messages.
  const RunOut shm = run_all_pairs(transport::Kind::Shm);
  EXPECT_EQ(shm.stats.onnode_msgs, 4);
  EXPECT_EQ(shm.stats.onnode_bytes, 4 * static_cast<std::int64_t>(sizeof(int)));
  EXPECT_EQ(shm.stats.onnode_copies, 0);  // contiguous: pointer handoff
  EXPECT_EQ(shm.stats.agg_frames, 0);

  const RunOut agg = run_all_pairs(transport::Kind::ShmAgg);
  EXPECT_EQ(agg.stats.onnode_msgs, 4);
  EXPECT_EQ(agg.stats.agg_submsgs, 8);  // all 8 inter-node messages framed
  // One frame per (node, other node) pair: both members stage before either
  // commits, so everything rides generation 0.
  EXPECT_EQ(agg.stats.agg_frames, 2);
  EXPECT_GT(agg.stats.agg_frame_bytes,
            8 * static_cast<std::int64_t>(sizeof(int)));

  EXPECT_EQ(agg.c0.msgs_intra, 1);
  EXPECT_EQ(agg.c0.msgs_inter, 2);
  EXPECT_EQ(agg.c0.msgs_intra + agg.c0.msgs_inter, agg.c0.msgs_sent);
}

TEST(TransportRuntime, CountersSplitIsTransportIndependent) {
  const RunOut flat = run_all_pairs(transport::Kind::Flat);
  const RunOut shm = run_all_pairs(transport::Kind::Shm);
  EXPECT_EQ(flat.c0.msgs_intra, shm.c0.msgs_intra);
  EXPECT_EQ(flat.c0.msgs_inter, shm.c0.msgs_inter);
  EXPECT_EQ(flat.c0.bytes_intra, shm.c0.bytes_intra);
  EXPECT_EQ(flat.c0.bytes_inter, shm.c0.bytes_inter);
  EXPECT_EQ(flat.c0.msgs_recv, shm.c0.msgs_recv);
}

TEST(TransportRuntime, OnNodeDeliveryIsFasterThanTheFabricPath) {
  // The same-node handoff alpha is far below the inter-node link alpha, so
  // a purely intra-node exchange finishes sooner under shm.
  auto intra_only = [](transport::Kind k) {
    Runtime rt(2, two_per_node());
    rt.set_transport(k);
    rt.run([](Comm& c) {
      int v = c.rank(), got = -1;
      const int peer = 1 - c.rank();
      Request s = c.isend(&v, sizeof v, peer, 0);
      c.recv(&got, sizeof got, peer, 0);
      c.wait(s);
      EXPECT_EQ(got, peer);
    });
    return std::max(rt.final_vtime(0), rt.final_vtime(1));
  };
  EXPECT_LT(intra_only(transport::Kind::Shm),
            intra_only(transport::Kind::Flat));
}

}  // namespace
}  // namespace brickx::mpi
