#include "core/exchange.h"

#include <gtest/gtest.h>

#include <atomic>

#include "core/cell_array.h"
#include "core/decomp.h"
#include "core/exchange_view.h"
#include "simmpi/cart.h"

namespace brickx {
namespace {

using mpi::Cart;
using mpi::Comm;
using mpi::NetModel;
using mpi::Runtime;

// Deterministic globally-unique cell value.
double gval(Vec3 g, const Vec3& global_ext, int field = 0) {
  for (int a = 0; a < 3; ++a)
    g[a] = ((g[a] % global_ext[a]) + global_ext[a]) % global_ext[a];
  return static_cast<double>(
             (g[2] * global_ext[1] + g[1]) * global_ext[0] + g[0]) +
         0.125 * field;
}

enum class Method { Layout, Basic, MemMap };

struct Case {
  int nranks;
  std::int64_t domain;  // per-rank cells per axis
  std::int64_t brick;
  std::int64_t ghost;
  int fields;
  Method method;
};

// Runs a full ghost-zone exchange on a periodic 3D rank grid and verifies
// every ghost cell of every rank and field against the global function.
// Returns the per-rank send message count (asserted equal across ranks).
std::int64_t run_case(const Case& cs) {
  Runtime rt(cs.nranks, NetModel{});
  std::atomic<std::int64_t> msgs{-1};
  rt.run([&](Comm& comm) {
    const Vec3 dims = mpi::dims_create<3>(comm.size());
    Cart<3> cart(comm, dims);
    const Vec3 N = Vec3::fill(cs.domain);
    const Vec3 global_ext = dims * N;

    BrickDecomp<3> dec(N, cs.ghost, Vec3::fill(cs.brick), surface3d());
    BrickStorage store = cs.method == Method::MemMap
                             ? dec.mmap_alloc(cs.fields)
                             : dec.allocate(cs.fields);
    const auto ranks = populate(cart, dec);

    // Fill own cells; poison the ghost frame.
    const Vec3 offset = cart.coords() * N;
    CellArray3 own(Box<3>{{0, 0, 0}, N});
    for (int f = 0; f < cs.fields; ++f) {
      for_each(own.box(),
               [&](const Vec3& p) { own.at(p) = gval(p + offset, global_ext, f); });
      cells_to_bricks(dec, own, store, f);
    }

    std::int64_t sent = 0;
    if (cs.method == Method::MemMap) {
      ExchangeView<3> ev(dec, store, ranks);
      ev.exchange(comm);
      sent = ev.send_message_count();
    } else {
      Exchanger<3> ex(dec, store, ranks,
                      cs.method == Method::Layout
                          ? Exchanger<3>::Mode::Layout
                          : Exchanger<3>::Mode::Basic);
      ex.exchange(comm);
      sent = ex.send_message_count();
    }

    // Validate the whole frame including the ghost zone.
    const Vec3 G = Vec3::fill(cs.ghost);
    CellArray3 frame(Box<3>{Vec3{0, 0, 0} - G, N + G});
    for (int f = 0; f < cs.fields; ++f) {
      bricks_to_cells(dec, store, f, frame);
      std::int64_t bad = 0;
      for_each(frame.box(), [&](const Vec3& p) {
        if (frame.at(p) != gval(p + offset, global_ext, f)) ++bad;
      });
      EXPECT_EQ(bad, 0) << "rank " << comm.rank() << " field " << f;
    }

    // All ranks send the same number of messages (symmetric decomposition).
    std::int64_t expect = msgs.exchange(sent);
    EXPECT_TRUE(expect == -1 || expect == sent);
  });
  return msgs.load();
}

TEST(Exchange, LayoutCorrectEightRanks) {
  EXPECT_EQ(run_case({8, 16, 4, 4, 1, Method::Layout}), 42);
}

TEST(Exchange, LayoutMatchesPaperMessageCount42) {
  // 32^3 subdomain, 8^3 bricks, 8-wide ghost: the paper's configuration.
  EXPECT_EQ(run_case({8, 32, 8, 8, 1, Method::Layout}), 42);
}

TEST(Exchange, BasicMatchesPaperMessageCount98) {
  EXPECT_EQ(run_case({8, 32, 8, 8, 1, Method::Basic}), 98);
}

TEST(Exchange, MemMapUsesOneMessagePerNeighbor) {
  EXPECT_EQ(run_case({8, 32, 8, 8, 1, Method::MemMap}), 26);
}

TEST(Exchange, SingleRankSelfExchange) {
  // Fully periodic 1-rank job: every neighbor is the rank itself.
  EXPECT_EQ(run_case({1, 16, 4, 4, 1, Method::Layout}), 42);
  EXPECT_EQ(run_case({1, 16, 4, 4, 1, Method::MemMap}), 26);
}

TEST(Exchange, TwoRanks) {
  EXPECT_EQ(run_case({2, 16, 4, 4, 1, Method::Layout}), 42);
}

TEST(Exchange, NonCubicRankGrid) {
  EXPECT_EQ(run_case({12, 16, 4, 4, 1, Method::Layout}), 42);
  EXPECT_EQ(run_case({6, 16, 4, 4, 1, Method::MemMap}), 26);
}

TEST(Exchange, TwentySevenRanks) {
  // 8^3-cell subdomains are minimal (n == 2*gb): only corner regions are
  // nonempty and runs merge across the vanished regions between them,
  // yielding fewer messages than the 56 Basic instances.
  const std::int64_t m = run_case({27, 8, 4, 4, 1, Method::Layout});
  EXPECT_EQ(m, 35);
  EXPECT_LT(m, run_case({27, 8, 4, 4, 1, Method::Basic}));
}

TEST(Exchange, MinimalSubdomainDropsEmptyRegions) {
  // n == 2*gb: only corner regions exist; Layout message count collapses.
  // 8 corners, each sent to 7 neighbors, runs merge along the layout: the
  // count must be below Basic's 56 and above the 8-corner floor.
  const std::int64_t m = run_case({8, 8, 4, 4, 1, Method::Layout});
  EXPECT_GT(m, 8);
  EXPECT_LE(m, 56);
  const std::int64_t b = run_case({8, 8, 4, 4, 1, Method::Basic});
  EXPECT_EQ(b, 56);  // 8 corners x 7 destinations
  EXPECT_LT(m, b);
}

TEST(Exchange, MultiFieldInterleavedExchangesAllFieldsAtOnce) {
  EXPECT_EQ(run_case({8, 16, 4, 4, 3, Method::Layout}), 42);
  EXPECT_EQ(run_case({8, 16, 4, 4, 2, Method::MemMap}), 26);
}

TEST(Exchange, RepeatedExchangesAreStable) {
  // The pattern is Static: run several timesteps of exchange with the data
  // unchanged; ghosts stay correct (no tag/order drift).
  Runtime rt(8, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, {2, 2, 2});
    const Vec3 N{16, 16, 16};
    BrickDecomp<3> dec(N, 4, {4, 4, 4}, surface3d());
    BrickStorage store = dec.allocate(1);
    const auto ranks = populate(cart, dec);
    const Vec3 global_ext{32, 32, 32};
    const Vec3 offset = cart.coords() * N;
    CellArray3 own(Box<3>{{0, 0, 0}, N});
    for_each(own.box(),
             [&](const Vec3& p) { own.at(p) = gval(p + offset, global_ext); });
    cells_to_bricks(dec, own, store, 0);
    Exchanger<3> ex(dec, store, ranks, Exchanger<3>::Mode::Layout);
    for (int step = 0; step < 5; ++step) {
      ex.exchange(comm);
      CellArray3 frame(Box<3>{{-4, -4, -4}, {20, 20, 20}});
      bricks_to_cells(dec, store, 0, frame);
      std::int64_t bad = 0;
      for_each(frame.box(), [&](const Vec3& p) {
        if (frame.at(p) != gval(p + offset, global_ext)) ++bad;
      });
      ASSERT_EQ(bad, 0) << "step " << step;
    }
  });
}

TEST(Exchange, PlanGroupsCoverEveryInstanceExactlyOnce) {
  BrickDecomp<3> dec({32, 32, 32}, 8, {8, 8, 8}, surface3d());
  BrickStorage store = dec.allocate(1);
  std::int64_t total_regions = 0, total_msgs = 0;
  for (const BitSet& nu : dec.neighbor_order()) {
    const auto groups = plan_send_groups(dec, store, nu, true);
    total_msgs += static_cast<std::int64_t>(groups.size());
    std::set<int> seen;
    for (const auto& g : groups)
      for (int o : g) {
        EXPECT_TRUE(seen.insert(o).second);
        EXPECT_TRUE(region_sent_to(
            dec.regions()[static_cast<std::size_t>(o)].sigma, nu));
      }
    total_regions += static_cast<std::int64_t>(seen.size());
    // Every nonempty member region appears.
    for (int o = 0; o < dec.surface_region_count(); ++o) {
      const auto& r = dec.regions()[static_cast<std::size_t>(o)];
      if (region_sent_to(r.sigma, nu) && r.brick_count > 0)
        EXPECT_TRUE(seen.count(o));
    }
  }
  EXPECT_EQ(total_regions, basic_message_count(3));
  EXPECT_EQ(total_msgs, 42);
}

TEST(Exchange, SendBytesEqualSurfaceInstanceVolume) {
  BrickDecomp<3> dec({32, 32, 32}, 8, {8, 8, 8}, surface3d());
  BrickStorage store = dec.allocate(1);
  std::vector<int> self(26, 0);  // ranks unused for byte accounting
  Exchanger<3> ex(dec, store, self, Exchanger<3>::Mode::Layout);
  Exchanger<3> bx(dec, store, self, Exchanger<3>::Mode::Basic);
  // Both methods move the same bytes; Layout just uses fewer messages.
  EXPECT_EQ(ex.send_byte_count(), bx.send_byte_count());
  std::int64_t expect = 0;
  for (int o = 0; o < dec.surface_region_count(); ++o) {
    const auto& r = dec.regions()[static_cast<std::size_t>(o)];
    expect += r.brick_count * 512 * 8 *
              static_cast<std::int64_t>(region_destinations(r.sigma, 3).size());
  }
  EXPECT_EQ(ex.send_byte_count(), expect);
}

TEST(Exchange, NetworkFloorMovesSameVolumeInFewestMessages) {
  Runtime rt(8, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, {2, 2, 2});
    BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
    BrickStorage store = dec.allocate(1);
    const auto ranks = populate(cart, dec);
    NetworkFloorExchanger<3> nf(dec, store, ranks);
    EXPECT_EQ(nf.send_message_count(), 26);
    Exchanger<3> ex(dec, store, ranks, Exchanger<3>::Mode::Layout);
    EXPECT_EQ(nf.send_byte_count(), ex.send_byte_count());
    nf.exchange(comm);  // completes without deadlock
    nf.exchange(comm);
  });
}

}  // namespace
}  // namespace brickx
