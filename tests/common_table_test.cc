#include "common/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace brickx {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{10});
  t.row().cell("b").cell(std::int64_t{123456});
  const std::string s = t.str();
  // Both data lines start their second column at the same offset.
  const auto l1 = s.find("alpha");
  ASSERT_NE(l1, std::string::npos);
  EXPECT_NE(s.find("123456"), std::string::npos);
  EXPECT_NE(s.find("name"), std::string::npos);
}

TEST(Table, NumericFormatting) {
  Table t({"a", "b"});
  t.row().cell(1.23456, 2).cell_sci(0.000123, 2);
  const std::string s = t.str();
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("1.23e-04"), std::string::npos);
}

TEST(Table, CsvRoundtrip) {
  Table t({"x", "y"});
  t.row().cell(std::int64_t{1}).cell(std::int64_t{2});
  t.row().cell(std::int64_t{3}).cell(std::int64_t{4});
  EXPECT_EQ(t.csv(), "x,y\n1,2\n3,4\n");
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"x"});
  EXPECT_THROW(t.cell("oops"), Error);
}

TEST(Table, RaggedRowsTolerated) {
  Table t({"a", "b", "c"});
  t.row().cell("only-one");
  EXPECT_NO_THROW((void)t.str());
}

}  // namespace
}  // namespace brickx
