#include "core/layout.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/region.h"

namespace brickx {
namespace {

TEST(Layout, Table1Formulas) {
  // The paper's Table 1, all three rows for D = 1..5.
  const std::int64_t neighbors[] = {2, 8, 26, 80, 242};
  const std::int64_t layout[] = {2, 9, 42, 209, 1042};
  const std::int64_t basic[] = {2, 16, 98, 544, 2882};
  for (int d = 1; d <= 5; ++d) {
    EXPECT_EQ(neighbor_count(d), neighbors[d - 1]) << "D=" << d;
    EXPECT_EQ(layout_message_lower_bound(d), layout[d - 1]) << "D=" << d;
    EXPECT_EQ(basic_message_count(d), basic[d - 1]) << "D=" << d;
  }
}

TEST(Layout, Surface1dIsOptimal) {
  EXPECT_TRUE(surface1d().valid(1));
  EXPECT_EQ(message_count(surface1d(), 1), 2);
}

TEST(Layout, Surface2dAchievesNineMessages) {
  EXPECT_TRUE(surface2d().valid(2));
  EXPECT_EQ(message_count(surface2d(), 2), 9);
  EXPECT_EQ(message_count(surface2d(), 2), layout_message_lower_bound(2));
}

TEST(Layout, Surface3dAchievesFortyTwoMessages) {
  EXPECT_TRUE(surface3d().valid(3));
  EXPECT_EQ(message_count(surface3d(), 3), 42);
  EXPECT_EQ(message_count(surface3d(), 3), layout_message_lower_bound(3));
}

TEST(Layout, Figure2NumberingNeedsTwelveMessages) {
  // The unoptimized Figure 2(L) numbering (regions 1..8 bottom-to-top):
  // the paper states it needs 12 messages.
  LayoutSpec fig2{{
      BitSet{-1, -2}, BitSet{-2}, BitSet{1, -2}, BitSet{-1},
      BitSet{1}, BitSet{-1, 2}, BitSet{2}, BitSet{1, 2},
  }};
  EXPECT_TRUE(fig2.valid(2));
  EXPECT_EQ(message_count(fig2, 2), 12);
}

TEST(Layout, EveryPermutationWithinBounds) {
  // Property: Eq.1 <= messages <= Eq.3 for arbitrary valid layouts.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    LayoutSpec s = optimize_layout(3, /*budget=*/50, seed);  // near-random
    ASSERT_TRUE(s.valid(3));
    const std::int64_t m = message_count(s, 3);
    EXPECT_GE(m, layout_message_lower_bound(3));
    EXPECT_LE(m, basic_message_count(3));
  }
}

TEST(Layout, LexicographicIsValidButWorse) {
  const LayoutSpec lex = lexicographic_layout(3);
  EXPECT_TRUE(lex.valid(3));
  EXPECT_GT(message_count(lex, 3), message_count(surface3d(), 3));
}

TEST(Layout, ExhaustiveSearchFindsOptimum2d) {
  const LayoutSpec best = optimize_layout(2);
  EXPECT_EQ(message_count(best, 2), layout_message_lower_bound(2));
}

TEST(Layout, ExhaustiveSearchFindsOptimum1d) {
  const LayoutSpec best = optimize_layout(1);
  EXPECT_EQ(message_count(best, 1), 2);
}

TEST(Layout, HillClimbingApproachesBound3d) {
  // The randomized search will not always hit 42, but must get close and
  // stay within the analytic bracket.
  const LayoutSpec s = optimize_layout(3, /*budget=*/60000, /*seed=*/7);
  const std::int64_t m = message_count(s, 3);
  EXPECT_GE(m, 42);
  EXPECT_LE(m, 50);
}

TEST(Layout, PositionAndValidity) {
  const LayoutSpec& s = surface2d();
  EXPECT_EQ(s.position(BitSet{-1, -2}), 0);
  EXPECT_EQ(s.position(BitSet{-1}), 7);
  EXPECT_EQ(s.position(BitSet{3}), -1);
  LayoutSpec broken = s;
  broken.order[0] = broken.order[1];  // duplicate entry
  EXPECT_FALSE(broken.valid(2));
  LayoutSpec truncated = s;
  truncated.order.pop_back();
  EXPECT_FALSE(truncated.valid(2));
}

TEST(Layout, MessageCountRejectsInvalidLayouts) {
  LayoutSpec bogus{{BitSet{1}}};
  EXPECT_THROW((void)message_count(bogus, 3), Error);
}

TEST(Layout, DimsInference) {
  EXPECT_EQ(surface2d().dims(), 2);
  EXPECT_EQ(surface3d().dims(), 3);
}

}  // namespace
}  // namespace brickx
