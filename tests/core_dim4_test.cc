// Four-dimensional decomposition and exchange — the paper's Table 1
// analysis covers D up to 5; the library machinery is exercised end-to-end
// here for D = 4 (e.g. 3D space + one phase/velocity dimension).

#include <gtest/gtest.h>

#include "core/cell_array.h"
#include "core/exchange.h"
#include "simmpi/cart.h"

namespace brickx {
namespace {

using mpi::Cart;
using mpi::Comm;
using mpi::NetModel;
using mpi::Runtime;

TEST(Dim4, DecompositionCountsMatchTheory) {
  const Vec<4> N{8, 8, 8, 8};
  BrickDecomp<4> dec(N, 2, Vec<4>::fill(2), lexicographic_layout(4));
  EXPECT_EQ(dec.surface_region_count(), 80);        // 3^4 - 1
  EXPECT_EQ(dec.regions().size(), 80u + 1 + 544);   // + interior + 5^4-3^4
  EXPECT_EQ(dec.own_brick_count(), 4 * 4 * 4 * 4);
  EXPECT_EQ(dec.total_brick_count(), 6 * 6 * 6 * 6);
}

TEST(Dim4, MessagePlanWithinAnalyticBounds) {
  const Vec<4> N{12, 12, 12, 12};  // middle bands nonempty
  BrickDecomp<4> dec(N, 2, Vec<4>::fill(2), lexicographic_layout(4));
  BrickStorage store = dec.allocate(1);
  std::vector<int> self(80, 0);
  Exchanger<4> layout(dec, store, self, Exchanger<4>::Mode::Layout);
  Exchanger<4> basic(dec, store, self, Exchanger<4>::Mode::Basic);
  EXPECT_EQ(basic.send_message_count(), basic_message_count(4));  // 544
  EXPECT_GE(layout.send_message_count(), layout_message_lower_bound(4));
  EXPECT_LT(layout.send_message_count(), basic.send_message_count());
}

TEST(Dim4, ExchangeIsExactAcrossSixteenRanks) {
  Runtime rt(16, NetModel{});
  rt.run([&](Comm& comm) {
    const Vec<4> dims = mpi::dims_create<4>(comm.size());
    Cart<4> cart(comm, dims);
    const Vec<4> N{8, 8, 8, 8};
    BrickDecomp<4> dec(N, 2, Vec<4>::fill(2), lexicographic_layout(4));
    BrickStorage store = dec.allocate(1);
    const Vec<4> ext = dims * N;
    Vec<4> off = cart.coords() * N;
    auto f = [&](Vec<4> g) {
      double v = 0.125;
      for (int a = 0; a < 4; ++a) {
        g[a] = ((g[a] % ext[a]) + ext[a]) % ext[a];
        v = v * 31 + static_cast<double>(g[a]);
      }
      return v;
    };
    CellArray<4> own(Box<4>{{0, 0, 0, 0}, N});
    for_each(own.box(), [&](const Vec<4>& p) { own.at(p) = f(p + off); });
    cells_to_bricks<4>(dec, own, store, 0);

    Exchanger<4> ex(dec, store, populate(cart, dec),
                    Exchanger<4>::Mode::Layout);
    ex.exchange(comm);

    CellArray<4> frame(
        Box<4>{Vec<4>{0, 0, 0, 0} - Vec<4>::fill(2), N + Vec<4>::fill(2)});
    bricks_to_cells<4>(dec, store, 0, frame);
    std::int64_t bad = 0;
    for_each(frame.box(), [&](const Vec<4>& p) {
      if (frame.at(p) != f(p + off)) ++bad;
    });
    EXPECT_EQ(bad, 0) << "rank " << comm.rank();
  });
}

TEST(Dim4, SearchImprovesOnLexicographic) {
  const LayoutSpec lex = lexicographic_layout(4);
  const LayoutSpec tuned = optimize_layout(4, /*budget=*/30000, /*seed=*/2);
  EXPECT_LT(message_count(tuned, 4), message_count(lex, 4));
  EXPECT_GE(message_count(tuned, 4), layout_message_lower_bound(4));  // 209
}

}  // namespace
}  // namespace brickx
