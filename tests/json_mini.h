#pragma once

// Minimal hand-rolled JSON for the artifact-contract checks (schema
// validators): a deliberately small recursive-descent parser — enough for
// the documents involved, and no new dependency. Factored out of
// obs_schema_validate.cc so every validator shares one implementation.
//
// Test-support only: parse errors print to stderr and exit(2), which is
// exactly what a ctest-registered plain main wants.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace jsonmini {

struct Value;
using Object = std::map<std::string, Value>;
using Array = std::vector<Value>;

struct Value {
  enum class Type { Null, Bool, Number, String, Array, Object } type =
      Type::Null;
  bool b = false;
  double number = 0.0;
  std::string str;
  std::shared_ptr<Array> arr;
  std::shared_ptr<Object> obj;

  [[nodiscard]] bool is(Type t) const { return type == t; }
  [[nodiscard]] const Value* find(const std::string& key) const {
    if (type != Type::Object) return nullptr;
    auto it = obj->find(key);
    return it == obj->end() ? nullptr : &it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::fprintf(stderr, "JSON parse error at offset %zu: %s\n", pos_,
                 why.c_str());
    std::exit(2);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  Value value() {
    Value v;
    switch (peek()) {
      case '{': {
        v.type = Value::Type::Object;
        v.obj = std::make_shared<Object>();
        ++pos_;
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        for (;;) {
          const std::string key = string_lit();
          expect(':');
          (*v.obj)[key] = value();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        v.type = Value::Type::Array;
        v.arr = std::make_shared<Array>();
        ++pos_;
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        for (;;) {
          v.arr->push_back(value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"':
        v.type = Value::Type::String;
        v.str = string_lit();
        return v;
      default: {
        skip_ws();
        if (consume("true")) {
          v.type = Value::Type::Bool;
          v.b = true;
          return v;
        }
        if (consume("false")) {
          v.type = Value::Type::Bool;
          return v;
        }
        if (consume("null")) return v;
        return number_lit();
      }
    }
  }

  std::string string_lit() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        c = s_[pos_++];
        switch (c) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u':  // the exporters only escape control chars; keep raw
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            pos_ += 4;
            out += '?';
            break;
          default: out += c;
        }
      } else {
        out += c;
      }
    }
    expect('"');
    return out;
  }

  Value number_lit() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == 'i' ||
            s_[pos_] == 'n' || s_[pos_] == 'f' || s_[pos_] == 'a'))
      ++pos_;  // accepts inf/nan spellings %.17g could produce
    if (pos_ == start) fail("expected a value");
    Value v;
    v.type = Value::Type::Number;
    v.number = std::strtod(s_.c_str() + start, nullptr);
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

inline std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot read: %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace jsonmini
