// Tests for the obs span tracer / metrics registry: recording semantics,
// phase_sum's per-step grouping, metric merging, and the end-to-end
// guarantees the subsystem advertises — byte-identical exports across
// identical runs, and span-derived phase aggregates bit-equal to the
// harness Result.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "harness/experiment.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/session.h"

namespace obs = brickx::obs;
using brickx::Stats;

TEST(Obs, CatNamesAreStable) {
  EXPECT_STREQ(obs::cat_name(obs::Cat::Calc), "calc");
  EXPECT_STREQ(obs::cat_name(obs::Cat::Pack), "pack");
  EXPECT_STREQ(obs::cat_name(obs::Cat::Call), "call");
  EXPECT_STREQ(obs::cat_name(obs::Cat::Wait), "wait");
  EXPECT_STREQ(obs::cat_name(obs::Cat::DtPack), "dt_pack");
  EXPECT_STREQ(obs::cat_name(obs::Cat::MmapSetup), "mmap_setup");
  EXPECT_STREQ(obs::cat_name(obs::Cat::UmMigrate), "um_migrate");
  EXPECT_STREQ(obs::cat_name(obs::Cat::Collective), "collective");
}

// Everything below exercises the real recorder; in a -DBRICKX_OBS=OFF
// build this binary gets the null sink and only the tests above apply
// (obs_disabled_test covers the null sink's own guarantees).
#if BRICKX_OBS

TEST(Obs, RankLogRecordsNestingDepths) {
  obs::RankLog lg;
  const std::size_t outer = lg.open_span(obs::Cat::Calc, nullptr, 3, 1.0);
  const std::size_t inner = lg.open_span(obs::Cat::Call, "mpi_isend", -1, 1.5);
  lg.close_span(inner, 2.0);
  lg.note_span(obs::Cat::UmMigrate, "um_migrate", 2.0, 2.25);
  lg.close_span(outer, 3.0);
  ASSERT_EQ(lg.spans().size(), 3u);

  const obs::SpanEvent& a = lg.spans()[0];
  EXPECT_EQ(a.cat, obs::Cat::Calc);
  EXPECT_STREQ(a.name, "calc");  // defaulted from the category
  EXPECT_EQ(a.step, 3);
  EXPECT_EQ(a.depth, 0);
  EXPECT_EQ(a.t0, 1.0);
  EXPECT_EQ(a.t1, 3.0);

  const obs::SpanEvent& b = lg.spans()[1];
  EXPECT_STREQ(b.name, "mpi_isend");
  EXPECT_EQ(b.step, -1);
  EXPECT_EQ(b.depth, 1);

  const obs::SpanEvent& c = lg.spans()[2];
  EXPECT_EQ(c.depth, 1);  // noted while the outer span was still open
  EXPECT_EQ(c.t1 - c.t0, 0.25);
  EXPECT_EQ(lg.depth(), 0);
}

TEST(Obs, UnboundThreadIsANoOp) {
  ASSERT_EQ(obs::ambient_log(), nullptr);
  EXPECT_EQ(obs::ambient_now(), 0.0);
  {  // none of these may crash or record anywhere
    obs::ObsSpan sp(obs::Cat::Calc, "calc", 0);
    obs::note_cost(obs::Cat::UmMigrate, "um_migrate", 1.0);
    obs::instant(obs::Cat::MmapSetup, "view_build");
    obs::counter_add("x", 1);
    obs::gauge_max("y", 2.0);
    obs::hist_add("z", 3.0);
  }
  EXPECT_EQ(obs::ambient_log(), nullptr);
}

TEST(Obs, AmbientBindingStampsTheProvidedClock) {
  obs::RankLog lg;
  double clock = 10.0;
  {
    obs::BindGuard guard(&lg, &clock);
    EXPECT_EQ(obs::ambient_log(), &lg);
    EXPECT_EQ(obs::ambient_now(), 10.0);
    {
      obs::ObsSpan outer(obs::Cat::Wait, "mpi_wait");
      clock = 12.0;
      obs::ObsSpan inner(obs::Cat::DtPack, "dt_scatter");
      clock = 13.0;
    }  // inner closes at 13, outer closes at 13
    obs::note_cost(obs::Cat::UmMigrate, "um_migrate", 0.5);
    obs::note_cost(obs::Cat::UmMigrate, "um_migrate", 0.0);  // dropped
    obs::counter_add("gpu.pages_migrated", 7);
  }
  EXPECT_EQ(obs::ambient_log(), nullptr);  // guard unbinds

  ASSERT_EQ(lg.spans().size(), 3u);
  EXPECT_EQ(lg.spans()[0].t0, 10.0);
  EXPECT_EQ(lg.spans()[0].t1, 13.0);
  EXPECT_EQ(lg.spans()[0].depth, 0);
  EXPECT_EQ(lg.spans()[1].t0, 12.0);
  EXPECT_EQ(lg.spans()[1].t1, 13.0);
  EXPECT_EQ(lg.spans()[1].depth, 1);
  EXPECT_EQ(lg.spans()[2].t0, 13.0);
  EXPECT_EQ(lg.spans()[2].t1, 13.5);
  ASSERT_EQ(lg.metrics().count("gpu.pages_migrated"), 1u);
  EXPECT_EQ(lg.metrics().at("gpu.pages_migrated").value, 7);
}

TEST(Obs, PhaseSumGroupsPerStepAndFilters) {
  obs::RankLog lg;
  double clock = 0.0;
  obs::BindGuard guard(&lg, &clock);
  auto span = [&](obs::Cat cat, const char* name, std::int64_t step,
                  double dur) {
    const std::size_t idx = lg.open_span(cat, name, step, clock);
    clock += dur;
    lg.close_span(idx, clock);
  };
  // step 0: two calc spans; step 1: one. Ignored: wrong name, wrong cat,
  // step -1 (warmup), and a nested span at depth 1.
  span(obs::Cat::Calc, "calc", 0, 0.25);
  span(obs::Cat::Calc, "calc", 0, 0.5);
  span(obs::Cat::Calc, "other", 0, 100.0);
  span(obs::Cat::Pack, "calc", 0, 100.0);
  span(obs::Cat::Calc, "calc", -1, 100.0);
  {
    obs::ObsSpan outer(obs::Cat::Wait, "mpi_wait");
    span(obs::Cat::Calc, "calc", 0, 100.0);  // depth 1 -> excluded
  }
  span(obs::Cat::Calc, "calc", 1, 1.0);
  EXPECT_EQ(obs::phase_sum(lg, obs::Cat::Calc, "calc"), (0.25 + 0.5) + 1.0);
  EXPECT_EQ(obs::phase_sum(lg, obs::Cat::Pack, "pack"), 0.0);
}

TEST(Obs, MetricKindsAccumulate) {
  obs::RankLog lg;
  lg.counter_add("c", 2);
  lg.counter_add("c", 3);
  lg.gauge_max("g", 5.0);
  lg.gauge_max("g", 4.0);  // below the watermark
  lg.hist_add("h", 1.0);
  lg.hist_add("h", 3.0);
  EXPECT_EQ(lg.metrics().at("c").value, 5);
  EXPECT_EQ(lg.metrics().at("g").gauge, 5.0);
  EXPECT_EQ(lg.metrics().at("h").hist.count(), 2);
  EXPECT_EQ(lg.metrics().at("h").hist.avg(), 2.0);
}

TEST(Obs, MergedMetricsCombinePerKind) {
  std::vector<obs::RankLog> logs(2);
  logs[0].counter_add("c", 2);
  logs[1].counter_add("c", 3);
  logs[0].gauge_max("g", 1.0);
  logs[1].gauge_max("g", 9.0);
  logs[0].hist_add("h", 1.0);
  logs[1].hist_add("h", 3.0);
  logs[1].counter_add("only1", 7);  // present on one rank only
  const auto m = obs::merged_metrics(logs);
  EXPECT_EQ(m.at("c").value, 5);
  EXPECT_EQ(m.at("g").gauge, 9.0);
  EXPECT_EQ(m.at("h").hist.count(), 2);
  EXPECT_EQ(m.at("h").hist.min(), 1.0);
  EXPECT_EQ(m.at("h").hist.max(), 3.0);
  EXPECT_EQ(m.at("only1").value, 7);
}

TEST(Obs, SessionScopeActivatesAndRestores) {
  EXPECT_EQ(obs::Session::active(), nullptr);
  obs::Session outer;
  {
    obs::Session::Scope so(outer);
    EXPECT_EQ(obs::Session::active(), &outer);
    obs::Session inner;
    {
      obs::Session::Scope si(inner);
      EXPECT_EQ(obs::Session::active(), &inner);
    }
    EXPECT_EQ(obs::Session::active(), &outer);
  }
  EXPECT_EQ(obs::Session::active(), nullptr);

  obs::Collector col(3);
  col.log(1).counter_add("c", 1);
  outer.absorb("lbl", std::move(col));
  ASSERT_EQ(outer.runs().size(), 1u);
  EXPECT_EQ(outer.runs()[0].label, "lbl");
  EXPECT_EQ(outer.runs()[0].nranks, 3);
  EXPECT_EQ(outer.runs()[0].logs.size(), 3u);
}

namespace {

brickx::harness::Config small_config(brickx::harness::Method m) {
  brickx::harness::Config cfg;
  cfg.rank_dims = {2, 1, 1};
  cfg.subdomain = brickx::Vec3::fill(16);
  cfg.brick = 8;
  cfg.ghost = 8;
  cfg.method = m;
  cfg.timesteps = 3;
  cfg.warmup_exchanges = 1;
  cfg.execute_kernels = false;
  return cfg;
}

}  // namespace

TEST(Obs, HarnessExportsAreByteDeterministic) {
  auto once = [] {
    obs::Session ses;
    {
      obs::Session::Scope scope(ses);
      (void)brickx::harness::run(small_config(brickx::harness::Method::Yask));
      (void)brickx::harness::run(
          small_config(brickx::harness::Method::MemMap));
    }
    return std::pair<std::string, std::string>(obs::chrome_trace_json(ses),
                                               obs::metrics_json(ses));
  };
  const auto a = once();
  const auto b = once();
  EXPECT_GT(a.first.size(), 100u);
  EXPECT_EQ(a.first, b.first);    // trace JSON byte-identical
  EXPECT_EQ(a.second, b.second);  // metrics JSON byte-identical
}

// The harness computes Result phase aggregates from spans (when obs is on);
// reconstructing them from the session's logs must reproduce the Stats
// bit-exactly — same samples, same order, no FP drift.
TEST(Obs, SpanAggregatesMatchHarnessResultBitExactly) {
  const brickx::harness::Config cfg =
      small_config(brickx::harness::Method::Yask);
  obs::Session ses;
  brickx::harness::Result res;
  {
    obs::Session::Scope scope(ses);
    res = brickx::harness::run(cfg);
  }
  ASSERT_EQ(ses.runs().size(), 1u);
  const obs::Session::Run& run = ses.runs()[0];
  ASSERT_EQ(run.nranks, 2);

  const double steps = static_cast<double>(cfg.timesteps);
  auto rebuilt = [&](obs::Cat cat, const char* name) {
    Stats st;
    for (const obs::RankLog& lg : run.logs)
      st.add(obs::phase_sum(lg, cat, name) / steps);
    return st;
  };
  const Stats calc = rebuilt(obs::Cat::Calc, "calc");
  const Stats pack = rebuilt(obs::Cat::Pack, "pack");
  const Stats call = rebuilt(obs::Cat::Call, "call");
  const Stats wait = rebuilt(obs::Cat::Wait, "wait");
  EXPECT_EQ(calc.avg(), res.calc.avg());
  EXPECT_EQ(calc.min(), res.calc.min());
  EXPECT_EQ(calc.max(), res.calc.max());
  EXPECT_EQ(pack.avg(), res.pack.avg());
  EXPECT_EQ(call.avg(), res.call.avg());
  EXPECT_EQ(wait.avg(), res.wait.avg());
  EXPECT_GT(pack.avg(), 0.0);  // YASK packs — the samples are non-trivial
  EXPECT_GT(wait.avg(), 0.0);
}

TEST(Obs, ChromeTraceShapeAndFlows) {
  obs::Session ses;
  {
    obs::Session::Scope scope(ses);
    (void)brickx::harness::run(small_config(brickx::harness::Method::Layout));
  }
  const std::string j = obs::chrome_trace_json(ses);
  EXPECT_EQ(j.rfind("{\"traceEvents\":[", 0), 0u);  // starts the event array
  EXPECT_NE(j.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(j.find("\"process_name\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"calc\""), std::string::npos);
  EXPECT_NE(j.find("\"cat\":\"wait\""), std::string::npos);
  // Flow arrows come in start/finish pairs with matching ids.
  std::size_t starts = 0, finishes = 0, pos = 0;
  while ((pos = j.find("\"ph\":\"s\"", pos)) != std::string::npos)
    ++starts, pos += 8;
  pos = 0;
  while ((pos = j.find("\"ph\":\"f\"", pos)) != std::string::npos)
    ++finishes, pos += 8;
  EXPECT_GT(starts, 0u);
  EXPECT_EQ(starts, finishes);
}

TEST(Obs, MetricsExportFormats) {
  obs::Session ses;
  obs::Collector col(2);
  {
    double clock = 0.0;
    obs::BindGuard guard(&col.log(0), &clock);
    obs::counter_add("comm.msgs_sent", 4);
    obs::gauge_max("comm.max_inflight_reqs", 3.0);
    obs::hist_add("harness.calc_s", 0.5);
  }
  ses.absorb("unit", std::move(col));

  const std::string j = obs::metrics_json(ses);
  EXPECT_EQ(j.rfind("{\"version\":1,\"runs\":[", 0), 0u);
  EXPECT_NE(j.find("\"label\":\"unit\""), std::string::npos);
  EXPECT_NE(j.find("\"nranks\":2"), std::string::npos);
  EXPECT_NE(j.find("\"comm.msgs_sent\":{\"kind\":\"counter\",\"value\":4}"),
            std::string::npos);
  EXPECT_NE(j.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(j.find("\"kind\":\"hist\""), std::string::npos);

  const std::string c = obs::metrics_csv(ses);
  EXPECT_EQ(c.rfind("run,label,metric,kind,value,count,min,avg,max,sigma", 0),
            0u);
  EXPECT_NE(c.find("0,unit,comm.msgs_sent,counter,4"), std::string::npos);
}

// Run labels carrying CSV delimiters (e.g. "MemMap/um,p=2M") must come out
// RFC-4180 quoted — one field, inner quotes doubled — while plain labels
// stay byte-identical to the unescaped form.
TEST(Obs, MetricsCsvEscapesDelimitersInLabels) {
  obs::Session ses;
  obs::Collector col(1);
  {
    double clock = 0.0;
    obs::BindGuard guard(&col.log(0), &clock);
    obs::counter_add("comm.msgs_sent", 4);
  }
  ses.absorb("MemMap/um,p=2M", std::move(col));
  obs::Collector col2(1);
  {
    double clock = 0.0;
    obs::BindGuard guard(&col2.log(0), &clock);
    obs::counter_add("comm.msgs_sent", 5);
  }
  ses.absorb("say \"hi\"", std::move(col2));

  const std::string c = obs::metrics_csv(ses);
  EXPECT_NE(c.find("0,\"MemMap/um,p=2M\",comm.msgs_sent,counter,4"),
            std::string::npos);
  EXPECT_NE(c.find("1,\"say \"\"hi\"\"\",comm.msgs_sent,counter,5"),
            std::string::npos);
  // The raw label must never appear as two naked fields.
  EXPECT_EQ(c.find("0,MemMap/um,p=2M"), std::string::npos);
}

// Flow-arrow ids in the Chrome trace must be unique across ALL absorbed
// runs (Perfetto joins s/f pairs by id; a reused id cross-links messages
// from different experiments) and deterministic across identical sessions.
TEST(Obs, FlowArrowIdsUniqueAndDeterministicAcrossRuns) {
  auto once = [] {
    obs::Session ses;
    {
      obs::Session::Scope scope(ses);
      (void)brickx::harness::run(small_config(brickx::harness::Method::Layout));
      (void)brickx::harness::run(small_config(brickx::harness::Method::MemMap));
    }
    return obs::chrome_trace_json(ses);
  };
  const std::string j = once();
  EXPECT_EQ(j, once());  // ids (and everything else) deterministic

  std::vector<long long> starts, finishes;
  {
    const std::string needle = "\"ph\":\"s\"";
    std::size_t pos = 0;
    while ((pos = j.find(needle, pos)) != std::string::npos) {
      const std::size_t idk = j.find("\"id\":", pos);
      ASSERT_NE(idk, std::string::npos);
      starts.push_back(std::stoll(j.substr(idk + 5)));
      pos += needle.size();
    }
  }
  {
    const std::string needle = "\"ph\":\"f\"";
    std::size_t pos = 0;
    while ((pos = j.find(needle, pos)) != std::string::npos) {
      const std::size_t idk = j.find("\"id\":", pos);
      ASSERT_NE(idk, std::string::npos);
      finishes.push_back(std::stoll(j.substr(idk + 5)));
      pos += needle.size();
    }
  }
  ASSERT_GT(starts.size(), 0u);
  EXPECT_EQ(starts, finishes);  // each start pairs its finish, in order
  std::vector<long long> sorted = starts;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) ==
              sorted.end())
      << "duplicate flow id across absorbed runs";
}

#endif  // BRICKX_OBS
