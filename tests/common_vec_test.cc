#include "common/vec.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace brickx {
namespace {

TEST(Vec, ArithmeticAndProd) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_EQ((a + b), (Vec3{5, 7, 9}));
  EXPECT_EQ((b - a), (Vec3{3, 3, 3}));
  EXPECT_EQ((a * b), (Vec3{4, 10, 18}));
  EXPECT_EQ((a * 2), (Vec3{2, 4, 6}));
  EXPECT_EQ((b / a), (Vec3{4, 2, 2}));
  EXPECT_EQ(a.prod(), 6);
  EXPECT_EQ(Vec3::fill(4), (Vec3{4, 4, 4}));
}

TEST(Vec, LinearizeAxis0Fastest) {
  const Vec3 ext{4, 3, 2};
  EXPECT_EQ(linearize(Vec3{0, 0, 0}, ext), 0);
  EXPECT_EQ(linearize(Vec3{1, 0, 0}, ext), 1);
  EXPECT_EQ(linearize(Vec3{0, 1, 0}, ext), 4);
  EXPECT_EQ(linearize(Vec3{0, 0, 1}, ext), 12);
  EXPECT_EQ(linearize(Vec3{3, 2, 1}, ext), 23);
}

TEST(Vec, DelinearizeIsInverse) {
  const Vec3 ext{5, 7, 3};
  for (std::int64_t i = 0; i < ext.prod(); ++i) {
    EXPECT_EQ(linearize(delinearize(i, ext), ext), i);
  }
}

TEST(Box, VolumeAndContains) {
  Box<3> b{{1, 1, 1}, {4, 3, 2}};
  EXPECT_EQ(b.volume(), 3 * 2 * 1);
  EXPECT_TRUE(b.contains(Vec3{1, 1, 1}));
  EXPECT_TRUE(b.contains(Vec3{3, 2, 1}));
  EXPECT_FALSE(b.contains(Vec3{4, 1, 1}));
  EXPECT_FALSE(b.contains(Vec3{0, 1, 1}));
}

TEST(Box, EmptyWhenDegenerate) {
  Box<2> b{{3, 0}, {3, 5}};
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.volume(), 0);
  int visits = 0;
  for_each(b, [&](const Vec2&) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(Box, InvertedExtentsClampToZeroVolume) {
  Box<2> b{{5, 5}, {2, 8}};
  EXPECT_EQ(b.volume(), 0);
}

TEST(Box, ForEachVisitsLexicographically) {
  Box<2> b{{1, 2}, {3, 4}};
  std::vector<Vec2> order;
  for_each(b, [&](const Vec2& p) { order.push_back(p); });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], (Vec2{1, 2}));
  EXPECT_EQ(order[1], (Vec2{2, 2}));  // axis 0 fastest
  EXPECT_EQ(order[2], (Vec2{1, 3}));
  EXPECT_EQ(order[3], (Vec2{2, 3}));
}

TEST(Box, ForEachCoversExactlyOnce) {
  Box<3> b{{0, 1, 2}, {3, 4, 5}};
  std::set<std::int64_t> seen;
  for_each(b, [&](const Vec3& p) {
    EXPECT_TRUE(b.contains(p));
    EXPECT_TRUE(seen.insert(linearize(p, Vec3{16, 16, 16})).second);
  });
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), b.volume());
}

}  // namespace
}  // namespace brickx
