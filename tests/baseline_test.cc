#include "baseline/array_exchange.h"

#include <gtest/gtest.h>

#include "core/cell_array.h"
#include "simmpi/cart.h"

namespace brickx::baseline {
namespace {

using mpi::Cart;
using mpi::Comm;
using mpi::NetModel;
using mpi::Runtime;

TEST(Boxes, SendAndRecvBoxesAreConsistent) {
  const Vec3 N{16, 16, 16};
  // Send boxes partition the surface instances; recv boxes the ghost frame.
  std::int64_t send_total = 0, recv_total = 0;
  for (const auto& nu : Cart<3>::all_directions()) {
    const Box<3> s = send_box(nu, N, 4);
    const Box<3> r = recv_box(nu, N, 4);
    EXPECT_EQ(s.volume(), r.volume());
    send_total += s.volume();
    recv_total += r.volume();
    // Send boxes live inside the domain; recv boxes outside.
    EXPECT_TRUE((Box<3>{{0, 0, 0}, N}).contains(s.lo));
    EXPECT_FALSE((Box<3>{{0, 0, 0}, N}).contains(r.lo) &&
                 (Box<3>{{0, 0, 0}, N}).contains(r.hi - Vec3{1, 1, 1}));
  }
  // Ghost frame volume: (N+2g)^3 - N^3.
  EXPECT_EQ(recv_total, 24 * 24 * 24 - 16 * 16 * 16);
  EXPECT_EQ(send_total, recv_total);
}

double gv(Vec3 g, const Vec3& ext) {
  for (int a = 0; a < 3; ++a) g[a] = ((g[a] % ext[a]) + ext[a]) % ext[a];
  return static_cast<double>((g[2] * ext[1] + g[1]) * ext[0] + g[0]);
}

template <typename MakeExchange>
void end_to_end(MakeExchange&& make) {
  Runtime rt(8, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, {2, 2, 2});
    const Vec3 N{16, 16, 16};
    const std::int64_t g = 4;
    const Vec3 ext{32, 32, 32};
    const Vec3 off = cart.coords() * N;
    CellArray3 field(Box<3>{{-g, -g, -g}, {20, 20, 20}});
    for_each(Box<3>{{0, 0, 0}, N},
             [&](const Vec3& p) { field.at(p) = gv(p + off, ext); });
    const auto dirs = Cart<3>::all_directions();
    std::vector<int> ranks;
    for (const auto& d : dirs) ranks.push_back(cart.neighbor(d));
    make(comm, N, g, dirs, ranks, field);
    std::int64_t bad = 0;
    for_each(field.box(), [&](const Vec3& p) {
      if (field.at(p) != gv(p + off, ext)) ++bad;
    });
    EXPECT_EQ(bad, 0) << "rank " << comm.rank();
  });
}

TEST(PackExchanger, GhostsExactAfterExchange) {
  end_to_end([](Comm& comm, const Vec3& N, std::int64_t g,
                const std::vector<BitSet>& dirs, const std::vector<int>& ranks,
                CellArray3& field) {
    PackExchanger ex(N, g, dirs, ranks);
    EXPECT_EQ(ex.send_message_count(), 26);
    ex.exchange(comm, field);
  });
}

TEST(PackExchanger, PhaseSplitWorks) {
  end_to_end([](Comm& comm, const Vec3& N, std::int64_t g,
                const std::vector<BitSet>& dirs, const std::vector<int>& ranks,
                CellArray3& field) {
    PackExchanger ex(N, g, dirs, ranks);
    const std::size_t packed = ex.pack(field);
    EXPECT_EQ(packed, static_cast<std::size_t>(ex.send_byte_count()));
    ex.start(comm);
    ex.finish(comm);
    const std::size_t unpacked = ex.unpack(field);
    EXPECT_EQ(unpacked, packed);
    EXPECT_EQ(ex.onnode_byte_count(),
              static_cast<std::int64_t>(packed + unpacked));
  });
}

TEST(MpiTypesExchanger, GhostsExactAfterExchange) {
  end_to_end([](Comm& comm, const Vec3& N, std::int64_t g,
                const std::vector<BitSet>& dirs, const std::vector<int>& ranks,
                CellArray3& field) {
    MpiTypesExchanger ex(N, g, dirs, ranks, field);
    EXPECT_EQ(ex.send_message_count(), 26);
    EXPECT_GT(ex.datatype_block_count(), 26);
    ex.exchange(comm, field);
  });
}

TEST(MpiTypesExchanger, ByteVolumeMatchesPack) {
  const Vec3 N{16, 16, 16};
  CellArray3 shape(Box<3>{{-4, -4, -4}, {20, 20, 20}});
  const auto dirs = Cart<3>::all_directions();
  std::vector<int> ranks(dirs.size(), 0);
  PackExchanger p(N, 4, dirs, ranks);
  MpiTypesExchanger t(N, 4, dirs, ranks, shape);
  EXPECT_EQ(p.send_byte_count(), t.send_byte_count());
}

TEST(MpiTypesExchanger, StridedFacesDominateBlockCount) {
  // The i-contiguous face (ν = {-1}) is maximally strided: g doubles per
  // row, N*N rows. This block explosion is exactly why MPI_Types is slow.
  const Vec3 N{16, 16, 16};
  CellArray3 shape(Box<3>{{-4, -4, -4}, {20, 20, 20}});
  auto dirs = std::vector<BitSet>{BitSet{-1}, BitSet{1}};
  std::vector<int> ranks{0, 0};
  MpiTypesExchanger ex(N, 4, dirs, ranks, shape);
  // Each direction sends a 4x16x16 subarray: 16*16 blocks of 4 doubles per
  // side (send + recv types), for both directions.
  EXPECT_EQ(ex.datatype_block_count(), 2 * 2 * 16 * 16);
}

TEST(PackExchanger, RepeatedExchangesStable) {
  Runtime rt(8, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, {2, 2, 2});
    const Vec3 N{8, 8, 8};
    const auto dirs = Cart<3>::all_directions();
    std::vector<int> ranks;
    for (const auto& d : dirs) ranks.push_back(cart.neighbor(d));
    CellArray3 f(Box<3>{{-2, -2, -2}, {10, 10, 10}});
    for_each(Box<3>{{0, 0, 0}, N}, [&](const Vec3& p) {
      f.at(p) = static_cast<double>(comm.rank());
    });
    PackExchanger ex(N, 2, dirs, ranks);
    for (int i = 0; i < 4; ++i) ex.exchange(comm, f);
    // Ghost corner must hold the diagonal neighbor's rank.
    const int diag = cart.neighbor(BitSet{-1, -2, -3});
    EXPECT_EQ(f.at({-1, -1, -1}), static_cast<double>(diag));
  });
}

}  // namespace
}  // namespace brickx::baseline
