// Property-style sweeps over the core library: exchange correctness across
// randomized geometries, the pairwise-merge identity behind the Eq. 1
// optimality argument, and structural invariants of plans and chunks.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <utility>

#include "baseline/array_exchange.h"
#include "common/rng.h"
#include "core/cell_array.h"
#include "core/exchange.h"
#include "core/exchange_view.h"
#include "core/layout.h"
#include "core/shift.h"
#include "simmpi/cart.h"

namespace brickx {
namespace {

using mpi::Cart;
using mpi::Comm;
using mpi::NetModel;
using mpi::Runtime;

// ---------------------------------------------------------------------------
// The merge identity: a layout's message count equals the Basic count minus
// the destinations shared by storage-adjacent region pairs — the quantity
// the Eq. 1 lower-bound argument optimizes. Verifying it for arbitrary
// permutations ties the run-counting evaluator to the combinatorial model.
// ---------------------------------------------------------------------------

std::int64_t merge_identity_count(const LayoutSpec& s, int dims) {
  std::int64_t saved = 0;
  for (std::size_t i = 0; i + 1 < s.order.size(); ++i) {
    const BitSet common = s.order[i] & s.order[i + 1];
    saved += (1ll << common.size()) - 1;
  }
  return basic_message_count(dims) - saved;
}

class MergeIdentity : public ::testing::TestWithParam<int> {};

TEST_P(MergeIdentity, HoldsForRandomPermutations) {
  const int dims = GetParam();
  Rng rng(static_cast<std::uint64_t>(dims) * 977);
  for (int trial = 0; trial < 50; ++trial) {
    LayoutSpec s{all_surface_signatures(dims)};
    for (std::size_t j = s.order.size(); j > 1; --j)
      std::swap(s.order[j - 1], s.order[rng.below(j)]);
    ASSERT_EQ(message_count(s, dims), merge_identity_count(s, dims));
  }
}

TEST_P(MergeIdentity, HoldsForTheLibraryConstants) {
  const int dims = GetParam();
  const LayoutSpec& s = dims == 1   ? surface1d()
                        : dims == 2 ? surface2d()
                                    : surface3d();
  EXPECT_EQ(message_count(s, dims), merge_identity_count(s, dims));
}

INSTANTIATE_TEST_SUITE_P(Dims, MergeIdentity, ::testing::Values(1, 2, 3));

TEST(MergeIdentityMath, Surface3dSavesExactly56) {
  // 98 - 42: sixteen 3-destination merges plus eight 1-destination merges,
  // the construction documented in layout.cc.
  std::int64_t threes = 0, ones = 0, zeros = 0;
  const auto& order = surface3d().order;
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    switch ((order[i] & order[i + 1]).size()) {
      case 2:
        ++threes;
        break;
      case 1:
        ++ones;
        break;
      default:
        ++zeros;
    }
  }
  EXPECT_EQ(threes, 16);
  EXPECT_EQ(ones, 8);
  EXPECT_EQ(zeros, 1);
}

// ---------------------------------------------------------------------------
// Randomized end-to-end exchange geometries: anisotropic domains, mixed
// brick shapes, several rank grids, every brick method.
// ---------------------------------------------------------------------------

struct Geometry {
  Vec3 domain, brick;
  std::int64_t ghost;
  int ranks;
  int method;  // 0 Layout, 1 Basic, 2 MemMap, 3 Shift
};

class RandomGeometry : public ::testing::TestWithParam<int> {};

TEST_P(RandomGeometry, ExchangeIsAlwaysExact) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1315423911ull);
  // Draw a valid geometry.
  const std::int64_t bricks[] = {2, 4, 8};
  Vec3 B;
  for (int a = 0; a < 3; ++a) B[a] = bricks[rng.below(3)];
  std::int64_t ghost = B[0];
  for (int a = 1; a < 3; ++a) ghost = std::lcm(ghost, B[a]);
  Vec3 N;
  for (int a = 0; a < 3; ++a)
    N[a] = (2 + static_cast<std::int64_t>(rng.below(3))) * ghost;
  const int rank_choices[] = {1, 2, 4, 8};
  const int ranks = rank_choices[rng.below(4)];
  const int method = static_cast<int>(rng.below(4));

  Runtime rt(ranks, NetModel{});
  rt.run([&](Comm& comm) {
    const Vec3 dims = mpi::dims_create<3>(comm.size());
    Cart<3> cart(comm, dims);
    BrickDecomp<3> dec(N, ghost, B, surface3d());
    BrickStorage store = method == 2 ? dec.mmap_alloc(1) : dec.allocate(1);
    const Vec3 ext = dims * N;
    const Vec3 off = cart.coords() * N;
    auto f = [&](Vec3 g) {
      for (int a = 0; a < 3; ++a) g[a] = ((g[a] % ext[a]) + ext[a]) % ext[a];
      return static_cast<double>((g[2] * ext[1] + g[1]) * ext[0] + g[0]) +
             0.25;
    };
    CellArray3 own(Box<3>{{0, 0, 0}, N});
    for_each(own.box(), [&](const Vec3& p) { own.at(p) = f(p + off); });
    cells_to_bricks(dec, own, store, 0);

    const auto ranks_tbl = populate(cart, dec);
    switch (method) {
      case 0: {
        Exchanger<3> ex(dec, store, ranks_tbl, Exchanger<3>::Mode::Layout);
        ex.exchange(comm);
        break;
      }
      case 1: {
        Exchanger<3> ex(dec, store, ranks_tbl, Exchanger<3>::Mode::Basic);
        ex.exchange(comm);
        break;
      }
      case 2: {
        ExchangeView<3> ev(dec, store, ranks_tbl);
        ev.exchange(comm);
        break;
      }
      default: {
        ShiftExchanger<3> sh(dec, store, shift_neighbors(cart));
        sh.exchange(comm);
      }
    }

    const Vec3 G = Vec3::fill(ghost);
    CellArray3 frame(Box<3>{Vec3{0, 0, 0} - G, N + G});
    bricks_to_cells(dec, store, 0, frame);
    std::int64_t bad = 0;
    for_each(frame.box(), [&](const Vec3& p) {
      if (frame.at(p) != f(p + off)) ++bad;
    });
    ASSERT_EQ(bad, 0) << "method " << method << " N=" << N[0] << "x" << N[1]
                      << "x" << N[2] << " B=" << B[0] << "x" << B[1] << "x"
                      << B[2] << " ranks=" << ranks;
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGeometry, ::testing::Range(1, 25));

// ---------------------------------------------------------------------------
// Exchange write-set properties: an exchange writes the ghost frame and
// nothing else. Interior (owned) cells stay bitwise untouched; every ghost
// cell flips from a sentinel to the correct value while the bytes received
// equal exactly one message set — one 8-byte write per ghost cell for the
// unpadded exchangers, so no cell can have been written twice.
// ---------------------------------------------------------------------------

class ExchangeWriteSet : public ::testing::TestWithParam<int> {};

TEST_P(ExchangeWriteSet, InteriorUntouchedAndGhostsWrittenExactlyOnce) {
  const int method = GetParam();  // 0 Layout, 1 Basic, 2 MemMap
  Runtime rt(2, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, {2, 1, 1});
    const Vec3 N{12, 12, 12};
    const std::int64_t ghost = 4;
    const Vec3 G = Vec3::fill(ghost);
    BrickDecomp<3> dec(N, ghost, {4, 4, 4}, surface3d());
    BrickStorage store = method == 2 ? dec.mmap_alloc(1) : dec.allocate(1);
    const Vec3 ext{2 * N[0], N[1], N[2]};
    const Vec3 off = cart.coords() * N;
    auto f = [&](Vec3 g) {
      for (int a = 0; a < 3; ++a) g[a] = ((g[a] % ext[a]) + ext[a]) % ext[a];
      return static_cast<double>((g[2] * ext[1] + g[1]) * ext[0] + g[0]) + 0.5;
    };
    auto is_own = [&](const Vec3& p) {
      for (int a = 0; a < 3; ++a)
        if (p[a] < 0 || p[a] >= N[a]) return false;
      return true;
    };
    constexpr double kSentinel = -7.25;  // f never produces it
    CellArray3 frame(Box<3>{Vec3{0, 0, 0} - G, N + G});
    for_each(frame.box(), [&](const Vec3& p) {
      frame.at(p) = is_own(p) ? f(p + off) : kSentinel;
    });
    cells_to_bricks(dec, frame, store, 0);

    const auto ranks_tbl = populate(cart, dec);
    comm.counters().reset();
    std::int64_t wire = 0;
    switch (method) {
      case 0: {
        Exchanger<3> ex(dec, store, ranks_tbl, Exchanger<3>::Mode::Layout);
        ex.exchange(comm);
        wire = ex.send_byte_count();
        break;
      }
      case 1: {
        Exchanger<3> ex(dec, store, ranks_tbl, Exchanger<3>::Mode::Basic);
        ex.exchange(comm);
        wire = ex.send_byte_count();
        break;
      }
      default: {
        ExchangeView<3> ev(dec, store, ranks_tbl);
        ev.exchange(comm);
        wire = ev.send_byte_count();
      }
    }

    CellArray3 got(frame.box());
    bricks_to_cells(dec, store, 0, got);
    std::int64_t interior_touched = 0, ghost_unwritten = 0, ghost_wrong = 0;
    for_each(got.box(), [&](const Vec3& p) {
      if (is_own(p)) {
        if (got.at(p) != f(p + off)) ++interior_touched;
      } else if (got.at(p) == kSentinel) {
        ++ghost_unwritten;
      } else if (got.at(p) != f(p + off)) {
        ++ghost_wrong;
      }
    });
    EXPECT_EQ(interior_touched, 0) << "exchange wrote into owned cells";
    EXPECT_EQ(ghost_unwritten, 0) << "ghost cells the exchange never filled";
    EXPECT_EQ(ghost_wrong, 0);
    // Receive accounting closes the exactly-once argument: everything that
    // arrived is one exchange's wire volume, which for the unpadded
    // exchangers is precisely one double per ghost cell.
    const std::int64_t ghost_cells = (N + G * 2).prod() - N.prod();
    EXPECT_EQ(comm.counters().bytes_recv, wire);
    if (method == 2) {
      EXPECT_GE(wire, ghost_cells * 8);  // page padding rides along
    } else {
      EXPECT_EQ(wire, ghost_cells * 8);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Methods, ExchangeWriteSet, ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------------
// Structural invariants under sweeps of ghost depth and layout.
// ---------------------------------------------------------------------------

class GhostDepth : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(GhostDepth, MultiLayerGhostsPartitionAndExchange) {
  const std::int64_t gb = GetParam();  // ghost layers of 4-bricks
  const std::int64_t ghost = 4 * gb;
  const Vec3 N = Vec3::fill(std::max<std::int64_t>(2 * ghost, 8));
  BrickDecomp<3> dec(N, ghost, {4, 4, 4}, surface3d());
  EXPECT_EQ(dec.ghost_layers(), Vec3::fill(gb));
  // Total ghost bricks = frame volume in bricks.
  const std::int64_t n = N[0] / 4;
  EXPECT_EQ(dec.total_brick_count() - dec.own_brick_count(),
            (n + 2 * gb) * (n + 2 * gb) * (n + 2 * gb) - n * n * n);
  // A 2-rank exchange with deep ghosts stays exact.
  Runtime rt(2, NetModel{});
  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, {2, 1, 1});
    BrickStorage store = dec.allocate(1);
    const Vec3 ext{2 * N[0], N[1], N[2]};
    const Vec3 off = cart.coords() * N;
    auto f = [&](Vec3 g) {
      for (int a = 0; a < 3; ++a) g[a] = ((g[a] % ext[a]) + ext[a]) % ext[a];
      return static_cast<double>((g[2] * ext[1] + g[1]) * ext[0] + g[0]);
    };
    CellArray3 own(Box<3>{{0, 0, 0}, N});
    for_each(own.box(), [&](const Vec3& p) { own.at(p) = f(p + off); });
    cells_to_bricks(dec, own, store, 0);
    Exchanger<3> ex(dec, store, populate(cart, dec),
                    Exchanger<3>::Mode::Layout);
    ex.exchange(comm);
    CellArray3 frame(
        Box<3>{Vec3{0, 0, 0} - Vec3::fill(ghost), N + Vec3::fill(ghost)});
    bricks_to_cells(dec, store, 0, frame);
    std::int64_t bad = 0;
    for_each(frame.box(), [&](const Vec3& p) {
      if (frame.at(p) != f(p + off)) ++bad;
    });
    ASSERT_EQ(bad, 0);
  });
}

INSTANTIATE_TEST_SUITE_P(Layers, GhostDepth, ::testing::Values(1, 2, 3));

TEST(PlanInvariants, LayoutNeverExceedsBasicForAnyPermutation) {
  Rng rng(31337);
  BrickStorage store = [] {
    BrickDecomp<3> d({24, 24, 24}, 4, {4, 4, 4}, surface3d());
    return d.allocate(1);
  }();
  for (int trial = 0; trial < 10; ++trial) {
    LayoutSpec s{all_surface_signatures(3)};
    for (std::size_t j = s.order.size(); j > 1; --j)
      std::swap(s.order[j - 1], s.order[rng.below(j)]);
    BrickDecomp<3> dec({24, 24, 24}, 4, {4, 4, 4}, s);
    BrickStorage st = dec.allocate(1);
    std::int64_t merged = 0, basic = 0;
    for (const BitSet& nu : dec.neighbor_order()) {
      merged += static_cast<std::int64_t>(
          plan_send_groups(dec, st, nu, true).size());
      basic += static_cast<std::int64_t>(
          plan_send_groups(dec, st, nu, false).size());
    }
    EXPECT_LE(merged, basic);
    EXPECT_GE(merged, layout_message_lower_bound(3));
    EXPECT_EQ(basic, basic_message_count(3));
    // The plan evaluated on real chunk geometry agrees with the abstract
    // evaluator whenever no region is empty.
    EXPECT_EQ(merged, message_count(s, 3));
  }
}

TEST(PlanInvariants, ChunkTableIsGapFreeAndOrdered) {
  for (std::int64_t dim : {16, 24, 32}) {
    BrickDecomp<3> dec(Vec3::fill(dim), 8, {8, 8, 8}, surface3d());
    for (bool padded : {false, true}) {
      BrickStorage s = padded ? dec.mmap_alloc(1) : dec.allocate(1);
      std::size_t at = 0;
      for (const auto& c : s.chunks()) {
        EXPECT_EQ(c.offset, at);
        EXPECT_GE(c.padded_bytes, c.bytes);
        at += c.padded_bytes;
      }
      EXPECT_EQ(at, s.bytes());
    }
  }
}

TEST(PlanInvariants, RecvPlanIsDisjointAndCoversGhostChunksExactly) {
  // Plan-level companion to ExchangeWriteSet: the receive ranges must be
  // pairwise disjoint in storage and their union must be exactly the ghost
  // chunks' payload — one writer per ghost byte by construction, not just
  // by observed effect.
  BrickDecomp<3> dec({16, 24, 16}, 8, {8, 8, 8}, surface3d());
  BrickStorage st = dec.allocate(1);
  const std::vector<int> nbr(dec.neighbor_order().size(), 0);
  const auto& chunks = st.chunks();
  const auto ghost_first = static_cast<std::size_t>(dec.ghost_first_ordinal());
  const std::size_t ghost_begin = chunks[ghost_first].offset;
  std::size_t ghost_bytes = 0;
  for (std::size_t o = ghost_first; o < chunks.size(); ++o)
    ghost_bytes += chunks[o].bytes;

  for (auto mode : {Exchanger<3>::Mode::Layout, Exchanger<3>::Mode::Basic}) {
    Exchanger<3> ex(dec, st, nbr, mode);
    std::vector<std::pair<std::size_t, std::size_t>> ranges;
    ex.visit_recv_ranges([&](int, std::size_t off, std::size_t len) {
      ranges.emplace_back(off, len);
    });
    std::sort(ranges.begin(), ranges.end());
    std::size_t total = 0, prev_end = ghost_begin;
    for (const auto& [off, len] : ranges) {
      EXPECT_GE(off, prev_end) << "overlapping or pre-ghost receive range";
      prev_end = off + len;
      total += len;
    }
    EXPECT_LE(prev_end, st.bytes());
    // Disjoint ranges inside the ghost span summing to its full payload
    // (allocate() pads nothing) can only be an exact partition of it.
    EXPECT_EQ(total, ghost_bytes);
  }
}

TEST(PlanInvariants, MirrorVolumesMatchAcrossAllDirections) {
  // What a rank sends toward ν equals what it receives from ν (its
  // neighbor's send toward flip(ν)) — required for the wire format.
  BrickDecomp<3> dec({32, 24, 16}, 8, {8, 8, 8}, surface3d());
  BrickStorage s = dec.allocate(1);
  for (const BitSet& nu : dec.neighbor_order()) {
    auto bytes_for = [&](const BitSet& dir) {
      std::int64_t b = 0;
      for (const auto& grp : plan_send_groups(dec, s, dir, true))
        for (int o : grp)
          b += static_cast<std::int64_t>(
              s.chunks()[static_cast<std::size_t>(o)].bytes);
      return b;
    };
    EXPECT_EQ(bytes_for(nu), bytes_for(nu.flipped())) << nu.str();
  }
}

// ---------------------------------------------------------------------------
// Persistent-plan replay: for every exchanger, one cached plan (built once,
// bound to persistent requests, replayed N rounds) must produce ghost
// frames bit-identical to N independently rebuilt plans run ad hoc. This is
// the property the harness's build-once default rests on (DESIGN.md §9).
// ---------------------------------------------------------------------------

class PlanReplay : public ::testing::TestWithParam<int> {};

TEST_P(PlanReplay, CachedPlanMatchesRebuiltPlans) {
  // 0 Layout, 1 Basic, 2 MemMap, 3 Shift, 4 YASK/pack, 5 MPI_Types.
  const int method = GetParam();
  constexpr int kRounds = 4;
  constexpr int kRanks = 2;
  const Vec3 N{8, 8, 8};
  const std::int64_t ghost = 4;
  const Vec3 G = Vec3::fill(ghost);
  const Vec3 ext{kRanks * N[0], N[1], N[2]};

  // Owned cells change every round; ghosts are only ever filled by the
  // exchange, so a replay that dangles stale plan state shows up as a
  // stale or missing ghost byte.
  auto f = [&](Vec3 g, int round) {
    for (int a = 0; a < 3; ++a) g[a] = ((g[a] % ext[a]) + ext[a]) % ext[a];
    return static_cast<double>((g[2] * ext[1] + g[1]) * ext[0] + g[0]) +
           4096.0 * round;
  };
  auto is_own = [&](const Vec3& p) {
    for (int a = 0; a < 3; ++a)
      if (p[a] < 0 || p[a] >= N[a]) return false;
    return true;
  };

  // frames[round * kRanks + rank] = the rank's full ghosted frame.
  auto run_mode = [&](bool cached) {
    std::vector<std::vector<double>> frames(kRounds * kRanks);
    Runtime rt(kRanks, NetModel{});
    rt.run([&](Comm& comm) {
      Cart<3> cart(comm, {kRanks, 1, 1});
      const Vec3 off = cart.coords() * N;

      if (method <= 3) {  // brick family
        BrickDecomp<3> dec(N, ghost, {4, 4, 4}, surface3d());
        BrickStorage store = method == 2 ? dec.mmap_alloc(1) : dec.allocate(1);
        const auto ranks_tbl = populate(cart, dec);
        std::optional<Exchanger<3>> ex;
        std::optional<ExchangeView<3>> ev;
        std::optional<ShiftExchanger<3>> sh;
        auto build = [&] {
          switch (method) {
            case 0:
              ex.emplace(dec, store, ranks_tbl, Exchanger<3>::Mode::Layout);
              break;
            case 1:
              ex.emplace(dec, store, ranks_tbl, Exchanger<3>::Mode::Basic);
              break;
            case 2:
              ev.emplace(dec, store, ranks_tbl);
              break;
            default:
              sh.emplace(dec, store, shift_neighbors(cart));
          }
        };
        if (cached) {
          build();
          if (ex) ex->make_persistent(comm);
          if (ev) ev->make_persistent(comm);
          if (sh) sh->make_persistent(comm);
        }
        CellArray3 own(Box<3>{{0, 0, 0}, N});
        CellArray3 frame(Box<3>{Vec3{0, 0, 0} - G, N + G});
        for (int round = 0; round < kRounds; ++round) {
          for_each(own.box(),
                   [&](const Vec3& p) { own.at(p) = f(p + off, round); });
          cells_to_bricks(dec, own, store, 0);
          if (!cached) build();  // fresh plan (and datatype/view state)
          if (ex) ex->exchange(comm);
          if (ev) ev->exchange(comm);
          if (sh) sh->exchange(comm);
          bricks_to_cells(dec, store, 0, frame);
          frames[static_cast<std::size_t>(round * kRanks + comm.rank())] =
              frame.raw();
        }
      } else {  // array family (pack / datatype baselines)
        const auto dirs = Cart<3>::all_directions();
        std::vector<int> nbr;
        for (const auto& d : dirs) nbr.push_back(cart.neighbor(d));
        CellArray3 field(Box<3>{Vec3{0, 0, 0} - G, N + G});
        std::optional<baseline::PackExchanger> packer;
        std::optional<baseline::MpiTypesExchanger> typer;
        auto build = [&] {
          if (method == 4) {
            packer.emplace(N, ghost, dirs, nbr);
          } else {
            typer.emplace(N, ghost, dirs, nbr, field);
          }
        };
        if (cached) {
          build();
          if (packer) packer->make_persistent(comm);
          if (typer) typer->make_persistent(comm, field);
        }
        for (int round = 0; round < kRounds; ++round) {
          for_each(field.box(), [&](const Vec3& p) {
            if (is_own(p)) field.at(p) = f(p + off, round);
          });
          if (!cached) build();
          if (packer) packer->exchange(comm, field);
          if (typer) typer->exchange(comm, field);
          frames[static_cast<std::size_t>(round * kRanks + comm.rank())] =
              field.raw();
        }
      }
    });
    return frames;
  };

  const auto cached = run_mode(true);
  const auto rebuilt = run_mode(false);
  ASSERT_EQ(cached.size(), rebuilt.size());
  for (std::size_t i = 0; i < cached.size(); ++i) {
    ASSERT_FALSE(cached[i].empty());
    ASSERT_EQ(cached[i], rebuilt[i])
        << "method " << method << " round " << i / kRanks << " rank "
        << i % kRanks;
  }
}

INSTANTIATE_TEST_SUITE_P(Exchangers, PlanReplay,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

}  // namespace
}  // namespace brickx
