// Stress and edge-case coverage for the simmpi substrate: heavy message
// loads, request misuse, deep datatype composition, and virtual-clock
// properties under contention.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "obs/obs.h"  // for the BRICKX_OBS default (Trace tests below)
#include "simmpi/cart.h"
#include "simmpi/comm.h"

namespace brickx::mpi {
namespace {

TEST(Stress, ThousandsOfMessagesAllToAll) {
  const int n = 8;
  constexpr int kPerPair = 64;
  Runtime rt(n, NetModel{});
  rt.run([&](Comm& c) {
    std::vector<std::vector<double>> inbox(
        static_cast<std::size_t>(c.size()),
        std::vector<double>(kPerPair, -1.0));
    std::vector<std::vector<double>> outbox(
        static_cast<std::size_t>(c.size()));
    std::vector<Request> reqs;
    for (int peer = 0; peer < c.size(); ++peer) {
      auto& out = outbox[static_cast<std::size_t>(peer)];
      out.resize(kPerPair);
      for (int i = 0; i < kPerPair; ++i)
        out[static_cast<std::size_t>(i)] = c.rank() * 10000 + peer * 100 + i;
      for (int i = 0; i < kPerPair; ++i) {
        reqs.push_back(c.irecv(&inbox[static_cast<std::size_t>(peer)]
                                      [static_cast<std::size_t>(i)],
                               sizeof(double), peer, i));
        reqs.push_back(c.isend(&out[static_cast<std::size_t>(i)],
                               sizeof(double), peer, i));
      }
    }
    c.waitall(reqs);
    for (int peer = 0; peer < c.size(); ++peer)
      for (int i = 0; i < kPerPair; ++i)
        ASSERT_EQ(inbox[static_cast<std::size_t>(peer)]
                       [static_cast<std::size_t>(i)],
                  peer * 10000 + c.rank() * 100 + i);
  });
}

TEST(Stress, LargeMessages) {
  Runtime rt(2, NetModel{});
  rt.run([&](Comm& c) {
    const std::size_t n = 8 << 20;  // 64 MiB of doubles
    std::vector<double> buf(n);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0.0);
      c.send(buf.data(), n * sizeof(double), 1, 0);
    } else {
      c.recv(buf.data(), n * sizeof(double), 0, 0);
      EXPECT_EQ(buf[n - 1], static_cast<double>(n - 1));
    }
  });
}

TEST(Stress, RandomizedTagMatchingOrder) {
  Runtime rt(2, NetModel{});
  rt.run([&](Comm& c) {
    constexpr int kMsgs = 200;
    if (c.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        double v = i * 1.5;
        c.send(&v, sizeof v, 1, i);
      }
    } else {
      // Receive in a scrambled tag order; matching must be by tag.
      std::vector<int> order(kMsgs);
      std::iota(order.begin(), order.end(), 0);
      Rng rng(5);
      for (std::size_t j = order.size(); j > 1; --j)
        std::swap(order[j - 1], order[rng.below(j)]);
      for (int tag : order) {
        double v = -1;
        c.recv(&v, sizeof v, 0, tag);
        ASSERT_EQ(v, tag * 1.5);
      }
    }
  });
}

TEST(Misuse, DoubleWaitThrows) {
  Runtime rt(1, NetModel{});
  EXPECT_THROW(rt.run([](Comm& c) {
    double x = 0, y = 0;
    Request s = c.isend(&x, sizeof x, 0, 0);
    Request r = c.irecv(&y, sizeof y, 0, 0);
    c.wait(r);
    c.wait(s);
    c.wait(s);  // already completed (and reset) — must throw
  }),
               brickx::Error);
}

TEST(Misuse, WaitOnEmptyRequestThrows) {
  Runtime rt(1, NetModel{});
  EXPECT_THROW(rt.run([](Comm& c) {
    Request r;
    c.wait(r);
  }),
               brickx::Error);
}

TEST(Datatype, DeepConcatComposition) {
  // Build a struct-of-subarrays covering three disjoint faces and check
  // gather/scatter coherence.
  const Vec3 sizes{12, 12, 12};
  auto faces = Datatype::concat({
      {0, Datatype::subarray<3>(sizes, {2, 12, 12}, {0, 0, 0}, 8)},
      {0, Datatype::subarray<3>(sizes, {2, 12, 12}, {10, 0, 0}, 8)},
      {0, Datatype::subarray<3>(sizes, {8, 2, 12}, {2, 0, 0}, 8)},
  });
  std::vector<double> grid(static_cast<std::size_t>(sizes.prod()));
  std::iota(grid.begin(), grid.end(), 0.0);
  std::vector<std::byte> packed(faces.size());
  faces.flat().gather(reinterpret_cast<const std::byte*>(grid.data()),
                      packed.data());
  std::vector<double> back(grid.size(), -1.0);
  faces.flat().scatter(packed.data(),
                       reinterpret_cast<std::byte*>(back.data()));
  std::int64_t touched = 0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    if (back[i] >= 0) {
      EXPECT_EQ(back[i], grid[i]);
      ++touched;
    }
  }
  EXPECT_EQ(touched, 2 * 144 + 2 * 144 + 8 * 2 * 12);
}

TEST(VClockProps, WaitNeverMovesTimeBackward) {
  Runtime rt(4, NetModel{});
  rt.run([&](Comm& c) {
    Rng rng(static_cast<std::uint64_t>(c.rank()) + 1);
    double prev = 0;
    for (int step = 0; step < 50; ++step) {
      const int peer = (c.rank() + 1 + step) % c.size();
      const int from =
          (c.rank() - 1 - step % c.size() + 2 * c.size()) % c.size();
      double v = 0;
      Request r = c.irecv(&v, sizeof v, from, step);
      double mine = 1.0;
      Request s = c.isend(&mine, sizeof mine, peer, step);
      c.compute(rng.uniform() * 1e-6);
      c.wait(r);
      c.wait(s);
      ASSERT_GE(c.clock().now(), prev);
      prev = c.clock().now();
    }
  });
}

TEST(VClockProps, ArrivalRespectsSenderSerialization) {
  // N back-to-back 1 MB messages from one sender cannot arrive faster than
  // N * (bytes / bw) no matter how the receiver waits.
  NetModel m;
  m.send_overhead = 0;
  m.recv_overhead = 0;
  m.inter_node = {0.0, 1e9};
  Runtime rt(2, m);
  rt.run([&](Comm& c) {
    constexpr int kN = 10;
    std::vector<char> buf(1 << 20);
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) c.send(buf.data(), buf.size(), 1, i);
    } else {
      std::vector<Request> reqs;
      for (int i = kN - 1; i >= 0; --i)
        reqs.push_back(c.irecv(buf.data(), buf.size(), 0, i));
      c.waitall(reqs);
      EXPECT_GE(c.clock().now(), kN * (1 << 20) / 1e9);
    }
  });
}

TEST(VClockProps, BarrierIsMonotoneAcrossRanks) {
  Runtime rt(16, NetModel{});
  rt.run([&](Comm& c) {
    c.compute(1e-6 * c.rank());
    const double before = c.clock().now();
    c.barrier();
    EXPECT_GE(c.clock().now(), before);
    EXPECT_GE(c.clock().now(), 15e-6);  // the slowest rank's time
    // All ranks observe the identical post-barrier time.
    auto ts = c.allgather(c.clock().now());
    for (double t : ts) EXPECT_EQ(t, ts[0]);
  });
}

TEST(Stress, ManySmallRuntimes) {
  // Runtime construction/teardown is cheap and leak-free across dozens of
  // uses (benches construct one per experiment).
  for (int i = 0; i < 50; ++i) {
    Runtime rt(3, NetModel{});
    rt.run([](Comm& c) { c.barrier(); });
  }
}

}  // namespace
}  // namespace brickx::mpi

// The legacy enable_trace/trace view is backed by the obs flow log, so it
// only exists in BRICKX_OBS builds; the null-sink build records nothing.
#if BRICKX_OBS

namespace brickx::mpi {
namespace {

TEST(Trace, RecordsEveryMessageDeterministically) {
  auto once = [] {
    Runtime rt(4, NetModel{});
    rt.enable_trace();
    rt.run([](Comm& c) {
      const int to = (c.rank() + 1) % c.size();
      const int from = (c.rank() + c.size() - 1) % c.size();
      double v = c.rank(), w = 0;
      for (int i = 0; i < 5; ++i) {
        Request r = c.irecv(&w, sizeof w, from, i);
        Request s = c.isend(&v, sizeof v, to, i);
        c.wait(r);
        c.wait(s);
      }
    });
    return rt.trace();
  };
  const auto a = once();
  const auto b = once();
  ASSERT_EQ(a.size(), 4u * 5);
  for (const auto& e : a) {
    EXPECT_EQ(e.bytes, sizeof(double));
    EXPECT_GT(e.arrival, e.departure);
  }
  // Deterministic: identical programs record identical timelines.
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].departure, b[i].departure);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
  }
}

TEST(Trace, OffByDefaultAndClearable) {
  Runtime rt(2, NetModel{});
  rt.run([](Comm& c) {
    int x = 0;
    if (c.rank() == 0) c.send(&x, sizeof x, 1, 0);
    if (c.rank() == 1) c.recv(&x, sizeof x, 0, 0);
  });
  EXPECT_TRUE(rt.trace().empty());
  rt.enable_trace();
  rt.run([](Comm& c) {
    int x = 0;
    if (c.rank() == 0) c.send(&x, sizeof x, 1, 0);
    if (c.rank() == 1) c.recv(&x, sizeof x, 0, 0);
  });
  EXPECT_EQ(rt.trace().size(), 1u);
  rt.clear_trace();
  EXPECT_TRUE(rt.trace().empty());
}

}  // namespace
}  // namespace brickx::mpi

#endif  // BRICKX_OBS
