#include "core/brick.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/cell_array.h"
#include "core/decomp.h"

namespace brickx {
namespace {

// Unique per-cell value from subdomain-local coordinates (may be negative
// in the ghost frame).
double tagval(std::int64_t i, std::int64_t j, std::int64_t k, int field = 0) {
  return static_cast<double>((k + 16) * 1000000 + (j + 16) * 1000 + (i + 16)) +
         field * 0.25;
}

TEST(Brick, AccessorMatchesCellCoordinates) {
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickInfo<3> info = dec.brick_info();
  BrickStorage store = dec.allocate(1);
  Brick<4, 4, 4> a(&info, &store, 0);

  // Fill via cell array covering the whole frame, then read via accessor.
  CellArray3 cells(Box<3>{{-4, -4, -4}, {20, 20, 20}});
  for_each(cells.box(), [&](const Vec3& p) {
    cells.at(p) = tagval(p[0], p[1], p[2]);
  });
  cells_to_bricks(dec, cells, store, 0);

  for (std::int64_t b = 0; b < dec.own_brick_count(); ++b) {
    const Vec3 base = dec.grid_of(b) * Vec3{4, 4, 4};
    for (int k = 0; k < 4; ++k)
      for (int j = 0; j < 4; ++j)
        for (int i = 0; i < 4; ++i)
          EXPECT_EQ(a[b][k][j][i], tagval(base[0] + i, base[1] + j, base[2] + k));
  }
}

TEST(Brick, NeighborResolutionAcrossBrickBoundaries) {
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickInfo<3> info = dec.brick_info();
  BrickStorage store = dec.allocate(1);
  Brick<4, 4, 4> a(&info, &store, 0);
  CellArray3 cells(Box<3>{{-4, -4, -4}, {20, 20, 20}});
  for_each(cells.box(), [&](const Vec3& p) {
    cells.at(p) = tagval(p[0], p[1], p[2]);
  });
  cells_to_bricks(dec, cells, store, 0);

  // From every own brick, indices in [-4, 8) resolve through adjacency to
  // the correct logical cell — including into the ghost frame.
  for (std::int64_t b = 0; b < dec.own_brick_count(); ++b) {
    const Vec3 base = dec.grid_of(b) * Vec3{4, 4, 4};
    for (int k : {-1, 0, 3, 4})
      for (int j : {-4, 0, 7})
        for (int i : {-2, 2, 5}) {
          EXPECT_EQ(a.at(b, k, j, i),
                    tagval(base[0] + i, base[1] + j, base[2] + k))
              << "b=" << b << " (" << i << "," << j << "," << k << ")";
        }
  }
}

TEST(Brick, ReachingPastGhostThrows) {
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickInfo<3> info = dec.brick_info();
  BrickStorage store = dec.allocate(1);
  Brick<4, 4, 4> a(&info, &store, 0);
  // Brick at grid (-1,-1,-1) is a ghost corner; its (-1,-1,-1) neighbor is
  // outside the allocation.
  const std::int32_t ghost_corner = dec.brick_at(Vec3{-1, -1, -1});
  ASSERT_NE(ghost_corner, BrickInfo<3>::kNoBrick);
  EXPECT_THROW((void)a.at(ghost_corner, -1, 0, 0), Error);
}

TEST(Brick, InterleavedFieldsAreIndependent) {
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickInfo<3> info = dec.brick_info();
  BrickStorage store = dec.allocate(2);
  Brick<4, 4, 4> a(&info, &store, 0);
  Brick<4, 4, 4> b(&info, &store, 64);  // field 1: offset = 4^3

  CellArray3 c0(Box<3>{{0, 0, 0}, {16, 16, 16}});
  CellArray3 c1(Box<3>{{0, 0, 0}, {16, 16, 16}});
  for_each(c0.box(), [&](const Vec3& p) {
    c0.at(p) = tagval(p[0], p[1], p[2], 0);
    c1.at(p) = tagval(p[0], p[1], p[2], 1);
  });
  cells_to_bricks(dec, c0, store, 0);
  cells_to_bricks(dec, c1, store, 1);

  for (std::int64_t br = 0; br < dec.own_brick_count(); ++br) {
    const Vec3 base = dec.grid_of(br) * Vec3{4, 4, 4};
    EXPECT_EQ(a[br][1][2][3], tagval(base[0] + 3, base[1] + 2, base[2] + 1, 0));
    EXPECT_EQ(b[br][1][2][3], tagval(base[0] + 3, base[1] + 2, base[2] + 1, 1));
  }
}

TEST(Brick, GeometryMismatchesRejected) {
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickInfo<3> info = dec.brick_info();
  BrickStorage store = dec.allocate(1);
  // Wrong template extents.
  EXPECT_THROW((Brick<8, 8, 8>(&info, &store, 0)), Error);
  // Field offset beyond the brick chunk.
  EXPECT_THROW((Brick<4, 4, 4>(&info, &store, 64)), Error);
}

TEST(CellArrayBridge, RoundtripThroughBricks) {
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickStorage store = dec.allocate(1);
  CellArray3 src(Box<3>{{-4, -4, -4}, {20, 20, 20}});
  for_each(src.box(), [&](const Vec3& p) {
    src.at(p) = tagval(p[0], p[1], p[2]);
  });
  cells_to_bricks(dec, src, store, 0);
  CellArray3 dst(Box<3>{{-4, -4, -4}, {20, 20, 20}});
  bricks_to_cells(dec, store, 0, dst);
  EXPECT_EQ(src.raw(), dst.raw());
}

TEST(CellArrayBridge, PartialBoxOnlyTouchesItsCells) {
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickStorage store = dec.allocate(1);
  CellArray3 patch(Box<3>{{4, 4, 4}, {8, 8, 8}});
  for_each(patch.box(), [&](const Vec3& p) { patch.at(p) = 7.0; });
  cells_to_bricks(dec, patch, store, 0);
  CellArray3 all(Box<3>{{0, 0, 0}, {16, 16, 16}});
  bricks_to_cells(dec, store, 0, all);
  for_each(all.box(), [&](const Vec3& p) {
    EXPECT_EQ(all.at(p), patch.box().contains(p) ? 7.0 : 0.0);
  });
}

TEST(CellArrayBridge, OutOfRangeDestinationThrows) {
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickStorage store = dec.allocate(1);
  CellArray3 bad(Box<3>{{-8, 0, 0}, {0, 4, 4}});  // beyond the ghost frame
  EXPECT_THROW(bricks_to_cells(dec, store, 0, bad), Error);
}

TEST(CellArrayBridge, MmapBackedStorageBehavesIdentically) {
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickStorage store = dec.mmap_alloc(1);
  CellArray3 src(Box<3>{{0, 0, 0}, {16, 16, 16}});
  for_each(src.box(), [&](const Vec3& p) {
    src.at(p) = tagval(p[0], p[1], p[2]);
  });
  cells_to_bricks(dec, src, store, 0);
  BrickInfo<3> info = dec.brick_info();
  Brick<4, 4, 4> a(&info, &store, 0);
  EXPECT_EQ(a[0][0][0][0], tagval(dec.grid_of(0)[0] * 4,
                                  dec.grid_of(0)[1] * 4,
                                  dec.grid_of(0)[2] * 4));
}

}  // namespace
}  // namespace brickx
