#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace brickx {
namespace {

TEST(Stats, EmptyIsZero) {
  Stats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
  EXPECT_EQ(s.avg(), 0.0);
  EXPECT_EQ(s.sigma(), 0.0);
}

TEST(Stats, SingleValue) {
  Stats s;
  s.add(3.5);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
  EXPECT_EQ(s.avg(), 3.5);
  EXPECT_EQ(s.sigma(), 0.0);
}

TEST(Stats, KnownSeries) {
  Stats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.avg(), 5.0);
  EXPECT_DOUBLE_EQ(s.sigma(), 2.0);  // classic population-sigma example
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8);
}

TEST(Stats, MergeMatchesSequential) {
  Rng rng(7);
  Stats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10 - 5;
    all.add(x);
    (i % 3 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.avg(), all.avg(), 1e-12);
  EXPECT_NEAR(a.sigma(), all.sigma(), 1e-12);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(Stats, MergeWithEmpty) {
  Stats a, b;
  a.add(1.0);
  a.add(2.0);
  Stats orig = a;
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.avg(), orig.avg());
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2);
  EXPECT_EQ(b.avg(), 1.5);
}

TEST(Stats, MergeEmptyIntoEmpty) {
  Stats a, b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
  EXPECT_EQ(a.avg(), 0.0);
  EXPECT_EQ(a.sigma(), 0.0);
}

TEST(Stats, MergeSingleSamples) {
  // Two single-sample stats merge into the exact two-sample moments: the
  // obs metrics exporter merges one-sample-per-rank histograms this way.
  Stats a, b;
  a.add(1.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_EQ(a.min(), 1.0);
  EXPECT_EQ(a.max(), 3.0);
  EXPECT_DOUBLE_EQ(a.avg(), 2.0);
  EXPECT_DOUBLE_EQ(a.sigma(), 1.0);  // population sigma of {1, 3}
}

TEST(Stats, MergeSingleIntoMany) {
  Stats many, one, all;
  for (double x : {2.0, 4.0, 6.0}) {
    many.add(x);
    all.add(x);
  }
  one.add(8.0);
  all.add(8.0);
  many.merge(one);
  EXPECT_EQ(many.count(), all.count());
  EXPECT_DOUBLE_EQ(many.avg(), all.avg());
  EXPECT_NEAR(many.sigma(), all.sigma(), 1e-12);
  EXPECT_EQ(many.max(), 8.0);
}

TEST(Stats, StrFormatIncludesAllFields) {
  Stats s;
  s.add(1e-3);
  s.add(2e-3);
  const std::string out = s.str();
  EXPECT_NE(out.find("["), std::string::npos);
  EXPECT_NE(out.find("sigma"), std::string::npos);
}

}  // namespace
}  // namespace brickx
