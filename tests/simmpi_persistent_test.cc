#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "simmpi/comm.h"
#include "simmpi/datatype.h"

namespace brickx::mpi {
namespace {

NetModel quiet() { return NetModel{}; }

// ---- lifecycle edges: every misuse is a typed error, never UB --------------

TEST(Persistent, StartBeforeInitThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm&) {
    Persistent p;  // never initialized
    p.start();
  }),
               PersistentError);
}

TEST(Persistent, WaitBeforeInitThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm&) {
    Persistent p;
    p.wait();
  }),
               PersistentError);
}

TEST(Persistent, DoubleStartThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x = 7;
    Persistent s = c.send_init(&x, sizeof x, 0, 0);
    Persistent r = c.recv_init(&x, sizeof x, 0, 0);
    r.start();
    s.start();
    s.start();  // round already in flight
  }),
               PersistentError);
}

TEST(Persistent, WaitWithoutStartThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x = 0;
    Persistent r = c.recv_init(&x, sizeof x, 0, 0);
    r.wait();  // no round started
  }),
               PersistentError);
}

TEST(Persistent, FreeWhileInflightThrows) {
  Runtime rt(1, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x = 3, y = 0;
    Persistent s = c.send_init(&x, sizeof x, 0, 0);
    Persistent r = c.recv_init(&y, sizeof y, 0, 0);
    s.start();
    r.start();
    s.free();  // round in flight: typed error, mirrors MPI_Request_free
  }),
               PersistentError);
}

TEST(Persistent, FreeThenReinitIsClean) {
  Runtime rt(1, quiet());
  rt.run([](Comm& c) {
    int x = 1, y = 0;
    Persistent s = c.send_init(&x, sizeof x, 0, 0);
    Persistent r = c.recv_init(&y, sizeof y, 0, 0);
    s.start();
    r.start();
    r.wait();
    s.wait();
    EXPECT_EQ(y, 1);
    s.free();
    EXPECT_FALSE(s.valid());
    s.free();  // idempotent on an empty handle
    // The handle can be re-pointed at a fresh init.
    s = c.send_init(&x, sizeof x, 0, 5);
    EXPECT_TRUE(s.valid());
    EXPECT_FALSE(s.active());
  });
}

TEST(Persistent, InitValidatesPeerBounds) {
  Runtime rt(2, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x = 0;
    (void)c.send_init(&x, sizeof x, c.size(), 0);  // out of range
  }),
               brickx::Error);
}

// Dropping an active handle (e.g. a faulted exchange unwinding) must not
// crash or leak into a later run — the abandoned round dies with its state.
TEST(Persistent, DestructorWhileActiveIsSafe) {
  Runtime rt(2, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    if (c.rank() == 0) {
      int x = 9;
      Persistent s = c.send_init(&x, sizeof x, 1, 0);
      s.start();
      brickx::fail("injected failure with a round in flight");
    } else {
      c.barrier();  // released by the abort
    }
  }),
               brickx::Error);
  Runtime rt2(2, quiet());
  rt2.run([](Comm& c) { c.barrier(); });
}

// ---- replay equivalence: persistent rounds are bit-identical to ad hoc ----

TEST(Persistent, RoundsMatchAdHocBytesAndTime) {
  // Same ring traffic twice: once ad hoc, once replayed over persistent
  // requests. Virtual time and counters must agree exactly — start/wait
  // funnel into the same isend/irecv paths.
  constexpr int kRanks = 4;
  constexpr int kRounds = 5;
  std::vector<double> t_adhoc(kRanks), t_pers(kRanks);
  std::vector<std::int64_t> recv_adhoc(kRanks), recv_pers(kRanks);
  std::vector<std::vector<int>> data_adhoc(kRanks), data_pers(kRanks);

  auto body = [&](bool persistent, std::vector<double>& t,
                  std::vector<std::int64_t>& recvd,
                  std::vector<std::vector<int>>& data) {
    Runtime rt(kRanks, quiet());
    rt.run([&](Comm& c) {
      const int next = (c.rank() + 1) % c.size();
      const int prev = (c.rank() + c.size() - 1) % c.size();
      std::vector<int> out(64), in(64);
      std::iota(out.begin(), out.end(), 1000 * c.rank());
      if (persistent) {
        Persistent pr = c.recv_init(in.data(), in.size() * sizeof(int), prev, 3);
        Persistent ps = c.send_init(out.data(), out.size() * sizeof(int), next, 3);
        for (int round = 0; round < kRounds; ++round) {
          pr.start();
          ps.start();
          pr.wait();
          ps.wait();
        }
        pr.free();
        ps.free();
      } else {
        for (int round = 0; round < kRounds; ++round) {
          Request r = c.irecv(in.data(), in.size() * sizeof(int), prev, 3);
          Request s = c.isend(out.data(), out.size() * sizeof(int), next, 3);
          c.wait(r);
          c.wait(s);
        }
      }
      t[static_cast<std::size_t>(c.rank())] = c.clock().now();
      recvd[static_cast<std::size_t>(c.rank())] = c.counters().bytes_recv;
      data[static_cast<std::size_t>(c.rank())] = in;
    });
  };
  body(false, t_adhoc, recv_adhoc, data_adhoc);
  body(true, t_pers, recv_pers, data_pers);
  for (int r = 0; r < kRanks; ++r) {
    EXPECT_EQ(t_adhoc[static_cast<std::size_t>(r)],
              t_pers[static_cast<std::size_t>(r)])
        << "rank " << r;
    EXPECT_EQ(recv_adhoc[static_cast<std::size_t>(r)],
              recv_pers[static_cast<std::size_t>(r)]);
    EXPECT_EQ(data_adhoc[static_cast<std::size_t>(r)],
              data_pers[static_cast<std::size_t>(r)]);
  }
}

TEST(Persistent, DatatypeRoundTrip) {
  // Persistent requests over a committed subarray datatype: the flattened
  // program is frozen at init and replayed; every round lands the strided
  // face exactly like an ad-hoc datatype send.
  Runtime rt(2, quiet());
  rt.run([](Comm& c) {
    constexpr std::int64_t kN = 6;
    const Vec<3> sizes{kN, kN, kN};
    const Vec<3> sub{kN, kN, 2};
    std::vector<double> field(kN * kN * kN, 0.0);
    const Datatype face =
        Datatype::subarray<3>(sizes, sub, Vec<3>{0, 0, 0}, sizeof(double));
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < field.size(); ++i)
        field[i] = static_cast<double>(i);
      Persistent s = c.send_init(field.data(), face, 1, 0);
      for (int round = 0; round < 3; ++round) {
        s.start();
        s.wait();
      }
    } else {
      Persistent r = c.recv_init(field.data(), face, 0, 0);
      for (int round = 0; round < 3; ++round) {
        std::fill(field.begin(), field.end(), -1.0);
        r.start();
        r.wait();
        // The z = 0..1 slab arrived; the rest stayed untouched.
        for (std::int64_t z = 0; z < kN; ++z)
          for (std::int64_t y = 0; y < kN; ++y)
            for (std::int64_t x = 0; x < kN; ++x) {
              const std::size_t i =
                  static_cast<std::size_t>((z * kN + y) * kN + x);
              if (z < 2) {
                ASSERT_EQ(field[i], static_cast<double>(i));
              } else {
                ASSERT_EQ(field[i], -1.0);
              }
            }
      }
    }
  });
}

TEST(Persistent, InitChargesNothing) {
  Runtime rt(2, quiet());
  rt.run([](Comm& c) {
    const double t0 = c.clock().now();
    int x = 0;
    Persistent s = c.send_init(&x, sizeof x, 1 - c.rank(), 0);
    Persistent r = c.recv_init(&x, sizeof x, 1 - c.rank(), 0);
    EXPECT_EQ(c.clock().now(), t0);  // all modeled cost is on start/wait
    (void)s;
    (void)r;
  });
}

}  // namespace
}  // namespace brickx::mpi
