// Properties of the overlap dependency scheduler (DESIGN.md §14): turning
// cfg.overlap on must never change *what* is computed or sent — only when.
// The oracle is differential: overlap vs bulk over the same configuration
// must validate against the same global reference (so field state is
// bit-identical), move exactly the same messages and bytes, and produce a
// schedule that is a pure function of the configuration (byte-identical
// traces across identical runs).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "harness/experiment.h"
#include "obs/analyze.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/session.h"
#include "simmpi/fault.h"

namespace obs = brickx::obs;
namespace harness = brickx::harness;

namespace {

harness::Config overlap_config(harness::Method m) {
  harness::Config cfg;
  cfg.machine = brickx::model::theta();
  cfg.rank_dims = {2, 2, 2};
  cfg.subdomain = {16, 16, 16};
  cfg.brick = 4;
  cfg.ghost = 4;
  cfg.method = m;
  cfg.timesteps = 8;  // two measured exchange rounds (k = 4)
  cfg.warmup_exchanges = 1;
  cfg.validate = true;
  return cfg;
}

void expect_same_traffic(const harness::Result& bulk,
                         const harness::Result& ol) {
  // The wire contract is untouched by scheduling: same message count, same
  // padded and payload bytes, same receive totals, per rank per exchange.
  EXPECT_EQ(bulk.msgs_per_rank, ol.msgs_per_rank);
  EXPECT_EQ(bulk.wire_bytes_per_rank, ol.wire_bytes_per_rank);
  EXPECT_EQ(bulk.payload_bytes_per_rank, ol.payload_bytes_per_rank);
  EXPECT_EQ(bulk.msgs_recv_per_rank, ol.msgs_recv_per_rank);
  EXPECT_EQ(bulk.bytes_recv_per_rank, ol.bytes_recv_per_rank);
}

}  // namespace

// ---- the central property: overlap only reorders, never rewrites -----------

TEST(HarnessOverlap, SameFieldsAndSameTrafficAsBulk) {
  for (const harness::Method m :
       {harness::Method::Basic, harness::Method::Layout,
        harness::Method::MemMap}) {
    harness::Config cfg = overlap_config(m);
    const harness::Result bulk = harness::run(cfg);
    cfg.overlap = true;
    const harness::Result ol = harness::run(cfg);
    SCOPED_TRACE(harness::method_name(m));
    // Both validate against the same single-domain reference: every cell of
    // every timestep is bit-identical, which also certifies the scheduler's
    // ordering obligations (a partition readied before its source bricks
    // finished, or a shell piece computed before its ghosts landed, would
    // surface as stale values and fail validation).
    EXPECT_TRUE(bulk.validated);
    EXPECT_TRUE(ol.validated);
    expect_same_traffic(bulk, ol);
  }
}

TEST(HarnessOverlap, HoldsFor125PointStencil) {
  harness::Config cfg = overlap_config(harness::Method::Layout);
  cfg.use125 = true;
  cfg.timesteps = 4;  // radius 2: k = 2 steps per exchange round
  const harness::Result bulk = harness::run(cfg);
  cfg.overlap = true;
  const harness::Result ol = harness::run(cfg);
  EXPECT_TRUE(bulk.validated);
  EXPECT_TRUE(ol.validated);
  expect_same_traffic(bulk, ol);
}

// ---- the property must survive every orthogonal axis ------------------------

TEST(HarnessOverlap, HoldsAcrossFabrics) {
  for (const brickx::netsim::FabricKind fk :
       {brickx::netsim::FabricKind::Dragonfly,
        brickx::netsim::FabricKind::FatTree,
        brickx::netsim::FabricKind::Torus3d}) {
    harness::Config cfg = overlap_config(harness::Method::MemMap);
    cfg.fabric = fk;
    const harness::Result bulk = harness::run(cfg);
    cfg.overlap = true;
    const harness::Result ol = harness::run(cfg);
    SCOPED_TRACE(static_cast<int>(fk));
    EXPECT_TRUE(bulk.validated);
    EXPECT_TRUE(ol.validated);
    expect_same_traffic(bulk, ol);
  }
}

TEST(HarnessOverlap, HoldsAcrossOnNodeTransports) {
  // Multiple ranks per node so the shm and aggregation tiers actually
  // engage; pready routes partitions down the same transport decision tree
  // as isend, so the on-node byte split must match bulk exactly.
  for (const brickx::transport::Kind tk :
       {brickx::transport::Kind::Shm, brickx::transport::Kind::ShmAgg}) {
    harness::Config cfg = overlap_config(harness::Method::Layout);
    cfg.machine.net.ranks_per_node = 4;
    cfg.transport = tk;
    const harness::Result bulk = harness::run(cfg);
    cfg.overlap = true;
    const harness::Result ol = harness::run(cfg);
    SCOPED_TRACE(static_cast<int>(tk));
    EXPECT_TRUE(bulk.validated);
    EXPECT_TRUE(ol.validated);
    expect_same_traffic(bulk, ol);
    EXPECT_EQ(bulk.msgs_intra_per_rank, ol.msgs_intra_per_rank);
    EXPECT_EQ(bulk.msgs_inter_per_rank, ol.msgs_inter_per_rank);
    EXPECT_EQ(bulk.bytes_intra_per_rank, ol.bytes_intra_per_rank);
    EXPECT_EQ(bulk.bytes_inter_per_rank, ol.bytes_inter_per_rank);
  }
}

TEST(HarnessOverlap, DelayFaultsPerturbTimingNeverResults) {
  // A delay-only schedule hits individual partitions (each is its own
  // integrity stream); the run must still validate and move the same bytes.
  harness::Config cfg = overlap_config(harness::Method::Layout);
  cfg.overlap = true;
  const harness::Result clean = harness::run(cfg);
  cfg.faults.delay = 0.5;
  cfg.faults.seed = 21;
  cfg.faults.max_delay = 2e-5;
  const harness::Result faulty = harness::run(cfg);
  EXPECT_TRUE(clean.validated);
  EXPECT_TRUE(faulty.validated);
  expect_same_traffic(clean, faulty);
}

#if BRICKX_OBS

// ---- schedule determinism: a pure function of the configuration ------------

TEST(HarnessOverlap, ScheduleIsPureFunctionOfConfig) {
  auto once = [] {
    obs::Session ses;
    {
      obs::Session::Scope scope(ses);
      harness::Config cfg = overlap_config(harness::Method::Layout);
      cfg.overlap = true;
      const harness::Result res = harness::run(cfg);
      EXPECT_TRUE(res.validated);
    }
    return std::pair<std::string, std::string>(obs::chrome_trace_json(ses),
                                               obs::analysis_json(ses));
  };
  const auto a = once();
  const auto b = once();
  ASSERT_GT(a.first.size(), 100u);
  // Byte-identical trace and analysis: every span boundary, every partition
  // injection time, every wait decision replays exactly.
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---- partition accounting, read off the trace -------------------------------

TEST(HarnessOverlap, EveryPartitionReadiedAndConsumedExactlyOncePerRound) {
  obs::Session ses;
  {
    obs::Session::Scope scope(ses);
    harness::Config cfg = overlap_config(harness::Method::MemMap);
    cfg.overlap = true;
    const harness::Result res = harness::run(cfg);
    EXPECT_TRUE(res.validated);
  }
  ASSERT_EQ(ses.runs().size(), 1u);
  const obs::Session::Run& run = ses.runs()[0];

  // Each pready emits one FlowEvent with part >= 0 on the sender; each
  // consume emits one RecvEvent with part >= 0 on the receiver. Group by
  // the full partition identity: per key, the count is the number of
  // exchange rounds — and therefore identical across every key. A partition
  // skipped (or readied twice) in any round would break the uniformity.
  std::map<std::tuple<int, int, int, int>, int> flows;  // (src,dst,tag,part)
  std::map<std::tuple<int, int, int, int>, int> recvs;  // (dst,src,tag,part)
  for (int r = 0; r < run.nranks; ++r) {
    for (const obs::FlowEvent& f : run.logs[static_cast<std::size_t>(r)].flows())
      if (f.part >= 0) ++flows[{f.src, f.dst, f.tag, f.part}];
    for (const obs::RecvEvent& e : run.logs[static_cast<std::size_t>(r)].recvs())
      if (e.part >= 0) ++recvs[{r, e.src, e.tag, e.part}];
  }
  ASSERT_FALSE(flows.empty());
  ASSERT_EQ(flows.size(), recvs.size());
  const int rounds = flows.begin()->second;
  EXPECT_GT(rounds, 1);  // warmup round + measured rounds
  for (const auto& [key, n] : flows) EXPECT_EQ(n, rounds);
  for (const auto& [key, n] : recvs) EXPECT_EQ(n, rounds);
}

TEST(HarnessOverlap, AnalyzerIdentityHoldsUnderOverlap) {
  // The critical-path identity (segments tile [0, makespan] exactly) must
  // survive partition-granularity message edges in the causality DAG.
  obs::Session ses;
  {
    obs::Session::Scope scope(ses);
    for (const harness::Method m :
         {harness::Method::Basic, harness::Method::Layout,
          harness::Method::MemMap}) {
      harness::Config cfg = overlap_config(m);
      cfg.overlap = true;
      (void)harness::run(cfg);
    }
  }
  ASSERT_EQ(ses.runs().size(), 3u);
  for (const obs::Session::Run& run : ses.runs()) {
    const obs::RunAnalysis a = obs::analyze_run(run);
    SCOPED_TRACE(run.label);
    EXPECT_TRUE(a.identity_ok);
    EXPECT_GT(a.makespan, 0.0);
  }
}

#endif  // BRICKX_OBS
