#include "stencil/stencils.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/brick.h"

namespace brickx::stencil {
namespace {

TEST(Stencil7, CoefficientsSumToOne) {
  double s = 0;
  for (double c : Stencil7::c) s += c;
  EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(Stencil125, WeightsNormalizedOverCube) {
  double s = 0;
  for (int dz = -2; dz <= 2; ++dz)
    for (int dy = -2; dy <= 2; ++dy)
      for (int dx = -2; dx <= 2; ++dx) s += Stencil125::coeff(dz, dy, dx);
  EXPECT_NEAR(s, 1.0, 1e-12);
}

TEST(Stencil125, CoefficientSymmetry) {
  // The 10 constants arise from symmetry: any permutation/sign flip of the
  // offset leaves the coefficient unchanged.
  EXPECT_EQ(Stencil125::coeff(1, 2, 0), Stencil125::coeff(0, -2, -1));
  EXPECT_EQ(Stencil125::coeff(2, 2, 2), Stencil125::coeff(-2, 2, -2));
  EXPECT_EQ(Stencil125::coeff(0, 0, 1), Stencil125::coeff(1, 0, 0));
  // Ten distinct classes exist.
  std::set<double> classes;
  for (int dz = 0; dz <= 2; ++dz)
    for (int dy = 0; dy <= 2; ++dy)
      for (int dx = 0; dx <= 2; ++dx)
        classes.insert(Stencil125::coeff(dz, dy, dx));
  EXPECT_EQ(classes.size(), 10u);
}

TEST(Stencil125, OutsideCubeRejected) {
  EXPECT_THROW((void)Stencil125::coeff(3, 0, 0), Error);
}

TEST(ArrayKernels, SevenPointPointwise) {
  CellArray3 in(Box<3>{{-1, -1, -1}, {4, 4, 4}});
  CellArray3 out(Box<3>{{-1, -1, -1}, {4, 4, 4}});
  for_each(in.box(), [&](const Vec3& p) {
    in.at(p) = static_cast<double>(p[0] + 10 * p[1] + 100 * p[2]);
  });
  apply7_array(in, out, Box<3>{{0, 0, 0}, {3, 3, 3}});
  const auto& c = Stencil7::c;
  const Vec3 p{1, 2, 1};
  const double expect =
      c[0] * in.at(p) + c[1] * in.at({0, 2, 1}) + c[2] * in.at({2, 2, 1}) +
      c[3] * in.at({1, 1, 1}) + c[4] * in.at({1, 3, 1}) +
      c[5] * in.at({1, 2, 0}) + c[6] * in.at({1, 2, 2});
  EXPECT_EQ(out.at(p), expect);
}

TEST(ArrayKernels, ConstantFieldIsFixedPoint) {
  // Both kernels have weights summing to 1: a constant field is invariant.
  CellArray3 in(Box<3>{{-2, -2, -2}, {6, 6, 6}});
  CellArray3 out(Box<3>{{-2, -2, -2}, {6, 6, 6}});
  for_each(in.box(), [&](const Vec3& p) { in.at(p) = 3.25; });
  apply7_array(in, out, Box<3>{{0, 0, 0}, {4, 4, 4}});
  for_each(Box<3>{{0, 0, 0}, {4, 4, 4}}, [&](const Vec3& p) {
    EXPECT_NEAR(out.at(p), 3.25, 1e-12);
  });
  apply125_array(in, out, Box<3>{{0, 0, 0}, {4, 4, 4}});
  for_each(Box<3>{{0, 0, 0}, {4, 4, 4}}, [&](const Vec3& p) {
    EXPECT_NEAR(out.at(p), 3.25, 1e-12);
  });
}

class BrickVsArray : public ::testing::TestWithParam<bool> {};

TEST_P(BrickVsArray, KernelsAgreeBitExactly) {
  const bool use125 = GetParam();
  const std::int64_t r = use125 ? 2 : 1;
  BrickDecomp<3> dec({16, 16, 16}, 4, {4, 4, 4}, surface3d());
  BrickInfo<3> info = dec.brick_info();
  BrickStorage sin = dec.allocate(1), sout = dec.allocate(1);
  Brick<4, 4, 4> bin(&info, &sin, 0), bout(&info, &sout, 0);

  CellArray3 ain(Box<3>{{-4, -4, -4}, {20, 20, 20}});
  CellArray3 aout(Box<3>{{-4, -4, -4}, {20, 20, 20}});
  for_each(ain.box(), [&](const Vec3& p) {
    ain.at(p) = std::sin(0.1 * static_cast<double>(
                              p[0] + 3 * p[1] + 7 * p[2]));
  });
  cells_to_bricks(dec, ain, sin, 0);

  const Box<3> box{{-4 + r, -4 + r, -4 + r}, {20 - r, 20 - r, 20 - r}};
  if (use125) {
    apply125_array(ain, aout, box);
    apply125_bricks<4, 4, 4>(dec, bout, bin, box);
  } else {
    apply7_array(ain, aout, box);
    apply7_bricks<4, 4, 4>(dec, bout, bin, box);
  }
  CellArray3 got(box);
  bricks_to_cells(dec, sout, 0, got);
  std::int64_t bad = 0;
  for_each(box, [&](const Vec3& p) {
    if (got.at(p) != aout.at(p)) ++bad;  // bitwise identical
  });
  EXPECT_EQ(bad, 0);
}

INSTANTIATE_TEST_SUITE_P(BothStencils, BrickVsArray, ::testing::Bool(),
                         [](const auto& i) {
                           return i.param ? "p125" : "p7";
                         });

TEST(Reference, PeriodicWrapMatchesManual) {
  CellArray3 f(Box<3>{{0, 0, 0}, {4, 4, 4}});
  for_each(f.box(), [&](const Vec3& p) {
    f.at(p) = static_cast<double>(linearize(p, Vec3{4, 4, 4}));
  });
  CellArray3 g(f.box());
  g.raw() = f.raw();
  evolve_reference(f, 1, /*use125=*/false);
  // Check one cell by hand with wrapping.
  const auto& c = Stencil7::c;
  const double expect = c[0] * g.at({0, 0, 0}) + c[1] * g.at({3, 0, 0}) +
                        c[2] * g.at({1, 0, 0}) + c[3] * g.at({0, 3, 0}) +
                        c[4] * g.at({0, 1, 0}) + c[5] * g.at({0, 0, 3}) +
                        c[6] * g.at({0, 0, 1});
  EXPECT_EQ(f.at({0, 0, 0}), expect);
}

TEST(Expansion, OutputBoxShrinksByRadius) {
  const Vec3 N{16, 16, 16};
  // Ghost 8, radius 1: 8 steps per exchange; margins 7,6,...,0.
  for (std::int64_t s = 0; s < 8; ++s) {
    const Box<3> b = expansion_output_box<3>(N, 8, 1, s);
    EXPECT_EQ(b.lo[0], -(7 - s));
    EXPECT_EQ(b.hi[0], 16 + 7 - s);
  }
  // Radius 2: 4 steps per exchange.
  EXPECT_EQ(steps_per_exchange(8, 2), 4);
  EXPECT_EQ(expansion_output_box<3>(N, 8, 2, 3).lo[0], 0);
  // Overdue exchange trips the invariant.
  EXPECT_THROW((void)expansion_output_box<3>(N, 8, 1, 8), Error);
}

TEST(Shell, BoxesPartitionWholeMinusInner) {
  const Box<3> whole{{-7, -7, -7}, {23, 23, 23}};
  const Box<3> inner{{1, 1, 1}, {15, 15, 15}};
  const auto slabs = shell_boxes<3>(whole, inner);
  EXPECT_LE(slabs.size(), 6u);
  std::int64_t vol = 0;
  for (const auto& b : slabs) {
    vol += b.volume();
    // Disjoint from inner and within whole.
    for_each(b, [&](const Vec3& p) {
      EXPECT_TRUE(whole.contains(p));
      EXPECT_FALSE(inner.contains(p));
    });
  }
  EXPECT_EQ(vol, whole.volume() - inner.volume());
}

TEST(Shell, DegenerateCases) {
  const Box<3> whole{{0, 0, 0}, {8, 8, 8}};
  // inner == whole: empty shell.
  EXPECT_TRUE(shell_boxes<3>(whole, whole).empty());
  // empty inner at a corner: one slab may cover everything.
  const Box<3> empty_inner{{0, 0, 0}, {0, 8, 8}};
  std::int64_t vol = 0;
  for (const auto& b : shell_boxes<3>(whole, empty_inner)) vol += b.volume();
  EXPECT_EQ(vol, whole.volume());
  // inner not contained: rejected.
  EXPECT_THROW(
      (void)shell_boxes<3>(whole, Box<3>{{-1, 0, 0}, {4, 4, 4}}), Error);
}

TEST(Stencil125, WeightTableRegression) {
  // Pin the 10 symmetry-class weights exactly: raw values over the
  // normalizer computed in the same order as the implementation. Any
  // coefficient drift (e.g. from reworking the tap-table hoist) breaks
  // every checked-in expectation downstream of the 125-point kernel.
  const std::array<double, 10> raw = {0.20,  0.08,  0.04,  0.02,  0.015,
                                      0.008, 0.004, 0.003, 0.002, 0.001};
  const int mult[10] = {1, 6, 12, 8, 6, 24, 24, 12, 24, 8};
  double sum = 0;
  for (int i = 0; i < 10; ++i)
    sum += raw[static_cast<std::size_t>(i)] * mult[i];
  const auto& w = Stencil125::weights();
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(w[static_cast<std::size_t>(i)],
              raw[static_cast<std::size_t>(i)] / sum)
        << "class " << i;
}

TEST(Stencil125, TapTableMatchesCoeff) {
  // The hoisted 5x5x5 table both kernels read must agree entry-for-entry
  // with the per-call class lookup it replaced, in dz-dy-dx order.
  const auto& t = Stencil125::taps();
  int at = 0;
  double sum = 0;
  for (int dz = -2; dz <= 2; ++dz)
    for (int dy = -2; dy <= 2; ++dy)
      for (int dx = -2; dx <= 2; ++dx) {
        EXPECT_EQ(t[static_cast<std::size_t>(at)],
                  Stencil125::coeff(dz, dy, dx))
            << "tap " << at;
        sum += t[static_cast<std::size_t>(at)];
        ++at;
      }
  EXPECT_EQ(at, 125);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Expansion, RedundantComputeVolume) {
  // The redundant fraction grows as subdomains shrink — the communication-
  // avoiding tradeoff the paper leans on.
  const Box<3> big = expansion_output_box<3>(Vec3::fill(128), 8, 1, 0);
  const Box<3> small = expansion_output_box<3>(Vec3::fill(16), 8, 1, 0);
  const double big_frac =
      static_cast<double>(big.volume()) / (128.0 * 128 * 128);
  const double small_frac =
      static_cast<double>(small.volume()) / (16.0 * 16 * 16);
  EXPECT_LT(big_frac, 1.4);
  EXPECT_GT(small_frac, 5.0);
}

}  // namespace
}  // namespace brickx::stencil
