#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "simmpi/comm.h"

namespace brickx::mpi {
namespace {

NetModel quiet() { return NetModel{}; }

TEST(P2P, PingPong) {
  Runtime rt(2, quiet());
  rt.run([](Comm& c) {
    std::vector<int> buf(16);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 100);
      c.send(buf.data(), buf.size() * sizeof(int), 1, 7);
      c.recv(buf.data(), buf.size() * sizeof(int), 1, 8);
      for (int i = 0; i < 16; ++i) EXPECT_EQ(buf[i], 200 + i);
    } else {
      c.recv(buf.data(), buf.size() * sizeof(int), 0, 7);
      for (int i = 0; i < 16; ++i) EXPECT_EQ(buf[i], 100 + i);
      std::iota(buf.begin(), buf.end(), 200);
      c.send(buf.data(), buf.size() * sizeof(int), 0, 8);
    }
  });
}

TEST(P2P, EagerSendBufferReusableImmediately) {
  Runtime rt(2, quiet());
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      int x = 1;
      Request r1 = c.isend(&x, sizeof x, 1, 0);
      x = 2;  // must not affect the already-sent message
      Request r2 = c.isend(&x, sizeof x, 1, 1);
      c.wait(r1);
      c.wait(r2);
    } else {
      int a = 0, b = 0;
      c.recv(&a, sizeof a, 0, 0);
      c.recv(&b, sizeof b, 0, 1);
      EXPECT_EQ(a, 1);
      EXPECT_EQ(b, 2);
    }
  });
}

TEST(P2P, TagMatchingOutOfOrder) {
  Runtime rt(2, quiet());
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      int a = 11, b = 22;
      c.send(&a, sizeof a, 1, 100);
      c.send(&b, sizeof b, 1, 200);
    } else {
      int b = 0, a = 0;
      // Receive in reverse tag order; matching must pick by tag, not FIFO.
      c.recv(&b, sizeof b, 0, 200);
      c.recv(&a, sizeof a, 0, 100);
      EXPECT_EQ(a, 11);
      EXPECT_EQ(b, 22);
    }
  });
}

TEST(P2P, FifoPerSameTag) {
  Runtime rt(2, quiet());
  rt.run([](Comm& c) {
    constexpr int kN = 50;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) c.send(&i, sizeof i, 1, 5);
    } else {
      for (int i = 0; i < kN; ++i) {
        int v = -1;
        c.recv(&v, sizeof v, 0, 5);
        EXPECT_EQ(v, i);  // same (src, tag) preserves order
      }
    }
  });
}

TEST(P2P, WaitallCompletesMixedRequests) {
  Runtime rt(2, quiet());
  rt.run([](Comm& c) {
    std::vector<double> out(8, 3.14), in(8, 0.0);
    std::vector<Request> reqs;
    const int peer = 1 - c.rank();
    reqs.push_back(c.irecv(in.data(), in.size() * 8, peer, 1));
    reqs.push_back(c.isend(out.data(), out.size() * 8, peer, 1));
    c.waitall(reqs);
    EXPECT_TRUE(reqs.empty());
    for (double v : in) EXPECT_EQ(v, 3.14);
  });
}

TEST(P2P, SelfSend) {
  Runtime rt(1, quiet());
  rt.run([](Comm& c) {
    int x = 42, y = 0;
    Request s = c.isend(&x, sizeof x, 0, 0);
    Request r = c.irecv(&y, sizeof y, 0, 0);
    c.wait(r);
    c.wait(s);
    EXPECT_EQ(y, 42);
  });
}

TEST(P2P, ZeroByteMessage) {
  Runtime rt(2, quiet());
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      c.send(nullptr, 0, 1, 9);
    } else {
      c.recv(nullptr, 0, 0, 9);
    }
  });
}

TEST(P2P, ManyRanksRing) {
  const int n = 16;
  Runtime rt(n, quiet());
  std::atomic<int> sum{0};
  rt.run([&](Comm& c) {
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    int token = c.rank(), got = -1;
    Request r = c.irecv(&got, sizeof got, prev, 0);
    Request s = c.isend(&token, sizeof token, next, 0);
    c.wait(r);
    c.wait(s);
    EXPECT_EQ(got, prev);
    sum += got;
  });
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(P2P, SizeMismatchThrows) {
  Runtime rt(2, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    if (c.rank() == 0) {
      std::int64_t x = 1;
      c.send(&x, 8, 1, 0);
    } else {
      int y = 0;
      c.recv(&y, 4, 0, 0);  // wrong size
    }
  }),
               brickx::Error);
}

TEST(P2P, BadRankThrows) {
  Runtime rt(2, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    int x = 0;
    c.send(&x, sizeof x, c.size(), 0);  // out of range on every rank
  }),
               brickx::Error);
}

TEST(P2P, AbortUnblocksPeers) {
  // Rank 1 throws; rank 0 is blocked in recv and must be released with an
  // error instead of deadlocking.
  Runtime rt(2, quiet());
  EXPECT_THROW(rt.run([](Comm& c) {
    if (c.rank() == 0) {
      int x = 0;
      c.recv(&x, sizeof x, 1, 0);  // never sent
    } else {
      brickx::fail("injected failure");
    }
  }),
               brickx::Error);
  // The runtime stays usable for a subsequent clean run.
  Runtime rt2(2, quiet());
  rt2.run([](Comm& c) { c.barrier(); });
}

TEST(P2P, CountersTrackTraffic) {
  Runtime rt(2, quiet());
  rt.run([](Comm& c) {
    if (c.rank() == 0) {
      char buf[100] = {};
      c.send(buf, 100, 1, 0);
      c.send(buf, 50, 1, 1);
      EXPECT_EQ(c.counters().msgs_sent, 2);
      EXPECT_EQ(c.counters().bytes_sent, 150);
    } else {
      char buf[100];
      c.recv(buf, 100, 0, 0);
      c.recv(buf, 50, 0, 1);
      EXPECT_EQ(c.counters().msgs_sent, 0);
    }
  });
  EXPECT_EQ(rt.final_counters(0).msgs_sent, 2);
  EXPECT_EQ(rt.final_counters(0).bytes_sent, 150);
}

}  // namespace
}  // namespace brickx::mpi
