#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "simmpi/comm.h"

namespace brickx::mpi {
namespace {

TEST(Collectives, BarrierSynchronizesClocks) {
  Runtime rt(4, NetModel{});
  rt.run([](Comm& c) {
    // Stagger clocks, then barrier: all ranks must agree on a time >= the
    // maximum individual time.
    c.compute(0.001 * (c.rank() + 1));
    c.barrier();
    EXPECT_GE(c.clock().now(), 0.004);
    const double t = c.clock().now();
    const double tmax = c.allreduce_max(t);
    EXPECT_EQ(t, tmax);  // everyone left the barrier at the same vtime
  });
}

TEST(Collectives, AllreduceMaxAndSum) {
  Runtime rt(8, NetModel{});
  rt.run([](Comm& c) {
    EXPECT_EQ(c.allreduce_max(static_cast<double>(c.rank())), 7.0);
    EXPECT_EQ(c.allreduce_sum(static_cast<double>(c.rank())), 28.0);
    EXPECT_EQ(c.allreduce_sum(static_cast<std::int64_t>(c.rank() * 10)), 280);
  });
}

TEST(Collectives, AllgatherOrdersByRank) {
  Runtime rt(5, NetModel{});
  rt.run([](Comm& c) {
    auto vs = c.allgather(static_cast<double>(c.rank() * c.rank()));
    ASSERT_EQ(vs.size(), 5u);
    for (int i = 0; i < 5; ++i) EXPECT_EQ(vs[static_cast<std::size_t>(i)], i * i);
  });
}

TEST(Collectives, BackToBackCollectivesDoNotCrosstalk) {
  Runtime rt(6, NetModel{});
  rt.run([](Comm& c) {
    for (int round = 0; round < 100; ++round) {
      const double v = c.rank() + round * 1000;
      auto vs = c.allgather(v);
      for (int r = 0; r < 6; ++r)
        ASSERT_EQ(vs[static_cast<std::size_t>(r)], r + round * 1000)
            << "round " << round;
    }
  });
}

TEST(Collectives, SingleRank) {
  Runtime rt(1, NetModel{});
  rt.run([](Comm& c) {
    c.barrier();
    EXPECT_EQ(c.allreduce_max(3.5), 3.5);
    EXPECT_EQ(c.allgather(1.0).size(), 1u);
  });
}

TEST(Collectives, RuntimeReusableAcrossRuns) {
  Runtime rt(3, NetModel{});
  std::atomic<int> total{0};
  for (int i = 0; i < 3; ++i) {
    rt.run([&](Comm& c) {
      c.barrier();
      total += c.rank();
    });
  }
  EXPECT_EQ(total.load(), 3 * 3);
}

}  // namespace
}  // namespace brickx::mpi
