// Property tests for the rank-to-node mapping strategies (src/netsim),
// with the autotuner-facing guarantees pinned down: every strategy yields
// a capacity-respecting assignment for any (nranks, ranks_per_node)
// divisibility case; the volume-aware maps (rcb, embed) never cut more
// bytes of a real 26-direction exchange graph than block; and every map is
// deterministic — across repeats and across concurrent threads.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"
#include "harness/experiment.h"
#include "netsim/mapping.h"
#include "netsim/topology.h"
#include "simmpi/cart.h"

namespace brickx::netsim {
namespace {

constexpr MapKind kAllKinds[] = {MapKind::Block, MapKind::RoundRobin,
                                 MapKind::Greedy, MapKind::Rcb,
                                 MapKind::Embed};

/// A real 26-direction exchange graph for a rank grid, ghost-surface
/// weighted, seeded through the subdomain choice.
std::vector<CommEdge> grid_graph(const Vec3& rank_dims,
                                 const Vec3& subdomain) {
  harness::Config cfg;
  cfg.rank_dims = rank_dims;
  cfg.subdomain = subdomain;
  cfg.brick = 4;
  cfg.ghost = 4;
  return harness::exchange_comm_graph(cfg);
}

MapHints grid_hints(const Vec3& rank_dims) {
  MapHints h;
  for (int a = 0; a < 3; ++a) h.grid[a] = static_cast<int>(rank_dims[a]);
  return h;
}

// ---------------------------------------------------------- bijectivity ----

TEST(Mapping, EveryStrategyRespectsNodeCapacityForAllDivisibilityCases) {
  // nranks not always divisible by rpn: the last node is allowed to be
  // partially filled, but no node may exceed ranks_per_node and every
  // rank must land on exactly one node in [0, ceil(nranks / rpn)).
  for (int nranks : {1, 5, 8, 12, 16, 24}) {
    for (int rpn : {1, 2, 3, 4, 8}) {
      const int node_count = (nranks + rpn - 1) / rpn;
      // A valid cubic-ish grid for rcb when one exists; otherwise the
      // hintless fallback path is what gets exercised.
      const Vec3 dims = mpi::dims_create<3>(nranks);
      const auto graph = grid_graph(dims, {8, 8, 8});
      for (MapKind kind : kAllKinds) {
        const auto nodes =
            make_map(kind, nranks, rpn, graph, grid_hints(dims));
        ASSERT_EQ(nodes.size(), static_cast<std::size_t>(nranks))
            << map_name(kind) << " nranks=" << nranks << " rpn=" << rpn;
        std::vector<int> load(static_cast<std::size_t>(node_count), 0);
        for (int r = 0; r < nranks; ++r) {
          ASSERT_GE(nodes[static_cast<std::size_t>(r)], 0)
              << map_name(kind) << " nranks=" << nranks << " rpn=" << rpn;
          ASSERT_LT(nodes[static_cast<std::size_t>(r)], node_count)
              << map_name(kind) << " nranks=" << nranks << " rpn=" << rpn;
          ++load[static_cast<std::size_t>(
              nodes[static_cast<std::size_t>(r)])];
        }
        for (int n = 0; n < node_count; ++n)
          EXPECT_LE(load[static_cast<std::size_t>(n)], rpn)
              << map_name(kind) << " overfills node " << n << " (nranks="
              << nranks << " rpn=" << rpn << ")";
      }
    }
  }
}

// ------------------------------------------------------------ cut guard ----

TEST(Mapping, RcbAndEmbedNeverCutMoreThanBlockOnSeededExchangeGraphs) {
  // Fuzz-seeded problem shapes: random rank grids and anisotropic
  // subdomains make the 26-direction edge weights unequal across axes —
  // exactly the regime where a bad bisection axis or a bad embedding
  // order would show up as a worse cut. The guard makes "never worse
  // than block" structural; this test is the differential witness.
  Rng rng(2026);
  static const Vec3 kGrids[] = {{2, 2, 2}, {4, 2, 2}, {2, 4, 2}, {2, 2, 4},
                                {4, 4, 1}, {1, 4, 4}, {8, 2, 1}, {4, 4, 2}};
  for (int iter = 0; iter < 40; ++iter) {
    const Vec3 dims = kGrids[rng.below(8)];
    const Vec3 sub = {4 + 4 * static_cast<std::int64_t>(rng.below(4)),
                      4 + 4 * static_cast<std::int64_t>(rng.below(4)),
                      4 + 4 * static_cast<std::int64_t>(rng.below(4))};
    const int nranks = static_cast<int>(dims.prod());
    const auto graph = grid_graph(dims, sub);
    for (int rpn : {2, 4}) {
      if (nranks < rpn) continue;
      const double block_cut =
          cut_bytes(block_map(nranks, rpn), graph);
      const MapHints hints = grid_hints(dims);
      const double rcb_cut =
          cut_bytes(rcb_map(nranks, rpn, graph, hints), graph);
      const double embed_cut =
          cut_bytes(embed_map(nranks, rpn, graph, hints), graph);
      EXPECT_LE(rcb_cut, block_cut)
          << "rcb dims=" << iter << " rpn=" << rpn;
      EXPECT_LE(embed_cut, block_cut)
          << "embed dims=" << iter << " rpn=" << rpn;
    }
  }
}

TEST(Mapping, EmbedGuardHoldsWithTopologyDistances) {
  const Vec3 dims{4, 2, 2};
  const auto graph = grid_graph(dims, {8, 16, 8});
  const Topology topo = Topology::single_switch(4, 1e10, 1e-7);
  MapHints hints = grid_hints(dims);
  hints.topo = &topo;
  const double block_cut = cut_bytes(block_map(16, 4), graph);
  EXPECT_LE(cut_bytes(embed_map(16, 4, graph, hints), graph), block_cut);
}

// ---------------------------------------------------------- determinism ----

TEST(Mapping, MapsAreDeterministicAcrossRepeatsAndThreads) {
  const Vec3 dims{4, 2, 2};
  const auto graph = grid_graph(dims, {8, 12, 16});
  const MapHints hints = grid_hints(dims);
  for (MapKind kind : kAllKinds) {
    const auto ref = make_map(kind, 16, 4, graph, hints);
    EXPECT_EQ(make_map(kind, 16, 4, graph, hints), ref) << map_name(kind);
    // Four threads computing the same map concurrently must all agree —
    // the tuner evaluates candidates (and builds their fabrics) from a
    // worker pool.
    std::vector<std::vector<int>> got(4);
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t)
      pool.emplace_back([&, t] { got[static_cast<std::size_t>(t)] =
                                     make_map(kind, 16, 4, graph, hints); });
    for (auto& t : pool) t.join();
    for (const auto& g : got) EXPECT_EQ(g, ref) << map_name(kind);
  }
}

// -------------------------------------------------------------- parsing ----

TEST(Mapping, NameAndParseRoundTripForEveryKind) {
  for (MapKind kind : kAllKinds) {
    const auto back = parse_mapping(map_name(kind));
    ASSERT_TRUE(back.has_value()) << map_name(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(parse_mapping("nope").has_value());
  EXPECT_EQ(parse_mapping("rcb"), MapKind::Rcb);
  EXPECT_EQ(parse_mapping("embed"), MapKind::Embed);
}

// ------------------------------------------------------------- fallback ----

TEST(Mapping, RcbFallsBackToBlockWithoutAUsableGrid) {
  const Vec3 dims{2, 2, 2};
  const auto graph = grid_graph(dims, {8, 8, 8});
  // No hints at all.
  EXPECT_EQ(rcb_map(8, 2, graph, MapHints{}), block_map(8, 2));
  // Grid product disagrees with nranks.
  MapHints bad;
  bad.grid[0] = 3;
  bad.grid[1] = 2;
  bad.grid[2] = 2;
  EXPECT_EQ(rcb_map(8, 2, graph, bad), block_map(8, 2));
}

TEST(Mapping, RcbBuildsCompactSubBoxes) {
  // 4x2x2 grid, 4 ranks per node: the bisection should produce nodes
  // holding contiguous 2x2x1-ish sub-boxes, which beat block's flat
  // z-plane split on a cube's exchange graph... at minimum it must tie.
  const Vec3 dims{4, 2, 2};
  const auto graph = grid_graph(dims, {8, 8, 8});
  const auto rcb = rcb_map(16, 4, graph, grid_hints(dims));
  const auto blk = block_map(16, 4);
  EXPECT_LE(cut_bytes(rcb, graph), cut_bytes(blk, graph));
}

}  // namespace
}  // namespace brickx::netsim
