// Unit tests for the src/check conformance subsystem: config draw/parse/
// shrink mechanics, the differential oracle on known-good configs, and the
// fault-injection meta-property — including the deliberate negative test
// that an injected payload corruption is *detected and reported*, never
// silently absorbed.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "check/fuzz.h"
#include "check/oracle.h"
#include "common/rng.h"

namespace brickx::conformance {
namespace {

FuzzConfig small_config() {
  FuzzConfig cfg;
  cfg.seed = 42;
  cfg.rank_dims = {2, 1, 1};
  cfg.brick = {4, 4, 4};
  cfg.ghost = 4;
  cfg.subdomain = {12, 12, 12};  // > 2 * ghost: full-region regime
  cfg.rounds = 2;
  return cfg;
}

// ------------------------------------------------------------- configs ----

TEST(FuzzConfigs, DrawnConfigsAreAlwaysValid) {
  for (std::uint64_t s = 1; s <= 200; ++s) {
    Rng rng(s);
    const FuzzConfig cfg = draw_config(rng);
    EXPECT_TRUE(config_valid(cfg)) << serialize_config(cfg);
    EXPECT_GE(cfg.nranks(), 1);
    EXPECT_LE(cfg.nranks(), 8);
  }
}

TEST(FuzzConfigs, DrawIsDeterministicInTheSeed) {
  Rng a(7), b(7);
  EXPECT_EQ(serialize_config(draw_config(a)), serialize_config(draw_config(b)));
}

TEST(FuzzConfigs, DrawCoversOverlapButNeverWithPersistent) {
  int overlap_draws = 0;
  for (std::uint64_t s = 1; s <= 200; ++s) {
    Rng rng(s);
    const FuzzConfig cfg = draw_config(rng);
    if (cfg.overlap) ++overlap_draws;
    EXPECT_FALSE(cfg.overlap && cfg.persistent) << serialize_config(cfg);
  }
  EXPECT_GT(overlap_draws, 20);  // the axis is actually exercised
}

TEST(FuzzConfigs, SerializeParseRoundTrips) {
  for (std::uint64_t s = 1; s <= 50; ++s) {
    Rng rng(s * 31);
    const FuzzConfig cfg = draw_config(rng);
    const auto back = parse_config(serialize_config(cfg));
    ASSERT_TRUE(back.has_value()) << serialize_config(cfg);
    EXPECT_EQ(serialize_config(*back), serialize_config(cfg));
  }
}

TEST(FuzzConfigs, ParseRejectsMalformedAndInvalid) {
  EXPECT_FALSE(parse_config("gibberish").has_value());
  EXPECT_FALSE(parse_config("seed=1,unknown=2").has_value());
  // Structurally invalid: ghost not a multiple of the brick extent.
  EXPECT_FALSE(
      parse_config("seed=1,ranks=1x1x1,brick=8x8x8,ghost=4,sub=8x8x8,"
                   "rounds=1,page=0,rpn=1,fabric=flat,map=block")
          .has_value());
  // Subdomain below 2 * ghost.
  EXPECT_FALSE(
      parse_config("seed=1,ranks=1x1x1,brick=4x4x4,ghost=4,sub=4x4x4,"
                   "rounds=1,page=0,rpn=1,fabric=flat,map=block")
          .has_value());
  // overlap and persistent are mutually exclusive replay mechanisms.
  EXPECT_FALSE(
      parse_config("seed=1,ranks=1x1x1,brick=4x4x4,ghost=4,sub=8x8x8,"
                   "rounds=1,page=0,rpn=1,fabric=flat,map=block,persist=1,"
                   "transport=flat,overlap=1")
          .has_value());
}

// -------------------------------------------------------------- shrink ----

TEST(Shrink, ReachesTheMinimalConfigForAnAlwaysFailingPredicate) {
  Rng rng(3);
  FuzzConfig big = draw_config(rng);
  big.rounds = 3;
  const FuzzConfig small =
      shrink(big, [](const FuzzConfig&) { return true; }, 256);
  EXPECT_EQ(small.rounds, 1);
  EXPECT_EQ(small.nranks(), 1);
  EXPECT_EQ(small.page_size, 0u);
  EXPECT_EQ(small.fabric, netsim::FabricKind::Flat);
  for (int a = 0; a < 3; ++a) {
    EXPECT_EQ(small.brick[a], 2);
    EXPECT_EQ(small.subdomain[a], 2 * small.ghost);
  }
  EXPECT_TRUE(config_valid(small));
}

TEST(Shrink, PreservesThePropertyThePredicateTracks) {
  // A failure that needs at least 2 ranks along axis 0 must not be shrunk
  // past it.
  FuzzConfig cfg = small_config();
  cfg.rank_dims = {4, 1, 1};
  cfg.rounds = 3;
  const FuzzConfig small = shrink(
      cfg, [](const FuzzConfig& c) { return c.rank_dims[0] >= 2; }, 256);
  EXPECT_EQ(small.rank_dims[0], 2);
  EXPECT_EQ(small.rounds, 1);
}

TEST(Shrink, RespectsTheEvaluationBudget) {
  int evals = 0;
  FuzzConfig cfg = small_config();
  cfg.rounds = 3;
  (void)shrink(
      cfg,
      [&](const FuzzConfig&) {
        ++evals;
        return true;
      },
      5);
  EXPECT_LE(evals, 5);
}

TEST(Shrink, ProposesOnlyValidConfigs) {
  Rng rng(11);
  const FuzzConfig cfg = draw_config(rng);
  (void)shrink(
      cfg,
      [](const FuzzConfig& c) {
        EXPECT_TRUE(config_valid(c)) << serialize_config(c);
        return false;
      },
      256);
}

// -------------------------------------------------------------- oracle ----

TEST(Oracle, ConformingImplementationsPass) {
  const OracleReport rep = run_oracle(small_config());
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_EQ(rep.methods_compared, 5);
  EXPECT_EQ(rep.basic_msgs, 98);
  EXPECT_EQ(rep.layout_msgs, 42);
  EXPECT_EQ(rep.memmap_msgs, 26);
  // Payload per exchange is exactly the ghost-frame volume.
  EXPECT_EQ(rep.payload_bytes, (20 * 20 * 20 - 12 * 12 * 12) * 8);
  EXPECT_GE(rep.memmap_wire_bytes, rep.payload_bytes);
}

TEST(Oracle, DegenerateSubdomainStillConforms) {
  FuzzConfig cfg = small_config();
  cfg.subdomain = {8, 8, 8};  // == 2 * ghost: empty interior slabs
  const OracleReport rep = run_oracle(cfg);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_LT(rep.basic_msgs, 98);  // empty regions drop messages
  EXPECT_EQ(rep.memmap_msgs, 26);
}

TEST(Oracle, PagePaddingIsAccounted) {
  FuzzConfig cfg = small_config();
  cfg.page_size = 65536;
  const OracleReport rep = run_oracle(cfg);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_GT(rep.memmap_wire_bytes, rep.payload_bytes);
}

TEST(Oracle, RunsOnContentionFabrics) {
  FuzzConfig cfg = small_config();
  cfg.rank_dims = {2, 2, 1};
  cfg.ranks_per_node = 2;
  cfg.fabric = netsim::FabricKind::Dragonfly;
  cfg.mapping = netsim::MapKind::RoundRobin;
  const OracleReport rep = run_oracle(cfg);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
}

TEST(Oracle, PartitionedReplayConforms) {
  // overlap=1 reruns the brick methods over partitioned requests (pready
  // in order, arrived in reverse) and additionally diffs Layout against
  // its own bulk replay inside the oracle.
  FuzzConfig cfg = small_config();
  cfg.overlap = true;
  const OracleReport rep = run_oracle(cfg);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_EQ(rep.layout_msgs, 42);
  EXPECT_EQ(rep.memmap_msgs, 26);
}

TEST(Oracle, PartitionedReplayConformsOnDegenerateSubdomain) {
  // Empty surface regions (subdomain == 2 * ghost) must simply not become
  // partitions — zero-size entries are rejected at init.
  FuzzConfig cfg = small_config();
  cfg.subdomain = {8, 8, 8};
  cfg.overlap = true;
  const OracleReport rep = run_oracle(cfg);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
}

TEST(Oracle, PartitionedReplayConformsWithPaddingAndTransports) {
  FuzzConfig cfg = small_config();
  cfg.overlap = true;
  cfg.page_size = 16384;
  cfg.ranks_per_node = 2;
  cfg.transport = transport::Kind::ShmAgg;
  const OracleReport rep = run_oracle(cfg);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
}

// -------------------------------------------------------- fault oracle ----

TEST(FaultOracle, InjectedCorruptionIsDetectedAndReported) {
  // The negative test: a schedule that flips one byte in every payload
  // must surface as a "fault detected" diagnostic — the oracle fails if
  // the corruption is silently absorbed into the exchanged data.
  mpi::FaultSpec spec;
  spec.corrupt = 1.0;
  spec.seed = 5;
  const FaultOracleReport rep = run_fault_oracle(small_config(), spec);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_TRUE(rep.error_raised);
  EXPECT_TRUE(rep.fault_diagnosed);
  EXPECT_GE(rep.counts.detected, 1);
  EXPECT_GE(rep.counts.corrupted, 1);
}

TEST(FaultOracle, DropAndTruncateAreDetected) {
  for (double mpi::FaultSpec::* kind :
       {&mpi::FaultSpec::drop, &mpi::FaultSpec::truncate}) {
    mpi::FaultSpec spec;
    spec.*kind = 0.5;
    spec.seed = 9;
    const FaultOracleReport rep = run_fault_oracle(small_config(), spec);
    EXPECT_TRUE(rep.ok) << rep.diagnosis;
    EXPECT_TRUE(rep.error_raised);
    EXPECT_TRUE(rep.fault_diagnosed);
  }
}

TEST(FaultOracle, DelayOnlyScheduleIsInvisibleInTheData) {
  // Acceptance property: delay-only schedules leave every exchanged byte
  // identical and only move virtual time (the oracle compares frames
  // bitwise against the fault-free reference run internally).
  mpi::FaultSpec spec;
  spec.delay = 1.0;
  spec.max_delay = 1e-3;
  spec.seed = 77;
  FuzzConfig cfg = small_config();
  cfg.rounds = 3;
  const FaultOracleReport rep = run_fault_oracle(cfg, spec);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_FALSE(rep.error_raised);
  EXPECT_EQ(rep.counts.detected, 0);
  EXPECT_EQ(rep.counts.delayed, rep.counts.messages);
}

TEST(FaultOracle, ReorderOnlyScheduleIsBenign) {
  mpi::FaultSpec spec;
  spec.reorder = 0.5;
  spec.delay = 0.2;
  spec.seed = 13;
  const FaultOracleReport rep = run_fault_oracle(small_config(), spec);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_FALSE(rep.error_raised);
}

TEST(FaultOracle, BenignFaultsOnIndividualPartitionsStayBenign) {
  // Under overlap the fault streams are per partition: reorder holds one
  // partition's envelope back, delay shifts another's arrival — data must
  // still assemble bitwise-identically to the fault-free partitioned run.
  mpi::FaultSpec spec;
  spec.reorder = 0.3;
  spec.delay = 0.5;
  spec.seed = 31;
  FuzzConfig cfg = small_config();
  cfg.overlap = true;
  cfg.rounds = 3;
  const FaultOracleReport rep = run_fault_oracle(cfg, spec);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_FALSE(rep.error_raised);
  EXPECT_EQ(rep.counts.detected, 0);
  EXPECT_GT(rep.counts.injected(), 0);
}

TEST(FaultOracle, CorruptedPartitionIsDetectedNotSilent) {
  mpi::FaultSpec spec;
  spec.corrupt = 0.2;
  spec.seed = 17;
  FuzzConfig cfg = small_config();
  cfg.overlap = true;
  const FaultOracleReport rep = run_fault_oracle(cfg, spec);
  EXPECT_TRUE(rep.ok) << rep.diagnosis;
  EXPECT_TRUE(rep.error_raised);
  EXPECT_TRUE(rep.fault_diagnosed);
}

TEST(FaultOracle, LowProbabilityCorruptionStillNeverSlipsThrough) {
  // Sparse corruption over several seeds: whatever the schedule does, the
  // meta-property must hold — either nothing corrupting fired, or it was
  // detected/quarantined.
  for (std::uint64_t s = 1; s <= 6; ++s) {
    mpi::FaultSpec spec;
    spec.corrupt = 0.02;
    spec.duplicate = 0.02;
    spec.seed = s;
    FuzzConfig cfg = small_config();
    cfg.rounds = 3;
    const FaultOracleReport rep = run_fault_oracle(cfg, spec);
    EXPECT_TRUE(rep.ok) << rep.diagnosis << " (seed " << s << ")";
  }
}

}  // namespace
}  // namespace brickx::conformance
