#include "harness/experiment.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace brickx::harness {
namespace {

Config small_config(Method m, bool use125) {
  Config cfg;
  cfg.machine = model::theta();
  cfg.rank_dims = {2, 2, 2};
  cfg.subdomain = {16, 16, 16};
  cfg.brick = 4;
  cfg.ghost = 4;
  cfg.use125 = use125;
  cfg.method = m;
  cfg.timesteps = use125 ? 4 : 8;  // two full exchange batches
  cfg.warmup_exchanges = 1;
  cfg.validate = true;
  return cfg;
}

// ---- the central correctness claim: every implementation computes the
// exact same evolution as the single-domain reference -----------------------

struct MethodCase {
  Method method;
  bool use125;
};

class AllMethods : public ::testing::TestWithParam<MethodCase> {};

TEST_P(AllMethods, MatchesGlobalReferenceExactly) {
  const auto& mc = GetParam();
  Result res = run(small_config(mc.method, mc.use125));
  EXPECT_TRUE(res.validated) << method_name(mc.method);
  EXPECT_GT(res.gstencils, 0.0);
  EXPECT_GT(res.total_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    CpuMethods, AllMethods,
    ::testing::Values(MethodCase{Method::Yask, false},
                      MethodCase{Method::Yask, true},
                      MethodCase{Method::MpiTypes, false},
                      MethodCase{Method::MpiTypes, true},
                      MethodCase{Method::Basic, false},
                      MethodCase{Method::Layout, false},
                      MethodCase{Method::Layout, true},
                      MethodCase{Method::MemMap, false},
                      MethodCase{Method::MemMap, true}),
    [](const auto& info) {
      return std::string(method_name(info.param.method)) +
             (info.param.use125 ? "_125pt" : "_7pt");
    });

// ---- GPU modes also compute exactly (the simulated device runs the real
// kernels; only time is modeled) ---------------------------------------------

struct GpuCase {
  Method method;
  GpuMode mode;
};

class GpuMethods : public ::testing::TestWithParam<GpuCase> {};

TEST_P(GpuMethods, MatchesGlobalReferenceExactly) {
  const auto& gc = GetParam();
  Config cfg = small_config(gc.method, false);
  cfg.machine = model::summit();
  cfg.gpu = gc.mode;
  Result res = run(cfg);
  EXPECT_TRUE(res.validated);
}

INSTANTIATE_TEST_SUITE_P(
    Gpu, GpuMethods,
    ::testing::Values(GpuCase{Method::Layout, GpuMode::CudaAware},
                      GpuCase{Method::Layout, GpuMode::Unified},
                      GpuCase{Method::MemMap, GpuMode::Unified},
                      GpuCase{Method::MpiTypes, GpuMode::Unified}),
    [](const auto& info) {
      std::string n = method_name(info.param.method);
      n += info.param.mode == GpuMode::CudaAware ? "_CA" : "_UM";
      return n;
    });

// ---- phase accounting and counts ------------------------------------------

TEST(Harness, MessageCountsPerMethod) {
  EXPECT_EQ(run(small_config(Method::Layout, false)).msgs_per_rank, 42);
  EXPECT_EQ(run(small_config(Method::Basic, false)).msgs_per_rank, 98);
  EXPECT_EQ(run(small_config(Method::MemMap, false)).msgs_per_rank, 26);
  EXPECT_EQ(run(small_config(Method::Yask, false)).msgs_per_rank, 26);
  EXPECT_EQ(run(small_config(Method::MpiTypes, false)).msgs_per_rank, 26);
}

TEST(Harness, OnlyYaskHasPackTime) {
  EXPECT_GT(run(small_config(Method::Yask, false)).pack.avg(), 0.0);
  EXPECT_EQ(run(small_config(Method::Layout, false)).pack.avg(), 0.0);
  EXPECT_EQ(run(small_config(Method::MemMap, false)).pack.avg(), 0.0);
  EXPECT_EQ(run(small_config(Method::MpiTypes, false)).pack.avg(), 0.0);
}

TEST(Harness, PackFreeBeatsPackingOnComm) {
  const double yask = run(small_config(Method::Yask, false)).comm_per_step;
  const double types =
      run(small_config(Method::MpiTypes, false)).comm_per_step;
  const double layout = run(small_config(Method::Layout, false)).comm_per_step;
  const double memmap = run(small_config(Method::MemMap, false)).comm_per_step;
  Config net = small_config(Method::Network, false);
  net.validate = false;
  const double floor = run(net).comm_per_step;
  // The paper's ordering on small subdomains.
  EXPECT_LT(memmap, yask);
  EXPECT_LT(layout, yask);
  EXPECT_LT(yask, types);
  EXPECT_LE(floor, memmap * 1.05);
}

TEST(Harness, DeterministicResults) {
  const Result a = run(small_config(Method::MemMap, false));
  const Result b = run(small_config(Method::MemMap, false));
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.comm_per_step, b.comm_per_step);
  EXPECT_EQ(a.gstencils, b.gstencils);
}

TEST(Harness, ModelOnlyModeSkipsMathButKeepsTiming) {
  Config cfg = small_config(Method::Layout, false);
  cfg.execute_kernels = false;
  cfg.validate = false;
  const Result fast = run(cfg);
  const Result full = run(small_config(Method::Layout, false));
  // Virtual times are identical whether or not the math actually ran.
  EXPECT_EQ(fast.total_seconds, full.total_seconds);
  EXPECT_FALSE(fast.validated);
}

TEST(Harness, InvalidConfigsRejected) {
  Config cfg = small_config(Method::MemMap, false);
  cfg.gpu = GpuMode::CudaAware;  // paper: cudaMalloc cannot MemMap
  cfg.machine = model::summit();
  EXPECT_THROW((void)run(cfg), Error);

  Config cfg2 = small_config(Method::Layout, false);
  cfg2.gpu = GpuMode::Unified;  // GPU mode on a CPU machine model
  EXPECT_THROW((void)run(cfg2), Error);

  Config cfg3 = small_config(Method::Yask, false);
  cfg3.machine = model::summit();
  cfg3.gpu = GpuMode::Unified;  // YASK is CPU-only
  EXPECT_THROW((void)run(cfg3), Error);
}

TEST(Harness, UnifiedMemoryPenalizesUnalignedLayoutCompute) {
  // Figure 15: LayoutUM's compute suffers page-fault backwash because its
  // regions are not page aligned; MemMapUM's page-aligned chunks do not
  // drag fragmented pages along. LayoutCA pays no faults at all. The
  // effect needs realistically-sized chunks (64 KiB pages vs multi-brick
  // chunks), so run the paper's geometry with model-only compute.
  auto base = [] {
    Config c;
    c.machine = model::summit();
    c.rank_dims = {2, 2, 2};
    c.subdomain = {128, 128, 128};
    c.brick = 8;
    c.ghost = 8;
    c.timesteps = 8;
    c.execute_kernels = false;
    c.validate = false;
    return c;
  };
  Config lca = base();
  lca.method = Method::Layout;
  lca.gpu = GpuMode::CudaAware;
  Config lum = lca;
  lum.gpu = GpuMode::Unified;
  Config mum = base();
  mum.method = Method::MemMap;
  mum.gpu = GpuMode::Unified;
  const double calc_ca = run(lca).calc.avg();
  const double calc_um = run(lum).calc.avg();
  const double calc_mm = run(mum).calc.avg();
  EXPECT_GT(calc_um, calc_mm);
  EXPECT_GE(calc_mm, calc_ca);
}

TEST(Harness, PaddingReportedOnlyForMemMap) {
  Config cfg = small_config(Method::MemMap, false);
  cfg.page_size = 64 * 1024;
  const Result r = run(cfg);
  EXPECT_GT(r.padding_percent, 0.0);
  EXPECT_GT(r.wire_bytes_per_rank, r.payload_bytes_per_rank);
  EXPECT_EQ(run(small_config(Method::Layout, false)).padding_percent, 0.0);
}

TEST(Harness, MemMapFloorProxyIsTimingExact) {
  // The proxy must reproduce MemMap's modeled time, message count and byte
  // volume exactly (zero padding on 4 KiB pages with 8-cube bricks, so the
  // volumes coincide trivially; check a padded case too).
  Config real = small_config(Method::MemMap, false);
  real.execute_kernels = false;
  real.validate = false;
  Config proxy = real;
  proxy.memmap_floor_proxy = true;
  for (std::size_t page : {std::size_t{0}, std::size_t{64} * 1024}) {
    real.page_size = proxy.page_size = page;
    const Result a = run(real);
    const Result b = run(proxy);
    EXPECT_EQ(a.msgs_per_rank, b.msgs_per_rank);
    EXPECT_EQ(a.wire_bytes_per_rank, b.wire_bytes_per_rank);
    EXPECT_EQ(a.payload_bytes_per_rank, b.payload_bytes_per_rank);
    EXPECT_NEAR(a.comm_per_step, b.comm_per_step, 1e-12);
    EXPECT_DOUBLE_EQ(a.padding_percent, b.padding_percent);
  }
}

TEST(Harness, LexicographicLayoutComputesIdenticallyWithMoreMessages) {
  // Fig. 10's No-Layout: block order does not affect compute, only the
  // message count.
  Config opt = small_config(Method::Layout, false);
  Config lex = opt;
  lex.lexicographic_layout = true;
  const Result a = run(opt);
  const Result b = run(lex);
  EXPECT_TRUE(b.validated);
  // Identical modeled compute (up to clock-baseline rounding).
  EXPECT_NEAR(a.calc.avg(), b.calc.avg(), 1e-15);
  EXPECT_GT(b.msgs_per_rank, a.msgs_per_rank);
}

TEST(Harness, ShiftMatchesReferenceExactly) {
  for (bool use125 : {false, true}) {
    Result r = run(small_config(Method::Shift, use125));
    EXPECT_TRUE(r.validated) << (use125 ? "125pt" : "7pt");
    // 2*D face-neighbor pairs only; runs may split each slab a little.
    EXPECT_LT(r.msgs_per_rank, 42);
  }
}

TEST(Harness, ShiftTradesLatencyForMessages) {
  // Fewer messages than Layout, but D dependent phases serialize the
  // latency: on small (latency-bound) subdomains Shift's comm time is
  // *not* better than the single-phase Layout exchange.
  Config shift = small_config(Method::Shift, false);
  Config layout = small_config(Method::Layout, false);
  shift.validate = layout.validate = false;
  shift.execute_kernels = layout.execute_kernels = false;
  const Result rs = run(shift);
  const Result rl = run(layout);
  EXPECT_LT(rs.msgs_per_rank, rl.msgs_per_rank);
  EXPECT_EQ(rs.wire_bytes_per_rank, rl.wire_bytes_per_rank);
  EXPECT_GT(rs.comm_per_step, 0.0);
}

TEST(Harness, OverlapValidatesAndReducesWait) {
  for (Method m : {Method::Layout, Method::MemMap, Method::Basic}) {
    Config plain = small_config(m, false);
    Config over = plain;
    over.overlap = true;
    const Result a = run(plain);
    const Result b = run(over);
    EXPECT_TRUE(b.validated) << method_name(m);
    // Waiting shrinks: the interior compute hides inside it.
    EXPECT_LE(b.wait.avg(), a.wait.avg()) << method_name(m);
  }
}

TEST(Harness, OverlapHelpsWhenComputeCanHideComm) {
  // At compute-heavy sizes overlap wins; at tiny (latency-bound) sizes the
  // extra per-slab sweep overheads make it a wash or a loss — the paper's
  // observation about YASK-OL.
  auto timed = [](std::int64_t dim, bool overlap) {
    Config c;
    c.machine = model::theta();
    c.rank_dims = {2, 2, 2};
    c.subdomain = Vec3::fill(dim);
    c.brick = 8;
    c.ghost = 8;
    c.method = Method::Layout;
    c.timesteps = 8;
    c.overlap = overlap;
    c.execute_kernels = false;
    return run(c).total_seconds;
  };
  EXPECT_LT(timed(128, true), timed(128, false));  // compute hides comm
  EXPECT_GT(timed(16, true), timed(16, false) * 0.8);  // no real gain
}

TEST(Harness, OverlapRejectedWhereUnsupported) {
  Config cfg = small_config(Method::Yask, false);
  cfg.overlap = true;
  EXPECT_THROW((void)run(cfg), Error);
  Config cfg2 = small_config(Method::Shift, false);
  cfg2.overlap = true;
  EXPECT_THROW((void)run(cfg2), Error);
}

TEST(Harness, CuMemMapFutureModeValidates) {
  // Paper footnote 2: cuMemMap would permit MemMap over device memory.
  Config cfg = small_config(Method::MemMap, false);
  cfg.machine = model::summit_future();
  cfg.gpu = GpuMode::CudaAware;
  const Result r = run(cfg);
  EXPECT_TRUE(r.validated);
  EXPECT_EQ(r.msgs_per_rank, 26);
  // Device memory: no page faults, so compute matches LayoutCA.
  Config lca = small_config(Method::Layout, false);
  lca.machine = model::summit_future();
  lca.gpu = GpuMode::CudaAware;
  EXPECT_NEAR(r.calc.avg(), run(lca).calc.avg(), 1e-12);
  // On stock Summit the same config is rejected (paper Section 5).
  cfg.machine = model::summit();
  EXPECT_THROW((void)run(cfg), Error);
}

TEST(Harness, ManualGpuStagingValidatesAndPaysOnNode) {
  // The Section-5 motivation workflow: pack on GPU, shuttle packed buffers
  // over the link, MPI on the host. Arithmetic stays exact; a large share
  // of comm time is on-node movement (reference [29]: about half).
  Config cfg = small_config(Method::Yask, false);
  cfg.machine = model::summit();
  cfg.gpu = GpuMode::Staged;
  const Result r = run(cfg);
  EXPECT_TRUE(r.validated);
  EXPECT_GT(r.pack.avg(), 0.0);
  EXPECT_GT(r.pack.avg() / r.comm_per_step, 0.3);
  // Staged is only defined for the packing baseline.
  Config bad = small_config(Method::Layout, false);
  bad.machine = model::summit();
  bad.gpu = GpuMode::Staged;
  EXPECT_THROW((void)run(bad), Error);
}

TEST(Harness, SingleRankRuns) {
  Config cfg = small_config(Method::MemMap, false);
  cfg.rank_dims = {1, 1, 1};
  EXPECT_TRUE(run(cfg).validated);
}

// ---- node-model validation -------------------------------------------------

namespace rpn_test {

Config cheap_config() {
  Config cfg = small_config(Method::Layout, false);
  cfg.timesteps = 1;
  cfg.execute_kernels = false;
  cfg.validate = false;
  return cfg;
}

}  // namespace rpn_test

TEST(Harness, RanksPerNodeMustBePositive) {
  for (int rpn : {0, -1, -16}) {
    Config cfg = rpn_test::cheap_config();
    cfg.machine.net.ranks_per_node = rpn;
    EXPECT_THROW((void)run(cfg), Error) << "ranks_per_node " << rpn;
  }
}

TEST(Harness, NonDivisibleWorldWarnsButRuns) {
  // 8 ranks over ranks_per_node = 3: the last node runs underfilled; the
  // harness must say so on stderr and still produce a result.
  Config cfg = rpn_test::cheap_config();
  cfg.machine.net.ranks_per_node = 3;
  ::testing::internal::CaptureStderr();
  const Result r = run(cfg);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_NE(err.find("not a multiple of ranks_per_node"), std::string::npos)
      << "stderr was: " << err;
}

TEST(Harness, DivisibleWorldDoesNotWarn) {
  Config cfg = rpn_test::cheap_config();
  cfg.machine.net.ranks_per_node = 4;  // divides the 2x2x2 world evenly
  ::testing::internal::CaptureStderr();
  (void)run(cfg);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("ranks_per_node"), std::string::npos)
      << "unexpected warning: " << err;
}

// ---- on-node transport tier (DESIGN.md §13) --------------------------------

TEST(Harness, ShmAggRejectsOneRankPerNode) {
  // With one rank per node there is nothing to aggregate; the harness must
  // refuse loudly instead of silently degenerating to per-message frames.
  Config cfg = rpn_test::cheap_config();
  cfg.machine.net.ranks_per_node = 1;
  cfg.transport = transport::Kind::ShmAgg;
  try {
    (void)run(cfg);
    FAIL() << "shm-agg with ranks_per_node == 1 was accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("ranks_per_node"), std::string::npos)
        << e.what();
  }
  // The same machine shape is fine for the tiers that do not aggregate.
  for (transport::Kind k : {transport::Kind::Flat, transport::Kind::Shm}) {
    Config ok = rpn_test::cheap_config();
    ok.transport = k;
    EXPECT_GT(run(ok).total_seconds, 0.0) << transport::kind_name(k);
  }
}

TEST(Harness, TransportTiersComputeExactResults) {
  // Full harness runs with kernels + validation: the tier may change only
  // timing, never the computed evolution.
  for (transport::Kind k : {transport::Kind::Shm, transport::Kind::ShmAgg}) {
    Config cfg = small_config(Method::Layout, false);
    cfg.machine.net.ranks_per_node = 4;
    cfg.transport = k;
    const Result r = run(cfg);
    EXPECT_TRUE(r.validated) << transport::kind_name(k);
    EXPECT_GT(r.transport_stats.onnode_msgs, 0);
    // Symmetric periodic cube: rank 0's whole-run sends equal its receives,
    // and the locality split partitions them.
    EXPECT_EQ(r.msgs_intra_per_rank + r.msgs_inter_per_rank,
              r.msgs_recv_per_rank);
  }
}

TEST(Harness, TransportSplitMatchesSendCounters) {
  // Whole-run rank-0 split == batches * per-exchange sends, and the split
  // is identical across transports (it classifies, it does not reroute).
  Config cfg = rpn_test::cheap_config();
  cfg.machine.net.ranks_per_node = 4;
  Result flat = run(cfg);
  cfg.transport = transport::Kind::ShmAgg;
  Result agg = run(cfg);
  EXPECT_EQ(flat.msgs_intra_per_rank, agg.msgs_intra_per_rank);
  EXPECT_EQ(flat.msgs_inter_per_rank, agg.msgs_inter_per_rank);
  EXPECT_EQ(flat.bytes_intra_per_rank, agg.bytes_intra_per_rank);
  EXPECT_EQ(flat.bytes_inter_per_rank, agg.bytes_inter_per_rank);
  EXPECT_GT(agg.transport_stats.agg_frames, 0);
  EXPECT_EQ(agg.transport_stats.agg_submsgs % agg.msgs_inter_per_rank, 0)
      << "global framed sub-messages must cover all ranks' inter sends";
}

// ---- fault schedules through the harness front door ------------------------

TEST(Harness, DelayOnlyFaultScheduleKeepsResultsExact) {
  Config cfg = small_config(Method::Layout, false);
  cfg.faults.delay = 1.0;
  cfg.faults.max_delay = 1e-4;
  cfg.faults.seed = 3;
  const Result r = run(cfg);
  EXPECT_TRUE(r.validated);  // data is untouched by pure delays
  EXPECT_GT(r.fault_counts.delayed, 0);
  EXPECT_EQ(r.fault_counts.detected, 0);
  // Delays can only push virtual time out, never pull it in.
  const Result clean = run(small_config(Method::Layout, false));
  EXPECT_GE(r.total_seconds, clean.total_seconds);
  EXPECT_EQ(clean.fault_counts.messages, 0);  // empty spec: no injector
}

TEST(Harness, CorruptingFaultScheduleIsDetectedNotSilent) {
  Config cfg = small_config(Method::Layout, false);
  cfg.faults.corrupt = 1.0;
  cfg.faults.seed = 3;
  try {
    (void)run(cfg);
    FAIL() << "corrupted exchange completed without a diagnostic";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fault detected"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace brickx::harness
