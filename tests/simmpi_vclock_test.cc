#include <gtest/gtest.h>

#include <vector>

#include "simmpi/comm.h"

namespace brickx::mpi {
namespace {

NetModel model() {
  NetModel m;
  m.send_overhead = 1e-6;
  m.recv_overhead = 0;
  m.inter_node = {10e-6, 1e9};  // alpha 10us, 1 GB/s
  m.intra_node = {1e-6, 10e9};
  m.ranks_per_node = 1;
  m.barrier_alpha = 0;
  return m;
}

TEST(VClock, MessageCostIsAlphaBeta) {
  Runtime rt(2, model());
  rt.run([](Comm& c) {
    std::vector<char> buf(1'000'000);
    if (c.rank() == 0) {
      c.send(buf.data(), buf.size(), 1, 0);
    } else {
      c.recv(buf.data(), buf.size(), 0, 0);
      // send_overhead (1us) + serialization (1MB @ 1GB/s = 1ms) + alpha
      // (10us) = 1.011 ms.
      EXPECT_NEAR(c.clock().now(), 1e-6 + 1e-3 + 10e-6, 1e-9);
    }
  });
  EXPECT_NEAR(rt.final_vtime(1), 1.011e-3, 1e-9);
}

TEST(VClock, SenderNicSerializesMessages) {
  Runtime rt(2, model());
  rt.run([](Comm& c) {
    std::vector<char> buf(1'000'000);
    if (c.rank() == 0) {
      // Two back-to-back sends: the second departs only after the first
      // finished injecting.
      c.send(buf.data(), buf.size(), 1, 0);
      c.send(buf.data(), buf.size(), 1, 1);
    } else {
      c.recv(buf.data(), buf.size(), 0, 0);
      c.recv(buf.data(), buf.size(), 0, 1);
      // Second arrival: 2*send_overhead + 2*1ms serialization + alpha.
      EXPECT_NEAR(c.clock().now(), 2e-6 + 2e-3 + 10e-6, 1e-9);
    }
  });
}

TEST(VClock, ManySmallMessagesAreLatencyBound) {
  Runtime rt(2, model());
  rt.run([](Comm& c) {
    char b = 0;
    if (c.rank() == 0) {
      std::vector<Request> reqs;
      for (int i = 0; i < 100; ++i) reqs.push_back(c.isend(&b, 1, 1, i));
      c.waitall(reqs);
    } else {
      std::vector<Request> reqs;
      for (int i = 0; i < 100; ++i) reqs.push_back(c.irecv(&b, 1, 0, i));
      c.waitall(reqs);
      // Dominated by 100 * send_overhead on the sender + one alpha tail;
      // serialization of 1-byte messages is negligible.
      EXPECT_GT(c.clock().now(), 100e-6);
      EXPECT_LT(c.clock().now(), 150e-6);
    }
  });
}

TEST(VClock, IntraNodeCheaperThanInterNode) {
  NetModel m = model();
  m.ranks_per_node = 2;  // ranks {0,1} on node 0, {2,3} on node 1
  Runtime rt(4, m);
  rt.run([](Comm& c) {
    std::vector<char> buf(100'000);
    if (c.rank() == 0) {
      c.send(buf.data(), buf.size(), 1, 0);  // same node
      c.send(buf.data(), buf.size(), 2, 0);  // other node
    } else if (c.rank() == 1) {
      c.recv(buf.data(), buf.size(), 0, 0);
      EXPECT_LT(c.clock().now(), 50e-6);  // NVLink-class
    } else if (c.rank() == 2) {
      c.recv(buf.data(), buf.size(), 0, 0);
      EXPECT_GT(c.clock().now(), 100e-6);  // fabric-class
    }
  });
}

TEST(VClock, DatatypeBlocksChargeOverhead) {
  NetModel m = model();
  m.dt_block_overhead = 1e-6;
  m.dt_copy_bw = 1e12;  // make the per-block term dominant
  Runtime rt(2, m);
  rt.run([&](Comm& c) {
    std::vector<double> grid(64 * 64);
    // A maximally-strided column: 64 blocks of one double.
    auto col = Datatype::subarray<2>({64, 64}, {1, 64}, {0, 0}, 8);
    ASSERT_EQ(col.block_count(), 64u);
    if (c.rank() == 0) {
      Request r = c.isend(grid.data(), col, 1, 0);
      c.wait(r);
      // 64 blocks * 1us each charged on the sender.
      EXPECT_GT(c.clock().now(), 64e-6);
    } else {
      Request r = c.irecv(grid.data(), col, 0, 0);
      c.wait(r);
      EXPECT_GT(c.clock().now(), 128e-6);  // sender pack + recv unpack
    }
  });
}

TEST(VClock, DeterministicAcrossRuns) {
  // The virtual clock must not observe wall time: identical programs give
  // bit-identical virtual times.
  auto once = [] {
    Runtime rt(8, NetModel{});
    rt.run([](Comm& c) {
      std::vector<double> buf(1024);
      const int to = (c.rank() + 1) % c.size();
      const int from = (c.rank() + c.size() - 1) % c.size();
      for (int step = 0; step < 20; ++step) {
        Request r = c.irecv(buf.data(), buf.size() * 8, from, step);
        Request s = c.isend(buf.data(), buf.size() * 8, to, step);
        c.wait(r);
        c.wait(s);
        c.compute(1e-5);
      }
      c.barrier();
    });
    std::vector<double> times;
    for (int r = 0; r < 8; ++r) times.push_back(rt.final_vtime(r));
    return times;
  };
  const auto a = once();
  const auto b = once();
  EXPECT_EQ(a, b);
  for (double t : a) EXPECT_GT(t, 0.0);
}

TEST(VClock, ComputeAdvances) {
  Runtime rt(1, NetModel{});
  rt.run([](Comm& c) {
    c.compute(0.25);
    c.compute(0.25);
    EXPECT_DOUBLE_EQ(c.clock().now(), 0.5);
  });
  EXPECT_DOUBLE_EQ(rt.final_vtime(0), 0.5);
}

}  // namespace
}  // namespace brickx::mpi
