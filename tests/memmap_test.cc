#include <gtest/gtest.h>

#include <cstring>

#include "common/error.h"
#include "memmap/mem_file.h"
#include "memmap/pagesize.h"
#include "memmap/view.h"

namespace brickx::mm {
namespace {

TEST(PageSize, HostPageSizeIsPowerOfTwo) {
  const std::size_t ps = host_page_size();
  EXPECT_GE(ps, 4096u);
  EXPECT_EQ(ps & (ps - 1), 0u);
}

TEST(PageSize, RoundUpAndWaste) {
  EXPECT_EQ(round_up(0, 4096), 0u);
  EXPECT_EQ(round_up(1, 4096), 4096u);
  EXPECT_EQ(round_up(4096, 4096), 4096u);
  EXPECT_EQ(round_up(4097, 4096), 8192u);
  // The paper's example: a 4^3 region of doubles wastes 7/8 of a 4KiB page.
  EXPECT_EQ(pad_waste(4 * 4 * 4 * 8, 4096), 4096u - 512u);
}

TEST(MemFile, CreatesAndRounds) {
  MemFile f(100);
  EXPECT_GE(f.fd(), 0);
  EXPECT_EQ(f.size(), host_page_size());
}

TEST(MemFile, MoveTransfersOwnership) {
  MemFile a(host_page_size());
  const int fd = a.fd();
  MemFile b = std::move(a);
  EXPECT_EQ(b.fd(), fd);
  EXPECT_EQ(a.fd(), -1);
}

TEST(Mapping, ReadsAndWritesBackToFile) {
  const std::size_t ps = host_page_size();
  MemFile f(4 * ps);
  Mapping m1(f);
  Mapping m2(f);  // second independent mapping of the same pages
  std::memset(m1.data(), 0xAB, 4 * ps);
  // Writes through one mapping are visible through the other (MAP_SHARED).
  EXPECT_EQ(std::to_integer<int>(m2.data()[0]), 0xAB);
  EXPECT_EQ(std::to_integer<int>(m2.data()[4 * ps - 1]), 0xAB);
}

TEST(View, StitchesSegmentsContiguously) {
  const std::size_t ps = host_page_size();
  MemFile f(8 * ps);
  Mapping canon(f);
  for (std::size_t p = 0; p < 8; ++p)
    std::memset(canon.data() + p * ps, static_cast<int>('a' + p), ps);

  // The paper's Figure 5: regions 1, 4, 6 appear contiguous in the view.
  ViewBuilder b(f);
  b.add(1 * ps, ps).add(4 * ps, ps).add(6 * ps, ps);
  View v = b.build();
  ASSERT_TRUE(v.valid());
  EXPECT_EQ(v.size(), 3 * ps);
  EXPECT_EQ(std::to_integer<char>(v.data()[0]), 'b');
  EXPECT_EQ(std::to_integer<char>(v.data()[ps]), 'e');
  EXPECT_EQ(std::to_integer<char>(v.data()[2 * ps]), 'g');
}

TEST(View, WritesThroughViewHitCanonicalStorage) {
  const std::size_t ps = host_page_size();
  MemFile f(4 * ps);
  Mapping canon(f);
  ViewBuilder b(f);
  b.add(2 * ps, ps);
  View v = b.build();
  std::memset(v.data(), 0x5C, ps);
  EXPECT_EQ(std::to_integer<int>(canon.data()[2 * ps]), 0x5C);
  EXPECT_EQ(std::to_integer<int>(canon.data()[2 * ps + ps - 1]), 0x5C);
  // Pages outside the view are untouched.
  EXPECT_EQ(std::to_integer<int>(canon.data()[ps]), 0x00);
}

TEST(View, SameSegmentMappedTwiceAliases) {
  const std::size_t ps = host_page_size();
  MemFile f(2 * ps);
  ViewBuilder b(f);
  b.add(0, ps).add(0, ps);  // overlapping regions sent to two neighbors
  View v = b.build();
  v.data()[7] = std::byte{42};
  EXPECT_EQ(std::to_integer<int>(v.data()[ps + 7]), 42);
}

TEST(View, UnalignedSegmentsRejected) {
  const std::size_t ps = host_page_size();
  MemFile f(2 * ps);
  ViewBuilder b(f);
  EXPECT_THROW(b.add(ps / 2, ps), brickx::Error);
  EXPECT_THROW(b.add(0, ps / 2), brickx::Error);
  EXPECT_THROW(b.add(0, 4 * ps), brickx::Error);  // beyond file end
}

TEST(View, EmptyBuilderYieldsInvalidView) {
  MemFile f(host_page_size());
  ViewBuilder b(f);
  View v = b.build();
  EXPECT_FALSE(v.valid());
  EXPECT_EQ(v.size(), 0u);
}

TEST(View, SegmentAccountingBalances) {
  const std::size_t ps = host_page_size();
  const std::int64_t before = live_view_segments();
  {
    MemFile f(8 * ps);
    ViewBuilder b(f);
    b.add(0, ps).add(2 * ps, 2 * ps).add(6 * ps, ps);
    View v = b.build();
    EXPECT_EQ(v.segments(), 3);
    EXPECT_EQ(live_view_segments(), before + 3);
    View w = std::move(v);
    EXPECT_EQ(live_view_segments(), before + 3);
  }
  EXPECT_EQ(live_view_segments(), before);
}

TEST(View, ManySegmentsStressWithinMapLimit) {
  // The paper notes vm.max_map_count defaults to 65530; layouts keep well
  // under it. Exercise a few hundred segments to prove stitching scales.
  const std::size_t ps = host_page_size();
  MemFile f(256 * ps);
  ViewBuilder b(f);
  Mapping canon(f);
  for (std::size_t i = 0; i < 256; ++i) {
    canon.data()[(255 - i) * ps] = static_cast<std::byte>(i);
    b.add((255 - i) * ps, ps);  // reversed order
  }
  View v = b.build();
  for (std::size_t i = 0; i < 256; ++i)
    EXPECT_EQ(std::to_integer<std::size_t>(v.data()[i * ps]), i);
}

}  // namespace
}  // namespace brickx::mm
