#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "common/error.h"
#include "simmpi/comm.h"
#include "simmpi/fault.h"

namespace brickx::mpi {
namespace {

NetModel quiet() { return NetModel{}; }

// ---------------------------------------------------------------- spec ----

TEST(FaultSpec, ParseEmptyAndNoneAreAllZero) {
  for (const char* s : {"", "none"}) {
    auto spec = parse_fault_spec(s);
    ASSERT_TRUE(spec.has_value()) << s;
    EXPECT_FALSE(spec->any());
    EXPECT_FALSE(spec->corrupting());
  }
}

TEST(FaultSpec, ParseFullSpec) {
  auto spec = parse_fault_spec(
      "delay=0.25,drop=0.1,duplicate=0.05,reorder=0.05,truncate=0.01,"
      "corrupt=0.02,seed=42,max-delay=1e-6");
  ASSERT_TRUE(spec.has_value());
  EXPECT_DOUBLE_EQ(spec->delay, 0.25);
  EXPECT_DOUBLE_EQ(spec->drop, 0.1);
  EXPECT_DOUBLE_EQ(spec->duplicate, 0.05);
  EXPECT_DOUBLE_EQ(spec->reorder, 0.05);
  EXPECT_DOUBLE_EQ(spec->truncate, 0.01);
  EXPECT_DOUBLE_EQ(spec->corrupt, 0.02);
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_DOUBLE_EQ(spec->max_delay, 1e-6);
  EXPECT_TRUE(spec->any());
  EXPECT_TRUE(spec->corrupting());
}

TEST(FaultSpec, DelayOnlyIsNotCorrupting) {
  auto spec = parse_fault_spec("delay=0.5,reorder=0.5");
  ASSERT_TRUE(spec.has_value());
  EXPECT_TRUE(spec->any());
  EXPECT_FALSE(spec->corrupting());
}

TEST(FaultSpec, ParseRejectsMalformedInput) {
  EXPECT_FALSE(parse_fault_spec("delay").has_value());
  EXPECT_FALSE(parse_fault_spec("delay=").has_value());
  EXPECT_FALSE(parse_fault_spec("delay=banana").has_value());
  EXPECT_FALSE(parse_fault_spec("frobnicate=0.5").has_value());
  EXPECT_FALSE(parse_fault_spec("delay=1.5").has_value());
  EXPECT_FALSE(parse_fault_spec("delay=-0.1").has_value());
  // Probabilities summing above 1 are rejected.
  EXPECT_FALSE(parse_fault_spec("delay=0.7,drop=0.7").has_value());
}

TEST(FaultSpec, DescribeRoundTrips) {
  auto spec = parse_fault_spec("delay=0.3,corrupt=0.01,seed=7");
  ASSERT_TRUE(spec.has_value());
  auto again = parse_fault_spec(describe(*spec));
  ASSERT_TRUE(again.has_value());
  EXPECT_DOUBLE_EQ(again->delay, spec->delay);
  EXPECT_DOUBLE_EQ(again->corrupt, spec->corrupt);
  EXPECT_EQ(again->seed, spec->seed);
}

// ------------------------------------------------------------ checksum ----

TEST(FaultChecksum, DistinguishesPayloads) {
  const char a[] = "hello, fabric";
  char b[sizeof a];
  std::memcpy(b, a, sizeof a);
  EXPECT_EQ(checksum_bytes(a, sizeof a), checksum_bytes(b, sizeof a));
  b[4] ^= 0x01;
  EXPECT_NE(checksum_bytes(a, sizeof a), checksum_bytes(b, sizeof a));
  // Empty ranges hash to the FNV offset basis, consistently.
  EXPECT_EQ(checksum_bytes(a, 0), checksum_bytes(b, 0));
}

// ------------------------------------------------------------ injector ----

TEST(FaultInjector, ScheduleIsDeterministicPerEdgeOrdinal) {
  FaultSpec spec;
  spec.seed = 99;
  spec.delay = 0.2;
  spec.drop = 0.2;
  spec.corrupt = 0.2;
  FaultInjector a(spec), b(spec);
  // Interleave edges differently across the two injectors; per-edge
  // decisions must match anyway because the schedule keys on the per-edge
  // ordinal, not global arrival order.
  std::vector<FaultKind> seq_a, seq_b;
  for (int i = 0; i < 64; ++i) {
    seq_a.push_back(a.decide(0, 1, 5, 256).kind);
    a.decide(2, 3, 7, 256);  // noise on another edge
  }
  for (int i = 0; i < 64; ++i) {
    b.decide(2, 3, 7, 256);  // noise first this time
    seq_b.push_back(b.decide(0, 1, 5, 256).kind);
  }
  EXPECT_EQ(seq_a, seq_b);
}

TEST(FaultInjector, SeedChangesSchedule) {
  FaultSpec s1, s2;
  s1.delay = s2.delay = 0.5;
  s1.seed = 1;
  s2.seed = 2;
  FaultInjector a(s1), b(s2);
  int differs = 0;
  for (int i = 0; i < 128; ++i) {
    if (a.decide(0, 1, 0, 64).kind != b.decide(0, 1, 0, 64).kind) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(FaultInjector, CertainProbabilityFiresAlways) {
  FaultSpec spec;
  spec.corrupt = 1.0;
  FaultInjector fi(spec);
  for (int i = 0; i < 16; ++i) {
    auto d = fi.decide(0, 1, 3, 128);
    EXPECT_EQ(d.kind, FaultKind::Corrupt);
    EXPECT_LT(d.corrupt_at, 128u);
  }
  EXPECT_EQ(fi.counts().corrupted, 16);
  EXPECT_EQ(fi.counts().messages, 16);
}

TEST(FaultInjector, ZeroByteMessagesAreNeverTruncatedOrCorrupted) {
  FaultSpec spec;
  spec.truncate = 0.5;
  spec.corrupt = 0.5;
  FaultInjector fi(spec);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(fi.decide(0, 1, 0, 0).kind, FaultKind::None);
  EXPECT_EQ(fi.counts().injected(), 0);
}

TEST(FaultInjector, ResetRestartsTheSchedule) {
  FaultSpec spec;
  spec.delay = 0.4;
  FaultInjector fi(spec);
  std::vector<FaultKind> first;
  for (int i = 0; i < 32; ++i) first.push_back(fi.decide(1, 0, 9, 8).kind);
  fi.reset();
  EXPECT_EQ(fi.counts().messages, 0);
  for (int i = 0; i < 32; ++i)
    EXPECT_EQ(fi.decide(1, 0, 9, 8).kind, first[static_cast<std::size_t>(i)]);
}

TEST(FaultInjector, RejectsOverfullProbabilities) {
  FaultSpec spec;
  spec.delay = 0.8;
  spec.drop = 0.8;
  EXPECT_THROW(FaultInjector{spec}, brickx::Error);
}

// ------------------------------------------------------- runtime seam ----

// Exchange a deterministic payload between two ranks and return what rank 1
// received plus both final virtual times.
struct PingResult {
  std::vector<int> received;
  double vtime0 = 0.0;
  double vtime1 = 0.0;
};

PingResult ping(FaultInjector* fi, int nmsgs = 4) {
  Runtime rt(2, quiet());
  rt.set_fault_injector(fi);
  std::vector<int> got;
  rt.run([&](Comm& c) {
    std::vector<int> buf(64);
    for (int m = 0; m < nmsgs; ++m) {
      if (c.rank() == 0) {
        std::iota(buf.begin(), buf.end(), m * 1000);
        c.send(buf.data(), buf.size() * sizeof(int), 1, m);
      } else {
        c.recv(buf.data(), buf.size() * sizeof(int), 0, m);
        got.insert(got.end(), buf.begin(), buf.end());
      }
    }
  });
  PingResult r;
  r.received = std::move(got);
  r.vtime0 = rt.final_vtime(0);
  r.vtime1 = rt.final_vtime(1);
  return r;
}

TEST(FaultRuntime, DelayOnlyLeavesDataIdenticalAndShiftsTime) {
  const PingResult clean = ping(nullptr);

  FaultSpec spec;
  spec.delay = 1.0;  // every message delayed
  spec.max_delay = 1e-3;
  FaultInjector fi(spec);
  const PingResult faulty = ping(&fi);

  EXPECT_EQ(faulty.received, clean.received);  // bit-identical data
  EXPECT_EQ(fi.counts().delayed, fi.counts().messages);
  EXPECT_EQ(fi.counts().detected, 0);
  // The receiver's clock must have moved; delays only ever add time.
  EXPECT_GT(faulty.vtime1, clean.vtime1);
  EXPECT_GE(faulty.vtime0, clean.vtime0);
}

TEST(FaultRuntime, DelayScheduleIsReproducible) {
  FaultSpec spec;
  spec.delay = 0.5;
  spec.seed = 1234;
  FaultInjector f1(spec), f2(spec);
  const PingResult a = ping(&f1);
  const PingResult b = ping(&f2);
  EXPECT_EQ(a.received, b.received);
  EXPECT_DOUBLE_EQ(a.vtime0, b.vtime0);
  EXPECT_DOUBLE_EQ(a.vtime1, b.vtime1);
  EXPECT_EQ(f1.counts().delayed, f2.counts().delayed);
}

TEST(FaultRuntime, CorruptionIsDetectedNotSilent) {
  FaultSpec spec;
  spec.corrupt = 1.0;
  FaultInjector fi(spec);
  try {
    ping(&fi);
    FAIL() << "corrupted payload went undetected";
  } catch (const brickx::Error& e) {
    EXPECT_NE(std::string(e.what()).find("fault detected"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
  EXPECT_GE(fi.counts().detected, 1);
}

TEST(FaultRuntime, DropSurfacesAsDeliveryTimeout) {
  FaultSpec spec;
  spec.drop = 1.0;
  FaultInjector fi(spec);
  try {
    ping(&fi);
    FAIL() << "dropped payload went undetected";
  } catch (const brickx::Error& e) {
    EXPECT_NE(std::string(e.what()).find("dropped in transit"),
              std::string::npos)
        << e.what();
  }
  EXPECT_GE(fi.counts().detected, 1);
}

TEST(FaultRuntime, TruncationIsDetected) {
  FaultSpec spec;
  spec.truncate = 1.0;
  FaultInjector fi(spec);
  try {
    ping(&fi);
    FAIL() << "truncated payload went undetected";
  } catch (const brickx::Error& e) {
    EXPECT_NE(std::string(e.what()).find("truncated payload"),
              std::string::npos)
        << e.what();
  }
  EXPECT_GE(fi.counts().detected, 1);
}

TEST(FaultRuntime, DuplicateOnSharedEdgeTripsSequenceCheck) {
  FaultSpec spec;
  spec.duplicate = 1.0;
  FaultInjector fi(spec);
  // Two messages on the SAME (src, dst, tag) edge: the duplicated replay of
  // message 1 sits in the mailbox and matches the second receive, where its
  // stale sequence number is caught.
  Runtime rt(2, quiet());
  rt.set_fault_injector(&fi);
  EXPECT_THROW(rt.run([](Comm& c) {
    int x = 7;
    if (c.rank() == 0) {
      c.send(&x, sizeof x, 1, 0);
      c.send(&x, sizeof x, 1, 0);
    } else {
      c.recv(&x, sizeof x, 0, 0);
      c.recv(&x, sizeof x, 0, 0);
    }
  }),
               brickx::Error);
  EXPECT_GE(fi.counts().detected, 1);
}

TEST(FaultRuntime, UnconsumedDuplicateIsSweptAsLeftover) {
  FaultSpec spec;
  spec.duplicate = 1.0;
  FaultInjector fi(spec);
  Runtime rt(2, quiet());
  rt.set_fault_injector(&fi);
  int got = 0;
  rt.run([&](Comm& c) {
    int x = 11;
    if (c.rank() == 0)
      c.send(&x, sizeof x, 1, 0);
    else
      c.recv(&got, sizeof got, 0, 0);
  });
  EXPECT_EQ(got, 11);  // the first copy arrived intact
  EXPECT_EQ(fi.counts().duplicated, 1);
  EXPECT_EQ(fi.counts().leftover, 1);  // the replay was quarantined
  EXPECT_EQ(fi.counts().detected, 0);
}

TEST(FaultRuntime, ReorderAcrossTagsIsBenign) {
  FaultSpec spec;
  spec.reorder = 1.0;
  FaultInjector fi(spec);
  Runtime rt(2, quiet());
  rt.set_fault_injector(&fi);
  int a = 0, b = 0;
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      int x = 1, y = 2;
      // Both sends are held back; wait() is the flush point that finally
      // releases them, so the run cannot deadlock.
      Request r1 = c.isend(&x, sizeof x, 1, 0);
      Request r2 = c.isend(&y, sizeof y, 1, 1);
      c.wait(r1);
      c.wait(r2);
    } else {
      // Receive in the opposite tag order to exercise (src, tag) matching
      // against the shuffled mailbox.
      c.recv(&b, sizeof b, 0, 1);
      c.recv(&a, sizeof a, 0, 0);
    }
  });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(fi.counts().reordered, 2);
  EXPECT_EQ(fi.counts().detected, 0);
  EXPECT_EQ(fi.counts().leftover, 0);
}

TEST(FaultRuntime, NoInjectorMeansNoIntegrityOverheadOrBehaviorChange) {
  // Two fault-free runs (injector absent) are bit-identical — the seam is
  // inert by default.
  const PingResult a = ping(nullptr);
  const PingResult b = ping(nullptr);
  EXPECT_EQ(a.received, b.received);
  EXPECT_DOUBLE_EQ(a.vtime1, b.vtime1);
}

TEST(FaultRuntime, CollectivesFlushHeldMessages) {
  FaultSpec spec;
  spec.reorder = 1.0;
  FaultInjector fi(spec);
  Runtime rt(2, quiet());
  rt.set_fault_injector(&fi);
  int got = 0;
  rt.run([&](Comm& c) {
    if (c.rank() == 0) {
      int x = 5;
      Request r = c.isend(&x, sizeof x, 1, 0);
      (void)c.allgather(1.0);  // flush point: releases the held envelope
      c.wait(r);
    } else {
      (void)c.allgather(1.0);
      c.recv(&got, sizeof got, 0, 0);
    }
  });
  EXPECT_EQ(got, 5);
  EXPECT_EQ(fi.counts().detected, 0);
}

}  // namespace
}  // namespace brickx::mpi
