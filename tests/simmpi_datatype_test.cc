#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/error.h"
#include "simmpi/comm.h"
#include "simmpi/datatype.h"

namespace brickx::mpi {
namespace {

TEST(Datatype, Contiguous) {
  auto t = Datatype::contiguous(10, 8);
  EXPECT_EQ(t.size(), 80u);
  EXPECT_EQ(t.block_count(), 1u);
  EXPECT_EQ(t.extent(), 80u);
}

TEST(Datatype, VectorStrided) {
  // 4 blocks of 2 doubles, stride 5 doubles.
  auto t = Datatype::vector(4, 2, 5, 8);
  EXPECT_EQ(t.size(), 4 * 2 * 8u);
  EXPECT_EQ(t.block_count(), 4u);
  EXPECT_EQ(t.extent(), (3 * 5 + 2) * 8u);
}

TEST(Datatype, VectorDenseCollapsesToOneBlock) {
  auto t = Datatype::vector(4, 5, 5, 8);  // blocklen == stride
  EXPECT_EQ(t.block_count(), 1u);
  EXPECT_EQ(t.size(), 160u);
}

TEST(Datatype, VectorOverlapRejected) {
  EXPECT_THROW(Datatype::vector(3, 4, 2, 8), brickx::Error);
}

TEST(Datatype, Subarray2D) {
  // 2x2 corner of a 4x4 array (axis 0 fastest).
  auto t = Datatype::subarray<2>({4, 4}, {2, 2}, {1, 1}, 8);
  EXPECT_EQ(t.size(), 4 * 8u);
  EXPECT_EQ(t.block_count(), 2u);  // two j-rows of 2 elements
  EXPECT_EQ(t.flat().blocks[0].offset, (1 * 4 + 1) * 8u);
  EXPECT_EQ(t.flat().blocks[1].offset, (2 * 4 + 1) * 8u);
}

TEST(Datatype, SubarrayFullLowerAxesMergesRuns) {
  // A full i-j slab of a 4x4x4 cube is one contiguous block per slab, and
  // adjacent slabs merge into a single block.
  auto t = Datatype::subarray<3>({4, 4, 4}, {4, 4, 2}, {0, 0, 1}, 8);
  EXPECT_EQ(t.size(), 4 * 4 * 2 * 8u);
  EXPECT_EQ(t.block_count(), 1u);
}

TEST(Datatype, SubarrayOutOfBoundsRejected) {
  EXPECT_THROW((Datatype::subarray<2>({4, 4}, {3, 3}, {2, 2}, 8)),
               brickx::Error);
}

TEST(Datatype, GatherScatterRoundtrip) {
  const Vec3 sizes{6, 5, 4};
  std::vector<double> src(static_cast<std::size_t>(sizes.prod()));
  std::iota(src.begin(), src.end(), 0.0);
  auto t = Datatype::subarray<3>(sizes, {2, 3, 2}, {1, 1, 1}, sizeof(double));

  std::vector<std::byte> packed(t.size());
  t.flat().gather(reinterpret_cast<const std::byte*>(src.data()),
                  packed.data());

  std::vector<double> dst(src.size(), -1.0);
  t.flat().scatter(packed.data(), reinterpret_cast<std::byte*>(dst.data()));

  int touched = 0;
  for (std::int64_t k = 0; k < sizes[2]; ++k)
    for (std::int64_t j = 0; j < sizes[1]; ++j)
      for (std::int64_t i = 0; i < sizes[0]; ++i) {
        const auto idx =
            static_cast<std::size_t>(linearize(Vec3{i, j, k}, sizes));
        const bool inside = i >= 1 && i < 3 && j >= 1 && j < 4 && k >= 1 && k < 3;
        if (inside) {
          EXPECT_EQ(dst[idx], src[idx]);
          ++touched;
        } else {
          EXPECT_EQ(dst[idx], -1.0);
        }
      }
  EXPECT_EQ(touched, 2 * 3 * 2);
}

TEST(Datatype, ConcatAppendsWithDisplacement) {
  auto a = Datatype::contiguous(2, 8);
  auto b = Datatype::vector(2, 1, 3, 8);
  auto t = Datatype::concat({{0, a}, {100 * 8, b}});
  EXPECT_EQ(t.size(), a.size() + b.size());
  EXPECT_EQ(t.block_count(), 3u);
  EXPECT_EQ(t.flat().blocks[1].offset, 100 * 8u);
}

TEST(Datatype, SendRecvThroughComm) {
  // End-to-end: send a strided column of a 2D array, receive into a
  // different subarray shape of the same total size.
  Runtime rt(2, NetModel{});
  rt.run([](Comm& c) {
    const Vec2 sizes{8, 8};
    std::vector<double> grid(64);
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < 64; ++i) grid[i] = static_cast<double>(i);
      auto col = Datatype::subarray<2>(sizes, {1, 8}, {3, 0}, 8);
      Request r = c.isend(grid.data(), col, 1, 0);
      c.wait(r);
      EXPECT_GT(c.counters().dt_blocks, 0);
      EXPECT_EQ(c.counters().dt_pack_bytes, 64);
    } else {
      std::fill(grid.begin(), grid.end(), -1.0);
      auto row = Datatype::subarray<2>(sizes, {8, 1}, {0, 5}, 8);
      Request r = c.irecv(grid.data(), row, 0, 0);
      c.wait(r);
      // Column 3 of rank 0 lands in row 5 here.
      for (std::int64_t i = 0; i < 8; ++i)
        EXPECT_EQ(grid[static_cast<std::size_t>(linearize(Vec2{i, 5}, sizes))],
                  static_cast<double>(3 + 8 * i));
    }
  });
}

TEST(Datatype, DatatypeOutlivesRequest) {
  Runtime rt(2, NetModel{});
  rt.run([](Comm& c) {
    double v[4] = {1, 2, 3, 4}, w[4] = {};
    Request r;
    if (c.rank() == 0) {
      {
        auto t = Datatype::contiguous(4, 8);
        r = c.isend(v, t, 1, 0);
      }  // t destroyed before wait
      c.wait(r);
    } else {
      {
        auto t = Datatype::contiguous(4, 8);
        r = c.irecv(w, t, 0, 0);
      }
      c.wait(r);
      EXPECT_EQ(w[3], 4.0);
    }
  });
}

}  // namespace
}  // namespace brickx::mpi
