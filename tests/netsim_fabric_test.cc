// Fabric-layer tests: the FlatFabric must reproduce the legacy Comm timing
// arithmetic bit-for-bit (the regression the whole netsim integration hangs
// on), the ContentionFabric must reduce to it on uncongested paths, and
// harness runs over either fabric must be bit-deterministic.

#include <memory>

#include "common/error.h"
#include "gtest/gtest.h"
#include "harness/experiment.h"
#include "model/machine.h"
#include "netsim/fabric.h"

namespace brickx {
namespace {

using netsim::FabricKind;
using netsim::MapKind;
using netsim::SendTiming;

constexpr double kAlpha = 3.5e-6;
constexpr double kBw = 9.0e9;

// ---------------------------------------------------------------------------
// FlatFabric: the legacy arithmetic, verbatim
// ---------------------------------------------------------------------------

TEST(FlatFabric, ReproducesLegacyCommTiming) {
  // The pre-netsim Comm::isend_impl kept one nic_free horizon per sender:
  //   dep = max(t_ready, nic_free); nic_free = dep + bytes/bw;
  //   arrival = nic_free + alpha; send_complete = nic_free.
  // Replay a sequence and check every intermediate with exact equality.
  auto fab = netsim::make_flat_fabric(4, 1);
  double nic_free = 0.0;
  const struct {
    std::size_t bytes;
    double ready;
  } msgs[] = {{4096, 1.0e-6}, {65536, 1.5e-6}, {128, 9.0e-4}};
  for (const auto& m : msgs) {
    const double dep = std::max(m.ready, nic_free);
    nic_free = dep + static_cast<double>(m.bytes) / kBw;
    const SendTiming tm = fab->send(0, 1, m.bytes, kAlpha, kBw, m.ready);
    EXPECT_DOUBLE_EQ(tm.inject_start, dep);
    EXPECT_DOUBLE_EQ(tm.inject_end, nic_free);
    EXPECT_DOUBLE_EQ(tm.arrival, nic_free + kAlpha);
    EXPECT_EQ(tm.hops, 0);
  }
}

TEST(FlatFabric, SendersSerializeIndependently) {
  auto fab = netsim::make_flat_fabric(2, 1);
  // Rank 0 loads its NIC; rank 1's first send must be untouched by it.
  (void)fab->send(0, 1, 1 << 20, kAlpha, kBw, 0.0);
  const SendTiming tm = fab->send(1, 0, 256, kAlpha, kBw, 2.0e-6);
  EXPECT_DOUBLE_EQ(tm.inject_start, 2.0e-6);
  EXPECT_DOUBLE_EQ(tm.arrival, 2.0e-6 + 256.0 / kBw + kAlpha);
}

TEST(FlatFabric, LocalityFollowsRanksPerNode) {
  auto fab = netsim::make_flat_fabric(8, 4);
  EXPECT_TRUE(fab->local(0, 3));
  EXPECT_FALSE(fab->local(3, 4));
  EXPECT_TRUE(fab->local(5, 7));
}

TEST(FlatFabric, ResetClearsNicHorizons) {
  auto fab = netsim::make_flat_fabric(2, 1);
  (void)fab->send(0, 1, 1 << 20, kAlpha, kBw, 0.0);
  fab->reset();
  const SendTiming tm = fab->send(0, 1, 512, kAlpha, kBw, 0.0);
  EXPECT_DOUBLE_EQ(tm.inject_start, 0.0);
  EXPECT_EQ(fab->stats().messages, 1);
}

// ---------------------------------------------------------------------------
// ContentionFabric: reduces to flat when nothing contends
// ---------------------------------------------------------------------------

std::unique_ptr<netsim::Fabric> single_switch_fabric(int nranks, int rpn) {
  // hop_latency = alpha/2 so an uncongested two-hop route through the
  // switch costs exactly the flat model's inter-node alpha.
  return netsim::make_fabric(FabricKind::SingleSwitch, MapKind::Block, nranks,
                             rpn, kBw, kAlpha / 2.0, kAlpha, {});
}

TEST(ContentionFabric, IntraNodeMatchesFlatExactly) {
  auto routed = single_switch_fabric(8, 4);
  auto flat = netsim::make_flat_fabric(8, 4);
  ASSERT_TRUE(routed->local(0, 3));
  const SendTiming a = routed->send(0, 3, 8192, kAlpha, kBw, 1.0e-6);
  const SendTiming b = flat->send(0, 3, 8192, kAlpha, kBw, 1.0e-6);
  EXPECT_DOUBLE_EQ(a.inject_start, b.inject_start);
  EXPECT_DOUBLE_EQ(a.inject_end, b.inject_end);
  EXPECT_DOUBLE_EQ(a.arrival, b.arrival);
  EXPECT_EQ(a.hops, 0);
}

TEST(ContentionFabric, UncongestedInterNodeMatchesFlat) {
  // First round: sharing factors are all 1, so a lone inter-node message
  // over the single switch times exactly like the flat model.
  auto routed = single_switch_fabric(8, 4);
  auto flat = netsim::make_flat_fabric(8, 4);
  ASSERT_FALSE(routed->local(0, 4));
  const SendTiming a = routed->send(0, 4, 8192, kAlpha, kBw, 1.0e-6);
  const SendTiming b = flat->send(0, 4, 8192, kAlpha, kBw, 1.0e-6);
  EXPECT_DOUBLE_EQ(a.inject_start, b.inject_start);
  EXPECT_DOUBLE_EQ(a.inject_end, b.inject_end);
  EXPECT_DOUBLE_EQ(a.arrival, b.arrival);
  EXPECT_EQ(a.hops, 2);
}

TEST(ContentionFabric, SharedUplinkSlowsNextRound) {
  // Two ranks on node 0 both blast node 1: their flows share the node-0
  // uplink, so after epoch() the sharing factor is ~2 and the next round's
  // injection runs at half rate.
  auto fab = single_switch_fabric(4, 2);
  const SendTiming before = fab->send(0, 2, 1 << 20, kAlpha, kBw, 0.0);
  (void)fab->send(1, 3, 1 << 20, kAlpha, kBw, 0.0);
  fab->epoch();
  const SendTiming after = fab->send(0, 2, 1 << 20, kAlpha, kBw, 10.0);
  const double dur_before = before.inject_end - before.inject_start;
  const double dur_after = after.inject_end - after.inject_start;
  EXPECT_GT(dur_after, 1.5 * dur_before);
  const netsim::FabricStats s = fab->stats();
  EXPECT_EQ(s.fabric_messages, 3);
  EXPECT_GE(s.max_link_sharing, 2.0);
}

TEST(ContentionFabric, EmptyEpochKeepsFactors) {
  // Collectives call epoch() more than once per round (each allgather's
  // gather closes the round, the next finds it empty); an empty round must
  // not reset the sharing factors back to 1.
  auto fab = single_switch_fabric(4, 2);
  (void)fab->send(0, 2, 1 << 20, kAlpha, kBw, 0.0);
  (void)fab->send(1, 3, 1 << 20, kAlpha, kBw, 0.0);
  fab->epoch();
  fab->epoch();  // empty
  const SendTiming tm = fab->send(0, 2, 1 << 20, kAlpha, kBw, 10.0);
  const double serial = static_cast<double>(1 << 20) / kBw;
  EXPECT_GT(tm.inject_end - tm.inject_start, 1.5 * serial);
}

// ---------------------------------------------------------------------------
// Harness-level regressions
// ---------------------------------------------------------------------------

harness::Config small_config() {
  harness::Config cfg;
  cfg.machine = model::theta();
  cfg.rank_dims = {2, 2, 2};
  cfg.subdomain = Vec3::fill(16);
  cfg.brick = 8;
  cfg.ghost = 8;
  cfg.method = harness::Method::Layout;
  cfg.timesteps = 4;
  cfg.warmup_exchanges = 1;
  cfg.execute_kernels = false;
  return cfg;
}

void expect_identical(const harness::Result& a, const harness::Result& b) {
  EXPECT_EQ(a.total_seconds, b.total_seconds);
  EXPECT_EQ(a.comm_per_step, b.comm_per_step);
  EXPECT_EQ(a.calc_per_step, b.calc_per_step);
  EXPECT_EQ(a.wait.avg(), b.wait.avg());
  EXPECT_EQ(a.msgs_per_rank, b.msgs_per_rank);
  EXPECT_EQ(a.wire_bytes_per_rank, b.wire_bytes_per_rank);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.queue_s_per_msg, b.queue_s_per_msg);
  EXPECT_EQ(a.max_link_sharing, b.max_link_sharing);
}

TEST(HarnessFabric, FlatRunsAreBitDeterministic) {
  const harness::Config cfg = small_config();
  const harness::Result a = harness::run(cfg);
  const harness::Result b = harness::run(cfg);
  expect_identical(a, b);
  // Flat fabric reports no routed-fabric observability.
  EXPECT_EQ(a.avg_hops, 0.0);
  EXPECT_EQ(a.max_link_sharing, 0.0);
  EXPECT_EQ(a.busiest_link_util, 0.0);
}

TEST(HarnessFabric, ContentionRunsAreBitDeterministic) {
  harness::Config cfg = small_config();
  cfg.machine.net.ranks_per_node = 2;
  cfg.fabric = netsim::FabricKind::FatTree;
  cfg.mapping = netsim::MapKind::Greedy;
  const harness::Result a = harness::run(cfg);
  const harness::Result b = harness::run(cfg);
  expect_identical(a, b);
  EXPECT_GT(a.avg_hops, 0.0);
  EXPECT_GE(a.max_link_sharing, 1.0);
}

TEST(HarnessFabric, ContentionNeverBeatsFlat) {
  harness::Config flat_cfg = small_config();
  flat_cfg.machine.net.ranks_per_node = 2;
  harness::Config routed_cfg = flat_cfg;
  routed_cfg.fabric = netsim::FabricKind::SingleSwitch;
  const harness::Result flat = harness::run(flat_cfg);
  const harness::Result routed = harness::run(routed_cfg);
  EXPECT_GE(routed.comm_per_step, flat.comm_per_step);
}

TEST(HarnessFabric, MappingMovesCutVolumeAndCommTime) {
  // A 2x4x4 grid with 8 ranks per node gives the mapping real room: block
  // fills whole z-planes, round-robin deals neighbors apart, and greedy
  // rediscovers a low-cut clustering from the exchange graph. (An 8-rank
  // 2^3 grid is useless here — with periodic wrap it is nearly a complete
  // graph, so every mapping cuts about the same volume.)
  harness::Config cfg = small_config();
  cfg.rank_dims = {2, 4, 4};
  const int rpn = 8;
  cfg.machine.net.ranks_per_node = rpn;
  cfg.fabric = netsim::FabricKind::FatTree;
  const auto graph = harness::exchange_comm_graph(cfg);
  const int nranks = static_cast<int>(cfg.rank_dims.prod());

  const double cut_greedy =
      netsim::cut_bytes(netsim::greedy_map(nranks, rpn, graph), graph);
  const double cut_rr =
      netsim::cut_bytes(netsim::round_robin_map(nranks, rpn), graph);
  EXPECT_LT(cut_greedy, cut_rr);

  cfg.mapping = netsim::MapKind::Greedy;
  const harness::Result greedy = harness::run(cfg);
  cfg.mapping = netsim::MapKind::RoundRobin;
  const harness::Result rr = harness::run(cfg);
  EXPECT_LT(greedy.comm_per_step, rr.comm_per_step);
}

TEST(HarnessFabric, RanksPerNodeMustBePositive) {
  harness::Config cfg = small_config();
  cfg.machine.net.ranks_per_node = 0;
  EXPECT_THROW((void)harness::run(cfg), brickx::Error);
}

}  // namespace
}  // namespace brickx
