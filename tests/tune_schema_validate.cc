// Artifact-contract check (plain main, registered with ctest as
// tune_artifact_schema): validates the committed tuned-config artifact
// (tests/data/tuned_config.json) against the fixed brickx-tuned-config-v1
// shape — top-level sections, per-section key types, and the config-hash
// format — then runs the brickx_tune binary twice on a small problem with
// *different* worker-thread counts and requires the two emitted artifacts
// to be byte-identical (the tuner's determinism contract, end to end
// through the CLI).
//
// Usage: tune_schema_validate <brickx_tune-binary> <tuned_config.json>
//
// The JSON parser lives in json_mini.h, shared with the other validators.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "json_mini.h"

namespace {

using jsonmini::Parser;
using jsonmini::Value;
using jsonmini::read_file;

// ---- validation -----------------------------------------------------------

int g_errors = 0;

void problem(const std::string& what) {
  std::fprintf(stderr, "schema violation: %s\n", what.c_str());
  ++g_errors;
}

const Value* section(const Value& doc, const char* key) {
  const Value* v = doc.find(key);
  if (v == nullptr || !v->is(Value::Type::Object)) {
    problem(std::string("missing object section '") + key + "'");
    return nullptr;
  }
  return v;
}

void want_str(const Value& obj, const char* where, const char* key) {
  const Value* v = obj.find(key);
  if (v == nullptr || !v->is(Value::Type::String) || v->str.empty())
    problem(std::string(where) + " lacks non-empty string '" + key + "'");
}

void want_num(const Value& obj, const char* where, const char* key) {
  const Value* v = obj.find(key);
  if (v == nullptr || !v->is(Value::Type::Number))
    problem(std::string(where) + " lacks numeric '" + key + "'");
}

void want_bool(const Value& obj, const char* where, const char* key) {
  const Value* v = obj.find(key);
  if (v == nullptr || !v->is(Value::Type::Bool))
    problem(std::string(where) + " lacks boolean '" + key + "'");
}

void want_vec3(const Value& obj, const char* where, const char* key) {
  const Value* v = obj.find(key);
  if (v == nullptr || !v->is(Value::Type::Array) || v->arr->size() != 3) {
    problem(std::string(where) + " lacks 3-element array '" + key + "'");
    return;
  }
  for (const Value& e : *v->arr)
    if (!e.is(Value::Type::Number) || e.number < 1.0)
      problem(std::string(where) + "." + key +
              " has a non-positive / non-numeric element");
}

void validate_artifact(const Value& doc, const char* label) {
  const Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->is(Value::Type::String) ||
      schema->str != "brickx-tuned-config-v1")
    problem(std::string(label) +
            ": 'schema' must be the string \"brickx-tuned-config-v1\"");

  if (const Value* p = section(doc, "problem")) {
    want_str(*p, "problem", "machine");
    want_vec3(*p, "problem", "rank_dims");
    want_vec3(*p, "problem", "subdomain");
    want_num(*p, "problem", "ghost");
    want_bool(*p, "problem", "use125");
    want_str(*p, "problem", "method");
    want_str(*p, "problem", "gpu");
    want_num(*p, "problem", "timesteps");
    want_num(*p, "problem", "warmup_exchanges");
    want_num(*p, "problem", "ranks_per_node");
    want_str(*p, "problem", "fabric");
    want_str(*p, "problem", "transport");
    want_bool(*p, "problem", "overlap");
    want_bool(*p, "problem", "memmap_floor_proxy");
  }

  if (const Value* c = section(doc, "choice")) {
    want_str(*c, "choice", "layout");
    want_str(*c, "choice", "mapping");
    want_num(*c, "choice", "brick");
    want_num(*c, "choice", "page_size");
    const Value* order = c->find("layout_order");
    if (order == nullptr || !order->is(Value::Type::Array)) {
      problem("choice lacks array 'layout_order'");
    } else {
      for (const Value& e : *order->arr)
        if (!e.is(Value::Type::Number) || e.number < 0.0)
          problem("choice.layout_order has a negative / non-numeric mask");
    }
  }

  if (const Value* pr = section(doc, "predicted")) {
    want_num(*pr, "predicted", "total_seconds");
    want_num(*pr, "predicted", "comm_per_step");
    want_num(*pr, "predicted", "gstencils");
  }

  if (const Value* s = section(doc, "search")) {
    want_num(*s, "search", "candidates");
    want_num(*s, "search", "distinct");
    const Value* hash = s->find("config_hash");
    if (hash == nullptr || !hash->is(Value::Type::String)) {
      problem("search lacks string 'config_hash'");
    } else {
      const std::string& h = hash->str;
      bool ok = h.size() == 18 && h[0] == '0' && h[1] == 'x';
      for (std::size_t i = 2; ok && i < h.size(); ++i)
        ok = std::isxdigit(static_cast<unsigned char>(h[i])) != 0;
      if (!ok)
        problem("search.config_hash is not \"0x\" + 16 hex digits: '" + h +
                "'");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <brickx_tune-binary> <tuned_config.json>\n",
                 argv[0]);
    return 2;
  }
  const std::string tuner = argv[1];

  // 1. The committed artifact conforms to the v1 shape.
  const Value committed = Parser(read_file(argv[2])).parse();
  validate_artifact(committed, "committed artifact");

  // 2. Determinism through the CLI: the same problem tuned with different
  //    worker-thread counts must emit byte-identical artifacts.
  const std::string out1 = "tune_schema_check_1.json";
  const std::string out2 = "tune_schema_check_2.json";
  const std::string base = "\"" + tuner +
                           "\" --machine=theta -g 32 -n 4 --rpn=2 "
                           "--fabric=flat --steps=2 --layout-budget=50";
  const std::string cmd1 = base + " --threads=1 --out=" + out1 + " > /dev/null";
  const std::string cmd2 = base + " --threads=3 --out=" + out2 + " > /dev/null";
  std::printf("running: %s\n", cmd1.c_str());
  if (std::system(cmd1.c_str()) != 0) {
    std::fprintf(stderr, "brickx_tune invocation failed\n");
    return 2;
  }
  std::printf("running: %s\n", cmd2.c_str());
  if (std::system(cmd2.c_str()) != 0) {
    std::fprintf(stderr, "brickx_tune invocation failed\n");
    return 2;
  }
  const std::string bytes1 = read_file(out1);
  const std::string bytes2 = read_file(out2);
  if (bytes1.empty()) problem("1-thread run wrote an empty artifact");
  if (bytes1 != bytes2)
    problem("artifacts differ across --threads=1 / --threads=3 — the tuner "
            "lost byte-determinism");

  // The fresh artifact must conform too (catches emit-side drift the
  // committed file can't see).
  validate_artifact(Parser(bytes1).parse(), "fresh artifact");

  if (g_errors != 0) {
    std::fprintf(stderr, "%d schema violation(s)\n", g_errors);
    return 1;
  }
  std::printf("ok: %s conforms; CLI re-tune is byte-deterministic\n", argv[2]);
  return 0;
}
