// Differential property suite for the explicit-SIMD kernel tier
// (DESIGN.md §16): every width in {1, 2, 4, 8} must be bit-identical to
// both the scalar fast path and the naive per-access kernels over
// full-domain / ghost-adjacent / clipped / empty boxes × both stencils ×
// both brick sizes — widths the hardware lacks are compiler-emulated, so
// the whole matrix runs in one build. Plus the alignment guard
// (simd_storage_reason) unit-tested for every width, the BrickStorage
// alignment contract, and the AoSoA per-field dispatch.

#include "stencil/kernel_engine.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "common/simd.h"
#include "core/brick.h"
#include "stencil/stencils.h"

namespace brickx::stencil {
namespace {

void fill_random(const BrickDecomp<3>& dec, BrickStorage& store, Rng& rng) {
  for (std::int64_t b = 0; b < dec.total_brick_count(); ++b) {
    double* p = store.brick(b);
    for (std::int64_t e = 0;
         e < dec.elements_per_brick() * store.fields(); ++e)
      p[e] = rng.uniform() * 2.0 - 1.0;
  }
}

template <int B, int W>
void apply_simd(const BrickDecomp<3>& dec, const Brick<B, B, B>& out,
                const Brick<B, B, B>& in, const Box<3>& box, bool use125) {
  if (use125) {
    engine_apply125_simd<B, B, B, W>(dec, out, in, box);
  } else {
    engine_apply7_simd<B, B, B, W>(dec, out, in, box);
  }
}

/// One width's outputs vs the naive kernel's, byte-compared over the whole
/// storage (catches stray writes as well as wrong values).
template <int B, int W>
void expect_width_identical(const Box<3>& box, bool use125,
                            std::uint64_t seed) {
  const std::int64_t g = B;
  BrickDecomp<3> dec({16, 16, 16}, g, Vec3::fill(B), surface3d());
  BrickInfo<3> info = dec.brick_info();
  BrickStorage sin = dec.allocate(1);
  BrickStorage out_simd = dec.allocate(1), out_naive = dec.allocate(1);
  Rng rng(seed);
  fill_random(dec, sin, rng);
  Brick<B, B, B> bin(&info, &sin, 0);
  Brick<B, B, B> bsimd(&info, &out_simd, 0), bnaive(&info, &out_naive, 0);
  apply_simd<B, W>(dec, bsimd, bin, box, use125);
  if (use125) {
    apply125_bricks_naive<B, B, B>(dec, bnaive, bin, box);
  } else {
    apply7_bricks_naive<B, B, B>(dec, bnaive, bin, box);
  }
  EXPECT_EQ(
      std::memcmp(out_simd.data(), out_naive.data(), out_simd.bytes()), 0)
      << "B=" << B << " W=" << W << " use125=" << use125 << " seed=" << seed
      << " box=[" << box.lo[0] << "," << box.lo[1] << "," << box.lo[2]
      << ")-[" << box.hi[0] << "," << box.hi[1] << "," << box.hi[2] << ")";
}

/// Boxes exercising every engine path (mirrors stencil_kernel_test).
template <int B>
std::vector<Box<3>> test_boxes(bool use125, std::uint64_t seed) {
  const std::int64_t g = B, r = use125 ? 2 : 1;
  std::vector<Box<3>> boxes;
  boxes.push_back(Box<3>{{0, 0, 0}, {16, 16, 16}});  // full domain
  boxes.push_back(
      expansion_output_box<3>({16, 16, 16}, g, r, 0));  // ghost-adjacent
  boxes.push_back(
      Box<3>{{B, B, B}, {2 * B, 2 * B, 2 * B}});  // one interior brick
  boxes.push_back(Box<3>{{3, 5, 7}, {4, 6, 8}});  // clipped single cell
  boxes.push_back(Box<3>{{0, 0, 0}, {0, 0, 0}});  // empty
  Rng rng(seed);
  for (int t = 0; t < 6; ++t) {
    Box<3> b;
    for (int a = 0; a < 3; ++a) {
      const std::int64_t span = 16 + 2 * (g - r);
      const std::int64_t lo =
          -(g - r) + static_cast<std::int64_t>(
                         rng.below(static_cast<std::uint64_t>(span)));
      const std::int64_t len = 1 + static_cast<std::int64_t>(rng.below(
                                       static_cast<std::uint64_t>(
                                           16 + (g - r) - lo)));
      b.lo[a] = lo;
      b.hi[a] = lo + len;
    }
    boxes.push_back(b);
  }
  return boxes;
}

template <int B>
void sweep_widths(bool use125) {
  std::uint64_t seed = use125 ? 5000 : 6000;
  for (const Box<3>& b : test_boxes<B>(use125, seed)) {
    ++seed;
    // W = 1 is the scalar fast path; B = 4 at W = 8 exercises the
    // row-not-divisible fallback (4 % 8 != 0) — still bit-identical.
    expect_width_identical<B, 1>(b, use125, seed);
    expect_width_identical<B, 2>(b, use125, seed);
    expect_width_identical<B, 4>(b, use125, seed);
    expect_width_identical<B, 8>(b, use125, seed);
  }
}

class SimdWidths : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(SimdWidths, AllWidthsMatchNaiveBitExactly) {
  const bool use125 = std::get<0>(GetParam());
  if (std::get<1>(GetParam()) == 4) {
    sweep_widths<4>(use125);
  } else {
    sweep_widths<8>(use125);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, SimdWidths,
    ::testing::Combine(::testing::Bool(), ::testing::Values(4, 8)),
    [](const auto& i) {
      return std::string(std::get<0>(i.param) ? "p125" : "p7") + "_b" +
             std::to_string(std::get<1>(i.param));
    });

TEST(SimdWidths, ActiveWidthIsSupported) {
  const int w = simd::kActiveWidth;
  EXPECT_TRUE(w == 1 || w == 2 || w == 4 || w == 8) << w;
  EXPECT_TRUE(simd::kDetectedWidth == 1 || simd::kDetectedWidth == 2 ||
              simd::kDetectedWidth == 4 || simd::kDetectedWidth == 8);
  EXPECT_STRNE(simd::isa_name(), "");
}

// The guard predicate, width by width. A 64-byte-aligned base with
// lane-multiple strides is accepted at every width; each individual
// violation is diagnosed (and width 1 accepts anything — it IS the scalar
// path).
TEST(AlignmentGuard, EveryWidth) {
  alignas(64) static double buf[64];
  for (int w : {1, 2, 4, 8}) {
    SCOPED_TRACE(w);
    // Canonical 8^3 single-field brick geometry: always safe.
    EXPECT_EQ(simd_storage_reason(buf, 8 * 8 * 8 * sizeof(double), 0, 8, 0,
                                  w),
              nullptr);
    if (w == 1) {
      // Width 1 accepts even a misaligned base over a degenerate row.
      EXPECT_EQ(simd_storage_reason(reinterpret_cast<std::byte*>(buf) + 8,
                                    24, 0, 3, 1, w),
                nullptr);
      continue;
    }
    const std::size_t lane = static_cast<std::size_t>(w) * sizeof(double);
    // Brick row not a whole number of lanes (e.g. brick 4 at width 8).
    EXPECT_STREQ(simd_storage_reason(buf, 512, 0, w - 1, 0, w),
                 "brick row not a whole number of lanes");
    // Base misaligned by one double.
    EXPECT_STREQ(simd_storage_reason(reinterpret_cast<std::byte*>(buf) + 8,
                                     512, 0, w, 0, w),
                 "storage base not lane-aligned");
    // Brick stride leaves later bricks unaligned.
    EXPECT_STREQ(simd_storage_reason(buf, lane + 8, 0, w, 0, w),
                 "brick stride not a lane multiple");
    // Page padding granularity leaves later chunks unaligned.
    EXPECT_STREQ(simd_storage_reason(buf, 512, lane + 8, w, 0, w),
                 "chunk padding not a lane multiple");
    // AoSoA field offset inside the brick chunk must also be lane-aligned.
    EXPECT_STREQ(simd_storage_reason(buf, 512, 0, w, 1, w),
                 "field offset not a lane multiple");
  }
}

// Both storage backings must place the buffer base on the 64-byte
// boundary the aligned stores rely on, and 3-D brick geometries make
// every brick (and every AoSoA field slab) lane-aligned by construction.
TEST(AlignmentGuard, StorageContract) {
  for (int fields : {1, 2, 3}) {
    BrickDecomp<3> dec({16, 16, 16}, 8, {8, 8, 8}, surface3d());
    BrickStorage heap = dec.allocate(fields);
    BrickStorage mapped = dec.mmap_alloc(fields, 16384);
    for (BrickStorage* s : {&heap, &mapped}) {
      EXPECT_TRUE(simd::lane_aligned(s->data(), 8));
      EXPECT_EQ(s->brick_bytes() % simd::kAlign, 0u);
      for (std::int64_t b = 0; b < s->brick_count(); ++b)
        EXPECT_TRUE(simd::lane_aligned(s->brick(b), 8)) << b;
      for (int f = 0; f < fields; ++f)
        EXPECT_EQ(simd_storage_reason(s->data(), s->brick_bytes(),
                                      s->page_size(), 8,
                                      f * dec.elements_per_brick(), 8),
                  nullptr)
            << "field " << f;
    }
  }
}

// AoSoA dispatch: computing field f of a multi-field storage through the
// elem_offset accessor must be bit-identical to the same compute over a
// single-field storage, at every width.
TEST(SimdWidths, MultiFieldOffsetsMatchSingleField) {
  constexpr int B = 8;
  constexpr int kFields = 3;
  BrickDecomp<3> dec({16, 16, 16}, B, Vec3::fill(B), surface3d());
  BrickInfo<3> info = dec.brick_info();
  BrickStorage in_multi = dec.allocate(kFields);
  BrickStorage out_multi = dec.allocate(kFields);
  Rng rng(777);
  fill_random(dec, in_multi, rng);
  const Box<3> box{{0, 0, 0}, {16, 16, 16}};
  for (bool use125 : {false, true}) {
    for (int f = 0; f < kFields; ++f) {
      const std::int64_t off = f * dec.elements_per_brick();
      Brick<B, B, B> bin(&info, &in_multi, off);
      Brick<B, B, B> bout(&info, &out_multi, off);
      // Single-field copy of field f.
      BrickStorage in_one = dec.allocate(1), out_one = dec.allocate(1);
      for (std::int64_t b = 0; b < dec.total_brick_count(); ++b)
        std::memcpy(in_one.brick(b), in_multi.brick(b) + off,
                    static_cast<std::size_t>(dec.elements_per_brick()) *
                        sizeof(double));
      Brick<B, B, B> sin(&info, &in_one, 0), sout(&info, &out_one, 0);
      apply_simd<B, 2>(dec, bout, bin, box, use125);
      apply_simd<B, 2>(dec, sout, sin, box, use125);
      for (std::int64_t b = 0; b < dec.total_brick_count(); ++b)
        ASSERT_EQ(std::memcmp(out_multi.brick(b) + off, out_one.brick(b),
                              static_cast<std::size_t>(
                                  dec.elements_per_brick()) *
                                  sizeof(double)),
                  0)
            << "use125=" << use125 << " field=" << f << " brick=" << b;
    }
  }
}

}  // namespace
}  // namespace brickx::stencil
