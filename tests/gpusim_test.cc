#include "gpusim/device.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace brickx::gpu {
namespace {

GpuModel small_pages() {
  GpuModel m;
  m.page_size = 4096;
  m.fault_per_page = 1e-6;
  m.link_bw = 50e9;
  return m;
}

TEST(Device, ClassifyRegisteredRanges) {
  Device dev(small_pages());
  std::vector<std::byte> a(8192), b(8192), c(64);
  dev.register_range(a.data(), a.size(), mpi::MemSpace::Device);
  dev.register_range(b.data(), b.size(), mpi::MemSpace::Unified);
  EXPECT_EQ(dev.classify(a.data()), mpi::MemSpace::Device);
  EXPECT_EQ(dev.classify(a.data() + 8191), mpi::MemSpace::Device);
  EXPECT_EQ(dev.classify(b.data() + 100), mpi::MemSpace::Unified);
  EXPECT_EQ(dev.classify(c.data()), mpi::MemSpace::Host);
  dev.unregister_range(a.data());
  EXPECT_EQ(dev.classify(a.data()), mpi::MemSpace::Host);
  dev.unregister_range(b.data());
}

TEST(Device, OverlapAndDoubleUnregisterRejected) {
  Device dev(small_pages());
  std::vector<std::byte> a(8192);
  dev.register_range(a.data(), a.size(), mpi::MemSpace::Device);
  EXPECT_THROW(
      dev.register_range(a.data() + 4096, 4096, mpi::MemSpace::Device),
      brickx::Error);
  dev.unregister_range(a.data());
  EXPECT_THROW(dev.unregister_range(a.data()), brickx::Error);
}

TEST(Device, UnifiedPagesMigrateOnHostTouch) {
  Device dev(small_pages());
  std::vector<std::byte> um(16 * 4096);
  dev.register_range(um.data(), um.size(), mpi::MemSpace::Unified);
  // Initially device-resident: touching 2 pages from the host costs two
  // faults plus transfer.
  const double t1 = dev.touch_host(um.data() + 4096, 2 * 4096);
  EXPECT_NEAR(t1, 2 * 1e-6 + 2 * 4096.0 / 50e9, 1e-12);
  EXPECT_EQ(dev.pages_migrated(), 2);
  // Second touch: already host-resident, free.
  EXPECT_EQ(dev.touch_host(um.data() + 4096, 2 * 4096), 0.0);
  // Kernel touch pulls them back.
  const double t2 = dev.touch_device(um.data(), um.size());
  EXPECT_NEAR(t2, 2 * 1e-6 + 2 * 4096.0 / 50e9, 1e-12);
  EXPECT_EQ(dev.pages_migrated(), 4);
  dev.unregister_range(um.data());
}

TEST(Device, PartialPageTouchMovesWholePage) {
  // The unaligned-region effect of Figure 15: touching one byte migrates
  // the whole page (and anything else living on it).
  Device dev(small_pages());
  std::vector<std::byte> um(4 * 4096);
  dev.register_range(um.data(), um.size(), mpi::MemSpace::Unified);
  (void)dev.touch_host(um.data() + 5000, 1);
  EXPECT_EQ(dev.pages_migrated(), 1);
  // The rest of page 1 is now host-side: device touch of a neighboring
  // byte on that page pays a migration even though the host only "needed"
  // one byte.
  EXPECT_GT(dev.touch_device(um.data() + 4096, 8), 0.0);
  dev.unregister_range(um.data());
}

TEST(Device, DeviceRangesNeverFault) {
  Device dev(small_pages());
  std::vector<std::byte> d(4 * 4096);
  dev.register_range(d.data(), d.size(), mpi::MemSpace::Device);
  EXPECT_EQ(dev.touch_host(d.data(), d.size()), 0.0);  // GPUDirect path
  EXPECT_EQ(dev.touch_device(d.data(), d.size()), 0.0);
  EXPECT_EQ(dev.pages_migrated(), 0);
  dev.unregister_range(d.data());
}

TEST(Device, AliasRedirectsResidency) {
  Device dev(small_pages());
  std::vector<std::byte> um(8 * 4096);
  std::vector<std::byte> view(2 * 4096);  // stands in for an mmap view
  dev.register_range(um.data(), um.size(), mpi::MemSpace::Unified);
  // view[0..2p) aliases canonical pages 3..5.
  dev.register_alias(view.data(), view.size(), um.data() + 3 * 4096);
  EXPECT_EQ(dev.classify(view.data()), mpi::MemSpace::Unified);
  // Touching through the alias migrates the canonical pages...
  EXPECT_GT(dev.touch_host(view.data(), view.size()), 0.0);
  // ...so touching the canonical range again is free,
  EXPECT_EQ(dev.touch_host(um.data() + 3 * 4096, 2 * 4096), 0.0);
  // and a kernel touching the canonical range pays to pull them back.
  EXPECT_GT(dev.touch_device(um.data() + 3 * 4096, 4096), 0.0);
  dev.unregister_range(view.data());
  dev.unregister_range(um.data());
}

TEST(Device, AliasValidation) {
  Device dev(small_pages());
  std::vector<std::byte> um(4 * 4096), dv(4096), v(4096);
  dev.register_range(um.data(), um.size(), mpi::MemSpace::Unified);
  dev.register_range(dv.data(), dv.size(), mpi::MemSpace::Device);
  // Alias beyond the canonical range.
  EXPECT_THROW(dev.register_alias(v.data(), 4096, um.data() + 3 * 4096 + 1024),
               brickx::Error);
  // Alias of a device (non-unified) range.
  EXPECT_THROW(dev.register_alias(v.data(), 4096, dv.data()), brickx::Error);
  // Alias of unregistered memory.
  EXPECT_THROW(dev.register_alias(v.data(), 4096, v.data()), brickx::Error);
  dev.unregister_range(um.data());
  dev.unregister_range(dv.data());
}

TEST(Device, MemcpyStagesAndCharges) {
  Device dev(small_pages());
  std::vector<std::byte> src(4096, std::byte{7}), dst(4096);
  const double t = dev.memcpy_h2d(dst.data(), src.data(), 4096);
  EXPECT_EQ(dst[4095], std::byte{7});
  EXPECT_GT(t, 4096.0 / 50e9);
}

TEST(Device, KernelRoofline) {
  GpuModel m;  // V100 defaults
  Device dev(m);
  // Memory-bound: 16 B/cell at 828.8 GB/s.
  const double t_mem = dev.kernel_seconds(1 << 20, 8.0, 16.0);
  EXPECT_NEAR(t_mem, (1 << 20) * 16.0 / 828.8e9 + m.launch_overhead, 1e-9);
  // Flop-bound when intensity is extreme.
  const double t_flop = dev.kernel_seconds(1 << 20, 1e6, 16.0);
  EXPECT_NEAR(t_flop, (1 << 20) * 1e6 / 7.8e12 + m.launch_overhead, 1e-6);
}

TEST(Device, HooksDriveSimmpi) {
  // A UM buffer on rank 0 is sent to rank 1: the send must charge fault
  // time (device->host migration) on top of the wire cost.
  GpuModel gm = small_pages();
  mpi::NetModel nm;
  nm.send_overhead = 0;
  nm.recv_overhead = 0;
  nm.inter_node = {0.0, 1e18};  // isolate the fault cost
  nm.um_alpha_extra = 0;
  Device dev(gm);
  mpi::Runtime rt(2, nm);
  rt.set_mem_hooks(dev.hooks());
  std::vector<std::byte> um(4 * 4096);
  dev.register_range(um.data(), um.size(), mpi::MemSpace::Unified);
  rt.run([&](mpi::Comm& c) {
    if (c.rank() == 0) {
      c.send(um.data(), 4 * 4096, 1, 0);
      EXPECT_NEAR(c.clock().now(), 4 * 1e-6 + 4 * 4096.0 / 50e9, 1e-12);
    } else {
      std::vector<std::byte> host(4 * 4096);
      c.recv(host.data(), host.size(), 0, 0);
    }
  });
  dev.unregister_range(um.data());
}

}  // namespace
}  // namespace brickx::gpu
