// Artifact-contract check (plain main, registered with ctest as
// obs_metrics_schema): runs a bench binary with --metrics-out and validates
// the emitted metrics JSON against the checked-in schema
// tests/data/metrics_schema.json. The schema pins the shape benches
// promise downstream tooling: top-level keys, per-run keys, metric kinds,
// per-kind fields, and the metric names every harness run must record.
//
// Usage: obs_schema_validate <bench-binary> <schema.json>
// (the bench is invoked as: <bench-binary> -s 16 --metrics-out=<tmp>)
//
// The JSON parser lives in json_mini.h, shared with the other validators.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "json_mini.h"

namespace {

using jsonmini::Parser;
using jsonmini::Value;
using jsonmini::read_file;

// ---- validation -----------------------------------------------------------

int g_errors = 0;

void problem(const std::string& what) {
  std::fprintf(stderr, "schema violation: %s\n", what.c_str());
  ++g_errors;
}

std::vector<std::string> string_list(const Value& schema, const char* key) {
  std::vector<std::string> out;
  const Value* v = schema.find(key);
  if (v == nullptr || !v->is(Value::Type::Array)) {
    problem(std::string("schema file lacks string array '") + key + "'");
    return out;
  }
  for (const Value& e : *v->arr) out.push_back(e.str);
  return out;
}

void validate_metric(const std::string& run_label, const std::string& name,
                     const Value& m, const std::vector<std::string>& kinds,
                     const Value& kind_fields) {
  const std::string where = run_label + "." + name;
  if (!m.is(Value::Type::Object)) {
    problem(where + " is not an object");
    return;
  }
  const Value* kind = m.find("kind");
  if (kind == nullptr || !kind->is(Value::Type::String)) {
    problem(where + " has no string 'kind'");
    return;
  }
  bool known = false;
  for (const std::string& k : kinds) known = known || k == kind->str;
  if (!known) {
    problem(where + " has unknown kind '" + kind->str + "'");
    return;
  }
  const Value* fields = kind_fields.find(kind->str);
  if (fields == nullptr || !fields->is(Value::Type::Array)) {
    problem("schema kind_fields lacks '" + kind->str + "'");
    return;
  }
  for (const Value& f : *fields->arr) {
    const Value* fv = m.find(f.str);
    if (fv == nullptr || !fv->is(Value::Type::Number))
      problem(where + " (" + kind->str + ") lacks numeric field '" + f.str +
              "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <bench-binary> <schema.json>\n", argv[0]);
    return 2;
  }
  const std::string bench = argv[1];
  const std::string out_path = "obs_metrics_check.json";

  const std::string cmd =
      "\"" + bench + "\" -s 16 --metrics-out=" + out_path + " > /dev/null";
  std::printf("running: %s\n", cmd.c_str());
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "bench invocation failed\n");
    return 2;
  }

  const Value schema = Parser(read_file(argv[2])).parse();
  const Value doc = Parser(read_file(out_path)).parse();

  for (const std::string& key : string_list(schema, "top_required")) {
    if (doc.find(key) == nullptr) problem("missing top-level key '" + key + "'");
  }
  const Value* version = doc.find("version");
  if (version == nullptr || !version->is(Value::Type::Number) ||
      version->number != 1.0)
    problem("'version' must be the number 1");

  const Value* runs = doc.find("runs");
  if (runs == nullptr || !runs->is(Value::Type::Array) || runs->arr->empty()) {
    problem("'runs' must be a non-empty array");
    return 1;
  }

  const std::vector<std::string> run_required =
      string_list(schema, "run_required");
  const std::vector<std::string> kinds = string_list(schema, "metric_kinds");
  const std::vector<std::string> required_metrics =
      string_list(schema, "required_metrics");
  const Value* kind_fields = schema.find("kind_fields");
  if (kind_fields == nullptr || !kind_fields->is(Value::Type::Object)) {
    problem("schema file lacks object 'kind_fields'");
    return 1;
  }

  for (const Value& run : *runs->arr) {
    const Value* label_v = run.find("label");
    const std::string label =
        label_v != nullptr && label_v->is(Value::Type::String) ? label_v->str
                                                               : "<run>";
    for (const std::string& key : run_required) {
      if (run.find(key) == nullptr)
        problem("run " + label + " missing key '" + key + "'");
    }
    const Value* nranks = run.find("nranks");
    if (nranks != nullptr &&
        (!nranks->is(Value::Type::Number) || nranks->number < 1.0))
      problem("run " + label + " has non-positive nranks");
    const Value* metrics = run.find("metrics");
    if (metrics == nullptr || !metrics->is(Value::Type::Object)) continue;
    for (const auto& [name, m] : *metrics->obj)
      validate_metric(label, name, m, kinds, *kind_fields);
    for (const std::string& want : required_metrics) {
      if (metrics->find(want) == nullptr)
        problem("run " + label + " lacks required metric '" + want + "'");
    }
  }

  if (g_errors != 0) {
    std::fprintf(stderr, "%d schema violation(s)\n", g_errors);
    return 1;
  }
  std::printf("ok: %zu run(s) conform to %s\n", runs->arr->size(), argv[2]);
  return 0;
}
