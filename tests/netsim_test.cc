// netsim unit tests: topology route invariants, fair-share conservation /
// monotonicity / determinism, and mapping validity.

#include <algorithm>
#include <random>

#include "gtest/gtest.h"
#include "netsim/fairshare.h"
#include "netsim/mapping.h"
#include "netsim/topology.h"

namespace brickx::netsim {
namespace {

constexpr double kBw = 1e9;
constexpr double kLat = 1e-6;

/// Every precomputed route must chain: start at `a`, each link's dst is the
/// next link's src, end at `b`. In switched topologies the interior
/// vertices must all be switches (`switched` = true); in the torus the
/// terminal nodes route for each other.
void expect_routes_chain(const Topology& t, bool switched = true) {
  for (int a = 0; a < t.nodes(); ++a) {
    for (int b = 0; b < t.nodes(); ++b) {
      const auto& r = t.route(a, b);
      if (a == b) {
        EXPECT_TRUE(r.empty());
        continue;
      }
      ASSERT_FALSE(r.empty()) << a << "->" << b;
      int at = a;
      for (int id : r) {
        const Link& l = t.links()[static_cast<std::size_t>(id)];
        EXPECT_EQ(l.src, at) << a << "->" << b;
        at = l.dst;
      }
      EXPECT_EQ(at, b);
      if (switched) {
        for (std::size_t i = 1; i < r.size(); ++i) {
          const Link& l = t.links()[static_cast<std::size_t>(r[i])];
          EXPECT_EQ(t.vertex_kind(l.src), VertexKind::Switch);
        }
      }
    }
  }
}

TEST(Topology, SingleSwitchRoutesAreTwoHops) {
  const Topology t = Topology::single_switch(5, kBw, kLat);
  expect_routes_chain(t);
  for (int a = 0; a < 5; ++a)
    for (int b = 0; b < 5; ++b)
      if (a != b) {
        EXPECT_EQ(t.hop_count(a, b), 2);
      }
  EXPECT_DOUBLE_EQ(t.path_latency(t.route(0, 3)), 2 * kLat);
}

TEST(Topology, FatTreeHopCounts) {
  // 8 nodes, 2 per leaf, 2 spines: same leaf = 2 hops, cross-leaf = 4.
  const Topology t = Topology::fat_tree(8, 2, 2, kBw, kLat);
  expect_routes_chain(t);
  EXPECT_EQ(t.hop_count(0, 1), 2);   // same leaf
  EXPECT_EQ(t.hop_count(0, 2), 4);   // via a spine
  EXPECT_EQ(t.hop_count(6, 1), 4);
}

TEST(Topology, FatTreeHopSymmetry) {
  const Topology t = Topology::fat_tree(8, 2, 2, kBw, kLat);
  for (int a = 0; a < t.nodes(); ++a)
    for (int b = 0; b < t.nodes(); ++b)
      EXPECT_EQ(t.hop_count(a, b), t.hop_count(b, a));
}

TEST(Topology, TorusMinimalRouting) {
  const Topology t = Topology::torus3d(4, 3, 2, kBw, kLat);
  expect_routes_chain(t, /*switched=*/false);
  // Node ids are x + 4*(y + 3*z). 0 -> +1 in x: one hop.
  EXPECT_EQ(t.hop_count(0, 1), 1);
  // 0 -> (3,0,0): one hop the wrap-around way, not three.
  EXPECT_EQ(t.hop_count(0, 3), 1);
  // 0 -> (2,0,0): distance 2 either way (tie); still minimal.
  EXPECT_EQ(t.hop_count(0, 2), 2);
  // 0 -> (1,1,1): one hop per axis.
  EXPECT_EQ(t.hop_count(0, 1 + 4 * (1 + 3 * 1)), 3);
  for (int a = 0; a < t.nodes(); ++a)
    for (int b = 0; b < t.nodes(); ++b)
      EXPECT_EQ(t.hop_count(a, b), t.hop_count(b, a));
}

TEST(Topology, DragonflyMinimalRoutes) {
  const Topology t = Topology::dragonfly(3, 2, 2, kBw, kLat);
  expect_routes_chain(t);
  EXPECT_EQ(t.nodes(), 12);
  // Same router: up, down.
  EXPECT_EQ(t.hop_count(0, 1), 2);
  // Same group, other router: up, local, down.
  EXPECT_EQ(t.hop_count(0, 2), 3);
  // Cross-group: at most up + local + global + local + down.
  for (int a = 0; a < t.nodes(); ++a)
    for (int b = 0; b < t.nodes(); ++b)
      if (a != b) {
        EXPECT_LE(t.hop_count(a, b), 5);
      }
}

TEST(Topology, DeterministicConstruction) {
  const Topology t1 = Topology::dragonfly(4, 2, 2, kBw, kLat);
  const Topology t2 = Topology::dragonfly(4, 2, 2, kBw, kLat);
  ASSERT_EQ(t1.links().size(), t2.links().size());
  for (int a = 0; a < t1.nodes(); ++a)
    for (int b = 0; b < t1.nodes(); ++b)
      EXPECT_EQ(t1.route(a, b), t2.route(a, b));
}

// ---------------------------------------------------------------------------
// Fair share
// ---------------------------------------------------------------------------

TEST(FairShare, SingleFlowRunsAtLinkRate) {
  std::vector<Flow> flows(1);
  flows[0].start = 1.0;
  flows[0].bytes = 2e9;
  flows[0].route = {0};
  const auto fin = solve_fair_share(flows, {kBw});
  EXPECT_DOUBLE_EQ(fin[0], 1.0 + 2.0);
}

TEST(FairShare, TwoFlowsHalveThenRecover) {
  // Both start at 0 on the same 1 GB/s link with 1 GB each: they share at
  // 0.5 GB/s until t=2 when both finish together.
  std::vector<Flow> flows(2);
  for (int i = 0; i < 2; ++i) {
    flows[static_cast<std::size_t>(i)].bytes = 1e9;
    flows[static_cast<std::size_t>(i)].route = {0};
    flows[static_cast<std::size_t>(i)].src = i;
  }
  const auto fin = solve_fair_share(flows, {kBw});
  EXPECT_DOUBLE_EQ(fin[0], 2.0);
  EXPECT_DOUBLE_EQ(fin[1], 2.0);
}

TEST(FairShare, StaggeredFlowsAnalytic) {
  // Flow A: 2 GB at t=0. Flow B: 1 GB at t=1. [0,1): A alone at 1 GB/s
  // (1 GB left). [1,?): both at 0.5 — A and B drain their 1 GB in 2 s.
  std::vector<Flow> flows(2);
  flows[0].bytes = 2e9;
  flows[0].route = {0};
  flows[0].src = 0;
  flows[1].start = 1.0;
  flows[1].bytes = 1e9;
  flows[1].route = {0};
  flows[1].src = 1;
  const auto fin = solve_fair_share(flows, {kBw});
  EXPECT_DOUBLE_EQ(fin[0], 3.0);
  EXPECT_DOUBLE_EQ(fin[1], 3.0);
}

TEST(FairShare, ConservationOnSharedLink) {
  // Total bytes / link rate lower-bounds the last finish; with all flows on
  // one link it is exact.
  std::vector<Flow> flows(5);
  double total = 0.0;
  for (int i = 0; i < 5; ++i) {
    auto& f = flows[static_cast<std::size_t>(i)];
    f.bytes = 1e8 * (i + 1);
    f.route = {0};
    f.src = i;
    total += f.bytes;
  }
  const auto fin = solve_fair_share(flows, {kBw});
  const double last = *std::max_element(fin.begin(), fin.end());
  EXPECT_DOUBLE_EQ(last, total / kBw);
}

TEST(FairShare, MaxMinRespectsTightestLink) {
  // Flow 0 crosses links {0,1}; flow 1 crosses {1}. Link 1 is the
  // bottleneck: each gets 0.5 GB/s there even though link 0 has headroom.
  std::vector<Flow> flows(2);
  flows[0].bytes = 1e9;
  flows[0].route = {0, 1};
  flows[0].src = 0;
  flows[1].bytes = 1e9;
  flows[1].route = {1};
  flows[1].src = 1;
  std::vector<LinkUse> use(2);
  const auto fin = solve_fair_share(flows, {10 * kBw, kBw}, &use);
  EXPECT_DOUBLE_EQ(fin[0], 2.0);
  EXPECT_DOUBLE_EQ(fin[1], 2.0);
  EXPECT_DOUBLE_EQ(use[1].mean_sharing(), 2.0);
  EXPECT_EQ(use[1].max_concurrent, 2);
}

TEST(FairShare, MonotonicInLoad) {
  // Adding a competing flow never finishes the original flow earlier.
  std::vector<Flow> base(1);
  base[0].bytes = 1e9;
  base[0].route = {0};
  const double alone = solve_fair_share(base, {kBw})[0];
  std::vector<Flow> both = base;
  both.push_back(Flow{});
  both[1].bytes = 5e8;
  both[1].route = {0};
  both[1].src = 1;
  const double contended = solve_fair_share(both, {kBw})[0];
  EXPECT_GE(contended, alone);
}

TEST(FairShare, DeterministicUnderInputShuffle) {
  // The canonical (start, src, seq) ordering makes the result independent
  // of the order flows were appended in — the property the contention
  // fabric's multi-threaded callers rely on.
  std::mt19937 rng(7);
  std::vector<Flow> flows(40);
  for (int i = 0; i < 40; ++i) {
    auto& f = flows[static_cast<std::size_t>(i)];
    f.start = static_cast<double>(rng() % 100) * 1e-3;
    f.bytes = static_cast<double>(1 + rng() % 1000) * 1e6;
    f.route = {static_cast<int>(rng() % 4)};
    f.src = i % 8;
    f.seq = i / 8;
  }
  std::vector<std::size_t> perm(flows.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::shuffle(perm.begin(), perm.end(), rng);
  std::vector<Flow> shuffled;
  for (std::size_t i : perm) shuffled.push_back(flows[i]);

  const auto a = solve_fair_share(flows, {kBw, kBw, kBw, kBw});
  const auto b = solve_fair_share(shuffled, {kBw, kBw, kBw, kBw});
  for (std::size_t i = 0; i < perm.size(); ++i)
    EXPECT_EQ(a[perm[i]], b[i]) << "flow " << perm[i];
}

TEST(FairShare, ZeroByteFlowsFinishAtStart) {
  std::vector<Flow> flows(1);
  flows[0].start = 3.0;
  flows[0].route = {0};
  EXPECT_DOUBLE_EQ(solve_fair_share(flows, {kBw})[0], 3.0);
}

// ---------------------------------------------------------------------------
// Mapping
// ---------------------------------------------------------------------------

void expect_valid_map(const std::vector<int>& m, int nranks, int rpn) {
  ASSERT_EQ(m.size(), static_cast<std::size_t>(nranks));
  const int nodes = (nranks + rpn - 1) / rpn;
  std::vector<int> fill(static_cast<std::size_t>(nodes), 0);
  for (int node : m) {
    ASSERT_GE(node, 0);
    ASSERT_LT(node, nodes);
    ++fill[static_cast<std::size_t>(node)];
  }
  for (int f : fill) EXPECT_LE(f, rpn);
}

std::vector<CommEdge> ring_graph(int n) {
  std::vector<CommEdge> g;
  for (int i = 0; i < n; ++i)
    g.push_back(CommEdge{i, (i + 1) % n, 100.0});
  return g;
}

TEST(Mapping, AllStrategiesProduceValidAssignments) {
  const auto g = ring_graph(12);
  for (MapKind k : {MapKind::Block, MapKind::RoundRobin, MapKind::Greedy})
    expect_valid_map(make_map(k, 12, 4, g), 12, 4);
}

TEST(Mapping, BlockMatchesFlatNodeOf) {
  const auto m = block_map(12, 4);
  for (int r = 0; r < 12; ++r) EXPECT_EQ(m[static_cast<std::size_t>(r)], r / 4);
}

TEST(Mapping, GreedyBeatsRoundRobinOnARing) {
  // On a ring, contiguous blocks cut exactly one edge per node boundary;
  // round-robin cuts every edge. Greedy should rediscover the block-like
  // optimum from the graph alone.
  const auto g = ring_graph(16);
  const double cut_rr = cut_bytes(round_robin_map(16, 4), g);
  const double cut_greedy = cut_bytes(greedy_map(16, 4, g), g);
  EXPECT_LT(cut_greedy, cut_rr);
  EXPECT_DOUBLE_EQ(cut_greedy, cut_bytes(block_map(16, 4), g));
}

TEST(Mapping, GreedyIsDeterministic) {
  const auto g = ring_graph(24);
  EXPECT_EQ(greedy_map(24, 6, g), greedy_map(24, 6, g));
}

TEST(Mapping, ParseRoundTrips) {
  for (MapKind k : {MapKind::Block, MapKind::RoundRobin, MapKind::Greedy})
    EXPECT_EQ(parse_mapping(map_name(k)), k);
  EXPECT_FALSE(parse_mapping("nope").has_value());
}

}  // namespace
}  // namespace brickx::netsim
