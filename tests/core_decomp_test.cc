#include "core/decomp.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "memmap/pagesize.h"

namespace brickx {
namespace {

BrickDecomp<3> make_decomp(std::int64_t n_cells = 32, std::int64_t brick = 8,
                           std::int64_t ghost = 8) {
  return BrickDecomp<3>({n_cells, n_cells, n_cells}, ghost,
                        {brick, brick, brick}, surface3d());
}

TEST(Decomp, BasicGeometry) {
  auto dec = make_decomp();
  EXPECT_EQ(dec.brick_grid(), (Vec3{4, 4, 4}));
  EXPECT_EQ(dec.ghost_layers(), (Vec3{1, 1, 1}));
  EXPECT_EQ(dec.elements_per_brick(), 512);
  EXPECT_EQ(dec.total_brick_count(), 6 * 6 * 6);
  EXPECT_EQ(dec.own_brick_count(), 4 * 4 * 4);
  EXPECT_EQ(dec.surface_region_count(), 26);
  EXPECT_EQ(dec.regions().size(), 26u + 1 + 98);
}

TEST(Decomp, InvalidParametersRejected) {
  // Domain not a multiple of the brick.
  EXPECT_THROW(BrickDecomp<3>({30, 32, 32}, 8, {8, 8, 8}, surface3d()),
               Error);
  // Ghost not a multiple of the brick.
  EXPECT_THROW(BrickDecomp<3>({32, 32, 32}, 4, {8, 8, 8}, surface3d()),
               Error);
  // Subdomain thinner than two ghost widths.
  EXPECT_THROW(BrickDecomp<3>({8, 32, 32}, 8, {8, 8, 8}, surface3d()),
               Error);
  // Layout of the wrong dimensionality.
  EXPECT_THROW(BrickDecomp<3>({32, 32, 32}, 8, {8, 8, 8}, surface2d()),
               Error);
}

TEST(Decomp, StorageOrderIsSurfaceInteriorGhost) {
  auto dec = make_decomp();
  const auto& regions = dec.regions();
  using Kind = BrickDecomp<3>::Region::Kind;
  for (int o = 0; o < 26; ++o) {
    EXPECT_EQ(regions[static_cast<std::size_t>(o)].kind, Kind::Surface);
    // Surface chunks follow the layout order exactly.
    EXPECT_EQ(regions[static_cast<std::size_t>(o)].sigma.raw(),
              surface3d().order[static_cast<std::size_t>(o)].raw());
  }
  EXPECT_EQ(regions[26].kind, Kind::Interior);
  for (std::size_t o = 27; o < regions.size(); ++o)
    EXPECT_EQ(regions[o].kind, Kind::Ghost);
  // first_brick values are cumulative and gapless.
  std::int64_t next = 0;
  for (const auto& r : regions) {
    EXPECT_EQ(r.first_brick, next);
    next += r.brick_count;
  }
  EXPECT_EQ(next, dec.total_brick_count());
}

TEST(Decomp, GridMapsAreInverse) {
  auto dec = make_decomp(32, 8, 8);
  for (std::int64_t b = 0; b < dec.total_brick_count(); ++b) {
    EXPECT_EQ(dec.brick_at(dec.grid_of(b)), static_cast<std::int32_t>(b));
  }
  // Out-of-grid coordinates return kNoBrick.
  EXPECT_EQ(dec.brick_at(Vec3{-2, 0, 0}), BrickInfo<3>::kNoBrick);
  EXPECT_EQ(dec.brick_at(Vec3{0, 5, 0}), BrickInfo<3>::kNoBrick);
}

TEST(Decomp, OwnBricksComeFirst) {
  auto dec = make_decomp();
  for (std::int64_t b = 0; b < dec.total_brick_count(); ++b) {
    const Vec3& g = dec.grid_of(b);
    const bool interior_grid = g[0] >= 0 && g[0] < 4 && g[1] >= 0 &&
                               g[1] < 4 && g[2] >= 0 && g[2] < 4;
    EXPECT_EQ(interior_grid, b < dec.own_brick_count()) << "brick " << b;
  }
}

TEST(Decomp, AdjacencyIsSymmetricAndCorrect) {
  auto dec = make_decomp();
  const BrickInfo<3> info = dec.brick_info();
  ASSERT_EQ(info.brick_count(), dec.total_brick_count());
  const Vec3 ext3{3, 3, 3};
  for (std::int64_t b = 0; b < info.brick_count(); ++b) {
    const Vec3& g = dec.grid_of(b);
    for (std::int64_t code = 0; code < 27; ++code) {
      const Vec3 d = delinearize(code, ext3);
      Vec3 nbp = g;
      for (int a = 0; a < 3; ++a) nbp[a] += d[a] - 1;
      const std::int32_t nb =
          info.adj[static_cast<std::size_t>(b)][static_cast<std::size_t>(code)];
      EXPECT_EQ(nb, dec.brick_at(nbp));
      if (code == 13) {
        EXPECT_EQ(nb, b);  // center = self
      }
      if (nb != BrickInfo<3>::kNoBrick) {
        // Mirror direction from the neighbor leads back.
        const std::int64_t mirror =
            linearize(Vec3{2 - d[0], 2 - d[1], 2 - d[2]}, ext3);
        EXPECT_EQ(info.adj[static_cast<std::size_t>(nb)]
                          [static_cast<std::size_t>(mirror)],
                  b);
      }
    }
  }
}

TEST(Decomp, MinimalSubdomainHasNoInteriorOrFaceRegions) {
  auto dec = make_decomp(16, 8, 8);  // n = 2, gb = 1
  EXPECT_EQ(dec.own_brick_count(), 8);
  std::int64_t nonempty_surface = 0;
  for (int o = 0; o < dec.surface_region_count(); ++o)
    if (dec.regions()[static_cast<std::size_t>(o)].brick_count > 0)
      ++nonempty_surface;
  EXPECT_EQ(nonempty_surface, 8);  // only the corner regions remain
  EXPECT_EQ(dec.regions()[26].brick_count, 0);  // interior empty
}

TEST(Decomp, AllocatePackedStorage) {
  auto dec = make_decomp();
  BrickStorage s = dec.allocate(/*fields=*/2);
  EXPECT_EQ(s.brick_count(), dec.total_brick_count());
  EXPECT_EQ(s.fields(), 2);
  EXPECT_EQ(s.elements_per_brick(), 512);
  EXPECT_EQ(s.brick_bytes(), 2u * 512 * 8);
  EXPECT_EQ(s.page_size(), 0u);
  EXPECT_EQ(s.padding_bytes(), 0u);
  EXPECT_EQ(s.bytes(), static_cast<std::size_t>(dec.total_brick_count()) *
                           s.brick_bytes());
  // Chunks tile the buffer exactly.
  std::size_t at = 0;
  for (const auto& c : s.chunks()) {
    EXPECT_EQ(c.offset, at);
    EXPECT_EQ(c.padded_bytes, c.bytes);
    at += c.padded_bytes;
  }
  EXPECT_EQ(at, s.bytes());
}

TEST(Decomp, MmapAllocPageAligned) {
  auto dec = make_decomp();
  BrickStorage s = dec.mmap_alloc(/*fields=*/1);
  EXPECT_NE(s.file(), nullptr);
  EXPECT_EQ(s.page_size(), mm::host_page_size());
  for (const auto& c : s.chunks()) {
    EXPECT_EQ(c.offset % s.page_size(), 0u);
    EXPECT_EQ(c.padded_bytes % s.page_size(), 0u);
    EXPECT_GE(c.padded_bytes, c.bytes);
  }
  // An 8^3 double brick is exactly one 4 KiB page: zero padding when the
  // chunk sizes already align (the paper's Theta case).
  if (mm::host_page_size() == 4096) {
    EXPECT_EQ(s.padding_bytes(), 0u);
  }
}

TEST(Decomp, MmapAllocEmulatedLargePages) {
  auto dec = make_decomp();
  const std::size_t big = 16 * mm::host_page_size();  // e.g. 64 KiB
  BrickStorage s = dec.mmap_alloc(1, big);
  EXPECT_EQ(s.page_size(), big);
  EXPECT_GT(s.padding_bytes(), 0u);  // corners (1 brick = 4 KiB) now pad
  for (const auto& c : s.chunks()) EXPECT_EQ(c.offset % big, 0u);
}

TEST(Decomp, MmapAllocRejectsUnalignedPageSize) {
  auto dec = make_decomp();
  EXPECT_THROW((void)dec.mmap_alloc(1, mm::host_page_size() + 512), Error);
}

TEST(Decomp, NeighborOrdinalRoundtrip) {
  auto dec = make_decomp();
  const auto& order = dec.neighbor_order();
  EXPECT_EQ(order.size(), 26u);
  for (std::size_t i = 0; i < order.size(); ++i)
    EXPECT_EQ(dec.neighbor_ordinal(order[i]), static_cast<int>(i));
  EXPECT_THROW((void)dec.neighbor_ordinal(BitSet{}), Error);
}

TEST(Decomp, AnisotropicBricks) {
  // Ghost width must divide by every brick extent; 16 works for {16,8,4}.
  BrickDecomp<3> dec({64, 64, 64}, 16, {16, 8, 4}, surface3d());
  EXPECT_EQ(dec.brick_grid(), (Vec3{4, 8, 16}));
  EXPECT_EQ(dec.ghost_layers(), (Vec3{1, 2, 4}));
  EXPECT_EQ(dec.elements_per_brick(), 16 * 8 * 4);
  // Coverage invariants are checked inside the constructor.
  const BrickInfo<3> info = dec.brick_info();
  EXPECT_EQ(info.brick_count(), dec.total_brick_count());
}

TEST(Decomp, TwoDimensional) {
  BrickDecomp<2> dec({32, 32}, 8, {8, 8}, surface2d());
  EXPECT_EQ(dec.surface_region_count(), 8);
  EXPECT_EQ(dec.regions().size(), 8u + 1 + 16);
  EXPECT_EQ(dec.own_brick_count(), 16);
  EXPECT_EQ(dec.total_brick_count(), 36);
}

}  // namespace
}  // namespace brickx
