// Compiled with BRICKX_OBS=0 (see tests/CMakeLists.txt) and linked against
// brickx_common only — never the obs-enabled libraries, which were built
// with BRICKX_OBS=1 and would violate the ODR if mixed into this binary.
// Proves the null-sink headers are self-contained: the whole obs API
// compiles, records nothing, and the header-inline exporters still emit
// valid (empty) artifacts.

#include <gtest/gtest.h>

#include <utility>

#include "obs/export.h"
#include "obs/obs.h"
#include "obs/session.h"

static_assert(BRICKX_OBS == 0,
              "this test must be compiled with -DBRICKX_OBS=0");

namespace obs = brickx::obs;

TEST(ObsDisabled, CatNamesStillWork) {
  EXPECT_STREQ(obs::cat_name(obs::Cat::Calc), "calc");
  EXPECT_STREQ(obs::cat_name(obs::Cat::UmMigrate), "um_migrate");
}

TEST(ObsDisabled, EverySinkIsInert) {
  obs::RankLog lg;
  double clock = 1.0;
  obs::BindGuard guard(&lg, &clock);
  EXPECT_EQ(obs::ambient_log(), nullptr);  // binding is a no-op
  EXPECT_EQ(obs::ambient_now(), 0.0);
  {
    obs::ObsSpan sp(obs::Cat::Calc, "calc", 0);
    obs::note_cost(obs::Cat::UmMigrate, "um_migrate", 1.0);
    obs::instant(obs::Cat::MmapSetup, "view_build");
    obs::counter_add("c", 1);
    obs::gauge_max("g", 2.0);
    obs::hist_add("h", 3.0);
  }
  lg.note_span(obs::Cat::Pack, "pack", 0.0, 1.0);
  lg.flow(obs::FlowEvent{0, 1, 7, 64, 0.0, 1.0});
  lg.counter_add("c", 1);
  EXPECT_TRUE(lg.spans().empty());
  EXPECT_TRUE(lg.flows().empty());
  EXPECT_TRUE(lg.metrics().empty());
  EXPECT_EQ(obs::phase_sum(lg, obs::Cat::Pack, "pack"), 0.0);
}

TEST(ObsDisabled, CollectorAndSessionAreHollow) {
  obs::Collector col(4);
  EXPECT_EQ(col.nranks(), 4);
  col.log(2).counter_add("c", 1);
  EXPECT_TRUE(col.take_logs().empty());
  EXPECT_TRUE(obs::merged_metrics({}).empty());

  obs::Session ses;
  EXPECT_EQ(obs::Session::active(), nullptr);
  {
    obs::Session::Scope scope(ses);
    EXPECT_EQ(obs::Session::active(), nullptr);  // activation is a no-op
  }
  ses.absorb("lbl", obs::Collector(1));
  EXPECT_TRUE(ses.empty());
  EXPECT_TRUE(ses.runs().empty());
}

TEST(ObsDisabled, ExportersEmitValidEmptyArtifacts) {
  obs::Session ses;
  EXPECT_EQ(obs::chrome_trace_json(ses), "{\"traceEvents\":[]}\n");
  EXPECT_EQ(obs::metrics_json(ses), "{\"version\":1,\"runs\":[]}\n");
  EXPECT_EQ(obs::metrics_csv(ses),
            "run,label,metric,kind,value,count,min,avg,max,sigma\n");
}
