// Artifact-contract check (plain main, registered with ctest as
// obs_analysis_schema): runs a bench binary with --analyze-out and
// validates the emitted critical-path analysis JSON against the checked-in
// schema tests/data/analysis_schema.json — top-level and per-run keys,
// segment classes, wait-state and overlap fields — and then re-verifies
// the critical-path identity FROM THE ARTIFACT: segments must tile
// [0, makespan] contiguously (the %.17g rendering round-trips doubles
// exactly, so the shared-boundary equality survives export and re-parse).
//
// Usage: analysis_schema_validate <bench-binary> <schema.json>
// (the bench is invoked as: <bench-binary> -s 16 --analyze-out=<tmp>)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "json_mini.h"

namespace {

using jsonmini::Parser;
using jsonmini::Value;
using jsonmini::read_file;

int g_errors = 0;

void problem(const std::string& what) {
  std::fprintf(stderr, "schema violation: %s\n", what.c_str());
  ++g_errors;
}

std::vector<std::string> string_list(const Value& schema, const char* key) {
  std::vector<std::string> out;
  const Value* v = schema.find(key);
  if (v == nullptr || !v->is(Value::Type::Array)) {
    problem(std::string("schema file lacks string array '") + key + "'");
    return out;
  }
  for (const Value& e : *v->arr) out.push_back(e.str);
  return out;
}

void require_numbers(const Value& obj, const std::vector<std::string>& keys,
                     const std::string& where) {
  for (const std::string& k : keys) {
    const Value* v = obj.find(k);
    if (v == nullptr || !v->is(Value::Type::Number))
      problem(where + " lacks numeric field '" + k + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <bench-binary> <schema.json>\n", argv[0]);
    return 2;
  }
  const std::string bench = argv[1];
  const std::string out_path = "obs_analysis_check.json";

  const std::string cmd =
      "\"" + bench + "\" -s 16 --analyze-out=" + out_path + " > /dev/null";
  std::printf("running: %s\n", cmd.c_str());
  if (std::system(cmd.c_str()) != 0) {
    std::fprintf(stderr, "bench invocation failed\n");
    return 2;
  }

  const Value schema = Parser(read_file(argv[2])).parse();
  const Value doc = Parser(read_file(out_path)).parse();

  for (const std::string& key : string_list(schema, "top_required")) {
    if (doc.find(key) == nullptr)
      problem("missing top-level key '" + key + "'");
  }
  const Value* version = doc.find("version");
  if (version == nullptr || !version->is(Value::Type::Number) ||
      version->number != 1.0)
    problem("'version' must be the number 1");

  const Value* runs = doc.find("runs");
  if (runs == nullptr || !runs->is(Value::Type::Array) || runs->arr->empty()) {
    problem("'runs' must be a non-empty array");
    return 1;
  }

  const std::vector<std::string> run_required =
      string_list(schema, "run_required");
  const std::vector<std::string> seg_required =
      string_list(schema, "segment_required");
  const std::vector<std::string> seg_classes =
      string_list(schema, "segment_classes");
  const std::vector<std::string> wait_required =
      string_list(schema, "wait_required");
  const std::vector<std::string> overlap_required =
      string_list(schema, "overlap_required");

  for (const Value& run : *runs->arr) {
    const Value* label_v = run.find("label");
    const std::string label =
        label_v != nullptr && label_v->is(Value::Type::String) ? label_v->str
                                                               : "<run>";
    for (const std::string& key : run_required) {
      if (run.find(key) == nullptr)
        problem("run " + label + " missing key '" + key + "'");
    }
    const Value* ident = run.find("identity_ok");
    if (ident == nullptr || !ident->is(Value::Type::Bool) || !ident->b)
      problem("run " + label + " does not report identity_ok=true");

    const Value* makespan = run.find("makespan_s");
    const Value* segs = run.find("segments");
    if (makespan != nullptr && makespan->is(Value::Type::Number) &&
        segs != nullptr && segs->is(Value::Type::Array)) {
      // Re-verify the identity from the exported numbers: contiguous
      // segments tiling [0, makespan] exactly.
      double expect = 0.0;
      for (const Value& s : *segs->arr) {
        for (const std::string& key : seg_required) {
          if (s.find(key) == nullptr)
            problem("run " + label + " segment missing key '" + key + "'");
        }
        const Value* cls = s.find("class");
        if (cls != nullptr && cls->is(Value::Type::String)) {
          bool known = false;
          for (const std::string& c : seg_classes) known = known || c == cls->str;
          if (!known)
            problem("run " + label + " segment has unknown class '" +
                    cls->str + "'");
        }
        const Value* t0 = s.find("t0_s");
        const Value* t1 = s.find("t1_s");
        if (t0 == nullptr || t1 == nullptr ||
            !t0->is(Value::Type::Number) || !t1->is(Value::Type::Number))
          continue;
        if (t0->number != expect)
          problem("run " + label + " segment breaks contiguity");
        if (!(t1->number > t0->number))
          problem("run " + label + " has a non-positive-length segment");
        expect = t1->number;
      }
      if (expect != makespan->number)
        problem("run " + label + " path does not end at the makespan");
    }

    const Value* waits = run.find("wait_states");
    if (waits != nullptr && waits->is(Value::Type::Object))
      require_numbers(*waits, wait_required, "run " + label + " wait_states");
    else
      problem("run " + label + " wait_states is not an object");

    const Value* overlap = run.find("overlap");
    if (overlap != nullptr && overlap->is(Value::Type::Object))
      require_numbers(*overlap, overlap_required, "run " + label + " overlap");
    else
      problem("run " + label + " overlap is not an object");
  }

  if (g_errors != 0) {
    std::fprintf(stderr, "%d schema violation(s)\n", g_errors);
    return 1;
  }
  std::printf("ok: %zu run(s) conform to %s\n", runs->arr->size(), argv[2]);
  return 0;
}
