// Contention study: the same K1 exchange under the flat (private-link)
// model and under a routed fabric whose links are time-shared between
// concurrent messages. Message-hungry methods lose the most — their many
// simultaneous flows pile onto the same node uplinks and oversubscribed
// core links — so the paper's message-count reductions (Layout/MemMap)
// are worth *more* on a congested fabric than the flat model credits.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig_contention", "flat vs contention-modeled exchange time");
  ap.add("-s", "per-rank subdomain dimensions (comma-separated)", "64,32,16");
  ap.add("--fabric",
         "routed fabric to compare against flat: single-switch | fat-tree | "
         "torus | dragonfly | machine",
         "fat-tree");
  ap.add("--mapping",
         "process-to-node mapping for the routed fabric: block | "
         "round-robin | greedy",
         "block");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Contention study",
         "Per-step communication time, flat vs routed-with-contention, on "
         "the K1 2^3 grid. 'x' is routed/flat: how much the private-link "
         "assumption under-charges each method once concurrent messages "
         "share links.");

  Table t({"size", "method", "flat_ms", "routed_ms", "x", "avg_hops",
           "max_sharing", "hot_util"});
  for (std::int64_t dim : ap.get_int_list("-s")) {
    for (Method meth :
         {Method::MpiTypes, Method::Basic, Method::Layout, Method::MemMap}) {
      harness::Config cfg = k1_config(dim, meth);
      const harness::Result flat = run(cfg);
      apply_fabric(ap, cfg);
      BX_CHECK(cfg.fabric != netsim::FabricKind::Flat,
               "pick a routed fabric to compare against flat");
      const harness::Result routed = run(cfg);
      t.row()
          .cell(dim)
          .cell(harness::method_name(meth))
          .cell(flat.comm_per_step * 1e3, 4)
          .cell(routed.comm_per_step * 1e3, 4)
          .cell(routed.comm_per_step / flat.comm_per_step, 2)
          .cell(routed.avg_hops, 2)
          .cell(routed.max_link_sharing, 2)
          .cell(routed.busiest_link_util, 2);
    }
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks: routed >= flat for every row (contention only adds "
      "time), and the gap grows with the bytes concurrently in flight — "
      "large subdomains see multi-x slowdowns as flows share uplinks and "
      "the oversubscribed core, while small ones stay near 1x. MPI_Types "
      "sits at 1.00x throughout: its datatype overhead serializes sends "
      "so thoroughly the fabric never sees concurrent flows — packing "
      "cost hides congestion the pack-free methods expose.\n");
  return 0;
}
