// Figure 10 (K1): per-timestep compute time for MPI_Types, YASK, Layout,
// MemMap, and No-Layout (fine-grained blocking in lexicographic order).
// Paper claim: block ordering makes no discernible difference to compute;
// YASK's autotuned two-level parallelism wins slightly at large subdomains
// and loses badly at small ones.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig10_k1_compute_time", "Fig 10: K1 compute time");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Figure 10",
         "(K1) Compute time (ms per timestep). No-Layout = bricks stored "
         "in lexicographic region order — compute is layout-agnostic.");

  Table t({"dim", "MPI_Types", "YASK", "Layout", "MemMap", "No-Layout"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    const auto types = run(k1_config(s, Method::MpiTypes));
    const auto yask = run(k1_config(s, Method::Yask));
    const auto layout = run(k1_config(s, Method::Layout));
    const auto memmap = run(k1_config(s, Method::MemMap));
    auto nl_cfg = k1_config(s, Method::Basic);
    nl_cfg.lexicographic_layout = true;
    const auto nolayout = run(nl_cfg);
    t.row()
        .cell(s)
        .cell(ms(types.calc.avg()))
        .cell(ms(yask.calc.avg()))
        .cell(ms(layout.calc.avg()))
        .cell(ms(memmap.calc.avg()))
        .cell(ms(nolayout.calc.avg()));
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: Layout == MemMap == No-Layout exactly "
      "(ordering cannot matter); YASK is slightly faster at 256 and slower "
      "below ~64 where its nested parallel overhead dominates.\n");
  return 0;
}
