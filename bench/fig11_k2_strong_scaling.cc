// Figure 11 (K2): strong scaling of 7-point and 125-point stencils on a
// fixed global domain from 8 to 512 nodes (paper: 1024^3 over 8..1024
// nodes; here 256^3 over 8..512 in-process ranks — same surface/volume
// trajectory). Paper claim: MemMap strong-scales well (9.3x / 13.4x better
// than YASK at the top end) and transitions from compute-bound to
// communication-bound scaling.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig11_k2_strong_scaling", "Fig 11: K2 strong scaling");
  ap.add("-g", "global domain edge", "256");
  ap.add("-n", "comma-separated rank counts", "8,16,32,64,128,256,512");
  add_fabric_flags(ap);
  add_tune_flags(ap);
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  const Vec3 global = Vec3::fill(ap.get_int("-g"));
  announce_tuned(ap);
  // --tuned applies the autotuner's (layout, mapping, brick, page) choice
  // to the MemMap series; YASK and the scaling reference lines stay
  // hand-picked so the speedup column keeps its baseline meaning.
  auto tuned_mm = [&](harness::Config cfg) {
    apply_fabric(ap, cfg);
    apply_tuned(ap, cfg);
    return cfg;
  };
  auto plain = [&](harness::Config cfg) {
    apply_fabric(ap, cfg);
    return cfg;
  };
  banner("Figure 11",
         "(K2) Strong scaling GStencil/s on a fixed global domain (theta "
         "model). 'comp-scaling' and 'comm-scaling' are the theoretic "
         "volume- and surface-proportional lines anchored at the 8-rank "
         "MemMap point.");

  Table t({"ranks", "MemMap.7pt", "MemMap.125pt", "YASK.7pt", "YASK.125pt",
           "comp-scaling", "comm-scaling", "MemMap/YASK.7pt"});
  double anchor7 = 0;
  double anchor_ranks = 0;
  for (std::int64_t n : ap.get_int_list("-n")) {
    const int ranks = static_cast<int>(n);
    const auto mm7 =
        run(tuned_mm(strong_config(model::theta(), global, ranks,
                                   Method::MemMap, harness::GpuMode::None,
                                   false)));
    const auto mm125 =
        run(tuned_mm(strong_config(model::theta(), global, ranks,
                                   Method::MemMap, harness::GpuMode::None,
                                   true)));
    const auto yk7 =
        run(plain(strong_config(model::theta(), global, ranks, Method::Yask,
                                harness::GpuMode::None, false)));
    const auto yk125 =
        run(plain(strong_config(model::theta(), global, ranks, Method::Yask,
                                harness::GpuMode::None, true)));
    if (anchor7 == 0) {
      anchor7 = mm7.gstencils;
      anchor_ranks = static_cast<double>(ranks);
    }
    const double rel = static_cast<double>(ranks) / anchor_ranks;
    t.row()
        .cell(static_cast<std::int64_t>(ranks))
        .cell(gsps(mm7.gstencils))
        .cell(gsps(mm125.gstencils))
        .cell(gsps(yk7.gstencils))
        .cell(gsps(yk125.gstencils))
        .cell(gsps(anchor7 * rel))                      // volume ~ p
        .cell(gsps(anchor7 * std::pow(rel, 2.0 / 3)))   // surface ~ p^(2/3)
        .cell(mm7.gstencils / yk7.gstencils, 2);
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: MemMap follows comp-scaling at low rank "
      "counts and bends toward comm-scaling at the top; YASK starts lower "
      "and flattens early (paper: 9.3x / 13.4x at 1024 nodes).\n");
  return 0;
}
