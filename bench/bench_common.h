#pragma once

// Shared scaffolding for the paper-reproduction bench binaries. Each bench
// regenerates one table or figure of the paper; see EXPERIMENTS.md for the
// per-experiment mapping and the scaled-down parameter choices.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "common/argparse.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "obs/analyze.h"
#include "obs/export.h"
#include "obs/session.h"
#include "simmpi/cart.h"
#include "tune/artifact.h"

namespace brickx::bench {

/// Paper experiments K1/V1 run 8 nodes (1 rank each) as a periodic 2^3
/// cube and sweep the per-rank subdomain. The paper sweeps 512..16; the
/// default here is 128..16 (pass -s 256,... for more — a 512^3
/// double-buffered subdomain does not fit in 16 GB eight times over, and
/// the shape statements all live in the small-subdomain half anyway).
inline std::vector<std::int64_t> default_k1_sizes() {
  return {128, 64, 32, 16};
}

inline harness::Config k1_config(std::int64_t subdomain, harness::Method m,
                                 bool use125 = false) {
  harness::Config cfg;
  cfg.machine = model::theta();
  cfg.rank_dims = {2, 2, 2};
  cfg.subdomain = Vec3::fill(subdomain);
  cfg.brick = 8;
  cfg.ghost = 8;
  cfg.use125 = use125;
  cfg.method = m;
  cfg.timesteps = use125 ? 4 : 8;  // exactly one exchange batch
  cfg.warmup_exchanges = 1;
  cfg.execute_kernels = false;  // benches time the model; tests validate math
  return cfg;
}

inline harness::Config v1_config(std::int64_t subdomain, harness::Method m,
                                 harness::GpuMode gpu, bool use125 = false) {
  harness::Config cfg = k1_config(subdomain, m, use125);
  cfg.machine = model::summit();
  cfg.gpu = gpu;
  return cfg;
}

/// Strong-scaling config: a fixed global domain split across `ranks`
/// processes (dims from dims_create). Per-rank extents must stay brick
/// aligned — the caller picks a global size that divides evenly.
inline harness::Config strong_config(const model::Machine& machine,
                                     const Vec3& global, int ranks,
                                     harness::Method m, harness::GpuMode gpu,
                                     bool use125) {
  harness::Config cfg;
  cfg.machine = machine;
  cfg.rank_dims = mpi::dims_create<3>(ranks);
  cfg.subdomain = global / cfg.rank_dims;
  BX_CHECK(cfg.subdomain * cfg.rank_dims == global,
           "global domain does not divide across this rank count");
  cfg.brick = 8;
  cfg.ghost = 8;
  cfg.use125 = use125;
  cfg.method = m;
  cfg.gpu = gpu;
  cfg.timesteps = use125 ? 4 : 8;
  cfg.warmup_exchanges = 1;
  cfg.execute_kernels = false;
  // One in-process rank per "MPI rank": keep live mmap segments under
  // vm.max_map_count by switching MemMap to its byte-exact floor proxy at
  // high rank counts (see DESIGN.md).
  if (m == harness::Method::MemMap && ranks * 200 > 60000)
    cfg.memmap_floor_proxy = true;
  return cfg;
}

inline std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4f", seconds * 1e3);
  return buf;
}

inline std::string gsps(double gstencils) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", gstencils);
  return buf;
}

/// Standard bench banner: figure id, what the paper shows, what we print.
inline void banner(const char* id, const char* paper_claim) {
  std::printf("=== %s ===\n%s\n\n", id, paper_claim);
}

/// Register the shared fabric selection flags. Call before ap.parse().
inline void add_fabric_flags(ArgParser& ap) {
  ap.add("--fabric",
         "network model: flat (default, contention-free) | single-switch | "
         "fat-tree | torus | dragonfly | machine (the Machine's native "
         "topology)",
         "flat");
  ap.add("--mapping",
         "process-to-node mapping for non-flat fabrics: block | "
         "round-robin | greedy | rcb | embed",
         "block");
}

/// Apply --fabric/--mapping to a Config. "machine" resolves to the
/// machine's native topology (theta -> dragonfly, summit -> fat-tree).
inline void apply_fabric(const ArgParser& ap, harness::Config& cfg) {
  const std::string f = ap.get("--fabric");
  if (f == "machine") {
    cfg.fabric = cfg.machine.fabric;
  } else {
    const auto kind = netsim::parse_fabric(f);
    BX_CHECK(kind.has_value(), "unknown --fabric (see --help)");
    cfg.fabric = *kind;
  }
  const auto mapping = netsim::parse_mapping(ap.get("--mapping"));
  BX_CHECK(mapping.has_value(), "unknown --mapping (see --help)");
  cfg.mapping = *mapping;
}

/// Register the --tuned flag (tuned-config artifact consumption). Call
/// before ap.parse().
inline void add_tune_flags(ArgParser& ap) {
  ap.add("--tuned",
         "apply the (layout, mapping, brick, page) choice from a tuned-"
         "config JSON artifact written by tools/brickx_tune (default: keep "
         "the hand-picked configuration)",
         "");
}

/// Apply --tuned to a Config: load the artifact and overwrite the four
/// tuned levers. The problem section is NOT applied — the bench keeps its
/// own problem; the artifact only contributes the choice. Returns true if
/// an artifact was applied (callers print a provenance line so tuned
/// output never masquerades as the hand-picked golden output).
inline bool apply_tuned(const ArgParser& ap, harness::Config& cfg) {
  const std::string path = ap.get("--tuned");
  if (path.empty()) return false;
  const auto art = tune::load_artifact(path);
  BX_CHECK(art.has_value(), "cannot load --tuned artifact (missing file, "
                            "malformed JSON, or schema mismatch)");
  tune::apply_choice(*art, cfg);
  return true;
}

/// Print where an applied --tuned choice came from (once per bench).
inline void announce_tuned(const ArgParser& ap) {
  const std::string path = ap.get("--tuned");
  if (path.empty()) return;
  const auto art = tune::load_artifact(path);
  BX_CHECK(art.has_value(), "cannot load --tuned artifact");
  std::printf("tuned config: %s (layout=%s mapping=%s brick=%lld page=%zu)\n\n",
              path.c_str(), art->layout_name.c_str(),
              netsim::map_name(art->mapping),
              static_cast<long long>(art->brick), art->page_size);
}

/// Register the shared transport selection flags. Call before ap.parse().
inline void add_transport_flags(ArgParser& ap) {
  ap.add("--transport",
         "on-node transport tier: flat (default, every message rides the "
         "fabric path) | shm (same-node pairs short-circuit through shared "
         "memory) | shm-agg (shm + node-leader aggregation of inter-node "
         "sends; requires ranks_per_node > 1)",
         "flat");
  ap.add("--rpn",
         "override machine.net.ranks_per_node (0 = keep the machine model's "
         "value); lets single-rank-per-node machines exercise shm/shm-agg",
         "0");
}

/// Apply --transport/--rpn to a Config.
inline void apply_transport(const ArgParser& ap, harness::Config& cfg) {
  transport::Kind kind;
  BX_CHECK(transport::parse_kind(ap.get("--transport"), &kind),
           "unknown --transport (see --help)");
  cfg.transport = kind;
  const long rpn = std::strtol(ap.get("--rpn").c_str(), nullptr, 10);
  if (rpn > 0) cfg.machine.net.ranks_per_node = static_cast<int>(rpn);
}

/// Register the shared fault-injection flag. Call before ap.parse().
inline void add_fault_flags(ArgParser& ap) {
  ap.add("--faults",
         "seeded message-fault schedule, e.g. "
         "\"delay=0.3,seed=7,max-delay=1e-5\" (keys: delay drop duplicate "
         "reorder truncate corrupt seed max-delay; default none). Corrupting "
         "kinds abort the run with a \"fault detected\" diagnostic; "
         "delay/reorder only perturb virtual time",
         "none");
}

/// Apply --faults to a Config. Callers that loop over configs should print
/// the schedule once via announce_faults so output produced under injected
/// faults says so.
inline void apply_faults(const ArgParser& ap, harness::Config& cfg) {
  const auto spec = mpi::parse_fault_spec(ap.get("--faults"));
  BX_CHECK(spec.has_value(), "malformed --faults (see --help)");
  cfg.faults = *spec;
}

/// Print the active --faults schedule (nothing when it is empty, keeping
/// default output byte-identical for the golden regression tests).
inline void announce_faults(const ArgParser& ap) {
  const auto spec = mpi::parse_fault_spec(ap.get("--faults"));
  BX_CHECK(spec.has_value(), "malformed --faults (see --help)");
  if (spec->any())
    std::printf("fault schedule: %s\n\n", mpi::describe(*spec).c_str());
}

/// Register the shared observability flags. Call before ap.parse().
inline void add_obs_flags(ArgParser& ap) {
  ap.add("--trace-out",
         "write a Chrome trace-event JSON of every run (Perfetto-loadable)",
         "");
  ap.add("--metrics-out",
         "write merged metrics for every run (.csv for CSV, else JSON)", "");
  ap.add("--analyze-out",
         "write a critical-path / wait-state analysis of every run (.txt "
         "for the aligned-text report, else JSON)",
         "");
}

/// Collects the traces of all harness::run calls in the enclosing scope and
/// writes the requested artifacts on destruction. Inactive (no session, no
/// recording beyond the null/ambient defaults) when neither flag was given.
class ObsGuard {
 public:
  explicit ObsGuard(const ArgParser& ap)
      : trace_path_(ap.get("--trace-out")),
        metrics_path_(ap.get("--metrics-out")),
        analyze_path_(ap.get("--analyze-out")) {
    if (!trace_path_.empty() || !metrics_path_.empty() ||
        !analyze_path_.empty())
      scope_.emplace(session_);
  }
  ~ObsGuard() {
    if (!scope_) return;
    scope_.reset();  // deactivate before exporting
    bool first = true;
    if (!trace_path_.empty()) {
      obs::write_chrome_trace(session_, trace_path_);
      std::printf("\nwrote trace: %s\n", trace_path_.c_str());
      first = false;
    }
    if (!metrics_path_.empty()) {
      obs::write_metrics(session_, metrics_path_);
      std::printf("%swrote metrics: %s\n", first ? "\n" : "",
                  metrics_path_.c_str());
      first = false;
    }
    if (!analyze_path_.empty()) {
      obs::write_analysis(session_, analyze_path_);
      std::printf("%swrote analysis: %s\n", first ? "\n" : "",
                  analyze_path_.c_str());
    }
  }
  ObsGuard(const ObsGuard&) = delete;
  ObsGuard& operator=(const ObsGuard&) = delete;

  [[nodiscard]] const obs::Session& session() const { return session_; }

 private:
  std::string trace_path_, metrics_path_, analyze_path_;
  obs::Session session_;
  std::optional<obs::Session::Scope> scope_;
};

}  // namespace brickx::bench
