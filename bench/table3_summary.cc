// Table 3: the paper's closing comparison of standard array communication
// against Layout and MemMap, reprinted with measured quantities from the
// K1 (CPU) and V1 (GPU) experiments at a representative 64^3 subdomain.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::GpuMode;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("table3_summary", "Table 3: cost-type comparison");
  ap.add("-s", "representative subdomain dim", "64");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);
  const std::int64_t s = ap.get_int("-s");

  banner("Table 3",
         "Cost types of standard array communication vs the paper's "
         "methods, quantified at the representative subdomain size.");

  const auto yask = run(k1_config(s, Method::Yask));
  const auto layout = run(k1_config(s, Method::Layout));
  const auto memmap = run(k1_config(s, Method::MemMap));
  const auto lca = run(v1_config(s, Method::Layout, GpuMode::CudaAware));
  const auto lum = run(v1_config(s, Method::Layout, GpuMode::Unified));
  const auto mum = run(v1_config(s, Method::MemMap, GpuMode::Unified));
  auto big = k1_config(s, Method::MemMap);
  big.page_size = 64 * 1024;
  const auto memmap64 = run(big);

  Table t({"cost type", "Array", "Layout", "MemMap"});
  t.row()
      .cell("strided packing (ms/step)")
      .cell(ms(yask.pack.avg()) + "  [High]")
      .cell("0  [none]")
      .cell("0  [none]");
  t.row()
      .cell("extra msgs (vs 26 neighbors)")
      .cell("0")
      .cell(std::to_string(layout.msgs_per_rank - 26) + "  [Low*]")
      .cell("0");
  t.row()
      .cell("manual CPU-GPU staging")
      .cell("High [explicit cudaMemcpy]")
      .cell("none [CA/UM: " + ms(lca.comm_per_step) + "/" +
            ms(lum.comm_per_step) + " ms comm]")
      .cell("none [UM: " + ms(mum.comm_per_step) + " ms comm]");
  t.row()
      .cell("large-page padding (64KiB)")
      .cell("0")
      .cell("0")
      .cell(ms(memmap64.comm_per_step) + " ms, +" +
            std::to_string(static_cast<int>(memmap64.padding_percent)) +
            "%  [Low**]");
  t.print(std::cout);
  std::printf(
      "\n(*) Section 3.3: bounded by ~3x neighbors, negligible time. "
      "(**) Section 7.3: padding cost stays small vs eliminating packing.\n"
      "Reference comm times at %lld^3: YASK %.3f ms, Layout %.3f ms, "
      "MemMap %.3f ms per step.\n",
      static_cast<long long>(s), yask.comm_per_step * 1e3,
      layout.comm_per_step * 1e3, memmap.comm_per_step * 1e3);

  // Receive-side accounting for the CPU rows (rank 0, whole run): what the
  // destination rank pays to drain the same exchanges — message completions,
  // delivered bytes, and how deep the request pipeline ran.
  std::printf("\nreceive-side accounting (rank 0, warmup + measured):\n\n");
  Table rx({"method", "msgs_recv", "bytes_recv", "max_inflight"});
  rx.row()
      .cell("YASK")
      .cell(yask.msgs_recv_per_rank)
      .cell(yask.bytes_recv_per_rank)
      .cell(yask.max_inflight_reqs);
  rx.row()
      .cell("Layout")
      .cell(layout.msgs_recv_per_rank)
      .cell(layout.bytes_recv_per_rank)
      .cell(layout.max_inflight_reqs);
  rx.row()
      .cell("MemMap")
      .cell(memmap.msgs_recv_per_rank)
      .cell(memmap.bytes_recv_per_rank)
      .cell(memmap.max_inflight_reqs);
  rx.print(std::cout);
  return 0;
}
