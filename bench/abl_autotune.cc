// Ablation: the joint autotuner (src/tune, DESIGN.md §15) against the
// hand-picked fig11/fig16 strong-scaling configurations. For each problem
// the tuner searches (layout permutation × rank-to-node mapping × brick
// size × page size) under the machine's native routed fabric and must meet
// or beat the hand-picked point — which is a member of every search space,
// so this is a structural guarantee the self-check enforces bit-exactly.
// The run also proves the replay contract (the emitted artifact reproduces
// the predicted cost exactly) and the memo-cache contract (a warm retune
// re-evaluates nothing and emits byte-identical artifact JSON).
//
// Stdout is virtual-time only (golden-diffed); wall-clock throughput goes
// to --json-out=BENCH_autotune.json.

#include <chrono>
#include <fstream>

#include "bench_common.h"
#include "tune/tuner.h"

using namespace brickx;
using namespace brickx::bench;
using harness::GpuMode;
using harness::Method;

namespace {

struct Row {
  const char* label;
  model::Machine machine;
  std::int64_t global;
  int ranks;
  int rpn;
  Method method;
  GpuMode gpu;
  bool use125;
};

}  // namespace

int main(int argc, char** argv) {
  ArgParser ap("abl_autotune", "joint layout/mapping/brick/page autotuner "
                               "vs the hand-picked configs");
  ap.add("--threads", "worker threads per search", "4");
  ap.add("--layout-budget", "optimize_layout hill-climb evaluations", "2000");
  ap.add("--json-out", "write the BENCH_autotune.json trajectory", "");
  ap.add("--tuned-out", "write the first row's tuned-config artifact", "");
  ap.parse(argc, argv);

  banner("Ablation: joint autotuner",
         "Tuned (layout, mapping, brick, page) vs the hand-picked fig11/"
         "fig16 strong-scaling configs on each machine's native fabric. "
         "The hand-picked point is inside every search space, so tuned <= "
         "hand-picked is enforced bit-exactly; each artifact is replayed "
         "and must reproduce its predicted cost, and a warm-cache retune "
         "must re-evaluate nothing yet emit identical artifact bytes.");

  const std::vector<Row> rows = {
      {"theta.MemMap.7pt", model::theta(), 64, 16, 4, Method::MemMap,
       GpuMode::None, false},
      {"theta.MemMap.125pt", model::theta(), 64, 16, 4, Method::MemMap,
       GpuMode::None, true},
      {"theta.YASK.7pt", model::theta(), 64, 16, 4, Method::Yask,
       GpuMode::None, false},
      {"summit.LayoutCA.7pt", model::summit(), 96, 12, 6, Method::Layout,
       GpuMode::CudaAware, false},
      {"summit.TypesUM.7pt", model::summit(), 96, 12, 6, Method::MpiTypes,
       GpuMode::Unified, false},
  };

  const int threads = static_cast<int>(ap.get_int("--threads"));
  const std::int64_t budget = ap.get_int("--layout-budget");

  Table t({"problem", "cands", "distinct", "layout", "mapping", "brick",
           "page", "hand_ms", "tuned_ms", "speedup", "replay", "warm"});
  struct Point {
    const char* label;
    std::int64_t candidates, distinct, evaluated;
    double hand_s, tuned_s, wall_s;
  };
  std::vector<Point> points;
  std::string first_artifact_json;
  bool ok = true;

  for (const Row& row : rows) {
    harness::Config problem =
        strong_config(row.machine, Vec3::fill(row.global), row.ranks,
                      row.method, row.gpu, row.use125);
    problem.machine.net.ranks_per_node = row.rpn;
    problem.fabric = problem.machine.fabric;

    const harness::Result hand = harness::run(problem);
    const tune::SearchSpace space =
        tune::SearchSpace::standard(problem, budget);
    tune::EvalCache cache;
    const auto t0 = std::chrono::steady_clock::now();
    const tune::TuneResult res = tune::tune(problem, space, threads, &cache);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    // Self-check 1: tuned meets or beats hand-picked (exact comparison —
    // the hand-picked point is in the space, so >= cannot happen).
    const bool beats = res.best.total_seconds <= hand.total_seconds;
    // Self-check 2: the artifact alone reproduces the prediction bit-exact.
    const harness::Result replay =
        harness::run(tune::tuned_config(res.artifact));
    const bool replay_ok =
        replay.total_seconds == res.artifact.predicted_total_seconds &&
        replay.comm_per_step == res.artifact.predicted_comm_per_step &&
        replay.gstencils == res.artifact.predicted_gstencils;
    // Self-check 3: warm retune — zero evaluations, identical bytes.
    const tune::TuneResult warm = tune::tune(problem, space, threads, &cache);
    const bool warm_ok = warm.evaluated == 0 &&
                         tune::to_json(warm.artifact) ==
                             tune::to_json(res.artifact);
    // Self-check 4: JSON round-trip is byte-stable.
    const auto rt = tune::from_json(tune::to_json(res.artifact));
    const bool rt_ok =
        rt.has_value() && tune::to_json(*rt) == tune::to_json(res.artifact);
    ok = ok && beats && replay_ok && warm_ok && rt_ok;

    if (first_artifact_json.empty())
      first_artifact_json = tune::to_json(res.artifact);

    t.row()
        .cell(row.label)
        .cell(res.candidates)
        .cell(res.distinct)
        .cell(res.layout_name)
        .cell(netsim::map_name(res.mapping))
        .cell(res.brick)
        .cell(static_cast<std::int64_t>(res.page_size))
        .cell(hand.total_seconds * 1e3)
        .cell(res.best.total_seconds * 1e3)
        .cell(hand.total_seconds / res.best.total_seconds, 3)
        .cell(replay_ok && rt_ok ? "exact" : "FAIL")
        .cell(warm_ok ? "hit" : "FAIL");
    points.push_back({row.label, res.candidates, res.distinct, res.evaluated,
                      hand.total_seconds, res.best.total_seconds, wall});
  }
  t.print(std::cout);
  std::printf(
      "\nExpected: tuned_ms <= hand_ms on every row (the hand-picked point "
      "is in the search space), replay == exact (the artifact reproduces "
      "its prediction bit-for-bit), warm == hit (the memo cache answers a "
      "repeat search without a single re-evaluation). self-check: %s\n",
      ok ? "pass" : "FAIL");

  const std::string tuned_out = ap.get("--tuned-out");
  if (!tuned_out.empty()) {
    std::ofstream out(tuned_out);
    BX_CHECK(out.good(), "cannot open --tuned-out file");
    out << first_artifact_json;
    std::printf("wrote %s\n", tuned_out.c_str());
  }

  const std::string json = ap.get("--json-out");
  if (!json.empty()) {
    std::ofstream out(json);
    BX_CHECK(out.good(), "cannot open --json-out file");
    out << "{\n  \"schema\": \"brickx-bench-autotune-v1\",\n"
        << "  \"threads\": " << threads << ",\n  \"self_check\": "
        << (ok ? "true" : "false") << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      char buf[512];
      std::snprintf(
          buf, sizeof buf,
          "    {\"problem\": \"%s\", \"candidates\": %lld, \"distinct\": "
          "%lld, \"evaluated\": %lld, \"wall_s\": %.4f, \"cands_per_s\": "
          "%.2f, \"handpicked_s\": %.9e, \"tuned_s\": %.9e, \"speedup\": "
          "%.4f}%s\n",
          p.label, static_cast<long long>(p.candidates),
          static_cast<long long>(p.distinct),
          static_cast<long long>(p.evaluated), p.wall_s,
          p.wall_s > 0 ? static_cast<double>(p.evaluated) / p.wall_s : 0.0,
          p.hand_s, p.tuned_s, p.hand_s / p.tuned_s,
          i + 1 < points.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json.c_str());
  }
  return ok ? 0 : 1;
}
