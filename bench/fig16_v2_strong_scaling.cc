// Figure 16 (V2): strong scaling on a fixed global domain across 8..256
// simulated Summit nodes with 6 ranks (GPUs) per node — 48..1536 ranks —
// for LayoutCA, MemMapUM and MPI_TypesUM, 7- and 125-point stencils.
// (Paper: 2048^3 over 8..1024 nodes; here 384^3 over 8..256 nodes — the
// same surface/volume trajectory per GPU.) Paper claim: LayoutCA and
// MemMapUM reach 5.8x / 4.1x over MPI_TypesUM at the top end and are not
// yet at their scaling limit.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::GpuMode;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig16_v2_strong_scaling", "Fig 16: V2 GPU strong scaling");
  ap.add("-g", "global domain edge", "384");
  ap.add("-n", "comma-separated node counts (6 ranks each)",
         "8,16,32,64");
  add_fabric_flags(ap);
  add_tune_flags(ap);
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  const Vec3 global = Vec3::fill(ap.get_int("-g"));
  announce_tuned(ap);
  banner("Figure 16",
         "(V2) Strong scaling GStencil/s, 6 ranks per node on the summit "
         "model; theoretic comp (volume) and comm (surface) scaling lines "
         "anchored at the smallest LayoutCA point.");

  Table t({"nodes", "ranks", "LayoutCA.7pt", "LayoutCA.125pt",
           "MemMapUM.7pt", "MemMapUM.125pt", "Types.7pt", "Types.125pt",
           "comp-scaling", "comm-scaling"});
  double anchor = 0, anchor_ranks = 0;
  for (std::int64_t nodes : ap.get_int_list("-n")) {
    const int ranks = static_cast<int>(nodes) * 6;
    // --tuned applies the autotuner's choice to the brick champion
    // (LayoutCA); the contrast series stay hand-picked so the figure's
    // cross-method comparison keeps its meaning.
    auto go = [&](Method m, GpuMode g, bool use125, bool tuned = false) {
      auto cfg = strong_config(model::summit(), global, ranks, m, g, use125);
      apply_fabric(ap, cfg);
      if (tuned) apply_tuned(ap, cfg);
      return run(cfg);
    };
    const auto lca7 = go(Method::Layout, GpuMode::CudaAware, false, true);
    const auto lca125 = go(Method::Layout, GpuMode::CudaAware, true, true);
    const auto mum7 = go(Method::MemMap, GpuMode::Unified, false);
    const auto mum125 = go(Method::MemMap, GpuMode::Unified, true);
    const auto tum7 = go(Method::MpiTypes, GpuMode::Unified, false);
    const auto tum125 = go(Method::MpiTypes, GpuMode::Unified, true);
    if (anchor == 0) {
      anchor = lca7.gstencils;
      anchor_ranks = ranks;
    }
    const double rel = ranks / anchor_ranks;
    t.row()
        .cell(nodes)
        .cell(static_cast<std::int64_t>(ranks))
        .cell(gsps(lca7.gstencils))
        .cell(gsps(lca125.gstencils))
        .cell(gsps(mum7.gstencils))
        .cell(gsps(mum125.gstencils))
        .cell(gsps(tum7.gstencils))
        .cell(gsps(tum125.gstencils))
        .cell(gsps(anchor * rel))
        .cell(gsps(anchor * std::pow(rel, 2.0 / 3)));
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: LayoutCA > MemMapUM > MPI_TypesUM at every "
      "scale; the advantage over MPI_Types grows with node count (paper: "
      "5.8x and 4.1x at 1024 nodes).\n");
  return 0;
}
