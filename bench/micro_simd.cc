// Explicit-SIMD width sweep (DESIGN.md §16): wall-clock cells/s of the
// forced-width interior kernels engine_apply{7,125}_simd at W = 1, 2, 4, 8
// for brick sizes {4, 8}^3, plus the AoSoA field-count sweep at the active
// width. Widths above the hardware's are compiler-emulated, so the full
// sweep runs (and is bit-exact) on any host; the table shows where
// emulation stops paying.
//
//   --self-check    differential sweep only: every width x kernel x brick
//                   size against the naive per-access kernels over
//                   randomized output boxes; exits non-zero on any
//                   bit-mismatch (the simd-labeled ctest smoke).
//
// Without flags: measure and print the sweep (no JSON — the committed
// trajectory point lives in BENCH_kernels.json via micro_kernels).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "common/simd.h"
#include "core/brick.h"
#include "core/decomp.h"
#include "stencil/kernel_engine.h"
#include "stencil/stencils.h"

namespace brickx {
namespace {

struct Setup {
  BrickDecomp<3> dec;
  BrickInfo<3> info;
  BrickStorage in, out;
  Setup(std::int64_t n, std::int64_t b, int fields = 1)
      : dec({n, n, n}, b, {b, b, b}, surface3d()),
        info(dec.brick_info()),
        in(dec.allocate(fields)),
        out(dec.allocate(fields)) {
    Rng rng(0x51d3);
    for (std::int64_t i = 0; i < dec.total_brick_count(); ++i) {
      double* p = in.brick(i);
      for (std::int64_t e = 0; e < dec.elements_per_brick() * fields; ++e)
        p[e] = rng.uniform() * 2.0 - 1.0;
    }
  }
};

template <typename F>
double cells_per_s(std::int64_t cells, F&& fn) {
  using clock = std::chrono::steady_clock;
  constexpr double min_s = 0.1;
  std::int64_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::int64_t i = 0; i < iters; ++i) {
      fn();
      benchmark::ClobberMemory();
    }
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= min_s)
      return static_cast<double>(cells * iters) / (s > 0 ? s : 1e-12);
    iters *= 2;
  }
}

template <int B, int W>
double measure_width(std::int64_t n, bool use125) {
  Setup s(n, B);
  Brick<B, B, B> bin(&s.info, &s.in, 0), bout(&s.info, &s.out, 0);
  const Box<3> box{{0, 0, 0}, {n, n, n}};
  return cells_per_s(n * n * n, [&] {
    if (use125) {
      stencil::engine_apply125_simd<B, B, B, W>(s.dec, bout, bin, box);
    } else {
      stencil::engine_apply7_simd<B, B, B, W>(s.dec, bout, bin, box);
    }
  });
}

template <int B>
void sweep_brick(std::int64_t n) {
  for (bool use125 : {false, true}) {
    const double w1 = measure_width<B, 1>(n, use125);
    const double w2 = measure_width<B, 2>(n, use125);
    const double w4 = measure_width<B, 4>(n, use125);
    const double w8 = measure_width<B, 8>(n, use125);
    std::printf("%-6s b=%d : W=1 %9.3e  W=2 %9.3e (%.2fx)  W=4 %9.3e "
                "(%.2fx)  W=8 %9.3e (%.2fx) cells/s\n",
                use125 ? "125pt" : "7pt", B, w1, w2, w2 / w1, w4, w4 / w1,
                w8, w8 / w1);
  }
}

void sweep_fields(std::int64_t n) {
  constexpr int B = 8;
  constexpr int W = simd::kActiveWidth;
  for (bool use125 : {false, true}) {
    std::printf("%-6s b=%d W=%d fields :", use125 ? "125pt" : "7pt", B, W);
    for (int F : {1, 2, 4}) {
      Setup s(n, B, F);
      const Box<3> box{{0, 0, 0}, {n, n, n}};
      const double r = cells_per_s(n * n * n * F, [&] {
        for (int f = 0; f < F; ++f) {
          const std::int64_t off = f * s.dec.elements_per_brick();
          Brick<B, B, B> bin(&s.info, &s.in, off), bout(&s.info, &s.out, off);
          if (use125) {
            stencil::engine_apply125_simd<B, B, B, W>(s.dec, bout, bin, box);
          } else {
            stencil::engine_apply7_simd<B, B, B, W>(s.dec, bout, bin, box);
          }
        }
      });
      std::printf("  F=%d %9.3e", F, r);
    }
    std::printf(" cells/s\n");
  }
}

// ---- differential self-check -----------------------------------------------

template <int B, int W>
bool check_width(bool use125, std::uint64_t seed) {
  Setup s(16, B);
  (void)seed;
  Brick<B, B, B> bin(&s.info, &s.in, 0);
  const std::vector<Box<3>> boxes = {
      {{0, 0, 0}, {16, 16, 16}},
      {{B, B, B}, {2 * B, 2 * B, 2 * B}},
      {{1, 2, 3}, {6, 15, 9}},
      {{0, 0, 0}, {0, 0, 0}}};
  for (const Box<3>& box : boxes) {
    BrickStorage vec = s.dec.allocate(1), naive = s.dec.allocate(1);
    Brick<B, B, B> bv(&s.info, &vec, 0), bn(&s.info, &naive, 0);
    if (use125) {
      stencil::engine_apply125_simd<B, B, B, W>(s.dec, bv, bin, box);
      stencil::apply125_bricks_naive<B, B, B>(s.dec, bn, bin, box);
    } else {
      stencil::engine_apply7_simd<B, B, B, W>(s.dec, bv, bin, box);
      stencil::apply7_bricks_naive<B, B, B>(s.dec, bn, bin, box);
    }
    if (std::memcmp(vec.data(), naive.data(), vec.bytes()) != 0) {
      std::fprintf(stderr,
                   "micro_simd self-check FAILED: brick=%d W=%d use125=%d\n",
                   B, W, use125 ? 1 : 0);
      return false;
    }
  }
  return true;
}

bool run_self_check() {
  bool ok = true;
  for (bool use125 : {false, true}) {
    ok = check_width<4, 1>(use125, 1) && ok;
    ok = check_width<4, 2>(use125, 2) && ok;
    ok = check_width<4, 4>(use125, 3) && ok;
    ok = check_width<4, 8>(use125, 8) && ok;
    ok = check_width<8, 1>(use125, 4) && ok;
    ok = check_width<8, 2>(use125, 5) && ok;
    ok = check_width<8, 4>(use125, 6) && ok;
    ok = check_width<8, 8>(use125, 7) && ok;
  }
  std::printf("micro_simd self-check: %s\n", ok ? "pass" : "FAIL");
  return ok;
}

}  // namespace
}  // namespace brickx

int main(int argc, char** argv) {
  bool self_check = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--self-check") self_check = true;
  if (self_check) return brickx::run_self_check() ? 0 : 1;

  std::printf("micro_simd: isa=%s detected W=%d active W=%d\n",
              brickx::simd::isa_name(), brickx::simd::kDetectedWidth,
              brickx::simd::kActiveWidth);
  const std::int64_t n = 32;
  brickx::sweep_brick<4>(n);
  brickx::sweep_brick<8>(n);
  brickx::sweep_fields(n);
  return 0;
}
