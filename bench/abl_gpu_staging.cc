// Ablation: the manual CPU-GPU staging workflow the paper's Section 5
// replaces. Before CUDA-Aware MPI / unified memory, applications packed on
// the GPU, cudaMemcpy'd the packed buffers to the host, ran MPI there and
// shuttled the results back — the paper's reference [29] measured MPI as
// only *half* of communication time under this scheme. This bench
// quantifies that against the paper's LayoutCA and MemMapUM.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::GpuMode;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("abl_gpu_staging", "ablation: manual GPU staging baseline");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Ablation: manual GPU staging (Section 5 motivation)",
         "Per-timestep comm time (ms) on 8 simulated V100 nodes, and the "
         "share of it spent on-node (pack + PCIe/NVLink shuttling).");

  Table t({"dim", "Staged.comm", "Staged.onnode%", "LayoutCA.comm",
           "MemMapUM.comm", "Staged/LayoutCA"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    auto staged_cfg = v1_config(s, Method::Yask, GpuMode::Staged);
    const auto staged = run(staged_cfg);
    const auto lca = run(v1_config(s, Method::Layout, GpuMode::CudaAware));
    const auto mum = run(v1_config(s, Method::MemMap, GpuMode::Unified));
    const double onnode = staged.pack.avg();
    t.row()
        .cell(s)
        .cell(ms(staged.comm_per_step))
        .cell(100.0 * onnode / staged.comm_per_step, 1)
        .cell(ms(lca.comm_per_step))
        .cell(ms(mum.comm_per_step))
        .cell(staged.comm_per_step / lca.comm_per_step, 1);
  }
  t.print(std::cout);
  std::printf(
      "\nExpected: on-node movement (pack + shuttle) takes a large share "
      "of staged communication — the paper's [29] found about half — and "
      "eliminating it (LayoutCA) wins by several-fold.\n");
  return 0;
}
