// Real (wall-clock, single-core) microbenchmarks backing the simulation:
// brick vs array stencil kernels (fast-path engine vs naive per-access
// reference), pack/unpack copy throughput, datatype gather throughput, and
// mmap view construction cost. These are the only benches that measure
// this host rather than the virtual clock.
//
// Beyond the google-benchmark registrations, two flag-driven modes back
// the kernel perf trajectory (EXPERIMENTS.md "Real-host microbenchmarks"):
//
//   --self-check           bit-exactness sweep: fast vs naive kernels over
//                          randomized output boxes, every kernel × brick
//                          size × storage family; exits non-zero on any
//                          mismatch (the `perf`-labeled ctest smoke).
//   --json-out=FILE        measure cells/s for every kernel × brick size ×
//                          path and write the BENCH_kernels.json trajectory
//                          point (scripts/bench_perf.sh).
//
// Without either flag the binary behaves as a plain google-benchmark
// suite.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/array_exchange.h"
#include "common/rng.h"
#include "core/brick.h"
#include "core/cell_array.h"
#include "core/decomp.h"
#include "core/exchange_view.h"
#include "memmap/view.h"
#include "simmpi/cart.h"
#include "stencil/kernel_engine.h"
#include "stencil/stencils.h"

#ifndef BRICKX_BUILD_TYPE
#define BRICKX_BUILD_TYPE "unknown"
#endif
#ifndef BRICKX_CXX_FLAGS
#define BRICKX_CXX_FLAGS "unknown"
#endif
#ifndef BRICKX_NATIVE_FLAG
#define BRICKX_NATIVE_FLAG 0
#endif

#if defined(__clang__)
#define BRICKX_COMPILER_ID "clang"
#elif defined(__GNUC__)
#define BRICKX_COMPILER_ID "gcc"
#else
#define BRICKX_COMPILER_ID "unknown"
#endif

namespace brickx {
namespace {

struct BrickSetup {
  BrickDecomp<3> dec;
  BrickInfo<3> info;
  BrickStorage in, out;
  BrickSetup(std::int64_t n, std::int64_t b)
      : dec({n, n, n}, b, {b, b, b}, surface3d()),
        info(dec.brick_info()),
        in(dec.allocate(1)),
        out(dec.allocate(1)) {
    Rng rng(0xb71c5);
    for (std::int64_t i = 0; i < dec.total_brick_count(); ++i) {
      double* p = in.brick(i);
      for (std::int64_t e = 0; e < dec.elements_per_brick(); ++e)
        p[e] = rng.uniform() * 2.0 - 1.0;
    }
  }
};

// ---- google-benchmark registrations (interactive use) ----------------------

template <bool Naive>
void BM_Brick7Point(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  BrickSetup s(n, 8);
  Brick<8, 8, 8> bin(&s.info, &s.in, 0), bout(&s.info, &s.out, 0);
  const Box<3> box{{0, 0, 0}, {n, n, n}};
  for (auto _ : state) {
    if (Naive) {
      stencil::apply7_bricks_naive<8, 8, 8>(s.dec, bout, bin, box);
    } else {
      stencil::apply7_bricks<8, 8, 8>(s.dec, bout, bin, box);
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Brick7Point<false>)->Name("BM_Brick7Point/fast")->Arg(32)->Arg(64);
BENCHMARK(BM_Brick7Point<true>)->Name("BM_Brick7Point/naive")->Arg(32)->Arg(64);

void BM_Array7Point(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  CellArray3 in(Box<3>{{-8, -8, -8}, {n + 8, n + 8, n + 8}});
  CellArray3 out(Box<3>{{-8, -8, -8}, {n + 8, n + 8, n + 8}});
  const Box<3> box{{0, 0, 0}, {n, n, n}};
  for (auto _ : state) {
    stencil::apply7_array(in, out, box);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Array7Point)->Arg(32)->Arg(64);

template <bool Naive>
void BM_Brick125Point(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  BrickSetup s(n, 8);
  Brick<8, 8, 8> bin(&s.info, &s.in, 0), bout(&s.info, &s.out, 0);
  const Box<3> box{{0, 0, 0}, {n, n, n}};
  for (auto _ : state) {
    if (Naive) {
      stencil::apply125_bricks_naive<8, 8, 8>(s.dec, bout, bin, box);
    } else {
      stencil::apply125_bricks<8, 8, 8>(s.dec, bout, bin, box);
    }
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Brick125Point<false>)->Name("BM_Brick125Point/fast")->Arg(32);
BENCHMARK(BM_Brick125Point<true>)->Name("BM_Brick125Point/naive")->Arg(32);

void BM_PackUnpack(benchmark::State& state) {
  // The on-node data movement the paper eliminates: pack all 26 surface
  // boxes into staging buffers and unpack back.
  const std::int64_t n = state.range(0);
  const Vec3 N{n, n, n};
  CellArray3 field(Box<3>{{-8, -8, -8}, {n + 8, n + 8, n + 8}});
  const auto dirs = mpi::Cart<3>::all_directions();
  std::vector<int> ranks(dirs.size(), 0);
  baseline::PackExchanger ex(N, 8, dirs, ranks);
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes += ex.pack(field);
    bytes += ex.unpack(field);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PackUnpack)->Arg(32)->Arg(64)->Arg(128);

void BM_DatatypeGather(benchmark::State& state) {
  // MPI_Types' internal packing: gather a maximally strided face.
  const std::int64_t n = state.range(0);
  const Vec3 sizes{n + 16, n + 16, n + 16};
  std::vector<double> grid(static_cast<std::size_t>(sizes.prod()));
  auto face = mpi::Datatype::subarray<3>(sizes, {8, n, n}, {8, 8, 8},
                                         sizeof(double));
  std::vector<std::byte> out(face.size());
  std::size_t bytes = 0;
  for (auto _ : state) {
    face.flat().gather(reinterpret_cast<const std::byte*>(grid.data()),
                       out.data());
    bytes += face.size();
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["blocks"] = static_cast<double>(face.block_count());
}
BENCHMARK(BM_DatatypeGather)->Arg(32)->Arg(64)->Arg(128);

void BM_ExchangeViewBuild(benchmark::State& state) {
  // Cost of constructing all per-neighbor mmap views (paid once per
  // communication pattern, amortized over every timestep).
  const std::int64_t n = state.range(0);
  BrickDecomp<3> dec({n, n, n}, 8, {8, 8, 8}, surface3d());
  BrickStorage store = dec.mmap_alloc(1);
  std::vector<int> ranks(26, 0);
  for (auto _ : state) {
    ExchangeView<3> ev(dec, store, ranks);
    benchmark::DoNotOptimize(ev.send_byte_count());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 98);  // segments mapped
}
BENCHMARK(BM_ExchangeViewBuild)->Arg(32)->Arg(64);

void BM_MemMapAliasedWrite(benchmark::State& state) {
  // Writing through brick storage is instantly visible in the views: the
  // "pack" of MemMap is literally a no-op; this measures the plain store
  // bandwidth through the canonical mapping for comparison with
  // BM_PackUnpack.
  const std::int64_t n = state.range(0);
  BrickDecomp<3> dec({n, n, n}, 8, {8, 8, 8}, surface3d());
  BrickStorage store = dec.mmap_alloc(1);
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::memset(store.data(), 0x2A, store.bytes());
    bytes += store.bytes();
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MemMapAliasedWrite)->Arg(32)->Arg(64);

// ---- bit-exactness self-check ----------------------------------------------

template <int B>
bool check_brick_paths(bool use125, std::uint64_t seed) {
  const std::int64_t g = B, r = use125 ? 2 : 1;
  BrickDecomp<3> dec({16, 16, 16}, g, Vec3::fill(B), surface3d());
  BrickInfo<3> info = dec.brick_info();
  BrickStorage sin = dec.allocate(1);
  Rng rng(seed);
  for (std::int64_t i = 0; i < dec.total_brick_count(); ++i) {
    double* p = sin.brick(i);
    for (std::int64_t e = 0; e < dec.elements_per_brick(); ++e)
      p[e] = rng.uniform() * 2.0 - 1.0;
  }
  Brick<B, B, B> bin(&info, &sin, 0);
  const std::vector<Box<3>> boxes = {
      {{0, 0, 0}, {16, 16, 16}},
      stencil::expansion_output_box<3>({16, 16, 16}, g, r, 0),
      {{B, B, B}, {2 * B, 2 * B, 2 * B}},
      {{1, 2, 3}, {6, 15, 9}},
      {{0, 0, 0}, {0, 0, 0}}};
  for (const Box<3>& box : boxes) {
    BrickStorage fast = dec.allocate(1), naive = dec.allocate(1);
    BrickStorage vec = dec.allocate(1);
    Brick<B, B, B> bf(&info, &fast, 0), bn(&info, &naive, 0);
    Brick<B, B, B> bv(&info, &vec, 0);
    if (use125) {
      stencil::apply125_bricks<B, B, B>(dec, bf, bin, box);
      stencil::apply125_bricks_naive<B, B, B>(dec, bn, bin, box);
      stencil::engine_apply125_simd<B, B, B, simd::kActiveWidth>(dec, bv, bin,
                                                                 box);
    } else {
      stencil::apply7_bricks<B, B, B>(dec, bf, bin, box);
      stencil::apply7_bricks_naive<B, B, B>(dec, bn, bin, box);
      stencil::engine_apply7_simd<B, B, B, simd::kActiveWidth>(dec, bv, bin,
                                                               box);
    }
    if (std::memcmp(vec.data(), naive.data(), vec.bytes()) != 0) {
      std::fprintf(stderr,
                   "self-check FAILED (simd W=%d): brick=%d use125=%d\n",
                   simd::kActiveWidth, B, use125 ? 1 : 0);
      return false;
    }
    if (std::memcmp(fast.data(), naive.data(), fast.bytes()) != 0) {
      std::fprintf(stderr,
                   "self-check FAILED: brick=%d use125=%d box.lo=(%lld,%lld,"
                   "%lld)\n",
                   B, use125 ? 1 : 0, static_cast<long long>(box.lo[0]),
                   static_cast<long long>(box.lo[1]),
                   static_cast<long long>(box.lo[2]));
      return false;
    }
  }
  return true;
}

bool check_array_paths(bool use125) {
  Rng rng(0xa11a7);
  const Box<3> frame{{-4, -4, -4}, {14, 14, 14}};
  CellArray3 in(frame);
  for_each(frame, [&](const Vec3& p) { in.at(p) = rng.uniform() - 0.5; });
  const std::vector<Box<3>> boxes = {{{0, 0, 0}, {10, 10, 10}},
                                     {{-2, -2, -2}, {12, 12, 12}},
                                     {{1, 3, 2}, {7, 5, 11}},
                                     {{0, 0, 0}, {0, 0, 0}}};
  for (const Box<3>& box : boxes) {
    CellArray3 fast(frame), naive(frame);
    if (use125) {
      stencil::apply125_array(in, fast, box);
      stencil::apply125_array_naive(in, naive, box);
    } else {
      stencil::apply7_array(in, fast, box);
      stencil::apply7_array_naive(in, naive, box);
    }
    if (std::memcmp(fast.raw().data(), naive.raw().data(),
                    fast.raw().size() * sizeof(double)) != 0) {
      std::fprintf(stderr, "self-check FAILED: array use125=%d\n",
                   use125 ? 1 : 0);
      return false;
    }
  }
  return true;
}

bool run_self_check() {
  bool ok = true;
  ok = check_brick_paths<4>(false, 11) && ok;
  ok = check_brick_paths<8>(false, 12) && ok;
  ok = check_brick_paths<4>(true, 13) && ok;
  ok = check_brick_paths<8>(true, 14) && ok;
  ok = check_array_paths(false) && ok;
  ok = check_array_paths(true) && ok;
  std::printf("self-check: %s\n", ok ? "pass" : "FAIL");
  return ok;
}

// ---- measured trajectory (--json-out) --------------------------------------

struct KernelPoint {
  const char* kernel;   ///< "7pt" | "125pt"
  const char* storage;  ///< "brick" | "array"
  int brick;            ///< brick extent, 0 for array storage
  const char* path;     ///< "naive" | "fast" | "simd"
  double cells_per_s = 0;
  std::int64_t iters = 0;
  double seconds = 0;
  /// Vector lanes of the measured path: 0 for naive (per-access), 1 for
  /// the scalar fast tiles, simd::kActiveWidth for the explicit-SIMD tier.
  int width = 0;
  /// Coupled AoSoA fields evolved per application (cells scales with it).
  int fields = 1;
};

/// Time `fn` (one full-domain kernel application over `cells` cells),
/// doubling the batch until it runs for at least `min_s` seconds.
template <typename F>
void measure(KernelPoint& pt, std::int64_t cells, F&& fn) {
  using clock = std::chrono::steady_clock;
  constexpr double min_s = 0.15;
  std::int64_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::int64_t i = 0; i < iters; ++i) fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= min_s) {
      pt.iters = iters;
      pt.seconds = s;
      pt.cells_per_s =
          static_cast<double>(cells * iters) / (s > 0 ? s : 1e-12);
      return;
    }
    iters = s > 0 ? std::max<std::int64_t>(
                        iters * 2, static_cast<std::int64_t>(
                                       static_cast<double>(iters) * min_s /
                                       s * 1.2))
                  : iters * 2;
  }
}

template <int B>
void measure_bricks(std::vector<KernelPoint>& out, std::int64_t n) {
  BrickSetup s(n, B);
  Brick<B, B, B> bin(&s.info, &s.in, 0), bout(&s.info, &s.out, 0);
  const Box<3> box{{0, 0, 0}, {n, n, n}};
  const std::int64_t cells = n * n * n;
  // Three paths per kernel: naive per-access, the scalar fast tiles
  // (forced W=1), and the explicit-SIMD tier at the build's active width.
  // All three are bit-identical; only throughput differs.
  for (bool use125 : {false, true}) {
    for (const char* path : {"naive", "fast", "simd"}) {
      KernelPoint pt{use125 ? "125pt" : "7pt", "brick", B, path, 0, 0, 0,
                     0,     1};
      const bool naive = std::strcmp(path, "naive") == 0;
      const bool vec = std::strcmp(path, "simd") == 0;
      pt.width = naive ? 0 : (vec ? simd::kActiveWidth : 1);
      measure(pt, cells, [&] {
        if (use125) {
          if (naive) {
            stencil::apply125_bricks_naive<B, B, B>(s.dec, bout, bin, box);
          } else if (vec) {
            stencil::engine_apply125_simd<B, B, B, simd::kActiveWidth>(
                s.dec, bout, bin, box);
          } else {
            stencil::engine_apply125_simd<B, B, B, 1>(s.dec, bout, bin, box);
          }
        } else if (naive) {
          stencil::apply7_bricks_naive<B, B, B>(s.dec, bout, bin, box);
        } else if (vec) {
          stencil::engine_apply7_simd<B, B, B, simd::kActiveWidth>(s.dec, bout,
                                                                   bin, box);
        } else {
          stencil::engine_apply7_simd<B, B, B, 1>(s.dec, bout, bin, box);
        }
        benchmark::ClobberMemory();
      });
      out.push_back(pt);
    }
  }
}

/// The field-count axis: evolve F coupled AoSoA fields per application
/// (brick 8, SIMD path). Cells processed scales with F, so cells/s staying
/// flat means the AoSoA offsets cost nothing over the single-field layout.
void measure_fields(std::vector<KernelPoint>& out, std::int64_t n) {
  constexpr int B = 8;
  // F = 1 is the plain simd row from measure_bricks; only F > 1 is new.
  for (int F : {2, 4}) {
    BrickDecomp<3> dec({n, n, n}, B, {B, B, B}, surface3d());
    BrickInfo<3> info = dec.brick_info();
    BrickStorage in = dec.allocate(F), o = dec.allocate(F);
    Rng rng(0xf1e1d5);
    for (std::int64_t i = 0; i < dec.total_brick_count(); ++i) {
      double* p = in.brick(i);
      for (std::int64_t e = 0; e < dec.elements_per_brick() * F; ++e)
        p[e] = rng.uniform() * 2.0 - 1.0;
    }
    const Box<3> box{{0, 0, 0}, {n, n, n}};
    for (bool use125 : {false, true}) {
      KernelPoint pt{use125 ? "125pt" : "7pt", "brick", B, "simd", 0, 0, 0,
                     simd::kActiveWidth, F};
      measure(pt, n * n * n * F, [&] {
        for (int f = 0; f < F; ++f) {
          const std::int64_t off = f * dec.elements_per_brick();
          Brick<B, B, B> bin(&info, &in, off), bout(&info, &o, off);
          if (use125) {
            stencil::engine_apply125_simd<B, B, B, simd::kActiveWidth>(
                dec, bout, bin, box);
          } else {
            stencil::engine_apply7_simd<B, B, B, simd::kActiveWidth>(dec, bout,
                                                                     bin, box);
          }
        }
        benchmark::ClobberMemory();
      });
      out.push_back(pt);
    }
  }
}

void measure_arrays(std::vector<KernelPoint>& out, std::int64_t n) {
  CellArray3 in(Box<3>{{-8, -8, -8}, {n + 8, n + 8, n + 8}});
  CellArray3 o(Box<3>{{-8, -8, -8}, {n + 8, n + 8, n + 8}});
  Rng rng(0xcafe);
  for_each(in.box(), [&](const Vec3& p) { in.at(p) = rng.uniform(); });
  const Box<3> box{{0, 0, 0}, {n, n, n}};
  const std::int64_t cells = n * n * n;
  for (bool use125 : {false, true}) {
    for (bool naive : {true, false}) {
      KernelPoint pt{use125 ? "125pt" : "7pt", "array", 0,
                     naive ? "naive" : "fast", 0, 0, 0, naive ? 0 : 1, 1};
      measure(pt, cells, [&] {
        if (use125) {
          if (naive) {
            stencil::apply125_array_naive(in, o, box);
          } else {
            stencil::apply125_array(in, o, box);
          }
        } else if (naive) {
          stencil::apply7_array_naive(in, o, box);
        } else {
          stencil::apply7_array(in, o, box);
        }
        benchmark::ClobberMemory();
      });
      out.push_back(pt);
    }
  }
}

double find_cells_per_s(const std::vector<KernelPoint>& pts,
                        const char* kernel, const char* storage, int brick,
                        const char* path, int fields = 1) {
  for (const auto& p : pts)
    if (std::strcmp(p.kernel, kernel) == 0 &&
        std::strcmp(p.storage, storage) == 0 && p.brick == brick &&
        std::strcmp(p.path, path) == 0 && p.fields == fields)
      return p.cells_per_s;
  return 0;
}

int write_json(const std::string& file, bool self_check_passed) {
  const std::int64_t n = 32;
  std::vector<KernelPoint> pts;
  measure_bricks<4>(pts, n);
  measure_bricks<8>(pts, n);
  measure_arrays(pts, n);
  measure_fields(pts, n);

  FILE* f = std::fopen(file.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "micro_kernels: cannot open %s\n", file.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"micro_kernels\",\n");
  // v2: build provenance block, per-result width/fields axes, the "simd"
  // path, and simd-vs-fast speedup ratios (DESIGN.md §16).
  std::fprintf(f, "  \"schema_version\": 2,\n");
  std::fprintf(f, "  \"build_type\": \"%s\",\n", BRICKX_BUILD_TYPE);
  // Provenance: trajectory points are only comparable when the toolchain
  // and vector configuration match — stamp everything that moves cells/s.
  std::fprintf(f, "  \"provenance\": {\n");
  std::fprintf(f, "    \"compiler\": \"%s\",\n", BRICKX_COMPILER_ID);
  std::fprintf(f, "    \"compiler_version\": \"%s\",\n", __VERSION__);
  std::fprintf(f, "    \"cxx_flags\": \"%s\",\n", BRICKX_CXX_FLAGS);
  std::fprintf(f, "    \"march_native\": %s,\n",
               BRICKX_NATIVE_FLAG ? "true" : "false");
  std::fprintf(f, "    \"simd_isa\": \"%s\",\n", simd::isa_name());
  std::fprintf(f, "    \"simd_detected_width\": %d,\n", simd::kDetectedWidth);
  std::fprintf(f, "    \"simd_active_width\": %d\n", simd::kActiveWidth);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"domain\": %lld,\n", static_cast<long long>(n));
  std::fprintf(f, "  \"self_check\": \"%s\",\n",
               self_check_passed ? "pass" : "not-run");
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const KernelPoint& p = pts[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"storage\": \"%s\", \"brick\": "
                 "%d, \"path\": \"%s\", \"width\": %d, \"fields\": %d, "
                 "\"cells_per_s\": %.6e, \"iters\": %lld, \"seconds\": "
                 "%.4f}%s\n",
                 p.kernel, p.storage, p.brick, p.path, p.width, p.fields,
                 p.cells_per_s, static_cast<long long>(p.iters), p.seconds,
                 i + 1 < pts.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Headline ratios of the perf trajectory (ISSUE 5 acceptance: the 8^3
  // 125-point interior fast path must be >= 3x the naive kernel; ISSUE 10:
  // the explicit-SIMD interior must beat the scalar fast path).
  std::fprintf(f, "  \"speedups\": {\n");
  const struct {
    const char* name;
    const char* kernel;
    const char* storage;
    int brick;
  } pairs[] = {{"brick8_125pt", "125pt", "brick", 8},
               {"brick8_7pt", "7pt", "brick", 8},
               {"brick4_125pt", "125pt", "brick", 4},
               {"brick4_7pt", "7pt", "brick", 4},
               {"array_125pt", "125pt", "array", 0},
               {"array_7pt", "7pt", "array", 0}};
  for (const auto& pr : pairs) {
    const double fast =
        find_cells_per_s(pts, pr.kernel, pr.storage, pr.brick, "fast");
    const double naive =
        find_cells_per_s(pts, pr.kernel, pr.storage, pr.brick, "naive");
    std::fprintf(f, "    \"%s\": %.2f,\n", pr.name,
                 naive > 0 ? fast / naive : 0);
  }
  const struct {
    const char* name;
    const char* kernel;
    int brick;
  } simd_pairs[] = {{"simd_vs_fast_brick8_125pt", "125pt", 8},
                    {"simd_vs_fast_brick8_7pt", "7pt", 8},
                    {"simd_vs_fast_brick4_125pt", "125pt", 4},
                    {"simd_vs_fast_brick4_7pt", "7pt", 4}};
  for (std::size_t i = 0; i < std::size(simd_pairs); ++i) {
    const auto& pr = simd_pairs[i];
    const double vec = find_cells_per_s(pts, pr.kernel, "brick", pr.brick,
                                        "simd");
    const double fast = find_cells_per_s(pts, pr.kernel, "brick", pr.brick,
                                         "fast");
    std::fprintf(f, "    \"%s\": %.2f%s\n", pr.name,
                 fast > 0 ? vec / fast : 0,
                 i + 1 < std::size(simd_pairs) ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);

  for (const auto& p : pts)
    std::printf(
        "%-6s %-5s b=%d %-5s W=%d F=%d : %10.3e cells/s  (%lld iters, "
        "%.2fs)\n",
        p.kernel, p.storage, p.brick, p.path, p.width, p.fields,
        p.cells_per_s, static_cast<long long>(p.iters), p.seconds);
  const double headline =
      find_cells_per_s(pts, "125pt", "brick", 8, "fast") /
      find_cells_per_s(pts, "125pt", "brick", 8, "naive");
  std::printf("8^3 125-point fast-path speedup: %.2fx\n", headline);
  const double simd_headline =
      find_cells_per_s(pts, "125pt", "brick", 8, "simd") /
      find_cells_per_s(pts, "125pt", "brick", 8, "fast");
  std::printf("8^3 125-point simd-vs-fast speedup (W=%d): %.2fx\n",
              simd::kActiveWidth, simd_headline);
  std::printf("micro_kernels: wrote %s\n", file.c_str());
  return 0;
}

}  // namespace
}  // namespace brickx

int main(int argc, char** argv) {
  std::string json_out;
  bool self_check = false;
  std::vector<char*> pass;
  pass.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--json-out=", 0) == 0) {
      json_out = a.substr(std::strlen("--json-out="));
    } else if (a == "--self-check") {
      self_check = true;
    } else {
      pass.push_back(argv[i]);
    }
  }
  if (self_check || !json_out.empty()) {
    bool ok = true;
    if (self_check) ok = brickx::run_self_check();
    if (!ok) return 1;
    if (!json_out.empty()) return brickx::write_json(json_out, self_check);
    return 0;
  }
  int bargc = static_cast<int>(pass.size());
  benchmark::Initialize(&bargc, pass.data());
  if (benchmark::ReportUnrecognizedArguments(bargc, pass.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
