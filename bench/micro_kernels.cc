// Real (wall-clock, single-core) microbenchmarks backing the simulation:
// brick vs array stencil kernels, pack/unpack copy throughput, datatype
// gather throughput, and mmap view construction cost. These are the only
// benches that measure this host rather than the virtual clock.

#include <benchmark/benchmark.h>

#include <cstring>

#include "baseline/array_exchange.h"
#include "core/brick.h"
#include "core/cell_array.h"
#include "core/decomp.h"
#include "core/exchange_view.h"
#include "memmap/view.h"
#include "simmpi/cart.h"
#include "stencil/stencils.h"

namespace brickx {
namespace {

struct BrickSetup {
  BrickDecomp<3> dec;
  BrickInfo<3> info;
  BrickStorage in, out;
  BrickSetup(std::int64_t n)
      : dec({n, n, n}, 8, {8, 8, 8}, surface3d()),
        info(dec.brick_info()),
        in(dec.allocate(1)),
        out(dec.allocate(1)) {}
};

void BM_Brick7Point(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  BrickSetup s(n);
  Brick<8, 8, 8> bin(&s.info, &s.in, 0), bout(&s.info, &s.out, 0);
  const Box<3> box{{0, 0, 0}, {n, n, n}};
  for (auto _ : state) {
    stencil::apply7_bricks<8, 8, 8>(s.dec, bout, bin, box);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Brick7Point)->Arg(32)->Arg(64);

void BM_Array7Point(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  CellArray3 in(Box<3>{{-8, -8, -8}, {n + 8, n + 8, n + 8}});
  CellArray3 out(Box<3>{{-8, -8, -8}, {n + 8, n + 8, n + 8}});
  const Box<3> box{{0, 0, 0}, {n, n, n}};
  for (auto _ : state) {
    stencil::apply7_array(in, out, box);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Array7Point)->Arg(32)->Arg(64);

void BM_Brick125Point(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  BrickSetup s(n);
  Brick<8, 8, 8> bin(&s.info, &s.in, 0), bout(&s.info, &s.out, 0);
  const Box<3> box{{0, 0, 0}, {n, n, n}};
  for (auto _ : state) {
    stencil::apply125_bricks<8, 8, 8>(s.dec, bout, bin, box);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Brick125Point)->Arg(32);

void BM_PackUnpack(benchmark::State& state) {
  // The on-node data movement the paper eliminates: pack all 26 surface
  // boxes into staging buffers and unpack back.
  const std::int64_t n = state.range(0);
  const Vec3 N{n, n, n};
  CellArray3 field(Box<3>{{-8, -8, -8}, {n + 8, n + 8, n + 8}});
  const auto dirs = mpi::Cart<3>::all_directions();
  std::vector<int> ranks(dirs.size(), 0);
  baseline::PackExchanger ex(N, 8, dirs, ranks);
  std::size_t bytes = 0;
  for (auto _ : state) {
    bytes += ex.pack(field);
    bytes += ex.unpack(field);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PackUnpack)->Arg(32)->Arg(64)->Arg(128);

void BM_DatatypeGather(benchmark::State& state) {
  // MPI_Types' internal packing: gather a maximally strided face.
  const std::int64_t n = state.range(0);
  const Vec3 sizes{n + 16, n + 16, n + 16};
  std::vector<double> grid(static_cast<std::size_t>(sizes.prod()));
  auto face = mpi::Datatype::subarray<3>(sizes, {8, n, n}, {8, 8, 8},
                                         sizeof(double));
  std::vector<std::byte> out(face.size());
  std::size_t bytes = 0;
  for (auto _ : state) {
    face.flat().gather(reinterpret_cast<const std::byte*>(grid.data()),
                       out.data());
    bytes += face.size();
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["blocks"] = static_cast<double>(face.block_count());
}
BENCHMARK(BM_DatatypeGather)->Arg(32)->Arg(64)->Arg(128);

void BM_ExchangeViewBuild(benchmark::State& state) {
  // Cost of constructing all per-neighbor mmap views (paid once per
  // communication pattern, amortized over every timestep).
  const std::int64_t n = state.range(0);
  BrickDecomp<3> dec({n, n, n}, 8, {8, 8, 8}, surface3d());
  BrickStorage store = dec.mmap_alloc(1);
  std::vector<int> ranks(26, 0);
  for (auto _ : state) {
    ExchangeView<3> ev(dec, store, ranks);
    benchmark::DoNotOptimize(ev.send_byte_count());
  }
  state.SetItemsProcessed(state.iterations() * 2 * 98);  // segments mapped
}
BENCHMARK(BM_ExchangeViewBuild)->Arg(32)->Arg(64);

void BM_MemMapAliasedWrite(benchmark::State& state) {
  // Writing through brick storage is instantly visible in the views: the
  // "pack" of MemMap is literally a no-op; this measures the plain store
  // bandwidth through the canonical mapping for comparison with
  // BM_PackUnpack.
  const std::int64_t n = state.range(0);
  BrickDecomp<3> dec({n, n, n}, 8, {8, 8, 8}, surface3d());
  BrickStorage store = dec.mmap_alloc(1);
  std::size_t bytes = 0;
  for (auto _ : state) {
    std::memset(store.data(), 0x2A, store.bytes());
    bytes += store.bytes();
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MemMapAliasedWrite)->Arg(32)->Arg(64);

}  // namespace
}  // namespace brickx

BENCHMARK_MAIN();
