// Figure 13 (V1): 7-point stencil throughput on 8 simulated V100 nodes
// (one GPU/rank per node) vs subdomain size, for LayoutCA, LayoutUM,
// MemMapUM and MPI_TypesUM. Paper claim: Layout and MemMap far outperform
// MPI_Types; CUDA-Aware Layout leads.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::GpuMode;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig13_v1_scaling", "Fig 13: V1 GPU 7-point throughput");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Figure 13",
         "(V1) 7-point GStencil/s on 8 Summit nodes (simulated V100, one "
         "rank/GPU per node). CA = CUDA-Aware MPI on device memory, UM = "
         "unified memory with ATS.");

  Table t({"dim", "LayoutCA", "LayoutUM", "MemMapUM", "MPI_TypesUM"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    const auto lca = run(v1_config(s, Method::Layout, GpuMode::CudaAware));
    const auto lum = run(v1_config(s, Method::Layout, GpuMode::Unified));
    const auto mum = run(v1_config(s, Method::MemMap, GpuMode::Unified));
    const auto tum = run(v1_config(s, Method::MpiTypes, GpuMode::Unified));
    t.row()
        .cell(s)
        .cell(gsps(lca.gstencils))
        .cell(gsps(lum.gstencils))
        .cell(gsps(mum.gstencils))
        .cell(gsps(tum.gstencils));
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: LayoutCA highest across the sweep; LayoutUM "
      "and MemMapUM close behind; MPI_TypesUM one to two orders of "
      "magnitude lower and flattening early.\n");
  return 0;
}
