// Figure 14 (V1): per-timestep communication time on 8 simulated V100
// nodes: MPI_TypesUM, MemMapUM, LayoutUM, LayoutCA and the CUDA-Aware
// Network floor, with MemMapUM compute for reference. Paper claim:
// LayoutCA approaches the NetworkCA floor (GPUDirect RDMA, no staging).

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::GpuMode;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig14_v1_comm_time", "Fig 14: V1 GPU communication time");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Figure 14",
         "(V1) Communication time (ms per timestep) on 8 Summit nodes. "
         "NetworkCA = per-neighbor contiguous device-memory messages.");

  Table t({"dim", "MPI_TypesUM", "MemMapUM", "LayoutUM", "LayoutCA",
           "LayoutCA+OL", "NetworkCA", "Comp"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    const auto tum = run(v1_config(s, Method::MpiTypes, GpuMode::Unified));
    const auto mum = run(v1_config(s, Method::MemMap, GpuMode::Unified));
    const auto lum = run(v1_config(s, Method::Layout, GpuMode::Unified));
    const auto lca = run(v1_config(s, Method::Layout, GpuMode::CudaAware));
    // Partitioned dependency scheduler (DESIGN.md §14): exposed comm time
    // once interior compute hides what it can of the ghost traffic.
    auto ol_cfg = v1_config(s, Method::Layout, GpuMode::CudaAware);
    ol_cfg.overlap = true;
    const auto lca_ol = run(ol_cfg);
    const auto net = run(v1_config(s, Method::Network, GpuMode::CudaAware));
    t.row()
        .cell(s)
        .cell(ms(tum.comm_per_step))
        .cell(ms(mum.comm_per_step))
        .cell(ms(lum.comm_per_step))
        .cell(ms(lca.comm_per_step))
        .cell(ms(lca_ol.comm_per_step))
        .cell(ms(net.comm_per_step))
        .cell(ms(mum.calc.avg()));
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: LayoutCA ~ NetworkCA floor; LayoutUM below "
      "MemMapUM at mid sizes (padding costs MemMap bytes); MPI_TypesUM "
      "orders of magnitude above everything. LayoutCA+OL = exposed comm "
      "under the partitioned overlap scheduler — it can dip below the "
      "NetworkCA floor at large subdomains (hiding beats a floor that "
      "must still be waited on) but converges back to LayoutCA where "
      "Comp is too small to hide behind.\n");
  return 0;
}
