// Figure 9 (K1): per-timestep communication time on 8 KNL nodes for
// MPI_Types, YASK, Layout, MemMap, the Network floor, and the MemMap
// compute time for reference. Paper claim: Layout and MemMap nearly reach
// the Network floor; MemMap is up to 14.4x faster than YASK and 460x
// faster than MPI_Types.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig09_k1_comm_time", "Fig 9: K1 communication time");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Figure 9",
         "(K1) Communication time (ms per timestep) on 8 KNL nodes. "
         "Network = minimum time moving the same bytes in per-neighbor "
         "contiguous messages; Comp = MemMap compute time for scale.");

  Table t({"dim", "MPI_Types", "YASK", "Layout", "Layout+OL", "MemMap",
           "Network", "Comp", "MemMap.vs.YASK", "MemMap.vs.Types"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    const auto types = run(k1_config(s, Method::MpiTypes));
    const auto yask = run(k1_config(s, Method::Yask));
    const auto layout = run(k1_config(s, Method::Layout));
    // Partitioned dependency scheduler (DESIGN.md §14): interior compute
    // hides ghost traffic, so the *exposed* comm time shrinks wherever a
    // step's compute covers the transfer — much at large subdomains,
    // little at small ones where there is no compute to hide behind.
    auto ol_cfg = k1_config(s, Method::Layout);
    ol_cfg.overlap = true;
    const auto layout_ol = run(ol_cfg);
    const auto memmap = run(k1_config(s, Method::MemMap));
    const auto net = run(k1_config(s, Method::Network));
    t.row()
        .cell(s)
        .cell(ms(types.comm_per_step))
        .cell(ms(yask.comm_per_step))
        .cell(ms(layout.comm_per_step))
        .cell(ms(layout_ol.comm_per_step))
        .cell(ms(memmap.comm_per_step))
        .cell(ms(net.comm_per_step))
        .cell(ms(memmap.calc.avg()))
        .cell(yask.comm_per_step / memmap.comm_per_step, 1)
        .cell(types.comm_per_step / memmap.comm_per_step, 1);
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: MemMap tracks the Network floor across the "
      "sweep; Layout sits slightly above it; the YASK gap grows toward "
      "small subdomains (paper: 14.4x) and MPI_Types is orders of magnitude "
      "slower (paper: 460x); Comp << Comm for small subdomains. Layout+OL "
      "= exposed comm with the partitioned overlap scheduler: it dips "
      "below Layout only where Comp is large enough to hide behind — at "
      "small subdomains overlap has nothing left to buy, which is the "
      "paper's argument for eliminating on-node movement instead.\n");
  return 0;
}
