// Figure 1: per-timestep time breakdown (Compute / MPI / Packing) of the
// packing baseline (YASK stand-in) vs the proposed pack-free exchange
// (MemMap), on 8 KNL nodes as the subdomain shrinks 256^3 -> 16^3.
// The paper's claim: packing dominates for all but the largest subdomains,
// and eliminating it yields up to 14.4x faster communication.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig01_breakdown", "Fig 1: time breakdown YASK vs proposed");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Figure 1",
         "Time breakdown per timestep on 8 KNL nodes (model: theta). YASK = "
         "array layout with explicit packing; Proposed = MemMap pack-free "
         "exchange. Percentages are relative to the YASK total, matching the "
         "figure's y-axis.");

  Table t({"dim", "yask.comp(ms)", "yask.mpi(ms)", "yask.pack(ms)",
           "yask.total(ms)", "prop.comp(ms)", "prop.mpi(ms)",
           "prop.total(%ofYASK)", "pack(%ofYASK)", "comm.speedup"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    const harness::Result yask = run(k1_config(s, Method::Yask));
    const harness::Result prop = run(k1_config(s, Method::MemMap));
    const double y_mpi = yask.call.avg() + yask.wait.avg();
    const double y_total = yask.calc.avg() + y_mpi + yask.pack.avg();
    const double p_mpi = prop.call.avg() + prop.wait.avg();
    const double p_total = prop.calc.avg() + p_mpi;
    t.row()
        .cell(s)
        .cell(ms(yask.calc.avg()))
        .cell(ms(y_mpi))
        .cell(ms(yask.pack.avg()))
        .cell(ms(y_total))
        .cell(ms(prop.calc.avg()))
        .cell(ms(p_mpi))
        .cell(100.0 * p_total / y_total, 1)
        .cell(100.0 * yask.pack.avg() / y_total, 1)
        .cell(yask.comm_per_step / prop.comm_per_step, 2);
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: pack%% grows as the subdomain shrinks and "
      "dominates below ~128^3; comm speedup grows toward the small end "
      "(paper: up to 14.4x).\n");
  return 0;
}
