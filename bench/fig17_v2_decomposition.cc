// Figure 17 (V2): communication vs computation decomposition of the
// 7-point GPU strong-scaling run (Figure 16). Paper claim: communication
// dominates at every scale on Summit — optimizing it is the whole game.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::GpuMode;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig17_v2_decomposition", "Fig 17: V2 comm/comp split");
  ap.add("-g", "global domain edge", "384");
  ap.add("-n", "comma-separated node counts (6 ranks each)",
         "8,16,32,64");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  const Vec3 global = Vec3::fill(ap.get_int("-g"));
  banner("Figure 17",
         "(V2) 7-point strong scaling: Comm vs Comp (ms per timestep) for "
         "MPI_TypesUM, MemMapUM, LayoutCA.");

  Table t({"nodes", "Types.comm", "Types.comp", "MemMap.comm", "MemMap.comp",
           "LayoutCA.comm", "LayoutCA.comp"});
  for (std::int64_t nodes : ap.get_int_list("-n")) {
    const int ranks = static_cast<int>(nodes) * 6;
    auto go = [&](Method m, GpuMode g) {
      return run(strong_config(model::summit(), global, ranks, m, g, false));
    };
    const auto tum = go(Method::MpiTypes, GpuMode::Unified);
    const auto mum = go(Method::MemMap, GpuMode::Unified);
    const auto lca = go(Method::Layout, GpuMode::CudaAware);
    t.row()
        .cell(nodes)
        .cell(ms(tum.comm_per_step))
        .cell(ms(tum.calc.avg()))
        .cell(ms(mum.comm_per_step))
        .cell(ms(mum.calc.avg()))
        .cell(ms(lca.comm_per_step))
        .cell(ms(lca.calc.avg()));
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: Comm > Comp for every method at every node "
      "count (application is communication-dominated on the GPU machine); "
      "LayoutCA holds the lowest Comm line.\n");
  return 0;
}
