// Ablation: the paper's footnote 2 — "CUDA release 10.2 onward provides
// cuMemMap which may permit memory mapping using device memory. However,
// currently this is not supported on Summit." This bench quantifies that
// hypothetical: MemMapCA (views over device memory, GPUDirect, no faults,
// one message per neighbor) against what Summit actually offered.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::GpuMode;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("abl_cumemmap", "ablation: hypothetical MemMapCA (cuMemMap)");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Ablation: cuMemMap (future work)",
         "Communication and compute time (ms per timestep) on 8 simulated "
         "V100 nodes with cuMemMap enabled (summit_future model).");

  Table t({"dim", "LayoutCA.comm", "MemMapUM.comm", "MemMapCA.comm",
           "LayoutCA.calc", "MemMapCA.calc", "MemMapCA.msgs"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    auto go = [&](Method m, GpuMode gm) {
      auto cfg = v1_config(s, m, gm);
      cfg.machine = model::summit_future();
      return run(cfg);
    };
    const auto lca = go(Method::Layout, GpuMode::CudaAware);
    const auto mum = go(Method::MemMap, GpuMode::Unified);
    const auto mca = go(Method::MemMap, GpuMode::CudaAware);
    t.row()
        .cell(s)
        .cell(ms(lca.comm_per_step))
        .cell(ms(mum.comm_per_step))
        .cell(ms(mca.comm_per_step))
        .cell(ms(lca.calc.avg()))
        .cell(ms(mca.calc.avg()))
        .cell(mca.msgs_per_rank);
  }
  t.print(std::cout);
  std::printf(
      "\nExpected: MemMapCA combines MemMap's 26 messages with the "
      "CUDA-Aware path's zero fault cost — compute identical to LayoutCA, "
      "communication between LayoutCA and MemMapUM (it still ships the "
      "64 KiB padding).\n");
  return 0;
}
