// Ablation: how much the layout *choice* matters and what it takes to find
// a good one — message counts of lexicographic, random, Figure-2-style,
// hill-climbed (several budgets) and the constructed-optimal orders, for
// D = 2 and D = 3, against the Eq. 1 bound.

#include "bench_common.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/layout.h"
#include "core/region.h"

using namespace brickx;
using namespace brickx::bench;

namespace {

double random_average(int dims, int samples) {
  Rng rng(42);
  Stats st;
  for (int i = 0; i < samples; ++i) {
    LayoutSpec s{all_surface_signatures(dims)};
    for (std::size_t j = s.order.size(); j > 1; --j)
      std::swap(s.order[j - 1], s.order[rng.below(j)]);
    st.add(static_cast<double>(message_count(s, dims)));
  }
  return st.avg();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser ap("abl_layout_search", "ablation: layout order search");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  // No simulated runs here (pure layout math), but the shared flags keep
  // the artifact interface uniform across the suite.
  ObsGuard obs_guard(ap);

  banner("Ablation: layout search",
         "Messages needed by different surface orders (send side, canonical "
         "nonempty regions).");

  Table t({"order", "D=2", "D=3"});
  t.row()
      .cell("Eq.1 lower bound")
      .cell(layout_message_lower_bound(2))
      .cell(layout_message_lower_bound(3));
  t.row()
      .cell("library constant (surface2d/3d)")
      .cell(message_count(surface2d(), 2))
      .cell(message_count(surface3d(), 3));
  t.row()
      .cell("hill climb, 2k evals")
      .cell(message_count(optimize_layout(2, 2000, 3), 2))
      .cell(message_count(optimize_layout(3, 2000, 3), 3));
  t.row()
      .cell("hill climb, 60k evals")
      .cell(message_count(optimize_layout(2, 60000, 3), 2))
      .cell(message_count(optimize_layout(3, 60000, 3), 3));
  t.row()
      .cell("lexicographic")
      .cell(message_count(lexicographic_layout(2), 2))
      .cell(message_count(lexicographic_layout(3), 3));
  t.row()
      .cell("random (avg of 200)")
      .cell(random_average(2, 200), 1)
      .cell(random_average(3, 200), 1);
  t.row()
      .cell("Basic (no merging, Eq.3)")
      .cell(basic_message_count(2))
      .cell(basic_message_count(3));
  t.print(std::cout);
  std::printf(
      "\nTakeaways: arbitrary orders land near the Basic ceiling; cheap "
      "local search recovers most of the gap; the constructed constants "
      "reach the Eq. 1 bound exactly, which is why the library ships them "
      "as constants rather than searching at runtime.\n");
  return 0;
}
