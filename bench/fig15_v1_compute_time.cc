// Figure 15 (V1): per-timestep compute time on 8 simulated V100 nodes.
// Paper claim: LayoutCA and MemMapUM compute fastest; LayoutUM and
// MPI_TypesUM suffer because their communicated regions are not aligned to
// (64 KiB) page boundaries, so unified-memory pages fragment and fault
// back during the kernel.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::GpuMode;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig15_v1_compute_time", "Fig 15: V1 GPU compute time");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Figure 15",
         "(V1) Compute time (ms per timestep) on 8 Summit nodes; unified "
         "memory charges page-fault backwash to the kernel that pulls the "
         "pages home.");

  Table t({"dim", "MPI_TypesUM", "MemMapUM", "LayoutUM", "LayoutCA"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    const auto tum = run(v1_config(s, Method::MpiTypes, GpuMode::Unified));
    const auto mum = run(v1_config(s, Method::MemMap, GpuMode::Unified));
    const auto lum = run(v1_config(s, Method::Layout, GpuMode::Unified));
    const auto lca = run(v1_config(s, Method::Layout, GpuMode::CudaAware));
    t.row()
        .cell(s)
        .cell(ms(tum.calc.avg()))
        .cell(ms(mum.calc.avg()))
        .cell(ms(lum.calc.avg()))
        .cell(ms(lca.calc.avg()));
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: LayoutCA fastest (no faults); at page-"
      "relevant sizes (>=128) MemMapUM beats LayoutUM thanks to page-"
      "aligned chunks; MPI_TypesUM worst (every strided row fragments "
      "pages).\n");
  return 0;
}
