// Ablation: the on-node transport tier (DESIGN.md §13). With several ranks
// per node, a flat transport pushes every same-node message through the
// fabric model and every inter-node message individually; the shm tier
// short-circuits same-node pairs through shared memory, and shm-agg
// additionally coalesces the co-located ranks' inter-node sends into one
// framed fabric flow per (node, neighbor-node, generation). This bench runs
// the same configuration under all three tiers on a routed fabric and
// checks the structural identities the tier guarantees:
//
//   * delivery is transport-invariant: rank 0 receives the same message
//     and byte counts under flat, shm, and shm-agg;
//   * shm only removes node-local traffic: the fabric-crossing message
//     count is identical to flat;
//   * aggregation is lossless: every flat fabric message reappears as
//     exactly one sub-message of some shm-agg frame;
//   * aggregation is effective: sub-messages per frame >= ranks_per_node,
//     so the per-link fabric message count drops by at least that factor.

#include <cstdio>
#include <fstream>

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

namespace {

struct Point {
  std::int64_t dim = 0;
  const char* method = nullptr;
  harness::Result flat, shm, agg;
  double subs_per_frame = 0.0;
};

harness::Config base_config(std::int64_t dim, Method m, int rpn) {
  harness::Config cfg = k1_config(dim, m);
  cfg.fabric = netsim::FabricKind::FatTree;
  cfg.machine.net.ranks_per_node = rpn;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser ap("abl_transport",
               "ablation: flat vs shm vs shm-agg on-node transport");
  ap.add("-s", "comma-separated subdomain dims", "32,16");
  ap.add("--rpn", "ranks per node (8 ranks total; must divide 8, > 1)", "4");
  ap.add("--json-out", "write the BENCH_transport.json trajectory", "");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  const int rpn = static_cast<int>(ap.get_int("--rpn"));
  BX_CHECK(rpn > 1 && 8 % rpn == 0,
           "--rpn must divide the 8-rank world and exceed 1");

  banner("Ablation: on-node transport tier",
         "Fabric-crossing messages under flat / shm / shm-agg transports on "
         "a routed fat-tree. shm removes node-local fabric traffic; shm-agg "
         "coalesces each node's inter-node sends into one frame per "
         "(neighbor node, generation), cutting per-link message counts by "
         ">= ranks_per_node.");
  std::printf("8 ranks as 2x2x2, %d per node (%d nodes), warmup + one "
              "measured exchange batch\n\n",
              rpn, 8 / rpn);

  std::vector<Point> points;
  Table t({"method", "dim", "fabric_msgs(flat)", "fabric_msgs(shm)",
           "frames(agg)", "submsgs", "subs/frame", "onnode_msgs"});
  bool ok = true;
  auto check = [&](bool cond, const char* what) {
    if (!cond) {
      std::printf("SELF-CHECK FAILED: %s\n", what);
      ok = false;
    }
  };

  for (Method m : {Method::Layout, Method::MemMap}) {
    for (std::int64_t dim : ap.get_int_list("-s")) {
      Point p;
      p.dim = dim;
      p.method = harness::method_name(m);

      harness::Config cfg = base_config(dim, m, rpn);
      cfg.transport = transport::Kind::Flat;
      p.flat = run(cfg);
      cfg.transport = transport::Kind::Shm;
      p.shm = run(cfg);
      cfg.transport = transport::Kind::ShmAgg;
      p.agg = run(cfg);

      const transport::Stats& ts = p.agg.transport_stats;
      p.subs_per_frame =
          ts.agg_frames > 0 ? static_cast<double>(ts.agg_submsgs) /
                                  static_cast<double>(ts.agg_frames)
                            : 0.0;
      t.row()
          .cell(p.method)
          .cell(dim)
          .cell(p.flat.fabric_msgs)
          .cell(p.shm.fabric_msgs)
          .cell(ts.agg_frames)
          .cell(ts.agg_submsgs)
          .cell(p.subs_per_frame, 2)
          .cell(p.shm.transport_stats.onnode_msgs);

      // Delivery is transport-invariant (rank 0, whole run).
      check(p.flat.msgs_recv_per_rank == p.shm.msgs_recv_per_rank &&
                p.flat.msgs_recv_per_rank == p.agg.msgs_recv_per_rank,
            "message delivery count differs across transports");
      check(p.flat.bytes_recv_per_rank == p.shm.bytes_recv_per_rank &&
                p.flat.bytes_recv_per_rank == p.agg.bytes_recv_per_rank,
            "delivered byte count differs across transports");
      // shm touches only node-local traffic.
      check(p.shm.transport_stats.onnode_msgs > 0,
            "shm transport delivered nothing through shared memory");
      check(p.flat.fabric_msgs == p.shm.fabric_msgs,
            "shm changed the fabric-crossing message count");
      // Aggregation is lossless and effective.
      check(ts.agg_submsgs == p.flat.fabric_msgs,
            "shm-agg sub-messages do not cover the flat fabric messages");
      check(p.agg.fabric_msgs == ts.agg_frames,
            "shm-agg put non-frame messages on the fabric");
      check(p.subs_per_frame >= static_cast<double>(rpn),
            "aggregation packed fewer sub-messages per frame than "
            "ranks_per_node");
      points.push_back(p);
    }
  }
  t.print(std::cout);

  std::printf(
      "\nExpected: fabric_msgs(shm) == fabric_msgs(flat) (shm removes only "
      "node-local traffic), submsgs == fabric_msgs(flat) (aggregation is "
      "lossless), and subs/frame >= %d (every co-located rank contributes "
      "to each frame). self-check: %s\n",
      rpn, ok ? "pass" : "FAIL");

  const std::string json = ap.get("--json-out");
  if (!json.empty()) {
    std::ofstream out(json);
    BX_CHECK(out.good(), "cannot open --json-out file");
    out << "{\n  \"schema\": \"brickx-bench-transport-v1\",\n"
        << "  \"ranks\": 8,\n  \"ranks_per_node\": " << rpn << ",\n"
        << "  \"fabric\": \"fat-tree\",\n  \"self_check\": "
        << (ok ? "true" : "false") << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      const transport::Stats& ts = p.agg.transport_stats;
      char buf[512];
      std::snprintf(
          buf, sizeof buf,
          "    {\"method\": \"%s\", \"dim\": %lld, \"fabric_msgs_flat\": "
          "%lld, \"fabric_msgs_shm\": %lld, \"agg_frames\": %lld, "
          "\"agg_submsgs\": %lld, \"subs_per_frame\": %.4f, "
          "\"onnode_msgs\": %lld, \"total_s_flat\": %.9e, \"total_s_agg\": "
          "%.9e}%s\n",
          p.method, static_cast<long long>(p.dim),
          static_cast<long long>(p.flat.fabric_msgs),
          static_cast<long long>(p.shm.fabric_msgs),
          static_cast<long long>(ts.agg_frames),
          static_cast<long long>(ts.agg_submsgs), p.subs_per_frame,
          static_cast<long long>(p.shm.transport_stats.onnode_msgs),
          p.flat.total_seconds, p.agg.total_seconds,
          i + 1 < points.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json.c_str());
  }
  return ok ? 0 : 1;
}
