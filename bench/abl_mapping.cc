// Ablation: process-to-node mapping under a routed fabric. With several
// ranks per node, which ranks share a node decides how much of the ghost
// exchange crosses the fabric at all — the greedy volume-minimizing map
// keeps cartesian neighbors together, round-robin tears them apart, and
// block (the flat model's implicit choice) sits in between. The table
// reports the cut volume each mapping leaves on the wire and the exchange
// time the contention fabric charges for it.

#include "bench_common.h"
#include "netsim/mapping.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("abl_mapping", "mapping ablation on a routed fabric");
  ap.add("-s", "per-rank subdomain dimension", "32");
  ap.add("--rpn", "ranks packed per node", "8");
  add_fabric_flags(ap);
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Ablation: rank-to-node mapping",
         "Exchange time and inter-node volume for block / round-robin / "
         "greedy mappings on a routed fabric (2x4x4 ranks, several per "
         "node). Greedy keeps cartesian neighbors on-node: least cut "
         "bytes, fewest fabric messages, cheapest exchange; round-robin "
         "is the adversarial placement.");

  const std::int64_t dim = ap.get_int("-s");
  const int rpn = static_cast<int>(ap.get_int("--rpn"));

  auto base = [&](Method m) {
    harness::Config cfg = k1_config(dim, m);
    cfg.machine.net.ranks_per_node = rpn;
    // Axis 0 fastest in rank order: block fills whole z-planes (coherent),
    // round-robin deals neighboring ranks to different nodes (scattered).
    cfg.rank_dims = {2, 4, 4};
    apply_fabric(ap, cfg);
    if (cfg.fabric == netsim::FabricKind::Flat)
      cfg.fabric = netsim::FabricKind::FatTree;  // the ablation needs routes
    return cfg;
  };

  Table t({"method", "mapping", "cut_MB", "comm_ms", "avg_hops",
           "queue_us/msg", "max_sharing"});
  for (Method meth : {Method::MpiTypes, Method::Layout, Method::MemMap}) {
    for (netsim::MapKind mk : {netsim::MapKind::Block,
                               netsim::MapKind::RoundRobin,
                               netsim::MapKind::Greedy}) {
      harness::Config cfg = base(meth);
      cfg.mapping = mk;
      const auto graph = harness::exchange_comm_graph(cfg);
      const auto nodes = netsim::make_map(
          mk, static_cast<int>(cfg.rank_dims.prod()), rpn, graph);
      const harness::Result r = run(cfg);
      t.row()
          .cell(harness::method_name(meth))
          .cell(netsim::map_name(mk))
          .cell(netsim::cut_bytes(nodes, graph) / 1e6, 3)
          .cell(r.comm_per_step * 1e3, 4)
          .cell(r.avg_hops, 2)
          .cell(r.queue_s_per_msg * 1e6, 3)
          .cell(r.max_link_sharing, 2);
    }
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks: greedy's cut volume is the smallest in every method "
      "block (round-robin the largest), and exchange time tracks cut "
      "volume — the mapping lever moves communication cost without "
      "touching a byte of the application.\n");
  return 0;
}
