// Ablation: process-to-node mapping under a routed fabric. With several
// ranks per node, which ranks share a node decides how much of the ghost
// exchange crosses the fabric at all — the greedy volume-minimizing map
// keeps cartesian neighbors together, round-robin tears them apart, and
// block (the flat model's implicit choice) sits in between. The table
// reports the cut volume each mapping leaves on the wire and the exchange
// time the contention fabric charges for it.

#include "bench_common.h"
#include "netsim/fabric.h"
#include "netsim/mapping.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("abl_mapping", "mapping ablation on a routed fabric");
  ap.add("-s", "per-rank subdomain dimension", "32");
  ap.add("--rpn", "ranks packed per node", "8");
  add_fabric_flags(ap);
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Ablation: rank-to-node mapping",
         "Exchange time and inter-node volume for block / round-robin / "
         "greedy / rcb / embed mappings on a routed fabric (2x4x4 ranks, "
         "several per node). The volume-aware maps keep cartesian "
         "neighbors on-node: least cut bytes, fewest fabric messages, "
         "cheapest exchange; round-robin is the adversarial placement. "
         "rcb and embed are guarded to never cut more than block.");

  const std::int64_t dim = ap.get_int("-s");
  const int rpn = static_cast<int>(ap.get_int("--rpn"));

  auto base = [&](Method m) {
    harness::Config cfg = k1_config(dim, m);
    cfg.machine.net.ranks_per_node = rpn;
    // Axis 0 fastest in rank order: block fills whole z-planes (coherent),
    // round-robin deals neighboring ranks to different nodes (scattered).
    cfg.rank_dims = {2, 4, 4};
    apply_fabric(ap, cfg);
    if (cfg.fabric == netsim::FabricKind::Flat)
      cfg.fabric = netsim::FabricKind::FatTree;  // the ablation needs routes
    return cfg;
  };

  Table t({"method", "mapping", "cut_MB", "comm_ms", "avg_hops",
           "queue_us/msg", "max_sharing"});
  for (Method meth : {Method::MpiTypes, Method::Layout, Method::MemMap}) {
    for (netsim::MapKind mk : {netsim::MapKind::Block,
                               netsim::MapKind::RoundRobin,
                               netsim::MapKind::Greedy,
                               netsim::MapKind::Rcb,
                               netsim::MapKind::Embed}) {
      harness::Config cfg = base(meth);
      cfg.mapping = mk;
      const auto graph = harness::exchange_comm_graph(cfg);
      // Build the fabric exactly as harness::run will, and read the node
      // assignment back from it, so the cut column describes the very
      // placement the comm_ms column was charged for (embed weighs nodes
      // by the built topology's hop distances — a hintless make_map here
      // could disagree).
      const mpi::LinkParams inter = cfg.machine.net.inter_node;
      const auto fab = netsim::make_fabric(
          cfg.fabric, mk, static_cast<int>(cfg.rank_dims.prod()), rpn,
          inter.bw, inter.alpha / 2.0, inter.alpha, graph,
          {static_cast<int>(cfg.rank_dims[0]),
           static_cast<int>(cfg.rank_dims[1]),
           static_cast<int>(cfg.rank_dims[2])});
      const auto& nodes =
          static_cast<const netsim::ContentionFabric&>(*fab).rank_node();
      const harness::Result r = run(cfg);
      t.row()
          .cell(harness::method_name(meth))
          .cell(netsim::map_name(mk))
          .cell(netsim::cut_bytes(nodes, graph) / 1e6, 3)
          .cell(r.comm_per_step * 1e3, 4)
          .cell(r.avg_hops, 2)
          .cell(r.queue_s_per_msg * 1e6, 3)
          .cell(r.max_link_sharing, 2);
    }
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks: the volume-aware mappings (greedy, rcb, embed) cut "
      "no more than block in every method block (round-robin the largest), "
      "and exchange time tracks cut volume — the mapping lever moves "
      "communication cost without touching a byte of the application.\n");
  return 0;
}
