// Ablation: persistent exchange plans (build-once/replay) vs forced
// plan-per-round rebuilds. Every exchanger freezes its message schedule —
// region lists, committed datatypes, resolved mmap view spans — into an
// ExchangePlan; this bench measures what that one-time setup costs and how
// fast it amortizes against the steady-state round time. The paper's
// methods all assume amortized setup (its measurements are steady-state);
// this quantifies how quickly that assumption becomes true.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;
using harness::PlanMode;

int main(int argc, char** argv) {
  ArgParser ap("abl_persistent",
               "ablation: build-once/replay plans vs plan-per-round");
  ap.add("-s", "subdomain dim", "32");
  ap.add("--rounds", "comma-separated exchange-round counts", "1,2,4,10,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Ablation: persistent plans",
         "Per-round time (ms) with the plan rebuilt every round vs built "
         "once and replayed over persistent requests; setup is the one-time "
         "plan cost, amort% its share of the build-once run.");

  const std::int64_t s = ap.get_int_list("-s")[0];
  const Method methods[] = {Method::MpiTypes, Method::MemMap, Method::Layout};

  Table t({"method", "rounds", "per-round", "build-once", "setup",
           "amort%", "speedup"});
  bool amortized_by_10 = true;
  for (Method m : methods) {
    for (std::int64_t rounds : ap.get_int_list("--rounds")) {
      auto cfg = k1_config(s, m);
      // k1_config's 8 timesteps are exactly one exchange batch for the
      // 7-point stencil (ghost 8), so `rounds` batches is rounds * 8 steps.
      cfg.timesteps = static_cast<int>(rounds) * 8;

      cfg.plan = PlanMode::PerRound;
      const auto per_round = run(cfg);
      cfg.plan = PlanMode::BuildOnce;
      const auto once = run(cfg);

      const double rd = static_cast<double>(rounds);
      const double pr = per_round.total_seconds / rd;
      const double bo = once.total_seconds / rd;
      // Setup's share of everything the build-once run pays (one-time plan
      // build + all measured rounds): the amortization curve.
      const double amort =
          100.0 * once.setup_seconds /
          (once.setup_seconds + once.total_seconds);
      if (rounds >= 10 && amort >= 5.0) amortized_by_10 = false;
      t.row()
          .cell(method_name(m))
          .cell(rounds)
          .cell(ms(pr))
          .cell(ms(bo))
          .cell(ms(once.setup_seconds))
          .cell(amort, 2)
          .cell(pr / bo, 2);
    }
  }
  t.print(std::cout);
  std::printf(
      "\nExpected: plan-per-round pays the schedule build (datatype "
      "commits dominate MPI_Types, view stitching MemMap) inside every "
      "round, while build-once pays it once — its share of the run decays "
      "hyperbolically with rounds, below 5%% by 10 rounds. setup-amortized-"
      "by-10: %s\n",
      amortized_by_10 ? "yes" : "NO");
  return amortized_by_10 ? 0 : 1;
}
