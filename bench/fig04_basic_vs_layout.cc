// Figure 4: communication time per 3D stencil loop on 8 KNL nodes —
// sending every region independently (Basic, 98 messages) vs the optimized
// layout (Layout, 42 messages), with the packing baseline for reference.
// Paper claim: Layout is up to 2.3x faster than Basic on small subdomains.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig04_basic_vs_layout", "Fig 4: Basic vs Layout comm time");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Figure 4",
         "Communication time for one stencil loop on 8 KNL nodes. Basic "
         "sends each surface region separately; Layout merges regions "
         "consecutive in the optimized storage order.");

  Table t({"dim", "yask(ms)", "basic(ms)", "layout(ms)", "basic.msgs",
           "layout.msgs", "layout.speedup"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    const auto yask = run(k1_config(s, Method::Yask));
    const auto basic = run(k1_config(s, Method::Basic));
    const auto layout = run(k1_config(s, Method::Layout));
    t.row()
        .cell(s)
        .cell(ms(yask.comm_per_step))
        .cell(ms(basic.comm_per_step))
        .cell(ms(layout.comm_per_step))
        .cell(basic.msgs_per_rank)
        .cell(layout.msgs_per_rank)
        .cell(basic.comm_per_step / layout.comm_per_step, 2);
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: 98 vs 42 messages at full region counts; "
      "Layout's advantage grows for small (latency-bound) subdomains toward "
      "~2.3x.\n");
  return 0;
}
