// Figure 8 (K1): 7-point stencil throughput on 8 KNL nodes vs subdomain
// size, for MemMap, Layout, YASK, YASK with communication overlap
// (YASK-OL), and MPI_Types. Paper claim: Layout and MemMap attain the best
// performance by minimizing on-node data movement; overlap barely helps
// YASK on small subdomains.

#include <algorithm>

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig08_k1_scaling", "Fig 8: K1 7-point throughput");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Figure 8",
         "(K1) 7-point stencil GStencil/s on 8 KNL nodes, one rank per "
         "node, periodic 2^3 cube. YASK-OL models overlapped communication "
         "and computation: time = max(comp, mpi) + pack.");

  Table t({"dim", "MemMap", "Layout", "YASK", "YASK-OL", "MPI_Types"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    const auto memmap = run(k1_config(s, Method::MemMap));
    const auto layout = run(k1_config(s, Method::Layout));
    const auto yask = run(k1_config(s, Method::Yask));
    const auto types = run(k1_config(s, Method::MpiTypes));
    // Derived overlap variant: MPI hides under compute, packing cannot.
    const double y_step = std::max(yask.calc.avg(),
                                   yask.call.avg() + yask.wait.avg()) +
                          yask.pack.avg();
    const double cells = static_cast<double>(s * s * s) * 8;
    t.row()
        .cell(s)
        .cell(gsps(memmap.gstencils))
        .cell(gsps(layout.gstencils))
        .cell(gsps(yask.gstencils))
        .cell(gsps(cells / y_step / 1e9))
        .cell(gsps(types.gstencils));
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: MemMap ~ Layout > YASK-OL >= YASK >> "
      "MPI_Types; the gap to YASK widens as subdomains shrink (paper peaks "
      "at 14.4x comm speedup at 16^3); overlap hardly moves YASK at small "
      "sizes.\n");
  return 0;
}
