// Ablation: Put vs Shift exchange (paper Section 8). Put — the paper's
// approach — exchanges all neighbors at once (MemMap: 26 messages, Layout:
// 42); Shift walks one dimension at a time through face neighbors only,
// forwarding corner data, at the cost of D synchronized phases. Both are
// pack-free here; the comparison isolates the latency-vs-message-count
// trade.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("abl_shift_vs_put", "ablation: Put vs Shift exchange");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Ablation: Shift vs Put",
         "Communication time (ms per timestep) on 8 KNL nodes. Shift uses "
         "2*D face-neighbor message flows in D dependent phases; Put "
         "(Layout/MemMap) sends every neighbor concurrently.");

  Table t({"dim", "Layout(ms)", "MemMap(ms)", "Shift(ms)", "Layout.msgs",
           "Shift.msgs", "Shift/MemMap"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    const auto layout = run(k1_config(s, Method::Layout));
    const auto memmap = run(k1_config(s, Method::MemMap));
    const auto shift = run(k1_config(s, Method::Shift));
    t.row()
        .cell(s)
        .cell(ms(layout.comm_per_step))
        .cell(ms(memmap.comm_per_step))
        .cell(ms(shift.comm_per_step))
        .cell(layout.msgs_per_rank)
        .cell(shift.msgs_per_rank)
        .cell(shift.comm_per_step / memmap.comm_per_step, 2);
  }
  t.print(std::cout);
  std::printf(
      "\nExpected: Shift's phase serialization keeps it above the "
      "single-phase Put methods even with far fewer messages — consistent "
      "with the paper preferring Put and citing Shift's increased "
      "synchronization.\n");
  return 0;
}
