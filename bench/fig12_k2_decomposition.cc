// Figure 12 (K2): per-timestep communication vs computation decomposition
// for the 7-point strong-scaling run of Figure 11 (YASK vs MemMap).
// Paper claim: the speedup at scale comes almost entirely from the
// communication-time reduction.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig12_k2_decomposition", "Fig 12: K2 comm/comp split");
  ap.add("-g", "global domain edge", "256");
  ap.add("-n", "comma-separated rank counts", "8,16,32,64,128,256,512");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  const Vec3 global = Vec3::fill(ap.get_int("-g"));
  banner("Figure 12",
         "(K2) 7-point strong scaling: communication (Comm, includes "
         "packing) vs computation (Comp) milliseconds per timestep.");

  Table t({"ranks", "YASK.comm", "YASK.comp", "MemMap.comm", "MemMap.comp",
           "comm.reduction"});
  for (std::int64_t n : ap.get_int_list("-n")) {
    const int ranks = static_cast<int>(n);
    const auto yk =
        run(strong_config(model::theta(), global, ranks, Method::Yask,
                          harness::GpuMode::None, false));
    const auto mm =
        run(strong_config(model::theta(), global, ranks, Method::MemMap,
                          harness::GpuMode::None, false));
    t.row()
        .cell(static_cast<std::int64_t>(ranks))
        .cell(ms(yk.comm_per_step))
        .cell(ms(yk.calc.avg()))
        .cell(ms(mm.comm_per_step))
        .cell(ms(mm.calc.avg()))
        .cell(yk.comm_per_step / mm.comm_per_step, 1);
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: Comp curves coincide and fall with rank "
      "count; YASK's Comm flattens (latency/packing floor) while MemMap's "
      "keeps falling — the communication reduction is the whole speedup.\n");
  return 0;
}
