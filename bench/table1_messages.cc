// Table 1: impact of dimensionality on the number of messages —
// neighbors (Eq. 2), the Layout lower bound (Eq. 1), and Basic (Eq. 3) for
// D = 1..5 — plus verification that the library's constructed layouts
// achieve the bound for D <= 3 and that search confirms optimality where
// exhaustive enumeration is feasible.

#include "bench_common.h"
#include "core/layout.h"

using namespace brickx;
using namespace brickx::bench;

int main() {
  banner("Table 1",
         "Messages vs dimensionality. 'achieved' is the message count of "
         "the library's constructed layout (surface1d/2d/3d) evaluated by "
         "the run-counting criterion of Section 3.2.");

  Table t({"dimensions", "neighbors(Eq2)", "layout(Eq1)", "basic(Eq3)",
           "achieved", "optimal?"});
  for (int d = 1; d <= 5; ++d) {
    std::int64_t achieved = -1;
    if (d == 1) achieved = message_count(surface1d(), 1);
    if (d == 2) achieved = message_count(surface2d(), 2);
    if (d == 3) achieved = message_count(surface3d(), 3);
    auto& row = t.row()
                    .cell(static_cast<std::int64_t>(d))
                    .cell(neighbor_count(d))
                    .cell(layout_message_lower_bound(d))
                    .cell(basic_message_count(d));
    if (achieved >= 0) {
      row.cell(achieved).cell(
          achieved == layout_message_lower_bound(d) ? "yes" : "no");
    } else {
      row.cell("-").cell("-");
    }
  }
  t.print(std::cout);

  // Independent check: exhaustive search for D <= 2 reproduces Eq. 1.
  std::printf("\nexhaustive search optimum: D=1 -> %lld, D=2 -> %lld\n",
              static_cast<long long>(message_count(optimize_layout(1), 1)),
              static_cast<long long>(message_count(optimize_layout(2), 2)));
  std::printf(
      "Shape checks vs paper: rows match Table 1 exactly; the library "
      "constants achieve the Eq. 1 bound (2, 9, 42), and layout gains fade "
      "above D=5 as messages approach neighbor-count growth.\n");
  return 0;
}
