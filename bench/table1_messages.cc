// Table 1: impact of dimensionality on the number of messages —
// neighbors (Eq. 2), the Layout lower bound (Eq. 1), and Basic (Eq. 3) for
// D = 1..5 — plus verification that the library's constructed layouts
// achieve the bound for D <= 3 and that search confirms optimality where
// exhaustive enumeration is feasible. A second table cross-checks the
// theory against the simulator's own per-rank send/receive counters.

#include "bench_common.h"
#include "core/layout.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("table1_messages", "Table 1: messages vs dimensionality");
  ap.add("-s", "subdomain dim for the measured-counters table", "32");
  ap.add("--fields",
         "coupled fields exchanged together (AoSoA bricks / field-major "
         "array slabs); > 1 appends a message-invariance table",
         "1");
  add_fabric_flags(ap);
  add_transport_flags(ap);
  add_fault_flags(ap);
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);
  announce_faults(ap);

  banner("Table 1",
         "Messages vs dimensionality. 'achieved' is the message count of "
         "the library's constructed layout (surface1d/2d/3d) evaluated by "
         "the run-counting criterion of Section 3.2.");

  Table t({"dimensions", "neighbors(Eq2)", "layout(Eq1)", "basic(Eq3)",
           "achieved", "optimal?"});
  for (int d = 1; d <= 5; ++d) {
    std::int64_t achieved = -1;
    if (d == 1) achieved = message_count(surface1d(), 1);
    if (d == 2) achieved = message_count(surface2d(), 2);
    if (d == 3) achieved = message_count(surface3d(), 3);
    auto& row = t.row()
                    .cell(static_cast<std::int64_t>(d))
                    .cell(neighbor_count(d))
                    .cell(layout_message_lower_bound(d))
                    .cell(basic_message_count(d));
    if (achieved >= 0) {
      row.cell(achieved).cell(
          achieved == layout_message_lower_bound(d) ? "yes" : "no");
    } else {
      row.cell("-").cell("-");
    }
  }
  t.print(std::cout);

  // Independent check: exhaustive search for D <= 2 reproduces Eq. 1.
  std::printf("\nexhaustive search optimum: D=1 -> %lld, D=2 -> %lld\n",
              static_cast<long long>(message_count(optimize_layout(1), 1)),
              static_cast<long long>(message_count(optimize_layout(2), 2)));
  std::printf(
      "Shape checks vs paper: rows match Table 1 exactly; the library "
      "constants achieve the Eq. 1 bound (2, 9, 42), and layout gains fade "
      "above D=5 as messages approach neighbor-count growth.\n");

  // Measured counters: run each method for one exchange batch on the K1
  // 2^3 grid and read what rank 0 actually put on (and took off) the wire.
  // Sends and receives are symmetric on the periodic cube; the Layout row
  // lands on the Eq. 1 bound (42) per exchange.
  const std::int64_t dim = ap.get_int("-s");
  std::printf("\nmeasured per-rank counters (rank 0, %lld^3 subdomain, "
              "warmup + 1 measured exchange):\n\n",
              static_cast<long long>(dim));
  // Hop/queue columns appear only under a routed (--fabric != flat)
  // fabric, so the default output stays byte-identical to older builds.
  const bool routed = ap.get("--fabric") != "flat";
  // Locality-split columns appear only when ranks share nodes (the machine
  // model's or --rpn's ranks_per_node > 1) — same byte-identical-default
  // contract as the routed columns.
  const bool multi = [&] {
    harness::Config probe = k1_config(dim, Method::MemMap);
    apply_transport(ap, probe);
    return probe.machine.net.ranks_per_node > 1;
  }();
  std::vector<std::string> headers = {"method",     "msgs_sent",
                                      "msgs_recv",  "bytes_sent",
                                      "bytes_recv", "max_inflight"};
  if (multi) {
    headers.insert(headers.begin() + 2, "msgs_inter");
    headers.insert(headers.begin() + 2, "msgs_intra");
    headers.push_back("bytes_intra");
    headers.push_back("bytes_inter");
  }
  if (routed) {
    headers.push_back("avg_hops");
    headers.push_back("queue_us/msg");
  }
  Table m(headers);
  const std::int64_t batches = 2;  // k1_config: warmup + one measured batch
  for (Method meth : {Method::Yask, Method::MpiTypes, Method::Basic,
                      Method::Layout, Method::MemMap}) {
    harness::Config cfg = k1_config(dim, meth);
    apply_fabric(ap, cfg);
    apply_transport(ap, cfg);
    apply_faults(ap, cfg);
    const harness::Result r = run(cfg);
    auto& row = m.row()
                    .cell(harness::method_name(meth))
                    .cell(r.msgs_per_rank * batches);
    if (multi) row.cell(r.msgs_intra_per_rank).cell(r.msgs_inter_per_rank);
    row.cell(r.msgs_recv_per_rank)
        .cell(r.wire_bytes_per_rank * batches)
        .cell(r.bytes_recv_per_rank)
        .cell(r.max_inflight_reqs);
    if (multi) row.cell(r.bytes_intra_per_rank).cell(r.bytes_inter_per_rank);
    if (routed) row.cell(r.avg_hops, 2).cell(r.queue_s_per_msg * 1e6, 3);
  }
  m.print(std::cout);
  if (multi)
    std::printf(
        "\nlocality split: msgs_intra + msgs_inter == msgs_sent (whole-run "
        "rank-0 counts; intra = same-node destination).\n");
  std::printf(
      "\nShape checks: msgs per exchange = msgs_recv / 2 (warmup + measured "
      "batch); at the default 32^3 Layout hits the 42-message Eq. 1 bound "
      "(thinner subdomains merge further runs), MemMap reaches the "
      "26-neighbor floor, and Basic pays the region-count multiple.\n");

  // Multi-field invariance (DESIGN.md §16): rerun every method with the
  // requested field count and assert — not just print — that the message
  // counters do not move while bytes scale exactly linearly. Only emitted
  // when --fields > 1 so the default stdout stays byte-identical.
  const int fields = static_cast<int>(ap.get_int("--fields"));
  BX_CHECK(fields >= 1, "--fields must be >= 1");
  if (fields > 1) {
    std::printf(
        "\nmulti-field invariance (--fields %d): one message per (neighbor, "
        "round) regardless of field count; bytes scale linearly:\n\n",
        fields);
    Table f({"method", "msgs(F=1)", "msgs(F=N)", "bytes(F=1)", "bytes(F=N)",
             "bytes ratio"});
    for (Method meth : {Method::Yask, Method::MpiTypes, Method::Basic,
                        Method::Layout, Method::MemMap}) {
      harness::Config cfg = k1_config(dim, meth);
      apply_fabric(ap, cfg);
      apply_transport(ap, cfg);
      apply_faults(ap, cfg);
      const harness::Result one = run(cfg);
      cfg.fields = fields;
      const harness::Result multi_r = run(cfg);
      BX_CHECK(multi_r.msgs_per_rank == one.msgs_per_rank,
               "multi-field run changed the per-exchange message count");
      BX_CHECK(multi_r.wire_bytes_per_rank == fields * one.wire_bytes_per_rank,
               "multi-field wire bytes are not exactly linear in the field "
               "count");
      f.row()
          .cell(harness::method_name(meth))
          .cell(one.msgs_per_rank)
          .cell(multi_r.msgs_per_rank)
          .cell(one.wire_bytes_per_rank)
          .cell(multi_r.wire_bytes_per_rank)
          .cell(static_cast<double>(multi_r.wire_bytes_per_rank) /
                    static_cast<double>(one.wire_bytes_per_rank),
                2);
    }
    f.print(std::cout);
    std::printf(
        "\nall %d-field counters verified equal to the single-field run "
        "(BX_CHECK-enforced), bytes exactly x%d.\n",
        fields, fields);
  }
  return 0;
}
