// Ablation: communication/computation overlap on top of the pack-free
// exchanges (DESIGN.md §14). The paper's position: prior work *hides*
// communication costs (overlap) while Layout/MemMap *eliminate* the
// on-node share of them — this ablation measures how much the partitioned
// dependency scheduler still buys once packing is gone, and cross-checks
// the measurement against the critical-path analyzer:
//
//   * overlap only reorders, never rewrites: message/byte counters AND the
//     fabric-crossing message count are identical with overlap on and off
//     (partitions stream inside the wire's one logical message);
//   * overlap takes communication off the critical path: the analyzer's
//     comm-on-path seconds strictly decrease when overlap is on;
//   * the analyzer's headroom estimate is an upper bound: the hidden
//     communication (comm-on-path off minus on) never exceeds the
//     overlap_headroom reported for the non-overlapped run.
//
// Overlap efficiency = hidden / min(comm on path, calc on path), i.e. the
// fraction of the theoretically hideable communication the scheduler
// actually hid. Configurations mirror fig09 (K1 on Theta, CPU) and fig14
// (V1 on Summit, CUDA-aware) on the flat fabric and the machine's native
// topology, at a subdomain (default 256^3) where a step's interior compute
// covers the ghost transfer — the regime the overlap contract targets. At
// small subdomains there is little left to hide (the paper's point) and
// the strict-decrease checks do not apply; the sweep in fig09/fig14
// itself shows that regime.

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::GpuMode;
using harness::Method;

namespace {

struct Case {
  const char* figure;  ///< paper experiment the config mirrors
  const char* label;   ///< method (+ gpu mode) column
  Method m;
  GpuMode gpu;
};

struct Point {
  const Case* c = nullptr;
  const char* fabric = nullptr;
  std::int64_t dim = 0;
  harness::Result off, on;
  obs::RunAnalysis a_off, a_on;
  double hidden_s = 0.0;      ///< comm_on_path(off) - comm_on_path(on)
  double efficiency = 0.0;    ///< hidden / min(comm, calc) on path (off)
};

harness::Config case_config(const Case& c, std::int64_t dim) {
  harness::Config cfg = c.gpu == GpuMode::None
                            ? k1_config(dim, c.m)
                            : v1_config(dim, c.m, c.gpu);
  // Three measured exchange rounds instead of k1's single batch: round one
  // cold-starts (its ghosts come from initialization), rounds two and
  // three are opened by the producer-side prestart — the scheduler's
  // steady state, which a single batch never reaches.
  cfg.timesteps = 3 * static_cast<int>(cfg.ghost);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser ap("abl_overlap",
               "ablation: partitioned overlap on pack-free exchanges");
  ap.add("-s", "comma-separated subdomain dims", "256");
  ap.add("--json-out", "write the BENCH_overlap.json trajectory", "");
  ap.parse(argc, argv);

  banner("Ablation: overlap",
         "Communication on the critical path (ms per run, three exchange "
         "rounds) with and without the partitioned dependency scheduler, "
         "for the fig09 (K1/Theta) and fig14 (V1/Summit, CUDA-aware) "
         "methods on the flat fabric and the machine's native topology. "
         "hidden = comm.path(off) - comm.path(on); eff = hidden / "
         "min(comm, calc) on the non-overlapped path.");

  static const Case kCases[] = {
      {"fig09", "Layout", Method::Layout, GpuMode::None},
      {"fig09", "MemMap", Method::MemMap, GpuMode::None},
      {"fig14", "Layout/ca", Method::Layout, GpuMode::CudaAware},
  };

  std::vector<Point> points;
  Table t({"fig", "method", "fabric", "dim", "comm.path(off)",
           "comm.path(on)", "hidden", "headroom(off)", "eff",
           "OL.gain"});
  bool ok = true;
  bool have_obs = true;
  auto check = [&](bool cond, const char* what) {
    if (!cond) {
      std::printf("SELF-CHECK FAILED: %s\n", what);
      ok = false;
    }
  };

  for (const Case& c : kCases) {
    for (std::int64_t dim : ap.get_int_list("-s")) {
      for (const bool native : {false, true}) {
        Point p;
        p.c = &c;
        p.dim = dim;

        harness::Config cfg = case_config(c, dim);
        cfg.fabric =
            native ? cfg.machine.fabric : netsim::FabricKind::Flat;
        p.fabric = netsim::fabric_name(cfg.fabric);

        // One private session per off/on pair so the two runs can be
        // analyzed individually (the analyzer works per Session::Run).
        obs::Session ses;
        {
          obs::Session::Scope scope(ses);
          cfg.overlap = false;
          p.off = run(cfg);
          cfg.overlap = true;
          p.on = run(cfg);
        }

        // Overlap only reorders the schedule — it never changes what is
        // sent, delivered, or put on the fabric.
        check(p.off.msgs_per_rank == p.on.msgs_per_rank,
              "overlap changed the per-exchange message count");
        check(p.off.wire_bytes_per_rank == p.on.wire_bytes_per_rank,
              "overlap changed the per-exchange wire bytes");
        check(p.off.payload_bytes_per_rank == p.on.payload_bytes_per_rank,
              "overlap changed the per-exchange payload bytes");
        check(p.off.msgs_recv_per_rank == p.on.msgs_recv_per_rank,
              "overlap changed the delivered message count");
        check(p.off.bytes_recv_per_rank == p.on.bytes_recv_per_rank,
              "overlap changed the delivered byte count");
        check(p.off.fabric_msgs == p.on.fabric_msgs,
              "overlap changed the fabric-crossing message count");

        if (ses.runs().size() == 2) {
          p.a_off = obs::analyze_run(ses.runs()[0]);
          p.a_on = obs::analyze_run(ses.runs()[1]);
          check(p.a_off.identity_ok && p.a_on.identity_ok,
                "critical path does not tile the makespan");
          p.hidden_s = p.a_off.comm_on_path - p.a_on.comm_on_path;
          // The scheduler must take communication off the critical path...
          check(p.a_on.comm_on_path < p.a_off.comm_on_path,
                "overlap did not reduce communication on the critical "
                "path");
          // ...but never more than the analyzer's headroom upper bound.
          check(p.hidden_s <= p.a_off.overlap_headroom + 1e-12,
                "hidden communication exceeds the analyzer's overlap "
                "headroom");
          // And hiding work must shorten the run itself.
          check(p.on.total_seconds < p.off.total_seconds,
                "overlap did not shorten the virtual makespan");
          const double hideable =
              std::min(p.a_off.comm_on_path, p.a_off.calc_on_path);
          p.efficiency = hideable > 0.0 ? p.hidden_s / hideable : 0.0;
        } else {
          have_obs = false;  // BRICKX_OBS=0: counters only, no analyzer
        }

        t.row()
            .cell(c.figure)
            .cell(c.label)
            .cell(p.fabric)
            .cell(dim)
            .cell(ms(p.a_off.comm_on_path))
            .cell(ms(p.a_on.comm_on_path))
            .cell(ms(p.hidden_s))
            .cell(ms(p.a_off.overlap_headroom))
            .cell(p.efficiency, 3)
            .cell(p.off.total_seconds / p.on.total_seconds, 2);
        points.push_back(p);
      }
    }
  }
  t.print(std::cout);

  if (!have_obs)
    std::printf("\n(observability disabled: analyzer columns are zero and "
                "the path-based self-checks were skipped)\n");
  std::printf(
      "\nExpected: comm.path strictly drops when overlap is on (fully "
      "hidden rounds leave the path local), hidden <= headroom(off) (the "
      "analyzer bound is honest), and message/byte/fabric counters are "
      "identical either way (overlap reorders, never rewrites). OL.gain "
      "> 1 throughout; efficiency is bounded by the two cold rounds "
      "(warmup and the first measured round) that no prestart can open. "
      "self-check: %s\n",
      ok ? "pass" : "FAIL");

  const std::string json = ap.get("--json-out");
  if (!json.empty()) {
    std::ofstream out(json);
    BX_CHECK(out.good(), "cannot open --json-out file");
    out << "{\n  \"schema\": \"brickx-bench-overlap-v1\",\n"
        << "  \"ranks\": 8,\n  \"self_check\": " << (ok ? "true" : "false")
        << ",\n  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
      const Point& p = points[i];
      char buf[512];
      std::snprintf(
          buf, sizeof buf,
          "    {\"figure\": \"%s\", \"method\": \"%s\", \"fabric\": "
          "\"%s\", \"dim\": %lld, \"total_s_off\": %.9e, \"total_s_on\": "
          "%.9e, \"comm_path_s_off\": %.9e, \"comm_path_s_on\": %.9e, "
          "\"calc_path_s_off\": %.9e, \"headroom_s_off\": %.9e, "
          "\"hidden_s\": %.9e, \"efficiency\": %.4f}%s\n",
          p.c->figure, p.c->label, p.fabric,
          static_cast<long long>(p.dim), p.off.total_seconds,
          p.on.total_seconds, p.a_off.comm_on_path, p.a_on.comm_on_path,
          p.a_off.calc_on_path, p.a_off.overlap_headroom, p.hidden_s,
          p.efficiency, i + 1 < points.size() ? "," : "");
      out << buf;
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json.c_str());
  }
  return ok ? 0 : 1;
}
