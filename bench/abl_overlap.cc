// Ablation: communication/computation overlap on top of the pack-free
// exchanges. The paper's position: prior work *hides* communication costs
// (overlap) while Layout/MemMap *eliminate* the on-node share of them —
// this ablation measures how much overlap still buys once packing is gone.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("abl_overlap", "ablation: overlap on pack-free exchanges");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Ablation: overlap",
         "Per-timestep total (ms) on 8 KNL nodes with and without interior/"
         "shell overlap for the Layout and MemMap methods.");

  Table t({"dim", "Layout", "Layout+OL", "MemMap", "MemMap+OL",
           "OL.gain(Layout)"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    auto total = [&](Method m, bool ol) {
      auto cfg = k1_config(s, m);
      cfg.overlap = ol;
      const auto r = run(cfg);
      return r.total_seconds / cfg.timesteps;
    };
    const double l0 = total(Method::Layout, false);
    const double l1 = total(Method::Layout, true);
    const double m0 = total(Method::MemMap, false);
    const double m1 = total(Method::MemMap, true);
    t.row()
        .cell(s)
        .cell(ms(l0))
        .cell(ms(l1))
        .cell(ms(m0))
        .cell(ms(m1))
        .cell(l0 / l1, 2);
  }
  t.print(std::cout);
  std::printf(
      "\nExpected: modest gains where compute is big enough to hide the "
      "remaining network time (>=64^3); at small subdomains the extra "
      "per-slab sweeps erase the benefit — after eliminating packing there "
      "is simply little left to hide.\n");
  return 0;
}
