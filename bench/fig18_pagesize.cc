// Figure 18: estimated effect of the base page size (4/16/64 KiB) on
// MemMap communication time in the K1 setting, by introducing superfluous
// padding, with the YASK and MPI_Types lines for reference. Paper claim:
// even with 64 KiB pages MemMap still outperforms both baselines.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("fig18_pagesize", "Fig 18: page size effect on MemMap");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Figure 18",
         "Communication time (ms per timestep) of MemMap on 8 KNL nodes "
         "with emulated 4/16/64 KiB base pages (chunk padding), vs the "
         "MPI_Types* and YASK* references.");

  Table t({"dim", "MPI_Types*", "YASK*", "64KiB", "16KiB", "4KiB",
           "64KiB.pad%"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    const auto types = run(k1_config(s, Method::MpiTypes));
    const auto yask = run(k1_config(s, Method::Yask));
    auto page = [&](std::size_t bytes) {
      auto cfg = k1_config(s, Method::MemMap);
      cfg.page_size = bytes;
      return run(cfg);
    };
    const auto p64 = page(64 * 1024);
    const auto p16 = page(16 * 1024);
    const auto p4 = page(4 * 1024);
    t.row()
        .cell(s)
        .cell(ms(types.comm_per_step))
        .cell(ms(yask.comm_per_step))
        .cell(ms(p64.comm_per_step))
        .cell(ms(p16.comm_per_step))
        .cell(ms(p4.comm_per_step))
        .cell(p64.padding_percent, 1);
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: the three page-size curves stay close "
      "(padding shows mostly at the small end) and all of them beat YASK* "
      "and MPI_Types* across the sweep.\n");
  return 0;
}
