// Table 2 (V1): the network-transfer increase MemMap pays for 64 KiB page
// padding vs Layout, and the achieved per-rank bandwidth of each method.
// Paper claim: Layout pads nothing; MemMap's padding grows steeply for
// small subdomains (2.4% at 512 up to 883.9% at 16) yet MemMapUM keeps its
// achieved bandwidth flat, while LayoutUM's bandwidth collapses on small
// messages.

#include "bench_common.h"

using namespace brickx;
using namespace brickx::bench;
using harness::GpuMode;
using harness::Method;

namespace {
// Achieved bandwidth as the paper reports it: wire bytes each rank sends
// per exchange over the communication time of the exchange.
double achieved_gbps(const harness::Result& r, int steps_per_exchange) {
  const double per_exchange = r.comm_per_step * steps_per_exchange;
  return static_cast<double>(r.wire_bytes_per_rank) / per_exchange / 1e9;
}
}  // namespace

int main(int argc, char** argv) {
  ArgParser ap("table2_padding_bandwidth", "Table 2: padding and bandwidth");
  ap.add("-s", "comma-separated subdomain dims", "128,64,32,16");
  add_obs_flags(ap);
  ap.parse(argc, argv);
  ObsGuard obs_guard(ap);

  banner("Table 2",
         "(V1) Increased network transfer from 64 KiB page padding (%) and "
         "achieved bandwidth (GB/s per rank).");

  Table t({"dim", "Layout.pad%", "MemMap.pad%", "LayoutCA.GB/s",
           "LayoutUM.GB/s", "MemMapUM.GB/s"});
  for (std::int64_t s : ap.get_int_list("-s")) {
    const auto lca = run(v1_config(s, Method::Layout, GpuMode::CudaAware));
    const auto lum = run(v1_config(s, Method::Layout, GpuMode::Unified));
    const auto mum = run(v1_config(s, Method::MemMap, GpuMode::Unified));
    t.row()
        .cell(s)
        .cell(lum.padding_percent, 1)  // Layout never pads: always 0
        .cell(mum.padding_percent, 1)
        .cell(achieved_gbps(lca, 8), 2)
        .cell(achieved_gbps(lum, 8), 2)
        .cell(achieved_gbps(mum, 8), 2);
  }
  t.print(std::cout);
  std::printf(
      "\nShape checks vs paper: Layout row is all zeros; MemMap padding "
      "explodes toward small subdomains (paper: 2.4%% -> 883.9%%); "
      "MemMapUM bandwidth stays roughly flat while LayoutUM degrades on "
      "small messages and LayoutCA peaks mid-sweep.\n");
  return 0;
}
