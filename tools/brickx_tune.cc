// brickx_tune: the joint autotuner CLI (DESIGN.md §15). Describe one
// strong-scaling problem, search (layout × mapping × brick × page) against
// the virtual-clock cost model, and write the byte-deterministic
// tuned-config artifact any bench consumes via --tuned=FILE.
//
//   tools/brickx_tune --machine=theta -g 64 -n 16 --rpn=4 --out=tuned.json
//   bench/fig11_k2_strong_scaling --fabric=machine --tuned=tuned.json

#include <cinttypes>
#include <cstdio>
#include <string>

#include "common/argparse.h"
#include "common/error.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "simmpi/cart.h"
#include "tune/tuner.h"

using namespace brickx;

namespace {

model::Machine machine_arg(const std::string& s) {
  if (s == "theta") return model::theta();
  if (s == "summit") return model::summit();
  if (s == "summit-future") return model::summit_future();
  const auto m = tune::machine_by_name(s);
  BX_CHECK(m.has_value(), "unknown --machine (see --help)");
  return *m;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser ap("brickx_tune",
               "Joint (layout x mapping x brick x page) autotuner against "
               "the contention-fabric cost model; writes a tuned-config "
               "JSON artifact for --tuned=FILE.");
  ap.add("--machine",
         "machine preset: theta | summit | summit-future (or the full "
         "preset name, e.g. theta-knl)",
         "theta");
  ap.add("-g", "global domain edge (cube), split across ranks", "64");
  ap.add("-n", "rank count (dims from dims_create)", "16");
  ap.add("--method", "YASK | MPI_Types | Basic | Layout | MemMap", "MemMap");
  ap.add("--gpu", "none | cuda-aware | unified | staged", "none");
  ap.add_flag("--use125", "125-point stencil instead of 7-point");
  ap.add("--fabric",
         "network model to tune against: machine (default, the preset's "
         "native topology) | flat | single-switch | fat-tree | torus | "
         "dragonfly",
         "machine");
  ap.add("--rpn",
         "override machine.net.ranks_per_node (0 = keep the preset's value)",
         "0");
  ap.add("--steps", "measured timesteps (0 = 8, or 4 under --use125)", "0");
  ap.add("--threads", "worker threads for candidate evaluation", "4");
  ap.add("--layout-budget", "optimize_layout hill-climb evaluations", "2000");
  ap.add("--layout-seed", "optimize_layout seed", "1");
  ap.add("--out", "artifact path", "tuned_config.json");
  ap.parse(argc, argv);

  harness::Config problem;
  problem.machine = machine_arg(ap.get("--machine"));
  const std::int64_t g = ap.get_int("-g");
  const int ranks = static_cast<int>(ap.get_int("-n"));
  problem.rank_dims = mpi::dims_create<3>(ranks);
  problem.subdomain = Vec3::fill(g) / problem.rank_dims;
  BX_CHECK(problem.subdomain * problem.rank_dims == Vec3::fill(g),
           "global edge does not divide across this rank count");
  problem.brick = 8;
  problem.ghost = 8;
  problem.use125 = ap.get_flag("--use125");
  const auto method = tune::parse_method(ap.get("--method"));
  BX_CHECK(method.has_value(), "unknown --method (see --help)");
  problem.method = *method;
  const auto gpu = tune::parse_gpu(ap.get("--gpu"));
  BX_CHECK(gpu.has_value(), "unknown --gpu (see --help)");
  problem.gpu = *gpu;
  problem.timesteps = ap.get_int("--steps") > 0
                          ? static_cast<int>(ap.get_int("--steps"))
                          : (problem.use125 ? 4 : 8);
  problem.warmup_exchanges = 1;
  problem.execute_kernels = false;
  const std::string fabric = ap.get("--fabric");
  if (fabric == "machine") {
    problem.fabric = problem.machine.fabric;
  } else {
    const auto kind = netsim::parse_fabric(fabric);
    BX_CHECK(kind.has_value(), "unknown --fabric (see --help)");
    problem.fabric = *kind;
  }
  if (ap.get_int("--rpn") > 0)
    problem.machine.net.ranks_per_node = static_cast<int>(ap.get_int("--rpn"));

  std::printf("problem: %s\n", tune::canonical_key(problem).c_str());

  const tune::SearchSpace space = tune::SearchSpace::standard(
      problem, ap.get_int("--layout-budget"),
      static_cast<std::uint64_t>(ap.get_int("--layout-seed")));
  tune::EvalCache cache;
  const harness::Result handpicked = harness::run(problem);
  const tune::TuneResult res =
      tune::tune(problem, space, static_cast<int>(ap.get_int("--threads")),
                 &cache);

  Table t({"candidates", "distinct", "evaluated", "layout", "mapping",
           "brick", "page", "hand-picked ms", "tuned ms", "speedup"});
  t.row()
      .cell(res.candidates)
      .cell(res.distinct)
      .cell(res.evaluated)
      .cell(res.layout_name)
      .cell(netsim::map_name(res.mapping))
      .cell(res.brick)
      .cell(static_cast<std::int64_t>(res.page_size))
      .cell(handpicked.total_seconds * 1e3)
      .cell(res.best.total_seconds * 1e3)
      .cell(handpicked.total_seconds / res.best.total_seconds, 3);
  std::printf("%s\n", t.str().c_str());

  BX_CHECK(res.best.total_seconds <= handpicked.total_seconds,
           "tuned config is worse than the hand-picked baseline — the "
           "baseline point left the search space");

  // Replay the artifact before writing it: the recorded prediction must be
  // reproduced bit-exactly from the artifact alone.
  const harness::Result replay =
      harness::run(tune::tuned_config(res.artifact));
  BX_CHECK(replay.total_seconds == res.artifact.predicted_total_seconds,
           "artifact replay does not reproduce the predicted cost");

  const std::string out = ap.get("--out");
  BX_CHECK(tune::save_artifact(res.artifact, out),
           "cannot write the artifact file");
  std::printf("config hash 0x%016" PRIx64 "; replay verified bit-exact\n",
              res.artifact.config_hash);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
