// trace_analyze: run one or more harness configurations and print (or
// write) the critical-path / wait-state analysis of each run — the CLI
// front-end for src/obs/analyze. Two modes:
//
//  * default: run the --methods roster under one obs session and emit the
//    aligned-text report on stdout (byte-deterministic; golden-tested), or
//    the JSON form with --json. --out additionally writes the report to a
//    file (.txt = text, else JSON).
//
//  * --suite <path>: run the fixed trajectory roster (the five paper
//    methods on the flat model, MemMap under dragonfly contention, MemMap
//    with compute/communication overlap, and YASK under a delay-fault
//    schedule) and write the compact per-bench critical-path composition +
//    overlap-headroom JSON that scripts/bench_perf.sh commits as
//    BENCH_critical_path.json.

#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/argparse.h"
#include "common/error.h"
#include "harness/experiment.h"
#include "obs/analyze.h"
#include "obs/export.h"
#include "obs/session.h"

using namespace brickx;

namespace {

std::optional<harness::Method> parse_method(const std::string& s) {
  if (s == "yask") return harness::Method::Yask;
  if (s == "mpitypes" || s == "mpi-types") return harness::Method::MpiTypes;
  if (s == "basic") return harness::Method::Basic;
  if (s == "layout") return harness::Method::Layout;
  if (s == "memmap") return harness::Method::MemMap;
  if (s == "shift") return harness::Method::Shift;
  if (s == "network") return harness::Method::Network;
  return std::nullopt;
}

harness::Config base_config(std::int64_t dim) {
  harness::Config cfg;
  cfg.machine = model::theta();
  cfg.rank_dims = {2, 2, 2};
  cfg.subdomain = Vec3::fill(dim);
  cfg.brick = 8;
  cfg.ghost = 8;
  cfg.timesteps = 8;
  cfg.warmup_exchanges = 1;
  cfg.execute_kernels = false;
  return cfg;
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// Compact trajectory record for one suite entry (BENCH_critical_path.json):
/// composition + wait-state sums + overlap headroom, no per-segment detail.
std::string suite_entry_json(const std::string& name,
                             const obs::RunAnalysis& a) {
  std::string o = "  {\"name\":\"" + name + "\",\"label\":\"" + a.label +
                  "\",\"nranks\":" + std::to_string(a.nranks);
  o += ",\"makespan_s\":" + num(a.makespan);
  o += std::string(",\"identity_ok\":") + (a.identity_ok ? "true" : "false");
  o += ",\"composition_s\":{";
  for (std::size_t i = 0; i < a.composition.size(); ++i) {
    if (i != 0) o += ",";
    o += "\"" + a.composition[i].first +
         "\":" + num(a.composition[i].second);
  }
  o += "}";
  const obs::WaitStates& w = a.waits;
  o += ",\"wait_states\":{";
  o += "\"late_sender_s\":" + num(w.late_sender_s);
  o += ",\"transfer_s\":" + num(w.transfer_s);
  o += ",\"queue_s\":" + num(w.queue_s);
  o += ",\"contention_s\":" + num(w.contention_s);
  o += ",\"fault_delay_s\":" + num(w.fault_delay_s);
  o += ",\"recv_latency_s\":" + num(w.recv_latency_s);
  o += ",\"collective_skew_s\":" + num(w.coll_skew_s);
  o += ",\"max_sharing\":" + num(w.max_sharing);
  o += "}";
  const double pct =
      a.makespan > 0.0 ? 100.0 * a.overlap_headroom / a.makespan : 0.0;
  o += ",\"overlap\":{";
  o += "\"comm_on_path_s\":" + num(a.comm_on_path);
  o += ",\"calc_on_path_s\":" + num(a.calc_on_path);
  o += ",\"headroom_s\":" + num(a.overlap_headroom);
  o += ",\"headroom_pct\":" + num(pct);
  o += "}}";
  return o;
}

int run_suite(const std::string& path, std::int64_t dim) {
  struct Entry {
    const char* name;
    harness::Method method;
    netsim::FabricKind fabric;
    bool overlap;
    const char* faults;  // nullptr = none
  };
  const Entry entries[] = {
      {"yask.flat", harness::Method::Yask, netsim::FabricKind::Flat, false,
       nullptr},
      {"mpitypes.flat", harness::Method::MpiTypes, netsim::FabricKind::Flat,
       false, nullptr},
      {"basic.flat", harness::Method::Basic, netsim::FabricKind::Flat, false,
       nullptr},
      {"layout.flat", harness::Method::Layout, netsim::FabricKind::Flat,
       false, nullptr},
      {"memmap.flat", harness::Method::MemMap, netsim::FabricKind::Flat,
       false, nullptr},
      {"memmap.dragonfly", harness::Method::MemMap,
       netsim::FabricKind::Dragonfly, false, nullptr},
      {"memmap.overlap", harness::Method::MemMap, netsim::FabricKind::Flat,
       true, nullptr},
      {"yask.delay-faults", harness::Method::Yask, netsim::FabricKind::Flat,
       false, "delay=0.3,seed=7,max-delay=1e-5"},
  };
  std::string out = "{\"version\":1,\"dim\":" + std::to_string(dim) +
                    ",\"benches\":[\n";
  bool first = true;
  for (const Entry& e : entries) {
    obs::Session session;
    {
      obs::Session::Scope scope(session);
      harness::Config cfg = base_config(dim);
      cfg.method = e.method;
      cfg.fabric = e.fabric;
      cfg.overlap = e.overlap;
      if (e.faults != nullptr) {
        const auto spec = mpi::parse_fault_spec(e.faults);
        BX_CHECK(spec.has_value(), "bad built-in fault spec");
        cfg.faults = *spec;
      }
      (void)harness::run(cfg);
    }
    for (const auto& run : session.runs()) {
      out += first ? "" : ",\n";
      first = false;
      out += suite_entry_json(e.name, obs::analyze_run(run));
      std::printf("%-18s done\n", e.name);
    }
  }
  out += "\n]}\n";
  obs::write_file(path, out);
  std::printf("wrote suite: %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser ap("trace_analyze",
               "critical-path & wait-state report over harness runs");
  ap.add("-d", "per-rank subdomain dimension", "32");
  ap.add("--methods",
         "comma-separated roster: yask | mpitypes | basic | layout | memmap "
         "| shift | network",
         "yask,mpitypes,layout,memmap");
  ap.add("--fabric",
         "network model: flat | single-switch | fat-tree | torus | "
         "dragonfly | machine",
         "flat");
  ap.add("--mapping",
         "rank-to-node mapping for non-flat fabrics: block | round-robin | "
         "greedy",
         "block");
  ap.add("--faults",
         "seeded message-fault schedule (see bench --help), default none",
         "none");
  ap.add_flag("--overlap", "overlap interior compute with the exchange");
  ap.add_flag("--json", "print the JSON report instead of text");
  ap.add("--out", "also write the report to this path (.txt = text)", "");
  ap.add("--suite",
         "write the fixed-roster BENCH_critical_path.json trajectory to this "
         "path and exit",
         "");
  ap.parse(argc, argv);
  const std::int64_t dim = ap.get_int("-d");

  const std::string suite = ap.get("--suite");
  if (!suite.empty()) return run_suite(suite, dim);

  netsim::FabricKind fabric = netsim::FabricKind::Flat;
  if (ap.get("--fabric") == "machine") {
    fabric = model::theta().fabric;
  } else {
    const auto fk = netsim::parse_fabric(ap.get("--fabric"));
    BX_CHECK(fk.has_value(), "unknown --fabric (see --help)");
    fabric = *fk;
  }
  const auto mk = netsim::parse_mapping(ap.get("--mapping"));
  BX_CHECK(mk.has_value(), "unknown --mapping (see --help)");
  const auto faults = mpi::parse_fault_spec(ap.get("--faults"));
  BX_CHECK(faults.has_value(), "malformed --faults (see --help)");

  obs::Session session;
  {
    obs::Session::Scope scope(session);
    std::stringstream ss(ap.get("--methods"));
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (tok.empty()) continue;
      const auto m = parse_method(tok);
      BX_CHECK(m.has_value(), "unknown method in --methods (see --help)");
      harness::Config cfg = base_config(dim);
      cfg.method = *m;
      cfg.fabric = fabric;
      cfg.mapping = *mk;
      cfg.faults = *faults;
      cfg.overlap = ap.get_flag("--overlap");
      (void)harness::run(cfg);
    }
  }

  const std::string report =
      ap.get_flag("--json") ? obs::analysis_json(session)
                            : obs::analysis_text(session);
  std::fputs(report.c_str(), stdout);
  const std::string out = ap.get("--out");
  if (!out.empty()) {
    obs::write_analysis(session, out);
    std::printf("\nwrote analysis: %s\n", out.c_str());
  }
  return 0;
}
