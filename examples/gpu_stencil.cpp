// gpu_stencil: the Section-5 data-movement story on the simulated Summit
// node — compare the three GPU communication modes on one subdomain size:
//
//   LayoutCA  — storage in (simulated) cudaMalloc memory; CUDA-Aware MPI
//               with GPUDirect RDMA, no host staging at all;
//   LayoutUM  — unified memory; pages fault between host and device as MPI
//               and the kernel touch them (unaligned regions fragment);
//   MemMapUM  — unified memory + mmap views; page-aligned chunks, one
//               message per neighbor.
//
// Validates each mode's arithmetic against the exact reference, then prints
// the per-phase breakdown and the padding / migration accounting.

#include <cstdio>

#include "common/argparse.h"
#include "harness/experiment.h"

using namespace brickx;
using harness::GpuMode;
using harness::Method;

int main(int argc, char** argv) {
  ArgParser ap("gpu_stencil", "GPU data-movement modes on simulated Summit");
  ap.add("-d", "per-rank subdomain dimension", "32");
  ap.add("-t", "timesteps", "16");
  ap.parse(argc, argv);

  struct ModeSpec {
    const char* name;
    Method method;
    GpuMode gpu;
  };
  const ModeSpec modes[] = {
      {"LayoutCA", Method::Layout, GpuMode::CudaAware},
      {"LayoutUM", Method::Layout, GpuMode::Unified},
      {"MemMapUM", Method::MemMap, GpuMode::Unified},
  };

  std::printf("gpu_stencil: %lld^3 cells/rank, 8 ranks (one V100 each), "
              "7-point stencil on the summit model\n\n",
              static_cast<long long>(ap.get_int("-d")));
  std::printf("%-9s %10s %10s %10s %12s %8s %10s\n", "mode", "calc(ms)",
              "call(ms)", "wait(ms)", "GStencil/s", "pad(%)", "validated");
  for (const ModeSpec& m : modes) {
    harness::Config cfg;
    cfg.machine = model::summit();
    cfg.rank_dims = {2, 2, 2};
    cfg.subdomain = Vec3::fill(ap.get_int("-d"));
    cfg.brick = 8;
    cfg.ghost = 8;
    cfg.method = m.method;
    cfg.gpu = m.gpu;
    cfg.timesteps = static_cast<int>(ap.get_int("-t"));
    cfg.validate = true;
    const harness::Result r = run(cfg);
    std::printf("%-9s %10.4f %10.4f %10.4f %12.3f %8.1f %10s\n", m.name,
                r.calc.avg() * 1e3, r.call.avg() * 1e3, r.wait.avg() * 1e3,
                r.gstencils, r.padding_percent,
                r.validated ? "exact" : "MISMATCH");
  }
  std::printf(
      "\nExpected: LayoutCA leads (no staging, no faults); LayoutUM pays "
      "fault backwash in calc; MemMapUM trades padded bytes for one "
      "message per neighbor. All three compute identical values.\n");
  return 0;
}
