// inspect: a layout inspector for adopters — dumps everything a user needs
// to understand what a BrickDecomp did with their domain: the band
// structure, every region chunk (kind, signature, box, bricks, bytes,
// padding), the per-neighbor message plan for each exchange method, and
// the mmap-view segment budget against vm.max_map_count.

#include <cstdio>
#include <iostream>

#include "common/argparse.h"
#include "core/decomp.h"
#include "core/exchange.h"
#include "core/exchange_view.h"
#include "common/table.h"
#include "memmap/pagesize.h"

using namespace brickx;

int main(int argc, char** argv) {
  ArgParser ap("inspect", "dump a decomposition and its message plans");
  ap.add("-d", "subdomain dimension (cells)", "64");
  ap.add("-b", "brick dimension", "8");
  ap.add("-g", "ghost width (cells)", "8");
  ap.add("-p", "page size for MemMap (0=host)", "0");
  ap.add_flag("-r", "also list every region chunk");
  ap.parse(argc, argv);

  const std::int64_t d = ap.get_int("-d"), b = ap.get_int("-b"),
                     g = ap.get_int("-g");
  BrickDecomp<3> dec(Vec3::fill(d), g, Vec3::fill(b), surface3d());
  BrickStorage heap = dec.allocate(1);
  BrickStorage mm =
      dec.mmap_alloc(1, static_cast<std::size_t>(ap.get_int("-p")));

  std::printf("decomposition: %lld^3 cells, %lld^3 bricks, ghost %lld "
              "(%lld layer(s))\n",
              static_cast<long long>(d), static_cast<long long>(b),
              static_cast<long long>(g),
              static_cast<long long>(dec.ghost_layers()[0]));
  std::printf("bricks: %lld own + %lld ghost; brick = %lld doubles (%zu B)\n",
              static_cast<long long>(dec.own_brick_count()),
              static_cast<long long>(dec.total_brick_count() -
                                     dec.own_brick_count()),
              static_cast<long long>(dec.elements_per_brick()),
              heap.brick_bytes());
  std::printf("storage: packed %zu B; page-aligned %zu B (+%zu B padding "
              "at %zu B pages)\n\n",
              heap.bytes(), mm.bytes(), mm.padding_bytes(), mm.page_size());

  if (ap.get_flag("-r")) {
    Table rt({"ordinal", "kind", "sigma", "nu", "bricks", "bytes",
              "padded"});
    using Kind = BrickDecomp<3>::Region::Kind;
    for (std::size_t o = 0; o < dec.regions().size(); ++o) {
      const auto& r = dec.regions()[o];
      const auto& c = mm.chunks()[o];
      rt.row()
          .cell(static_cast<std::int64_t>(o))
          .cell(r.kind == Kind::Surface
                    ? "surface"
                    : (r.kind == Kind::Interior ? "interior" : "ghost"))
          .cell(r.sigma.str())
          .cell(r.nu.str())
          .cell(r.brick_count)
          .cell(static_cast<std::int64_t>(c.bytes))
          .cell(static_cast<std::int64_t>(c.padded_bytes));
    }
    rt.print(std::cout);
    std::printf("\n");
  }

  // Per-neighbor message plan for the Layout exchange.
  Table mt({"neighbor", "regions", "layout.msgs", "basic.msgs", "bytes"});
  std::int64_t tot_l = 0, tot_b = 0;
  for (const BitSet& nu : dec.neighbor_order()) {
    const auto merged = plan_send_groups(dec, heap, nu, true);
    const auto basic = plan_send_groups(dec, heap, nu, false);
    std::int64_t bytes = 0;
    std::int64_t regions = 0;
    for (const auto& grp : basic) {
      regions += static_cast<std::int64_t>(grp.size());
      for (int o : grp)
        bytes += static_cast<std::int64_t>(
            heap.chunks()[static_cast<std::size_t>(o)].bytes);
    }
    tot_l += static_cast<std::int64_t>(merged.size());
    tot_b += static_cast<std::int64_t>(basic.size());
    mt.row()
        .cell(nu.str())
        .cell(regions)
        .cell(static_cast<std::int64_t>(merged.size()))
        .cell(static_cast<std::int64_t>(basic.size()))
        .cell(bytes);
  }
  mt.print(std::cout);
  std::printf("\ntotals: Layout %lld msgs, Basic %lld msgs, MemMap %d msgs "
              "(one per neighbor)\n",
              static_cast<long long>(tot_l), static_cast<long long>(tot_b),
              dec.surface_region_count());

  // View budget vs the kernel limit the paper discusses.
  std::vector<int> self(dec.neighbor_order().size(), 0);
  ExchangeView<3> ev(dec, mm, self);
  std::printf("mmap view segments per rank: %lld (vm.max_map_count is "
              "typically 65530)\n",
              static_cast<long long>(ev.view_segment_count()));
  std::printf("MemMap padding overhead: %.1f%% of payload\n",
              ev.padding_overhead_percent());
  return 0;
}
