// timeline: run one small experiment per method and render each rank's
// measured timesteps as an ASCII phase timeline from the obs span trace —
// calc/pack/call/wait bars per rank with send-queueing and message-arrival
// markers overlaid. Makes the structure the paper reasons about (packing
// time, NIC serialization, wait chains) directly visible in a terminal,
// and exports the same data as a Perfetto-loadable Chrome trace via
// --trace-out. Pass --fabric/--mapping to time the runs on a routed
// contention fabric instead of the flat model.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/argparse.h"
#include "common/error.h"
#include "harness/experiment.h"
#include "obs/analyze.h"
#include "obs/export.h"
#include "obs/obs.h"
#include "obs/session.h"

using namespace brickx;

namespace {

constexpr int kWidth = 72;  ///< timeline columns

char phase_glyph(obs::Cat c) {
  switch (c) {
    case obs::Cat::Calc:
      return '#';
    case obs::Cat::Pack:
      return '=';
    case obs::Cat::Call:
      return '>';
    case obs::Cat::Wait:
      return '.';
    default:
      return ' ';
  }
}

bool is_phase_span(const obs::SpanEvent& s) {
  if (s.depth != 0 || s.step < 0) return false;
  return s.cat == obs::Cat::Calc || s.cat == obs::Cat::Pack ||
         s.cat == obs::Cat::Call || s.cat == obs::Cat::Wait;
}

void render_run(const obs::Session::Run& run) {
  // Scale the bars to the measured window: first to last phase span.
  double t0 = 0.0, t1 = 0.0;
  bool any = false;
  for (const obs::RankLog& lg : run.logs) {
    for (const obs::SpanEvent& s : lg.spans()) {
      if (!is_phase_span(s)) continue;
      if (!any) {
        t0 = s.t0;
        t1 = s.t1;
        any = true;
      } else {
        t0 = std::min(t0, s.t0);
        t1 = std::max(t1, s.t1);
      }
    }
  }
  std::printf("\n%s  (%d ranks)\n", run.label.c_str(), run.nranks);
  if (!any || t1 <= t0) {
    std::printf("  (no phase spans recorded)\n");
    return;
  }
  auto col = [&](double t) {
    const double f = (t - t0) / (t1 - t0);
    return std::clamp(static_cast<int>(f * kWidth), 0, kWidth - 1);
  };
  for (int r = 0; r < run.nranks; ++r) {
    const obs::RankLog& lg = run.logs[static_cast<std::size_t>(r)];
    std::string line(kWidth, ' ');
    for (const obs::SpanEvent& s : lg.spans()) {
      if (!is_phase_span(s)) continue;
      const int a = col(s.t0), b = col(s.t1);
      for (int c = a; c <= b; ++c) line[static_cast<std::size_t>(c)] =
          phase_glyph(s.cat);
    }
    // Outgoing-send queueing on this rank: the stretch between posting a
    // message and the NIC finishing its injection (departure − post) —
    // the serialization the phase bars hide inside call/wait.
    for (const obs::FlowEvent& f : lg.flows()) {
      if (f.depart <= f.post || f.depart < t0 || f.post > t1) continue;
      const int a = col(std::max(f.post, t0));
      const int b = col(std::min(f.depart, t1));
      for (int c = a; c <= b; ++c)
        line[static_cast<std::size_t>(c)] = '~';
    }
    // Message arrivals at this rank (sender-recorded flows, receiver dst).
    // On-node deliveries — shared-memory handoffs that never touched the
    // fabric — get their own glyph so locality is visible at a glance.
    for (const obs::RankLog& src : run.logs) {
      for (const obs::FlowEvent& f : src.flows()) {
        if (f.dst != r || f.arrive < t0 || f.arrive > t1) continue;
        line[static_cast<std::size_t>(col(f.arrive))] = f.onnode ? 'o' : 'v';
      }
    }
    std::printf("  rank %d |%s|\n", r, line.c_str());
  }
  std::printf("  window %.2f..%.2f us\n", t0 * 1e6, t1 * 1e6);

  // Queueing-delay summary over every recorded flow (warmup included).
  double queue_s = 0.0;
  long long nflows = 0;
  for (const obs::RankLog& lg : run.logs) {
    for (const obs::FlowEvent& f : lg.flows()) {
      queue_s += f.depart - f.post;
      ++nflows;
    }
  }
  if (nflows > 0)
    std::printf("  send queueing: %.2f us total, %.3f us/msg over %lld msgs\n",
                queue_s * 1e6, queue_s * 1e6 / static_cast<double>(nflows),
                nflows);

  // Critical-path summary: where the end-to-end virtual makespan actually
  // went, and how much of it perfect compute/communication overlap could
  // reclaim at best (see obs/analyze.h).
  const obs::RunAnalysis cp = obs::analyze_run(run);
  if (cp.makespan > 0.0 && !cp.composition.empty()) {
    std::string top;
    for (std::size_t i = 0; i < cp.composition.size() && i < 3; ++i) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "%s%s %.1f%%", i != 0 ? ", " : "",
                    cp.composition[i].first.c_str(),
                    100.0 * cp.composition[i].second / cp.makespan);
      top += buf;
    }
    std::printf(
        "  critical path: %.2f us%s; top: %s; overlap headroom %.2f us "
        "(%.1f%%)\n",
        cp.makespan * 1e6, cp.identity_ok ? "" : " (identity BROKEN)",
        top.c_str(), cp.overlap_headroom * 1e6,
        100.0 * cp.overlap_headroom / cp.makespan);
  }

  const auto metrics = obs::merged_metrics(run.logs);
  auto counter = [&](const char* name) -> long long {
    auto it = metrics.find(name);
    return it == metrics.end() ? 0 : static_cast<long long>(it->second.value);
  };
  auto gauge = [&](const char* name) -> double {
    auto it = metrics.find(name);
    return it == metrics.end() ? 0.0 : it->second.gauge;
  };
  std::printf(
      "  msgs sent/recv %lld/%lld, bytes sent %lld, max inflight %.0f\n",
      counter("comm.msgs_sent"), counter("comm.msgs_recv"),
      counter("comm.bytes_sent"), gauge("comm.max_inflight_reqs"));

  // Transport-tier summary: on-node deliveries and aggregation frame fill.
  // The counters exist only under --transport shm/shm-agg, so the default
  // flat output stays unchanged.
  const long long onnode = counter("transport.onnode_msgs");
  const long long frames = counter("transport.agg_frames");
  const long long subs = counter("transport.agg_submsgs");
  if (onnode > 0)
    std::printf("  on-node: %lld msgs delivered through shared memory\n",
                onnode);
  if (frames > 0)
    std::printf(
        "  aggregation: %lld sub-messages in %lld fabric frames "
        "(%.2f subs/frame)\n",
        subs, frames, static_cast<double>(subs) / static_cast<double>(frames));
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser ap("timeline", "per-rank phase timeline of one run per method");
  ap.add("-d", "per-rank subdomain dimension", "32");
  ap.add("--fabric",
         "network model: flat | single-switch | fat-tree | torus | "
         "dragonfly | machine",
         "flat");
  ap.add("--mapping",
         "rank-to-node mapping for non-flat fabrics: block | round-robin | "
         "greedy",
         "block");
  ap.add("--transport",
         "on-node transport tier: flat | shm | shm-agg (shm-agg needs "
         "--rpn > 1)",
         "flat");
  ap.add("--rpn", "ranks per node (0 = the theta model's value)", "0");
  ap.add_flag("--overlap",
              "run Layout/MemMap with the partitioned dependency scheduler "
              "(DESIGN.md §14): calc bars interleave with partition waits");
  ap.add("--trace-out", "write a Chrome trace-event JSON (Perfetto)", "");
  ap.add("--metrics-out", "write merged metrics (.csv or JSON)", "");
  ap.parse(argc, argv);
  const std::int64_t dim = ap.get_int("-d");

  netsim::FabricKind fabric = netsim::FabricKind::Flat;
  if (ap.get("--fabric") == "machine") {
    fabric = model::theta().fabric;
  } else {
    const auto fk = netsim::parse_fabric(ap.get("--fabric"));
    BX_CHECK(fk.has_value(), "unknown --fabric (see --help)");
    fabric = *fk;
  }
  const auto mk = netsim::parse_mapping(ap.get("--mapping"));
  BX_CHECK(mk.has_value(), "unknown --mapping (see --help)");
  transport::Kind tk;
  BX_CHECK(transport::parse_kind(ap.get("--transport"), &tk),
           "unknown --transport (see --help)");
  const std::int64_t rpn = ap.get_int("--rpn");

  std::printf("timeline: 8 ranks, %lld^3 cells each, one measured exchange "
              "batch (theta model, %s fabric)\n",
              static_cast<long long>(dim), netsim::fabric_name(fabric));
  std::printf("legend: # calc   = pack   > call(post)   . wait   "
              "~ send queued   v message arrival\n");
  if (tk != transport::Kind::Flat)
    std::printf("        o on-node arrival (shared-memory delivery, "
                "transport=%s)\n",
                transport::kind_name(tk));
  if (ap.get_flag("--overlap"))
    std::printf("overlap: Layout/MemMap run the partitioned scheduler — "
                "interior calc (#) before the shell's partition waits (.)\n");

  obs::Session session;
  {
    obs::Session::Scope scope(session);
    for (harness::Method m :
         {harness::Method::Yask, harness::Method::MpiTypes,
          harness::Method::Layout, harness::Method::MemMap}) {
      harness::Config cfg;
      cfg.machine = model::theta();
      cfg.rank_dims = {2, 2, 2};
      cfg.subdomain = Vec3::fill(dim);
      cfg.brick = 8;
      cfg.ghost = 8;
      cfg.method = m;
      cfg.timesteps = 8;
      cfg.warmup_exchanges = 1;
      cfg.execute_kernels = false;
      cfg.fabric = fabric;
      cfg.mapping = *mk;
      cfg.transport = tk;
      if (rpn > 0) cfg.machine.net.ranks_per_node = static_cast<int>(rpn);
      // The scheduler only drives the brick methods' partitioned plans;
      // YASK / MPI_Types stay bulk-synchronous for contrast.
      cfg.overlap = ap.get_flag("--overlap") &&
                    (m == harness::Method::Layout ||
                     m == harness::Method::MemMap);
      (void)harness::run(cfg);
    }
  }

  if (session.empty()) {
    std::printf("\n(no runs recorded — built with BRICKX_OBS=0)\n");
  } else {
    for (const auto& run : session.runs()) render_run(run);
  }

  std::printf(
      "\nReading guide: YASK brackets each exchange with pack bars (=) that "
      "the brick methods do not have; MemMap's few large messages arrive "
      "back-to-back (NIC serialization) inside the wait bar; calc (#) "
      "dominates only at large subdomains.\n");

  const std::string trace_path = ap.get("--trace-out");
  const std::string metrics_path = ap.get("--metrics-out");
  if (!trace_path.empty()) {
    obs::write_chrome_trace(session, trace_path);
    std::printf("\nwrote trace: %s (load at https://ui.perfetto.dev)\n",
                trace_path.c_str());
  }
  if (!metrics_path.empty()) {
    obs::write_metrics(session, metrics_path);
    std::printf("wrote metrics: %s\n", metrics_path.c_str());
  }
  return 0;
}
