// timeline: record and print the message schedule of one ghost-zone
// exchange for each method — who sends what to whom, when it departs the
// NIC and when it lands. Makes the latency/serialization structure the
// paper reasons about directly visible.

#include <cstdio>

#include "common/argparse.h"
#include "core/cell_array.h"
#include "core/exchange.h"
#include "core/exchange_view.h"
#include "core/shift.h"
#include "model/machine.h"
#include "simmpi/cart.h"

using namespace brickx;

namespace {

void show(const char* name, const std::vector<mpi::MsgEvent>& trace,
          int max_rows) {
  double last = 0, bytes = 0;
  for (const auto& e : trace) {
    last = std::max(last, e.arrival);
    bytes += static_cast<double>(e.bytes);
  }
  std::printf("\n%s: %zu messages, %.1f KiB total, last arrival %.2f us\n",
              name, trace.size(), bytes / 1024, last * 1e6);
  std::printf("  %-4s %-4s %-6s %-10s %-12s %-12s\n", "src", "dst", "tag",
              "bytes", "depart(us)", "arrive(us)");
  int from_zero = 0;
  for (const auto& e : trace)
    if (e.src == 0) ++from_zero;
  int shown = 0;
  for (const auto& e : trace) {
    if (e.src != 0) continue;  // rank 0's sends keep the listing short
    if (++shown > max_rows) {
      std::printf("  ... (%d more from rank 0)\n", from_zero - max_rows);
      break;
    }
    std::printf("  %-4d %-4d %-6d %-10zu %-12.2f %-12.2f\n", e.src, e.dst,
                e.tag, e.bytes, e.departure * 1e6, e.arrival * 1e6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser ap("timeline", "message timeline of one exchange per method");
  ap.add("-d", "per-rank subdomain dimension", "32");
  ap.add("-n", "max rows to print per method", "12");
  ap.parse(argc, argv);
  const std::int64_t dim = ap.get_int("-d");
  const int max_rows = static_cast<int>(ap.get_int("-n"));

  std::printf("timeline: one exchange on 8 ranks, %lld^3 cells each "
              "(theta model)\n",
              static_cast<long long>(dim));

  auto record = [&](auto&& body) {
    mpi::Runtime rt(8, model::theta().net);
    rt.enable_trace();
    rt.run([&](mpi::Comm& comm) {
      mpi::Cart<3> cart(comm, {2, 2, 2});
      BrickDecomp<3> dec(Vec3::fill(dim), 8, {8, 8, 8}, surface3d());
      body(comm, cart, dec);
    });
    return rt.trace();
  };

  show("Layout (42 msgs/rank)",
       record([](mpi::Comm& comm, mpi::Cart<3>& cart, BrickDecomp<3>& dec) {
         BrickStorage s = dec.allocate(1);
         Exchanger<3> ex(dec, s, populate(cart, dec),
                         Exchanger<3>::Mode::Layout);
         ex.exchange(comm);
       }),
       max_rows);

  show("MemMap (26 msgs/rank)",
       record([](mpi::Comm& comm, mpi::Cart<3>& cart, BrickDecomp<3>& dec) {
         BrickStorage s = dec.mmap_alloc(1);
         ExchangeView<3> ev(dec, s, populate(cart, dec));
         ev.exchange(comm);
       }),
       max_rows);

  show("Shift (3 dependent phases)",
       record([](mpi::Comm& comm, mpi::Cart<3>& cart, BrickDecomp<3>& dec) {
         BrickStorage s = dec.allocate(1);
         ShiftExchanger<3> sh(dec, s, shift_neighbors(cart));
         sh.exchange(comm);
       }),
       max_rows);

  std::printf(
      "\nReading guide: MemMap's few large messages depart back-to-back "
      "(NIC serialization); Shift's later phases cannot depart before the "
      "prior phase arrives — visible as gaps in the departure column.\n");
  return 0;
}
