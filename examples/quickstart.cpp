// Quickstart: the brick library in one file.
//
// Builds a 64^3 subdomain of 8^3 bricks, runs a 7-point stencil through the
// paper's Figure-6 accessor interface, and performs one pack-free ghost
// exchange on a single fully-periodic rank — the smallest possible end-to-
// end tour of BrickDecomp / BrickInfo / BrickStorage / Brick / exchange.

#include <cstdio>

#include "core/brick.h"
#include "core/cell_array.h"
#include "core/decomp.h"
#include "core/exchange.h"
#include "simmpi/cart.h"
#include "stencil/stencils.h"

using namespace brickx;

int main() {
  // --- decomposition: 64^3 cells, 8-wide ghost zone, 8^3 bricks, stored
  // in the paper's optimal 42-message surface3d order ---------------------
  BrickDecomp<3> dec({64, 64, 64}, /*ghost=*/8, {8, 8, 8}, surface3d());
  std::printf("bricks: %lld own + %lld ghost, %d surface regions\n",
              static_cast<long long>(dec.own_brick_count()),
              static_cast<long long>(dec.total_brick_count() -
                                     dec.own_brick_count()),
              dec.surface_region_count());

  // --- metadata + storage (paper Figure 7) --------------------------------
  BrickInfo<3> info = dec.brick_info();
  BrickStorage storage = dec.allocate(/*fields=*/2);

  // --- two interleaved fields, accessed as in paper Figure 6 --------------
  Brick<8, 8, 8> a(&info, &storage, 0);
  Brick<8, 8, 8> b(&info, &storage, 512);  // field 1: one 8^3 of doubles in

  // Fill field b with a smooth function via the cell-array bridge.
  CellArray3 init(Box<3>{{0, 0, 0}, {64, 64, 64}});
  for_each(init.box(), [&](const Vec3& p) {
    init.at(p) = static_cast<double>((p[0] + p[1] + p[2]) % 7);
  });
  cells_to_bricks(dec, init, storage, 1);

  // --- one ghost exchange on a single periodic rank ------------------------
  mpi::Runtime rt(1, mpi::NetModel{});
  rt.run([&](mpi::Comm& comm) {
    mpi::Cart<3> cart(comm, {1, 1, 1});
    Exchanger<3> ex(dec, storage, populate(cart, dec),
                    Exchanger<3>::Mode::Layout);
    ex.exchange(comm);
    std::printf("exchange: %lld messages, %lld bytes (pack-free)\n",
                static_cast<long long>(ex.send_message_count()),
                static_cast<long long>(ex.send_byte_count()));

    // --- the 7-point stencil, exactly as printed in the paper -------------
    constexpr double c0 = 0.4, c1 = 0.1, c2 = 0.1, c3 = 0.1, c4 = 0.1,
                     c5 = 0.1, c6 = 0.1;
    for (std::int64_t brickIndex = 0; brickIndex < dec.own_brick_count();
         ++brickIndex)
      for (int k = 0; k < 8; ++k)
        for (int j = 0; j < 8; ++j)
          for (int i = 0; i < 8; ++i)
            a[brickIndex][k][j][i] =
                c0 * b[brickIndex][k][j][i] + c1 * b[brickIndex][k - 1][j][i] +
                c2 * b[brickIndex][k + 1][j][i] +
                c3 * b[brickIndex][k][j - 1][i] +
                c4 * b[brickIndex][k][j + 1][i] +
                c5 * b[brickIndex][k][j][i - 1] +
                c6 * b[brickIndex][k][j][i + 1];
  });

  // Sanity: a periodic step of a bounded field stays bounded.
  CellArray3 out(Box<3>{{0, 0, 0}, {64, 64, 64}});
  bricks_to_cells(dec, storage, 0, out);
  double mn = 1e300, mx = -1e300;
  for (double v : out.raw()) {
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  std::printf("after one step: min=%.3f max=%.3f (expected within [0,6])\n",
              mn, mx);
  return 0;
}
