// heat3d: a distributed 3D heat-diffusion solve — the workload class the
// paper's introduction motivates (iterative solvers strong-scaled until
// communication dominates).
//
// Eight ranks (threads) form a periodic 2^3 cube. Each timestep applies the
// 7-point diffusion stencil; the ghost-zone exchange uses MemMap views
// (one message per neighbor, zero packing) with ghost-cell expansion so an
// exchange happens only every ghost/radius = 8 steps. Prints the artifact's
// calc/pack/call/wait/perf metrics and checks against the exact reference.

#include <cstdio>

#include "common/argparse.h"
#include "harness/experiment.h"

using namespace brickx;

int main(int argc, char** argv) {
  ArgParser ap("heat3d", "distributed heat diffusion with MemMap exchange");
  ap.add("-d", "per-rank subdomain dimension", "32");
  ap.add("-t", "timesteps", "16");
  ap.add_flag("-q", "skip the exact validation (large domains)");
  ap.parse(argc, argv);

  harness::Config cfg;
  cfg.machine = model::theta();
  cfg.rank_dims = {2, 2, 2};
  cfg.subdomain = Vec3::fill(ap.get_int("-d"));
  cfg.brick = 8;
  cfg.ghost = 8;
  cfg.method = harness::Method::MemMap;
  cfg.timesteps = static_cast<int>(ap.get_int("-t"));
  cfg.warmup_exchanges = 1;
  cfg.validate = !ap.get_flag("-q");

  std::printf("heat3d: %lld^3 cells/rank on a periodic 2x2x2 rank cube, "
              "7-point stencil, MemMap exchange every 8 steps\n\n",
              static_cast<long long>(ap.get_int("-d")));
  const harness::Result r = run(cfg);

  // The artifact's five metrics, in its format.
  std::printf("calc %s\n", r.calc.str().c_str());
  std::printf("pack %s\n", r.pack.str().c_str());
  std::printf("call %s\n", r.call.str().c_str());
  std::printf("wait %s\n", r.wait.str().c_str());
  std::printf("perf %.3f GStencil/s (modeled on %s)\n", r.gstencils,
              cfg.machine.name.c_str());
  std::printf("comm: %lld msgs/exchange, %lld bytes, padding %.1f%%\n",
              static_cast<long long>(r.msgs_per_rank),
              static_cast<long long>(r.wire_bytes_per_rank),
              r.padding_percent);
  if (cfg.validate)
    std::printf("validation vs single-domain reference: %s\n",
                r.validated ? "EXACT MATCH" : "MISMATCH");
  return r.validated || !cfg.validate ? 0 : 1;
}
