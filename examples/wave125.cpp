// wave125: a high-order (5^3, 125-point) stencil sweep — the paper's
// high-arithmetic-intensity proxy, the kind of wide-halo kernel that makes
// fine-grained data blocking and ghost-cell expansion pay off.
//
// Demonstrates the multi-field interleaving of Section 6: pressure and
// velocity-potential fields share one BrickStorage (array-of-structure-of-
// array), so a single pack-free Layout exchange communicates both at once.

#include <cstdio>

#include "core/brick.h"
#include "core/cell_array.h"
#include "core/decomp.h"
#include "core/exchange.h"
#include "model/machine.h"
#include "simmpi/cart.h"
#include "stencil/stencils.h"

using namespace brickx;

int main(int argc, char** argv) {
  std::int64_t dim = 32;
  int steps = 8;
  if (argc > 1) dim = std::atoll(argv[1]);
  if (argc > 2) steps = std::atoi(argv[2]);

  std::printf("wave125: %lld^3 cells/rank, 8 ranks, 125-point stencil, "
              "2 fields interleaved in one storage, Layout exchange\n",
              static_cast<long long>(dim));

  mpi::Runtime rt(8, model::theta().net);
  rt.run([&](mpi::Comm& comm) {
    mpi::Cart<3> cart(comm, {2, 2, 2});
    BrickDecomp<3> dec(Vec3::fill(dim), 8, {8, 8, 8}, surface3d());
    BrickInfo<3> info = dec.brick_info();
    // Two interleaved fields: p (offset 0) and q (offset 8^3). One
    // exchange moves both — "communicating them all at once in a single
    // BrickStorage exchange" (paper Section 6).
    BrickStorage storage = dec.allocate(/*fields=*/2);
    Brick<8, 8, 8> p(&info, &storage, 0);
    Brick<8, 8, 8> q(&info, &storage, 512);

    const Vec3 off = cart.coords() * Vec3::fill(dim);
    CellArray3 seed(Box<3>{{0, 0, 0}, Vec3::fill(dim)});
    for_each(seed.box(), [&](const Vec3& c) {
      const Vec3 g = c + off;
      seed.at(c) = (g[0] == 16 && g[1] == 16 && g[2] == 16) ? 1.0 : 0.0;
    });
    cells_to_bricks(dec, seed, storage, 0);

    Exchanger<3> ex(dec, storage, populate(cart, dec),
                    Exchanger<3>::Mode::Layout);

    // Radius-2 stencil with an 8-wide ghost: exchange every 4 steps; both
    // fields ride the same messages.
    const std::int64_t k = stencil::steps_per_exchange(8, 2);
    int from = 0;
    for (int s = 0; s < steps; ++s) {
      if (s % k == 0) ex.exchange(comm);
      const Box<3> out_box =
          stencil::expansion_output_box<3>(Vec3::fill(dim), 8, 2, s % k);
      if (from == 0) {
        stencil::apply125_bricks<8, 8, 8>(dec, q, p, out_box);
      } else {
        stencil::apply125_bricks<8, 8, 8>(dec, p, q, out_box);
      }
      from = 1 - from;
    }

    // Diffused pulse: total mass is conserved by the normalized weights.
    CellArray3 out(Box<3>{{0, 0, 0}, Vec3::fill(dim)});
    bricks_to_cells(dec, storage, from, out);
    double mass = 0;
    for (double v : out.raw()) mass += v;
    const double total = comm.allreduce_sum(mass);
    if (comm.rank() == 0) {
      std::printf("after %d steps: global mass = %.12f (expected 1.0), "
                  "exchange = %lld msgs x %lld bytes for BOTH fields\n",
                  steps, total,
                  static_cast<long long>(ex.send_message_count()),
                  static_cast<long long>(ex.send_byte_count()));
    }
  });
  return 0;
}
