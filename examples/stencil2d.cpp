// stencil2d: the paper's expository scenario (Figures 2 and 3) run for
// real — a 2D 5-point stencil on 32x32 subdomains of 4x4 blocks with an
// 8-wide ghost zone.
//
// A 5-point stencil only *needs* a 1-cell ghost, which is thinner than a
// 4x4 block; following Section 2, the ghost zone is expanded to 8 = 2
// blocks and ghost cell expansion trades redundant computation for one
// exchange every 8 steps. The exchange uses the optimal surface2d order:
// 9 messages to 8 neighbors (vs 16 Basic, 12 for the Figure-2 numbering).

#include <cstdio>

#include "core/brick.h"
#include "core/cell_array.h"
#include "core/decomp.h"
#include "core/exchange.h"
#include "model/machine.h"
#include "simmpi/cart.h"
#include "stencil/stencils.h"

using namespace brickx;

namespace {

// 5-point diffusion with weights summing to 1.
void apply5(const CellArray<2>& in, CellArray<2>& out, const Box<2>& cells) {
  for_each(cells, [&](const Vec2& p) {
    out.at(p) = 0.6 * in.at(p) + 0.1 * in.at(p - Vec2{1, 0}) +
                0.1 * in.at(p + Vec2{1, 0}) + 0.1 * in.at(p - Vec2{0, 1}) +
                0.1 * in.at(p + Vec2{0, 1});
  });
}

}  // namespace

int main(int argc, char** argv) {
  int steps = 16;
  if (argc > 1) steps = std::atoi(argv[1]);
  const Vec2 N{32, 32};
  const std::int64_t g = 8;

  std::printf("stencil2d: the Figure-2 setup — 32x32 subdomains, 4x4 "
              "blocks, 8-wide expanded ghost, 4 ranks, surface2d order\n");

  mpi::Runtime rt(4, model::theta().net);
  rt.run([&](mpi::Comm& comm) {
    mpi::Cart<2> cart(comm, {2, 2});
    BrickDecomp<2> dec(N, g, {4, 4}, surface2d());
    BrickStorage storage = dec.allocate(1);
    Exchanger<2> ex(dec, storage, populate(cart, dec),
                    Exchanger<2>::Mode::Layout);
    Exchanger<2> basic(dec, storage, populate(cart, dec),
                       Exchanger<2>::Mode::Basic);
    if (comm.rank() == 0) {
      std::printf("  messages per exchange: %lld (Layout) vs %lld (Basic); "
                  "paper: 9 vs 16\n",
                  static_cast<long long>(ex.send_message_count()),
                  static_cast<long long>(basic.send_message_count()));
    }

    // Seed: a hot square in rank 0's interior; elsewhere cold.
    const Vec2 off = cart.coords() * N;
    CellArray<2> f(Box<2>{Vec2{0, 0} - Vec2::fill(g), N + Vec2::fill(g)});
    for_each(Box<2>{{0, 0}, N}, [&](const Vec2& p) {
      const Vec2 q = p + off;
      f.at(p) = (q[0] >= 12 && q[0] < 20 && q[1] >= 12 && q[1] < 20) ? 1.0
                                                                      : 0.0;
    });
    CellArray<2> tmp(f.box());

    // Ghost-cell expansion: radius 1, ghost 8 -> exchange every 8 steps,
    // with the compute region shrinking by one cell per step.
    const std::int64_t kk = stencil::steps_per_exchange(g, 1);
    for (int s = 0; s < steps; ++s) {
      if (s % kk == 0) {
        cells_to_bricks(dec, f, storage, 0);
        ex.exchange(comm);
        bricks_to_cells(dec, storage, 0, f);
      }
      apply5(f, tmp, stencil::expansion_output_box<2>(N, g, 1, s % kk));
      std::swap(f.raw(), tmp.raw());
    }

    double mass = 0;
    for_each(Box<2>{{0, 0}, N}, [&](const Vec2& p) { mass += f.at(p); });
    const double total = comm.allreduce_sum(mass);
    if (comm.rank() == 0)
      std::printf("  after %d steps: global mass %.12f (expected 64.0 — "
                  "8x8 hot cells, conserved by the periodic diffusion)\n",
                  steps, total);
  });
  return 0;
}
