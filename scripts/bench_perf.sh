#!/usr/bin/env bash
# Perf trajectories committed at the repo root:
#   BENCH_kernels.json       -- micro_kernels with its built-in bit-exactness
#                               self-check (cells/s per kernel x brick size
#                               x path — naive vs scalar-fast vs explicit
#                               SIMD at the build's active width — plus the
#                               AoSoA field-count axis and a build
#                               provenance block: compiler, flags,
#                               -march=native, detected/active vector
#                               width). The micro_simd differential width
#                               self-check runs first as a gate.
#   BENCH_critical_path.json -- trace_analyze --suite: critical-path
#                               composition, wait states and overlap headroom
#                               for a fixed roster of method x fabric x fault
#                               configurations (virtual-time, so the numbers
#                               are machine-independent and exactly
#                               reproducible)
#   BENCH_transport.json     -- abl_transport: fabric-crossing message
#                               counts and aggregation frame fill under the
#                               flat / shm / shm-agg transport tiers (also
#                               virtual-time-exact)
#   BENCH_overlap.json       -- abl_overlap: communication hidden by the
#                               partitioned dependency scheduler and its
#                               overlap efficiency per method x fabric,
#                               cross-checked against the analyzer's
#                               headroom bound (virtual-time-exact)
#   BENCH_autotune.json      -- abl_autotune: joint (layout x mapping x
#                               brick x page) search over the fig11/fig16
#                               strong-scaling problems — candidates
#                               evaluated, search wall time and throughput
#                               (the only wall-clock numbers here), and the
#                               virtual-time tuned-vs-hand-picked speedup
# Commit the refreshed JSON alongside any kernel / runtime / netsim change
# so the trajectories stay honest.
#
# Usage: scripts/bench_perf.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
build=${1:-build}

if [[ ! -x "$build/bench/micro_kernels" ]]; then
  echo "bench_perf.sh: $build/bench/micro_kernels not found -- build first:" >&2
  echo "  cmake --preset default && cmake --build --preset default" >&2
  exit 1
fi

if [[ -x "$build/bench/micro_simd" ]]; then
  "$build/bench/micro_simd" --self-check
fi

"$build/bench/micro_kernels" --json-out=BENCH_kernels.json --self-check

echo "bench_perf.sh: wrote BENCH_kernels.json"

if [[ ! -x "$build/tools/trace_analyze" ]]; then
  echo "bench_perf.sh: $build/tools/trace_analyze not found -- build first" >&2
  exit 1
fi

"$build/tools/trace_analyze" --suite BENCH_critical_path.json -d 32

echo "bench_perf.sh: wrote BENCH_critical_path.json"

if [[ ! -x "$build/bench/abl_transport" ]]; then
  echo "bench_perf.sh: $build/bench/abl_transport not found -- build first" >&2
  exit 1
fi

"$build/bench/abl_transport" --json-out=BENCH_transport.json

echo "bench_perf.sh: wrote BENCH_transport.json"

if [[ ! -x "$build/bench/abl_overlap" ]]; then
  echo "bench_perf.sh: $build/bench/abl_overlap not found -- build first" >&2
  exit 1
fi

"$build/bench/abl_overlap" --json-out=BENCH_overlap.json

echo "bench_perf.sh: wrote BENCH_overlap.json"

if [[ ! -x "$build/bench/abl_autotune" ]]; then
  echo "bench_perf.sh: $build/bench/abl_autotune not found -- build first" >&2
  exit 1
fi

"$build/bench/abl_autotune" --json-out=BENCH_autotune.json

echo "bench_perf.sh: wrote BENCH_autotune.json"
