#!/usr/bin/env bash
# Kernel perf trajectory: run the micro_kernels bench with its built-in
# bit-exactness self-check and write BENCH_kernels.json at the repo root.
# Commit the refreshed JSON alongside any kernel change so the trajectory
# (cells/s per kernel x brick size x path, naive vs fast) stays honest.
#
# Usage: scripts/bench_perf.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."
build=${1:-build}

if [[ ! -x "$build/bench/micro_kernels" ]]; then
  echo "bench_perf.sh: $build/bench/micro_kernels not found -- build first:" >&2
  echo "  cmake --preset default && cmake --build --preset default" >&2
  exit 1
fi

"$build/bench/micro_kernels" --json-out=BENCH_kernels.json --self-check

echo "bench_perf.sh: wrote BENCH_kernels.json"
