#!/usr/bin/env bash
# CI entry point: the full tier-1 suite on the default preset, then the
# fast `unit`-labeled tests again under ASan+UBSan (the sanitizer pass
# skips slow/fuzz sweeps to keep wall time bounded; run them by hand with
# `ctest --preset asan-ubsan` when touching the runtime or exchangers).
#
# Usage: scripts/ci.sh [jobs]   (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."
jobs=${1:-$(nproc)}

echo "=== default preset: configure + build ==="
cmake --preset default
cmake --build --preset default -j "$jobs"

echo "=== default preset: full test suite ==="
ctest --preset default -j "$jobs"

echo "=== default preset: kernel perf smoke ==="
# Fast/naive bit-exactness gate for the kernel engine (perf-labeled;
# redundant with the full suite above but kept as an explicit, named gate
# so kernel regressions fail loudly). The measured trajectory itself is
# refreshed by hand with scripts/bench_perf.sh.
ctest --preset default -L perf

echo "=== default preset: critical-path analyzer gate ==="
# Analyzer contract, named so a broken path identity or a drifted report
# fails loudly: unit tests, the golden text report, and the artifact
# schema check (all also in the full suite above).
ctest --preset default -L analyze

echo "=== default preset: transport tier gate ==="
# On-node transport contract (DESIGN.md §13), named so a broken aggregation
# protocol or delivery regression fails loudly: the Aggregator protocol
# unit tests plus the simmpi shm/shm-agg integration (also in the full
# suite above).
ctest --preset default -L transport

echo "=== default preset: overlap tier gate ==="
# Partitioned-request + dependency-scheduler contract (DESIGN.md §14),
# named so a lifecycle or scheduler regression fails loudly: the simmpi
# partitioned lifecycle tests, the harness scheduler property tests, and
# the abl_overlap golden with its strict comm-on-path decrease and
# headroom-bound self-checks (all also in the full suite above).
ctest --preset default -L overlap

echo "=== default preset: autotuner tier gate ==="
# Joint-autotuner contract (DESIGN.md §15), named so a search, memo-cache
# or artifact regression fails loudly: the mapping property tests, the
# tuner unit tests (including replay of the committed artifact), the
# tuned-config schema + CLI byte-determinism check, and the abl_autotune
# golden with its tuned<=hand-picked and warm-cache self-checks (all also
# in the full suite above).
ctest --preset default -L tune

echo "=== default preset: explicit-SIMD tier gate ==="
# Explicit-SIMD kernel contract (DESIGN.md §16), named so a vectorization
# or AoSoA regression fails loudly: the differential width sweeps and
# alignment-guard unit tests, the multi-field FieldSet/ArrayFields
# invariance suite, and micro_simd's forced-width differential self-check
# (all also in the full suite above).
ctest --preset default -L simd

echo "=== asan-ubsan preset: configure + build ==="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"

echo "=== asan-ubsan preset: unit-, persistent-, analyze-, transport-, overlap-, tune- and simd-labeled tests ==="
ctest --preset asan-ubsan -j "$jobs" -L 'unit|persistent|analyze|transport|overlap|tune|simd'

echo "=== forced-scalar build (BRICKX_SIMD_WIDTH=1): simd + perf gates ==="
# The width-1 override must stay a first-class build: every SIMD dispatch
# degenerates to the scalar fast tiles and all bit-exactness gates still
# hold. This is the configuration the `fast` rows of BENCH_kernels.json
# model and the fallback the alignment guard selects at runtime.
cmake -S . -B build-scalar -G Ninja \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo -DBRICKX_SIMD_WIDTH=1
cmake --build build-scalar -j "$jobs"
ctest --test-dir build-scalar -j "$jobs" --output-on-failure -L 'simd|perf'

echo "ci.sh: all green"
