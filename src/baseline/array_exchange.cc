#include "baseline/array_exchange.h"

#include "common/error.h"

namespace brickx::baseline {

Box<3> send_box(const BitSet& nu, const Vec3& domain, std::int64_t g) {
  Box<3> b;
  for (int a = 0; a < 3; ++a) {
    switch (nu.dir_of(a + 1)) {
      case 1:
        b.lo[a] = domain[a] - g;
        b.hi[a] = domain[a];
        break;
      case -1:
        b.lo[a] = 0;
        b.hi[a] = g;
        break;
      default:
        b.lo[a] = 0;
        b.hi[a] = domain[a];
    }
  }
  return b;
}

Box<3> recv_box(const BitSet& nu, const Vec3& domain, std::int64_t g) {
  Box<3> b;
  for (int a = 0; a < 3; ++a) {
    switch (nu.dir_of(a + 1)) {
      case 1:
        b.lo[a] = domain[a];
        b.hi[a] = domain[a] + g;
        break;
      case -1:
        b.lo[a] = -g;
        b.hi[a] = 0;
        break;
      default:
        b.lo[a] = 0;
        b.hi[a] = domain[a];
    }
  }
  return b;
}

namespace {
int ordinal_of(const std::vector<BitSet>& dirs, const BitSet& d) {
  for (std::size_t i = 0; i < dirs.size(); ++i)
    if (dirs[i] == d) return static_cast<int>(i);
  brickx::fail("direction missing from enumeration");
}
}  // namespace

PackExchanger::PackExchanger(const Vec3& domain, std::int64_t ghost,
                             const std::vector<BitSet>& dirs,
                             const std::vector<int>& neighbor_ranks,
                             int fields)
    : fields_(fields) {
  BX_CHECK(dirs.size() == neighbor_ranks.size(),
           "direction and rank tables disagree");
  BX_CHECK(fields >= 1, "need at least one field");
  for (std::size_t v = 0; v < dirs.size(); ++v) {
    NMsg m;
    m.rank = neighbor_ranks[v];
    m.send_tag = static_cast<int>(v);
    m.recv_tag = ordinal_of(dirs, dirs[v].flipped());
    m.sbox = send_box(dirs[v], domain, ghost);
    m.rbox = recv_box(dirs[v], domain, ghost);
    BX_CHECK(m.sbox.volume() == m.rbox.volume(),
             "send/recv volumes must match");
    // One buffer (one message) per neighbor regardless of field count.
    m.sbuf.resize(static_cast<std::size_t>(m.sbox.volume() * fields));
    m.rbuf.resize(static_cast<std::size_t>(m.rbox.volume() * fields));
    msgs_.push_back(std::move(m));
  }
}

std::size_t PackExchanger::pack(const CellArray3& field) {
  BX_CHECK(fields_ == 1,
           "single-field pack on a multi-field exchanger; pass ArrayFields");
  std::size_t bytes = 0;
  for (NMsg& m : msgs_) {
    std::size_t at = 0;
    for_each(m.sbox, [&](const Vec3& p) { m.sbuf[at++] = field.at(p); });
    bytes += at * sizeof(double);
  }
  return bytes;
}

std::size_t PackExchanger::pack(const ArrayFields& fields) {
  BX_CHECK(fields.fields() == fields_,
           "field count does not match the exchanger's");
  std::size_t bytes = 0;
  for (NMsg& m : msgs_) {
    std::size_t at = 0;
    for (int f = 0; f < fields_; ++f)
      for_each(m.sbox,
               [&](const Vec3& p) { m.sbuf[at++] = fields.at(f, p); });
    bytes += at * sizeof(double);
  }
  return bytes;
}

void PackExchanger::make_persistent(mpi::Comm& comm) {
  BX_CHECK(!pset_.bound(), "pack exchanger already bound");
  BX_CHECK(pending_.empty(), "cannot bind while an exchange is in flight");
  for (NMsg& m : msgs_)
    pset_.add_recv(comm.recv_init(m.rbuf.data(),
                                  m.rbuf.size() * sizeof(double), m.rank,
                                  m.recv_tag));
  for (NMsg& m : msgs_)
    pset_.add_send(comm.send_init(m.sbuf.data(),
                                  m.sbuf.size() * sizeof(double), m.rank,
                                  m.send_tag));
  pset_.mark_bound();
}

PlanCost PackExchanger::setup_cost() const {
  PlanCost c;
  c.regions = static_cast<std::int64_t>(msgs_.size());  // one box pair each
  c.messages = static_cast<std::int64_t>(2 * msgs_.size());
  return c;
}

void PackExchanger::start(mpi::Comm& comm) {
  BX_CHECK(pending_.empty(), "previous exchange still in flight");
  if (pset_.bound()) {
    pset_.start_all();
    return;
  }
  for (NMsg& m : msgs_)
    pending_.push_back(comm.irecv(m.rbuf.data(),
                                  m.rbuf.size() * sizeof(double), m.rank,
                                  m.recv_tag));
  for (NMsg& m : msgs_)
    pending_.push_back(comm.isend(m.sbuf.data(),
                                  m.sbuf.size() * sizeof(double), m.rank,
                                  m.send_tag));
}

void PackExchanger::finish(mpi::Comm& comm) {
  if (pset_.bound()) {
    pset_.wait_all();
    return;
  }
  comm.waitall(pending_);
}

std::size_t PackExchanger::unpack(CellArray3& field) {
  BX_CHECK(fields_ == 1,
           "single-field unpack on a multi-field exchanger; pass ArrayFields");
  std::size_t bytes = 0;
  for (NMsg& m : msgs_) {
    std::size_t at = 0;
    for_each(m.rbox, [&](const Vec3& p) { field.at(p) = m.rbuf[at++]; });
    bytes += at * sizeof(double);
  }
  return bytes;
}

std::size_t PackExchanger::unpack(ArrayFields& fields) {
  BX_CHECK(fields.fields() == fields_,
           "field count does not match the exchanger's");
  std::size_t bytes = 0;
  for (NMsg& m : msgs_) {
    std::size_t at = 0;
    for (int f = 0; f < fields_; ++f)
      for_each(m.rbox,
               [&](const Vec3& p) { fields.at(f, p) = m.rbuf[at++]; });
    bytes += at * sizeof(double);
  }
  return bytes;
}

void PackExchanger::exchange(mpi::Comm& comm, CellArray3& field) {
  pack(field);
  start(comm);
  finish(comm);
  unpack(field);
}

void PackExchanger::exchange(mpi::Comm& comm, ArrayFields& fields) {
  pack(fields);
  start(comm);
  finish(comm);
  unpack(fields);
}

std::int64_t PackExchanger::send_byte_count() const {
  std::int64_t n = 0;
  for (const NMsg& m : msgs_)
    n += static_cast<std::int64_t>(m.sbuf.size() * sizeof(double));
  return n;
}

MpiTypesExchanger::MpiTypesExchanger(const Vec3& domain, std::int64_t ghost,
                                     const std::vector<BitSet>& dirs,
                                     const std::vector<int>& neighbor_ranks,
                                     const CellArray3& field_shape) {
  BX_CHECK(dirs.size() == neighbor_ranks.size(),
           "direction and rank tables disagree");
  const Box<3>& fb = field_shape.box();
  const Vec3 sizes = fb.extent();
  for (std::size_t v = 0; v < dirs.size(); ++v) {
    NMsg m;
    m.rank = neighbor_ranks[v];
    m.send_tag = static_cast<int>(v);
    m.recv_tag = ordinal_of(dirs, dirs[v].flipped());
    const Box<3> sb = send_box(dirs[v], domain, ghost);
    const Box<3> rb = recv_box(dirs[v], domain, ghost);
    m.stype = mpi::Datatype::subarray<3>(sizes, sb.extent(), sb.lo - fb.lo,
                                         sizeof(double));
    m.rtype = mpi::Datatype::subarray<3>(sizes, rb.extent(), rb.lo - fb.lo,
                                         sizeof(double));
    msgs_.push_back(std::move(m));
  }
}

MpiTypesExchanger::MpiTypesExchanger(const Vec3& domain, std::int64_t ghost,
                                     const std::vector<BitSet>& dirs,
                                     const std::vector<int>& neighbor_ranks,
                                     const ArrayFields& fields_shape)
    : fields_(fields_shape.fields()) {
  BX_CHECK(dirs.size() == neighbor_ranks.size(),
           "direction and rank tables disagree");
  const Box<3>& fb = fields_shape.box();
  const Vec3 sizes = fb.extent();
  const std::size_t slab_bytes =
      static_cast<std::size_t>(fields_shape.field_elems()) * sizeof(double);
  for (std::size_t v = 0; v < dirs.size(); ++v) {
    NMsg m;
    m.rank = neighbor_ranks[v];
    m.send_tag = static_cast<int>(v);
    m.recv_tag = ordinal_of(dirs, dirs[v].flipped());
    const Box<3> sb = send_box(dirs[v], domain, ghost);
    const Box<3> rb = recv_box(dirs[v], domain, ghost);
    // One committed type per side: the per-field subarrays concatenated at
    // the field-slab displacements (MPI_Type_create_struct).
    std::vector<std::pair<std::size_t, mpi::Datatype>> sparts, rparts;
    for (int f = 0; f < fields_; ++f) {
      const std::size_t disp = static_cast<std::size_t>(f) * slab_bytes;
      sparts.emplace_back(disp,
                          mpi::Datatype::subarray<3>(sizes, sb.extent(),
                                                     sb.lo - fb.lo,
                                                     sizeof(double)));
      rparts.emplace_back(disp,
                          mpi::Datatype::subarray<3>(sizes, rb.extent(),
                                                     rb.lo - fb.lo,
                                                     sizeof(double)));
    }
    m.stype = mpi::Datatype::concat(sparts);
    m.rtype = mpi::Datatype::concat(rparts);
    msgs_.push_back(std::move(m));
  }
}

void MpiTypesExchanger::bind_raw(mpi::Comm& comm, double* base) {
  BX_CHECK(!pset_.bound(), "types exchanger already bound");
  BX_CHECK(pending_.empty(), "cannot bind while an exchange is in flight");
  bound_field_ = base;
  for (NMsg& m : msgs_)
    pset_.add_recv(comm.recv_init(base, m.rtype, m.rank, m.recv_tag));
  for (NMsg& m : msgs_)
    pset_.add_send(comm.send_init(base, m.stype, m.rank, m.send_tag));
  pset_.mark_bound();
}

void MpiTypesExchanger::make_persistent(mpi::Comm& comm, CellArray3& field) {
  BX_CHECK(fields_ == 1,
           "single-field bind on a multi-field exchanger; pass ArrayFields");
  bind_raw(comm, field.raw().data());
}

void MpiTypesExchanger::make_persistent(mpi::Comm& comm,
                                        ArrayFields& fields) {
  BX_CHECK(fields.fields() == fields_,
           "field count does not match the exchanger's");
  bind_raw(comm, fields.raw().data());
}

PlanCost MpiTypesExchanger::setup_cost() const {
  PlanCost c;
  c.regions = static_cast<std::int64_t>(msgs_.size());  // one box pair each
  c.messages = static_cast<std::int64_t>(2 * msgs_.size());
  c.dt_blocks = datatype_block_count();
  return c;
}

void MpiTypesExchanger::start_raw(mpi::Comm& comm, double* base) {
  BX_CHECK(pending_.empty(), "previous exchange still in flight");
  if (pset_.bound()) {
    // Persistent MPI freezes the buffer address at init; replaying against
    // a different field would silently exchange the wrong data.
    BX_CHECK(base == bound_field_,
             "persistent MPI_Types exchange started on a different field "
             "than the one bound by make_persistent");
    pset_.start_all();
    return;
  }
  for (NMsg& m : msgs_)
    pending_.push_back(comm.irecv(base, m.rtype, m.rank, m.recv_tag));
  for (NMsg& m : msgs_)
    pending_.push_back(comm.isend(base, m.stype, m.rank, m.send_tag));
}

void MpiTypesExchanger::start(mpi::Comm& comm, CellArray3& field) {
  BX_CHECK(fields_ == 1,
           "single-field start on a multi-field exchanger; pass ArrayFields");
  start_raw(comm, field.raw().data());
}

void MpiTypesExchanger::start(mpi::Comm& comm, ArrayFields& fields) {
  BX_CHECK(fields.fields() == fields_,
           "field count does not match the exchanger's");
  start_raw(comm, fields.raw().data());
}

void MpiTypesExchanger::finish(mpi::Comm& comm) {
  if (pset_.bound()) {
    pset_.wait_all();
    return;
  }
  comm.waitall(pending_);
}

void MpiTypesExchanger::exchange(mpi::Comm& comm, CellArray3& field) {
  start(comm, field);
  finish(comm);
}

void MpiTypesExchanger::exchange(mpi::Comm& comm, ArrayFields& fields) {
  start(comm, fields);
  finish(comm);
}

std::int64_t MpiTypesExchanger::send_byte_count() const {
  std::int64_t n = 0;
  for (const NMsg& m : msgs_) n += static_cast<std::int64_t>(m.stype.size());
  return n;
}

std::int64_t MpiTypesExchanger::datatype_block_count() const {
  std::int64_t n = 0;
  for (const NMsg& m : msgs_)
    n += static_cast<std::int64_t>(m.stype.block_count() +
                                   m.rtype.block_count());
  return n;
}

}  // namespace brickx::baseline
