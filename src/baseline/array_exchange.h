#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "common/vec.h"
#include "core/cell_array.h"
#include "core/exchange_plan.h"
#include "core/field_set.h"
#include "simmpi/comm.h"
#include "simmpi/datatype.h"

namespace brickx::baseline {

/// Cell boxes exchanged with neighbor ν for a lexicographic array subdomain
/// of extent `domain` with ghost width `g` (disjoint across neighbors; the
/// union of send boxes is the surface instances, of recv boxes the ghost
/// frame).
Box<3> send_box(const BitSet& nu, const Vec3& domain, std::int64_t g);
Box<3> recv_box(const BitSet& nu, const Vec3& domain, std::int64_t g);

/// The classic pack-based ghost exchange on a lexicographic array — the
/// YASK-like baseline. One message per neighbor; surface cells are packed
/// into staging buffers with explicit copies (the on-node data movement the
/// paper eliminates), sent, and unpacked into the ghost frame.
///
/// The phases are split so the harness can attribute time the way the
/// paper's artifact reports it (pack / call / wait):
///   pack(field) -> start(comm) -> finish(comm) -> unpack(field)
class PackExchanger {
 public:
  /// `neighbor_ranks[i]` = rank of the neighbor in direction `dirs[i]`;
  /// `dirs` must be the full 3^D-1 direction enumeration shared by ranks.
  /// `fields > 1` sizes each staging buffer for all fields of an
  /// ArrayFields set, so one message per neighbor still carries every
  /// field (the message count is field-count-invariant).
  PackExchanger(const Vec3& domain, std::int64_t ghost,
                const std::vector<BitSet>& dirs,
                const std::vector<int>& neighbor_ranks, int fields = 1);

  /// Bind the staging buffers to persistent requests; pack/unpack still run
  /// per round (the data movement is the point of this baseline), only the
  /// message posting is replayed.
  void make_persistent(mpi::Comm& comm);
  [[nodiscard]] bool persistent() const { return pset_.bound(); }

  /// Modeled cost of building the per-neighbor schedule (box derivation +
  /// message init; no datatypes, no views).
  [[nodiscard]] PlanCost setup_cost() const;

  /// Copy surface cells into the send buffers; returns bytes copied.
  std::size_t pack(const CellArray3& field);
  /// Multi-field pack: each neighbor's buffer holds field 0's surface
  /// cells, then field 1's, ... — one buffer (one message) for all fields.
  std::size_t pack(const ArrayFields& fields);
  void start(mpi::Comm& comm);
  void finish(mpi::Comm& comm);
  /// Copy receive buffers into the ghost frame; returns bytes copied.
  std::size_t unpack(CellArray3& field);
  std::size_t unpack(ArrayFields& fields);

  /// Convenience full sequence.
  void exchange(mpi::Comm& comm, CellArray3& field);
  void exchange(mpi::Comm& comm, ArrayFields& fields);

  [[nodiscard]] std::int64_t send_message_count() const {
    return static_cast<std::int64_t>(msgs_.size());
  }
  [[nodiscard]] std::int64_t send_byte_count() const;
  /// Bytes moved on-node per full exchange (pack + unpack).
  [[nodiscard]] std::int64_t onnode_byte_count() const {
    return 2 * send_byte_count();
  }

 private:
  struct NMsg {
    int rank;
    int send_tag, recv_tag;
    Box<3> sbox, rbox;
    std::vector<double> sbuf, rbuf;
  };
  int fields_ = 1;
  std::vector<NMsg> msgs_;
  PersistentSet pset_;
  std::vector<mpi::Request> pending_;
};

/// Ghost exchange through MPI derived datatypes — packing happens *inside*
/// the (simulated) MPI library via subarray types, exactly the paper's
/// MPI_Types baseline. One message per neighbor, no application staging.
class MpiTypesExchanger {
 public:
  MpiTypesExchanger(const Vec3& domain, std::int64_t ghost,
                    const std::vector<BitSet>& dirs,
                    const std::vector<int>& neighbor_ranks,
                    const CellArray3& field_shape);

  /// Multi-field variant over an ArrayFields shape: per neighbor, the
  /// per-field subarrays are concatenated (MPI_Type_create_struct at the
  /// field-slab byte displacements) into ONE committed datatype, so one
  /// isend per (neighbor, round) moves every field — the message count
  /// stays field-count-invariant without application staging.
  MpiTypesExchanger(const Vec3& domain, std::int64_t ghost,
                    const std::vector<BitSet>& dirs,
                    const std::vector<int>& neighbor_ranks,
                    const ArrayFields& fields_shape);

  /// Bind the committed datatypes to persistent requests anchored at
  /// `field`'s raw buffer. Persistent MPI freezes the buffer address, so
  /// subsequent start() calls must pass the same field (checked).
  void make_persistent(mpi::Comm& comm, CellArray3& field);
  void make_persistent(mpi::Comm& comm, ArrayFields& fields);
  [[nodiscard]] bool persistent() const { return pset_.bound(); }

  /// Modeled cost of building the plan: datatype commit dominates (one
  /// entry per contiguous block of the subarray walks), plus message init.
  [[nodiscard]] PlanCost setup_cost() const;

  void start(mpi::Comm& comm, CellArray3& field);
  void start(mpi::Comm& comm, ArrayFields& fields);
  void finish(mpi::Comm& comm);
  void exchange(mpi::Comm& comm, CellArray3& field);
  void exchange(mpi::Comm& comm, ArrayFields& fields);

  [[nodiscard]] std::int64_t send_message_count() const {
    return static_cast<std::int64_t>(msgs_.size());
  }
  [[nodiscard]] std::int64_t send_byte_count() const;
  /// Total contiguous blocks the datatype engine walks per exchange (send
  /// plus receive side) — the quantity that dominates MPI_Types cost.
  [[nodiscard]] std::int64_t datatype_block_count() const;

 private:
  void bind_raw(mpi::Comm& comm, double* base);
  void start_raw(mpi::Comm& comm, double* base);

  struct NMsg {
    int rank;
    int send_tag, recv_tag;
    mpi::Datatype stype, rtype;
  };
  int fields_ = 1;
  std::vector<NMsg> msgs_;
  PersistentSet pset_;
  const double* bound_field_ = nullptr;  ///< raw() base make_persistent froze
  std::vector<mpi::Request> pending_;
};

}  // namespace brickx::baseline
