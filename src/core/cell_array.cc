#include "core/cell_array.h"

#include "common/error.h"

namespace brickx {

namespace {
// Floor division/modulo for possibly-negative cell coordinates.
inline std::int64_t fdiv(std::int64_t a, std::int64_t b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}
}  // namespace

template <int D>
void cells_to_bricks(const BrickDecomp<D>& dec, const CellArray<D>& src,
                     BrickStorage& storage, int field) {
  const Vec<D>& B = dec.brick_dims();
  const std::int64_t elems = dec.elements_per_brick();
  BX_CHECK(field >= 0 && field < storage.fields(), "field out of range");
  for_each(src.box(), [&](const Vec<D>& c) {
    Vec<D> g, w;
    for (int a = 0; a < D; ++a) {
      g[a] = fdiv(c[a], B[a]);
      w[a] = c[a] - g[a] * B[a];
    }
    const std::int32_t b = dec.brick_at(g);
    if (b == BrickInfo<D>::kNoBrick) return;
    storage.brick(b)[field * elems + linearize(w, B)] = src.at(c);
  });
}

template <int D>
void bricks_to_cells(const BrickDecomp<D>& dec, const BrickStorage& storage,
                     int field, CellArray<D>& dst) {
  const Vec<D>& B = dec.brick_dims();
  const std::int64_t elems = dec.elements_per_brick();
  BX_CHECK(field >= 0 && field < storage.fields(), "field out of range");
  for_each(dst.box(), [&](const Vec<D>& c) {
    Vec<D> g, w;
    for (int a = 0; a < D; ++a) {
      g[a] = fdiv(c[a], B[a]);
      w[a] = c[a] - g[a] * B[a];
    }
    const std::int32_t b = dec.brick_at(g);
    BX_CHECK(b != BrickInfo<D>::kNoBrick,
             "destination box reaches outside the allocated bricks");
    dst.at(c) = storage.brick(b)[field * elems + linearize(w, B)];
  });
}

template void cells_to_bricks<2>(const BrickDecomp<2>&, const CellArray<2>&,
                                 BrickStorage&, int);
template void cells_to_bricks<3>(const BrickDecomp<3>&, const CellArray<3>&,
                                 BrickStorage&, int);
template void cells_to_bricks<4>(const BrickDecomp<4>&, const CellArray<4>&,
                                 BrickStorage&, int);
template void bricks_to_cells<2>(const BrickDecomp<2>&, const BrickStorage&,
                                 int, CellArray<2>&);
template void bricks_to_cells<3>(const BrickDecomp<3>&, const BrickStorage&,
                                 int, CellArray<3>&);
template void bricks_to_cells<4>(const BrickDecomp<4>&, const BrickStorage&,
                                 int, CellArray<4>&);

}  // namespace brickx
