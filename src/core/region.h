#pragma once

#include <vector>

#include "common/bitset.h"
#include "common/vec.h"

namespace brickx {

/// Region algebra for ghost-zone exchange (DESIGN.md §5.1).
///
/// Per axis, the brick layers of a subdomain-with-ghost classify into five
/// bands of layer indices (gb = ghost width in brick layers, n = interior
/// layers):
///
///    L = [-gb, 0)      ghost, low side
///    l = [0, gb)       surface, low side
///    m = [gb, n-gb)    interior middle (may be empty when n == 2*gb)
///    h = [n-gb, n)     surface, high side
///    H = [n, n+gb)     ghost, high side
///
/// A *surface region* is a product of {l,m,h} bands, identified by its
/// direction set σ (BitSet): axis a carries -a for band l, +a for band h,
/// nothing for m. The all-m product is the interior, not a surface region.
///
/// A *ghost subregion* is a product with at least one L/H band; it is owned
/// by exactly one neighbor and received exactly once per exchange.

/// Surface region σ is needed by neighbor ν iff ∅ ≠ ν ⊆ σ (signed subset).
inline bool region_sent_to(const BitSet& sigma, const BitSet& nu) {
  return !nu.empty() && nu.subset_of(sigma);
}

/// All 3^D-1 surface signatures in a fixed (lexicographic) enumeration.
std::vector<BitSet> all_surface_signatures(int dims);

/// Destination neighbors of region σ: all nonempty signed subsets of σ.
/// |result| == 2^|σ| - 1.
std::vector<BitSet> region_destinations(const BitSet& sigma, int dims);

/// Identity of one ghost subregion: the owning neighbor direction ν and the
/// *sender-local* surface signature σ it is a copy of (ν ⊆ -σ ... precisely
/// σ ⊇ flip(ν), see ghost_subregions()).
struct GhostId {
  BitSet nu;     ///< which neighbor the data comes from
  BitSet sigma;  ///< the sender's surface region signature
  bool operator==(const GhostId&) const = default;
};

/// All ghost subregions of a D-dimensional subdomain, grouped by source
/// neighbor ν (outer order = the given neighbor order) and, within a group,
/// by the given surface order restricted to {σ : σ ⊇ flip(ν)} — i.e. the
/// order the sender stores (and therefore sends) them in.
/// Total count is 5^D - 3^D.
std::vector<GhostId> ghost_subregions(const std::vector<BitSet>& neighbor_order,
                                      const std::vector<BitSet>& surface_order,
                                      int dims);

/// Brick-grid box of surface region σ for a subdomain of `n` brick layers
/// per axis with `gb[a]` ghost layers on axis a. Empty boxes are legal
/// (n[a] == 2*gb[a] makes that m band empty).
template <int D>
Box<D> surface_box(const BitSet& sigma, const Vec<D>& n, const Vec<D>& gb);

/// Brick-grid box (in *receiver-local* coordinates, which extend to
/// [-gb, n+gb) per axis) of the ghost subregion owned by neighbor ν holding
/// the sender's region σ.
template <int D>
Box<D> ghost_box(const GhostId& id, const Vec<D>& n, const Vec<D>& gb);

}  // namespace brickx
