#include "core/region.h"

#include "common/error.h"

namespace brickx {

std::vector<BitSet> all_surface_signatures(int dims) {
  BX_CHECK(dims >= 1 && dims <= 5, "supported dimensions are 1..5");
  std::vector<BitSet> out;
  std::int64_t total = 1;
  for (int i = 0; i < dims; ++i) total *= 3;
  for (std::int64_t code = 0; code < total; ++code) {
    std::int64_t c = code;
    BitSet s;
    for (int a = 1; a <= dims; ++a) {
      const int t = static_cast<int>(c % 3);
      c /= 3;
      if (t == 0) s.set(-a);
      if (t == 2) s.set(a);
    }
    if (!s.empty()) out.push_back(s);
  }
  return out;
}

std::vector<BitSet> region_destinations(const BitSet& sigma, int dims) {
  std::vector<BitSet> out;
  for (const BitSet& nu : all_surface_signatures(dims))
    if (region_sent_to(sigma, nu)) out.push_back(nu);
  return out;
}

std::vector<GhostId> ghost_subregions(const std::vector<BitSet>& neighbor_order,
                                      const std::vector<BitSet>& surface_order,
                                      int dims) {
  std::vector<GhostId> out;
  for (const BitSet& nu : neighbor_order) {
    const BitSet need = nu.flipped();
    // The sender at direction ν sees us at direction -ν, so it sends us its
    // regions {σ : σ ⊇ -ν}, in its own storage (= layout) order.
    for (const BitSet& sigma : surface_order)
      if (region_sent_to(sigma, need)) out.push_back(GhostId{nu, sigma});
  }
  // Invariant: every ghost subregion received exactly once — 5^D - 3^D.
  std::int64_t expect = 1, three = 1;
  for (int i = 0; i < dims; ++i) {
    expect *= 5;
    three *= 3;
  }
  BX_CHECK(static_cast<std::int64_t>(out.size()) == expect - three,
           "ghost subregion enumeration does not match 5^D - 3^D");
  return out;
}

namespace {

/// Band interval per axis for a surface direction: -1 -> l, 0 -> m, +1 -> h.
void surface_band(int dir, std::int64_t n, std::int64_t gb, std::int64_t& lo,
                  std::int64_t& hi) {
  switch (dir) {
    case -1:
      lo = 0;
      hi = gb;
      break;
    case 0:
      lo = gb;
      hi = n - gb;
      break;
    default:
      lo = n - gb;
      hi = n;
      break;
  }
}

}  // namespace

template <int D>
Box<D> surface_box(const BitSet& sigma, const Vec<D>& n, const Vec<D>& gb) {
  Box<D> b;
  for (int a = 0; a < D; ++a) {
    BX_CHECK(n[a] >= 2 * gb[a], "subdomain must be at least two ghost widths");
    surface_band(sigma.dir_of(a + 1), n[a], gb[a], b.lo[a], b.hi[a]);
    if (b.hi[a] < b.lo[a]) b.hi[a] = b.lo[a];  // empty middle band
  }
  return b;
}

template <int D>
Box<D> ghost_box(const GhostId& id, const Vec<D>& n, const Vec<D>& gb) {
  Box<D> b;
  for (int a = 0; a < D; ++a) {
    const int nd = id.nu.dir_of(a + 1);
    if (nd == 1) {
      b.lo[a] = n[a];
      b.hi[a] = n[a] + gb[a];
    } else if (nd == -1) {
      b.lo[a] = -gb[a];
      b.hi[a] = 0;
    } else {
      surface_band(id.sigma.dir_of(a + 1), n[a], gb[a], b.lo[a], b.hi[a]);
      if (b.hi[a] < b.lo[a]) b.hi[a] = b.lo[a];
    }
  }
  return b;
}

template Box<1> surface_box<1>(const BitSet&, const Vec<1>&, const Vec<1>&);
template Box<2> surface_box<2>(const BitSet&, const Vec<2>&, const Vec<2>&);
template Box<3> surface_box<3>(const BitSet&, const Vec<3>&, const Vec<3>&);
template Box<4> surface_box<4>(const BitSet&, const Vec<4>&, const Vec<4>&);
template Box<1> ghost_box<1>(const GhostId&, const Vec<1>&, const Vec<1>&);
template Box<2> ghost_box<2>(const GhostId&, const Vec<2>&, const Vec<2>&);
template Box<3> ghost_box<3>(const GhostId&, const Vec<3>&, const Vec<3>&);
template Box<4> ghost_box<4>(const GhostId&, const Vec<4>&, const Vec<4>&);

}  // namespace brickx
