#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/vec.h"
#include "core/brick.h"
#include "core/brick_storage.h"

namespace brickx {

/// A set of N coupled fields (e.g. a wave field + a heat field) over one
/// brick decomposition, stored AoSoA: BrickStorage already interleaves
/// fields within each brick chunk (field 0's B^3 elements, then field 1's,
/// ...), and a whole brick — all fields — is the unit of exchange. This
/// wrapper just hands out the per-field Brick accessors, so kernels run
/// field by field over the same adjacency while every exchanger moves all
/// fields per neighbor in a single message for free.
template <int BK, int BJ, int BI>
class FieldSet {
 public:
  FieldSet(const BrickInfo<3>* info, BrickStorage* storage)
      : info_(info), storage_(storage) {
    BX_CHECK((storage->elements_per_brick() == Brick<BK, BJ, BI>::kElems),
             "storage bricks do not match FieldSet template extents");
  }

  [[nodiscard]] int fields() const { return storage_->fields(); }

  /// Accessor for field `f`; element offset f * BK*BJ*BI within the chunk.
  [[nodiscard]] Brick<BK, BJ, BI> field(int f) const {
    BX_CHECK(f >= 0 && f < storage_->fields(), "field index out of range");
    return Brick<BK, BJ, BI>(info_, storage_,
                             static_cast<std::int64_t>(f) *
                                 Brick<BK, BJ, BI>::kElems);
  }

 private:
  const BrickInfo<3>* info_;
  BrickStorage* storage_;
};

/// The lexicographic counterpart for the array baselines (YASK-style pack
/// and MPI_Types): N fields over one frame box in ONE contiguous
/// allocation, field-major — field f's slab is laid out exactly like a
/// CellArray3 over the same box (axis 0 fastest), slabs consecutive. The
/// contiguity is the point: a single MPI datatype (per-field subarrays
/// concatenated at slab displacements) or a single packed buffer can move
/// every field to a neighbor in one message, which is what keeps the
/// message count field-count-invariant for the array methods too.
class ArrayFields {
 public:
  ArrayFields(const Box<3>& frame, int fields)
      : box_(frame), fields_(fields), ext_(frame.extent()) {
    BX_CHECK(fields >= 1, "need at least one field");
    field_elems_ = box_.volume();
    data_.assign(static_cast<std::size_t>(field_elems_ * fields), 0.0);
  }

  [[nodiscard]] int fields() const { return fields_; }
  [[nodiscard]] const Box<3>& box() const { return box_; }
  /// Doubles per field slab (the frame volume).
  [[nodiscard]] std::int64_t field_elems() const { return field_elems_; }

  [[nodiscard]] double* field_base(int f) {
    return data_.data() + static_cast<std::size_t>(f) *
                              static_cast<std::size_t>(field_elems_);
  }
  [[nodiscard]] const double* field_base(int f) const {
    return data_.data() + static_cast<std::size_t>(f) *
                              static_cast<std::size_t>(field_elems_);
  }

  [[nodiscard]] double& at(int f, const Vec3& p) {
    return field_base(f)[linearize(p - box_.lo, ext_)];
  }
  [[nodiscard]] double at(int f, const Vec3& p) const {
    return field_base(f)[linearize(p - box_.lo, ext_)];
  }

  [[nodiscard]] std::vector<double>& raw() { return data_; }
  [[nodiscard]] const std::vector<double>& raw() const { return data_; }

 private:
  Box<3> box_;
  int fields_;
  Vec3 ext_;
  std::int64_t field_elems_ = 0;
  std::vector<double> data_;
};

}  // namespace brickx
