#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace brickx {

constexpr int pow3(int d) { return d == 0 ? 1 : 3 * pow3(d - 1); }

/// The logical organization of bricks: an adjacency list giving, for every
/// brick, the storage index of each of its 3^D neighbors (including itself
/// at the center slot). This is the indirection layer that lets the physical
/// brick order be rearranged freely — layout optimization — while stencil
/// code keeps addressing logical neighbors.
template <int D>
struct BrickInfo {
  static constexpr int kNeighbors = pow3(D);
  static constexpr std::int32_t kNoBrick = -1;

  /// adj[b][code]: neighbor of brick b in direction code, where code is the
  /// mixed-radix encoding of (d0+1, d1+1, ..), axis 0 fastest:
  /// code = (d0+1) + 3*(d1+1) + 9*(d2+1) ... Center (all zero) is b itself.
  std::vector<std::array<std::int32_t, kNeighbors>> adj;

  [[nodiscard]] std::int64_t brick_count() const {
    return static_cast<std::int64_t>(adj.size());
  }

  /// Const view of brick b's neighbor row — the one lookup the fast
  /// kernel path performs per brick (instead of one per element access).
  [[nodiscard]] const std::array<std::int32_t, kNeighbors>& adjacent(
      std::int64_t b) const {
    return adj[static_cast<std::size_t>(b)];
  }

  /// Direction code from per-axis offsets in {-1, 0, +1}.
  static constexpr int dir_code(const std::array<int, D>& d) {
    int code = 0;
    for (int i = D - 1; i >= 0; --i) code = code * 3 + (d[i] + 1);
    return code;
  }
};

}  // namespace brickx
