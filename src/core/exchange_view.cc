#include "core/exchange_view.h"

#include "common/error.h"
#include "core/exchange.h"
#include "memmap/pagesize.h"
#include "obs/obs.h"

namespace brickx {

template <int D>
ExchangeView<D>::ExchangeView(const BrickDecomp<D>& dec, BrickStorage& storage,
                              const std::vector<int>& neighbor_ranks) {
  obs::ObsSpan span(obs::Cat::MmapSetup, "exchange_view_build");
  BX_CHECK(storage.file() != nullptr,
           "MemMap exchange requires mmap_alloc'd (memfd) storage");
  BX_CHECK(storage.page_size() % mm::host_page_size() == 0,
           "storage page size must be host-page aligned");
  const auto& nbrs = dec.neighbor_order();
  BX_CHECK(neighbor_ranks.size() == nbrs.size(),
           "neighbor rank table does not match the decomposition");
  const auto& chunks = storage.chunks();

  for (std::size_t v = 0; v < nbrs.size(); ++v) {
    const BitSet& nu = nbrs[v];

    // Send view: this neighbor's surface regions, stitched consecutively in
    // layout order (Figure 5).
    mm::ViewBuilder sb(*storage.file());
    std::vector<int> sregions;
    std::vector<std::size_t> ssizes;
    for (int o = 0; o < dec.surface_region_count(); ++o) {
      const auto& r = dec.regions()[static_cast<std::size_t>(o)];
      if (!region_sent_to(r.sigma, nu)) continue;
      const auto& c = chunks[static_cast<std::size_t>(o)];
      sb.add(c.offset, c.padded_bytes);
      // Empty regions (no middle band) contribute nothing to the view and
      // cannot be partitions (partitioned init rejects zero-size entries).
      if (c.padded_bytes > 0) {
        sregions.push_back(o);
        ssizes.push_back(c.padded_bytes);
      }
      payload_bytes_ += static_cast<std::int64_t>(c.bytes);
    }
    if (sb.total() > 0) {
      sends_.push_back(VWire{neighbor_ranks[v], static_cast<int>(v),
                             sb.build()});
      send_regions_.push_back(std::move(sregions));
      send_sizes_.push_back(std::move(ssizes));
    }

    // Receive view: the ghost chunks sourced from ν, in the same (sender's
    // layout) order, so one incoming message scatters itself via the page
    // tables.
    mm::ViewBuilder rb(*storage.file());
    std::vector<int> rregions;
    std::vector<std::size_t> rsizes;
    for (std::size_t o = static_cast<std::size_t>(dec.ghost_first_ordinal());
         o < dec.regions().size(); ++o) {
      const auto& r = dec.regions()[o];
      if (!(r.nu == nu)) continue;
      const auto& c = chunks[o];
      rb.add(c.offset, c.padded_bytes);
      if (c.padded_bytes > 0) {
        rregions.push_back(static_cast<int>(o));
        rsizes.push_back(c.padded_bytes);
      }
    }
    if (rb.total() > 0) {
      recvs_.push_back(VWire{neighbor_ranks[v],
                             dec.neighbor_ordinal(nu.flipped()), rb.build()});
      recv_regions_.push_back(std::move(rregions));
      recv_sizes_.push_back(std::move(rsizes));
    }
    BX_CHECK(sb.total() == rb.total(),
             "send and receive views disagree in size");
    // Plan-cost tally: both builders scanned the region table once each.
    scanned_regions_ += static_cast<std::int64_t>(dec.regions().size());
  }
}

template <int D>
PlanCost ExchangeView<D>::setup_cost() const {
  PlanCost c;
  c.regions = scanned_regions_;
  c.messages = static_cast<std::int64_t>(sends_.size() + recvs_.size());
  c.mmap_segments = view_segment_count();
  return c;
}

template <int D>
void ExchangeView<D>::make_persistent(mpi::Comm& comm) {
  BX_CHECK(!pset_.bound(), "exchange view already bound to persistent requests");
  BX_CHECK(pending_.empty(), "cannot bind while an exchange is in flight");
  for (VWire& w : recvs_)
    pset_.add_recv(comm.recv_init(w.view.data(), w.view.size(), w.rank, w.tag));
  for (VWire& w : sends_)
    pset_.add_send(comm.send_init(w.view.data(), w.view.size(), w.rank, w.tag));
  pset_.mark_bound();
}

template <int D>
void ExchangeView<D>::make_partitioned(mpi::Comm& comm) {
  BX_CHECK(!part_.bound(),
           "exchange view already bound to partitioned requests");
  BX_CHECK(!pset_.bound(),
           "persistent and partitioned bindings are mutually exclusive");
  BX_CHECK(pending_.empty(), "cannot bind while an exchange is in flight");
  for (std::size_t i = 0; i < recvs_.size(); ++i) {
    VWire& w = recvs_[i];
    part_.add_recv(comm.precv_init(w.view.data(), w.view.size(), w.rank,
                                   w.tag, recv_sizes_[i]),
                   recv_regions_[i], recv_sizes_[i]);
  }
  for (std::size_t i = 0; i < sends_.size(); ++i) {
    VWire& w = sends_[i];
    part_.add_send(comm.psend_init(w.view.data(), w.view.size(), w.rank,
                                   w.tag, send_sizes_[i]),
                   send_regions_[i], send_sizes_[i]);
  }
  part_.mark_bound();
}

template <int D>
void ExchangeView<D>::start(mpi::Comm& comm) {
  BX_CHECK(pending_.empty(), "previous exchange still in flight");
  if (pset_.bound()) {
    pset_.start_all();
    return;
  }
  for (VWire& w : recvs_)
    pending_.push_back(
        comm.irecv(w.view.data(), w.view.size(), w.rank, w.tag));
  for (VWire& w : sends_)
    pending_.push_back(
        comm.isend(w.view.data(), w.view.size(), w.rank, w.tag));
}

template <int D>
void ExchangeView<D>::finish(mpi::Comm& comm) {
  if (pset_.bound()) {
    pset_.wait_all();
    return;
  }
  comm.waitall(pending_);
}

template <int D>
std::int64_t ExchangeView<D>::send_byte_count() const {
  std::int64_t n = 0;
  for (const VWire& w : sends_) n += static_cast<std::int64_t>(w.view.size());
  return n;
}

template <int D>
double ExchangeView<D>::padding_overhead_percent() const {
  if (payload_bytes_ == 0) return 0.0;
  return 100.0 *
         static_cast<double>(send_byte_count() - payload_bytes_) /
         static_cast<double>(payload_bytes_);
}

template <int D>
std::int64_t ExchangeView<D>::view_segment_count() const {
  std::int64_t n = 0;
  for (const VWire& w : sends_) n += w.view.segments();
  for (const VWire& w : recvs_) n += w.view.segments();
  return n;
}

template class ExchangeView<1>;
template class ExchangeView<2>;
template class ExchangeView<3>;

}  // namespace brickx
