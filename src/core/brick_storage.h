#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "memmap/mem_file.h"
#include "memmap/view.h"

namespace brickx {

/// Physical storage for bricks: one flat buffer holding the bricks of every
/// region chunk consecutively (surface regions in layout order, then the
/// interior, then ghost subregions grouped by source neighbor — the order
/// BrickDecomp assigns).
///
/// Two backings:
///  * Heap   — plain aligned allocation; chunks tightly packed. Used by the
///             Layout method.
///  * MemFd  — an in-memory file mapped once as the canonical view; every
///             chunk is padded to `page_size` so ExchangeView can stitch
///             per-neighbor mmap views (the MemMap method).
///
/// Multiple fields interleave within a brick (array-of-structure-of-array):
/// a brick's chunk holds field 0's elements, then field 1's, ...; a whole
/// brick — all fields — is the unit of exchange.
///
/// Alignment rule (the explicit-SIMD tier, DESIGN.md §16): both backings
/// place the buffer base on a `kAlignment`-byte boundary (heap via aligned
/// operator new, MemFd via page-aligned mmap). Brick strides are NOT padded
/// — padding would change the exchange byte accounting — so a brick base is
/// vector-aligned only when `brick_bytes()` happens to be a multiple of the
/// lane size. For 3-D stencil geometries it always is (every brick extent
/// is >= 2, so elements_per_brick is a multiple of 8 and brick_bytes a
/// multiple of 64); degenerate 1-/2-D test geometries may fall short, which
/// the kernel tier's `simd_storage_ok` guard detects at dispatch time.
class BrickStorage {
 public:
  /// Buffer base alignment both backings guarantee (= simd::kAlign).
  static constexpr std::size_t kAlignment = 64;

  /// Bytes from the start of one brick to the next within a chunk.
  [[nodiscard]] std::size_t brick_bytes() const { return brick_bytes_; }
  /// Doubles per brick per field.
  [[nodiscard]] std::int64_t elements_per_brick() const {
    return elems_per_brick_;
  }
  [[nodiscard]] int fields() const { return fields_; }
  [[nodiscard]] std::int64_t brick_count() const {
    return static_cast<std::int64_t>(brick_offsets_.size());
  }

  [[nodiscard]] std::byte* data() { return base_; }
  [[nodiscard]] const std::byte* data() const { return base_; }
  [[nodiscard]] std::size_t bytes() const { return total_bytes_; }

  /// Base address of brick `idx` (all fields).
  [[nodiscard]] double* brick(std::int64_t idx) {
    return reinterpret_cast<double*>(
        base_ + brick_offsets_[static_cast<std::size_t>(idx)]);
  }
  [[nodiscard]] const double* brick(std::int64_t idx) const {
    return reinterpret_cast<const double*>(
        base_ + brick_offsets_[static_cast<std::size_t>(idx)]);
  }
  [[nodiscard]] std::size_t brick_offset(std::int64_t idx) const {
    return brick_offsets_[static_cast<std::size_t>(idx)];
  }

  /// One region chunk's placement in the buffer.
  struct Chunk {
    std::size_t offset = 0;        ///< byte offset of the chunk start
    std::size_t bytes = 0;         ///< payload bytes (nbricks * brick_bytes)
    std::size_t padded_bytes = 0;  ///< bytes + page padding (== bytes when packed)
  };
  [[nodiscard]] const std::vector<Chunk>& chunks() const { return chunks_; }

  /// Padding granularity chunks were aligned to (0 = tightly packed heap).
  /// May exceed the host page size to *emulate* larger pages (Fig. 18);
  /// it is always a multiple of the host page size for MemFd backings.
  [[nodiscard]] std::size_t page_size() const { return page_size_; }

  /// The backing file when MemFd-backed (for ExchangeView); nullptr for
  /// heap backing.
  [[nodiscard]] const mm::MemFile* file() const { return file_.get(); }

  /// Total padding bytes across all chunks — MemMap's extra network
  /// transfer when chunks are sent page-aligned (Table 2 accounting).
  [[nodiscard]] std::size_t padding_bytes() const;

  // Construction -- used by BrickDecomp::allocate / mmap_alloc.

  /// `chunk_bricks[i]` = brick count of region chunk i, in storage order.
  static BrickStorage heap(const std::vector<std::int64_t>& chunk_bricks,
                           std::int64_t elems_per_brick, int fields);
  static BrickStorage memfd(const std::vector<std::int64_t>& chunk_bricks,
                            std::int64_t elems_per_brick, int fields,
                            std::size_t page_size);

  BrickStorage(BrickStorage&&) = default;
  BrickStorage& operator=(BrickStorage&&) = default;
  BrickStorage(const BrickStorage&) = delete;
  BrickStorage& operator=(const BrickStorage&) = delete;

 private:
  BrickStorage() = default;
  void layout_chunks(const std::vector<std::int64_t>& chunk_bricks,
                     std::int64_t elems_per_brick, int fields,
                     std::size_t page_size);

  std::size_t brick_bytes_ = 0;
  std::int64_t elems_per_brick_ = 0;
  int fields_ = 1;
  std::size_t total_bytes_ = 0;
  std::size_t page_size_ = 0;
  std::vector<Chunk> chunks_;
  std::vector<std::size_t> brick_offsets_;

  // Backing (exactly one active). The heap backing over-aligns to
  // kAlignment, which unique_ptr's default delete[] would get wrong.
  struct AlignedDelete {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };
  std::unique_ptr<std::byte[], AlignedDelete> heap_;
  std::unique_ptr<mm::MemFile> file_;
  std::unique_ptr<mm::Mapping> mapping_;
  std::byte* base_ = nullptr;
};

}  // namespace brickx
