#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.h"
#include "common/vec.h"
#include "core/brick_info.h"
#include "core/brick_storage.h"
#include "core/layout.h"
#include "core/region.h"

namespace brickx {

/// Decomposition of one rank's subdomain into fine-grained data blocks
/// (bricks) ordered for pack-free communication — the paper's
/// `BrickDecomp<3, BDIM>`.
///
/// Storage order of bricks (chunk = contiguous group):
///   [surface region chunks, in layout order]
///   [interior chunk]
///   [ghost subregion chunks, grouped by source neighbor; within a group,
///    in the *sender's* layout order so each incoming message lands in one
///    contiguous write]
///
/// All ranks of a job use identical subdomain extents and the same layout,
/// which is what makes the send/receive chunk geometries line up.
template <int D>
class BrickDecomp {
 public:
  /// `domain`: subdomain extent in cells per axis (excludes ghost).
  /// `ghost`: ghost-zone width in cells (same every axis, as in the paper);
  /// must be a positive multiple of the brick extent on every axis.
  /// `brick_dims`: brick extent in cells per axis.
  /// `layout`: surface-region storage order (e.g. surface3d()).
  BrickDecomp(const Vec<D>& domain, std::int64_t ghost,
              const Vec<D>& brick_dims, LayoutSpec layout);

  struct Region {
    enum class Kind { Surface, Interior, Ghost };
    Kind kind;
    BitSet sigma;  ///< surface signature (sender-local one for ghosts)
    BitSet nu;     ///< ghost only: the source neighbor direction
    Box<D> box;    ///< brick-grid coordinates (interior grid is [0, n))
    std::int64_t first_brick = 0;  ///< storage index of the chunk's first brick
    std::int64_t brick_count = 0;
  };

  /// All region chunks in storage order; indexes into this vector are the
  /// "ordinals" the exchange builders use (and equal BrickStorage chunk
  /// indices).
  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }

  [[nodiscard]] int surface_region_count() const {
    return static_cast<int>(layout_.order.size());
  }
  [[nodiscard]] int interior_ordinal() const { return surface_region_count(); }
  [[nodiscard]] int ghost_first_ordinal() const {
    return surface_region_count() + 1;
  }
  /// Ordinal of surface region σ (its position in the layout).
  [[nodiscard]] int surface_ordinal(const BitSet& sigma) const;

  /// Bricks this rank owns (surface + interior); they occupy storage
  /// indices [0, own_brick_count()), so stencil loops iterate exactly that
  /// range.
  [[nodiscard]] std::int64_t own_brick_count() const { return own_bricks_; }
  [[nodiscard]] std::int64_t total_brick_count() const {
    return static_cast<std::int64_t>(grid_of_.size());
  }

  [[nodiscard]] const LayoutSpec& layout() const { return layout_; }
  /// Fixed neighbor enumeration shared by every rank (all 3^D - 1
  /// direction sets).
  [[nodiscard]] const std::vector<BitSet>& neighbor_order() const {
    return neighbor_order_;
  }
  /// Index of direction `dir` within neighbor_order() — the basis of the
  /// message tag space (identical on every rank).
  [[nodiscard]] int neighbor_ordinal(const BitSet& dir) const;

  [[nodiscard]] const Vec<D>& domain() const { return domain_; }
  [[nodiscard]] const Vec<D>& brick_dims() const { return brick_dims_; }
  /// Interior brick-grid extent n (bricks per axis, without ghost layers).
  [[nodiscard]] const Vec<D>& brick_grid() const { return n_; }
  /// Ghost thickness in brick layers per axis.
  [[nodiscard]] const Vec<D>& ghost_layers() const { return gb_; }
  [[nodiscard]] std::int64_t ghost_width() const { return ghost_; }
  [[nodiscard]] std::int64_t elements_per_brick() const {
    return brick_dims_.prod();
  }

  /// Storage index of the brick at grid coordinate `g`, where interior
  /// bricks live in [0, n) and ghost bricks in [-gb, 0) and [n, n+gb).
  [[nodiscard]] std::int32_t brick_at(const Vec<D>& g) const;
  /// Inverse of brick_at.
  [[nodiscard]] const Vec<D>& grid_of(std::int64_t storage_index) const {
    return grid_of_[static_cast<std::size_t>(storage_index)];
  }

  /// Build the adjacency metadata for stencil computation (paper's
  /// `getBrickInfo()`).
  [[nodiscard]] BrickInfo<D> brick_info() const;

  /// Packed heap storage — used by the Layout method (paper's
  /// `bInfo.allocate(bSize)`).
  [[nodiscard]] BrickStorage allocate(int fields) const;
  /// Page-aligned memfd storage — required by the MemMap method (paper's
  /// `bInfo.mmap_alloc(bSize)`). `page_size` 0 means the host page size;
  /// larger multiples emulate big-page systems (Fig. 18).
  [[nodiscard]] BrickStorage mmap_alloc(int fields,
                                        std::size_t page_size = 0) const;

 private:
  Vec<D> domain_, brick_dims_, n_, gb_;
  std::int64_t ghost_;
  LayoutSpec layout_;
  std::vector<BitSet> neighbor_order_;
  std::vector<Region> regions_;
  std::int64_t own_bricks_ = 0;

  // Grid <-> storage maps. Grid array covers [-gb, n+gb) with offset gb.
  Vec<D> grid_ext_;
  std::vector<std::int32_t> grid_to_storage_;
  std::vector<Vec<D>> grid_of_;
};

}  // namespace brickx
