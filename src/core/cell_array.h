#pragma once

#include <cstdint>
#include <vector>

#include "common/vec.h"
#include "core/brick_storage.h"
#include "core/decomp.h"

namespace brickx {

/// A plain lexicographic array of cells over an arbitrary box (may include
/// ghost coordinates, i.e. negative indices). The bridge between bricked
/// storage and flat reference data in tests, examples and baselines.
template <int D>
class CellArray {
 public:
  explicit CellArray(const Box<D>& box)
      : box_(box), data_(static_cast<std::size_t>(box.volume()), 0.0) {}

  [[nodiscard]] const Box<D>& box() const { return box_; }

  [[nodiscard]] double& at(const Vec<D>& p) {
    return data_[index(p)];
  }
  [[nodiscard]] double at(const Vec<D>& p) const { return data_[index(p)]; }

  [[nodiscard]] std::vector<double>& raw() { return data_; }
  [[nodiscard]] const std::vector<double>& raw() const { return data_; }

 private:
  [[nodiscard]] std::size_t index(const Vec<D>& p) const {
    return static_cast<std::size_t>(linearize(p - box_.lo, box_.extent()));
  }
  Box<D> box_;
  std::vector<double> data_;
};

using CellArray3 = CellArray<3>;

/// Copy cells from `src` into field `field` of bricked storage. Only cells
/// inside src's box that map onto allocated bricks are copied. Cell
/// coordinates are subdomain-local: [0, domain) interior,
/// [-ghost, domain+ghost) including the ghost frame.
template <int D>
void cells_to_bricks(const BrickDecomp<D>& dec, const CellArray<D>& src,
                     BrickStorage& storage, int field);

/// Copy field `field` of bricked storage into the cells of `dst` (over
/// dst's whole box, which must map onto allocated bricks).
template <int D>
void bricks_to_cells(const BrickDecomp<D>& dec, const BrickStorage& storage,
                     int field, CellArray<D>& dst);

}  // namespace brickx
