#pragma once

#include <cstdint>

#include "common/error.h"
#include "core/brick_info.h"
#include "core/brick_storage.h"

namespace brickx {

/// Element accessor over bricked 3D storage, mirroring the paper's Figure 6
/// interface:
///
///   Brick<8, 8, 8> a(&info, &storage, 0);       // field 0
///   Brick<8, 8, 8> b(&info, &storage, 512);     // field 1 (8^3 offset)
///   a[brickIndex][k][j][i] = c0 * b[brickIndex][k][j][i]
///                          + c1 * b[brickIndex][k - 1][j][i] + ...;
///
/// Template parameters are the brick extents in k/j/i order (BK slowest,
/// BI contiguous). Indices one brick outside the current brick
/// ([-B, 2B) per axis) resolve automatically through BrickInfo adjacency —
/// the library's logical-to-physical indirection.
template <int BK, int BJ, int BI>
class Brick {
 public:
  static constexpr std::int64_t kElems =
      static_cast<std::int64_t>(BK) * BJ * BI;

  /// `elem_offset`: element offset of this field inside a brick chunk
  /// (field f of an interleaved storage passes f * BK*BJ*BI).
  Brick(const BrickInfo<3>* info, BrickStorage* storage,
        std::int64_t elem_offset = 0)
      : info_(info), storage_(storage), elem_offset_(elem_offset) {
    BX_CHECK(info->brick_count() == storage->brick_count(),
             "BrickInfo and BrickStorage disagree on brick count");
    BX_CHECK(storage->elements_per_brick() == kElems,
             "storage bricks do not match Brick template extents");
    BX_CHECK(elem_offset + kElems <=
                 storage->elements_per_brick() * storage->fields(),
             "field offset outside brick chunk");
  }

  /// Direct accessor; k/j/i may each lie in [-B, 2B) and are resolved to
  /// the right neighboring brick through the adjacency list.
  [[nodiscard]] double& at(std::int64_t b, int k, int j, int i) const {
    const int dk = k < 0 ? -1 : (k >= BK ? 1 : 0);
    const int dj = j < 0 ? -1 : (j >= BJ ? 1 : 0);
    const int di = i < 0 ? -1 : (i >= BI ? 1 : 0);
    std::int64_t target = b;
    if (dk | dj | di) {
      const int code = (di + 1) + 3 * (dj + 1) + 9 * (dk + 1);
      target = info_->adj[static_cast<std::size_t>(b)][code];
      BX_CHECK(target != BrickInfo<3>::kNoBrick,
               "stencil reached past the allocated ghost zone");
      k -= dk * BK;
      j -= dj * BJ;
      i -= di * BI;
    }
    return storage_->brick(target)[elem_offset_ +
                                   (static_cast<std::int64_t>(k) * BJ + j) *
                                       BI +
                                   i];
  }

  /// Flat base pointer of this field's elements in brick `b` — no
  /// adjacency resolution, no bounds handling. The fast kernel engine
  /// resolves neighbor bricks once per brick through info().adjacent()
  /// and then addresses rows through this pointer directly.
  [[nodiscard]] double* field_data(std::int64_t b) const {
    return storage_->brick(b) + elem_offset_;
  }

  // Proxy chain enabling the a[b][k][j][i] syntax of the paper.
  class Proxy2 {
   public:
    Proxy2(const Brick* br, std::int64_t b, int k, int j)
        : br_(br), b_(b), k_(k), j_(j) {}
    double& operator[](int i) const { return br_->at(b_, k_, j_, i); }

   private:
    const Brick* br_;
    std::int64_t b_;
    int k_, j_;
  };
  class Proxy1 {
   public:
    Proxy1(const Brick* br, std::int64_t b, int k) : br_(br), b_(b), k_(k) {}
    Proxy2 operator[](int j) const { return Proxy2(br_, b_, k_, j); }

   private:
    const Brick* br_;
    std::int64_t b_;
    int k_;
  };
  class Proxy0 {
   public:
    Proxy0(const Brick* br, std::int64_t b) : br_(br), b_(b) {}
    Proxy1 operator[](int k) const { return Proxy1(br_, b_, k); }

   private:
    const Brick* br_;
    std::int64_t b_;
  };
  Proxy0 operator[](std::int64_t b) const { return Proxy0(this, b); }

  [[nodiscard]] const BrickInfo<3>& info() const { return *info_; }
  [[nodiscard]] BrickStorage& storage() const { return *storage_; }
  [[nodiscard]] std::int64_t elem_offset() const { return elem_offset_; }

 private:
  const BrickInfo<3>* info_;
  BrickStorage* storage_;
  std::int64_t elem_offset_;
};

}  // namespace brickx
