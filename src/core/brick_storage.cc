#include "core/brick_storage.h"

#include <cstring>

#include "common/error.h"
#include "memmap/pagesize.h"

namespace brickx {

void BrickStorage::layout_chunks(const std::vector<std::int64_t>& chunk_bricks,
                                 std::int64_t elems_per_brick, int fields,
                                 std::size_t page_size) {
  BX_CHECK(elems_per_brick > 0 && fields > 0, "bad brick geometry");
  elems_per_brick_ = elems_per_brick;
  fields_ = fields;
  brick_bytes_ = static_cast<std::size_t>(elems_per_brick) *
                 static_cast<std::size_t>(fields) * sizeof(double);
  page_size_ = page_size;

  std::size_t at = 0;
  std::int64_t total_bricks = 0;
  chunks_.reserve(chunk_bricks.size());
  for (std::int64_t nb : chunk_bricks) {
    BX_CHECK(nb >= 0, "negative chunk brick count");
    Chunk c;
    c.offset = at;
    c.bytes = static_cast<std::size_t>(nb) * brick_bytes_;
    c.padded_bytes =
        page_size ? mm::round_up(c.bytes, page_size) : c.bytes;
    chunks_.push_back(c);
    at += c.padded_bytes;
    total_bricks += nb;
  }
  total_bytes_ = at;

  brick_offsets_.reserve(static_cast<std::size_t>(total_bricks));
  for (std::size_t ci = 0; ci < chunk_bricks.size(); ++ci) {
    for (std::int64_t b = 0; b < chunk_bricks[ci]; ++b)
      brick_offsets_.push_back(chunks_[ci].offset +
                               static_cast<std::size_t>(b) * brick_bytes_);
  }
}

std::size_t BrickStorage::padding_bytes() const {
  std::size_t pad = 0;
  for (const Chunk& c : chunks_) pad += c.padded_bytes - c.bytes;
  return pad;
}

BrickStorage BrickStorage::heap(const std::vector<std::int64_t>& chunk_bricks,
                                std::int64_t elems_per_brick, int fields) {
  BrickStorage s;
  s.layout_chunks(chunk_bricks, elems_per_brick, fields, /*page_size=*/0);
  s.heap_.reset(static_cast<std::byte*>(::operator new[](
      s.total_bytes_ ? s.total_bytes_ : 1, std::align_val_t{kAlignment})));
  s.base_ = s.heap_.get();
  std::memset(s.base_, 0, s.total_bytes_);
  return s;
}

BrickStorage BrickStorage::memfd(const std::vector<std::int64_t>& chunk_bricks,
                                 std::int64_t elems_per_brick, int fields,
                                 std::size_t page_size) {
  BX_CHECK(page_size % mm::host_page_size() == 0,
           "storage page size must be a multiple of the host page size");
  BrickStorage s;
  s.layout_chunks(chunk_bricks, elems_per_brick, fields, page_size);
  s.file_ = std::make_unique<mm::MemFile>(s.total_bytes_ ? s.total_bytes_ : 1,
                                          "brickx-storage");
  s.mapping_ = std::make_unique<mm::Mapping>(*s.file_);
  s.base_ = s.mapping_->data();
  // memfd pages are zero-filled by the kernel; nothing to initialize.
  return s;
}

}  // namespace brickx
