#include "core/decomp.h"

#include "common/error.h"
#include "memmap/pagesize.h"

namespace brickx {

template <int D>
BrickDecomp<D>::BrickDecomp(const Vec<D>& domain, std::int64_t ghost,
                            const Vec<D>& brick_dims, LayoutSpec layout)
    : domain_(domain),
      brick_dims_(brick_dims),
      ghost_(ghost),
      layout_(std::move(layout)) {
  BX_CHECK(ghost > 0, "ghost width must be positive");
  BX_CHECK(layout_.valid(D), "layout is not a permutation of the regions");
  for (int a = 0; a < D; ++a) {
    BX_CHECK(brick_dims_[a] > 0, "brick extent must be positive");
    BX_CHECK(domain_[a] % brick_dims_[a] == 0,
             "subdomain must be a multiple of the brick extent");
    BX_CHECK(ghost % brick_dims_[a] == 0,
             "ghost width must be a multiple of the brick extent "
             "(use ghost cell expansion for thinner logical ghosts)");
    n_[a] = domain_[a] / brick_dims_[a];
    gb_[a] = ghost / brick_dims_[a];
    BX_CHECK(n_[a] >= 2 * gb_[a],
             "subdomain must be at least two ghost widths per axis");
  }
  neighbor_order_ = all_surface_signatures(D);

  // --- enumerate region chunks in storage order -------------------------
  std::int64_t next_brick = 0;
  auto push = [&](typename Region::Kind kind, const BitSet& sigma,
                  const BitSet& nu, const Box<D>& box) {
    Region r;
    r.kind = kind;
    r.sigma = sigma;
    r.nu = nu;
    r.box = box;
    r.first_brick = next_brick;
    r.brick_count = box.volume();
    next_brick += r.brick_count;
    regions_.push_back(r);
  };

  for (const BitSet& sigma : layout_.order)
    push(Region::Kind::Surface, sigma, BitSet{},
         surface_box<D>(sigma, n_, gb_));

  Box<D> interior;
  for (int a = 0; a < D; ++a) {
    interior.lo[a] = gb_[a];
    interior.hi[a] = std::max(gb_[a], n_[a] - gb_[a]);
  }
  push(Region::Kind::Interior, BitSet{}, BitSet{}, interior);
  own_bricks_ = next_brick;

  for (const GhostId& gid :
       ghost_subregions(neighbor_order_, layout_.order, D))
    push(Region::Kind::Ghost, gid.sigma, gid.nu,
         ghost_box<D>(gid, n_, gb_));

  // --- grid <-> storage maps ---------------------------------------------
  for (int a = 0; a < D; ++a) grid_ext_[a] = n_[a] + 2 * gb_[a];
  grid_to_storage_.assign(static_cast<std::size_t>(grid_ext_.prod()),
                          BrickInfo<D>::kNoBrick);
  grid_of_.resize(static_cast<std::size_t>(next_brick));
  for (const Region& r : regions_) {
    std::int64_t idx = r.first_brick;
    for_each(r.box, [&](const Vec<D>& g) {
      const auto lin = static_cast<std::size_t>(linearize(g + gb_, grid_ext_));
      BX_CHECK(grid_to_storage_[lin] == BrickInfo<D>::kNoBrick,
               "region partition overlaps itself");
      grid_to_storage_[lin] = static_cast<std::int32_t>(idx);
      grid_of_[static_cast<std::size_t>(idx)] = g;
      ++idx;
    });
  }
  // Partition invariant: every grid brick is covered exactly once.
  for (std::int32_t s : grid_to_storage_)
    BX_CHECK(s != BrickInfo<D>::kNoBrick,
             "region partition does not cover the grid");
}

template <int D>
int BrickDecomp<D>::neighbor_ordinal(const BitSet& dir) const {
  for (std::size_t i = 0; i < neighbor_order_.size(); ++i)
    if (neighbor_order_[i] == dir) return static_cast<int>(i);
  brickx::fail("not a neighbor direction of this decomposition");
}

template <int D>
int BrickDecomp<D>::surface_ordinal(const BitSet& sigma) const {
  const int p = layout_.position(sigma);
  BX_CHECK(p >= 0, "not a surface region of this decomposition");
  return p;
}

template <int D>
std::int32_t BrickDecomp<D>::brick_at(const Vec<D>& g) const {
  for (int a = 0; a < D; ++a) {
    if (g[a] < -gb_[a] || g[a] >= n_[a] + gb_[a]) return BrickInfo<D>::kNoBrick;
  }
  return grid_to_storage_[static_cast<std::size_t>(
      linearize(g + gb_, grid_ext_))];
}

template <int D>
BrickInfo<D> BrickDecomp<D>::brick_info() const {
  BrickInfo<D> info;
  info.adj.resize(static_cast<std::size_t>(total_brick_count()));
  const Vec<D> ext3 = Vec<D>::fill(3);
  for (std::int64_t b = 0; b < total_brick_count(); ++b) {
    const Vec<D>& g = grid_of(b);
    for (std::int64_t code = 0; code < ext3.prod(); ++code) {
      const Vec<D> d = delinearize(code, ext3);
      Vec<D> nb = g;
      for (int a = 0; a < D; ++a) nb[a] += d[a] - 1;
      info.adj[static_cast<std::size_t>(b)][static_cast<std::size_t>(code)] =
          brick_at(nb);
    }
  }
  return info;
}

template <int D>
BrickStorage BrickDecomp<D>::allocate(int fields) const {
  std::vector<std::int64_t> chunk_bricks;
  chunk_bricks.reserve(regions_.size());
  for (const Region& r : regions_) chunk_bricks.push_back(r.brick_count);
  return BrickStorage::heap(chunk_bricks, elements_per_brick(), fields);
}

template <int D>
BrickStorage BrickDecomp<D>::mmap_alloc(int fields,
                                        std::size_t page_size) const {
  if (page_size == 0) page_size = mm::host_page_size();
  std::vector<std::int64_t> chunk_bricks;
  chunk_bricks.reserve(regions_.size());
  for (const Region& r : regions_) chunk_bricks.push_back(r.brick_count);
  return BrickStorage::memfd(chunk_bricks, elements_per_brick(), fields,
                             page_size);
}

template class BrickDecomp<1>;
template class BrickDecomp<2>;
template class BrickDecomp<3>;
template class BrickDecomp<4>;

}  // namespace brickx
