#include "core/layout.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "core/region.h"

namespace brickx {

int LayoutSpec::dims() const {
  int d = 0;
  for (const BitSet& s : order)
    for (int a = 1; a <= BitSet::kMaxAxis; ++a)
      if (s.has(a) || s.has(-a)) d = std::max(d, a);
  return d;
}

int LayoutSpec::position(const BitSet& sigma) const {
  for (std::size_t i = 0; i < order.size(); ++i)
    if (order[i] == sigma) return static_cast<int>(i);
  return -1;
}

bool LayoutSpec::valid(int dims) const {
  const auto all = all_surface_signatures(dims);
  if (order.size() != all.size()) return false;
  for (const BitSet& s : all)
    if (position(s) < 0) return false;
  return true;
}

std::int64_t neighbor_count(int dims) {
  std::int64_t n = 1;
  for (int i = 0; i < dims; ++i) n *= 3;
  return n - 1;
}

std::int64_t basic_message_count(int dims) {
  std::int64_t five = 1, three = 1;
  for (int i = 0; i < dims; ++i) {
    five *= 5;
    three *= 3;
  }
  return five - three;
}

std::int64_t layout_message_lower_bound(int dims) {
  std::int64_t five = 1;
  for (int i = 0; i < dims; ++i) five *= 5;
  const std::int64_t sign = dims % 2 == 0 ? 1 : -1;
  // 5^D/3 + (-1)^D/6 + 1/2 == (2*5^D + (-1)^D + 3) / 6, exactly.
  return (2 * five + sign + 3) / 6;
}

std::int64_t message_count(const LayoutSpec& layout, int dims) {
  BX_CHECK(layout.valid(dims), "layout is not a permutation of all regions");
  std::int64_t msgs = 0;
  for (const BitSet& nu : all_surface_signatures(dims)) {
    bool in_run = false;
    for (const BitSet& sigma : layout.order) {
      const bool sent = region_sent_to(sigma, nu);
      if (sent && !in_run) ++msgs;
      in_run = sent;
    }
  }
  return msgs;
}

const LayoutSpec& surface1d() {
  static const LayoutSpec spec{{BitSet{-1}, BitSet{1}}};
  return spec;
}

const LayoutSpec& surface2d() {
  // Figure 3's ring walk: each side neighbor's three regions are
  // consecutive; 9 messages for 8 neighbors.
  static const LayoutSpec spec{{
      BitSet{-1, -2}, BitSet{-2}, BitSet{1, -2}, BitSet{1},
      BitSet{1, 2}, BitSet{2}, BitSet{-1, 2}, BitSet{-1},
  }};
  return spec;
}

const LayoutSpec& surface3d() {
  // An optimal 3D order achieving the Eq. 1 bound of 42 messages for 26
  // neighbors (verified by the layout tests). Construction: the middle is a
  // Hamiltonian walk over the cube's vertices (corner regions) with the
  // traversed cube edge (edge region) inserted between consecutive corners,
  // plus one extra incident edge at each end — 16 consecutive pairs sharing
  // two axes (3 merged destinations each). The remaining 5 edges and 6
  // faces form two tail strings whose consecutive pairs share one axis.
  // Total merged destinations = 16*3 + 8*1 = 56, so messages
  // = (5^3 - 3^3) - 56 = 42.
  static const LayoutSpec spec{{
      // Head string: faces and leftover edges, one shared axis per link.
      BitSet{2}, BitSet{1, 2}, BitSet{1}, BitSet{1, -2}, BitSet{-2},
      BitSet{-1, -2}, BitSet{-1},
      // Corner/edge Hamiltonian walk, two shared axes per link.
      BitSet{-1, -3}, BitSet{-1, -2, -3}, BitSet{-2, -3}, BitSet{1, -2, -3},
      BitSet{1, -3}, BitSet{1, 2, -3}, BitSet{2, -3}, BitSet{-1, 2, -3},
      BitSet{-1, 2}, BitSet{-1, 2, 3}, BitSet{2, 3}, BitSet{1, 2, 3},
      BitSet{1, 3}, BitSet{1, -2, 3}, BitSet{-2, 3}, BitSet{-1, -2, 3},
      BitSet{-1, 3},
      // Tail string.
      BitSet{3}, BitSet{-3},
  }};
  return spec;
}

LayoutSpec lexicographic_layout(int dims) {
  return LayoutSpec{all_surface_signatures(dims)};
}

namespace {

/// Exhaustive search over permutations (feasible for D <= 2: 8! orders).
LayoutSpec exhaustive(int dims) {
  auto regions = all_surface_signatures(dims);
  std::sort(regions.begin(), regions.end(),
            [](const BitSet& a, const BitSet& b) { return a.raw() < b.raw(); });
  LayoutSpec best{regions};
  std::int64_t best_msgs = message_count(best, dims);
  std::vector<BitSet> perm = regions;
  do {
    LayoutSpec cand{perm};
    const std::int64_t m = message_count(cand, dims);
    if (m < best_msgs) {
      best_msgs = m;
      best = cand;
    }
  } while (std::next_permutation(
      perm.begin(), perm.end(),
      [](const BitSet& a, const BitSet& b) { return a.raw() < b.raw(); }));
  return best;
}

}  // namespace

LayoutSpec optimize_layout(int dims, std::int64_t budget, std::uint64_t seed) {
  if (dims <= 2) return exhaustive(dims);

  const std::int64_t bound = layout_message_lower_bound(dims);
  Rng rng(seed);
  LayoutSpec best;
  std::int64_t best_msgs = -1;

  // Randomized-restart hill climbing over pairwise swaps. The neighborhood
  // is small (|R|^2 swaps) and the objective landscape is benign enough
  // that a few restarts reach the Eq. 1 bound for D == 3.
  std::int64_t evals = 0;
  while (evals < budget) {
    LayoutSpec cur{all_surface_signatures(dims)};
    // Random shuffle start.
    for (std::size_t i = cur.order.size(); i > 1; --i)
      std::swap(cur.order[i - 1], cur.order[rng.below(i)]);
    std::int64_t cur_msgs = message_count(cur, dims);
    ++evals;
    bool improved = true;
    while (improved && evals < budget) {
      improved = false;
      for (std::size_t i = 0; i + 1 < cur.order.size() && evals < budget; ++i) {
        for (std::size_t j = i + 1; j < cur.order.size() && evals < budget;
             ++j) {
          std::swap(cur.order[i], cur.order[j]);
          const std::int64_t m = message_count(cur, dims);
          ++evals;
          if (m < cur_msgs) {
            cur_msgs = m;
            improved = true;
          } else {
            std::swap(cur.order[i], cur.order[j]);
          }
        }
      }
    }
    if (best_msgs < 0 || cur_msgs < best_msgs) {
      best_msgs = cur_msgs;
      best = cur;
    }
    if (best_msgs == bound) break;  // provably optimal, stop early
  }
  return best;
}

}  // namespace brickx
