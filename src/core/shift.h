#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/decomp.h"
#include "core/exchange_plan.h"
#include "simmpi/cart.h"
#include "simmpi/comm.h"

namespace brickx {

/// The Shift ghost-zone exchange (paper Section 8, after Palmer &
/// Nieplocha and Ding & He): ghost zones are exchanged along each
/// dimension consecutively, *excluding corner neighbors* — corner data is
/// forwarded through the face neighbors in later phases. Only 2*D
/// neighbor pairs are ever addressed (6 in 3D instead of 26), at the cost
/// of D synchronized phases per exchange.
///
/// This implementation is pack-free like the Layout exchange: each phase's
/// slab is sent as runs of byte-contiguous brick chunks. Phase a (axis a)
/// sends, per direction, every chunk whose axis-a band is the outermost
/// surface band, spanning the full already-valid ghost extent on axes < a
/// (that is the forwarding) and the interior extent on axes > a.
///
/// All ranks must use identical decompositions (same requirement as the
/// other exchangers).
template <int D>
class ShiftExchanger {
 public:
  /// `axis_neighbor_ranks[a][0/1]` = rank of the -/+ neighbor along axis
  /// a; use shift_neighbors() to build it from a Cart.
  ShiftExchanger(const BrickDecomp<D>& dec, BrickStorage& storage,
                 const std::vector<std::array<int, 2>>& axis_neighbor_ranks);

  /// Bind every phase's wires to persistent requests (one set per phase;
  /// the inter-phase waits are unchanged).
  void make_persistent(mpi::Comm& comm);
  [[nodiscard]] bool persistent() const { return psets_[0].bound(); }

  /// Run all D phases; each phase completes (waits) before the next posts,
  /// which is the synchronization Shift trades for its low message count.
  void exchange(mpi::Comm& comm);

  /// Modeled cost of building the D phase schedules.
  [[nodiscard]] PlanCost setup_cost() const { return cost_; }

  /// Total messages this rank sends per exchange (summed over phases).
  [[nodiscard]] std::int64_t send_message_count() const;
  [[nodiscard]] std::int64_t send_byte_count() const;
  [[nodiscard]] int phase_count() const { return D; }

 private:
  struct Wire {
    int rank;
    int tag;
    std::size_t offset;
    std::size_t bytes;
  };
  struct Phase {
    std::vector<Wire> sends, recvs;
  };
  BrickStorage* storage_;
  std::array<Phase, D> phases_;
  std::array<PersistentSet, D> psets_;
  PlanCost cost_;
};

/// Neighbor ranks along each axis for ShiftExchanger.
template <int D>
std::vector<std::array<int, 2>> shift_neighbors(const mpi::Cart<D>& cart);

}  // namespace brickx
