#include "core/shift.h"

#include <map>

#include "common/error.h"
#include "simmpi/cart.h"

namespace brickx {

namespace {

/// Per-axis band class of a region chunk: the five bands L,l,m,h,H encoded
/// as 0..4 (DESIGN.md §5.1).
enum Band : int { kL = 0, kl = 1, km = 2, kh = 3, kH = 4 };

template <int D>
std::array<int, D> chunk_bands(const typename BrickDecomp<D>::Region& r) {
  std::array<int, D> b{};
  using Kind = typename BrickDecomp<D>::Region::Kind;
  for (int a = 0; a < D; ++a) {
    const int sd = r.sigma.dir_of(a + 1);
    int band = sd < 0 ? kl : (sd > 0 ? kh : km);
    if (r.kind == Kind::Ghost) {
      const int nd = r.nu.dir_of(a + 1);
      if (nd < 0) band = kL;
      if (nd > 0) band = kH;
    }
    b[static_cast<std::size_t>(a)] = band;
  }
  return b;
}

/// Key for band-vector lookup.
template <int D>
std::int64_t band_key(const std::array<int, D>& b) {
  std::int64_t k = 0;
  for (int a = 0; a < D; ++a) k = k * 5 + b[static_cast<std::size_t>(a)];
  return k;
}

}  // namespace

template <int D>
std::vector<std::array<int, 2>> shift_neighbors(const mpi::Cart<D>& cart) {
  std::vector<std::array<int, 2>> out;
  for (int a = 1; a <= D; ++a)
    out.push_back({cart.neighbor(BitSet{-a}), cart.neighbor(BitSet{a})});
  return out;
}

template std::vector<std::array<int, 2>> shift_neighbors<2>(
    const mpi::Cart<2>&);
template std::vector<std::array<int, 2>> shift_neighbors<3>(
    const mpi::Cart<3>&);

template <int D>
ShiftExchanger<D>::ShiftExchanger(
    const BrickDecomp<D>& dec, BrickStorage& storage,
    const std::vector<std::array<int, 2>>& axis_neighbor_ranks)
    : storage_(&storage) {
  BX_CHECK(axis_neighbor_ranks.size() == static_cast<std::size_t>(D),
           "need one neighbor pair per axis");
  BX_CHECK(storage.chunks().size() == dec.regions().size(),
           "storage was not allocated from this decomposition");
  const auto& chunks = storage.chunks();

  // Band vector -> chunk ordinal, for mapping sender chunks onto the
  // receiver's ghost chunks (identical decompositions on all ranks).
  std::map<std::int64_t, int> by_bands;
  std::vector<std::array<int, D>> bands(dec.regions().size());
  for (std::size_t o = 0; o < dec.regions().size(); ++o) {
    bands[o] = chunk_bands<D>(dec.regions()[o]);
    const auto [it, inserted] = by_bands.emplace(band_key<D>(bands[o]),
                                                 static_cast<int>(o));
    BX_CHECK(inserted, "duplicate band vector in the region table");
  }

  // Phase a, direction d: send every chunk with band(a) == h (d=+) or l
  // (d=-), axes > a in {l,m,h} (interior extent) and axes < a any band
  // (forwarding the ghosts filled by earlier phases). It lands in the
  // receiver's chunk with band(a) flipped to L (resp. H), other axes
  // unchanged.
  for (int a = 0; a < D; ++a) {
    Phase& phase = phases_[static_cast<std::size_t>(a)];
    for (int d = 0; d < 2; ++d) {
      const int send_band = d == 0 ? kl : kh;
      const int recv_band = d == 0 ? kH : kL;  // at the receiving side
      // Our outgoing chunk list (storage order) and, in the same traversal
      // order, the receiver-side ordinals it lands in.
      struct Piece {
        int send_o, recv_o;
      };
      std::vector<Piece> pieces;
      for (std::size_t o = 0; o < dec.regions().size(); ++o) {
        const auto& b = bands[o];
        if (b[static_cast<std::size_t>(a)] != send_band) continue;
        bool eligible = true;
        for (int c = a + 1; c < D; ++c)
          if (b[static_cast<std::size_t>(c)] == kL ||
              b[static_cast<std::size_t>(c)] == kH)
            eligible = false;
        if (!eligible) continue;
        if (chunks[o].bytes == 0) continue;
        auto rb = b;
        rb[static_cast<std::size_t>(a)] = recv_band;
        const auto it = by_bands.find(band_key<D>(rb));
        BX_CHECK(it != by_bands.end(), "missing mirror ghost chunk");
        pieces.push_back(Piece{static_cast<int>(o), it->second});
      }
      // Merge into runs contiguous on BOTH sides so each message is a
      // plain range at the sender and the receiver.
      const int to_rank = axis_neighbor_ranks[static_cast<std::size_t>(a)]
                                             [static_cast<std::size_t>(d)];
      const int from_rank =
          axis_neighbor_ranks[static_cast<std::size_t>(a)]
                             [static_cast<std::size_t>(1 - d)];
      int run = 0;
      std::size_t i = 0;
      while (i < pieces.size()) {
        std::size_t j = i + 1;
        auto send_end = [&](std::size_t p) {
          const auto& c = chunks[static_cast<std::size_t>(pieces[p].send_o)];
          return c.offset + c.bytes;
        };
        auto recv_end = [&](std::size_t p) {
          const auto& c = chunks[static_cast<std::size_t>(pieces[p].recv_o)];
          return c.offset + c.bytes;
        };
        while (j < pieces.size() &&
               chunks[static_cast<std::size_t>(pieces[j].send_o)].offset ==
                   send_end(j - 1) &&
               chunks[static_cast<std::size_t>(pieces[j].recv_o)].offset ==
                   recv_end(j - 1))
          ++j;
        const auto& sfirst =
            chunks[static_cast<std::size_t>(pieces[i].send_o)];
        const auto& rfirst =
            chunks[static_cast<std::size_t>(pieces[i].recv_o)];
        const std::size_t bytes = send_end(j - 1) - sfirst.offset;
        BX_CHECK(bytes == recv_end(j - 1) - rfirst.offset,
                 "shift run sizes disagree between peers");
        // Tag space: phase, direction, run. The receiver matches the
        // sender's (same-phase, same-direction) tags.
        const int tag = (a * 2 + d) * 64 + run;
        phase.sends.push_back(Wire{to_rank, tag, sfirst.offset, bytes});
        phase.recvs.push_back(Wire{from_rank, tag, rfirst.offset, bytes});
        ++run;
        i = j;
      }
      BX_CHECK(run <= 64, "tag space too small for shift runs");
      cost_.regions += static_cast<std::int64_t>(dec.regions().size());
    }
    cost_.messages += static_cast<std::int64_t>(
        phases_[static_cast<std::size_t>(a)].sends.size() +
        phases_[static_cast<std::size_t>(a)].recvs.size());
  }
}

template <int D>
void ShiftExchanger<D>::make_persistent(mpi::Comm& comm) {
  BX_CHECK(!psets_[0].bound(),
           "shift exchanger already bound to persistent requests");
  for (int a = 0; a < D; ++a) {
    const Phase& phase = phases_[static_cast<std::size_t>(a)];
    PersistentSet& ps = psets_[static_cast<std::size_t>(a)];
    for (const Wire& w : phase.recvs)
      ps.add_recv(
          comm.recv_init(storage_->data() + w.offset, w.bytes, w.rank, w.tag));
    for (const Wire& w : phase.sends)
      ps.add_send(
          comm.send_init(storage_->data() + w.offset, w.bytes, w.rank, w.tag));
    ps.mark_bound();
  }
}

template <int D>
void ShiftExchanger<D>::exchange(mpi::Comm& comm) {
  if (psets_[0].bound()) {
    for (PersistentSet& ps : psets_) {
      ps.start_all();
      // Phases are dependent: corner data forwarded in phase a+1 must have
      // arrived in phase a.
      ps.wait_all();
    }
    return;
  }
  for (const Phase& phase : phases_) {
    std::vector<mpi::Request> pending;
    pending.reserve(phase.sends.size() + phase.recvs.size());
    for (const Wire& w : phase.recvs)
      pending.push_back(
          comm.irecv(storage_->data() + w.offset, w.bytes, w.rank, w.tag));
    for (const Wire& w : phase.sends)
      pending.push_back(
          comm.isend(storage_->data() + w.offset, w.bytes, w.rank, w.tag));
    // Phases are dependent: corner data forwarded in phase a+1 must have
    // arrived in phase a.
    comm.waitall(pending);
  }
}

template <int D>
std::int64_t ShiftExchanger<D>::send_message_count() const {
  std::int64_t n = 0;
  for (const Phase& p : phases_)
    n += static_cast<std::int64_t>(p.sends.size());
  return n;
}

template <int D>
std::int64_t ShiftExchanger<D>::send_byte_count() const {
  std::int64_t n = 0;
  for (const Phase& p : phases_)
    for (const Wire& w : p.sends) n += static_cast<std::int64_t>(w.bytes);
  return n;
}

template class ShiftExchanger<2>;
template class ShiftExchanger<3>;

}  // namespace brickx
