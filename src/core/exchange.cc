#include "core/exchange.h"

#include "common/error.h"

namespace brickx {

namespace {
// Tag space: per (direction, run index). 32 exceeds the maximum possible
// runs per direction (3^D - 1 regions) for D <= 3 and keeps tags unique
// even when several directions map to the same peer rank (small periodic
// grids).
constexpr int kRunTagStride = 32;
}  // namespace

template <int D>
std::vector<int> populate(const mpi::Cart<D>& cart,
                          const BrickDecomp<D>& dec) {
  std::vector<int> ranks;
  ranks.reserve(dec.neighbor_order().size());
  for (const BitSet& dir : dec.neighbor_order())
    ranks.push_back(cart.neighbor(dir));
  return ranks;
}

template std::vector<int> populate<1>(const mpi::Cart<1>&,
                                      const BrickDecomp<1>&);
template std::vector<int> populate<2>(const mpi::Cart<2>&,
                                      const BrickDecomp<2>&);
template std::vector<int> populate<3>(const mpi::Cart<3>&,
                                      const BrickDecomp<3>&);
template std::vector<int> populate<4>(const mpi::Cart<4>&,
                                      const BrickDecomp<4>&);

template <int D>
std::vector<std::vector<int>> plan_send_groups(const BrickDecomp<D>& dec,
                                               const BrickStorage& storage,
                                               const BitSet& dir, bool merge) {
  std::vector<std::vector<int>> groups;
  const auto& chunks = storage.chunks();
  std::size_t run_end = 0;
  for (int o = 0; o < dec.surface_region_count(); ++o) {
    const auto& region = dec.regions()[static_cast<std::size_t>(o)];
    if (!region_sent_to(region.sigma, dir)) continue;
    const auto& c = chunks[static_cast<std::size_t>(o)];
    if (c.bytes == 0) continue;  // empty region (no middle band)
    const bool extends =
        merge && !groups.empty() && c.offset == run_end;
    if (extends) {
      groups.back().push_back(o);
    } else {
      groups.push_back({o});
    }
    run_end = c.offset + c.bytes;
  }
  return groups;
}

template std::vector<std::vector<int>> plan_send_groups<1>(
    const BrickDecomp<1>&, const BrickStorage&, const BitSet&, bool);
template std::vector<std::vector<int>> plan_send_groups<2>(
    const BrickDecomp<2>&, const BrickStorage&, const BitSet&, bool);
template std::vector<std::vector<int>> plan_send_groups<3>(
    const BrickDecomp<3>&, const BrickStorage&, const BitSet&, bool);
template std::vector<std::vector<int>> plan_send_groups<4>(
    const BrickDecomp<4>&, const BrickStorage&, const BitSet&, bool);

template <int D>
Exchanger<D>::Exchanger(const BrickDecomp<D>& dec, BrickStorage& storage,
                        const std::vector<int>& neighbor_ranks, Mode mode)
    : storage_(&storage) {
  const auto& nbrs = dec.neighbor_order();
  BX_CHECK(neighbor_ranks.size() == nbrs.size(),
           "neighbor rank table does not match the decomposition");
  BX_CHECK(storage.chunks().size() == dec.regions().size(),
           "storage was not allocated from this decomposition");
  const bool merge = mode == Mode::Layout;
  const auto& chunks = storage.chunks();

  // Sends: for each direction, runs of surface chunks. Each scan over the
  // region table and each message built is one-time plan work, tallied into
  // the plan's setup cost.
  for (std::size_t v = 0; v < nbrs.size(); ++v) {
    plan_.cost.regions += dec.surface_region_count();
    const auto groups = plan_send_groups(dec, storage, nbrs[v], merge);
    BX_CHECK(static_cast<int>(groups.size()) <= kRunTagStride,
             "tag space too small for run count");
    for (std::size_t k = 0; k < groups.size(); ++k) {
      const auto& g = groups[k];
      const auto& first = chunks[static_cast<std::size_t>(g.front())];
      const auto& last = chunks[static_cast<std::size_t>(g.back())];
      plan_.sends.push_back(PlanWire{neighbor_ranks[v],
                                     static_cast<int>(v) * kRunTagStride +
                                         static_cast<int>(k),
                                     first.offset,
                                     last.offset + last.bytes - first.offset});
      send_regions_.push_back(g);
    }
  }

  // Receives: ghost chunks for source direction ν arrive split exactly the
  // way the sender (our neighbor at ν, same decomposition) splits its sends
  // toward flip(ν).
  for (std::size_t v = 0; v < nbrs.size(); ++v) {
    const BitSet& nu = nbrs[v];
    // The sender (our neighbor at ν) addresses us as its neighbor flip(ν);
    // its tags are based on that direction's ordinal.
    const BitSet from_dir = nu.flipped();
    const int from_v = dec.neighbor_ordinal(from_dir);
    // Our ghost chunks for ν, keyed by the sender's surface signature.
    auto ghost_ordinal = [&](const BitSet& sigma) {
      for (std::size_t o = static_cast<std::size_t>(dec.ghost_first_ordinal());
           o < dec.regions().size(); ++o) {
        const auto& r = dec.regions()[o];
        if (r.nu == nu && r.sigma == sigma) return static_cast<int>(o);
      }
      brickx::fail("ghost chunk not found for (nu, sigma)");
    };
    plan_.cost.regions += dec.surface_region_count();
    const auto groups = plan_send_groups(dec, storage, from_dir, merge);
    for (std::size_t k = 0; k < groups.size(); ++k) {
      const auto& g = groups[k];
      std::size_t expect = 0;
      for (int o : g)
        expect += chunks[static_cast<std::size_t>(o)].bytes;
      const int first_go = ghost_ordinal(
          dec.regions()[static_cast<std::size_t>(g.front())].sigma);
      const int last_go = ghost_ordinal(
          dec.regions()[static_cast<std::size_t>(g.back())].sigma);
      const auto& first = chunks[static_cast<std::size_t>(first_go)];
      const auto& last = chunks[static_cast<std::size_t>(last_go)];
      const std::size_t span = last.offset + last.bytes - first.offset;
      BX_CHECK(span == expect,
               "ghost chunk group is not contiguous where the sender merged");
      plan_.recvs.push_back(PlanWire{neighbor_ranks[v],
                                     from_v * kRunTagStride +
                                         static_cast<int>(k),
                                     first.offset, span});
      std::vector<int> ghosts;
      ghosts.reserve(g.size());
      for (int o : g) {
        const int go =
            ghost_ordinal(dec.regions()[static_cast<std::size_t>(o)].sigma);
        BX_CHECK(chunks[static_cast<std::size_t>(go)].bytes ==
                     chunks[static_cast<std::size_t>(o)].bytes,
                 "ghost chunk size disagrees with the sender's surface chunk");
        ghosts.push_back(go);
      }
      recv_regions_.push_back(std::move(ghosts));
    }
  }
  plan_.cost.messages +=
      static_cast<std::int64_t>(plan_.sends.size() + plan_.recvs.size());
}

template <int D>
void Exchanger<D>::make_persistent(mpi::Comm& comm) {
  BX_CHECK(!pset_.bound(), "exchanger already bound to persistent requests");
  BX_CHECK(pending_.empty(), "cannot bind while an exchange is in flight");
  for (const PlanWire& w : plan_.recvs)
    pset_.add_recv(
        comm.recv_init(storage_->data() + w.offset, w.bytes, w.rank, w.tag));
  for (const PlanWire& w : plan_.sends)
    pset_.add_send(
        comm.send_init(storage_->data() + w.offset, w.bytes, w.rank, w.tag));
  pset_.mark_bound();
}

template <int D>
void Exchanger<D>::make_partitioned(mpi::Comm& comm) {
  BX_CHECK(!part_.bound(), "exchanger already bound to partitioned requests");
  BX_CHECK(!pset_.bound(),
           "persistent and partitioned bindings are mutually exclusive");
  BX_CHECK(pending_.empty(), "cannot bind while an exchange is in flight");
  const auto& chunks = storage_->chunks();
  auto sizes_of = [&](const std::vector<int>& regions) {
    std::vector<std::size_t> sizes;
    sizes.reserve(regions.size());
    for (int o : regions)
      sizes.push_back(chunks[static_cast<std::size_t>(o)].bytes);
    return sizes;
  };
  for (std::size_t i = 0; i < plan_.recvs.size(); ++i) {
    const PlanWire& w = plan_.recvs[i];
    auto sizes = sizes_of(recv_regions_[i]);
    part_.add_recv(comm.precv_init(storage_->data() + w.offset, w.bytes,
                                   w.rank, w.tag, sizes),
                   recv_regions_[i], sizes);
  }
  for (std::size_t i = 0; i < plan_.sends.size(); ++i) {
    const PlanWire& w = plan_.sends[i];
    auto sizes = sizes_of(send_regions_[i]);
    part_.add_send(comm.psend_init(storage_->data() + w.offset, w.bytes,
                                   w.rank, w.tag, sizes),
                   send_regions_[i], sizes);
  }
  part_.mark_bound();
}

template <int D>
void Exchanger<D>::start(mpi::Comm& comm) {
  BX_CHECK(pending_.empty(), "previous exchange still in flight");
  if (pset_.bound()) {
    pset_.start_all();
    return;
  }
  pending_.reserve(plan_.sends.size() + plan_.recvs.size());
  for (const PlanWire& w : plan_.recvs)
    pending_.push_back(
        comm.irecv(storage_->data() + w.offset, w.bytes, w.rank, w.tag));
  for (const PlanWire& w : plan_.sends)
    pending_.push_back(
        comm.isend(storage_->data() + w.offset, w.bytes, w.rank, w.tag));
}

template <int D>
void Exchanger<D>::finish(mpi::Comm& comm) {
  if (pset_.bound()) {
    pset_.wait_all();
    return;
  }
  comm.waitall(pending_);
}

template <int D>
std::int64_t Exchanger<D>::send_byte_count() const {
  std::int64_t n = 0;
  for (const PlanWire& w : plan_.sends) n += static_cast<std::int64_t>(w.bytes);
  return n;
}

template class Exchanger<1>;
template class Exchanger<2>;
template class Exchanger<3>;
template class Exchanger<4>;

template <int D>
NetworkFloorExchanger<D>::NetworkFloorExchanger(
    const BrickDecomp<D>& dec, const BrickStorage& storage,
    const std::vector<int>& neighbor_ranks, bool padded) {
  const auto& nbrs = dec.neighbor_order();
  BX_CHECK(neighbor_ranks.size() == nbrs.size(),
           "neighbor rank table does not match the decomposition");
  // Per neighbor: one message of the exact payload volume, staged in a
  // contiguous scratch area (so neither side pays packing or extra
  // messages: the floor the paper measures as "Network").
  std::size_t total = 0;
  std::vector<std::size_t> send_bytes(nbrs.size(), 0);
  for (std::size_t v = 0; v < nbrs.size(); ++v) {
    plan_.cost.regions += dec.surface_region_count();
    for (const auto& g : plan_send_groups(dec, storage, nbrs[v], true))
      for (int o : g) {
        const auto& c = storage.chunks()[static_cast<std::size_t>(o)];
        send_bytes[v] += padded ? c.padded_bytes : c.bytes;
      }
    total += 2 * send_bytes[v];  // send half + recv half
  }
  scratch_.resize(total ? total : 1);
  std::size_t at = 0;
  for (std::size_t v = 0; v < nbrs.size(); ++v) {
    if (send_bytes[v] == 0) continue;
    plan_.sends.push_back(
        PlanWire{neighbor_ranks[v], static_cast<int>(v), at, send_bytes[v]});
    at += send_bytes[v];
    // The matching receive has the same volume by symmetry of the
    // decomposition (neighbor at ν sends toward flip(ν), same geometry).
    const int from_tag = dec.neighbor_ordinal(nbrs[v].flipped());
    plan_.recvs.push_back(
        PlanWire{neighbor_ranks[v], from_tag, at, send_bytes[v]});
    at += send_bytes[v];
  }
  plan_.cost.messages +=
      static_cast<std::int64_t>(plan_.sends.size() + plan_.recvs.size());
}

template <int D>
void NetworkFloorExchanger<D>::make_persistent(mpi::Comm& comm) {
  BX_CHECK(!pset_.bound(), "exchanger already bound to persistent requests");
  BX_CHECK(pending_.empty(), "cannot bind while an exchange is in flight");
  for (const PlanWire& w : plan_.recvs)
    pset_.add_recv(
        comm.recv_init(scratch_.data() + w.offset, w.bytes, w.rank, w.tag));
  for (const PlanWire& w : plan_.sends)
    pset_.add_send(
        comm.send_init(scratch_.data() + w.offset, w.bytes, w.rank, w.tag));
  pset_.mark_bound();
}

template <int D>
void NetworkFloorExchanger<D>::start(mpi::Comm& comm) {
  BX_CHECK(pending_.empty(), "previous exchange still in flight");
  if (pset_.bound()) {
    pset_.start_all();
    return;
  }
  for (const PlanWire& w : plan_.recvs)
    pending_.push_back(
        comm.irecv(scratch_.data() + w.offset, w.bytes, w.rank, w.tag));
  for (const PlanWire& w : plan_.sends)
    pending_.push_back(
        comm.isend(scratch_.data() + w.offset, w.bytes, w.rank, w.tag));
}

template <int D>
void NetworkFloorExchanger<D>::finish(mpi::Comm& comm) {
  if (pset_.bound()) {
    pset_.wait_all();
    return;
  }
  comm.waitall(pending_);
}

template <int D>
std::int64_t NetworkFloorExchanger<D>::send_byte_count() const {
  std::int64_t n = 0;
  for (const PlanWire& w : plan_.sends) n += static_cast<std::int64_t>(w.bytes);
  return n;
}

template class NetworkFloorExchanger<1>;
template class NetworkFloorExchanger<2>;
template class NetworkFloorExchanger<3>;
template class NetworkFloorExchanger<4>;

}  // namespace brickx
