#pragma once

#include <cstdint>
#include <vector>

#include "common/bitset.h"

namespace brickx {

/// A communication-optimized storage order of the 3^D - 1 surface regions
/// (the paper's Section 3). The permutation determines how many messages a
/// pack-free ghost-zone exchange needs: regions consecutive in storage that
/// share a destination ride in one message.
struct LayoutSpec {
  std::vector<BitSet> order;

  [[nodiscard]] int dims() const;
  /// Position of signature σ in the order; -1 if absent.
  [[nodiscard]] int position(const BitSet& sigma) const;
  /// True iff `order` is a permutation of all_surface_signatures(dims).
  [[nodiscard]] bool valid(int dims) const;
};

/// Eq. 2: number of neighbors of a D-dimensional subdomain = 3^D - 1.
/// This is also MemMap's message count (one per neighbor).
std::int64_t neighbor_count(int dims);

/// Eq. 3: Basic approach (one message per (region, neighbor) instance)
/// = 5^D - 3^D.
std::int64_t basic_message_count(int dims);

/// Eq. 1: the paper's lower bound on Layout messages
/// = 5^D/3 + (-1)^D/6 + 1/2, an integer for all D >= 1.
std::int64_t layout_message_lower_bound(int dims);

/// Number of messages a given surface order needs: for every neighbor ν,
/// the number of maximal runs of consecutive positions whose region is sent
/// to ν, summed over all 3^D - 1 neighbors. (Canonical count: all regions
/// assumed non-empty.)
std::int64_t message_count(const LayoutSpec& layout, int dims);

/// The paper's optimized layouts, provided as library constants:
/// surface1d (2 messages), surface2d (9 messages, Figure 3), surface3d
/// (42 messages, Section 3.2). Each achieves the Eq. 1 lower bound.
const LayoutSpec& surface1d();
const LayoutSpec& surface2d();
const LayoutSpec& surface3d();

/// The Basic (unoptimized) reference order: plain enumeration order, which
/// makes no contiguity promises; used with per-region messages.
LayoutSpec lexicographic_layout(int dims);

/// Search for a low-message layout: exhaustive for D <= 2, randomized
/// hill-climbing with restarts otherwise. Returns the best layout found
/// within `budget` candidate evaluations (guaranteed optimal only for
/// D <= 2). Deterministic for a fixed seed.
LayoutSpec optimize_layout(int dims, std::int64_t budget = 200000,
                           std::uint64_t seed = 1);

}  // namespace brickx
