#pragma once

// The persistent-exchange plan layer: every exchanger freezes its message
// schedule once per configuration into an ExchangePlan (region lists,
// per-message wires, committed datatype programs, resolved view spans) and
// replays it each round. PlanCost models the one-time schedule-building
// work — what a real MPI code amortizes with MPI_Send_init/MPI_Recv_init
// and MPI_Type_commit — so the harness can report a setup vs steady-state
// split. PersistentSet carries the simmpi persistent requests a plan was
// bound to; replaying them funnels into the exact isend/irecv paths, so a
// bound exchange round is bit-identical to an ad-hoc one (see DESIGN.md §9).

#include <cstdint>
#include <utility>
#include <vector>

#include "simmpi/comm.h"
#include "simmpi/netmodel.h"

namespace brickx {

/// One frozen point-to-point message of a byte-range exchanger: a plain
/// (peer, tag, storage span) — the unit both the Layout/Basic exchangers
/// and the network-floor reference replay.
struct PlanWire {
  int rank;            ///< peer
  int tag;
  std::size_t offset;  ///< into the exchanger's storage / scratch
  std::size_t bytes;
};

/// Tally of the schedule-building work behind one exchange plan. Charged to
/// the virtual clock via seconds(): once per configuration in build-once
/// mode, once per round when replanning is forced (the abl_persistent
/// ablation). The categories mirror where real setup time goes: region-list
/// scans, per-message argument marshalling/request init, MPI_Type_commit
/// block walks, and mmap view-span resolution.
struct PlanCost {
  std::int64_t regions = 0;        ///< surface regions scanned
  std::int64_t messages = 0;       ///< messages initialized (send + recv)
  std::int64_t dt_blocks = 0;      ///< datatype blocks committed
  std::int64_t mmap_segments = 0;  ///< mmap view segments resolved

  [[nodiscard]] double seconds(const mpi::NetModel& m) const {
    return static_cast<double>(regions) * m.plan_region_overhead +
           static_cast<double>(messages) * m.plan_msg_overhead +
           static_cast<double>(dt_blocks) * m.dt_commit_overhead +
           static_cast<double>(mmap_segments) * m.mmap_segment_overhead;
  }

  PlanCost& operator+=(const PlanCost& o) {
    regions += o.regions;
    messages += o.messages;
    dt_blocks += o.dt_blocks;
    mmap_segments += o.mmap_segments;
    return *this;
  }
};

/// A frozen byte-range exchange schedule: the wires to post each round plus
/// the modeled cost of having built them. Exchangers whose messages are not
/// plain byte ranges (datatype, staged, view-backed) keep their own wire
/// representation and carry only the PlanCost.
struct ExchangePlan {
  std::vector<PlanWire> sends, recvs;
  PlanCost cost;
};

/// The persistent requests one plan was bound to, in replay order: receives
/// first, then sends — matching the ad-hoc post order — and waited in the
/// same order, matching waitall over a recvs-then-sends pending list.
/// Destroying the set while a round is in flight (a faulted exchange) is
/// safe; the abandoned rounds die with their shared state.
class PersistentSet {
 public:
  /// True once a plan has been bound (even one with zero messages — a
  /// single-rank exchange replays as a no-op rather than falling back).
  [[nodiscard]] bool bound() const { return bound_; }
  [[nodiscard]] std::int64_t size() const {
    return static_cast<std::int64_t>(recvs_.size() + sends_.size());
  }

  void add_recv(mpi::Persistent p) {
    recvs_.push_back(std::move(p));
    bound_ = true;
  }
  void add_send(mpi::Persistent p) {
    sends_.push_back(std::move(p));
    bound_ = true;
  }
  /// Bind an empty plan (no messages to replay).
  void mark_bound() { bound_ = true; }

  void start_all() {
    for (auto& p : recvs_) p.start();
    for (auto& p : sends_) p.start();
  }
  void wait_all() {
    for (auto& p : recvs_) p.wait();
    for (auto& p : sends_) p.wait();
  }

  void reset() {
    recvs_.clear();
    sends_.clear();
    bound_ = false;
  }

 private:
  std::vector<mpi::Persistent> recvs_, sends_;
  bool bound_ = false;
};

/// One partition of one partitioned wire, flattened across the whole plan:
/// `wire` indexes the exchanger's send (or recv) wire list, `part` is the
/// partition index within that wire, `region` is the surface (send side) or
/// ghost (recv side) region ordinal whose bytes the partition carries. The
/// exchangers guarantee one region per partition in both directions, so the
/// dependency scheduler can key partitions directly by region ordinal.
struct PartSpec {
  int wire;           ///< index into the exchanger's wire list
  int part;           ///< partition index within that wire
  int region;         ///< source surface / destination ghost region ordinal
  std::size_t bytes;  ///< partition payload size
};

/// The partitioned requests one plan was bound to, plus the flattened
/// partition tables the dependency scheduler walks. Start order is receives
/// first, then sends — matching the ad-hoc post order — and finish() waits
/// receives before sends so leftover (never-consumed) arrivals are drained
/// at the same flush points as a bulk waitall. Partitions are addressed by
/// flattened index into send_parts()/recv_parts().
class PartitionedSet {
 public:
  [[nodiscard]] bool bound() const { return bound_; }
  [[nodiscard]] const std::vector<PartSpec>& send_parts() const {
    return send_parts_;
  }
  [[nodiscard]] const std::vector<PartSpec>& recv_parts() const {
    return recv_parts_;
  }

  /// Adopt one partitioned send wire; `regions[i]` is the surface region
  /// ordinal partition i carries and `sizes[i]` its byte count.
  void add_send(mpi::Partitioned p, const std::vector<int>& regions,
                const std::vector<std::size_t>& sizes) {
    const int w = static_cast<int>(sends_.size());
    for (std::size_t i = 0; i < regions.size(); ++i)
      send_parts_.push_back(PartSpec{w, static_cast<int>(i), regions[i],
                                     sizes[i]});
    sends_.push_back(std::move(p));
    bound_ = true;
  }
  /// Adopt one partitioned recv wire; same contract with ghost regions.
  void add_recv(mpi::Partitioned p, const std::vector<int>& regions,
                const std::vector<std::size_t>& sizes) {
    const int w = static_cast<int>(recvs_.size());
    for (std::size_t i = 0; i < regions.size(); ++i)
      recv_parts_.push_back(PartSpec{w, static_cast<int>(i), regions[i],
                                     sizes[i]});
    recvs_.push_back(std::move(p));
    bound_ = true;
  }
  /// Bind an empty plan (no messages — single-rank exchanges replay as
  /// no-ops rather than falling back to the bulk path).
  void mark_bound() { bound_ = true; }

  /// Open a round on every wire: recv starts first, then send starts. No
  /// payload moves until individual partitions are readied.
  void start_all() {
    for (auto& p : recvs_) p.start();
    for (auto& p : sends_) p.start();
  }
  /// Mark send partition `j` (flattened index) ready for injection.
  void pready(int j) {
    const PartSpec& s = send_parts_[static_cast<std::size_t>(j)];
    sends_[static_cast<std::size_t>(s.wire)].pready(s.part);
  }
  /// Block until recv partition `j` (flattened index) has landed. Returns
  /// true when the data was already there (the wait was fully hidden).
  bool arrived(int j) {
    const PartSpec& s = recv_parts_[static_cast<std::size_t>(j)];
    return recvs_[static_cast<std::size_t>(s.wire)].arrived(s.part);
  }
  /// Close the round: drain leftover recv partitions, then complete sends.
  void finish() {
    for (auto& p : recvs_) p.wait();
    for (auto& p : sends_) p.wait();
  }

  void reset() {
    recvs_.clear();
    sends_.clear();
    send_parts_.clear();
    recv_parts_.clear();
    bound_ = false;
  }

 private:
  std::vector<mpi::Partitioned> recvs_, sends_;
  std::vector<PartSpec> send_parts_, recv_parts_;
  bool bound_ = false;
};

}  // namespace brickx
