#pragma once

#include <cstdint>
#include <vector>

#include "core/decomp.h"
#include "core/exchange_plan.h"
#include "memmap/view.h"
#include "simmpi/comm.h"

namespace brickx {

/// The MemMap exchange (paper Section 4): for every neighbor, a contiguous
/// *virtual* view of the (scattered, overlapping) regions it needs is
/// stitched with mmap, so the whole per-neighbor payload travels as exactly
/// one plain message — 3^D - 1 sends per rank, zero packing, zero copies.
///
/// Requires storage from BrickDecomp::mmap_alloc (memfd-backed, chunks
/// padded to page boundaries). The views are built once and reused for the
/// life of the communication pattern.
template <int D>
class ExchangeView {
 public:
  ExchangeView(const BrickDecomp<D>& dec, BrickStorage& storage,
               const std::vector<int>& neighbor_ranks);

  /// Bind every view wire to a persistent request; later rounds replay via
  /// Persistent::start/wait on the resolved view spans.
  void make_persistent(mpi::Comm& comm);
  [[nodiscard]] bool persistent() const { return pset_.bound(); }

  /// Bind every view wire to a *partitioned* request with one partition per
  /// padded region chunk in the view (surface chunks on the send side,
  /// ghost chunks on the receive side), for the dependency scheduler.
  /// Mutually exclusive with make_persistent.
  void make_partitioned(mpi::Comm& comm);
  [[nodiscard]] bool partitioned() const { return part_.bound(); }

  [[nodiscard]] const std::vector<PartSpec>& send_parts() const {
    return part_.send_parts();
  }
  [[nodiscard]] const std::vector<PartSpec>& recv_parts() const {
    return part_.recv_parts();
  }
  void part_start() { part_.start_all(); }
  void part_pready(int j) { part_.pready(j); }
  bool part_arrived(int j) { return part_.arrived(j); }
  void part_finish() { part_.finish(); }

  void start(mpi::Comm& comm);
  void finish(mpi::Comm& comm);
  void exchange(mpi::Comm& comm) {
    start(comm);
    finish(comm);
  }

  /// Modeled cost of building this plan: mmap view-span resolution
  /// dominates (one entry per live segment), plus per-message init.
  [[nodiscard]] PlanCost setup_cost() const;

  /// Always 3^D - 1 (minus neighbors with empty payload).
  [[nodiscard]] std::int64_t send_message_count() const {
    return static_cast<std::int64_t>(sends_.size());
  }
  /// Bytes actually sent (page-padded views).
  [[nodiscard]] std::int64_t send_byte_count() const;
  /// Useful payload bytes within those views.
  [[nodiscard]] std::int64_t payload_byte_count() const {
    return payload_bytes_;
  }
  /// Table 2's "increased network transfer from padding", in percent.
  [[nodiscard]] double padding_overhead_percent() const;

  /// mmap segments this rank holds live (counts against vm.max_map_count).
  [[nodiscard]] std::int64_t view_segment_count() const;

  /// Visit every underlying view (sends then receives) — used to register
  /// unified-memory aliases with the GPU simulator.
  template <typename F>
  void visit_views(F&& fn) const {
    for (const VWire& w : sends_) fn(w.view);
    for (const VWire& w : recvs_) fn(w.view);
  }

 private:
  struct VWire {
    int rank;
    int tag;
    mm::View view;
  };
  std::vector<VWire> sends_, recvs_;
  PersistentSet pset_;
  PartitionedSet part_;
  // Region ordinals and page-padded byte counts carried by each wire,
  // aligned with sends_/recvs_ — the partition tables for make_partitioned.
  std::vector<std::vector<int>> send_regions_, recv_regions_;
  std::vector<std::vector<std::size_t>> send_sizes_, recv_sizes_;
  std::vector<mpi::Request> pending_;
  std::int64_t payload_bytes_ = 0;
  std::int64_t scanned_regions_ = 0;
};

}  // namespace brickx
