#pragma once

#include <cstdint>
#include <vector>

#include "core/decomp.h"
#include "core/exchange_plan.h"
#include "simmpi/cart.h"
#include "simmpi/comm.h"

namespace brickx {

/// Neighbor ranks indexed like BrickDecomp::neighbor_order() — the paper's
/// `populate(cart, bDecomp, ...)` step.
template <int D>
std::vector<int> populate(const mpi::Cart<D>& cart, const BrickDecomp<D>& dec);

/// Pack-free ghost-zone exchange operating directly on brick storage:
/// every message is a plain (pointer, length) range of storage — no staging
/// buffers, no pack/unpack.
///
///  * Mode::Layout merges regions consecutive in storage that share a
///    destination (42 messages in 3D with surface3d()).
///  * Mode::Basic sends each (region, neighbor) instance separately
///    (98 messages in 3D) — the unoptimized reference from Section 3.2.
///
/// The message schedule is frozen once at construction into an
/// ExchangePlan (the pattern is Static) and replayed each timestep — either
/// ad hoc (fresh isend/irecv per round) or, after make_persistent(), over
/// persistent requests. Both replay paths are bit-identical in exchanged
/// bytes, counters and virtual time.
template <int D>
class Exchanger {
 public:
  enum class Mode { Layout, Basic };

  /// `neighbor_ranks` comes from populate(). The storage must have been
  /// allocated from `dec` (chunk geometry must match).
  Exchanger(const BrickDecomp<D>& dec, BrickStorage& storage,
            const std::vector<int>& neighbor_ranks, Mode mode);

  /// Bind the frozen plan to persistent requests on `comm`: every wire gets
  /// a Comm::send_init/recv_init, and subsequent rounds replay via
  /// Persistent::start/wait. Call at most once, before any exchange round
  /// is in flight.
  void make_persistent(mpi::Comm& comm);
  [[nodiscard]] bool persistent() const { return pset_.bound(); }

  /// Bind the frozen plan to *partitioned* requests (MPI 4.0 psend/precv
  /// style): every wire becomes one partitioned request with one partition
  /// per surface (send side) / ghost (recv side) region in the wire. The
  /// dependency scheduler then readies each partition as its source bricks
  /// finish and waits only on the partitions a consuming brick needs.
  /// Mutually exclusive with make_persistent; call before any round is in
  /// flight.
  void make_partitioned(mpi::Comm& comm);
  [[nodiscard]] bool partitioned() const { return part_.bound(); }

  /// Partitioned-round operations (valid only after make_partitioned).
  /// Partitions are addressed by flattened index into send_parts() /
  /// recv_parts(); each PartSpec names the region ordinal it carries.
  [[nodiscard]] const std::vector<PartSpec>& send_parts() const {
    return part_.send_parts();
  }
  [[nodiscard]] const std::vector<PartSpec>& recv_parts() const {
    return part_.recv_parts();
  }
  void part_start() { part_.start_all(); }
  void part_pready(int j) { part_.pready(j); }
  bool part_arrived(int j) { return part_.arrived(j); }
  void part_finish() { part_.finish(); }

  /// Post receives then sends (paper's communication start).
  void start(mpi::Comm& comm);
  /// Complete all pending requests.
  void finish(mpi::Comm& comm);
  /// start + finish.
  void exchange(mpi::Comm& comm) {
    start(comm);
    finish(comm);
  }

  /// The frozen schedule and the modeled cost of building it.
  [[nodiscard]] const ExchangePlan& plan() const { return plan_; }
  [[nodiscard]] PlanCost setup_cost() const { return plan_.cost; }

  /// Messages sent per exchange by this rank (Fig. 4 / Table 1 accounting).
  [[nodiscard]] std::int64_t send_message_count() const {
    return static_cast<std::int64_t>(plan_.sends.size());
  }
  [[nodiscard]] std::int64_t send_byte_count() const;

  /// Visit the planned receive ranges as (peer rank, byte offset into
  /// storage, byte length). Lets the write-set tests prove at the *plan*
  /// level that every ghost byte has exactly one writer — overlapping
  /// receives could otherwise hide behind page padding or identical data.
  template <typename F>
  void visit_recv_ranges(F&& fn) const {
    for (const PlanWire& w : plan_.recvs) fn(w.rank, w.offset, w.bytes);
  }

 private:
  BrickStorage* storage_;
  ExchangePlan plan_;
  PersistentSet pset_;
  PartitionedSet part_;
  // Region ordinals carried by each wire, aligned with plan_.sends /
  // plan_.recvs — the partition tables for make_partitioned.
  std::vector<std::vector<int>> send_regions_, recv_regions_;
  std::vector<mpi::Request> pending_;
};

/// The empirical minimum-communication reference ("Network" in Figs. 9/14):
/// per neighbor, one message of the same total payload, sent from a
/// contiguous scratch buffer with no packing cost. Timing-only — it moves
/// scratch bytes, not the domain data.
template <int D>
class NetworkFloorExchanger {
 public:
  /// With `padded` set, per-neighbor volumes use the storage's page-padded
  /// chunk sizes — making the floor byte-identical to a MemMap view
  /// exchange. This doubles as a MemMap timing proxy when per-view mmap
  /// segments would exceed vm.max_map_count (large in-process rank counts;
  /// see DESIGN.md).
  NetworkFloorExchanger(const BrickDecomp<D>& dec, const BrickStorage& storage,
                        const std::vector<int>& neighbor_ranks,
                        bool padded = false);

  /// Bind the per-neighbor scratch wires to persistent requests.
  void make_persistent(mpi::Comm& comm);
  [[nodiscard]] bool persistent() const { return pset_.bound(); }

  void start(mpi::Comm& comm);
  void finish(mpi::Comm& comm);
  void exchange(mpi::Comm& comm) {
    start(comm);
    finish(comm);
  }

  [[nodiscard]] const ExchangePlan& plan() const { return plan_; }
  [[nodiscard]] PlanCost setup_cost() const { return plan_.cost; }

  [[nodiscard]] std::int64_t send_message_count() const {
    return static_cast<std::int64_t>(plan_.sends.size());
  }
  [[nodiscard]] std::int64_t send_byte_count() const;

 private:
  std::vector<std::byte> scratch_;
  ExchangePlan plan_;
  PersistentSet pset_;
  std::vector<mpi::Request> pending_;
};

/// Internal helper shared by the exchangers and tests: the per-message
/// grouping of surface-region ordinals sent toward `dir`, as maximal runs
/// of byte-contiguous chunks in `storage` ((merge == false) disables run
/// merging, yielding the Basic grouping).
template <int D>
std::vector<std::vector<int>> plan_send_groups(const BrickDecomp<D>& dec,
                                               const BrickStorage& storage,
                                               const BitSet& dir, bool merge);

}  // namespace brickx
