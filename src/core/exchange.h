#pragma once

#include <cstdint>
#include <vector>

#include "core/decomp.h"
#include "simmpi/cart.h"
#include "simmpi/comm.h"

namespace brickx {

/// Neighbor ranks indexed like BrickDecomp::neighbor_order() — the paper's
/// `populate(cart, bDecomp, ...)` step.
template <int D>
std::vector<int> populate(const mpi::Cart<D>& cart, const BrickDecomp<D>& dec);

/// Pack-free ghost-zone exchange operating directly on brick storage:
/// every message is a plain (pointer, length) range of storage — no staging
/// buffers, no pack/unpack.
///
///  * Mode::Layout merges regions consecutive in storage that share a
///    destination (42 messages in 3D with surface3d()).
///  * Mode::Basic sends each (region, neighbor) instance separately
///    (98 messages in 3D) — the unoptimized reference from Section 3.2.
///
/// Messages are planned once at construction and replayed each timestep
/// (the pattern is Static).
template <int D>
class Exchanger {
 public:
  enum class Mode { Layout, Basic };

  /// `neighbor_ranks` comes from populate(). The storage must have been
  /// allocated from `dec` (chunk geometry must match).
  Exchanger(const BrickDecomp<D>& dec, BrickStorage& storage,
            const std::vector<int>& neighbor_ranks, Mode mode);

  /// Post receives then sends (paper's communication start).
  void start(mpi::Comm& comm);
  /// Complete all pending requests.
  void finish(mpi::Comm& comm);
  /// start + finish.
  void exchange(mpi::Comm& comm) {
    start(comm);
    finish(comm);
  }

  /// Messages sent per exchange by this rank (Fig. 4 / Table 1 accounting).
  [[nodiscard]] std::int64_t send_message_count() const {
    return static_cast<std::int64_t>(sends_.size());
  }
  [[nodiscard]] std::int64_t send_byte_count() const;

  /// Visit the planned receive ranges as (peer rank, byte offset into
  /// storage, byte length). Lets the write-set tests prove at the *plan*
  /// level that every ghost byte has exactly one writer — overlapping
  /// receives could otherwise hide behind page padding or identical data.
  template <typename F>
  void visit_recv_ranges(F&& fn) const {
    for (const Wire& w : recvs_) fn(w.rank, w.offset, w.bytes);
  }

 private:
  struct Wire {
    int rank;            ///< peer
    int tag;
    std::size_t offset;  ///< into storage
    std::size_t bytes;
  };
  BrickStorage* storage_;
  std::vector<Wire> sends_, recvs_;
  std::vector<mpi::Request> pending_;
};

/// The empirical minimum-communication reference ("Network" in Figs. 9/14):
/// per neighbor, one message of the same total payload, sent from a
/// contiguous scratch buffer with no packing cost. Timing-only — it moves
/// scratch bytes, not the domain data.
template <int D>
class NetworkFloorExchanger {
 public:
  /// With `padded` set, per-neighbor volumes use the storage's page-padded
  /// chunk sizes — making the floor byte-identical to a MemMap view
  /// exchange. This doubles as a MemMap timing proxy when per-view mmap
  /// segments would exceed vm.max_map_count (large in-process rank counts;
  /// see DESIGN.md).
  NetworkFloorExchanger(const BrickDecomp<D>& dec, const BrickStorage& storage,
                        const std::vector<int>& neighbor_ranks,
                        bool padded = false);

  void start(mpi::Comm& comm);
  void finish(mpi::Comm& comm);
  void exchange(mpi::Comm& comm) {
    start(comm);
    finish(comm);
  }

  [[nodiscard]] std::int64_t send_message_count() const {
    return static_cast<std::int64_t>(sends_.size());
  }
  [[nodiscard]] std::int64_t send_byte_count() const;

 private:
  struct Wire {
    int rank;
    int tag;
    std::size_t offset;
    std::size_t bytes;
  };
  std::vector<std::byte> scratch_;
  std::vector<Wire> sends_, recvs_;
  std::vector<mpi::Request> pending_;
};

/// Internal helper shared by the exchangers and tests: the per-message
/// grouping of surface-region ordinals sent toward `dir`, as maximal runs
/// of byte-contiguous chunks in `storage` ((merge == false) disables run
/// merging, yielding the Basic grouping).
template <int D>
std::vector<std::vector<int>> plan_send_groups(const BrickDecomp<D>& dec,
                                               const BrickStorage& storage,
                                               const BitSet& dir, bool merge);

}  // namespace brickx
