#include "harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "baseline/array_exchange.h"
#include "common/error.h"
#include "core/brick.h"
#include "core/cell_array.h"
#include "core/exchange.h"
#include "core/exchange_view.h"
#include "core/shift.h"
#include "gpusim/device.h"
#include "obs/obs.h"
#include "obs/session.h"
#include "simmpi/cart.h"
#include "stencil/stencils.h"

namespace brickx::harness {

namespace {

using mpi::Cart;
using mpi::Comm;

/// Deterministic initial condition shared by every method and the
/// reference, keyed on *global* cell coordinates. Field f > 0 salts the
/// hash so coupled fields carry distinct data; f == 0 reproduces the
/// historical single-field value bit-exactly.
double init_val(const Vec3& g, int f = 0) {
  const std::uint64_t h = static_cast<std::uint64_t>(g[0]) * 73856093u ^
                          static_cast<std::uint64_t>(g[1]) * 19349663u ^
                          static_cast<std::uint64_t>(g[2]) * 83492791u ^
                          static_cast<std::uint64_t>(f) * 2654435761u;
  return static_cast<double>(h % 4096) / 4096.0;
}

/// RAII for ranges registered with the GPU simulator by one rank.
class GpuRegs {
 public:
  explicit GpuRegs(gpu::Device* dev) : dev_(dev) {}
  void range(const void* base, std::size_t bytes, mpi::MemSpace space) {
    if (!dev_ || bytes == 0) return;
    dev_->register_range(base, bytes, space);
    bases_.push_back(base);
  }
  void alias(const void* base, std::size_t bytes, const void* canonical) {
    if (!dev_ || bytes == 0) return;
    dev_->register_alias(base, bytes, canonical);
    bases_.push_back(base);
  }
  ~GpuRegs() {
    for (auto it = bases_.rbegin(); it != bases_.rend(); ++it)
      dev_->unregister_range(*it);
  }

 private:
  gpu::Device* dev_;
  std::vector<const void*> bases_;
};

struct RankOut {
  double calc = 0, pack = 0, call = 0, wait = 0, span = 0;
  double setup = 0, replan = 0;  ///< plan-build time (see DESIGN.md §9)
  std::int64_t msgs = 0, wire = 0, payload = 0;
  std::int64_t builds = 0;  ///< exchange-plan constructions on this rank
  double padding = 0;
  bool validated = false;
};

void compute_bricks(const Config& cfg, const BrickDecomp<3>& dec,
                    const BrickInfo<3>& info, BrickStorage& in,
                    BrickStorage& out, const Box<3>& box) {
  auto go = [&](auto tag) {
    constexpr int B = decltype(tag)::value;
    // AoSoA: field f lives at element offset f * B^3 within every brick
    // chunk; each field runs the same kernel over the same adjacency.
    for (int f = 0; f < in.fields(); ++f) {
      const std::int64_t off = f * dec.elements_per_brick();
      Brick<B, B, B> bin(&info, &in, off);
      Brick<B, B, B> bout(&info, &out, off);
      if (cfg.use125) {
        if (cfg.naive_kernels) {
          stencil::apply125_bricks_naive<B, B, B>(dec, bout, bin, box);
        } else {
          stencil::apply125_bricks<B, B, B>(dec, bout, bin, box);
        }
      } else if (cfg.naive_kernels) {
        stencil::apply7_bricks_naive<B, B, B>(dec, bout, bin, box);
      } else {
        stencil::apply7_bricks<B, B, B>(dec, bout, bin, box);
      }
    }
  };
  if (cfg.brick == 8) {
    go(std::integral_constant<int, 8>{});
  } else if (cfg.brick == 4) {
    go(std::integral_constant<int, 4>{});
  } else {
    brickx::fail("harness kernels support brick extents 4 and 8");
  }
}

}  // namespace

std::vector<netsim::CommEdge> exchange_comm_graph(const Config& cfg) {
  const int nranks = static_cast<int>(cfg.rank_dims.prod());
  std::vector<netsim::CommEdge> edges;
  edges.reserve(static_cast<std::size_t>(nranks) * 26);
  for (int r = 0; r < nranks; ++r) {
    const Vec3 c = delinearize(r, cfg.rank_dims);
    for (int dz = -1; dz <= 1; ++dz)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0 && dz == 0) continue;
          const Vec3 d{dx, dy, dz};
          Vec3 nc = c + d;
          for (int i = 0; i < 3; ++i)
            nc[i] = ((nc[i] % cfg.rank_dims[i]) + cfg.rank_dims[i]) %
                    cfg.rank_dims[i];
          const int n = static_cast<int>(linearize(nc, cfg.rank_dims));
          if (n == r) continue;  // periodic self-neighbor on a size-1 axis
          double w = 8.0;  // doubles on the wire
          for (int i = 0; i < 3; ++i)
            w *= static_cast<double>(d[i] == 0 ? cfg.subdomain[i] : cfg.ghost);
          edges.push_back(netsim::CommEdge{r, n, w});
        }
  }
  return edges;
}

const char* method_name(Method m) {
  switch (m) {
    case Method::Yask:
      return "YASK";
    case Method::MpiTypes:
      return "MPI_Types";
    case Method::Basic:
      return "Basic";
    case Method::Layout:
      return "Layout";
    case Method::MemMap:
      return "MemMap";
    case Method::Shift:
      return "Shift";
    case Method::Network:
      return "Network";
  }
  return "?";
}

Result run(const Config& cfg) {
  const int nranks = static_cast<int>(cfg.rank_dims.prod());
  BX_CHECK(nranks >= 1, "empty rank grid");
  const bool is_brick = cfg.method == Method::Basic ||
                        cfg.method == Method::Layout ||
                        cfg.method == Method::MemMap ||
                        cfg.method == Method::Shift ||
                        cfg.method == Method::Network;
  BX_CHECK(cfg.layout.order.empty() || cfg.layout.valid(3),
           "Config::layout must be a valid 3-D region layout (every "
           "3-D surface signature exactly once)");
  BX_CHECK(cfg.fields >= 1, "Config::fields must be positive");
  BX_CHECK(cfg.fields == 1 || cfg.gpu == GpuMode::None,
           "multi-field runs are CPU-only (GPU range accounting assumes one "
           "field per storage)");
  BX_CHECK(cfg.gpu == GpuMode::None || cfg.machine.is_gpu,
           "GPU modes require a GPU machine model");
  BX_CHECK(!(cfg.method == Method::MemMap && cfg.gpu == GpuMode::CudaAware &&
             !cfg.machine.gpu.supports_cumemmap),
           "cudaMalloc memory does not support MemMap (paper Section 5; "
           "use summit_future() for the cuMemMap ablation)");
  BX_CHECK(!(cfg.method == Method::Yask && cfg.gpu != GpuMode::None &&
             cfg.gpu != GpuMode::Staged),
           "the packing baseline supports CPU runs and manual GPU staging");
  BX_CHECK(!(cfg.gpu == GpuMode::Staged && cfg.method != Method::Yask),
           "manual staging is the packing baseline's workflow");
  BX_CHECK(!cfg.overlap ||
               (is_brick && cfg.method != Method::Shift &&
                cfg.method != Method::Network && !cfg.memmap_floor_proxy),
           "overlap is supported for the Basic/Layout/MemMap brick methods");
  BX_CHECK(!(cfg.overlap && cfg.plan == PlanMode::PerRound),
           "overlap requires a build-once plan: the dependency scheduler "
           "binds partitioned requests, which freeze the wire schedule");
  BX_CHECK(!(cfg.plan == PlanMode::PerRound && cfg.gpu != GpuMode::None),
           "the plan-per-round ablation is CPU-only (rebuilding exchangers "
           "would churn the GPU range registrations)");

  // The node model must be coherent with the world size before any fabric
  // (flat or routed) derives node assignments from it.
  const int rpn = cfg.machine.net.ranks_per_node;
  BX_CHECK(rpn >= 1, "machine.net.ranks_per_node must be positive");
  if (nranks % rpn != 0)
    std::fprintf(stderr,
                 "harness: warning: world size %d is not a multiple of "
                 "ranks_per_node %d; the last node runs underfilled\n",
                 nranks, rpn);
  BX_CHECK(!(cfg.transport == transport::Kind::ShmAgg && rpn == 1),
           "transport=shm-agg requires ranks_per_node > 1: with one rank "
           "per node there are no co-located ranks to aggregate, so every "
           "frame would carry a single message (use transport=flat or a "
           "machine model with ranks_per_node > 1)");

  mpi::Runtime rt(nranks, cfg.machine.net);
  rt.set_transport(cfg.transport);
  if (cfg.fabric != netsim::FabricKind::Flat) {
    // Split the flat inter-node alpha across the two hops every fabric
    // route has at minimum, so an uncongested single-switch path costs
    // exactly what the flat model charges.
    const mpi::LinkParams inter = cfg.machine.net.inter_node;
    rt.set_fabric(netsim::make_fabric(
        cfg.fabric, cfg.mapping, nranks, rpn, inter.bw, inter.alpha / 2.0,
        inter.alpha, exchange_comm_graph(cfg),
        {static_cast<int>(cfg.rank_dims[0]), static_cast<int>(cfg.rank_dims[1]),
         static_cast<int>(cfg.rank_dims[2])}));
  }
  // Seeded message-fault schedule (off by default: no injector installed,
  // so the runtime skips the integrity layer entirely and behavior is
  // byte-identical to fault-free builds).
  std::optional<mpi::FaultInjector> faults;
  if (cfg.faults.any()) {
    faults.emplace(cfg.faults);
    rt.set_fault_injector(&*faults);
  }
  // Span/metric sink for this experiment; every rank thread binds to its
  // RankLog inside rt.run. A no-op null sink when BRICKX_OBS is off.
  obs::Collector col(nranks);
  rt.set_collector(&col);
  std::optional<gpu::Device> device;
  if (cfg.gpu != GpuMode::None) {
    device.emplace(cfg.machine.gpu);
    rt.set_mem_hooks(device->hooks());
  }

  const bool execute = cfg.execute_kernels && cfg.method != Method::Network &&
                       !cfg.memmap_floor_proxy;
  const bool validate = cfg.validate && execute;

  std::vector<RankOut> outs(static_cast<std::size_t>(nranks));

  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, cfg.rank_dims);
    const Vec3 N = cfg.subdomain;
    const std::int64_t g = cfg.ghost;
    const std::int64_t r = cfg.use125 ? 2 : 1;
    const std::int64_t k = stencil::steps_per_exchange(g, r);
    const double flops =
        cfg.use125 ? stencil::Stencil125::kFlops : stencil::Stencil7::kFlops;
    constexpr double kBytesPerCell = 16.0;  // one read + one write stream
    const Vec3 offset = cart.coords() * N;
    const Vec3 global_ext = cfg.rank_dims * N;
    const mpi::MemSpace space = cfg.gpu == GpuMode::CudaAware
                                    ? mpi::MemSpace::Device
                                    : mpi::MemSpace::Unified;
    const bool staged = cfg.gpu == GpuMode::Staged;

    GpuRegs regs(device ? &*device : nullptr);
    RankOut out;

    BX_CHECK(!cfg.overlap || k >= 2,
             "overlap needs at least two steps per exchange (ghost >= "
             "2 * stencil radius) so a producer step exists to hide behind");

    // ---- storage, exchangers, compute closure per family ------------------
    std::function<void()> pack_fn, start_fn, finish_fn, unpack_fn;
    std::function<void(const Box<3>&)> compute_fn;
    // Overlap-scheduler hooks (brick methods only): partitioned-round
    // control plus a piece-compute variant that prices one step's
    // region-by-region sweep as a single fused sweep.
    std::function<void(const Box<3>&, bool)> compute_piece_fn;
    std::function<void()> pstart_fn, pfinish_fn;
    std::function<void(int)> pready_fn;
    std::function<bool(int)> parrived_fn;
    std::function<const std::vector<PartSpec>*()> psend_tbl_fn, precv_tbl_fn;
    std::function<double()> host_pack_seconds;  // modeled on-node movement
    std::function<bool()> validate_fn;
    // Plan lifetime hooks, set per family below: bind_fn binds the frozen
    // plan(s) to persistent requests (BuildOnce); rebuild_fn reconstructs
    // the exchanger the upcoming round uses (PerRound); plan_cost_fn
    // returns the modeled cost of one plan build. replan_fn composes them.
    std::function<void()> bind_fn, rebuild_fn, replan_fn;
    std::function<PlanCost()> plan_cost_fn;
    int plan_copies = 1;  ///< plans built up front (2 for double-buffered)
    int input = 0;  // double-buffer selector

    // Brick family state.
    std::optional<BrickDecomp<3>> dec;
    std::optional<BrickInfo<3>> info;
    std::vector<BrickStorage> stores;
    std::vector<Exchanger<3>> exs;
    std::vector<ExchangeView<3>> evs;
    std::vector<ShiftExchanger<3>> shs;
    std::optional<NetworkFloorExchanger<3>> floor;
    // Array family state (afields replaces fields when cfg.fields > 1).
    std::vector<CellArray3> fields;
    std::vector<ArrayFields> afields;
    std::optional<baseline::PackExchanger> packer;
    std::optional<baseline::MpiTypesExchanger> typer;

    if (is_brick) {
      dec.emplace(N, g, Vec3::fill(cfg.brick),
                  !cfg.layout.order.empty()
                      ? cfg.layout
                      : (cfg.lexicographic_layout ? lexicographic_layout(3)
                                                  : surface3d()));
      info.emplace(dec->brick_info());
      // MemMap over unified memory must align chunks to the *UM* page size
      // (64 KiB on Power9/ATS) — that alignment is what spares its compute
      // from fault backwash (Figure 15).
      std::size_t ps = cfg.page_size;
      if (ps == 0 && cfg.gpu != GpuMode::None)
        ps = cfg.machine.gpu.page_size;
      for (int f = 0; f < 2; ++f)
        stores.push_back(cfg.method == Method::MemMap
                             ? dec->mmap_alloc(cfg.fields, ps)
                             : dec->allocate(cfg.fields));
      const auto ranks = populate(cart, *dec);
      for (auto& s : stores) {
        if (cfg.gpu != GpuMode::None)
          regs.range(s.data(), s.bytes(), space);
      }
      if (cfg.method == Method::MemMap && cfg.memmap_floor_proxy) {
        // Byte-identical MemMap stand-in without live mmap segments.
        // Accounting comes straight from the chunk table (building real
        // views here would defeat the proxy's purpose).
        floor.emplace(*dec, stores[0], ranks, /*padded=*/true);
        for (const BitSet& nu : dec->neighbor_order()) {
          std::int64_t wire = 0, payload = 0;
          for (int o = 0; o < dec->surface_region_count(); ++o) {
            const auto& rg = dec->regions()[static_cast<std::size_t>(o)];
            if (!region_sent_to(rg.sigma, nu)) continue;
            const auto& c = stores[0].chunks()[static_cast<std::size_t>(o)];
            wire += static_cast<std::int64_t>(c.padded_bytes);
            payload += static_cast<std::int64_t>(c.bytes);
          }
          if (wire > 0) ++out.msgs;
          out.wire += wire;
          out.payload += payload;
        }
        out.padding = out.payload
                          ? 100.0 * static_cast<double>(out.wire - out.payload) /
                                static_cast<double>(out.payload)
                          : 0.0;
        BX_CHECK(out.wire == floor->send_byte_count(),
                 "floor proxy volume does not match the view exchange");
        // Under unified memory the real views would fault the canonical
        // chunk pages host-ward on send/receive; the scratch-based floor
        // bypasses the hooks, so charge those touches explicitly to keep
        // the proxy timing-faithful (page-aligned spans, so no
        // fragmentation — exactly like the views).
        start_fn = [&] {
          if (cfg.gpu == GpuMode::Unified) {
            double secs = 0;
            for (int o = 0; o < dec->surface_region_count(); ++o) {
              const auto& c = stores[0].chunks()[static_cast<std::size_t>(o)];
              secs += device->touch_host(stores[0].data() + c.offset,
                                         c.padded_bytes);
            }
            comm.compute(secs);
          }
          floor->start(comm);
        };
        finish_fn = [&] {
          floor->finish(comm);
          if (cfg.gpu == GpuMode::Unified) {
            double secs = 0;
            for (std::size_t o =
                     static_cast<std::size_t>(dec->ghost_first_ordinal());
                 o < dec->regions().size(); ++o) {
              const auto& c = stores[0].chunks()[o];
              secs += device->touch_host(stores[0].data() + c.offset,
                                         c.padded_bytes);
            }
            comm.compute(secs);
          }
        };
        bind_fn = [&] { floor->make_persistent(comm); };
        // ranks is block-local: rebuild closures outlive it, so copy it in.
        rebuild_fn = [&, ranks] {
          floor.emplace(*dec, stores[0], ranks, /*padded=*/true);
        };
        plan_cost_fn = [&] { return floor->setup_cost(); };
      } else if (cfg.method == Method::MemMap) {
        // Ghost-cell expansion gives an even steps-per-exchange, so only
        // stores[0] is ever on the exchanging side; building views for it
        // alone halves the live mmap-segment footprint.
        BX_CHECK(stencil::steps_per_exchange(g, r) % 2 == 0,
                 "MemMap double buffering expects an even exchange period");
        evs.emplace_back(*dec, stores[0], ranks);
        if (cfg.gpu == GpuMode::Unified) {
          // Views alias the canonical unified pages.
          evs.back().visit_views([&](const mm::View& v) {
            for (const auto& seg : v.segment_map())
              regs.alias(v.data() + seg.view_offset, seg.length,
                         stores[0].data() + seg.file_offset);
          });
        } else if (cfg.gpu == GpuMode::CudaAware) {
          // cuMemMap future-work mode: the views are device memory too, so
          // the NIC reads them via GPUDirect with no faults.
          evs.back().visit_views([&](const mm::View& v) {
            regs.range(v.data(), v.size(), mpi::MemSpace::Device);
          });
        }
        out.msgs = evs[0].send_message_count();
        out.wire = evs[0].send_byte_count();
        out.payload = evs[0].payload_byte_count();
        out.padding = evs[0].padding_overhead_percent();
        start_fn = [&] {
          BX_CHECK(input == 0, "exchange landed on the view-less buffer");
          evs[0].start(comm);
        };
        finish_fn = [&] { evs[0].finish(comm); };
        bind_fn = [&] {
          if (cfg.overlap) {
            evs[0].make_partitioned(comm);
          } else {
            evs[0].make_persistent(comm);
          }
        };
        if (cfg.overlap) {
          pstart_fn = [&] { evs[0].part_start(); };
          pfinish_fn = [&] { evs[0].part_finish(); };
          pready_fn = [&](int j) { evs[0].part_pready(j); };
          parrived_fn = [&](int j) { return evs[0].part_arrived(j); };
          psend_tbl_fn = [&] { return &evs[0].send_parts(); };
          precv_tbl_fn = [&] { return &evs[0].recv_parts(); };
        }
        rebuild_fn = [&, ranks] {
          // clear-then-emplace: tears down the old mmap views before
          // stitching fresh ones (PerRound is CPU-only, so no GPU aliases
          // need re-registering).
          evs.clear();
          evs.emplace_back(*dec, stores[0], ranks);
        };
        plan_cost_fn = [&] { return evs[0].setup_cost(); };
      } else if (cfg.method == Method::Shift) {
        const auto axis_ranks = shift_neighbors(cart);
        for (auto& st : stores) shs.emplace_back(*dec, st, axis_ranks);
        out.msgs = shs[0].send_message_count();
        out.wire = out.payload = shs[0].send_byte_count();
        // Shift's phases wait internally; attribute the whole exchange to
        // the wait phase via finish (start is a no-op).
        start_fn = [] {};
        finish_fn = [&] {
          shs[static_cast<std::size_t>(input)].exchange(comm);
        };
        bind_fn = [&] {
          for (auto& sh : shs) sh.make_persistent(comm);
        };
        rebuild_fn = [&, axis_ranks] {
          shs[static_cast<std::size_t>(input)] = ShiftExchanger<3>(
              *dec, stores[static_cast<std::size_t>(input)], axis_ranks);
        };
        plan_cost_fn = [&] { return shs[0].setup_cost(); };
        plan_copies = 2;
      } else if (cfg.method == Method::Network) {
        floor.emplace(*dec, stores[0], ranks);
        out.msgs = floor->send_message_count();
        out.wire = out.payload = floor->send_byte_count();
        start_fn = [&] { floor->start(comm); };
        finish_fn = [&] { floor->finish(comm); };
        bind_fn = [&] { floor->make_persistent(comm); };
        rebuild_fn = [&, ranks] { floor.emplace(*dec, stores[0], ranks); };
        plan_cost_fn = [&] { return floor->setup_cost(); };
      } else {
        const auto mode = cfg.method == Method::Layout
                              ? Exchanger<3>::Mode::Layout
                              : Exchanger<3>::Mode::Basic;
        for (auto& s : stores) exs.emplace_back(*dec, s, ranks, mode);
        out.msgs = exs[0].send_message_count();
        out.wire = out.payload = exs[0].send_byte_count();
        start_fn = [&] { exs[static_cast<std::size_t>(input)].start(comm); };
        finish_fn = [&] { exs[static_cast<std::size_t>(input)].finish(comm); };
        bind_fn = [&] {
          if (cfg.overlap) {
            // The exchange period is even, so exchanger 0 carries every
            // round on both the consumer (s == 0) and the producer
            // (s == k-1) side; exchanger 1 is never used under overlap.
            exs[0].make_partitioned(comm);
          } else {
            for (auto& ex : exs) ex.make_persistent(comm);
          }
        };
        if (cfg.overlap) {
          pstart_fn = [&] { exs[0].part_start(); };
          pfinish_fn = [&] { exs[0].part_finish(); };
          pready_fn = [&](int j) { exs[0].part_pready(j); };
          parrived_fn = [&](int j) { return exs[0].part_arrived(j); };
          psend_tbl_fn = [&] { return &exs[0].send_parts(); };
          precv_tbl_fn = [&] { return &exs[0].recv_parts(); };
        }
        rebuild_fn = [&, ranks, mode] {
          exs[static_cast<std::size_t>(input)] = Exchanger<3>(
              *dec, stores[static_cast<std::size_t>(input)], ranks, mode);
        };
        plan_cost_fn = [&] { return exs[0].setup_cost(); };
        plan_copies = 2;
      }

      // Initialize the input fields from global coordinates.
      CellArray3 seed(Box<3>{{0, 0, 0}, N});
      for (int f = 0; f < cfg.fields; ++f) {
        for_each(seed.box(), [&](const Vec3& p) {
          seed.at(p) = init_val(p + offset, f);
        });
        cells_to_bricks(*dec, seed, stores[0], f);
      }

      compute_fn = [&](const Box<3>& box) {
        if (execute)
          compute_bricks(cfg, *dec, *info,
                         stores[static_cast<std::size_t>(input)],
                         stores[static_cast<std::size_t>(1 - input)], box);
        double secs;
        if (cfg.gpu != GpuMode::None) {
          secs = device->kernel_seconds(box.volume(), flops, kBytesPerCell);
          // The kernel touches chunk *payloads* only: page-padding tails are
          // never read by compute, so they stay wherever the exchange left
          // them.
          for (int f = 0; f < 2; ++f) {
            BrickStorage& s = stores[static_cast<std::size_t>(f)];
            for (const auto& c : s.chunks())
              secs += device->touch_device(s.data() + c.offset, c.bytes);
          }
        } else {
          secs = model::cpu_stencil_seconds(cfg.machine,
                                            box.volume() * cfg.fields, flops,
                                            kBytesPerCell,
                                            cfg.method == Method::Yask);
        }
        comm.compute(secs);
      };

      // The scheduler's piece path: one step's region-by-region pieces form
      // a single fused sweep that publishes per-region completion, so the
      // fixed per-sweep cost (OpenMP fork/join on CPU, kernel launch on
      // GPU) and the per-chunk UM touch pass are charged once per step —
      // on the `first` piece — and later pieces cost marginal volume only.
      compute_piece_fn = [&](const Box<3>& box, bool first) {
        if (execute)
          compute_bricks(cfg, *dec, *info,
                         stores[static_cast<std::size_t>(input)],
                         stores[static_cast<std::size_t>(1 - input)], box);
        double secs;
        if (cfg.gpu != GpuMode::None) {
          secs = device->kernel_seconds(box.volume(), flops, kBytesPerCell);
          if (!first) secs -= cfg.machine.gpu.launch_overhead;
          if (first) {
            for (int f = 0; f < 2; ++f) {
              BrickStorage& st = stores[static_cast<std::size_t>(f)];
              for (const auto& c : st.chunks())
                secs += device->touch_device(st.data() + c.offset, c.bytes);
            }
          }
        } else {
          secs = model::cpu_stencil_seconds(cfg.machine,
                                            box.volume() * cfg.fields, flops,
                                            kBytesPerCell, false);
          if (!first) secs -= cfg.machine.sweep_overhead;
        }
        comm.compute(secs);
      };

      validate_fn = [&]() -> bool {
        const int total_steps =
            cfg.warmup_exchanges * static_cast<int>(k) + cfg.timesteps;
        for (int f = 0; f < cfg.fields; ++f) {
          CellArray3 got(Box<3>{{0, 0, 0}, N});
          bricks_to_cells(*dec, stores[static_cast<std::size_t>(input)], f,
                          got);
          CellArray3 ref(Box<3>{{0, 0, 0}, global_ext});
          for_each(ref.box(),
                   [&](const Vec3& p) { ref.at(p) = init_val(p, f); });
          stencil::evolve_reference(ref, total_steps, cfg.use125);
          std::int64_t bad = 0;
          for_each(got.box(), [&](const Vec3& p) {
            if (got.at(p) != ref.at(p + offset)) ++bad;
          });
          if (bad != 0) return false;
        }
        return true;
      };
    } else {
      // Array family (YASK / MPI_Types baselines). Multi-field runs use
      // contiguous field-major ArrayFields slabs so one message per
      // neighbor carries every field; fields == 1 keeps the historical
      // CellArray3 path byte-identical.
      const Box<3> frame{Vec3{0, 0, 0} - Vec3::fill(g), N + Vec3::fill(g)};
      if (cfg.fields > 1) {
        afields.emplace_back(frame, cfg.fields);
        afields.emplace_back(frame, cfg.fields);
      } else {
        fields.emplace_back(frame);
        fields.emplace_back(frame);
      }
      if (cfg.gpu != GpuMode::None && !staged) {
        for (auto& f : fields)
          regs.range(f.raw().data(), f.raw().size() * sizeof(double), space);
      }
      const auto dirs = Cart<3>::all_directions();
      std::vector<int> ranks;
      for (const auto& d : dirs) ranks.push_back(cart.neighbor(d));
      if (cfg.method == Method::Yask) {
        packer.emplace(N, g, dirs, ranks, cfg.fields);
        out.msgs = packer->send_message_count();
        out.wire = out.payload = packer->send_byte_count();
        // On-node cost per half-exchange: CPU runs price the strided
        // pack; manual GPU staging prices a bandwidth-bound pack kernel
        // plus shuttling the 26 packed buffers across the CPU-GPU link
        // (Section 5's motivating workflow).
        auto onnode_seconds = [&, staged](std::size_t bytes) {
          if (!staged)
            return model::pack_seconds(cfg.machine,
                                       static_cast<std::int64_t>(bytes), 26);
          const auto& gm = cfg.machine.gpu;
          const double b = static_cast<double>(bytes);
          return b / gm.hbm_bw + gm.launch_overhead  // pack kernel
                 + b / gm.link_bw + 26 * gm.launch_overhead;  // cudaMemcpy
        };
        // onnode_seconds is captured by value: it must outlive this block.
        pack_fn = [&, onnode_seconds] {
          const std::size_t b =
              cfg.fields > 1
                  ? packer->pack(afields[static_cast<std::size_t>(input)])
                  : packer->pack(fields[static_cast<std::size_t>(input)]);
          comm.compute(onnode_seconds(b));
        };
        start_fn = [&] { packer->start(comm); };
        finish_fn = [&] { packer->finish(comm); };
        unpack_fn = [&, onnode_seconds] {
          const std::size_t b =
              cfg.fields > 1
                  ? packer->unpack(afields[static_cast<std::size_t>(input)])
                  : packer->unpack(fields[static_cast<std::size_t>(input)]);
          comm.compute(onnode_seconds(b));
        };
        bind_fn = [&] { packer->make_persistent(comm); };
        // dirs/ranks are block-local; the rebuild closure outlives them.
        rebuild_fn = [&, dirs, ranks] {
          packer.emplace(N, g, dirs, ranks, cfg.fields);
        };
        plan_cost_fn = [&] { return packer->setup_cost(); };
      } else if (cfg.method == Method::MpiTypes) {
        if (cfg.fields > 1) {
          typer.emplace(N, g, dirs, ranks, afields[0]);
        } else {
          typer.emplace(N, g, dirs, ranks, fields[0]);
        }
        out.msgs = typer->send_message_count();
        out.wire = out.payload = typer->send_byte_count();
        start_fn = [&] {
          if (cfg.fields > 1) {
            typer->start(comm, afields[static_cast<std::size_t>(input)]);
          } else {
            typer->start(comm, fields[static_cast<std::size_t>(input)]);
          }
        };
        finish_fn = [&] { typer->finish(comm); };
        // Persistent MPI freezes the buffer address; binding to fields[0]
        // is safe because steps_per_exchange is always even, so every
        // exchange round lands on input == 0 (checked in start()).
        bind_fn = [&] {
          if (cfg.fields > 1) {
            typer->make_persistent(comm, afields[0]);
          } else {
            typer->make_persistent(comm, fields[0]);
          }
        };
        rebuild_fn = [&, dirs, ranks] {
          if (cfg.fields > 1) {
            typer.emplace(N, g, dirs, ranks, afields[0]);
          } else {
            typer.emplace(N, g, dirs, ranks, fields[0]);
          }
        };
        plan_cost_fn = [&] { return typer->setup_cost(); };
      } else {
        brickx::fail("unsupported array-family method");
      }

      if (cfg.fields > 1) {
        for (int f = 0; f < cfg.fields; ++f)
          for_each(afields[0].box(), [&](const Vec3& p) {
            // ghost seeds are overwritten by exchange
            afields[0].at(f, p) = init_val(p + offset, f);
          });
      } else {
        for_each(fields[0].box(), [&](const Vec3& p) {
          Vec3 q = p + offset;  // ghost seeds are overwritten by exchange
          fields[0].at(p) = init_val(q);
        });
      }

      compute_fn = [&](const Box<3>& box) {
        if (execute) {
          if (cfg.fields > 1) {
            // Field slabs are laid out exactly like a frame-shaped
            // CellArray3, so the span kernels run each field in place.
            auto* s125 = cfg.naive_kernels ? &stencil::apply125_span_naive
                                           : &stencil::apply125_span;
            auto* s7 = cfg.naive_kernels ? &stencil::apply7_span_naive
                                         : &stencil::apply7_span;
            ArrayFields& src = afields[static_cast<std::size_t>(input)];
            ArrayFields& dst = afields[static_cast<std::size_t>(1 - input)];
            for (int f = 0; f < cfg.fields; ++f)
              (cfg.use125 ? s125 : s7)(src.box(), src.field_base(f),
                                       dst.field_base(f), box);
          } else {
            auto* a125 = cfg.naive_kernels ? &stencil::apply125_array_naive
                                           : &stencil::apply125_array;
            auto* a7 = cfg.naive_kernels ? &stencil::apply7_array_naive
                                         : &stencil::apply7_array;
            (cfg.use125 ? a125 : a7)(
                fields[static_cast<std::size_t>(input)],
                fields[static_cast<std::size_t>(1 - input)], box);
          }
        }
        double secs;
        if (cfg.gpu != GpuMode::None) {
          // Staged fields are unregistered (plain host memory standing in
          // for device arrays), so touch_device is a no-op for them.
          secs = device->kernel_seconds(box.volume(), flops, kBytesPerCell);
          for (auto& f : fields)
            secs += device->touch_device(f.raw().data(),
                                         f.raw().size() * sizeof(double));
        } else {
          secs = model::cpu_stencil_seconds(cfg.machine,
                                            box.volume() * cfg.fields, flops,
                                            kBytesPerCell,
                                            cfg.method == Method::Yask);
        }
        comm.compute(secs);
      };

      validate_fn = [&]() -> bool {
        const int total_steps =
            cfg.warmup_exchanges * static_cast<int>(k) + cfg.timesteps;
        for (int f = 0; f < cfg.fields; ++f) {
          CellArray3 ref(Box<3>{{0, 0, 0}, global_ext});
          for_each(ref.box(),
                   [&](const Vec3& p) { ref.at(p) = init_val(p, f); });
          stencil::evolve_reference(ref, total_steps, cfg.use125);
          std::int64_t bad = 0;
          for_each(Box<3>{{0, 0, 0}, N}, [&](const Vec3& p) {
            const double got =
                cfg.fields > 1
                    ? afields[static_cast<std::size_t>(input)].at(f, p)
                    : fields[static_cast<std::size_t>(input)].at(p);
            if (got != ref.at(p + offset)) ++bad;
          });
          if (bad != 0) return false;
        }
        return true;
      };
    }

    // ---- plan lifetime (DESIGN.md §9) --------------------------------------
    if (cfg.plan == PlanMode::BuildOnce) {
      // Bind the frozen plan(s) to persistent requests and charge the
      // modeled one-time build cost now — before warmup and the barrier
      // below. The barrier equalizes every rank's clock, so measured
      // results stay byte-identical to pre-plan builds; the setup cost is
      // visible only through Result::setup_seconds and the trace.
      const double t0 = comm.clock().now();
      {
        obs::ObsSpan sp(obs::Cat::Setup, "plan_setup", -1);
        if (bind_fn) bind_fn();
        if (plan_cost_fn) {
          double secs = 0;
          for (int i = 0; i < plan_copies; ++i)
            secs += plan_cost_fn().seconds(comm.net());
          comm.compute(secs);
        }
      }
      out.setup = comm.clock().now() - t0;
      out.builds = plan_copies;
    } else {
      out.builds = plan_copies;  // the constructions above
      replan_fn = [&] {
        if (rebuild_fn) rebuild_fn();
        if (plan_cost_fn) comm.compute(plan_cost_fn().seconds(comm.net()));
        ++out.builds;
      };
    }

    // ---- the timestep loop -------------------------------------------------
    // Each phase is both delta-accumulated on the virtual clock (works with
    // obs compiled out) and wrapped in a step-tagged ObsSpan; after the loop
    // the obs build recomputes the phase totals from the spans (see
    // phase_sum) as a live cross-check that the trace carries the ground
    // truth — the two agree bit-exactly by construction.
    auto now = [&] { return comm.clock().now(); };
    // ---- overlap dependency-scheduler state --------------------------------
    // A partitioned exchange round spans two steps: the *producer* step
    // (s == k-1) opens the round and readies each outgoing partition as its
    // source surface region finishes computing, so boundary data flows
    // while the interior is still being produced; the *consumer* step
    // (s == 0, next round) computes ghost-free cells first and then waits
    // only on the partitions each shell piece actually reads.
    const int total_step_count =
        cfg.warmup_exchanges * static_cast<int>(k) + cfg.timesteps;
    int steps_done = 0;
    bool round_open = false;
    // Cell-coordinate box of region ordinal `o` (brick grid → cells; ghost
    // regions land in [-g, 0) ∪ [N, N+g) bands, matching the coordinates
    // the shell pieces read).
    auto region_cell_box = [&](int o) {
      const auto& rg = dec->regions()[static_cast<std::size_t>(o)];
      return Box<3>{rg.box.lo * dec->brick_dims(),
                    rg.box.hi * dec->brick_dims()};
    };
    auto boxes_overlap = [](const Box<3>& a, const Box<3>& b) {
      for (int i = 0; i < 3; ++i)
        if (a.lo[i] >= b.hi[i] || b.lo[i] >= a.hi[i]) return false;
      return true;
    };
    auto one_step = [&](int step, bool measured) {
      const std::int64_t s = step % k;
      // No producer step ahead of the last step overall, and none across
      // the warmup→measured barrier: pre-starting the first measured round
      // during (unmeasured) warmup would silently move its injection cost
      // out of the measured window. The first measured round cold-starts
      // at its s == 0 instead, exactly like the first warmup round.
      const bool last_warmup =
          ++steps_done == cfg.warmup_exchanges * static_cast<int>(k);
      const bool no_prestart = steps_done == total_step_count || last_warmup;
      // Measured steps tag spans with their timestep; warmup steps get
      // distinct ids -2, -3, ... so the critical-path analyzer can keep
      // per-step phase identity without them ever colliding with measured
      // steps (phase_sum and the exporters filter on step >= 0 / < 0, so
      // which negative id a warmup span carries is invisible to them).
      const std::int64_t id = measured ? step : -2 - step;
      if (s == 0 && replan_fn) {
        // PerRound ablation: tear down and rebuild this round's plan inside
        // the measured loop, charging the modeled build cost each time.
        const double r0 = now();
        {
          obs::ObsSpan sp(obs::Cat::Setup, "replan", id);
          replan_fn();
        }
        if (measured) out.replan += now() - r0;
      }
      if (s == 0 && cfg.overlap) {
        // Consumer side of a partitioned round. The round was normally
        // opened (and every partition readied) by the previous producer
        // step; the first round of the run cold-starts here instead, since
        // its boundary data came from initialization, not a prior step.
        const double t0 = now();
        if (!round_open) {
          obs::ObsSpan sp(obs::Cat::Call, "call", id);
          pstart_fn();
          const int nsend = static_cast<int>(psend_tbl_fn()->size());
          for (int j = 0; j < nsend; ++j) pready_fn(j);
          round_open = true;
        }
        const double t1 = now();
        // Interior outputs read no ghost data: compute them while the
        // remaining partitions are still in flight on the virtual clock.
        const Box<3> whole = stencil::expansion_output_box<3>(N, g, r, 0);
        const Box<3> interior{Vec3::fill(r), N - Vec3::fill(r)};
        {
          obs::ObsSpan sp(obs::Cat::Calc, "calc", id);
          compute_piece_fn(interior, /*first=*/true);
        }
        const double t2 = now();
        // Shell pieces wait only on the ghost partitions their stencil
        // footprint (piece expanded by the radius) actually reads.
        double shell_wait = 0, shell_calc = 0;
        const std::vector<PartSpec>& rp = *precv_tbl_fn();
        std::vector<char> consumed(rp.size(), 0);
        for (const Box<3>& b : stencil::shell_boxes<3>(whole, interior)) {
          const Box<3> need{b.lo - Vec3::fill(r), b.hi + Vec3::fill(r)};
          const double w0 = now();
          {
            obs::ObsSpan sp(obs::Cat::Wait, "wait", id);
            for (std::size_t j = 0; j < rp.size(); ++j) {
              if (consumed[j]) continue;
              if (!boxes_overlap(region_cell_box(rp[j].region), need))
                continue;
              parrived_fn(static_cast<int>(j));
              consumed[j] = 1;
            }
          }
          const double w1 = now();
          {
            obs::ObsSpan sp(obs::Cat::Calc, "calc", id);
            compute_piece_fn(b, /*first=*/false);
          }
          shell_wait += w1 - w0;
          shell_calc += now() - w1;
        }
        const double t3 = now();
        {
          obs::ObsSpan sp(obs::Cat::Wait, "wait", id);
          pfinish_fn();
          round_open = false;
        }
        const double t4 = now();
        if (measured) {
          out.call += t1 - t0;
          out.calc += (t2 - t1) + shell_calc;
          out.wait += shell_wait + (t4 - t3);
        }
        input = 1 - input;
        return;
      }
      if (s == k - 1 && cfg.overlap && !no_prestart) {
        // Producer side: open the next round up front (receives post
        // first), then compute this step's boundary regions one by one,
        // readying each outgoing partition the moment its source region is
        // done, and finish with the interior — which overlaps with every
        // partition already in flight.
        const double t0 = now();
        {
          obs::ObsSpan sp(obs::Cat::Call, "call", id);
          pstart_fn();
          round_open = true;
        }
        const double t1 = now();
        double prod_calc = 0, prod_call = 0;
        const std::vector<PartSpec>& sp_tbl = *psend_tbl_fn();
        bool first = true;
        for (int o = 0; o < dec->surface_region_count(); ++o) {
          const double c0 = now();
          {
            obs::ObsSpan sp(obs::Cat::Calc, "calc", id);
            compute_piece_fn(region_cell_box(o), first);
          }
          first = false;
          const double c1 = now();
          {
            obs::ObsSpan sp(obs::Cat::Call, "call", id);
            for (std::size_t j = 0; j < sp_tbl.size(); ++j)
              if (sp_tbl[j].region == o) pready_fn(static_cast<int>(j));
          }
          prod_calc += c1 - c0;
          prod_call += now() - c1;
        }
        {
          const double c0 = now();
          obs::ObsSpan sp(obs::Cat::Calc, "calc", id);
          compute_piece_fn(region_cell_box(dec->interior_ordinal()),
                           /*first=*/false);
          prod_calc += now() - c0;
        }
        if (measured) {
          out.call += (t1 - t0) + prod_call;
          out.calc += prod_calc;
        }
        input = 1 - input;
        return;
      }
      if (s == 0) {
        const double t0 = now();
        if (pack_fn) {
          obs::ObsSpan sp(obs::Cat::Pack, "pack", id);
          pack_fn();
        }
        const double t1 = now();
        {
          obs::ObsSpan sp(obs::Cat::Call, "call", id);
          start_fn();
        }
        const double t2 = now();
        {
          obs::ObsSpan sp(obs::Cat::Wait, "wait", id);
          finish_fn();
        }
        const double t3 = now();
        if (unpack_fn) {
          obs::ObsSpan sp(obs::Cat::Pack, "pack", id);
          unpack_fn();
        }
        const double t4 = now();
        if (measured) {
          out.pack += (t1 - t0) + (t4 - t3);
          out.call += t2 - t1;
          out.wait += t3 - t2;
        }
      }
      const double c0 = now();
      {
        obs::ObsSpan sp(obs::Cat::Calc, "calc", id);
        compute_fn(stencil::expansion_output_box<3>(N, g, r, s));
      }
      if (measured) out.calc += now() - c0;
      input = 1 - input;
    };

    for (int w = 0; w < cfg.warmup_exchanges; ++w)
      for (int s = 0; s < static_cast<int>(k); ++s)
        // Pass the global warmup ordinal so each warmup step's id is
        // unique; one_step's `step % k` recovers the within-round phase.
        one_step(w * static_cast<int>(k) + s, /*measured=*/false);
    comm.barrier();
    const double t_begin = now();
    for (int step = 0; step < cfg.timesteps; ++step)
      one_step(step, /*measured=*/true);
    out.span = comm.allreduce_max(now() - t_begin);

#if BRICKX_OBS
    // Recompute the phase totals from the recorded spans. phase_sum repeats
    // the per-step accumulation order of the deltas above, so this is
    // bit-exact with them — the trace *is* the measurement.
    {
      const obs::RankLog& lg = col.log(comm.rank());
      out.calc = obs::phase_sum(lg, obs::Cat::Calc, "calc");
      out.pack = obs::phase_sum(lg, obs::Cat::Pack, "pack");
      out.call = obs::phase_sum(lg, obs::Cat::Call, "call");
      out.wait = obs::phase_sum(lg, obs::Cat::Wait, "wait");
      // The one-time plan_setup span carries step = -1, so phase_sum only
      // sees the measured in-loop rebuilds — matching out.replan's deltas.
      out.replan = obs::phase_sum(lg, obs::Cat::Setup, "replan");
    }
#endif
    // Per-rank metrics into the obs registry (the thread is still bound).
    const double steps_d = static_cast<double>(cfg.timesteps);
    obs::counter_add("comm.msgs_sent", comm.counters().msgs_sent);
    obs::counter_add("comm.bytes_sent", comm.counters().bytes_sent);
    obs::counter_add("comm.msgs_recv", comm.counters().msgs_recv);
    obs::counter_add("comm.bytes_recv", comm.counters().bytes_recv);
    obs::gauge_max("comm.max_inflight_reqs",
                   static_cast<double>(comm.counters().max_inflight_reqs));
    obs::hist_add("harness.calc_s", out.calc / steps_d);
    obs::hist_add("harness.pack_s", out.pack / steps_d);
    obs::hist_add("harness.call_s", out.call / steps_d);
    obs::hist_add("harness.wait_s", out.wait / steps_d);
    obs::hist_add("harness.plan_setup_s", out.setup);
    obs::hist_add("harness.replan_s", out.replan / steps_d);
    obs::counter_add("plan.builds", out.builds);

    if (validate) out.validated = validate_fn();
    outs[static_cast<std::size_t>(comm.rank())] = out;
  });

  // ---- aggregate -----------------------------------------------------------
  Result res;
  const double steps = static_cast<double>(cfg.timesteps);
  bool all_valid = true;
  for (const RankOut& o : outs) {
    res.calc.add(o.calc / steps);
    res.pack.add(o.pack / steps);
    res.call.add(o.call / steps);
    res.wait.add(o.wait / steps);
    res.plan_setup.add(o.setup);
    res.replan_per_step += o.replan / steps / static_cast<double>(nranks);
    all_valid = all_valid && o.validated;
  }
  res.setup_seconds = res.plan_setup.avg();
  res.plan_builds_per_rank = outs[0].builds;
  res.total_seconds = outs[0].span;
  res.calc_per_step = res.calc.avg();
  res.comm_per_step = res.pack.avg() + res.call.avg() + res.wait.avg();
  res.gstencils = static_cast<double>(cfg.subdomain.prod()) * nranks * steps /
                  res.total_seconds / 1e9;
  res.msgs_per_rank = outs[0].msgs;
  res.wire_bytes_per_rank = outs[0].wire;
  res.payload_bytes_per_rank = outs[0].payload;
  res.padding_percent = outs[0].padding;
  res.msgs_recv_per_rank = rt.final_counters(0).msgs_recv;
  res.bytes_recv_per_rank = rt.final_counters(0).bytes_recv;
  res.msgs_intra_per_rank = rt.final_counters(0).msgs_intra;
  res.msgs_inter_per_rank = rt.final_counters(0).msgs_inter;
  res.bytes_intra_per_rank = rt.final_counters(0).bytes_intra;
  res.bytes_inter_per_rank = rt.final_counters(0).bytes_inter;
  res.transport_stats = rt.transport_stats();
  for (int rk = 0; rk < nranks; ++rk)
    res.max_inflight_reqs =
        std::max(res.max_inflight_reqs, rt.final_counters(rk).max_inflight_reqs);
  res.validated = validate && all_valid;
  if (faults) res.fault_counts = faults->counts();

  if (cfg.fabric != netsim::FabricKind::Flat) {
    // Fabric-level observability: only for routed fabrics, so the default
    // flat configuration's outputs (results, metrics, traces) stay
    // byte-identical to pre-netsim builds.
    const netsim::FabricStats fs = rt.fabric().stats();
    if (fs.fabric_messages > 0)
      res.avg_hops = static_cast<double>(fs.hop_sum) /
                     static_cast<double>(fs.fabric_messages);
    if (fs.messages > 0)
      res.queue_s_per_msg =
          fs.queue_seconds / static_cast<double>(fs.messages);
    res.max_link_sharing = fs.max_link_sharing;
    res.busiest_link_util = fs.busiest_link_util;
    res.fabric_msgs = fs.fabric_messages;
    obs::RankLog& lg = col.log(0);
    lg.counter_add("net.fabric_msgs", fs.fabric_messages);
    lg.counter_add("net.hop_sum", fs.hop_sum);
    lg.counter_add("net.links", fs.links);
    lg.gauge_max("net.max_link_sharing", fs.max_link_sharing);
    lg.gauge_max("net.busiest_link_util", fs.busiest_link_util);
    lg.hist_add("net.queue_s_per_msg", res.queue_s_per_msg);
  }

  if (cfg.transport != transport::Kind::Flat) {
    // Transport-tier observability; gated like the fabric block above so the
    // default flat transport's outputs stay byte-identical.
    const transport::Stats& ts = res.transport_stats;
    obs::RankLog& lg = col.log(0);
    lg.counter_add("transport.onnode_msgs", ts.onnode_msgs);
    lg.counter_add("transport.onnode_bytes", ts.onnode_bytes);
    lg.counter_add("transport.onnode_copies", ts.onnode_copies);
    lg.counter_add("transport.agg_frames", ts.agg_frames);
    lg.counter_add("transport.agg_submsgs", ts.agg_submsgs);
    lg.counter_add("transport.agg_frame_bytes", ts.agg_frame_bytes);
  }

  // Hand the experiment's trace to the active bench session (if any) under
  // a "Method/gpu" label.
  rt.set_collector(nullptr);
  if (obs::Session* ses = obs::Session::active()) {
    std::string label = method_name(cfg.method);
    switch (cfg.gpu) {
      case GpuMode::None:
        break;
      case GpuMode::CudaAware:
        label += "/cuda-aware";
        break;
      case GpuMode::Unified:
        label += "/um";
        break;
      case GpuMode::Staged:
        label += "/staged";
        break;
    }
    ses->absorb(std::move(label), std::move(col));
  }
  return res;
}

}  // namespace brickx::harness
