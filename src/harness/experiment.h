#pragma once

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "common/vec.h"
#include "core/layout.h"
#include "model/machine.h"
#include "netsim/fabric.h"
#include "netsim/mapping.h"
#include "simmpi/fault.h"
#include "transport/transport.h"

namespace brickx::harness {

/// The implementations the paper evaluates (Section 7), plus Shift — the
/// dimension-by-dimension alternative the paper's Section 8 describes as a
/// natural extension.
enum class Method {
  Yask,      ///< array layout + explicit packing, autotuned compute model
  MpiTypes,  ///< array layout + MPI derived datatypes (packing inside MPI)
  Basic,     ///< bricks, one message per (region, neighbor) instance
  Layout,    ///< bricks, run-merged pack-free messages (Section 3)
  MemMap,    ///< bricks, mmap views, one message per neighbor (Section 4)
  Shift,     ///< bricks, D synchronized phases, face neighbors only
  Network,   ///< timing floor: per-neighbor contiguous scratch messages
};

/// GPU data-movement mode (Section 5). None = CPU experiment.
enum class GpuMode {
  None,
  CudaAware,  ///< storage in (simulated) cudaMalloc memory; GPUDirect RDMA
  Unified,    ///< storage in unified memory; page-fault migration
  /// The pre-CUDA-Aware manual workflow the paper's Section 5 describes
  /// (and its reference [29] measured): pack on the GPU, cudaMemcpy the
  /// packed buffers to the host, run MPI there, and shuttle the results
  /// back. Only meaningful with the packing baseline (Method::Yask).
  Staged,
};

const char* method_name(Method m);

/// When an exchanger's frozen plan is built relative to the measured rounds
/// (the abl_persistent ablation axis; see DESIGN.md §9).
enum class PlanMode {
  /// Build the plan once before the measured loop, bind it to persistent
  /// requests, and replay it every round. The modeled setup cost is charged
  /// pre-measurement and reported separately (Result::setup_seconds).
  BuildOnce,
  /// Rebuild the plan at the start of every exchange round inside the
  /// measured loop — the plan-per-round strawman whose per-step cost lands
  /// in Result::replan_per_step.
  PerRound,
};

struct Config {
  model::Machine machine = model::theta();
  Vec3 rank_dims{2, 2, 2};   ///< process grid (prod == world size)
  Vec3 subdomain{32, 32, 32};  ///< cells per rank
  std::int64_t brick = 8;      ///< cubic brick extent (4 or 8)
  std::int64_t ghost = 8;      ///< ghost width in cells (multiple of brick)
  bool use125 = false;         ///< 125-point instead of 7-point stencil
  /// Coupled fields evolved together (DESIGN.md §16). Brick methods store
  /// them AoSoA inside each brick chunk and the array baselines as
  /// contiguous field-major slabs (ArrayFields), so EVERY exchanger moves
  /// all fields per neighbor in a single message — the per-round message
  /// count is field-count-invariant (bytes scale linearly). Each field
  /// evolves under the same stencil from a field-salted initial condition;
  /// field 0 reproduces the single-field run bit-exactly. CPU-only for
  /// fields > 1.
  int fields = 1;
  Method method = Method::MemMap;
  GpuMode gpu = GpuMode::None;
  int timesteps = 8;           ///< measured timesteps
  int warmup_exchanges = 1;    ///< unmeasured leading exchange batches
  std::size_t page_size = 0;   ///< emulated page size for MemMap (0 = host)
  bool execute_kernels = true; ///< actually run the math (not just model it)
  /// Dispatch the compute phase to the naive per-access reference kernels
  /// instead of the fast-path engine (DESIGN.md §10). Bit-identical results
  /// either way — the flag exists for differential testing; wall-clock
  /// (not virtual-time) cost is the only difference.
  bool naive_kernels = false;
  bool validate = false;       ///< compare against the global reference
  /// Fig. 10's "No-Layout": fine-grained blocking with lexicographic region
  /// order instead of the optimized surface3d (compute is unaffected —
  /// that is the point of the figure).
  bool lexicographic_layout = false;
  /// Explicit brick-region layout override — the autotuner's layout lever
  /// (src/tune, DESIGN.md §15). An empty order (the default) keeps the
  /// historical choice: surface3d(), or lexicographic_layout(3) under the
  /// flag above. When set it must be a valid 3-D layout and it wins over
  /// the flag.
  LayoutSpec layout{};
  /// Replace MemMap's real mmap views with a byte-identical per-neighbor
  /// scratch exchange. Needed when ranks*segments would exceed the
  /// kernel's vm.max_map_count in a single-process simulation; timing- and
  /// byte-exact, but ghosts are not actually delivered, so it implies
  /// execute_kernels = false.
  bool memmap_floor_proxy = false;
  /// Overlap communication with computation (brick methods except Shift):
  /// the interior — cells whose stencil inputs never touch the ghost
  /// frame — is computed between posting and completing the exchange; the
  /// dependent shell is computed after. The prior-work optimization the
  /// paper contrasts with (its YASK-OL line); exact, not an approximation.
  bool overlap = false;
  /// Network fabric for message timing. Flat (the default) is the original
  /// per-sender serialization model and keeps every result bit-identical to
  /// pre-netsim builds; any other kind routes inter-node messages over a
  /// topology with link contention (src/netsim).
  netsim::FabricKind fabric = netsim::FabricKind::Flat;
  /// Process-to-node mapping, used by non-flat fabrics. Block matches the
  /// flat model's node assignment; Greedy minimizes inter-node traffic over
  /// the cartesian exchange graph.
  netsim::MapKind mapping = netsim::MapKind::Block;
  /// Deterministic message-fault schedule (simmpi/fault.h). Empty (the
  /// default) keeps the runtime on its zero-overhead path. Delay-only
  /// schedules perturb timing but never results; corrupting schedules make
  /// run() throw with a "fault detected" diagnostic rather than return
  /// silently wrong data — see src/check and DESIGN.md §8.
  mpi::FaultSpec faults{};
  /// Plan lifetime: build-once/replay (the default, and byte-identical in
  /// measured output to pre-plan builds) vs forced plan-per-round.
  PlanMode plan = PlanMode::BuildOnce;
  /// On-node transport tier (DESIGN.md §13). Flat (the default) keeps every
  /// message on the fabric path, byte-identical to pre-transport builds.
  /// Shm short-circuits same-node pairs through the shared-memory model;
  /// ShmAgg additionally coalesces co-located ranks' inter-node sends into
  /// one framed fabric flow per (node, neighbor-node) pair. ShmAgg
  /// requires ranks_per_node > 1 — with one rank per node there is nothing
  /// to aggregate, and run() rejects the combination rather than silently
  /// degenerating to per-message frames.
  transport::Kind transport = transport::Kind::Flat;
};

/// Per-timestep phase decomposition, exactly the artifact's five metrics:
/// calc / pack / call / wait in seconds-per-timestep (Stats across ranks),
/// plus overall throughput.
struct Result {
  Stats calc, pack, call, wait;
  double total_seconds = 0;     ///< max-rank virtual time for measured steps
  double calc_per_step = 0;     ///< average over ranks
  double comm_per_step = 0;     ///< pack + call + wait average
  double gstencils = 0;         ///< 1e9 stencil updates / second, all ranks
  std::int64_t msgs_per_rank = 0;       ///< sends per exchange
  std::int64_t wire_bytes_per_rank = 0; ///< bytes sent per exchange (with padding)
  std::int64_t payload_bytes_per_rank = 0;
  double padding_percent = 0;   ///< Table 2's extra transfer from padding
  /// Receive-side accounting, counted by rank 0 over the whole run
  /// (warmup + measured): completions are what the receiver pays for.
  std::int64_t msgs_recv_per_rank = 0;
  std::int64_t bytes_recv_per_rank = 0;
  /// Deepest any rank kept the NIC pipeline (pending isend/irecv Requests).
  std::int64_t max_inflight_reqs = 0;
  /// Setup vs steady state (DESIGN.md §9). In BuildOnce mode the one-time
  /// plan cost is charged before the measured loop and reported here; in
  /// PerRound mode the forced rebuilds land inside measured steps instead.
  Stats plan_setup;              ///< per-rank one-time plan build seconds
  double setup_seconds = 0;      ///< plan_setup average over ranks
  double replan_per_step = 0;    ///< forced in-loop rebuild s/step (PerRound)
  std::int64_t plan_builds_per_rank = 0;  ///< plan constructions per rank
  bool validated = false;       ///< set when cfg.validate passed
  /// Fabric-level observability, filled for non-flat fabrics (all zero
  /// under the default flat model).
  double avg_hops = 0;          ///< mean links traversed per fabric message
  double queue_s_per_msg = 0;   ///< mean NIC queueing delay per message
  double max_link_sharing = 0;  ///< peak mean flows sharing one link
  double busiest_link_util = 0; ///< hottest link's busy fraction of the run
  /// Messages that crossed the fabric (whole run, all ranks; excludes
  /// node-local and shared-memory deliveries). The abl_transport ratio
  /// numerator/denominator.
  std::int64_t fabric_msgs = 0;
  /// What the fault schedule did (all zero when cfg.faults is empty).
  mpi::FaultCounts fault_counts{};
  /// Send-side locality split (msgs_intra + msgs_inter == msgs_sent),
  /// counted by rank 0 over the whole run like msgs_recv_per_rank.
  /// Meaningful whenever ranks share nodes; the intra split is zero under
  /// one rank per node.
  std::int64_t msgs_intra_per_rank = 0;
  std::int64_t msgs_inter_per_rank = 0;
  std::int64_t bytes_intra_per_rank = 0;
  std::int64_t bytes_inter_per_rank = 0;
  /// Transport-tier traffic over the whole run, all ranks (zero under
  /// transport = Flat; see transport::Stats).
  transport::Stats transport_stats{};
};

/// The 26-direction periodic cartesian exchange graph of `cfg`: one edge
/// per (rank, direction) with weight = ghost-surface bytes sent that way
/// per exchange. What the Greedy mapping minimizes the cut of; benches use
/// it with netsim::cut_bytes to report inter-node volume per mapping.
std::vector<netsim::CommEdge> exchange_comm_graph(const Config& cfg);

/// Run one experiment: spawns cfg.rank_dims.prod() ranks on a fresh
/// simmpi Runtime, executes warmup + measured timesteps of
/// exchange-and-compute with ghost-cell expansion, and aggregates phases.
/// Deterministic: same Config => identical Result.
Result run(const Config& cfg);

}  // namespace brickx::harness
