#include "stencil/kernel_engine.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/error.h"
#include "stencil/stencils.h"

namespace brickx::stencil {

namespace {

/// Floor division for possibly-negative cell coordinates (ghost cells have
/// negative coordinates; C++ integer division truncates toward zero).
constexpr std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

/// Per-axis tile segmentation for the halo gather: segment s in {0, 1, 2}
/// covers the low halo, the brick body, and the high halo. `B` is the brick
/// extent on the axis, `R` the stencil radius.
struct AxisSeg {
  int len;       ///< cells in the segment
  int src_lo;    ///< first local coordinate inside the source brick
  int tile_lo;   ///< first tile coordinate
};

template <int B, int R>
constexpr AxisSeg axis_seg(int s) {
  return s == 0   ? AxisSeg{R, B - R, 0}
         : s == 1 ? AxisSeg{B, 0, R}
                  : AxisSeg{R, 0, R + B};
}

/// Gather the full (B + 2R)^3 halo cube of brick `b` into `tile` from the
/// 27 neighbor base pointers (resolved once from the adjacency row).
/// Returns false — leaving the caller on the boundary path — when any of
/// the 26 neighbors is unallocated (brick at the edge of the ghost frame).
template <int BK, int BJ, int BI, int R>
bool gather_cube(const Brick<BK, BJ, BI>& in,
                 const std::array<std::int32_t, 27>& adj,
                 double* __restrict tile) {
  constexpr int SJ = BJ + 2 * R, SI = BI + 2 * R;
  const double* src[27];
  for (int c = 0; c < 27; ++c) {
    if (adj[static_cast<std::size_t>(c)] == BrickInfo<3>::kNoBrick)
      return false;
    src[c] = in.field_data(adj[static_cast<std::size_t>(c)]);
  }
  for (int sz = 0; sz < 3; ++sz) {
    const AxisSeg zs = axis_seg<BK, R>(sz);
    for (int sy = 0; sy < 3; ++sy) {
      const AxisSeg ys = axis_seg<BJ, R>(sy);
      for (int sx = 0; sx < 3; ++sx) {
        const AxisSeg xs = axis_seg<BI, R>(sx);
        const double* __restrict s = src[sx + 3 * sy + 9 * sz];
        for (int kk = 0; kk < zs.len; ++kk)
          for (int jj = 0; jj < ys.len; ++jj)
            std::memcpy(
                tile + ((zs.tile_lo + kk) * SJ + (ys.tile_lo + jj)) * SI +
                    xs.tile_lo,
                s + ((zs.src_lo + kk) * BJ + (ys.src_lo + jj)) * BI +
                    xs.src_lo,
                static_cast<std::size_t>(xs.len) * sizeof(double));
      }
    }
  }
  return true;
}

/// Gather the star-shaped radius-1 halo (center + the six face slabs —
/// the only tile cells the 7-point stencil reads; tile edges and corners
/// stay unwritten and unread). Requires only the six face neighbors.
template <int BK, int BJ, int BI>
bool gather_star1(const Brick<BK, BJ, BI>& in,
                  const std::array<std::int32_t, 27>& adj,
                  double* __restrict tile) {
  constexpr int SJ = BJ + 2, SI = BI + 2;
  // Face direction codes: (di+1) + 3*(dj+1) + 9*(dk+1).
  constexpr int kXm = 12, kXp = 14, kYm = 10, kYp = 16, kZm = 4, kZp = 22;
  for (int c : {kXm, kXp, kYm, kYp, kZm, kZp})
    if (adj[static_cast<std::size_t>(c)] == BrickInfo<3>::kNoBrick)
      return false;
  const double* __restrict ctr = in.field_data(adj[13]);
  for (int k = 0; k < BK; ++k)
    for (int j = 0; j < BJ; ++j)
      std::memcpy(tile + ((k + 1) * SJ + (j + 1)) * SI + 1,
                  ctr + (k * BJ + j) * BI,
                  static_cast<std::size_t>(BI) * sizeof(double));
  const double* __restrict zm = in.field_data(adj[kZm]);
  const double* __restrict zp = in.field_data(adj[kZp]);
  for (int j = 0; j < BJ; ++j) {
    std::memcpy(tile + (j + 1) * SI + 1, zm + ((BK - 1) * BJ + j) * BI,
                static_cast<std::size_t>(BI) * sizeof(double));
    std::memcpy(tile + ((BK + 1) * SJ + (j + 1)) * SI + 1, zp + (j * BI),
                static_cast<std::size_t>(BI) * sizeof(double));
  }
  const double* __restrict ym = in.field_data(adj[kYm]);
  const double* __restrict yp = in.field_data(adj[kYp]);
  for (int k = 0; k < BK; ++k) {
    std::memcpy(tile + ((k + 1) * SJ) * SI + 1,
                ym + (k * BJ + (BJ - 1)) * BI,
                static_cast<std::size_t>(BI) * sizeof(double));
    std::memcpy(tile + ((k + 1) * SJ + (BJ + 1)) * SI + 1, yp + (k * BJ) * BI,
                static_cast<std::size_t>(BI) * sizeof(double));
  }
  const double* __restrict xm = in.field_data(adj[kXm]);
  const double* __restrict xp = in.field_data(adj[kXp]);
  for (int k = 0; k < BK; ++k)
    for (int j = 0; j < BJ; ++j) {
      tile[((k + 1) * SJ + (j + 1)) * SI] = xm[(k * BJ + j) * BI + (BI - 1)];
      tile[((k + 1) * SJ + (j + 1)) * SI + (BI + 1)] = xp[(k * BJ + j) * BI];
    }
  return true;
}

/// Flat interior compute, 7-point: row pointers into the tile, contiguous
/// x loop. Same accumulation order as the naive kernel's expression.
template <int BK, int BJ, int BI>
void compute7_tile(const double* __restrict tile, double* __restrict o) {
  constexpr int SJ = BJ + 2, SI = BI + 2;
  const auto& c = Stencil7::c;
  for (int k = 0; k < BK; ++k)
    for (int j = 0; j < BJ; ++j) {
      const double* __restrict r0 = tile + ((k + 1) * SJ + (j + 1)) * SI + 1;
      const double* __restrict ym = tile + ((k + 1) * SJ + j) * SI + 1;
      const double* __restrict yp = tile + ((k + 1) * SJ + (j + 2)) * SI + 1;
      const double* __restrict zm = tile + (k * SJ + (j + 1)) * SI + 1;
      const double* __restrict zp = tile + ((k + 2) * SJ + (j + 1)) * SI + 1;
      double* __restrict orow = o + (k * BJ + j) * BI;
      for (int i = 0; i < BI; ++i)
        orow[i] = c[0] * r0[i] + c[1] * r0[i - 1] + c[2] * r0[i + 1] +
                  c[3] * ym[i] + c[4] * yp[i] + c[5] * zm[i] + c[6] * zp[i];
    }
}

/// Flat interior compute, 125-point. Taps iterate in the outer loops and
/// cells in the contiguous inner loop, so the accumulation vectorizes
/// across cells; each cell's partial sums still arrive in ascending tap
/// order (dz slowest, dx fastest) — the naive kernel's exact FP order.
template <int BK, int BJ, int BI>
void compute125_tile(const double* __restrict tile,
                     const double* __restrict w, double* __restrict o) {
  constexpr int SJ = BJ + 4, SI = BI + 4;
  for (int k = 0; k < BK; ++k)
    for (int j = 0; j < BJ; ++j) {
      double acc[BI] = {};
      int t = 0;
      for (int dz = 0; dz < 5; ++dz)
        for (int dy = 0; dy < 5; ++dy) {
          const double* __restrict row =
              tile + ((k + dz) * SJ + (j + dy)) * SI;
          for (int dx = 0; dx < 5; ++dx) {
            const double wt = w[t++];
            const double* __restrict p = row + dx;
            for (int i = 0; i < BI; ++i) acc[i] += wt * p[i];
          }
        }
      double* __restrict orow = o + (k * BJ + j) * BI;
      for (int i = 0; i < BI; ++i) orow[i] = acc[i];
    }
}

/// Explicit-vector interior compute, 7-point: one output cell per lane,
/// W cells per step. The per-lane expression is the scalar fast path's
/// 7-term expression verbatim, so every lane accumulates in the naive FP
/// order and the results are bit-identical at any width. Tile rows are
/// read with unaligned loads (row stride BI + 2 is not a lane multiple);
/// output rows are stored aligned — the dispatch guard proved it safe.
template <int BK, int BJ, int BI, int W>
void compute7_tile_simd(const double* __restrict tile, double* __restrict o) {
  static_assert(BI % W == 0, "guarded by the dispatcher");
  using V = simd::DVec<W>;
  constexpr int SJ = BJ + 2, SI = BI + 2;
  const auto& c = Stencil7::c;
  const V c0 = V::broadcast(c[0]), c1 = V::broadcast(c[1]),
          c2 = V::broadcast(c[2]), c3 = V::broadcast(c[3]),
          c4 = V::broadcast(c[4]), c5 = V::broadcast(c[5]),
          c6 = V::broadcast(c[6]);
  for (int k = 0; k < BK; ++k)
    for (int j = 0; j < BJ; ++j) {
      const double* __restrict r0 = tile + ((k + 1) * SJ + (j + 1)) * SI + 1;
      const double* __restrict ym = tile + ((k + 1) * SJ + j) * SI + 1;
      const double* __restrict yp = tile + ((k + 1) * SJ + (j + 2)) * SI + 1;
      const double* __restrict zm = tile + (k * SJ + (j + 1)) * SI + 1;
      const double* __restrict zp = tile + ((k + 2) * SJ + (j + 1)) * SI + 1;
      double* __restrict orow = o + (k * BJ + j) * BI;
      for (int x = 0; x < BI; x += W) {
        const V r = c0 * V::loadu(r0 + x) + c1 * V::loadu(r0 + x - 1) +
                    c2 * V::loadu(r0 + x + 1) + c3 * V::loadu(ym + x) +
                    c4 * V::loadu(yp + x) + c5 * V::loadu(zm + x) +
                    c6 * V::loadu(zp + x);
        r.store(orow + x);
      }
    }
}

/// Explicit-vector interior compute, 125-point: taps outer, lanes inner,
/// with TWO output rows (j, j+1) in flight per pass. The vector
/// accumulators live in registers across all 125 taps, and the row pair
/// doubles the number of independent add chains — each accumulator's adds
/// form a 125-deep latency chain the scalar path serializes per row, so
/// the pairing is what buys the >= 1.5x over the autovectorized fast path
/// (the BENCH_kernels.json simd-vs-fast axis). Lanes are cells and rows
/// are independent, so each cell's partial sums still arrive in ascending
/// dz-dy-dx tap order: bit-identical to the naive kernel at every width.
template <int BK, int BJ, int BI, int W>
void compute125_tile_simd(const double* __restrict tile,
                          const double* __restrict w, double* __restrict o) {
  static_assert(BI % W == 0, "guarded by the dispatcher");
  using V = simd::DVec<W>;
  constexpr int SJ = BJ + 4, SI = BI + 4;
  constexpr int NV = BI / W;
  static_assert(BJ % 2 == 0, "row pairing needs an even j extent");
  for (int k = 0; k < BK; ++k)
    for (int j = 0; j < BJ; j += 2) {
      V a0[NV], a1[NV];
      for (int u = 0; u < NV; ++u) {
        a0[u] = V::zero();
        a1[u] = V::zero();
      }
      int t = 0;
      for (int dz = 0; dz < 5; ++dz)
        for (int dy = 0; dy < 5; ++dy) {
          const double* __restrict r0 =
              tile + ((k + dz) * SJ + (j + dy)) * SI;
          const double* __restrict r1 = r0 + SI;
          for (int dx = 0; dx < 5; ++dx) {
            const V wt = V::broadcast(w[t++]);
            for (int u = 0; u < NV; ++u) {
              a0[u] += wt * V::loadu(r0 + dx + u * W);
              a1[u] += wt * V::loadu(r1 + dx + u * W);
            }
          }
        }
      double* __restrict o0 = o + (k * BJ + j) * BI;
      double* __restrict o1 = o0 + BI;
      for (int u = 0; u < NV; ++u) {
        a0[u].store(o0 + u * W);
        a1[u].store(o1 + u * W);
      }
    }
}

/// One-line diagnostic the first time a width-W dispatch degrades to the
/// scalar fast path (alignment guard, DESIGN.md §16). Results are
/// unaffected — only the vector stores are.
void note_scalar_fallback(int w, const char* why) {
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true, std::memory_order_relaxed))
    std::fprintf(stderr,
                 "brickx: simd: width-%d vector path unavailable (%s); "
                 "using the scalar fast path\n",
                 w, why);
}

/// Decide once per apply call whether the width-W vector tiles may run
/// over this output brick accessor; diagnoses the first degradation.
template <int BK, int BJ, int BI, int W>
bool simd_dispatch(const Brick<BK, BJ, BI>& out) {
  if constexpr (W == 1) {
    return false;  // scalar fast path IS width 1; nothing to guard
  } else {
    const char* why = simd_brick_reason<BK, BJ, BI>(out, W);
    if (why == nullptr) return true;
    note_scalar_fallback(W, why);
    return false;
  }
}

/// Clip the cell box of the brick at grid coordinate `g` against
/// `out_cells`. Non-empty for every brick inside brick_grid_range().
template <int BK, int BJ, int BI>
Box<3> clip_brick(const Vec3& base, const Box<3>& out_cells) {
  Box<3> clip{base, base + Vec3{BI, BJ, BK}};
  for (int a = 0; a < 3; ++a) {
    clip.lo[a] = std::max(clip.lo[a], out_cells.lo[a]);
    clip.hi[a] = std::min(clip.hi[a], out_cells.hi[a]);
  }
  return clip;
}

}  // namespace

Box<3> brick_grid_range(const BrickDecomp<3>& dec, const Box<3>& out_cells) {
  Box<3> r{};
  if (out_cells.empty()) return r;  // default box is empty
  const Vec3& B = dec.brick_dims();
  const Vec3& n = dec.brick_grid();
  const Vec3& gb = dec.ghost_layers();
  for (int a = 0; a < 3; ++a) {
    r.lo[a] = std::max(floor_div(out_cells.lo[a], B[a]), -gb[a]);
    r.hi[a] = std::min(floor_div(out_cells.hi[a] - 1, B[a]) + 1, n[a] + gb[a]);
  }
  return r;
}

const char* simd_storage_reason(const void* base, std::size_t brick_bytes,
                                std::size_t page_bytes,
                                std::int64_t row_elems,
                                std::int64_t elem_offset, int w) {
  if (w == 1) return nullptr;
  const std::size_t lane = static_cast<std::size_t>(w) * sizeof(double);
  if (row_elems % w != 0) return "brick row not a whole number of lanes";
  if (!simd::lane_aligned(base, w)) return "storage base not lane-aligned";
  if (brick_bytes % lane != 0) return "brick stride not a lane multiple";
  if (page_bytes % lane != 0) return "chunk padding not a lane multiple";
  if (elem_offset % w != 0) return "field offset not a lane multiple";
  return nullptr;
}

template <int BK, int BJ, int BI, int W>
void engine_apply7_simd(const BrickDecomp<3>& dec,
                        const Brick<BK, BJ, BI>& out,
                        const Brick<BK, BJ, BI>& in, const Box<3>& out_cells) {
  const auto& c = Stencil7::c;
  const Vec3 B{BI, BJ, BK};
  const Box<3> gr = brick_grid_range(dec, out_cells);
  if (gr.empty()) return;
  const bool vec = simd_dispatch<BK, BJ, BI, W>(out);
  alignas(simd::kAlign) double tile[(BK + 2) * (BJ + 2) * (BI + 2)];
  for (std::int64_t gz = gr.lo[2]; gz < gr.hi[2]; ++gz)
    for (std::int64_t gy = gr.lo[1]; gy < gr.hi[1]; ++gy)
      for (std::int64_t gx = gr.lo[0]; gx < gr.hi[0]; ++gx) {
        const Vec3 g{gx, gy, gz};
        const std::int64_t b = dec.brick_at(g);
        const Vec3 base = g * B;
        const Box<3> clip = clip_brick<BK, BJ, BI>(base, out_cells);
        const bool full = clip.lo == base && clip.hi == base + B;
        if (full &&
            gather_star1<BK, BJ, BI>(in, in.info().adjacent(b), tile)) {
          if constexpr (W > 1 && BI % W == 0) {
            if (vec) {
              compute7_tile_simd<BK, BJ, BI, W>(tile, out.field_data(b));
              continue;
            }
          }
          compute7_tile<BK, BJ, BI>(tile, out.field_data(b));
          continue;
        }
        // Boundary path: the clipped per-access kernel, expression
        // identical to the naive implementation.
        for (int k = static_cast<int>(clip.lo[2] - base[2]);
             k < static_cast<int>(clip.hi[2] - base[2]); ++k)
          for (int j = static_cast<int>(clip.lo[1] - base[1]);
               j < static_cast<int>(clip.hi[1] - base[1]); ++j)
            for (int i = static_cast<int>(clip.lo[0] - base[0]);
                 i < static_cast<int>(clip.hi[0] - base[0]); ++i) {
              out.at(b, k, j, i) = c[0] * in.at(b, k, j, i) +
                                   c[1] * in.at(b, k, j, i - 1) +
                                   c[2] * in.at(b, k, j, i + 1) +
                                   c[3] * in.at(b, k, j - 1, i) +
                                   c[4] * in.at(b, k, j + 1, i) +
                                   c[5] * in.at(b, k - 1, j, i) +
                                   c[6] * in.at(b, k + 1, j, i);
            }
      }
}

template <int BK, int BJ, int BI, int W>
void engine_apply125_simd(const BrickDecomp<3>& dec,
                          const Brick<BK, BJ, BI>& out,
                          const Brick<BK, BJ, BI>& in,
                          const Box<3>& out_cells) {
  static_assert(BK >= 2 && BJ >= 2 && BI >= 2,
                "brick extents must cover the radius-2 neighborhood");
  const Vec3 B{BI, BJ, BK};
  const auto& w = Stencil125::taps();
  const Box<3> gr = brick_grid_range(dec, out_cells);
  if (gr.empty()) return;
  const bool vec = simd_dispatch<BK, BJ, BI, W>(out);
  alignas(simd::kAlign) double tile[(BK + 4) * (BJ + 4) * (BI + 4)];
  for (std::int64_t gz = gr.lo[2]; gz < gr.hi[2]; ++gz)
    for (std::int64_t gy = gr.lo[1]; gy < gr.hi[1]; ++gy)
      for (std::int64_t gx = gr.lo[0]; gx < gr.hi[0]; ++gx) {
        const Vec3 g{gx, gy, gz};
        const std::int64_t b = dec.brick_at(g);
        const Vec3 base = g * B;
        const Box<3> clip = clip_brick<BK, BJ, BI>(base, out_cells);
        const bool full = clip.lo == base && clip.hi == base + B;
        if (full &&
            gather_cube<BK, BJ, BI, 2>(in, in.info().adjacent(b), tile)) {
          if constexpr (W > 1 && BI % W == 0) {
            if (vec) {
              compute125_tile_simd<BK, BJ, BI, W>(tile, w.data(),
                                                  out.field_data(b));
              continue;
            }
          }
          compute125_tile<BK, BJ, BI>(tile, w.data(), out.field_data(b));
          continue;
        }
        for (int k = static_cast<int>(clip.lo[2] - base[2]);
             k < static_cast<int>(clip.hi[2] - base[2]); ++k)
          for (int j = static_cast<int>(clip.lo[1] - base[1]);
               j < static_cast<int>(clip.hi[1] - base[1]); ++j)
            for (int i = static_cast<int>(clip.lo[0] - base[0]);
                 i < static_cast<int>(clip.hi[0] - base[0]); ++i) {
              double acc = 0.0;
              int at = 0;
              for (int dz = -2; dz <= 2; ++dz)
                for (int dy = -2; dy <= 2; ++dy)
                  for (int dx = -2; dx <= 2; ++dx)
                    acc += w[static_cast<std::size_t>(at++)] *
                           in.at(b, k + dz, j + dy, i + dx);
              out.at(b, k, j, i) = acc;
            }
      }
}

template <int BK, int BJ, int BI>
void engine_apply7(const BrickDecomp<3>& dec, const Brick<BK, BJ, BI>& out,
                   const Brick<BK, BJ, BI>& in, const Box<3>& out_cells) {
  engine_apply7_simd<BK, BJ, BI, simd::kActiveWidth>(dec, out, in, out_cells);
}

template <int BK, int BJ, int BI>
void engine_apply125(const BrickDecomp<3>& dec, const Brick<BK, BJ, BI>& out,
                     const Brick<BK, BJ, BI>& in, const Box<3>& out_cells) {
  engine_apply125_simd<BK, BJ, BI, simd::kActiveWidth>(dec, out, in,
                                                       out_cells);
}

// Every supported width is instantiated for both brick sizes so one build
// can differentially test widths the dispatch default would never pick.
#define BRICKX_INSTANTIATE_SIMD_W(B, W)                                     \
  template void engine_apply7_simd<B, B, B, W>(                             \
      const BrickDecomp<3>&, const Brick<B, B, B>&, const Brick<B, B, B>&,  \
      const Box<3>&);                                                       \
  template void engine_apply125_simd<B, B, B, W>(                           \
      const BrickDecomp<3>&, const Brick<B, B, B>&, const Brick<B, B, B>&,  \
      const Box<3>&);

#define BRICKX_INSTANTIATE_SIMD(B) \
  BRICKX_INSTANTIATE_SIMD_W(B, 1)  \
  BRICKX_INSTANTIATE_SIMD_W(B, 2)  \
  BRICKX_INSTANTIATE_SIMD_W(B, 4)  \
  BRICKX_INSTANTIATE_SIMD_W(B, 8)

BRICKX_INSTANTIATE_SIMD(4)
BRICKX_INSTANTIATE_SIMD(8)

#undef BRICKX_INSTANTIATE_SIMD
#undef BRICKX_INSTANTIATE_SIMD_W

template void engine_apply7<4, 4, 4>(const BrickDecomp<3>&,
                                     const Brick<4, 4, 4>&,
                                     const Brick<4, 4, 4>&, const Box<3>&);
template void engine_apply7<8, 8, 8>(const BrickDecomp<3>&,
                                     const Brick<8, 8, 8>&,
                                     const Brick<8, 8, 8>&, const Box<3>&);
template void engine_apply125<4, 4, 4>(const BrickDecomp<3>&,
                                       const Brick<4, 4, 4>&,
                                       const Brick<4, 4, 4>&, const Box<3>&);
template void engine_apply125<8, 8, 8>(const BrickDecomp<3>&,
                                       const Brick<8, 8, 8>&,
                                       const Brick<8, 8, 8>&, const Box<3>&);

namespace {

/// Pointer-core 7-point row kernel shared by the CellArray3 and the
/// multi-field span entry points: `ibase`/`obase` are frame-shaped
/// lexicographic slabs over `ib`/`ob`.
void apply7_rows(const Box<3>& ib, const double* __restrict ibase,
                 const Box<3>& ob, double* __restrict obase,
                 const Box<3>& out_cells) {
  if (out_cells.empty()) return;
  const auto& c = Stencil7::c;
  for (int a = 0; a < 3; ++a) {
    BX_CHECK(ib.lo[a] <= out_cells.lo[a] - 1 &&
                 out_cells.hi[a] + 1 <= ib.hi[a],
             "input array does not cover the radius-1 halo of out_cells");
    BX_CHECK(ob.lo[a] <= out_cells.lo[a] && out_cells.hi[a] <= ob.hi[a],
             "output array does not cover out_cells");
  }
  const Vec3 ie = ib.extent(), oe = ob.extent();
  const std::int64_t x0 = out_cells.lo[0];
  const std::int64_t nx = out_cells.hi[0] - x0;
  for (std::int64_t z = out_cells.lo[2]; z < out_cells.hi[2]; ++z)
    for (std::int64_t y = out_cells.lo[1]; y < out_cells.hi[1]; ++y) {
      auto irow = [&](std::int64_t zz, std::int64_t yy) {
        return ibase +
               ((zz - ib.lo[2]) * ie[1] + (yy - ib.lo[1])) * ie[0] +
               (x0 - ib.lo[0]);
      };
      const double* __restrict r0 = irow(z, y);
      const double* __restrict ym = irow(z, y - 1);
      const double* __restrict yp = irow(z, y + 1);
      const double* __restrict zm = irow(z - 1, y);
      const double* __restrict zp = irow(z + 1, y);
      double* __restrict orow =
          obase + ((z - ob.lo[2]) * oe[1] + (y - ob.lo[1])) * oe[0] +
          (x0 - ob.lo[0]);
      for (std::int64_t x = 0; x < nx; ++x)
        orow[x] = c[0] * r0[x] + c[1] * r0[x - 1] + c[2] * r0[x + 1] +
                  c[3] * ym[x] + c[4] * yp[x] + c[5] * zm[x] + c[6] * zp[x];
    }
}

/// Pointer-core 125-point row kernel (same sharing).
void apply125_rows(const Box<3>& ib, const double* __restrict ibase,
                   const Box<3>& ob, double* __restrict obase,
                   const Box<3>& out_cells) {
  if (out_cells.empty()) return;
  const auto& w = Stencil125::taps();
  for (int a = 0; a < 3; ++a) {
    BX_CHECK(ib.lo[a] <= out_cells.lo[a] - 2 &&
                 out_cells.hi[a] + 2 <= ib.hi[a],
             "input array does not cover the radius-2 halo of out_cells");
    BX_CHECK(ob.lo[a] <= out_cells.lo[a] && out_cells.hi[a] <= ob.hi[a],
             "output array does not cover out_cells");
  }
  const Vec3 ie = ib.extent(), oe = ob.extent();
  const std::int64_t x0 = out_cells.lo[0];
  const std::int64_t nx = out_cells.hi[0] - x0;
  std::vector<double> acc;
  acc.reserve(static_cast<std::size_t>(nx));
  for (std::int64_t z = out_cells.lo[2]; z < out_cells.hi[2]; ++z)
    for (std::int64_t y = out_cells.lo[1]; y < out_cells.hi[1]; ++y) {
      // 25 row base pointers (dz, dy), each positioned at x0 - 2 so the
      // dx tap loop reads p[dx] for dx in [0, 5).
      const double* rows[25];
      for (int dz = 0; dz < 5; ++dz)
        for (int dy = 0; dy < 5; ++dy)
          rows[dz * 5 + dy] =
              ibase +
              ((z + dz - 2 - ib.lo[2]) * ie[1] + (y + dy - 2 - ib.lo[1])) *
                  ie[0] +
              (x0 - 2 - ib.lo[0]);
      double* __restrict orow =
          obase + ((z - ob.lo[2]) * oe[1] + (y - ob.lo[1])) * oe[0] +
          (x0 - ob.lo[0]);
      // Taps outer, cells inner: vectorizes across the row while keeping
      // each cell's partial sums in ascending tap order (the naive FP
      // order).
      acc.assign(static_cast<std::size_t>(nx), 0.0);
      double* __restrict a = acc.data();
      int t = 0;
      for (int zy = 0; zy < 25; ++zy)
        for (int dx = 0; dx < 5; ++dx) {
          const double wt = w[static_cast<std::size_t>(t++)];
          const double* __restrict p = rows[zy] + dx;
          for (std::int64_t x = 0; x < nx; ++x) a[x] += wt * p[x];
        }
      for (std::int64_t x = 0; x < nx; ++x) orow[x] = a[x];
    }
}

}  // namespace

void engine_apply7_array(const CellArray3& in, CellArray3& out,
                         const Box<3>& out_cells) {
  apply7_rows(in.box(), in.raw().data(), out.box(), out.raw().data(),
              out_cells);
}

void engine_apply125_array(const CellArray3& in, CellArray3& out,
                           const Box<3>& out_cells) {
  apply125_rows(in.box(), in.raw().data(), out.box(), out.raw().data(),
                out_cells);
}

void engine_apply7_span(const Box<3>& frame, const double* in, double* out,
                        const Box<3>& out_cells) {
  apply7_rows(frame, in, frame, out, out_cells);
}

void engine_apply125_span(const Box<3>& frame, const double* in, double* out,
                          const Box<3>& out_cells) {
  apply125_rows(frame, in, frame, out, out_cells);
}

}  // namespace brickx::stencil
