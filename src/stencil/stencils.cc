#include "stencil/stencils.h"

#include <algorithm>

#include "common/error.h"
#include "stencil/kernel_engine.h"

namespace brickx::stencil {

namespace {

/// Class index of sorted (|a| <= |b| <= |c|) offsets over {0,1,2}:
/// enumerates the 10 multisets in a fixed order.
int symmetry_class(int dz, int dy, int dx) {
  int a = std::abs(dx), b = std::abs(dy), c = std::abs(dz);
  if (a > b) std::swap(a, b);
  if (b > c) std::swap(b, c);
  if (a > b) std::swap(a, b);
  // c is the largest after sorting; reject before indexing the LUT.
  BX_CHECK(c <= 2, "offset outside the 5^3 cube");
  // Perfect hash over sorted triples from {0,1,2}.
  static constexpr int lut[3][3][3] = {
      // a == 0
      {{0, 1, 4}, {-1, 2, 5}, {-1, -1, 7}},
      // a == 1
      {{-1, -1, -1}, {-1, 3, 6}, {-1, -1, 8}},
      // a == 2
      {{-1, -1, -1}, {-1, -1, -1}, {-1, -1, 9}},
  };
  const int cls = lut[a][b][c];
  BX_CHECK(cls >= 0, "offset outside the 5^3 cube");
  return cls;
}

}  // namespace

const std::array<double, 10>& Stencil125::weights() {
  // Multiplicity of each class within the 5^3 cube:
  // 000:1 001:6 011:12 111:8 002:6 012:24 112:24 022:12 122:24 222:8 = 125.
  static const std::array<double, 10> w = [] {
    std::array<double, 10> raw = {0.20, 0.08, 0.04, 0.02,
                                  0.015, 0.008, 0.004, 0.003, 0.002, 0.001};
    const int mult[10] = {1, 6, 12, 8, 6, 24, 24, 12, 24, 8};
    double sum = 0;
    for (int i = 0; i < 10; ++i) sum += raw[static_cast<std::size_t>(i)] *
                                        mult[i];
    for (auto& x : raw) x /= sum;  // taps sum to exactly 1
    return raw;
  }();
  return w;
}

double Stencil125::coeff(int dz, int dy, int dx) {
  return weights()[static_cast<std::size_t>(symmetry_class(dz, dy, dx))];
}

const std::array<double, 125>& Stencil125::taps() {
  static const std::array<double, 125> t = [] {
    std::array<double, 125> w{};
    int at = 0;
    for (int dz = -2; dz <= 2; ++dz)
      for (int dy = -2; dy <= 2; ++dy)
        for (int dx = -2; dx <= 2; ++dx)
          w[static_cast<std::size_t>(at++)] = coeff(dz, dy, dx);
    return w;
  }();
  return t;
}

template <int BK, int BJ, int BI>
void apply7_bricks(const BrickDecomp<3>& dec, const Brick<BK, BJ, BI>& out,
                   const Brick<BK, BJ, BI>& in, const Box<3>& out_cells) {
  engine_apply7<BK, BJ, BI>(dec, out, in, out_cells);
}

template <int BK, int BJ, int BI>
void apply125_bricks(const BrickDecomp<3>& dec, const Brick<BK, BJ, BI>& out,
                     const Brick<BK, BJ, BI>& in, const Box<3>& out_cells) {
  engine_apply125<BK, BJ, BI>(dec, out, in, out_cells);
}

template <int BK, int BJ, int BI>
void apply7_bricks_naive(const BrickDecomp<3>& dec,
                         const Brick<BK, BJ, BI>& out,
                         const Brick<BK, BJ, BI>& in,
                         const Box<3>& out_cells) {
  const auto& c = Stencil7::c;
  const Vec3 B{BI, BJ, BK};
  for (std::int64_t b = 0; b < dec.total_brick_count(); ++b) {
    const Vec3 base = dec.grid_of(b) * B;
    Box<3> clip{base, base + B};
    for (int a = 0; a < 3; ++a) {
      clip.lo[a] = std::max(clip.lo[a], out_cells.lo[a]);
      clip.hi[a] = std::min(clip.hi[a], out_cells.hi[a]);
    }
    if (clip.empty()) continue;
    for (int k = static_cast<int>(clip.lo[2] - base[2]);
         k < static_cast<int>(clip.hi[2] - base[2]); ++k)
      for (int j = static_cast<int>(clip.lo[1] - base[1]);
           j < static_cast<int>(clip.hi[1] - base[1]); ++j)
        for (int i = static_cast<int>(clip.lo[0] - base[0]);
             i < static_cast<int>(clip.hi[0] - base[0]); ++i) {
          out.at(b, k, j, i) = c[0] * in.at(b, k, j, i) +
                               c[1] * in.at(b, k, j, i - 1) +
                               c[2] * in.at(b, k, j, i + 1) +
                               c[3] * in.at(b, k, j - 1, i) +
                               c[4] * in.at(b, k, j + 1, i) +
                               c[5] * in.at(b, k - 1, j, i) +
                               c[6] * in.at(b, k + 1, j, i);
        }
  }
}

template <int BK, int BJ, int BI>
void apply125_bricks_naive(const BrickDecomp<3>& dec,
                           const Brick<BK, BJ, BI>& out,
                           const Brick<BK, BJ, BI>& in,
                           const Box<3>& out_cells) {
  static_assert(BK >= 2 && BJ >= 2 && BI >= 2,
                "brick extents must cover the radius-2 neighborhood");
  const Vec3 B{BI, BJ, BK};
  const auto& w = Stencil125::taps();  // 125 weights in dz-dy-dx order
  for (std::int64_t b = 0; b < dec.total_brick_count(); ++b) {
    const Vec3 base = dec.grid_of(b) * B;
    Box<3> clip{base, base + B};
    for (int a = 0; a < 3; ++a) {
      clip.lo[a] = std::max(clip.lo[a], out_cells.lo[a]);
      clip.hi[a] = std::min(clip.hi[a], out_cells.hi[a]);
    }
    if (clip.empty()) continue;
    for (int k = static_cast<int>(clip.lo[2] - base[2]);
         k < static_cast<int>(clip.hi[2] - base[2]); ++k)
      for (int j = static_cast<int>(clip.lo[1] - base[1]);
           j < static_cast<int>(clip.hi[1] - base[1]); ++j)
        for (int i = static_cast<int>(clip.lo[0] - base[0]);
             i < static_cast<int>(clip.hi[0] - base[0]); ++i) {
          double acc = 0.0;
          int at = 0;
          for (int dz = -2; dz <= 2; ++dz)
            for (int dy = -2; dy <= 2; ++dy)
              for (int dx = -2; dx <= 2; ++dx)
                acc += w[static_cast<std::size_t>(at++)] *
                       in.at(b, k + dz, j + dy, i + dx);
          out.at(b, k, j, i) = acc;
        }
  }
}

template void apply7_bricks<4, 4, 4>(const BrickDecomp<3>&,
                                     const Brick<4, 4, 4>&,
                                     const Brick<4, 4, 4>&, const Box<3>&);
template void apply7_bricks<8, 8, 8>(const BrickDecomp<3>&,
                                     const Brick<8, 8, 8>&,
                                     const Brick<8, 8, 8>&, const Box<3>&);
template void apply125_bricks<4, 4, 4>(const BrickDecomp<3>&,
                                       const Brick<4, 4, 4>&,
                                       const Brick<4, 4, 4>&, const Box<3>&);
template void apply125_bricks<8, 8, 8>(const BrickDecomp<3>&,
                                       const Brick<8, 8, 8>&,
                                       const Brick<8, 8, 8>&, const Box<3>&);
template void apply7_bricks_naive<4, 4, 4>(const BrickDecomp<3>&,
                                           const Brick<4, 4, 4>&,
                                           const Brick<4, 4, 4>&,
                                           const Box<3>&);
template void apply7_bricks_naive<8, 8, 8>(const BrickDecomp<3>&,
                                           const Brick<8, 8, 8>&,
                                           const Brick<8, 8, 8>&,
                                           const Box<3>&);
template void apply125_bricks_naive<4, 4, 4>(const BrickDecomp<3>&,
                                             const Brick<4, 4, 4>&,
                                             const Brick<4, 4, 4>&,
                                             const Box<3>&);
template void apply125_bricks_naive<8, 8, 8>(const BrickDecomp<3>&,
                                             const Brick<8, 8, 8>&,
                                             const Brick<8, 8, 8>&,
                                             const Box<3>&);

void apply7_array(const CellArray3& in, CellArray3& out,
                  const Box<3>& out_cells) {
  engine_apply7_array(in, out, out_cells);
}

void apply125_array(const CellArray3& in, CellArray3& out,
                    const Box<3>& out_cells) {
  engine_apply125_array(in, out, out_cells);
}

void apply7_array_naive(const CellArray3& in, CellArray3& out,
                        const Box<3>& out_cells) {
  const auto& c = Stencil7::c;
  for_each(out_cells, [&](const Vec3& p) {
    out.at(p) = c[0] * in.at(p) + c[1] * in.at(p - Vec3{1, 0, 0}) +
                c[2] * in.at(p + Vec3{1, 0, 0}) +
                c[3] * in.at(p - Vec3{0, 1, 0}) +
                c[4] * in.at(p + Vec3{0, 1, 0}) +
                c[5] * in.at(p - Vec3{0, 0, 1}) +
                c[6] * in.at(p + Vec3{0, 0, 1});
  });
}

void apply125_array_naive(const CellArray3& in, CellArray3& out,
                          const Box<3>& out_cells) {
  // Read the precomputed tap table: coeff()'s per-call sort + class lookup
  // used to run 125 times per output cell here.
  const auto& w = Stencil125::taps();
  for_each(out_cells, [&](const Vec3& p) {
    double acc = 0.0;
    int at = 0;
    for (int dz = -2; dz <= 2; ++dz)
      for (int dy = -2; dy <= 2; ++dy)
        for (int dx = -2; dx <= 2; ++dx)
          acc += w[static_cast<std::size_t>(at++)] *
                 in.at(p + Vec3{dx, dy, dz});
    out.at(p) = acc;
  });
}

void apply7_span(const Box<3>& frame, const double* in, double* out,
                 const Box<3>& out_cells) {
  engine_apply7_span(frame, in, out, out_cells);
}

void apply125_span(const Box<3>& frame, const double* in, double* out,
                   const Box<3>& out_cells) {
  engine_apply125_span(frame, in, out, out_cells);
}

void apply7_span_naive(const Box<3>& frame, const double* in, double* out,
                       const Box<3>& out_cells) {
  const auto& c = Stencil7::c;
  const Vec3 ext = frame.extent();
  auto rd = [&](const Vec3& p) { return in[linearize(p - frame.lo, ext)]; };
  for_each(out_cells, [&](const Vec3& p) {
    out[linearize(p - frame.lo, ext)] =
        c[0] * rd(p) + c[1] * rd(p - Vec3{1, 0, 0}) +
        c[2] * rd(p + Vec3{1, 0, 0}) + c[3] * rd(p - Vec3{0, 1, 0}) +
        c[4] * rd(p + Vec3{0, 1, 0}) + c[5] * rd(p - Vec3{0, 0, 1}) +
        c[6] * rd(p + Vec3{0, 0, 1});
  });
}

void apply125_span_naive(const Box<3>& frame, const double* in, double* out,
                         const Box<3>& out_cells) {
  const auto& w = Stencil125::taps();
  const Vec3 ext = frame.extent();
  auto rd = [&](const Vec3& p) { return in[linearize(p - frame.lo, ext)]; };
  for_each(out_cells, [&](const Vec3& p) {
    double acc = 0.0;
    int at = 0;
    for (int dz = -2; dz <= 2; ++dz)
      for (int dy = -2; dy <= 2; ++dy)
        for (int dx = -2; dx <= 2; ++dx)
          acc += w[static_cast<std::size_t>(at++)] * rd(p + Vec3{dx, dy, dz});
    out[linearize(p - frame.lo, ext)] = acc;
  });
}

void evolve_reference(CellArray3& field, int steps, bool use125) {
  const Box<3>& box = field.box();
  const Vec3 ext = box.extent();
  const int r = use125 ? 2 : 1;
  // Work on a halo-expanded copy so the kernel expression (and therefore
  // the floating-point operation order) is identical to the brick kernels.
  // The padded scratch and the periodic-wrap gather map are hoisted out of
  // the timestep loop: allocated/derived once, refilled every step.
  CellArray3 padded(Box<3>{box.lo - Vec3::fill(r), box.hi + Vec3::fill(r)});
  std::vector<std::int64_t> wrap_src;
  wrap_src.reserve(static_cast<std::size_t>(padded.box().volume()));
  // for_each iterates axis 0 fastest — the raw() storage order — so the
  // map's position n corresponds to padded.raw()[n].
  for_each(padded.box(), [&](const Vec3& p) {
    Vec3 q = p - box.lo;
    for (int a = 0; a < 3; ++a) q[a] = ((q[a] % ext[a]) + ext[a]) % ext[a];
    wrap_src.push_back(linearize(q, ext));
  });
  for (int s = 0; s < steps; ++s) {
    const double* __restrict f = field.raw().data();
    double* __restrict pd = padded.raw().data();
    for (std::size_t n = 0; n < wrap_src.size(); ++n)
      pd[n] = f[wrap_src[n]];
    if (use125) {
      apply125_array(padded, field, box);
    } else {
      apply7_array(padded, field, box);
    }
  }
}

template <int D>
Box<D> expansion_output_box(const Vec<D>& domain, std::int64_t g,
                            std::int64_t r, std::int64_t s) {
  const std::int64_t margin = g - (s + 1) * r;
  BX_CHECK(margin >= 0, "exchange overdue: ghost margin exhausted");
  Box<D> b;
  for (int a = 0; a < D; ++a) {
    b.lo[a] = -margin;
    b.hi[a] = domain[a] + margin;
  }
  return b;
}

template Box<2> expansion_output_box<2>(const Vec<2>&, std::int64_t,
                                        std::int64_t, std::int64_t);
template Box<3> expansion_output_box<3>(const Vec<3>&, std::int64_t,
                                        std::int64_t, std::int64_t);

template <int D>
std::vector<Box<D>> shell_boxes(const Box<D>& whole, const Box<D>& inner) {
  for (int a = 0; a < D; ++a)
    BX_CHECK(whole.lo[a] <= inner.lo[a] && inner.hi[a] <= whole.hi[a],
             "inner box must be contained in the whole box");
  std::vector<Box<D>> out;
  Box<D> rest = whole;
  // Peel two slabs per axis; remaining axes keep the already-peeled
  // extents so the slabs are disjoint.
  for (int a = 0; a < D; ++a) {
    Box<D> low = rest, high = rest;
    low.hi[a] = inner.lo[a];
    high.lo[a] = inner.hi[a];
    if (!low.empty()) out.push_back(low);
    if (!high.empty()) out.push_back(high);
    rest.lo[a] = inner.lo[a];
    rest.hi[a] = inner.hi[a];
  }
  return out;
}

template std::vector<Box<2>> shell_boxes<2>(const Box<2>&, const Box<2>&);
template std::vector<Box<3>> shell_boxes<3>(const Box<3>&, const Box<3>&);

}  // namespace brickx::stencil
