#pragma once

#include <cstdint>

#include "common/vec.h"
#include "core/brick.h"
#include "core/cell_array.h"
#include "core/decomp.h"

namespace brickx::stencil {

/// The fast-path stencil kernel engine (DESIGN.md §10).
///
/// Three structural optimizations over the naive per-access kernels, all
/// bit-identical to them (the per-cell accumulation order — dz slowest,
/// dx fastest — is preserved exactly):
///
///  1. Brick-range pruning: the brick-grid range intersecting `out_cells`
///     is derived arithmetically, so only overlapping bricks are visited
///     instead of every allocated brick of the decomposition.
///  2. Interior/boundary split: a brick fully covered by `out_cells` whose
///     required neighbors all exist resolves its neighbor-brick base
///     pointers once (BrickInfo::adjacent), gathers the radius-r halo into
///     a contiguous stack tile, and runs a flat `double* __restrict`
///     triple loop with constant trip counts — no proxy chain, no
///     per-access adjacency branch. Partially covered (or frame-edge)
///     bricks keep the clipped per-access `.at()` path.
///  3. Row-pointer array kernels: the lexicographic (CellArray3) kernels
///     hoist per-(z, y) row base pointers out of the contiguous x loop.

/// Half-open brick-grid range [lo, hi) of bricks intersecting `out_cells`
/// (cell coordinates; ghost coordinates allowed), clamped to the allocated
/// grid [-gb, n + gb). Empty when `out_cells` is empty or lies entirely
/// outside the allocated frame.
Box<3> brick_grid_range(const BrickDecomp<3>& dec, const Box<3>& out_cells);

/// Fast 7-point / 125-point brick kernels; drop-in replacements for the
/// naive apply7_bricks / apply125_bricks bodies (stencils.cc delegates
/// here). Bit-identical to the naive kernels by construction; verified by
/// tests/stencil_kernel_test.cc.
template <int BK, int BJ, int BI>
void engine_apply7(const BrickDecomp<3>& dec, const Brick<BK, BJ, BI>& out,
                   const Brick<BK, BJ, BI>& in, const Box<3>& out_cells);

template <int BK, int BJ, int BI>
void engine_apply125(const BrickDecomp<3>& dec, const Brick<BK, BJ, BI>& out,
                     const Brick<BK, BJ, BI>& in, const Box<3>& out_cells);

/// Fast lexicographic-array kernels (row-pointer inner loops). `in` must
/// cover `out_cells` expanded by the stencil radius; `out` must cover
/// `out_cells`.
void engine_apply7_array(const CellArray3& in, CellArray3& out,
                         const Box<3>& out_cells);
void engine_apply125_array(const CellArray3& in, CellArray3& out,
                           const Box<3>& out_cells);

}  // namespace brickx::stencil
