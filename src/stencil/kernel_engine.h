#pragma once

#include <cstddef>
#include <cstdint>

#include "common/simd.h"
#include "common/vec.h"
#include "core/brick.h"
#include "core/cell_array.h"
#include "core/decomp.h"

namespace brickx::stencil {

/// The fast-path stencil kernel engine (DESIGN.md §10).
///
/// Three structural optimizations over the naive per-access kernels, all
/// bit-identical to them (the per-cell accumulation order — dz slowest,
/// dx fastest — is preserved exactly):
///
///  1. Brick-range pruning: the brick-grid range intersecting `out_cells`
///     is derived arithmetically, so only overlapping bricks are visited
///     instead of every allocated brick of the decomposition.
///  2. Interior/boundary split: a brick fully covered by `out_cells` whose
///     required neighbors all exist resolves its neighbor-brick base
///     pointers once (BrickInfo::adjacent), gathers the radius-r halo into
///     a contiguous stack tile, and runs a flat `double* __restrict`
///     triple loop with constant trip counts — no proxy chain, no
///     per-access adjacency branch. Partially covered (or frame-edge)
///     bricks keep the clipped per-access `.at()` path.
///  3. Row-pointer array kernels: the lexicographic (CellArray3) kernels
///     hoist per-(z, y) row base pointers out of the contiguous x loop.

/// Half-open brick-grid range [lo, hi) of bricks intersecting `out_cells`
/// (cell coordinates; ghost coordinates allowed), clamped to the allocated
/// grid [-gb, n + gb). Empty when `out_cells` is empty or lies entirely
/// outside the allocated frame.
Box<3> brick_grid_range(const BrickDecomp<3>& dec, const Box<3>& out_cells);

/// Fast 7-point / 125-point brick kernels; drop-in replacements for the
/// naive apply7_bricks / apply125_bricks bodies (stencils.cc delegates
/// here). Bit-identical to the naive kernels by construction; verified by
/// tests/stencil_kernel_test.cc. These dispatch the interior tiles to the
/// explicit-SIMD path at simd::kActiveWidth (DESIGN.md §16); the
/// forced-width *_simd variants below expose every width for differential
/// testing and the width axis of BENCH_kernels.json.
template <int BK, int BJ, int BI>
void engine_apply7(const BrickDecomp<3>& dec, const Brick<BK, BJ, BI>& out,
                   const Brick<BK, BJ, BI>& in, const Box<3>& out_cells);

template <int BK, int BJ, int BI>
void engine_apply125(const BrickDecomp<3>& dec, const Brick<BK, BJ, BI>& out,
                     const Brick<BK, BJ, BI>& in, const Box<3>& out_cells);

/// --- Explicit-SIMD tier (DESIGN.md §16) ---
///
/// Forced-width engine entry points: identical structure to engine_apply7 /
/// engine_apply125, but the interior tile compute runs tap-outer /
/// lane-inner vector loops of `W` doubles (one output cell per lane, so
/// each cell's dz-dy-dx accumulation order — and therefore every result
/// bit — matches the naive kernels). `W == 1` is exactly the scalar fast
/// path. When the storage cannot support width-W aligned stores
/// (simd_storage_reason below), the call falls back to the scalar fast
/// tiles after a one-line diagnostic (once per process) — never UB.
/// Instantiated for brick sizes {4, 8}^3 at widths {1, 2, 4, 8}; widths
/// the hardware lacks are compiler-emulated, so all are testable anywhere.
template <int BK, int BJ, int BI, int W>
void engine_apply7_simd(const BrickDecomp<3>& dec,
                        const Brick<BK, BJ, BI>& out,
                        const Brick<BK, BJ, BI>& in, const Box<3>& out_cells);

template <int BK, int BJ, int BI, int W>
void engine_apply125_simd(const BrickDecomp<3>& dec,
                          const Brick<BK, BJ, BI>& out,
                          const Brick<BK, BJ, BI>& in,
                          const Box<3>& out_cells);

/// The alignment guard's predicate, exposed for unit tests: why width-`w`
/// vector stores into brick rows of `row_elems` doubles at field element
/// offset `elem_offset` over a buffer at `base` (brick stride
/// `brick_bytes`, chunk padding granularity `page_bytes`, 0 when packed)
/// are NOT safe — or nullptr when they are. `w == 1` is always safe.
const char* simd_storage_reason(const void* base, std::size_t brick_bytes,
                                std::size_t page_bytes,
                                std::int64_t row_elems,
                                std::int64_t elem_offset, int w);

/// Convenience wrapper over a Brick accessor's actual storage.
template <int BK, int BJ, int BI>
const char* simd_brick_reason(const Brick<BK, BJ, BI>& br, int w) {
  return simd_storage_reason(br.storage().data(), br.storage().brick_bytes(),
                             br.storage().page_size(), BI, br.elem_offset(),
                             w);
}

/// Fast lexicographic-array kernels (row-pointer inner loops). `in` must
/// cover `out_cells` expanded by the stencil radius; `out` must cover
/// `out_cells`.
void engine_apply7_array(const CellArray3& in, CellArray3& out,
                         const Box<3>& out_cells);
void engine_apply125_array(const CellArray3& in, CellArray3& out,
                           const Box<3>& out_cells);

/// Span variants of the array kernels for multi-field slabs (ArrayFields):
/// `in` and `out` are both `frame`-shaped lexicographic buffers (axis 0
/// fastest) that do NOT own their memory — e.g. one field slab of an
/// ArrayFields allocation. Same row-pointer cores as the CellArray3
/// kernels, so bit-identical to them (and to the naive kernels) over the
/// same boxes.
void engine_apply7_span(const Box<3>& frame, const double* in, double* out,
                        const Box<3>& out_cells);
void engine_apply125_span(const Box<3>& frame, const double* in, double* out,
                          const Box<3>& out_cells);

}  // namespace brickx::stencil
