#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/vec.h"
#include "core/brick.h"
#include "core/cell_array.h"
#include "core/decomp.h"

namespace brickx::stencil {

/// The paper's two proxy stencils (Section 7):
///  * a star-shaped 7-point stencil, arithmetic intensity 8/16 flop/byte;
///  * a 5^3 cube-shaped 125-point stencil with 10 constant coefficients
///    (by symmetry class of sorted |offset|), AI 139/16 flop/byte.

struct Stencil7 {
  static constexpr int kRadius = 1;
  /// Flops per output point, as the paper's AI counts them.
  static constexpr double kFlops = 8.0;
  /// c[0] center, c[1..6] the -x,+x,-y,+y,-z,+z points. Chosen to sum to 1
  /// (a damped diffusion step) so long runs stay bounded.
  static constexpr std::array<double, 7> c = {
      0.4, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1};
};

struct Stencil125 {
  static constexpr int kRadius = 2;
  static constexpr double kFlops = 139.0;
  /// Coefficient for offset class (|dx|,|dy|,|dz|) sorted ascending:
  /// the 10 classes of a 5^3 cube are 000,001,011,111,002,012,112,022,122,222.
  /// Involves a sort + LUT walk per call — kernels must read taps() instead
  /// of calling this per tap in their inner loops.
  static double coeff(int dz, int dy, int dx);
  /// Raw class weights (normalized so the 125 taps sum to 1).
  static const std::array<double, 10>& weights();
  /// All 125 tap coefficients of the 5^3 cube in dz-dy-dx order (dz
  /// slowest), precomputed once: taps()[((dz+2)*5 + (dy+2))*5 + (dx+2)]
  /// == coeff(dz, dy, dx).
  static const std::array<double, 125>& taps();
};

/// Apply the 7-point stencil over bricked storage: for every brick of `dec`
/// that overlaps `out_cells` (subdomain-local cell coordinates, ghost
/// coordinates allowed), compute the covered cells from `in` into `out`.
/// Cross-brick reads resolve through the adjacency indirection, so the
/// physical brick order — the layout — is irrelevant to the result.
/// Runs the fast-path kernel engine (brick-range pruning + interior tile
/// loops, DESIGN.md §10); bit-identical to apply7_bricks_naive.
template <int BK, int BJ, int BI>
void apply7_bricks(const BrickDecomp<3>& dec, const Brick<BK, BJ, BI>& out,
                   const Brick<BK, BJ, BI>& in, const Box<3>& out_cells);

/// Same for the 125-point stencil (radius 2; requires ghost width >= 2 and
/// brick extents >= 2 so neighbors stay within adjacent bricks).
template <int BK, int BJ, int BI>
void apply125_bricks(const BrickDecomp<3>& dec, const Brick<BK, BJ, BI>& out,
                     const Brick<BK, BJ, BI>& in, const Box<3>& out_cells);

/// The original per-access kernels: iterate every allocated brick, clip it
/// against `out_cells`, and resolve all taps through Brick::at(). Kept as
/// the reference implementations the fast engine is differentially tested
/// against (tests/stencil_kernel_test.cc) and as the naive side of the
/// micro_kernels perf trajectory.
template <int BK, int BJ, int BI>
void apply7_bricks_naive(const BrickDecomp<3>& dec,
                         const Brick<BK, BJ, BI>& out,
                         const Brick<BK, BJ, BI>& in, const Box<3>& out_cells);
template <int BK, int BJ, int BI>
void apply125_bricks_naive(const BrickDecomp<3>& dec,
                           const Brick<BK, BJ, BI>& out,
                           const Brick<BK, BJ, BI>& in,
                           const Box<3>& out_cells);

/// Lexicographic-array kernels (the YASK/MPI_Types baselines and the
/// reference): compute `out_cells` of `out` from `in`; both arrays must
/// cover out_cells expanded by the stencil radius. Fast row-pointer loops;
/// bit-identical to the *_naive per-cell versions below.
void apply7_array(const CellArray3& in, CellArray3& out,
                  const Box<3>& out_cells);
void apply125_array(const CellArray3& in, CellArray3& out,
                    const Box<3>& out_cells);

/// The original for_each + Vec3-arithmetic array kernels (reference side
/// of the differential tests and the micro_kernels array trajectory).
void apply7_array_naive(const CellArray3& in, CellArray3& out,
                        const Box<3>& out_cells);
void apply125_array_naive(const CellArray3& in, CellArray3& out,
                          const Box<3>& out_cells);

/// Span variants over non-owning `frame`-shaped buffers (one field slab of
/// an ArrayFields allocation): same fast row-pointer cores as apply7_array
/// / apply125_array, so bit-identical to them. `in` and `out` are both laid
/// out like a CellArray3 over `frame` (axis 0 fastest).
void apply7_span(const Box<3>& frame, const double* in, double* out,
                 const Box<3>& out_cells);
void apply125_span(const Box<3>& frame, const double* in, double* out,
                   const Box<3>& out_cells);

/// Per-cell reference versions of the span kernels (expressions identical
/// to the *_array_naive kernels; differential side for the span paths).
void apply7_span_naive(const Box<3>& frame, const double* in, double* out,
                       const Box<3>& out_cells);
void apply125_span_naive(const Box<3>& frame, const double* in, double* out,
                         const Box<3>& out_cells);

/// Evolve a fully periodic global domain `steps` times with the 7-point
/// (radius 1) or 125-point kernel — the ground truth distributed runs are
/// validated against. `field` is wrapped at the box edges.
void evolve_reference(CellArray3& field, int steps, bool use125);

/// Cells computed for timestep `s` (0-based) since the last exchange, under
/// ghost-cell expansion with ghost width `g` and stencil radius `r`:
/// the subdomain grown by the remaining valid margin g - (s+1)*r.
template <int D>
Box<D> expansion_output_box(const Vec<D>& domain, std::int64_t g,
                            std::int64_t r, std::int64_t s);

/// Number of timesteps one exchange covers: floor(g / r).
constexpr std::int64_t steps_per_exchange(std::int64_t g, std::int64_t r) {
  return g / r;
}

/// Onion decomposition: the part of `whole` not covered by `inner`, as up
/// to 2*D disjoint slabs. `inner` must be contained in `whole`. Used to
/// split a timestep into an interior (computable while the exchange is in
/// flight) and the ghost-dependent shell.
template <int D>
std::vector<Box<D>> shell_boxes(const Box<D>& whole, const Box<D>& inner);

}  // namespace brickx::stencil
