#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "simmpi/comm.h"
#include "simmpi/netmodel.h"

namespace brickx::gpu {

/// Cost model of a V100-class accelerator and its host link. Defaults are
/// Summit's published numbers (Section 2 of the paper).
struct GpuModel {
  double hbm_bw = 828.8e9;          ///< bytes/s, HBM2 stream
  double flops = 7.8e12;            ///< peak double-precision flop/s
  double launch_overhead = 4e-6;    ///< seconds per kernel launch
  double link_bw = 50e9;            ///< bytes/s CPU<->GPU (NVLink2)
  double fault_per_page = 2.5e-6;   ///< seconds per UM page fault
  /// Extra device-fault cost for a page the host previously touched only
  /// *partially* (a communicated region not aligned to page boundaries):
  /// the page bounces with dirty lines on both sides — the compute-side
  /// penalty the paper's Figure 15 attributes to unaligned regions.
  double fragmented_fault_extra = 10e-6;
  std::size_t page_size = 64 * 1024;  ///< Power9 host page size (ATS/UM)
  /// cuMemMap support (CUDA >= 10.2): lets device memory back mmap views,
  /// enabling a hypothetical MemMapCA. The paper's footnote 2 notes it was
  /// NOT supported on Summit; modeled here as the future-work ablation.
  bool supports_cumemmap = false;
};

/// Which side of the link currently holds a unified-memory page.
enum class Side : std::uint8_t { Host, Device };

/// A simulated GPU: a registry of device / unified address ranges (the
/// memory itself is ordinary host memory, so computation is real), explicit
/// transfer costs, a roofline kernel cost, and page-granularity
/// unified-memory residency with fault-migration costs.
///
/// Interop with simmpi: install hooks() into the Runtime; message buffers
/// in registered ranges are then classified Device (CUDA-Aware path,
/// GPUDirect latencies, no staging) or Unified (page faults charged when
/// the host/NIC touches device-resident pages — and the device faults them
/// back on the next kernel, reproducing the paper's Figure 15 effect).
///
/// Thread-safe; one instance serves all ranks (ranges do not overlap
/// across ranks).
class Device {
 public:
  explicit Device(GpuModel model) : model_(model) {}

  /// Declare [base, base+bytes) to be device (cudaMalloc) or unified
  /// (UM/ATS) memory. Unified ranges start device-resident.
  void register_range(const void* base, std::size_t bytes,
                      mpi::MemSpace space);
  void unregister_range(const void* base);

  /// Declare [base, base+bytes) an *alias* of the same physical pages as
  /// [canonical, canonical+bytes) — what an mmap view of unified memory is.
  /// Classification and residency redirect to the canonical range, so a
  /// page migrated through a view is migrated for the canonical mapping
  /// too (and vice versa).
  void register_alias(const void* base, std::size_t bytes,
                      const void* canonical);
  [[nodiscard]] mpi::MemSpace classify(const void* p) const;

  /// Host-side access to [p, p+n): unified pages resident on the device
  /// migrate back, costing fault time + link transfer. Returns seconds.
  /// Device (cudaMalloc) ranges cost nothing here — the NIC reads them via
  /// GPUDirect, and the per-message cost is in NetModel. Plain host memory
  /// is free.
  double touch_host(const void* p, std::size_t n);

  /// Device-side access (a kernel reading/writing [p, p+n)): unified pages
  /// resident on the host fault over. Returns seconds.
  double touch_device(const void* p, std::size_t n);

  /// Explicit cudaMemcpy-style staging: performs the copy for real and
  /// returns the modeled transfer seconds.
  double memcpy_h2d(void* dst, const void* src, std::size_t n);
  double memcpy_d2h(void* dst, const void* src, std::size_t n);

  /// Roofline kernel time for `cells` outputs.
  [[nodiscard]] double kernel_seconds(std::int64_t cells,
                                      double flops_per_cell,
                                      double bytes_per_cell) const;

  [[nodiscard]] const GpuModel& model() const { return model_; }

  /// Hooks for mpi::Runtime::set_mem_hooks. The touch hook charges
  /// touch_host for every buffer the (simulated) MPI library reads or
  /// writes from the host side.
  [[nodiscard]] mpi::MemHooks hooks();

  /// Unified pages migrated so far (diagnostics / tests).
  [[nodiscard]] std::int64_t pages_migrated() const { return migrations_; }

 private:
  struct Range {
    std::size_t bytes;
    mpi::MemSpace space;
    std::vector<Side> residency;   // per page; unified ranges only
    std::vector<bool> fragmented;  // host-touched partially (unaligned span)
    std::uintptr_t alias = 0;      // nonzero: redirect into this address
  };
  double migrate(Range& r, std::uintptr_t base, const void* p, std::size_t n,
                 Side to);
  /// Resolve p through at most one alias hop; returns the owning range (or
  /// ranges_.end()) with the redirected pointer in *rp.
  std::map<std::uintptr_t, Range>::iterator resolve(const void* p,
                                                    const void** rp);

  GpuModel model_;
  mutable std::mutex mu_;
  std::map<std::uintptr_t, Range> ranges_;
  std::int64_t migrations_ = 0;
};

}  // namespace brickx::gpu
