#include "gpusim/device.h"

#include <cstring>

#include "common/error.h"
#include "obs/obs.h"

namespace brickx::gpu {

void Device::register_range(const void* base, std::size_t bytes,
                            mpi::MemSpace space) {
  BX_CHECK(space != mpi::MemSpace::Host, "register only device/unified");
  std::lock_guard lk(mu_);
  const auto key = reinterpret_cast<std::uintptr_t>(base);
  Range r;
  r.bytes = bytes;
  r.space = space;
  if (space == mpi::MemSpace::Unified) {
    const std::size_t pages = (bytes + model_.page_size - 1) / model_.page_size;
    r.residency.assign(pages, Side::Device);
    r.fragmented.assign(pages, false);
  }
  // Reject overlap with an existing range.
  auto it = ranges_.upper_bound(key);
  if (it != ranges_.begin()) {
    auto prev = std::prev(it);
    BX_CHECK(prev->first + prev->second.bytes <= key,
             "overlapping device range registration");
  }
  if (it != ranges_.end())
    BX_CHECK(key + bytes <= it->first, "overlapping device range registration");
  ranges_.emplace(key, std::move(r));
}

void Device::unregister_range(const void* base) {
  std::lock_guard lk(mu_);
  const auto n =
      ranges_.erase(reinterpret_cast<std::uintptr_t>(base));
  BX_CHECK(n == 1, "range was not registered");
}

void Device::register_alias(const void* base, std::size_t bytes,
                            const void* canonical) {
  std::lock_guard lk(mu_);
  // The canonical span must land entirely in one registered, non-alias
  // unified range.
  const auto key = reinterpret_cast<std::uintptr_t>(canonical);
  auto it = ranges_.upper_bound(key);
  BX_CHECK(it != ranges_.begin(), "alias canonical target not registered");
  --it;
  BX_CHECK(key + bytes <= it->first + it->second.bytes,
           "alias extends past the canonical range");
  BX_CHECK(it->second.alias == 0, "alias of an alias is not supported");
  BX_CHECK(it->second.space == mpi::MemSpace::Unified,
           "aliases only make sense for unified ranges");
  Range r;
  r.bytes = bytes;
  r.space = mpi::MemSpace::Unified;
  r.alias = key;
  ranges_.emplace(reinterpret_cast<std::uintptr_t>(base), std::move(r));
}

std::map<std::uintptr_t, Device::Range>::iterator Device::resolve(
    const void* p, const void** rp) {
  *rp = p;
  const auto key = reinterpret_cast<std::uintptr_t>(p);
  auto it = ranges_.upper_bound(key);
  if (it == ranges_.begin()) return ranges_.end();
  --it;
  if (key >= it->first + it->second.bytes) return ranges_.end();
  if (it->second.alias != 0) {
    const std::uintptr_t redirected = it->second.alias + (key - it->first);
    *rp = reinterpret_cast<const void*>(redirected);
    auto cit = ranges_.upper_bound(redirected);
    if (cit == ranges_.begin()) return ranges_.end();
    --cit;
    if (redirected >= cit->first + cit->second.bytes) return ranges_.end();
    return cit;
  }
  return it;
}

mpi::MemSpace Device::classify(const void* p) const {
  std::lock_guard lk(mu_);
  const void* rp = nullptr;
  auto it = const_cast<Device*>(this)->resolve(p, &rp);
  if (it == const_cast<Device*>(this)->ranges_.end()) return mpi::MemSpace::Host;
  return it->second.space;
}

double Device::migrate(Range& r, std::uintptr_t base, const void* p,
                       std::size_t n, Side to) {
  if (r.space != mpi::MemSpace::Unified || n == 0) return 0.0;
  const auto key = reinterpret_cast<std::uintptr_t>(p);
  const std::size_t first = (key - base) / model_.page_size;
  const std::size_t last =
      (key - base + n - 1) / model_.page_size;  // inclusive
  // A host access not aligned to page boundaries leaves the first/last
  // page "fragmented": part of its data is live on each side. The next
  // device fault on such a page costs extra (Figure 15's unaligned-region
  // compute penalty). Page-aligned accesses — MemMap views — never
  // fragment.
  const bool frag_lo = (key - base) % model_.page_size != 0;
  const bool frag_hi = (key - base + n) % model_.page_size != 0 &&
                       r.bytes > key - base + n;
  std::int64_t moved = 0;
  double extra = 0.0;
  for (std::size_t pg = first; pg <= last && pg < r.residency.size(); ++pg) {
    if (to == Side::Host) {
      const bool partial =
          (pg == first && frag_lo) || (pg == last && frag_hi);
      if (partial) r.fragmented[pg] = true;
      else if (r.residency[pg] != to) r.fragmented[pg] = false;
    } else if (r.fragmented[pg]) {
      extra += model_.fragmented_fault_extra;
      r.fragmented[pg] = false;
    }
    if (r.residency[pg] != to) {
      r.residency[pg] = to;
      ++moved;
    }
  }
  migrations_ += moved;
  double secs = extra;
  if (moved != 0) {
    const double bytes = static_cast<double>(moved) *
                         static_cast<double>(model_.page_size);
    secs = static_cast<double>(moved) * model_.fault_per_page +
           bytes / model_.link_bw + extra;
    obs::counter_add("gpu.pages_migrated", moved);
  }
  // The caller advances its rank clock by the returned seconds, so the
  // migration occupies [now, now + secs) on that rank's timeline.
  if (secs > 0.0) obs::note_cost(obs::Cat::UmMigrate, "um_migrate", secs);
  return secs;
}

double Device::touch_host(const void* p, std::size_t n) {
  std::lock_guard lk(mu_);
  const void* rp = nullptr;
  auto it = resolve(p, &rp);
  if (it == ranges_.end()) return 0.0;
  return migrate(it->second, it->first, rp, n, Side::Host);
}

double Device::touch_device(const void* p, std::size_t n) {
  std::lock_guard lk(mu_);
  const void* rp = nullptr;
  auto it = resolve(p, &rp);
  if (it == ranges_.end()) return 0.0;
  return migrate(it->second, it->first, rp, n, Side::Device);
}

double Device::memcpy_h2d(void* dst, const void* src, std::size_t n) {
  std::memcpy(dst, src, n);
  return static_cast<double>(n) / model_.link_bw + model_.launch_overhead;
}

double Device::memcpy_d2h(void* dst, const void* src, std::size_t n) {
  std::memcpy(dst, src, n);
  return static_cast<double>(n) / model_.link_bw + model_.launch_overhead;
}

double Device::kernel_seconds(std::int64_t cells, double flops_per_cell,
                              double bytes_per_cell) const {
  const double c = static_cast<double>(cells);
  const double t_mem = c * bytes_per_cell / model_.hbm_bw;
  const double t_flop = c * flops_per_cell / model_.flops;
  return std::max(t_mem, t_flop) + model_.launch_overhead;
}

mpi::MemHooks Device::hooks() {
  mpi::MemHooks h;
  h.classify = [this](const void* p) { return classify(p); };
  h.touch = [this](int /*rank*/, const void* p, std::size_t n,
                   bool /*write*/) { return touch_host(p, n); };
  return h;
}

}  // namespace brickx::gpu
