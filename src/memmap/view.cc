#include "memmap/view.h"

#include <sys/mman.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "memmap/pagesize.h"
#include "obs/obs.h"

namespace brickx::mm {

namespace {
std::atomic<std::int64_t> g_live_segments{0};

[[noreturn]] void sys_fail(const char* what) {
  brickx::fail(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

std::int64_t live_view_segments() { return g_live_segments.load(); }

Mapping::Mapping(const MemFile& file) : size_(file.size()) {
  void* p = mmap(nullptr, size_, PROT_READ | PROT_WRITE, MAP_SHARED,
                 file.fd(), 0);
  if (p == MAP_FAILED) sys_fail("mmap(Mapping)");
  base_ = static_cast<std::byte*>(p);
}

Mapping::Mapping(Mapping&& o) noexcept
    : base_(std::exchange(o.base_, nullptr)), size_(std::exchange(o.size_, 0)) {}

Mapping& Mapping::operator=(Mapping&& o) noexcept {
  if (this != &o) {
    if (base_) munmap(base_, size_);
    base_ = std::exchange(o.base_, nullptr);
    size_ = std::exchange(o.size_, 0);
  }
  return *this;
}

Mapping::~Mapping() {
  if (base_) munmap(base_, size_);
}

View::View(View&& o) noexcept
    : base_(std::exchange(o.base_, nullptr)),
      size_(std::exchange(o.size_, 0)),
      segments_(std::exchange(o.segments_, 0)),
      segment_map_(std::move(o.segment_map_)) {}

View& View::operator=(View&& o) noexcept {
  if (this != &o) {
    if (base_) {
      munmap(base_, size_);
      g_live_segments -= segments_;
    }
    base_ = std::exchange(o.base_, nullptr);
    size_ = std::exchange(o.size_, 0);
    segments_ = std::exchange(o.segments_, 0);
    segment_map_ = std::move(o.segment_map_);
  }
  return *this;
}

View::~View() {
  if (base_) {
    munmap(base_, size_);
    g_live_segments -= segments_;
  }
}

ViewBuilder::ViewBuilder(const MemFile& file) : file_(&file) {}

ViewBuilder& ViewBuilder::add(std::size_t offset, std::size_t length) {
  const std::size_t ps = host_page_size();
  BX_CHECK(offset % ps == 0, "view segment offset not page aligned");
  BX_CHECK(length % ps == 0, "view segment length not page aligned");
  BX_CHECK(offset + length <= file_->size(), "view segment beyond file end");
  if (length == 0) return *this;
  segs_.push_back({offset, length});
  total_ += length;
  return *this;
}

View ViewBuilder::build() const {
  View v;
  if (total_ == 0) return v;
  // Reserve the contiguous range first so nothing else can land inside it,
  // then overwrite it segment by segment with MAP_FIXED file mappings.
  void* base = mmap(nullptr, total_, PROT_NONE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (base == MAP_FAILED) sys_fail("mmap(reserve)");
  std::size_t at = 0;
  for (const auto& s : segs_) {
    void* want = static_cast<std::byte*>(base) + at;
    void* got = mmap(want, s.length, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_FIXED, file_->fd(),
                     static_cast<off_t>(s.offset));
    if (got == MAP_FAILED) {
      munmap(base, total_);
      sys_fail("mmap(MAP_FIXED segment)");
    }
    at += s.length;
  }
  v.base_ = static_cast<std::byte*>(base);
  v.size_ = total_;
  v.segments_ = static_cast<std::int64_t>(segs_.size());
  std::size_t vo = 0;
  for (const auto& s : segs_) {
    v.segment_map_.push_back({vo, s.offset, s.length});
    vo += s.length;
  }
  g_live_segments += v.segments_;
  obs::instant(obs::Cat::MmapSetup, "view_build");
  obs::counter_add("mm.views_built", 1);
  obs::counter_add("mm.view_segments", v.segments_);
  obs::counter_add("mm.view_bytes", static_cast<std::int64_t>(total_));
  return v;
}

}  // namespace brickx::mm
