#include "memmap/mem_file.h"

#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "memmap/pagesize.h"

namespace brickx::mm {

std::size_t host_page_size() {
  static const std::size_t ps = static_cast<std::size_t>(sysconf(_SC_PAGESIZE));
  return ps;
}

MemFile::MemFile(std::size_t size, const std::string& name) {
  size_ = round_up(size, host_page_size());
  fd_ = static_cast<int>(memfd_create(name.c_str(), 0));
  if (fd_ < 0) brickx::fail(std::string("memfd_create: ") + std::strerror(errno));
  if (ftruncate(fd_, static_cast<off_t>(size_)) != 0) {
    close(fd_);
    brickx::fail(std::string("ftruncate: ") + std::strerror(errno));
  }
}

MemFile::MemFile(MemFile&& o) noexcept : fd_(o.fd_), size_(o.size_) {
  o.fd_ = -1;
  o.size_ = 0;
}

MemFile& MemFile::operator=(MemFile&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(o.fd_, -1);
    size_ = std::exchange(o.size_, 0);
  }
  return *this;
}

MemFile::~MemFile() {
  if (fd_ >= 0) close(fd_);
}

}  // namespace brickx::mm
