#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "memmap/mem_file.h"

namespace brickx::mm {

/// An owned contiguous mapping of a whole MemFile — the canonical view a
/// program computes on.
class Mapping {
 public:
  /// Map `file` read/write, MAP_SHARED (all aliased views observe writes).
  explicit Mapping(const MemFile& file);
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  Mapping(Mapping&& o) noexcept;
  Mapping& operator=(Mapping&& o) noexcept;
  ~Mapping();

  [[nodiscard]] std::byte* data() const { return base_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  std::byte* base_ = nullptr;
  std::size_t size_ = 0;
};

/// Builds the paper's Figure-5 construct: a *single contiguous virtual
/// range* stitched together from page-aligned segments of a MemFile, so that
/// scattered (and possibly repeated) regions of storage can be handed to a
/// send/recv as one plain (pointer, length) message.
///
///   ViewBuilder b(file);
///   b.add(pos6, len6);       // file offsets, page-aligned
///   b.add(pos1, len1);
///   View v = b.build();      // v.data() .. v.data()+v.size() is contiguous
class View {
 public:
  View() = default;
  View(const View&) = delete;
  View& operator=(const View&) = delete;
  View(View&& o) noexcept;
  View& operator=(View&& o) noexcept;
  ~View();

  [[nodiscard]] std::byte* data() const { return base_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool valid() const { return base_ != nullptr; }

  /// Number of distinct mmap segments stitched into this view (counts
  /// against the kernel's vm.max_map_count budget).
  [[nodiscard]] std::int64_t segments() const { return segments_; }

  /// Where each stitched segment came from — (offset within this view,
  /// offset within the backing file, length). Lets aliasing-aware layers
  /// (e.g. the unified-memory simulator) map view addresses back to
  /// canonical pages.
  struct SegmentInfo {
    std::size_t view_offset;
    std::size_t file_offset;
    std::size_t length;
  };
  [[nodiscard]] const std::vector<SegmentInfo>& segment_map() const {
    return segment_map_;
  }

 private:
  friend class ViewBuilder;
  std::byte* base_ = nullptr;
  std::size_t size_ = 0;
  std::int64_t segments_ = 0;
  std::vector<SegmentInfo> segment_map_;
};

class ViewBuilder {
 public:
  explicit ViewBuilder(const MemFile& file);

  /// Append the file segment [offset, offset+length) to the view. Both must
  /// be multiples of the host page size; the segment must lie inside the
  /// file. The same segment may be added to any number of views — that is
  /// the aliasing MemMap exploits.
  ViewBuilder& add(std::size_t offset, std::size_t length);

  /// Total bytes queued so far.
  [[nodiscard]] std::size_t total() const { return total_; }

  /// Reserve one contiguous virtual range and MAP_FIXED each segment into
  /// it. Throws brickx::Error on any mmap failure (e.g. vm.max_map_count).
  [[nodiscard]] View build() const;

 private:
  const MemFile* file_;
  struct Seg {
    std::size_t offset, length;
  };
  std::vector<Seg> segs_;
  std::size_t total_ = 0;
};

/// Process-wide count of currently live mapped segments created via
/// ViewBuilder; tests use it to verify cleanup, and it mirrors the paper's
/// discussion of the vm.max_map_count (65530) limit.
std::int64_t live_view_segments();

}  // namespace brickx::mm
