#pragma once

#include <cstddef>
#include <string>

namespace brickx::mm {

/// RAII wrapper over an anonymous in-memory file (memfd_create). The file
/// stands for "a chunk of physical memory" (paper, Section 4): mapping
/// segments of it multiple times creates aliased views of the same data.
class MemFile {
 public:
  /// Create an in-memory file of `size` bytes (rounded up to page size).
  explicit MemFile(std::size_t size, const std::string& name = "brickx");

  MemFile(const MemFile&) = delete;
  MemFile& operator=(const MemFile&) = delete;
  MemFile(MemFile&& o) noexcept;
  MemFile& operator=(MemFile&& o) noexcept;
  ~MemFile();

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  int fd_ = -1;
  std::size_t size_ = 0;
};

}  // namespace brickx::mm
