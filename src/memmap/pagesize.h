#pragma once

#include <cstddef>
#include <cstdint>

namespace brickx::mm {

/// The host's base page size (sysconf(_SC_PAGESIZE)); 4 KiB on x86-64.
std::size_t host_page_size();

/// Round `n` up to a multiple of `page` (page must be a power of two or any
/// positive value; generic modulo round-up is used).
constexpr std::size_t round_up(std::size_t n, std::size_t page) {
  return page == 0 ? n : ((n + page - 1) / page) * page;
}

/// Bytes wasted when padding `n` to page granularity.
constexpr std::size_t pad_waste(std::size_t n, std::size_t page) {
  return round_up(n, page) - n;
}

}  // namespace brickx::mm
