#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace brickx {

/// Error type thrown by all brickx runtime checks.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] void fail(const std::string& msg,
                       std::source_location loc = std::source_location::current());

/// Runtime invariant check, active in all build types. Prefer this over
/// assert(): decompositions and exchanges are set up once and reused for
/// thousands of timesteps, so checks are not on hot paths.
inline void check(bool cond, const char* msg,
                  std::source_location loc = std::source_location::current()) {
  if (!cond) fail(msg, loc);
}

}  // namespace brickx

// Macro variant kept for call sites needing lazy message construction; the
// condition text is included in the diagnostic.
#define BX_CHECK(cond, msg)                                      \
  do {                                                           \
    if (!(cond)) ::brickx::fail(std::string(msg) + " [" #cond "]"); \
  } while (0)
