#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace brickx {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& s) {
  BX_CHECK(!rows_.empty(), "cell() before row()");
  rows_.back().push_back(s);
  return *this;
}

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return cell(std::string(buf));
}

Table& Table::cell_sci(double v, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", prec, v);
  return cell(std::string(buf));
}

void Table::print(std::ostream& os) const { os << str(); }

std::string Table::str() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size() && c < w.size(); ++c)
      w[c] = std::max(w[c], r[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& s = c < r.size() ? r[c] : std::string();
      os << (c ? "  " : "") << s
         << std::string(w[c] > s.size() ? w[c] - s.size() : 0, ' ');
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto x : w) total += x + 2;
  os << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) os << (c ? "," : "") << r[c];
    os << "\n";
  };
  emit(headers_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

}  // namespace brickx
