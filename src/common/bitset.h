#pragma once

#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>

#include "common/error.h"

namespace brickx {

/// A set of *signed axis directions*, the notation system of the paper's
/// Figure 3. Elements are nonzero integers in [-kMaxAxis, kMaxAxis]:
/// `+i` denotes the positive direction of axis i (A_i^+), `-i` the negative
/// (A_i^-). A BitSet identifies a neighbor N(S) and a surface/ghost region
/// r(S): e.g. `BitSet{1, -2}` is the neighbor one step up in axis 1 and one
/// step down in axis 2.
///
/// The empty set denotes the subdomain itself (interior); it is not a valid
/// neighbor.
class BitSet {
 public:
  static constexpr int kMaxAxis = 16;

  constexpr BitSet() = default;

  /// Construct from a list of signed axes, e.g. `BitSet{-1, -2}`.
  /// Inserting both +i and -i is allowed (used transiently by region
  /// enumeration helpers) but such a set never names a single neighbor.
  BitSet(std::initializer_list<int> elems) {
    for (int e : elems) set(e);
  }

  /// Insert signed axis `e` (nonzero, |e| <= kMaxAxis).
  void set(int e) { bits_ |= bit(e); }

  /// Remove signed axis `e` if present.
  void clear(int e) { bits_ &= ~bit(e); }

  /// True iff signed axis `e` is in the set.
  [[nodiscard]] bool has(int e) const { return (bits_ & bit(e)) != 0; }

  /// Number of elements.
  [[nodiscard]] int size() const { return __builtin_popcountll(bits_); }

  [[nodiscard]] bool empty() const { return bits_ == 0; }

  /// Signed subset relation: every element of *this is an element of `o`.
  [[nodiscard]] bool subset_of(const BitSet& o) const {
    return (bits_ & o.bits_) == bits_;
  }

  /// Set with every element's direction flipped (+i <-> -i). A region σ of
  /// this rank maps onto the ghost region -σ of the neighbor it is sent to.
  [[nodiscard]] BitSet flipped() const {
    BitSet r;
    r.bits_ = ((bits_ & kNegMask) >> kMaxAxis) | ((bits_ & kPosMask) << kMaxAxis);
    return r;
  }

  [[nodiscard]] BitSet operator&(const BitSet& o) const {
    BitSet r;
    r.bits_ = bits_ & o.bits_;
    return r;
  }
  [[nodiscard]] BitSet operator|(const BitSet& o) const {
    BitSet r;
    r.bits_ = bits_ | o.bits_;
    return r;
  }
  bool operator==(const BitSet& o) const = default;

  /// The direction of axis `axis` (1-based, unsigned) in this set:
  /// -1, 0, or +1. Sets holding both +axis and -axis are rejected.
  [[nodiscard]] int dir_of(int axis) const {
    const bool pos = has(axis), neg = has(-axis);
    BX_CHECK(!(pos && neg), "BitSet holds both directions of axis");
    return pos ? 1 : (neg ? -1 : 0);
  }

  /// Raw bit pattern; stable across runs, usable as a hash/map key.
  [[nodiscard]] std::uint64_t raw() const { return bits_; }

  /// Inverse of raw(): rebuild a set from its stable bit pattern (bits
  /// outside the signed-axis range are rejected). The tuned-config
  /// artifact serializes layouts this way.
  static BitSet from_raw(std::uint64_t bits) {
    BX_CHECK((bits & ~(kPosMask | kNegMask)) == 0,
             "BitSet::from_raw: bits outside the signed-axis range");
    BitSet r;
    r.bits_ = bits;
    return r;
  }

  /// Render as e.g. "{1,-2}"; empty set renders "{}".
  [[nodiscard]] std::string str() const;

 private:
  static constexpr std::uint64_t kPosMask = (1ull << kMaxAxis) - 1;
  static constexpr std::uint64_t kNegMask = kPosMask << kMaxAxis;

  static std::uint64_t bit(int e) {
    BX_CHECK(e != 0 && e >= -kMaxAxis && e <= kMaxAxis,
             "BitSet element out of range");
    return e > 0 ? (1ull << (e - 1)) : (1ull << (kMaxAxis - e - 1));
  }

  std::uint64_t bits_ = 0;
};

std::ostream& operator<<(std::ostream& os, const BitSet& s);

}  // namespace brickx
