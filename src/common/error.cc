#include "common/error.h"

#include <sstream>

namespace brickx {

void fail(const std::string& msg, std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ":" << loc.line() << ": " << msg;
  throw Error(os.str());
}

}  // namespace brickx
