#pragma once

#include <cstddef>
#include <cstdint>

/// Compile-time SIMD width selection (doubles per vector).
///
/// The explicit-SIMD kernel tier (DESIGN.md §16) is built on GCC/Clang
/// vector extensions rather than per-ISA intrinsics: a vector of W doubles
/// compiles on *any* target (the compiler emulates widths the hardware
/// lacks), so every width in {1, 2, 4, 8} is instantiable — and
/// differentially testable — in a single build, on any machine.
///
/// Width resolution, in priority order:
///   1. `-DBRICKX_SIMD_WIDTH=N` (the CMake cache option of the same name),
///      the forced override the scalar-fallback CI pass uses;
///   2. the target ISA the translation unit is compiled for:
///      AVX-512 -> 8, AVX/AVX2 -> 4, SSE2/NEON -> 2, anything else -> 1.
///
/// The detected width is kept separately from the active one so build
/// provenance (BENCH_kernels.json) can record both.

#if defined(__AVX512F__)
#define BRICKX_SIMD_DETECTED 8
#elif defined(__AVX2__) || defined(__AVX__)
#define BRICKX_SIMD_DETECTED 4
#elif defined(__SSE2__) || defined(__x86_64__) || defined(__aarch64__) || \
    defined(__ARM_NEON)
#define BRICKX_SIMD_DETECTED 2
#else
#define BRICKX_SIMD_DETECTED 1
#endif

#if !defined(BRICKX_SIMD_WIDTH)
#define BRICKX_SIMD_WIDTH BRICKX_SIMD_DETECTED
#endif

static_assert(BRICKX_SIMD_WIDTH == 1 || BRICKX_SIMD_WIDTH == 2 ||
                  BRICKX_SIMD_WIDTH == 4 || BRICKX_SIMD_WIDTH == 8,
              "BRICKX_SIMD_WIDTH must be 1, 2, 4 or 8 (doubles per vector)");

namespace brickx::simd {

/// Doubles per vector the kernel tier dispatches to by default.
inline constexpr int kActiveWidth = BRICKX_SIMD_WIDTH;

/// Width the target ISA natively supports (ignores the override).
inline constexpr int kDetectedWidth = BRICKX_SIMD_DETECTED;

/// Storage alignment (bytes) that satisfies every supported width — one
/// AVX-512 vector. BrickStorage heap allocations honor this.
inline constexpr std::size_t kAlign = 64;

/// Name of the vector ISA this translation unit targets (provenance).
const char* isa_name();

/// True when `p` can be the base of width-`w` aligned vector stores.
inline bool lane_aligned(const void* p, int w) {
  return reinterpret_cast<std::uintptr_t>(p) %
             (static_cast<std::size_t>(w) * sizeof(double)) ==
         0;
}

/// A vector of W doubles. Thin wrapper over the compiler vector type; the
/// kernels use it so the 7/125-point expressions keep exactly the shape of
/// their scalar counterparts (same adds, same order, same FMA-contraction
/// opportunities) with one cell per lane.
///
/// Only full specializations exist (widths 1/2/4/8): GCC does not apply a
/// `vector_size` attribute whose operand depends on a template parameter
/// (the typedef silently degrades to plain `double`), so each width's
/// vector typedef must be spelled with a literal byte count.
template <int W>
struct DVec;

/// `V` is the natural (lane-aligned) vector; `VU` the same vector with
/// alignment relaxed to that of a bare double, because the halo-tile rows
/// the kernels read are not lane-aligned (row stride B + 2R). `may_alias`
/// makes the casts from the underlying double arrays well-defined.
#define BRICKX_SIMD_DVEC(W, BYTES)                                        \
  template <>                                                             \
  struct DVec<W> {                                                        \
    typedef double V __attribute__((vector_size(BYTES), may_alias));      \
    typedef double VU __attribute__((vector_size(BYTES),                  \
                                     aligned(alignof(double)),            \
                                     may_alias));                         \
                                                                          \
    V v;                                                                  \
                                                                          \
    static DVec broadcast(double x) {                                     \
      DVec r;                                                             \
      for (int l = 0; l < W; ++l) r.v[l] = x;                             \
      return r;                                                           \
    }                                                                     \
    static DVec zero() { return DVec{V{}}; }                              \
    /* Unaligned load of W consecutive doubles. */                        \
    static DVec loadu(const double* p) {                                  \
      return DVec{*reinterpret_cast<const VU*>(p)};                       \
    }                                                                     \
    /* Aligned store; `p` must satisfy lane_aligned(p, W). */             \
    void store(double* p) const { *reinterpret_cast<V*>(p) = v; }         \
                                                                          \
    double operator[](int l) const { return v[l]; }                       \
    DVec& operator+=(DVec o) {                                            \
      v += o.v;                                                           \
      return *this;                                                       \
    }                                                                     \
    friend DVec operator+(DVec a, DVec b) { return DVec{a.v + b.v}; }     \
    friend DVec operator*(DVec a, DVec b) { return DVec{a.v * b.v}; }     \
  };

BRICKX_SIMD_DVEC(2, 16)
BRICKX_SIMD_DVEC(4, 32)
BRICKX_SIMD_DVEC(8, 64)

#undef BRICKX_SIMD_DVEC

/// Scalar specialization: the same API at width 1, so width-templated
/// kernels degrade to plain scalar code with no masked tail logic.
template <>
struct DVec<1> {
  double v;

  static DVec broadcast(double x) { return DVec{x}; }
  static DVec zero() { return DVec{0.0}; }
  static DVec loadu(const double* p) { return DVec{*p}; }
  void store(double* p) const { *p = v; }

  double operator[](int) const { return v; }
  DVec& operator+=(DVec o) {
    v += o.v;
    return *this;
  }
  friend DVec operator+(DVec a, DVec b) { return DVec{a.v + b.v}; }
  friend DVec operator*(DVec a, DVec b) { return DVec{a.v * b.v}; }
};

}  // namespace brickx::simd
