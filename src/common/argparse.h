#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace brickx {

/// Minimal GNU-style option parser for examples and benches.
///
///   ArgParser ap("fig08", "K1 scaling sweep");
///   ap.add("-d", "subdomain dimension", "64");
///   ap.add_flag("-v", "validate against reference");
///   ap.parse(argc, argv);        // prints help and exits on -h/--help
///   int d = ap.get_int("-d");
class ArgParser {
 public:
  ArgParser(std::string prog, std::string description);

  /// Register an option taking a value, with a default.
  void add(const std::string& name, const std::string& help,
           const std::string& default_value);
  /// Register a boolean flag (present/absent).
  void add_flag(const std::string& name, const std::string& help);

  /// Parse argv. Unknown options or missing values throw brickx::Error.
  /// `-h`/`--help` prints usage and std::exit(0)s.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Comma-separated integer list, e.g. "-s 128,64,32".
  [[nodiscard]] std::vector<std::int64_t> get_int_list(
      const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  struct Opt {
    std::string help;
    std::string value;
    bool is_flag = false;
    bool seen = false;
  };
  std::string prog_, description_;
  std::map<std::string, Opt> opts_;
  std::vector<std::string> order_;
};

}  // namespace brickx
