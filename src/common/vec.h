#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <numeric>

#include "common/error.h"

namespace brickx {

/// Fixed-size integer vector for grid indices and extents.
/// Axis 0 is the contiguous (fastest-varying) axis, matching the `i` in
/// `a[k][j][i]` — i.e. Vec<3> v = {i, j, k}.
template <int D>
struct Vec {
  std::array<std::int64_t, D> v{};

  constexpr Vec() = default;
  constexpr Vec(std::initializer_list<std::int64_t> init) {
    int i = 0;
    for (auto x : init) v[i++] = x;
  }
  /// All-components-equal vector.
  static constexpr Vec fill(std::int64_t x) {
    Vec r;
    r.v.fill(x);
    return r;
  }

  constexpr std::int64_t& operator[](int i) { return v[i]; }
  constexpr std::int64_t operator[](int i) const { return v[i]; }

  constexpr Vec operator+(const Vec& o) const {
    Vec r;
    for (int i = 0; i < D; ++i) r[i] = v[i] + o[i];
    return r;
  }
  constexpr Vec operator-(const Vec& o) const {
    Vec r;
    for (int i = 0; i < D; ++i) r[i] = v[i] - o[i];
    return r;
  }
  constexpr Vec operator*(const Vec& o) const {
    Vec r;
    for (int i = 0; i < D; ++i) r[i] = v[i] * o[i];
    return r;
  }
  constexpr Vec operator*(std::int64_t s) const {
    Vec r;
    for (int i = 0; i < D; ++i) r[i] = v[i] * s;
    return r;
  }
  constexpr Vec operator/(const Vec& o) const {
    Vec r;
    for (int i = 0; i < D; ++i) r[i] = v[i] / o[i];
    return r;
  }
  bool operator==(const Vec& o) const = default;

  /// Product of components (volume of an extent vector).
  [[nodiscard]] constexpr std::int64_t prod() const {
    std::int64_t p = 1;
    for (int i = 0; i < D; ++i) p *= v[i];
    return p;
  }
};

using Vec2 = Vec<2>;
using Vec3 = Vec<3>;

/// Row-major-with-axis-0-fastest linear index of `pos` within extents `ext`.
template <int D>
constexpr std::int64_t linearize(const Vec<D>& pos, const Vec<D>& ext) {
  std::int64_t idx = 0;
  for (int i = D - 1; i >= 0; --i) idx = idx * ext[i] + pos[i];
  return idx;
}

/// Inverse of linearize().
template <int D>
constexpr Vec<D> delinearize(std::int64_t idx, const Vec<D>& ext) {
  Vec<D> pos;
  for (int i = 0; i < D; ++i) {
    pos[i] = idx % ext[i];
    idx /= ext[i];
  }
  return pos;
}

/// Half-open axis-aligned box [lo, hi) used to describe regions of cells or
/// bricks.
template <int D>
struct Box {
  Vec<D> lo, hi;

  [[nodiscard]] Vec<D> extent() const { return hi - lo; }
  [[nodiscard]] std::int64_t volume() const {
    std::int64_t p = 1;
    for (int i = 0; i < D; ++i) p *= (hi[i] > lo[i] ? hi[i] - lo[i] : 0);
    return p;
  }
  [[nodiscard]] bool contains(const Vec<D>& p) const {
    for (int i = 0; i < D; ++i)
      if (p[i] < lo[i] || p[i] >= hi[i]) return false;
    return true;
  }
  [[nodiscard]] bool empty() const { return volume() == 0; }
  bool operator==(const Box& o) const = default;
};

/// Iterate all positions of box `b` in lexicographic order (axis 0 fastest),
/// calling `f(Vec<D>)`. Sender and receiver of an exchange both use this
/// order, which is what makes region payloads position-independent.
template <int D, typename F>
void for_each(const Box<D>& b, F&& f) {
  if (b.empty()) return;
  Vec<D> p = b.lo;
  while (true) {
    f(p);
    int i = 0;
    while (i < D) {
      if (++p[i] < b.hi[i]) break;
      p[i] = b.lo[i];
      ++i;
    }
    if (i == D) return;
  }
}

template <int D>
std::ostream& operator<<(std::ostream& os, const Vec<D>& v);

}  // namespace brickx
