#include "common/argparse.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/error.h"

namespace brickx {

ArgParser::ArgParser(std::string prog, std::string description)
    : prog_(std::move(prog)), description_(std::move(description)) {}

void ArgParser::add(const std::string& name, const std::string& help,
                    const std::string& default_value) {
  BX_CHECK(!opts_.count(name), "duplicate option");
  opts_[name] = Opt{help, default_value, false, false};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  BX_CHECK(!opts_.count(name), "duplicate option");
  opts_[name] = Opt{help, "", true, false};
  order_.push_back(name);
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "-h" || a == "--help") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    // GNU-style attached value: --name=value (long options only, so a
    // future short option bundling "=" in its value stays representable).
    std::string attached;
    bool has_attached = false;
    const std::size_t eq = a.find('=');
    if (a.size() > 2 && a[0] == '-' && a[1] == '-' && eq != std::string::npos) {
      attached = a.substr(eq + 1);
      a.resize(eq);
      has_attached = true;
    }
    auto it = opts_.find(a);
    if (it == opts_.end()) {
      // A mistyped --name=value must never be silently absorbed or die as
      // an uncaught exception deep in a bench: diagnose on stderr with the
      // full flag inventory and exit with a distinct status.
      std::string msg = "error: unknown option: " + a + "\nvalid options:\n";
      for (const auto& name : order_) msg += "  " + name + "\n";
      msg += "  -h, --help\n";
      std::fputs(msg.c_str(), stderr);
      std::exit(2);
    }
    if (it->second.is_flag) {
      if (has_attached) fail("flag " + a + " takes no value");
      it->second.seen = true;
    } else if (has_attached) {
      it->second.value = attached;
      it->second.seen = true;
    } else {
      if (i + 1 >= argc) fail("option " + a + " requires a value");
      it->second.value = argv[++i];
      it->second.seen = true;
    }
  }
}

std::string ArgParser::get(const std::string& name) const {
  auto it = opts_.find(name);
  if (it == opts_.end()) fail("option not registered: " + name);
  return it->second.value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(get(name));
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(get(name));
}

bool ArgParser::get_flag(const std::string& name) const {
  auto it = opts_.find(name);
  if (it == opts_.end()) fail("flag not registered: " + name);
  return it->second.seen;
}

std::vector<std::int64_t> ArgParser::get_int_list(
    const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(get(name));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(std::stoll(tok));
  }
  return out;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << prog_ << " -- " << description_ << "\noptions:\n";
  for (const auto& name : order_) {
    const Opt& o = opts_.at(name);
    os << "  " << name;
    if (!o.is_flag) os << " <v=" << o.value << ">";
    os << "  " << o.help << "\n";
  }
  os << "  -h, --help  show this message\n";
  return os.str();
}

}  // namespace brickx
