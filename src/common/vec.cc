#include "common/vec.h"

#include <ostream>

namespace brickx {

template <int D>
std::ostream& operator<<(std::ostream& os, const Vec<D>& v) {
  os << "(";
  for (int i = 0; i < D; ++i) os << (i ? "," : "") << v[i];
  return os << ")";
}

template std::ostream& operator<<(std::ostream&, const Vec<1>&);
template std::ostream& operator<<(std::ostream&, const Vec<2>&);
template std::ostream& operator<<(std::ostream&, const Vec<3>&);
template std::ostream& operator<<(std::ostream&, const Vec<4>&);
template std::ostream& operator<<(std::ostream&, const Vec<5>&);

}  // namespace brickx
