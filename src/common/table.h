#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace brickx {

/// Column-aligned plain-text table used by the bench binaries to print
/// paper-figure series. Cells are strings; convenience setters format
/// numbers consistently (engineering precision for times/rates).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls append to it.
  Table& row();
  Table& cell(const std::string& s);
  Table& cell(std::int64_t v);
  /// Fixed-notation double with `prec` digits after the point.
  Table& cell(double v, int prec = 4);
  /// Scientific notation (for spans of several decades, e.g. ms series).
  Table& cell_sci(double v, int prec = 3);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string str() const;
  /// Comma-separated variant for machine consumption.
  [[nodiscard]] std::string csv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace brickx
