#include "common/bitset.h"

#include <ostream>
#include <sstream>

namespace brickx {

std::string BitSet::str() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (int a = 1; a <= kMaxAxis; ++a) {
    for (int s : {a, -a}) {
      if (has(s)) {
        if (!first) os << ",";
        os << s;
        first = false;
      }
    }
  }
  os << "}";
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const BitSet& s) {
  return os << s.str();
}

}  // namespace brickx
