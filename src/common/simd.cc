#include "common/simd.h"

namespace brickx::simd {

const char* isa_name() {
#if defined(__AVX512F__)
  return "avx512f";
#elif defined(__AVX2__)
  return "avx2";
#elif defined(__AVX__)
  return "avx";
#elif defined(__SSE2__) || defined(__x86_64__)
  return "sse2";
#elif defined(__aarch64__) || defined(__ARM_NEON)
  return "neon";
#else
  return "generic";
#endif
}

}  // namespace brickx::simd
