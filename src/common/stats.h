#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

namespace brickx {

/// Streaming accumulator reporting `[minimum, average, maximum] (σ)` — the
/// exact format the paper's artifact prints for calc/pack/call/wait/perf.
/// Uses Welford's algorithm for a numerically stable variance.
class Stats {
 public:
  void add(double x) {
    ++n_;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double avg() const { return mean_; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }
  /// Population standard deviation.
  [[nodiscard]] double sigma() const {
    return n_ > 1 ? std::sqrt(m2_ / static_cast<double>(n_)) : 0.0;
  }

  /// "[1.2e-03, 1.3e-03, 1.5e-03] (σ: 8.1e-05)"
  [[nodiscard]] std::string str() const;

  /// Merge another accumulator into this one (Chan's parallel update).
  void merge(const Stats& o);

 private:
  std::int64_t n_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace brickx
