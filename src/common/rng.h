#pragma once

#include <cstdint>

namespace brickx {

/// Deterministic splitmix64 generator; used to fill domains with
/// reproducible data and by the layout search. Independent of std::rand so
/// results are identical across platforms and runs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? next() % n : 0; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace brickx
