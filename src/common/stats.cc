#include "common/stats.h"

#include <cstdio>

namespace brickx {

std::string Stats::str() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "[%.3e, %.3e, %.3e] (sigma: %.2e)", min(),
                avg(), max(), sigma());
  return buf;
}

void Stats::merge(const Stats& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
  const double d = o.mean_ - mean_;
  const double nt = na + nb;
  mean_ += d * nb / nt;
  m2_ += o.m2_ + d * d * na * nb / nt;
  n_ += o.n_;
  if (o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
}

}  // namespace brickx
