#pragma once

// Randomized problem configurations for the differential conformance
// oracle (src/check/oracle.h) and their greedy minimizer.
//
// A FuzzConfig is a complete, *valid-by-construction* description of one
// seeded exchange problem: rank grid, per-axis brick extents, ghost depth
// (always a multiple of every brick extent), subdomain (always large
// enough that no surface region is empty — the regime where the paper's
// exact message counts 98/42/26 hold), exchange rounds, MemMap emulated
// page size, and the netsim fabric/mapping that time the messages.
//
// Configs serialize to a single "key=value,..." line so a failing draw can
// be reported, replayed (parse_config) and archived byte-for-byte.

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "common/vec.h"
#include "core/layout.h"
#include "netsim/fabric.h"
#include "netsim/mapping.h"
#include "transport/transport.h"

namespace brickx::conformance {

struct FuzzConfig {
  std::uint64_t seed = 1;      ///< fill-pattern seed (not the draw seed)
  Vec3 rank_dims{2, 1, 1};     ///< process grid; prod == world size
  Vec3 brick{4, 4, 4};         ///< per-axis brick extents
  std::int64_t ghost = 4;      ///< ghost width; multiple of every brick[a]
  Vec3 subdomain{8, 8, 8};     ///< cells per rank; each >= 2 * ghost
  int rounds = 1;              ///< back-to-back exchange rounds (fresh data)
  std::size_t page_size = 0;   ///< MemMap emulated page size (0 = host)
  int ranks_per_node = 1;      ///< node shape seen by the fabric
  netsim::FabricKind fabric = netsim::FabricKind::Flat;
  netsim::MapKind mapping = netsim::MapKind::Block;
  /// Replay each method over persistent requests (build-once plans bound
  /// with make_persistent) instead of ad-hoc isend/irecv. Drawn randomly so
  /// the oracle cross-checks both paths — including under fault injection,
  /// where plan handles must survive a faulted round without dangling.
  bool persistent = false;
  /// On-node transport tier timing the messages (DESIGN.md §13). Drawn
  /// randomly so the oracle cross-checks that delivered data is bitwise
  /// transport-invariant; shm-agg is only valid with ranks_per_node > 1.
  transport::Kind transport = transport::Kind::Flat;
  /// Run the brick methods over *partitioned* requests (DESIGN.md §14):
  /// start, pready every send partition in flat order, consume every
  /// receive partition in reverse order, finish. Drawn randomly so the
  /// oracle cross-checks partition-granularity delivery against the bulk
  /// path — including under fault schedules, where reorder/delay hit
  /// individual partitions. Mutually exclusive with `persistent` (an
  /// exchanger binds to one replay mechanism).
  bool overlap = false;
  /// Tuned region-layout seed (the autotuner's layout lever, DESIGN.md
  /// §15). 0 (the common case) keeps the historical surface3d order; any
  /// other value runs the brick methods under the hill-climbed layout
  /// fuzz_layout(tuned_layout) — the oracle proves delivered ghosts are
  /// bitwise layout-invariant.
  std::uint64_t tuned_layout = 0;
  /// Coupled fields exchanged together (DESIGN.md §16): bricks store them
  /// AoSoA per chunk, the array baselines as contiguous field-major slabs.
  /// The oracle proves every per-field ghost frame bit-identical across
  /// all five implementations AND that the per-round message counts stay
  /// exactly the single-field 98/42/26/26 — one message per (neighbor,
  /// round) regardless of field count.
  int fields = 1;

  [[nodiscard]] int nranks() const { return static_cast<int>(rank_dims.prod()); }
};

/// The region layout a config's brick methods run under: surface3d() when
/// `tuned_layout` is 0, otherwise optimize_layout(3, 200, tuned_layout) —
/// one shared helper so the fuzz driver and the oracle agree on the exact
/// hill-climb budget.
LayoutSpec fuzz_layout(std::uint64_t tuned_layout);

/// Draw a valid random config. Every choice comes from `rng`, so the
/// sequence of configs is fully determined by the Rng seed.
FuzzConfig draw_config(Rng& rng);

/// One-line "key=value,..." form, parseable by parse_config. Stable field
/// order, so equal configs serialize identically.
std::string serialize_config(const FuzzConfig& cfg);

/// Inverse of serialize_config; std::nullopt on malformed input or on a
/// config violating the validity constraints above.
std::optional<FuzzConfig> parse_config(std::string_view s);

/// Structural validity (the constraints draw_config guarantees). parse
/// rejects invalid configs; shrink only proposes valid ones.
bool config_valid(const FuzzConfig& cfg);

/// Greedily minimize a failing config: repeatedly try simplifying steps
/// (fewer rounds, flat fabric, fewer/smaller ranks, no page padding,
/// smaller subdomain, smaller bricks) and keep any step where
/// `still_fails` returns true, until no step helps or `budget` evaluations
/// are spent. The predicate is invoked on candidate configs only — never
/// on the input itself (the caller already knows it fails).
FuzzConfig shrink(const FuzzConfig& cfg,
                  const std::function<bool(const FuzzConfig&)>& still_fails,
                  int budget = 64);

}  // namespace brickx::conformance
