#include "check/fuzz.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

namespace brickx::conformance {

namespace {

constexpr std::int64_t kBrickChoices[] = {2, 4, 8};

std::int64_t ghost_for(const Vec3& brick) {
  std::int64_t g = brick[0];
  for (int a = 1; a < 3; ++a) g = std::lcm(g, brick[a]);
  return g;
}

}  // namespace

LayoutSpec fuzz_layout(std::uint64_t tuned_layout) {
  return tuned_layout == 0 ? surface3d() : optimize_layout(3, 200, tuned_layout);
}

bool config_valid(const FuzzConfig& cfg) {
  for (int a = 0; a < 3; ++a) {
    if (cfg.rank_dims[a] < 1 || cfg.brick[a] < 1) return false;
    if (cfg.ghost % cfg.brick[a] != 0) return false;
    if (cfg.subdomain[a] < 2 * cfg.ghost) return false;
    if (cfg.subdomain[a] % cfg.ghost != 0) return false;
  }
  if (cfg.transport == transport::Kind::ShmAgg && cfg.ranks_per_node == 1)
    return false;  // nothing to aggregate; the harness rejects it too
  if (cfg.overlap && cfg.persistent)
    return false;  // one replay mechanism per exchanger binding
  if (cfg.fields < 1 || cfg.fields > 8) return false;
  return cfg.ghost >= 1 && cfg.rounds >= 1 && cfg.ranks_per_node >= 1;
}

FuzzConfig draw_config(Rng& rng) {
  FuzzConfig cfg;
  cfg.seed = rng.next() | 1;  // never zero
  for (int a = 0; a < 3; ++a) cfg.brick[a] = kBrickChoices[rng.below(3)];
  cfg.ghost = ghost_for(cfg.brick);
  // Multiplier 2 makes the interior slab along that axis empty (a
  // degenerate regime the oracle checks with relaxed message counts);
  // 3 and 4 keep every surface region non-empty, where the exact
  // 98/42/26 structure must hold.
  for (int a = 0; a < 3; ++a)
    cfg.subdomain[a] =
        (2 + static_cast<std::int64_t>(rng.below(3))) * cfg.ghost;
  // Small worlds keep single-process simulation fast while still covering
  // self-neighbors (1 along an axis), flat grids and full 3D corners.
  static const Vec3 kGrids[] = {{1, 1, 1}, {2, 1, 1}, {1, 2, 1}, {1, 1, 2},
                                {2, 2, 1}, {2, 1, 2}, {2, 2, 2}, {4, 1, 1}};
  cfg.rank_dims = kGrids[rng.below(8)];
  cfg.rounds = 1 + static_cast<int>(rng.below(3));
  // 0 twice: host pages are the common case; big pages stress padding.
  static const std::size_t kPages[] = {0, 0, 16384, 65536};
  cfg.page_size = kPages[rng.below(4)];
  cfg.ranks_per_node = 1 + static_cast<int>(rng.below(2));
  static const netsim::FabricKind kFabrics[] = {
      netsim::FabricKind::Flat,         netsim::FabricKind::Flat,
      netsim::FabricKind::SingleSwitch, netsim::FabricKind::FatTree,
      netsim::FabricKind::Torus3d,      netsim::FabricKind::Dragonfly};
  cfg.fabric = kFabrics[rng.below(6)];
  static const netsim::MapKind kMaps[] = {
      netsim::MapKind::Block, netsim::MapKind::RoundRobin,
      netsim::MapKind::Greedy, netsim::MapKind::Rcb, netsim::MapKind::Embed};
  cfg.mapping = kMaps[rng.below(5)];
  // Drawn last so earlier fields keep their historical draw sequence for a
  // given Rng seed (stable replays of archived configs).
  cfg.persistent = rng.below(2) == 1;
  static const transport::Kind kTransports[] = {transport::Kind::Flat,
                                                transport::Kind::Shm,
                                                transport::Kind::ShmAgg};
  cfg.transport = kTransports[rng.below(3)];
  if (cfg.transport == transport::Kind::ShmAgg && cfg.ranks_per_node == 1)
    cfg.transport = transport::Kind::Shm;  // keep the draw valid
  // Drawn last (after transport) so earlier fields keep their sequence.
  // The draw itself is unconditional — masking, not skipping, keeps the
  // Rng stream stable — and yields to `persistent` when both came up.
  const bool want_overlap = rng.below(2) == 1;
  cfg.overlap = want_overlap && !cfg.persistent;
  // Drawn last (newest field): 3 in 4 configs keep the historical
  // surface3d layout, the rest run under a seeded hill-climbed layout.
  const bool want_tuned = rng.below(4) == 0;
  const std::uint64_t layout_seed = rng.next() | 1;  // unconditional draw
  cfg.tuned_layout = want_tuned ? layout_seed : 0;
  // Drawn last (newest field, unconditional draw): 3 in 4 configs stay
  // single-field; the rest run 2 or 3 coupled fields through every method.
  const std::uint64_t fdraw = rng.below(8);
  cfg.fields = fdraw == 6 ? 2 : (fdraw == 7 ? 3 : 1);
  return cfg;
}

std::string serialize_config(const FuzzConfig& cfg) {
  char buf[320];
  std::snprintf(
      buf, sizeof buf,
      "seed=%llu,ranks=%lldx%lldx%lld,brick=%lldx%lldx%lld,ghost=%lld,"
      "sub=%lldx%lldx%lld,rounds=%d,page=%zu,rpn=%d,fabric=%s,map=%s,"
      "persist=%d,transport=%s,overlap=%d,tlayout=%llu,fields=%d",
      static_cast<unsigned long long>(cfg.seed),
      static_cast<long long>(cfg.rank_dims[0]),
      static_cast<long long>(cfg.rank_dims[1]),
      static_cast<long long>(cfg.rank_dims[2]),
      static_cast<long long>(cfg.brick[0]),
      static_cast<long long>(cfg.brick[1]),
      static_cast<long long>(cfg.brick[2]),
      static_cast<long long>(cfg.ghost),
      static_cast<long long>(cfg.subdomain[0]),
      static_cast<long long>(cfg.subdomain[1]),
      static_cast<long long>(cfg.subdomain[2]), cfg.rounds, cfg.page_size,
      cfg.ranks_per_node, netsim::fabric_name(cfg.fabric),
      netsim::map_name(cfg.mapping), cfg.persistent ? 1 : 0,
      transport::kind_name(cfg.transport), cfg.overlap ? 1 : 0,
      static_cast<unsigned long long>(cfg.tuned_layout), cfg.fields);
  return buf;
}

namespace {

bool parse_triple(std::string_view v, Vec3& out) {
  long long a = 0, b = 0, c = 0;
  if (std::sscanf(std::string(v).c_str(), "%lldx%lldx%lld", &a, &b, &c) != 3)
    return false;
  out = {a, b, c};
  return true;
}

}  // namespace

std::optional<FuzzConfig> parse_config(std::string_view s) {
  FuzzConfig cfg;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    std::string_view item = s.substr(0, comma);
    s = comma == std::string_view::npos ? std::string_view{}
                                        : s.substr(comma + 1);
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);
    const std::string vs(val);
    try {
      if (key == "seed") {
        cfg.seed = std::stoull(vs);
      } else if (key == "ranks") {
        if (!parse_triple(val, cfg.rank_dims)) return std::nullopt;
      } else if (key == "brick") {
        if (!parse_triple(val, cfg.brick)) return std::nullopt;
      } else if (key == "ghost") {
        cfg.ghost = std::stoll(vs);
      } else if (key == "sub") {
        if (!parse_triple(val, cfg.subdomain)) return std::nullopt;
      } else if (key == "rounds") {
        cfg.rounds = std::stoi(vs);
      } else if (key == "page") {
        cfg.page_size = static_cast<std::size_t>(std::stoull(vs));
      } else if (key == "rpn") {
        cfg.ranks_per_node = std::stoi(vs);
      } else if (key == "fabric") {
        auto f = netsim::parse_fabric(val);
        if (!f) return std::nullopt;
        cfg.fabric = *f;
      } else if (key == "map") {
        auto m = netsim::parse_mapping(val);
        if (!m) return std::nullopt;
        cfg.mapping = *m;
      } else if (key == "persist") {
        const int v = std::stoi(vs);
        if (v != 0 && v != 1) return std::nullopt;
        cfg.persistent = v == 1;
      } else if (key == "transport") {
        if (!transport::parse_kind(vs, &cfg.transport)) return std::nullopt;
      } else if (key == "overlap") {
        const int v = std::stoi(vs);
        if (v != 0 && v != 1) return std::nullopt;
        cfg.overlap = v == 1;
      } else if (key == "tlayout") {
        cfg.tuned_layout = std::stoull(vs);
      } else if (key == "fields") {
        cfg.fields = std::stoi(vs);
      } else {
        return std::nullopt;
      }
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (!config_valid(cfg)) return std::nullopt;
  return cfg;
}

namespace {

/// Candidate single-step simplifications of `cfg`, most aggressive first.
/// Each candidate is valid by construction.
std::vector<FuzzConfig> shrink_candidates(const FuzzConfig& cfg) {
  std::vector<FuzzConfig> out;
  auto push = [&](FuzzConfig c) {
    if (config_valid(c) && serialize_config(c) != serialize_config(cfg))
      out.push_back(c);
  };
  // Fewer exchange rounds.
  if (cfg.rounds > 1) {
    FuzzConfig c = cfg;
    c.rounds = 1;
    push(c);
  }
  // Back to the ad-hoc replay path.
  if (cfg.persistent) {
    FuzzConfig c = cfg;
    c.persistent = false;
    push(c);
  }
  // Back to bulk (non-partitioned) exchanges.
  if (cfg.overlap) {
    FuzzConfig c = cfg;
    c.overlap = false;
    push(c);
  }
  // Back to the historical surface3d region layout.
  if (cfg.tuned_layout != 0) {
    FuzzConfig c = cfg;
    c.tuned_layout = 0;
    push(c);
  }
  // Back to a single field.
  if (cfg.fields > 1) {
    FuzzConfig c = cfg;
    c.fields = 1;
    push(c);
  }
  // Back to the trivial node placement.
  if (cfg.mapping != netsim::MapKind::Block) {
    FuzzConfig c = cfg;
    c.mapping = netsim::MapKind::Block;
    push(c);
  }
  // Back to the always-on-fabric transport.
  if (cfg.transport != transport::Kind::Flat) {
    FuzzConfig c = cfg;
    c.transport = transport::Kind::Flat;
    push(c);
  }
  // Plain timing model and node shape.
  if (cfg.fabric != netsim::FabricKind::Flat) {
    FuzzConfig c = cfg;
    c.fabric = netsim::FabricKind::Flat;
    c.mapping = netsim::MapKind::Block;
    push(c);
  }
  if (cfg.ranks_per_node != 1) {
    FuzzConfig c = cfg;
    c.ranks_per_node = 1;
    push(c);
  }
  // No page padding.
  if (cfg.page_size != 0) {
    FuzzConfig c = cfg;
    c.page_size = 0;
    push(c);
  }
  // Collapse the rank grid one axis at a time, largest first.
  for (int a = 0; a < 3; ++a) {
    if (cfg.rank_dims[a] > 1) {
      FuzzConfig c = cfg;
      c.rank_dims[a] = cfg.rank_dims[a] / 2;
      push(c);
    }
  }
  // Smallest subdomain (2 * ghost per axis), then per-axis halving.
  {
    FuzzConfig c = cfg;
    for (int a = 0; a < 3; ++a) c.subdomain[a] = 2 * cfg.ghost;
    push(c);
  }
  for (int a = 0; a < 3; ++a) {
    if (cfg.subdomain[a] > 2 * cfg.ghost) {
      FuzzConfig c = cfg;
      c.subdomain[a] -= cfg.ghost;
      push(c);
    }
  }
  // Smaller bricks (ghost and subdomain re-derived so the config stays
  // valid; smaller ghost shrinks the whole problem).
  {
    FuzzConfig c = cfg;
    bool changed = false;
    for (int a = 0; a < 3; ++a) {
      if (c.brick[a] > 2) {
        c.brick[a] /= 2;
        changed = true;
      }
    }
    if (changed) {
      const std::int64_t g = ghost_for(c.brick);
      for (int a = 0; a < 3; ++a) {
        const std::int64_t mult =
            std::max<std::int64_t>(2, cfg.subdomain[a] / cfg.ghost);
        c.subdomain[a] = mult * g;
      }
      c.ghost = g;
      push(c);
    }
  }
  return out;
}

}  // namespace

FuzzConfig shrink(const FuzzConfig& cfg,
                  const std::function<bool(const FuzzConfig&)>& still_fails,
                  int budget) {
  FuzzConfig best = cfg;
  bool improved = true;
  while (improved && budget > 0) {
    improved = false;
    for (const FuzzConfig& cand : shrink_candidates(best)) {
      if (budget-- <= 0) break;
      if (still_fails(cand)) {
        best = cand;
        improved = true;
        break;  // restart from the simpler config
      }
    }
  }
  return best;
}

}  // namespace brickx::conformance
