#include "check/oracle.h"

#include <algorithm>
#include <cstring>
#include <optional>
#include <sstream>
#include <vector>

#include "baseline/array_exchange.h"
#include "common/error.h"
#include "core/cell_array.h"
#include "core/exchange.h"
#include "core/exchange_view.h"
#include "core/layout.h"
#include "netsim/fabric.h"
#include "simmpi/cart.h"
#include "simmpi/comm.h"

namespace brickx::conformance {

namespace {

using mpi::Cart;
using mpi::Comm;
using mpi::Runtime;

enum class M { Basic, Layout, MemMap, Pack, Types };
constexpr M kAllMethods[] = {M::Basic, M::Layout, M::MemMap, M::Pack,
                             M::Types};

const char* mname(M m) {
  switch (m) {
    case M::Basic:
      return "Basic";
    case M::Layout:
      return "Layout";
    case M::MemMap:
      return "MemMap";
    case M::Pack:
      return "Pack";
    case M::Types:
      return "MPI_Types";
  }
  return "?";
}

std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// The seeded fill: a hash-valued function of the *global* (periodically
/// wrapped) cell coordinate and the round. Adversarial by design — unlike
/// a linear ramp, any misrouted, stale or byte-shifted cell disagrees.
double fill_value(std::uint64_t seed, int round, Vec3 g, const Vec3& ext) {
  for (int a = 0; a < 3; ++a) g[a] = ((g[a] % ext[a]) + ext[a]) % ext[a];
  const std::uint64_t idx = static_cast<std::uint64_t>(
      (g[2] * ext[1] + g[1]) * ext[0] + g[0]);
  const std::uint64_t h =
      mix64(seed ^ mix64(static_cast<std::uint64_t>(round) ^ idx));
  // Map to a finite double in [1, 2): every bit pattern is a normal value,
  // so bitwise comparison is exact and NaN traps cannot hide mismatches.
  return 1.0 + static_cast<double>(h >> 12) * 0x1.0p-52;
}

/// Per-field fill seed: field 0 keeps the historical single-field fill
/// bit-exactly; higher fields carry distinct salted data so a cross-field
/// routing error (wrong slab, wrong AoSoA offset) cannot hide.
std::uint64_t field_seed(std::uint64_t seed, int f) {
  return f == 0 ? seed
                : mix64(seed ^ (0x8badf00dull + static_cast<std::uint64_t>(f)));
}

/// Everything one method run produces: the serialized post-exchange ghost
/// frames (per rank, rounds concatenated), per-rank comm counters and
/// virtual times, and the exchanger's own accounting from rank 0.
struct MethodRun {
  std::vector<std::vector<double>> frames;  ///< [rank] round-major frames
  std::vector<mpi::CommCounters> counters;  ///< [rank]
  std::vector<double> vtimes;               ///< [rank]
  std::int64_t msgs_per_exchange = 0;       ///< sends per round (rank 0)
  std::int64_t wire_bytes = 0;              ///< bytes sent per round (rank 0)
  std::int64_t payload_bytes = 0;           ///< useful bytes per round
  double padding_percent = 0.0;             ///< MemMap only
};

MethodRun run_method(M m, const FuzzConfig& cfg, mpi::FaultInjector* fi) {
  const int nranks = cfg.nranks();
  mpi::NetModel model;
  model.ranks_per_node = cfg.ranks_per_node;
  Runtime rt(nranks, model);
  if (cfg.fabric != netsim::FabricKind::Flat) {
    const mpi::LinkParams inter = model.inter_node;
    rt.set_fabric(netsim::make_fabric(cfg.fabric, cfg.mapping, nranks,
                                      cfg.ranks_per_node, inter.bw,
                                      inter.alpha / 2.0, inter.alpha, {},
                                      {static_cast<int>(cfg.rank_dims[0]),
                                       static_cast<int>(cfg.rank_dims[1]),
                                       static_cast<int>(cfg.rank_dims[2])}));
  }
  if (fi != nullptr) rt.set_fault_injector(fi);
  rt.set_transport(cfg.transport);

  MethodRun out;
  out.frames.resize(static_cast<std::size_t>(nranks));

  const Vec3 N = cfg.subdomain;
  const std::int64_t g = cfg.ghost;
  const Vec3 G = Vec3::fill(g);
  const Vec3 ext = cfg.rank_dims * N;
  const Box<3> frame_box{Vec3{0, 0, 0} - G, N + G};

  rt.run([&](Comm& comm) {
    Cart<3> cart(comm, cfg.rank_dims);
    const Vec3 off = cart.coords() * N;
    auto& frames = out.frames[static_cast<std::size_t>(comm.rank())];

    auto fill_own = [&](CellArray3& arr, int round, int f) {
      for_each(Box<3>{{0, 0, 0}, N}, [&](const Vec3& p) {
        arr.at(p) = fill_value(field_seed(cfg.seed, f), round, p + off, ext);
      });
    };
    auto record_frame = [&](const CellArray3& fr) {
      for_each(fr.box(), [&](const Vec3& p) { frames.push_back(fr.at(p)); });
    };

    if ((m == M::Pack || m == M::Types) && cfg.fields > 1) {
      // Multi-field array baselines: one ArrayFields allocation, one
      // message per neighbor carrying every field slab.
      ArrayFields field(frame_box, cfg.fields);
      const auto dirs = Cart<3>::all_directions();
      std::vector<int> nbrs;
      nbrs.reserve(dirs.size());
      for (const auto& d : dirs) nbrs.push_back(cart.neighbor(d));
      std::optional<baseline::PackExchanger> pack;
      std::optional<baseline::MpiTypesExchanger> types;
      if (m == M::Pack)
        pack.emplace(N, g, dirs, nbrs, cfg.fields);
      else
        types.emplace(N, g, dirs, nbrs, field);
      if (cfg.persistent) {
        if (pack) pack->make_persistent(comm);
        if (types) types->make_persistent(comm, field);
      }
      for (int round = 0; round < cfg.rounds; ++round) {
        for (int f = 0; f < cfg.fields; ++f)
          for_each(Box<3>{{0, 0, 0}, N}, [&](const Vec3& p) {
            field.at(f, p) =
                fill_value(field_seed(cfg.seed, f), round, p + off, ext);
          });
        if (pack)
          pack->exchange(comm, field);
        else
          types->exchange(comm, field);
        // Field slabs are frame-ordered (axis 0 fastest), matching
        // record_frame's for_each order over the frame box.
        for (int f = 0; f < cfg.fields; ++f)
          frames.insert(frames.end(), field.field_base(f),
                        field.field_base(f) + field.field_elems());
      }
      if (comm.rank() == 0) {
        out.msgs_per_exchange =
            pack ? pack->send_message_count() : types->send_message_count();
        out.wire_bytes =
            pack ? pack->send_byte_count() : types->send_byte_count();
        out.payload_bytes = out.wire_bytes;
      }
      return;
    }

    if (m == M::Pack || m == M::Types) {
      CellArray3 field(frame_box);
      for_each(frame_box, [&](const Vec3& p) { field.at(p) = 0.0; });
      const auto dirs = Cart<3>::all_directions();
      std::vector<int> nbrs;
      nbrs.reserve(dirs.size());
      for (const auto& d : dirs) nbrs.push_back(cart.neighbor(d));
      std::optional<baseline::PackExchanger> pack;
      std::optional<baseline::MpiTypesExchanger> types;
      if (m == M::Pack)
        pack.emplace(N, g, dirs, nbrs);
      else
        types.emplace(N, g, dirs, nbrs, field);
      if (cfg.persistent) {
        if (pack) pack->make_persistent(comm);
        if (types) types->make_persistent(comm, field);
      }
      for (int round = 0; round < cfg.rounds; ++round) {
        fill_own(field, round, 0);
        if (pack)
          pack->exchange(comm, field);
        else
          types->exchange(comm, field);
        record_frame(field);
      }
      if (comm.rank() == 0) {
        out.msgs_per_exchange =
            pack ? pack->send_message_count() : types->send_message_count();
        out.wire_bytes =
            pack ? pack->send_byte_count() : types->send_byte_count();
        out.payload_bytes = out.wire_bytes;
      }
      return;
    }

    BrickDecomp<3> dec(N, g, cfg.brick, fuzz_layout(cfg.tuned_layout));
    BrickStorage store = m == M::MemMap
                             ? dec.mmap_alloc(cfg.fields, cfg.page_size)
                             : dec.allocate(cfg.fields);
    const auto ranks_tbl = populate(cart, dec);
    std::optional<Exchanger<3>> ex;
    std::optional<ExchangeView<3>> ev;
    if (m == M::MemMap)
      ev.emplace(dec, store, ranks_tbl);
    else
      ex.emplace(dec, store, ranks_tbl,
                 m == M::Basic ? Exchanger<3>::Mode::Basic
                               : Exchanger<3>::Mode::Layout);
    if (cfg.persistent) {
      // Bound plan handles must also survive a faulted round (the throw
      // unwinds through the Persistent destructors while in flight).
      if (ev) ev->make_persistent(comm);
      if (ex) ex->make_persistent(comm);
    }
    if (cfg.overlap) {
      if (ev) ev->make_partitioned(comm);
      if (ex) ex->make_partitioned(comm);
    }

    // The partitioned replay: every send partition readied in flat order,
    // every receive partition consumed in *reverse* order (deliberately not
    // the arrival order), then the round closed. Delivered frames must
    // still be bitwise identical to the bulk path — partition granularity
    // may only change timing, never data.
    auto overlap_round = [&](auto& x) {
      x.part_start();
      const int ns = static_cast<int>(x.send_parts().size());
      for (int j = 0; j < ns; ++j) x.part_pready(j);
      const int nr = static_cast<int>(x.recv_parts().size());
      for (int j = nr - 1; j >= 0; --j) (void)x.part_arrived(j);
      x.part_finish();
    };

    CellArray3 own(Box<3>{{0, 0, 0}, N});
    CellArray3 fr(frame_box);
    for (int round = 0; round < cfg.rounds; ++round) {
      // AoSoA: every field lives inside the same brick chunk, so ONE
      // exchange per round moves all of them — the message count below is
      // asserted field-count-invariant by run_oracle.
      for (int f = 0; f < cfg.fields; ++f) {
        fill_own(own, round, f);
        cells_to_bricks(dec, own, store, f);
      }
      if (cfg.overlap) {
        if (ev)
          overlap_round(*ev);
        else
          overlap_round(*ex);
      } else if (ev) {
        ev->exchange(comm);
      } else {
        ex->exchange(comm);
      }
      for (int f = 0; f < cfg.fields; ++f) {
        bricks_to_cells(dec, store, f, fr);
        record_frame(fr);
      }
    }
    if (comm.rank() == 0) {
      if (ev) {
        out.msgs_per_exchange = ev->send_message_count();
        out.wire_bytes = ev->send_byte_count();
        out.payload_bytes = ev->payload_byte_count();
        out.padding_percent = ev->padding_overhead_percent();
      } else {
        out.msgs_per_exchange = ex->send_message_count();
        out.wire_bytes = ex->send_byte_count();
        out.payload_bytes = ex->send_byte_count();
      }
    }
  });

  out.counters.reserve(static_cast<std::size_t>(nranks));
  out.vtimes.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    out.counters.push_back(rt.final_counters(r));
    out.vtimes.push_back(rt.final_vtime(r));
  }
  return out;
}

/// The portion of each recorded frame that is ghost cells (the own block
/// is locally produced and bitwise-trivially equal — still compared, but a
/// mismatch there means the serializer, not the exchange, broke).
std::int64_t frame_cells(const FuzzConfig& cfg) {
  const Vec3 full = cfg.subdomain + Vec3::fill(2 * cfg.ghost);
  return full.prod();
}

}  // namespace

OracleReport run_oracle(const FuzzConfig& cfg) {
  OracleReport rep;
  auto fail = [&](const std::string& what) {
    if (rep.ok) {
      rep.ok = false;
      rep.diagnosis = what + " [" + serialize_config(cfg) + "]";
    }
  };

  std::vector<MethodRun> runs;
  runs.reserve(std::size(kAllMethods));
  for (M m : kAllMethods) runs.push_back(run_method(m, cfg, nullptr));
  rep.methods_compared = static_cast<int>(runs.size());

  const MethodRun& basic = runs[0];
  const MethodRun& layout = runs[1];
  const MethodRun& memmap = runs[2];
  rep.basic_msgs = basic.msgs_per_exchange;
  rep.layout_msgs = layout.msgs_per_exchange;
  rep.memmap_msgs = memmap.msgs_per_exchange;
  rep.payload_bytes = layout.payload_bytes;
  rep.memmap_wire_bytes = memmap.wire_bytes;

  // --- message-count structure (paper Table 1 / Eq. 1) ---------------------
  // The exact 98 / 42 / 26 counts require every surface region non-empty,
  // i.e. subdomain > 2 * ghost on every axis. At exactly 2 * ghost the
  // interior slab along that axis is empty and Basic/Layout legitimately
  // send fewer messages; the ordering and the per-neighbor floor still
  // hold there.
  bool full_regions = true;
  for (int a = 0; a < 3; ++a)
    full_regions = full_regions && cfg.subdomain[a] > 2 * cfg.ghost;
  if (full_regions) {
    if (basic.msgs_per_exchange != basic_message_count(3))
      fail("Basic sends " + std::to_string(basic.msgs_per_exchange) +
           " messages per rank, expected " +
           std::to_string(basic_message_count(3)));
    const LayoutSpec lay = fuzz_layout(cfg.tuned_layout);
    if (layout.msgs_per_exchange != message_count(lay, 3))
      fail("Layout sends " + std::to_string(layout.msgs_per_exchange) +
           " messages per rank, expected " +
           std::to_string(message_count(lay, 3)));
    if (layout.msgs_per_exchange < layout_message_lower_bound(3))
      fail("Layout beats the Eq. 1 lower bound — the count model is broken");
  } else if (basic.msgs_per_exchange > basic_message_count(3)) {
    fail("Basic exceeds the 98-message ceiling with empty regions");
  }
  if (memmap.msgs_per_exchange != (27 - 1))
    fail("MemMap sends " + std::to_string(memmap.msgs_per_exchange) +
         " messages per rank, expected 26");
  if (!(memmap.msgs_per_exchange <= layout.msgs_per_exchange &&
        layout.msgs_per_exchange <= basic.msgs_per_exchange))
    fail("message-count ordering memmap <= layout <= basic violated");
  for (const MethodRun& r : {runs[3], runs[4]})
    if (r.msgs_per_exchange != 26)
      fail("array baseline sends " + std::to_string(r.msgs_per_exchange) +
           " messages per rank, expected 26");

  // --- payload accounting --------------------------------------------------
  const Vec3 N = cfg.subdomain;
  const std::int64_t g2 = 2 * cfg.ghost;
  const std::int64_t ghost_cells =
      (N[0] + g2) * (N[1] + g2) * (N[2] + g2) - N.prod();
  const std::int64_t expect_payload =
      ghost_cells * static_cast<std::int64_t>(sizeof(double)) * cfg.fields;
  for (std::size_t i = 0; i < runs.size(); ++i)
    if (runs[i].payload_bytes != expect_payload)
      fail(std::string(mname(kAllMethods[i])) + " moves " +
           std::to_string(runs[i].payload_bytes) +
           " payload bytes per exchange, expected ghost-frame volume " +
           std::to_string(expect_payload));
  // Unpadded methods put exactly the payload on the wire.
  for (std::size_t i = 0; i < runs.size(); ++i)
    if (kAllMethods[i] != M::MemMap &&
        runs[i].wire_bytes != runs[i].payload_bytes)
      fail(std::string(mname(kAllMethods[i])) + " wire bytes != payload");
  // MemMap pads views to page boundaries: wire >= payload, and the padding
  // percentage must satisfy Table 2's formula.
  if (memmap.wire_bytes < memmap.payload_bytes)
    fail("MemMap wire bytes below payload — padding accounting corrupt");
  {
    const double expect_pct =
        memmap.payload_bytes == 0
            ? 0.0
            : 100.0 *
                  static_cast<double>(memmap.wire_bytes -
                                      memmap.payload_bytes) /
                  static_cast<double>(memmap.payload_bytes);
    const double got = memmap.padding_percent;
    if (got < expect_pct - 1e-9 || got > expect_pct + 1e-9)
      fail("MemMap padding percent " + std::to_string(got) +
           " disagrees with (wire - payload) / payload = " +
           std::to_string(expect_pct));
  }

  // --- obs counter consistency --------------------------------------------
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::int64_t ms = 0, mr = 0, bs = 0, br = 0;
    for (const auto& c : runs[i].counters) {
      ms += c.msgs_sent;
      mr += c.msgs_recv;
      bs += c.bytes_sent;
      br += c.bytes_recv;
    }
    if (ms != mr)
      fail(std::string(mname(kAllMethods[i])) + ": global msgs_sent " +
           std::to_string(ms) + " != msgs_recv " + std::to_string(mr));
    if (bs != br)
      fail(std::string(mname(kAllMethods[i])) + ": global bytes_sent " +
           std::to_string(bs) + " != bytes_recv " + std::to_string(br));
    // Rank 0's counter must agree with the exchanger's own plan accounting
    // (ties the obs layer to the geometry layer).
    const auto& c0 = runs[i].counters[0];
    const std::int64_t rounds = cfg.rounds;
    if (c0.msgs_sent != rounds * runs[i].msgs_per_exchange)
      fail(std::string(mname(kAllMethods[i])) + ": rank-0 msgs_sent " +
           std::to_string(c0.msgs_sent) + " != rounds * plan count " +
           std::to_string(rounds * runs[i].msgs_per_exchange));
    if (c0.bytes_sent != rounds * runs[i].wire_bytes)
      fail(std::string(mname(kAllMethods[i])) + ": rank-0 bytes_sent " +
           std::to_string(c0.bytes_sent) + " != rounds * plan bytes " +
           std::to_string(rounds * runs[i].wire_bytes));
  }

  // --- bit-identical post-exchange frames ----------------------------------
  const std::size_t want = static_cast<std::size_t>(frame_cells(cfg)) *
                           static_cast<std::size_t>(cfg.rounds) *
                           static_cast<std::size_t>(cfg.fields);
  const Vec3 G = Vec3::fill(cfg.ghost);
  const Vec3 ext = cfg.rank_dims * N;
  for (int r = 0; r < cfg.nranks(); ++r) {
    const auto& ref = runs[0].frames[static_cast<std::size_t>(r)];
    if (ref.size() != want) {
      fail("serialized frame has wrong cell count");
      break;
    }
    // Analytic expectation: the reference method must reproduce the fill
    // function at every frame cell (wrapped globally).
    {
      // Rank r's cart coords (delinearize is the Cart convention).
      const Vec3 off = delinearize<3>(r, cfg.rank_dims) * N;
      std::size_t at = 0;
      for (int round = 0; round < cfg.rounds && rep.ok; ++round) {
        for (int f = 0; f < cfg.fields && rep.ok; ++f) {
          const std::uint64_t fseed = field_seed(cfg.seed, f);
          std::int64_t bad = 0;
          for_each(Box<3>{Vec3{0, 0, 0} - G, N + G}, [&](const Vec3& p) {
            if (ref[at++] != fill_value(fseed, round, p + off, ext)) ++bad;
          });
          if (bad != 0)
            fail("Basic frame disagrees with the analytic fill at " +
                 std::to_string(bad) + " cells (rank " + std::to_string(r) +
                 ", round " + std::to_string(round) + ", field " +
                 std::to_string(f) + ")");
        }
      }
    }
    for (std::size_t i = 1; i < runs.size(); ++i) {
      const auto& got = runs[i].frames[static_cast<std::size_t>(r)];
      if (got.size() != ref.size() ||
          std::memcmp(got.data(), ref.data(),
                      ref.size() * sizeof(double)) != 0) {
        std::size_t first = 0;
        while (first < got.size() && first < ref.size() &&
               got[first] == ref[first])
          ++first;
        fail(std::string(mname(kAllMethods[i])) +
             " frame differs from Basic at rank " + std::to_string(r) +
             ", flat cell " + std::to_string(first));
      }
    }
  }

  // --- partitioned-vs-bulk invariance --------------------------------------
  // When this config replayed the brick methods over partitioned requests,
  // re-run one of them over the bulk path: scheduling granularity may only
  // change timing — delivered frames and traffic counters must be bitwise
  // identical between the two replay mechanisms.
  if (cfg.overlap) {
    FuzzConfig bulk_cfg = cfg;
    bulk_cfg.overlap = false;
    const MethodRun bulk_run = run_method(M::Layout, bulk_cfg, nullptr);
    for (int r = 0; r < cfg.nranks(); ++r) {
      const auto& ref = layout.frames[static_cast<std::size_t>(r)];
      const auto& got = bulk_run.frames[static_cast<std::size_t>(r)];
      if (got.size() != ref.size() ||
          std::memcmp(got.data(), ref.data(),
                      ref.size() * sizeof(double)) != 0) {
        fail("delivered frames differ between partitioned and bulk replay "
             "at rank " + std::to_string(r));
        break;
      }
      const mpi::CommCounters& a =
          layout.counters[static_cast<std::size_t>(r)];
      const mpi::CommCounters& b =
          bulk_run.counters[static_cast<std::size_t>(r)];
      if (a.msgs_sent != b.msgs_sent || a.bytes_sent != b.bytes_sent ||
          a.msgs_recv != b.msgs_recv || a.bytes_recv != b.bytes_recv)
        fail("comm counters differ between partitioned and bulk replay at "
             "rank " + std::to_string(r));
    }
  }

  // --- transport invariance ------------------------------------------------
  // The on-node tier (DESIGN.md §13) may only change *timing*: delivered
  // ghost frames and the send/receive counters must be bitwise identical
  // whether messages rode the flat fabric path, the shared-memory short
  // circuit, or node-leader aggregation frames.
  {
    std::vector<transport::Kind> kinds = {transport::Kind::Flat,
                                          transport::Kind::Shm};
    if (cfg.ranks_per_node > 1) kinds.push_back(transport::Kind::ShmAgg);
    for (transport::Kind k : kinds) {
      if (k == cfg.transport) continue;
      FuzzConfig alt = cfg;
      alt.transport = k;
      const MethodRun other = run_method(M::Basic, alt, nullptr);
      for (int r = 0; r < cfg.nranks(); ++r) {
        const auto& ref = basic.frames[static_cast<std::size_t>(r)];
        const auto& got = other.frames[static_cast<std::size_t>(r)];
        if (got.size() != ref.size() ||
            std::memcmp(got.data(), ref.data(),
                        ref.size() * sizeof(double)) != 0) {
          fail(std::string("delivered frames differ between transport=") +
               transport::kind_name(cfg.transport) + " and transport=" +
               transport::kind_name(k) + " at rank " + std::to_string(r));
          break;
        }
        const mpi::CommCounters& a = basic.counters[static_cast<std::size_t>(r)];
        const mpi::CommCounters& b = other.counters[static_cast<std::size_t>(r)];
        if (a.msgs_sent != b.msgs_sent || a.bytes_sent != b.bytes_sent ||
            a.msgs_recv != b.msgs_recv || a.bytes_recv != b.bytes_recv ||
            a.msgs_intra != b.msgs_intra || a.msgs_inter != b.msgs_inter)
          fail(std::string("comm counters differ between transport=") +
               transport::kind_name(cfg.transport) + " and transport=" +
               transport::kind_name(k) + " at rank " + std::to_string(r));
      }
    }
  }

  // --- mapping invariance ----------------------------------------------------
  // Rank-to-node placement (block / round-robin / greedy / rcb / embed) is
  // a pure timing lever: it decides which messages cross the fabric and
  // what contention they see, but the delivered ghost frames and the
  // send/receive totals must be bitwise identical under every mapping.
  // (The intra/inter locality *split* legitimately moves — that is the
  // point of the lever — so it is exempt.)
  if (cfg.fabric != netsim::FabricKind::Flat) {
    for (netsim::MapKind k :
         {netsim::MapKind::Block, netsim::MapKind::RoundRobin,
          netsim::MapKind::Greedy, netsim::MapKind::Rcb,
          netsim::MapKind::Embed}) {
      if (k == cfg.mapping) continue;
      FuzzConfig alt = cfg;
      alt.mapping = k;
      const MethodRun other = run_method(M::Layout, alt, nullptr);
      for (int r = 0; r < cfg.nranks(); ++r) {
        const auto& ref = layout.frames[static_cast<std::size_t>(r)];
        const auto& got = other.frames[static_cast<std::size_t>(r)];
        if (got.size() != ref.size() ||
            std::memcmp(got.data(), ref.data(),
                        ref.size() * sizeof(double)) != 0) {
          fail(std::string("delivered frames differ between mapping=") +
               netsim::map_name(cfg.mapping) + " and mapping=" +
               netsim::map_name(k) + " at rank " + std::to_string(r));
          break;
        }
        const mpi::CommCounters& a =
            layout.counters[static_cast<std::size_t>(r)];
        const mpi::CommCounters& b =
            other.counters[static_cast<std::size_t>(r)];
        if (a.msgs_sent != b.msgs_sent || a.bytes_sent != b.bytes_sent ||
            a.msgs_recv != b.msgs_recv || a.bytes_recv != b.bytes_recv)
          fail(std::string("comm totals differ between mapping=") +
               netsim::map_name(cfg.mapping) + " and mapping=" +
               netsim::map_name(k) + " at rank " + std::to_string(r));
      }
    }
  }
  return rep;
}

FaultOracleReport run_fault_oracle(const FuzzConfig& cfg,
                                   const mpi::FaultSpec& spec) {
  FaultOracleReport rep;
  auto fail = [&](const std::string& what) {
    if (rep.ok) {
      rep.ok = false;
      rep.diagnosis = what + " [" + serialize_config(cfg) +
                      " faults: " + describe(spec) + "]";
    }
  };

  const MethodRun ref = run_method(M::Layout, cfg, nullptr);
  mpi::FaultInjector fi(spec);
  bool completed = false;
  MethodRun faulty;
  try {
    faulty = run_method(M::Layout, cfg, &fi);
    completed = true;
  } catch (const brickx::Error& e) {
    rep.error_raised = true;
    rep.fault_diagnosed =
        std::string_view(e.what()).find("fault detected") !=
        std::string_view::npos;
    if (!rep.fault_diagnosed)
      fail(std::string("faulty run failed with a non-fault error: ") +
           e.what());
  }
  rep.counts = fi.counts();

  if (!spec.corrupting()) {
    // Benign schedule (delay/reorder only): must complete, deliver
    // bit-identical data, and never trip the integrity layer.
    if (rep.error_raised)
      fail("benign (delay/reorder) schedule raised an error");
    if (completed) {
      if (faulty.frames != ref.frames)
        fail("benign schedule changed delivered data");
      if (rep.counts.detected != 0)
        fail("benign schedule tripped the integrity layer");
      if (rep.counts.leftover != 0)
        fail("benign schedule left undelivered messages");
      // Delays only ever push virtual time forward under the flat fabric
      // (contention fabrics re-solve sharing, so only data is asserted).
      if (cfg.fabric == netsim::FabricKind::Flat) {
        double vmax_ref = 0, vmax = 0;
        for (double v : ref.vtimes) vmax_ref = std::max(vmax_ref, v);
        for (double v : faulty.vtimes) vmax = std::max(vmax, v);
        if (vmax < vmax_ref)
          fail("delay-only schedule moved virtual time backwards");
      }
    }
    return rep;
  }

  // Corrupting schedule: nothing corrupting may slip through silently.
  if (completed) {
    if (rep.counts.dropped + rep.counts.truncated + rep.counts.corrupted > 0)
      fail("corrupting faults were injected but the run completed without "
           "a detection");
    // Every duplicated replay must be quarantined, not absorbed.
    if (rep.counts.leftover != rep.counts.duplicated)
      fail("duplicate replays neither detected nor swept: leftover " +
           std::to_string(rep.counts.leftover) + " of " +
           std::to_string(rep.counts.duplicated));
    if (completed && faulty.frames != ref.frames)
      fail("a corrupting schedule altered delivered data without detection");
  } else if (rep.fault_diagnosed && rep.counts.detected < 1) {
    fail("a fault diagnostic surfaced but the injector counted no "
         "detections");
  }
  return rep;
}

}  // namespace brickx::conformance
