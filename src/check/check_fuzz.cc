// check_fuzz: differential conformance fuzzer (src/check).
//
// Each iteration draws a random valid problem (draw_config), runs it
// through all five exchange implementations under the differential oracle,
// and alternates fault-injection meta-checks: benign (delay/reorder)
// schedules must be invisible in the data, corrupting schedules must be
// detected. The first failing config is greedily shrunk before reporting,
// so the reproducer printed is close to minimal.
//
// Bounded mode (the tier-1 ctest entry):   check_fuzz --iters=200 --seed=1
// Soak mode (EXPERIMENTS.md):              check_fuzz --iters=0 --seed=$RANDOM
//   (--iters=0 means run until a failure or the process is killed)
//
// A single config can be replayed with --config="<serialized>" (the line a
// failure report prints), optionally with --faults="drop=0.02,seed=9".

#include <cstdio>
#include <string>

#include "check/fuzz.h"
#include "check/oracle.h"
#include "common/argparse.h"
#include "common/error.h"
#include "common/rng.h"

namespace {

using brickx::conformance::FuzzConfig;

/// Draw the fault spec exercised alongside iteration `i`: a third of the
/// iterations run fault-free, a third benign schedules, a third corrupting
/// ones — all derived from the iteration's own rng.
std::optional<brickx::mpi::FaultSpec> draw_faults(brickx::Rng& rng, long i) {
  switch (i % 3) {
    case 0:
      return std::nullopt;
    case 1: {  // benign: delay and/or reorder only
      brickx::mpi::FaultSpec spec;
      spec.seed = rng.next() | 1;
      spec.delay = 0.1 + 0.4 * rng.uniform();
      if (rng.below(2) == 0) spec.reorder = 0.2 * rng.uniform();
      spec.max_delay = 1e-6 + 1e-4 * rng.uniform();
      return spec;
    }
    default: {  // corrupting: one corrupting kind plus background delay
      brickx::mpi::FaultSpec spec;
      spec.seed = rng.next() | 1;
      spec.delay = 0.1 * rng.uniform();
      const double p = 0.02 + 0.1 * rng.uniform();
      switch (rng.below(4)) {
        case 0:
          spec.drop = p;
          break;
        case 1:
          spec.duplicate = p;
          break;
        case 2:
          spec.truncate = p;
          break;
        default:
          spec.corrupt = p;
          break;
      }
      return spec;
    }
  }
}

int report_failure(const FuzzConfig& cfg, const std::string& diagnosis,
                   const std::function<bool(const FuzzConfig&)>& still_fails,
                   long iter) {
  std::fprintf(stderr, "check_fuzz: FAIL at iteration %ld\n  %s\n", iter,
               diagnosis.c_str());
  std::fprintf(stderr, "  failing config: %s\n",
               brickx::conformance::serialize_config(cfg).c_str());
  // A candidate that blows up with an infrastructure error is not a
  // reproduction of *this* failure — skip it rather than crash the shrink.
  auto safe = [&](const FuzzConfig& c) {
    try {
      return still_fails(c);
    } catch (const std::exception&) {
      return false;
    }
  };
  const FuzzConfig small = brickx::conformance::shrink(cfg, safe);
  std::fprintf(stderr, "  shrunk config:  %s\n",
               brickx::conformance::serialize_config(small).c_str());
  std::fprintf(stderr,
               "  replay with: check_fuzz --config=\"%s\"\n",
               brickx::conformance::serialize_config(small).c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  brickx::ArgParser ap("check_fuzz",
                       "differential conformance + fault-injection fuzzer");
  ap.add("--iters", "iterations to run (0 = soak until failure)", "50");
  ap.add("--seed", "base seed; iteration i uses seed + i", "1");
  ap.add("--config", "replay one serialized config instead of fuzzing", "");
  ap.add("--faults", "fault spec for --config replay (simmpi/fault.h)", "");
  ap.add_flag("--verbose", "print each drawn config and progress");
  try {
    ap.parse(argc, argv);
  } catch (const brickx::Error& e) {
    std::fprintf(stderr, "check_fuzz: %s\n%s", e.what(), ap.usage().c_str());
    return 2;
  }
  const long iters = ap.get_int("--iters");
  const auto base_seed = static_cast<std::uint64_t>(ap.get_int("--seed"));
  const bool verbose = ap.get_flag("--verbose");

  if (const std::string one = ap.get("--config"); !one.empty()) {
    const auto cfg = brickx::conformance::parse_config(one);
    if (!cfg) {
      std::fprintf(stderr, "check_fuzz: malformed --config\n");
      return 2;
    }
    const auto spec = brickx::mpi::parse_fault_spec(ap.get("--faults"));
    if (!spec) {
      std::fprintf(stderr, "check_fuzz: malformed --faults\n");
      return 2;
    }
    if (spec->any()) {
      const auto rep = brickx::conformance::run_fault_oracle(*cfg, *spec);
      std::printf("fault oracle: %s%s%s\n", rep.ok ? "OK" : "FAIL",
                  rep.ok ? "" : " — ", rep.diagnosis.c_str());
      return rep.ok ? 0 : 1;
    }
    const auto rep = brickx::conformance::run_oracle(*cfg);
    std::printf("oracle: %s%s%s\n", rep.ok ? "OK" : "FAIL",
                rep.ok ? "" : " — ", rep.diagnosis.c_str());
    return rep.ok ? 0 : 1;
  }

  long fault_checks = 0;
  for (long i = 0; iters == 0 || i < iters; ++i) {
    brickx::Rng rng(base_seed + static_cast<std::uint64_t>(i));
    const FuzzConfig cfg = brickx::conformance::draw_config(rng);
    if (verbose)
      std::fprintf(stderr, "iter %ld: %s\n", i,
                   brickx::conformance::serialize_config(cfg).c_str());

    const auto rep = brickx::conformance::run_oracle(cfg);
    if (!rep.ok)
      return report_failure(
          cfg, rep.diagnosis,
          [](const FuzzConfig& c) { return !brickx::conformance::run_oracle(c).ok; },
          i);

    if (const auto spec = draw_faults(rng, i)) {
      ++fault_checks;
      const auto frep = brickx::conformance::run_fault_oracle(cfg, *spec);
      if (!frep.ok)
        return report_failure(
            cfg, frep.diagnosis,
            [&](const FuzzConfig& c) {
              return !brickx::conformance::run_fault_oracle(c, *spec).ok;
            },
            i);
    }
    if (verbose && i % 25 == 24)
      std::fprintf(stderr, "check_fuzz: %ld iterations clean\n", i + 1);
  }
  std::printf(
      "check_fuzz: OK — %ld configs x 5 methods conform; %ld fault "
      "schedules behaved (seed %llu)\n",
      iters, fault_checks, static_cast<unsigned long long>(base_seed));
  return 0;
}
