#pragma once

// Differential conformance oracle: run the same seeded ghost-exchange
// problem through every implementation the paper evaluates — Basic,
// Layout, MemMap (bricks) and the YASK-like packing / MPI_Types array
// baselines — and require
//
//   * bit-identical post-exchange ghost frames across all five, matching
//     the analytic fill function cell-for-cell;
//   * the paper's message-count structure: 98 Basic / 42 Layout /
//     26 MemMap sends per rank when no surface region is empty, the
//     Eq. 1 lower bound, and memmap <= layout <= basic;
//   * payload accounting: every method moves exactly the ghost-frame
//     volume per exchange; MemMap wire bytes >= payload with the padding
//     percentage consistent with Table 2's formula;
//   * obs counter symmetry: summed over ranks, msgs_sent == msgs_recv
//     and bytes_sent == bytes_recv, and rank counters agree with the
//     exchangers' own send accounting.
//
// The fault oracle re-runs one method under a seeded simmpi fault
// schedule (simmpi/fault.h) and checks the *meta*-property: benign
// schedules (delay/reorder) leave delivered data bit-identical and only
// shift virtual time, while corrupting schedules (drop/duplicate/
// truncate/corrupt) are always detected or quarantined — never silent.

#include <string>

#include "check/fuzz.h"
#include "simmpi/fault.h"

namespace brickx::conformance {

struct OracleReport {
  bool ok = true;
  std::string diagnosis;  ///< first failed invariant; empty when ok

  // Observed structure (per rank, per exchange round) for reporting.
  std::int64_t basic_msgs = 0;
  std::int64_t layout_msgs = 0;
  std::int64_t memmap_msgs = 0;
  std::int64_t payload_bytes = 0;
  std::int64_t memmap_wire_bytes = 0;
  int methods_compared = 0;
};

/// Run the full differential oracle on one config. Never throws on a
/// conformance failure — failures come back as ok == false with a
/// diagnosis; only infrastructure errors (e.g. mmap exhaustion) propagate.
OracleReport run_oracle(const FuzzConfig& cfg);

struct FaultOracleReport {
  bool ok = true;
  std::string diagnosis;
  bool error_raised = false;     ///< the faulty run threw
  bool fault_diagnosed = false;  ///< ... with a "fault detected:" message
  mpi::FaultCounts counts;       ///< injector counters after the run
};

/// Exercise the fault-injection meta-property on `cfg` (Layout method)
/// under `spec`. A reference run without faults provides the expected
/// frames and virtual times.
FaultOracleReport run_fault_oracle(const FuzzConfig& cfg,
                                   const mpi::FaultSpec& spec);

}  // namespace brickx::conformance
