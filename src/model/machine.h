#pragma once

#include <cstdint>
#include <string>

#include "gpusim/device.h"
#include "netsim/fabric.h"
#include "simmpi/netmodel.h"

namespace brickx::model {

/// Virtual-clock cost constants for one platform. Instances for the
/// paper's two machines are provided by theta() and summit(); every bench
/// reads its timing model from here, so the calibration is in one place.
///
/// Calibration notes (see DESIGN.md §2): absolute times are *modeled*; the
/// constants are set from published hardware numbers where available
/// (STREAM bandwidth, peak flops, link rates) and tuned so that the
/// relative behaviour the paper reports (who wins, by what order of
/// magnitude, where curves flatten) is reproduced.
struct Machine {
  std::string name;

  // --- CPU compute ---------------------------------------------------------
  double stream_bw;    ///< bytes/s effective stencil streaming
  double flops;        ///< attainable double-precision flop/s
  double sweep_overhead;  ///< s per kernel sweep (one-level OpenMP fork/join)
  /// The autotuned array baseline (YASK): slightly better bandwidth at
  /// scale, much higher two-level parallel overhead per sweep.
  double yask_bw_factor;
  double yask_sweep_overhead;

  // --- on-node data movement ----------------------------------------------
  double pack_bw;        ///< bytes/s for strided pack/unpack copies
  double pack_overhead;  ///< s per packed region (loop setup, TLB, faults)

  // --- network -------------------------------------------------------------
  mpi::NetModel net;
  /// The machine's native interconnect topology, used when an experiment
  /// asks for topology-aware (contention-modeled) timing. The default flat
  /// model ignores this; benches select it via --fabric=machine.
  netsim::FabricKind fabric = netsim::FabricKind::SingleSwitch;

  // --- accelerator (V1/V2 experiments) --------------------------------------
  bool is_gpu = false;
  gpu::GpuModel gpu;
};

/// Theta: Cray XC40, one KNL 7230 per node, Aries dragonfly,
/// Cray-MPICH (Section 2).
Machine theta();

/// Summit: IBM AC922, 6x V100 per node (one rank per GPU), EDR InfiniBand
/// fat tree, Spectrum-MPI with CUDA-Aware support and ATS (Section 2).
Machine summit();

/// Summit with cuMemMap enabled — the paper's footnote-2 future work
/// (CUDA >= 10.2 device-memory mapping), allowing MemMapCA. Used only by
/// the ablation bench.
Machine summit_future();

/// Roofline CPU time for `cells` stencil outputs.
/// `yask_variant` selects the autotuned-baseline compute constants.
double cpu_stencil_seconds(const Machine& m, std::int64_t cells,
                           double flops_per_cell, double bytes_per_cell,
                           bool yask_variant);

/// On-node pack/unpack time for copying `bytes` across `pieces` regions.
double pack_seconds(const Machine& m, std::int64_t bytes,
                    std::int64_t pieces);

}  // namespace brickx::model
