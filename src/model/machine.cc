#include "model/machine.h"

#include <algorithm>

namespace brickx::model {

Machine theta() {
  Machine m;
  m.name = "theta-knl";
  // KNL 7230: 467 GB/s MCDRAM STREAM; 2.2 TF/s sustained DP. Stencil
  // streaming reaches roughly a third of STREAM once write-allocate and
  // short-loop effects are in — consistent with the ~8 GStencil/s per node
  // the paper's Figure 8 peaks at.
  m.stream_bw = 170e9;
  m.flops = 1.1e12;
  m.sweep_overhead = 12e-6;        // one-level OpenMP over 64 cores
  m.yask_bw_factor = 1.10;         // autotuned cache blocking wins at scale
  m.yask_sweep_overhead = 120e-6;  // two-level nested parallelism
  // Strided pack on KNL: slow scalar gathers, one parallel region per
  // surface piece.
  m.pack_bw = 6e9;
  m.pack_overhead = 28e-6;
  // Aries + Cray-MPICH.
  m.net.send_overhead = 3.0e-6;
  m.net.recv_overhead = 1.0e-6;
  // Per-partition pready: descriptor build + NIC doorbell. Far cheaper
  // than a full send post, but not free — the spacing it imposes is what
  // keeps a burst of small partitions from outrunning NIC serialization.
  m.net.pready_overhead = 0.5e-6;
  m.net.inter_node = {3.5e-6, 9.0e9};
  m.net.intra_node = {1.0e-6, 30.0e9};
  m.net.ranks_per_node = 1;
  // Datatype engine on a 1.3 GHz serial core: microseconds per contiguous
  // block of a deep subarray tree (calibrated so the MemMap advantage
  // lands near the paper's measured 460x at the sweep's small end).
  m.net.dt_block_overhead = 4e-6;
  m.net.dt_copy_bw = 2.0e9;
  m.net.barrier_alpha = 2.0e-6;
  m.fabric = netsim::FabricKind::Dragonfly;  // Aries
  return m;
}

Machine summit() {
  Machine m;
  m.name = "summit-v100";
  // Host-side constants are mostly idle (compute runs on the GPU); they
  // still price the MPI_TypesUM staging engine on the Power9.
  m.stream_bw = 135e9;
  m.flops = 0.5e12;
  m.sweep_overhead = 5e-6;
  m.yask_bw_factor = 1.0;
  m.yask_sweep_overhead = 5e-6;
  m.pack_bw = 10e9;
  m.pack_overhead = 20e-6;
  // EDR InfiniBand fat tree; 6 ranks (GPUs) per node over NVLink.
  m.net.send_overhead = 1.2e-6;
  m.net.recv_overhead = 0.6e-6;
  m.net.pready_overhead = 0.3e-6;  // see theta(): doorbell per partition
  m.net.inter_node = {1.8e-6, 12.5e9};
  m.net.intra_node = {1.2e-6, 50.0e9};
  m.net.ranks_per_node = 6;
  // Spectrum-MPI's datatype engine on Power9 is lighter-weight than the
  // KNL one, but still collapses on strided rows relative to pack-free
  // transfers (paper Figs. 13/14).
  m.net.dt_block_overhead = 0.3e-6;
  m.net.dt_copy_bw = 8.0e9;
  m.net.barrier_alpha = 1.5e-6;
  // GPUDirect RDMA adds a small per-message registration cost; UM adds
  // fault handling per message and streams a little slower through the NIC.
  m.net.device_alpha_extra = 0.5e-6;
  m.net.device_bw_factor = 1.0;
  m.net.um_alpha_extra = 5e-6;
  m.net.um_bw_factor = 0.85;
  m.fabric = netsim::FabricKind::FatTree;  // EDR InfiniBand

  m.is_gpu = true;
  m.gpu.hbm_bw = 828.8e9;   // paper Section 2
  m.gpu.flops = 7.8e12;
  m.gpu.launch_overhead = 4e-6;
  m.gpu.link_bw = 50e9;     // NVLink2 per direction
  m.gpu.fault_per_page = 2.5e-6;
  m.gpu.page_size = 64 * 1024;  // Power9 base pages
  return m;
}

Machine summit_future() {
  Machine m = summit();
  m.name = "summit-v100-cumemmap";
  m.gpu.supports_cumemmap = true;
  return m;
}

double cpu_stencil_seconds(const Machine& m, std::int64_t cells,
                           double flops_per_cell, double bytes_per_cell,
                           bool yask_variant) {
  const double bw =
      m.stream_bw * (yask_variant ? m.yask_bw_factor : 1.0);
  const double c = static_cast<double>(cells);
  const double t = std::max(c * bytes_per_cell / bw, c * flops_per_cell / m.flops);
  return t + (yask_variant ? m.yask_sweep_overhead : m.sweep_overhead);
}

double pack_seconds(const Machine& m, std::int64_t bytes,
                    std::int64_t pieces) {
  return static_cast<double>(bytes) / m.pack_bw +
         static_cast<double>(pieces) * m.pack_overhead;
}

}  // namespace brickx::model
