#include "netsim/mapping.h"

#include <algorithm>
#include <cstddef>

#include "common/error.h"
#include "netsim/topology.h"

namespace brickx::netsim {

const char* map_name(MapKind k) {
  switch (k) {
    case MapKind::Block:
      return "block";
    case MapKind::RoundRobin:
      return "round-robin";
    case MapKind::Greedy:
      return "greedy";
    case MapKind::Rcb:
      return "rcb";
    case MapKind::Embed:
      return "embed";
  }
  return "?";
}

std::optional<MapKind> parse_mapping(std::string_view s) {
  if (s == "block") return MapKind::Block;
  if (s == "round-robin" || s == "rr") return MapKind::RoundRobin;
  if (s == "greedy") return MapKind::Greedy;
  if (s == "rcb") return MapKind::Rcb;
  if (s == "embed") return MapKind::Embed;
  return std::nullopt;
}

namespace {
int node_count(int nranks, int ranks_per_node) {
  BX_CHECK(nranks >= 1, "mapping needs at least one rank");
  BX_CHECK(ranks_per_node >= 1, "ranks_per_node must be positive");
  return (nranks + ranks_per_node - 1) / ranks_per_node;
}
}  // namespace

std::vector<int> block_map(int nranks, int ranks_per_node) {
  (void)node_count(nranks, ranks_per_node);
  std::vector<int> m(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    m[static_cast<std::size_t>(r)] = r / ranks_per_node;
  return m;
}

std::vector<int> round_robin_map(int nranks, int ranks_per_node) {
  const int nodes = node_count(nranks, ranks_per_node);
  std::vector<int> m(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) m[static_cast<std::size_t>(r)] = r % nodes;
  return m;
}

std::vector<int> greedy_map(int nranks, int ranks_per_node,
                            const std::vector<CommEdge>& graph) {
  const int nodes = node_count(nranks, ranks_per_node);
  // Adjacency with summed parallel-edge weights.
  std::vector<std::vector<std::pair<int, double>>> adj(
      static_cast<std::size_t>(nranks));
  for (const CommEdge& e : graph) {
    BX_CHECK(e.a >= 0 && e.a < nranks && e.b >= 0 && e.b < nranks,
             "greedy_map: edge endpoint out of range");
    if (e.a == e.b) continue;
    adj[static_cast<std::size_t>(e.a)].push_back({e.b, e.bytes});
    adj[static_cast<std::size_t>(e.b)].push_back({e.a, e.bytes});
  }
  std::vector<int> m(static_cast<std::size_t>(nranks), -1);
  // gain[r] = communication volume between r and the node being filled.
  std::vector<double> gain(static_cast<std::size_t>(nranks), 0.0);
  int assigned = 0;
  for (int node = 0; node < nodes && assigned < nranks; ++node) {
    std::fill(gain.begin(), gain.end(), 0.0);
    // Seed with the lowest unassigned rank (deterministic).
    int seed = 0;
    while (m[static_cast<std::size_t>(seed)] != -1) ++seed;
    int members = 0;
    int pick = seed;
    while (members < ranks_per_node && assigned < nranks) {
      m[static_cast<std::size_t>(pick)] = node;
      ++members;
      ++assigned;
      for (const auto& [nbr, w] : adj[static_cast<std::size_t>(pick)])
        if (m[static_cast<std::size_t>(nbr)] == -1)
          gain[static_cast<std::size_t>(nbr)] += w;
      // Next member: the unassigned rank with the most traffic into the
      // node so far; ties go to the lowest id. Isolated ranks (gain 0)
      // fall back to the lowest unassigned id as well.
      pick = -1;
      double best = -1.0;
      for (int r = 0; r < nranks; ++r) {
        if (m[static_cast<std::size_t>(r)] != -1) continue;
        if (gain[static_cast<std::size_t>(r)] > best) {
          best = gain[static_cast<std::size_t>(r)];
          pick = r;
        }
      }
      if (pick < 0) break;  // everything assigned
    }
  }
  BX_CHECK(assigned == nranks, "greedy_map failed to place every rank");
  return m;
}

namespace {

/// Shared guard for the geometry/topology strategies: the candidate wins
/// on ties, block wins only when it strictly cuts fewer bytes. Makes the
/// "never worse than block" property structural instead of statistical.
std::vector<int> guard_against_block(std::vector<int> candidate, int nranks,
                                     int ranks_per_node,
                                     const std::vector<CommEdge>& graph) {
  std::vector<int> block = block_map(nranks, ranks_per_node);
  if (cut_bytes(block, graph) < cut_bytes(candidate, graph)) return block;
  return candidate;
}

/// One bisection step: ranks[lo, hi) split across nodes [node_lo,
/// node_lo + nodes). Capacity invariant: hi - lo <= nodes * rpn.
void rcb_recurse(std::vector<int>& ranks, std::size_t lo, std::size_t hi,
                 int node_lo, int nodes, int rpn, const int grid[3],
                 std::vector<int>& out) {
  if (nodes == 1) {
    for (std::size_t i = lo; i < hi; ++i)
      out[static_cast<std::size_t>(ranks[i])] = node_lo;
    return;
  }
  auto coord = [&](int r, int axis) {
    int c[3] = {r % grid[0], (r / grid[0]) % grid[1],
                r / (grid[0] * grid[1])};
    return c[axis];
  };
  // Widest extent of the sub-box decides the cut axis (ties -> lowest
  // axis, so a given problem always bisects the same way).
  int axis = 0, widest = -1;
  for (int a = 0; a < 3; ++a) {
    int mn = coord(ranks[lo], a), mx = mn;
    for (std::size_t i = lo + 1; i < hi; ++i) {
      mn = std::min(mn, coord(ranks[i], a));
      mx = std::max(mx, coord(ranks[i], a));
    }
    if (mx - mn > widest) {
      widest = mx - mn;
      axis = a;
    }
  }
  std::sort(ranks.begin() + static_cast<std::ptrdiff_t>(lo),
            ranks.begin() + static_cast<std::ptrdiff_t>(hi),
            [&](int a, int b) {
              const int ca = coord(a, axis), cb = coord(b, axis);
              return ca != cb ? ca < cb : a < b;
            });
  const int left_nodes = nodes / 2;
  const std::size_t take =
      std::min(static_cast<std::size_t>(left_nodes) *
                   static_cast<std::size_t>(rpn),
               hi - lo);
  rcb_recurse(ranks, lo, lo + take, node_lo, left_nodes, rpn, grid, out);
  rcb_recurse(ranks, lo + take, hi, node_lo + left_nodes, nodes - left_nodes,
              rpn, grid, out);
}

}  // namespace

std::vector<int> rcb_map(int nranks, int ranks_per_node,
                         const std::vector<CommEdge>& graph,
                         const MapHints& hints) {
  const int nodes = node_count(nranks, ranks_per_node);
  const long long cells = static_cast<long long>(hints.grid[0]) *
                          hints.grid[1] * hints.grid[2];
  if (hints.grid[0] < 1 || hints.grid[1] < 1 || hints.grid[2] < 1 ||
      cells != nranks)
    return block_map(nranks, ranks_per_node);  // no geometry to bisect
  std::vector<int> ranks(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) ranks[static_cast<std::size_t>(r)] = r;
  std::vector<int> out(static_cast<std::size_t>(nranks), -1);
  rcb_recurse(ranks, 0, ranks.size(), 0, nodes, ranks_per_node, hints.grid,
              out);
  return guard_against_block(std::move(out), nranks, ranks_per_node, graph);
}

std::vector<int> embed_map(int nranks, int ranks_per_node,
                           const std::vector<CommEdge>& graph,
                           const MapHints& hints) {
  const int nodes = node_count(nranks, ranks_per_node);
  const std::size_t un = static_cast<std::size_t>(nranks);
  // Node-to-node distance: topology hop counts when available, linear
  // index distance otherwise (block-like locality still falls out).
  auto dist = [&](int i, int j) -> double {
    if (hints.topo) return static_cast<double>(hints.topo->hop_count(i, j));
    return static_cast<double>(i > j ? i - j : j - i);
  };
  std::vector<std::vector<std::pair<int, double>>> adj(un);
  std::vector<double> volume(un, 0.0);
  for (const CommEdge& e : graph) {
    BX_CHECK(e.a >= 0 && e.a < nranks && e.b >= 0 && e.b < nranks,
             "embed_map: edge endpoint out of range");
    if (e.a == e.b) continue;
    adj[static_cast<std::size_t>(e.a)].push_back({e.b, e.bytes});
    adj[static_cast<std::size_t>(e.b)].push_back({e.a, e.bytes});
    volume[static_cast<std::size_t>(e.a)] += e.bytes;
    volume[static_cast<std::size_t>(e.b)] += e.bytes;
  }
  std::vector<int> out(un, -1);
  std::vector<int> load(static_cast<std::size_t>(nodes), 0);
  // placed_w[r] = traffic between r and the already-placed set.
  std::vector<double> placed_w(un, 0.0);
  // Seed: the heaviest-communicating rank onto the most central node
  // (min total distance to every other node); ties -> lowest ids.
  int seed = 0;
  for (int r = 1; r < nranks; ++r)
    if (volume[static_cast<std::size_t>(r)] >
        volume[static_cast<std::size_t>(seed)])
      seed = r;
  int center = 0;
  double center_d = 0.0;
  for (int n = 0; n < nodes; ++n) {
    double d = 0.0;
    for (int q = 0; q < nodes; ++q) d += dist(n, q);
    if (n == 0 || d < center_d) {
      center = n;
      center_d = d;
    }
  }
  int pick = seed;
  for (int placed = 0; placed < nranks; ++placed) {
    // Best open node for `pick`: min Σ bytes × distance to its placed
    // partners; an isolated rank (no placed partners) lands on the
    // lowest-id open node, the seed on the central one.
    int best_node = -1;
    double best_cost = 0.0;
    if (placed == 0 && load[static_cast<std::size_t>(center)] <
                           ranks_per_node) {
      best_node = center;
    } else {
      for (int n = 0; n < nodes; ++n) {
        if (load[static_cast<std::size_t>(n)] >= ranks_per_node) continue;
        double cost = 0.0;
        for (const auto& [nbr, w] : adj[static_cast<std::size_t>(pick)])
          if (out[static_cast<std::size_t>(nbr)] >= 0)
            cost += w * dist(n, out[static_cast<std::size_t>(nbr)]);
        if (best_node < 0 || cost < best_cost) {
          best_node = n;
          best_cost = cost;
        }
      }
    }
    BX_CHECK(best_node >= 0, "embed_map: no open node left");
    out[static_cast<std::size_t>(pick)] = best_node;
    ++load[static_cast<std::size_t>(best_node)];
    for (const auto& [nbr, w] : adj[static_cast<std::size_t>(pick)])
      if (out[static_cast<std::size_t>(nbr)] < 0)
        placed_w[static_cast<std::size_t>(nbr)] += w;
    // Next rank: max traffic into the placed set (ties -> lowest id;
    // isolated ranks fall back to the lowest unplaced id).
    pick = -1;
    double best_w = -1.0;
    for (int r = 0; r < nranks; ++r) {
      if (out[static_cast<std::size_t>(r)] >= 0) continue;
      if (placed_w[static_cast<std::size_t>(r)] > best_w) {
        best_w = placed_w[static_cast<std::size_t>(r)];
        pick = r;
      }
    }
    if (pick < 0) break;  // everything placed
  }
  return guard_against_block(std::move(out), nranks, ranks_per_node, graph);
}

std::vector<int> make_map(MapKind kind, int nranks, int ranks_per_node,
                          const std::vector<CommEdge>& graph,
                          const MapHints& hints) {
  switch (kind) {
    case MapKind::Block:
      return block_map(nranks, ranks_per_node);
    case MapKind::RoundRobin:
      return round_robin_map(nranks, ranks_per_node);
    case MapKind::Greedy:
      return greedy_map(nranks, ranks_per_node, graph);
    case MapKind::Rcb:
      return rcb_map(nranks, ranks_per_node, graph, hints);
    case MapKind::Embed:
      return embed_map(nranks, ranks_per_node, graph, hints);
  }
  return block_map(nranks, ranks_per_node);
}

double cut_bytes(const std::vector<int>& node_of,
                 const std::vector<CommEdge>& graph) {
  double cut = 0.0;
  for (const CommEdge& e : graph)
    if (node_of[static_cast<std::size_t>(e.a)] !=
        node_of[static_cast<std::size_t>(e.b)])
      cut += e.bytes;
  return cut;
}

}  // namespace brickx::netsim
