#include "netsim/mapping.h"

#include <algorithm>

#include "common/error.h"

namespace brickx::netsim {

const char* map_name(MapKind k) {
  switch (k) {
    case MapKind::Block:
      return "block";
    case MapKind::RoundRobin:
      return "round-robin";
    case MapKind::Greedy:
      return "greedy";
  }
  return "?";
}

std::optional<MapKind> parse_mapping(std::string_view s) {
  if (s == "block") return MapKind::Block;
  if (s == "round-robin" || s == "rr") return MapKind::RoundRobin;
  if (s == "greedy") return MapKind::Greedy;
  return std::nullopt;
}

namespace {
int node_count(int nranks, int ranks_per_node) {
  BX_CHECK(nranks >= 1, "mapping needs at least one rank");
  BX_CHECK(ranks_per_node >= 1, "ranks_per_node must be positive");
  return (nranks + ranks_per_node - 1) / ranks_per_node;
}
}  // namespace

std::vector<int> block_map(int nranks, int ranks_per_node) {
  (void)node_count(nranks, ranks_per_node);
  std::vector<int> m(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r)
    m[static_cast<std::size_t>(r)] = r / ranks_per_node;
  return m;
}

std::vector<int> round_robin_map(int nranks, int ranks_per_node) {
  const int nodes = node_count(nranks, ranks_per_node);
  std::vector<int> m(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) m[static_cast<std::size_t>(r)] = r % nodes;
  return m;
}

std::vector<int> greedy_map(int nranks, int ranks_per_node,
                            const std::vector<CommEdge>& graph) {
  const int nodes = node_count(nranks, ranks_per_node);
  // Adjacency with summed parallel-edge weights.
  std::vector<std::vector<std::pair<int, double>>> adj(
      static_cast<std::size_t>(nranks));
  for (const CommEdge& e : graph) {
    BX_CHECK(e.a >= 0 && e.a < nranks && e.b >= 0 && e.b < nranks,
             "greedy_map: edge endpoint out of range");
    if (e.a == e.b) continue;
    adj[static_cast<std::size_t>(e.a)].push_back({e.b, e.bytes});
    adj[static_cast<std::size_t>(e.b)].push_back({e.a, e.bytes});
  }
  std::vector<int> m(static_cast<std::size_t>(nranks), -1);
  // gain[r] = communication volume between r and the node being filled.
  std::vector<double> gain(static_cast<std::size_t>(nranks), 0.0);
  int assigned = 0;
  for (int node = 0; node < nodes && assigned < nranks; ++node) {
    std::fill(gain.begin(), gain.end(), 0.0);
    // Seed with the lowest unassigned rank (deterministic).
    int seed = 0;
    while (m[static_cast<std::size_t>(seed)] != -1) ++seed;
    int members = 0;
    int pick = seed;
    while (members < ranks_per_node && assigned < nranks) {
      m[static_cast<std::size_t>(pick)] = node;
      ++members;
      ++assigned;
      for (const auto& [nbr, w] : adj[static_cast<std::size_t>(pick)])
        if (m[static_cast<std::size_t>(nbr)] == -1)
          gain[static_cast<std::size_t>(nbr)] += w;
      // Next member: the unassigned rank with the most traffic into the
      // node so far; ties go to the lowest id. Isolated ranks (gain 0)
      // fall back to the lowest unassigned id as well.
      pick = -1;
      double best = -1.0;
      for (int r = 0; r < nranks; ++r) {
        if (m[static_cast<std::size_t>(r)] != -1) continue;
        if (gain[static_cast<std::size_t>(r)] > best) {
          best = gain[static_cast<std::size_t>(r)];
          pick = r;
        }
      }
      if (pick < 0) break;  // everything assigned
    }
  }
  BX_CHECK(assigned == nranks, "greedy_map failed to place every rank");
  return m;
}

std::vector<int> make_map(MapKind kind, int nranks, int ranks_per_node,
                          const std::vector<CommEdge>& graph) {
  switch (kind) {
    case MapKind::Block:
      return block_map(nranks, ranks_per_node);
    case MapKind::RoundRobin:
      return round_robin_map(nranks, ranks_per_node);
    case MapKind::Greedy:
      return greedy_map(nranks, ranks_per_node, graph);
  }
  return block_map(nranks, ranks_per_node);
}

double cut_bytes(const std::vector<int>& node_of,
                 const std::vector<CommEdge>& graph) {
  double cut = 0.0;
  for (const CommEdge& e : graph)
    if (node_of[static_cast<std::size_t>(e.a)] !=
        node_of[static_cast<std::size_t>(e.b)])
      cut += e.bytes;
  return cut;
}

}  // namespace brickx::netsim
