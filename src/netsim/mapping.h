#pragma once

// Process-to-node mapping strategies. The fabric charges intra-node
// messages the cheap shmem path and routes inter-node ones over the
// topology, so *which* ranks share a node decides how much traffic the
// fabric carries — the lever Hunold et al.'s stencil-mapping work turns.
//
// All strategies are deterministic (ties break toward the lowest rank id).

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace brickx::netsim {

enum class MapKind : std::uint8_t { Block, RoundRobin, Greedy };

const char* map_name(MapKind k);
/// Parse "block" / "round-robin" / "greedy" (nullopt on anything else).
std::optional<MapKind> parse_mapping(std::string_view s);

/// One undirected edge of the application's communication graph, weighted
/// by bytes exchanged per round.
struct CommEdge {
  int a = 0;
  int b = 0;
  double bytes = 0.0;
};

/// Consecutive ranks share a node: rank r -> node r / ranks_per_node.
/// (What the flat NetModel has always assumed.)
std::vector<int> block_map(int nranks, int ranks_per_node);

/// Ranks deal out cyclically: rank r -> node r % nodes. The adversarial
/// placement — cartesian neighbors almost never share a node.
std::vector<int> round_robin_map(int nranks, int ranks_per_node);

/// Greedy communication-volume-minimizing growth: open nodes one at a
/// time, seed each with the lowest unassigned rank, then repeatedly pull
/// in the unassigned rank with the largest communication volume into the
/// node's current members until the node is full.
std::vector<int> greedy_map(int nranks, int ranks_per_node,
                            const std::vector<CommEdge>& graph);

std::vector<int> make_map(MapKind kind, int nranks, int ranks_per_node,
                          const std::vector<CommEdge>& graph);

/// Bytes of `graph` cut by the assignment (endpoints on different nodes);
/// the objective greedy_map minimizes.
double cut_bytes(const std::vector<int>& node_of,
                 const std::vector<CommEdge>& graph);

}  // namespace brickx::netsim
