#pragma once

// Process-to-node mapping strategies. The fabric charges intra-node
// messages the cheap shmem path and routes inter-node ones over the
// topology, so *which* ranks share a node decides how much traffic the
// fabric carries — the lever Hunold et al.'s stencil-mapping work turns.
//
// All strategies are deterministic (ties break toward the lowest rank id).

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace brickx::netsim {

class Topology;

enum class MapKind : std::uint8_t { Block, RoundRobin, Greedy, Rcb, Embed };

const char* map_name(MapKind k);
/// Parse "block" / "round-robin" / "greedy" / "rcb" / "embed" (nullopt on
/// anything else).
std::optional<MapKind> parse_mapping(std::string_view s);

/// One undirected edge of the application's communication graph, weighted
/// by bytes exchanged per round.
struct CommEdge {
  int a = 0;
  int b = 0;
  double bytes = 0.0;
};

/// Consecutive ranks share a node: rank r -> node r / ranks_per_node.
/// (What the flat NetModel has always assumed.)
std::vector<int> block_map(int nranks, int ranks_per_node);

/// Ranks deal out cyclically: rank r -> node r % nodes. The adversarial
/// placement — cartesian neighbors almost never share a node.
std::vector<int> round_robin_map(int nranks, int ranks_per_node);

/// Greedy communication-volume-minimizing growth: open nodes one at a
/// time, seed each with the lowest unassigned rank, then repeatedly pull
/// in the unassigned rank with the largest communication volume into the
/// node's current members until the node is full.
std::vector<int> greedy_map(int nranks, int ranks_per_node,
                            const std::vector<CommEdge>& graph);

/// Optional placement context for the geometry/topology-aware strategies.
/// Everything degrades gracefully: an unknown grid or a missing topology
/// only removes information, never validity.
struct MapHints {
  /// Cartesian rank-grid dims, axis 0 fastest (the harness's rank_dims);
  /// all zero = unknown. rcb_map needs grid[0]*grid[1]*grid[2] == nranks
  /// to bisect on coordinates and falls back to block otherwise.
  int grid[3] = {0, 0, 0};
  /// Node topology; embed_map weighs candidate nodes by hop distance to
  /// already-placed communication partners. nullptr = linear node
  /// distance |i - j|.
  const Topology* topo = nullptr;
};

/// Recursive coordinate bisection (Hunold et al.): split the rank grid on
/// its widest axis into two node groups of proportional capacity,
/// recursing until one node remains, so each node holds a compact
/// sub-box of the Cartesian grid. Guarded: if (degenerate geometry makes)
/// the bisection cut worse than block's, returns the block map — the
/// result never cuts more bytes of `graph` than block_map.
std::vector<int> rcb_map(int nranks, int ranks_per_node,
                         const std::vector<CommEdge>& graph,
                         const MapHints& hints);

/// Greedy communication-graph embedding (Hunold et al.): ranks are placed
/// one at a time in order of traffic to the already-placed set, each onto
/// the open node minimizing Σ bytes × hop-distance to its placed
/// partners. Same guard as rcb_map: never a worse cut than block_map.
std::vector<int> embed_map(int nranks, int ranks_per_node,
                           const std::vector<CommEdge>& graph,
                           const MapHints& hints);

std::vector<int> make_map(MapKind kind, int nranks, int ranks_per_node,
                          const std::vector<CommEdge>& graph,
                          const MapHints& hints = {});

/// Bytes of `graph` cut by the assignment (endpoints on different nodes);
/// the objective greedy_map minimizes.
double cut_bytes(const std::vector<int>& node_of,
                 const std::vector<CommEdge>& graph);

}  // namespace brickx::netsim
