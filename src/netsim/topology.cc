#include "netsim/topology.h"

#include <cstdio>

#include "common/error.h"

namespace brickx::netsim {

const char* topo_name(TopoKind k) {
  switch (k) {
    case TopoKind::SingleSwitch:
      return "single-switch";
    case TopoKind::FatTree:
      return "fat-tree";
    case TopoKind::Torus3d:
      return "torus";
    case TopoKind::Dragonfly:
      return "dragonfly";
  }
  return "?";
}

int Topology::add_vertex(VertexKind k) {
  vertex_kinds_.push_back(k);
  return static_cast<int>(vertex_kinds_.size()) - 1;
}

int Topology::add_link(int src, int dst, double bw, double latency) {
  links_.push_back(Link{src, dst, bw, latency});
  return static_cast<int>(links_.size()) - 1;
}

int Topology::add_duplex(int a, int b, double bw, double latency) {
  const int id = add_link(a, b, bw, latency);
  add_link(b, a, bw, latency);
  return id;
}

double Topology::path_latency(const std::vector<int>& route) const {
  double s = 0.0;
  for (int id : route) s += links_[static_cast<std::size_t>(id)].latency;
  return s;
}

Topology Topology::single_switch(int nodes, double bw, double hop_latency) {
  BX_CHECK(nodes >= 1, "single_switch needs at least one node");
  Topology t;
  t.kind_ = TopoKind::SingleSwitch;
  t.nodes_ = nodes;
  for (int n = 0; n < nodes; ++n) t.add_vertex(VertexKind::Node);
  const int sw = t.add_vertex(VertexKind::Switch);
  // up[n] = n -> switch, down[n] = switch -> n.
  std::vector<int> up(static_cast<std::size_t>(nodes)),
      down(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    up[static_cast<std::size_t>(n)] = t.add_link(n, sw, bw, hop_latency);
    down[static_cast<std::size_t>(n)] = t.add_link(sw, n, bw, hop_latency);
  }
  t.routes_.resize(static_cast<std::size_t>(nodes) *
                   static_cast<std::size_t>(nodes));
  for (int a = 0; a < nodes; ++a)
    for (int b = 0; b < nodes; ++b)
      if (a != b)
        t.route_slot(a, b) = {up[static_cast<std::size_t>(a)],
                              down[static_cast<std::size_t>(b)]};
  char buf[96];
  std::snprintf(buf, sizeof buf, "single-switch(%d nodes)", nodes);
  t.desc_ = buf;
  return t;
}

Topology Topology::fat_tree(int nodes, int nodes_per_leaf, int spines,
                            double bw, double hop_latency) {
  BX_CHECK(nodes >= 1 && nodes_per_leaf >= 1 && spines >= 1,
           "fat_tree shape parameters must be positive");
  Topology t;
  t.kind_ = TopoKind::FatTree;
  t.nodes_ = nodes;
  const int leaves = (nodes + nodes_per_leaf - 1) / nodes_per_leaf;
  for (int n = 0; n < nodes; ++n) t.add_vertex(VertexKind::Node);
  std::vector<int> leaf(static_cast<std::size_t>(leaves));
  for (int l = 0; l < leaves; ++l)
    leaf[static_cast<std::size_t>(l)] = t.add_vertex(VertexKind::Switch);
  std::vector<int> spine(static_cast<std::size_t>(spines));
  for (int s = 0; s < spines; ++s)
    spine[static_cast<std::size_t>(s)] = t.add_vertex(VertexKind::Switch);

  auto leaf_of = [&](int node) { return node / nodes_per_leaf; };
  // Node <-> leaf edge links.
  std::vector<int> up(static_cast<std::size_t>(nodes)),
      down(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    const int lv = leaf[static_cast<std::size_t>(leaf_of(n))];
    up[static_cast<std::size_t>(n)] = t.add_link(n, lv, bw, hop_latency);
    down[static_cast<std::size_t>(n)] = t.add_link(lv, n, bw, hop_latency);
  }
  // Leaf <-> spine core links: lup[l][s] = leaf l -> spine s (and +1 back).
  std::vector<std::vector<int>> lup(
      static_cast<std::size_t>(leaves),
      std::vector<int>(static_cast<std::size_t>(spines)));
  for (int l = 0; l < leaves; ++l)
    for (int s = 0; s < spines; ++s)
      lup[static_cast<std::size_t>(l)][static_cast<std::size_t>(s)] =
          t.add_duplex(leaf[static_cast<std::size_t>(l)],
                       spine[static_cast<std::size_t>(s)], bw, hop_latency);

  t.routes_.resize(static_cast<std::size_t>(nodes) *
                   static_cast<std::size_t>(nodes));
  for (int a = 0; a < nodes; ++a) {
    for (int b = 0; b < nodes; ++b) {
      if (a == b) continue;
      const int la = leaf_of(a), lb = leaf_of(b);
      auto& r = t.route_slot(a, b);
      r.push_back(up[static_cast<std::size_t>(a)]);
      if (la != lb) {
        // Deterministic ECMP: the spine is a pure function of the pair.
        const int s = (a + b) % spines;
        r.push_back(lup[static_cast<std::size_t>(la)][static_cast<std::size_t>(s)]);
        r.push_back(lup[static_cast<std::size_t>(lb)][static_cast<std::size_t>(s)] + 1);
      }
      r.push_back(down[static_cast<std::size_t>(b)]);
    }
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "fat-tree(%d nodes, %d leaves, %d spines)",
                nodes, leaves, spines);
  t.desc_ = buf;
  return t;
}

Topology Topology::torus3d(int nx, int ny, int nz, double bw,
                           double hop_latency) {
  BX_CHECK(nx >= 1 && ny >= 1 && nz >= 1, "torus3d dims must be positive");
  Topology t;
  t.kind_ = TopoKind::Torus3d;
  const int dims[3] = {nx, ny, nz};
  const int n = nx * ny * nz;
  t.nodes_ = n;
  for (int v = 0; v < n; ++v) t.add_vertex(VertexKind::Node);
  auto id_of = [&](int x, int y, int z) { return (z * ny + y) * nx + x; };
  // plus_link[axis][v] = v -> neighbor in +axis; minus is the reverse link.
  std::vector<std::vector<int>> plus(3, std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) {
        const int v = id_of(x, y, z);
        const int nbr[3] = {id_of((x + 1) % nx, y, z),
                            id_of(x, (y + 1) % ny, z),
                            id_of(x, y, (z + 1) % nz)};
        for (int a = 0; a < 3; ++a) {
          if (dims[a] == 1) continue;  // no self-loop on degenerate axes
          plus[static_cast<std::size_t>(a)][static_cast<std::size_t>(v)] =
              t.add_duplex(v, nbr[a], bw, hop_latency);
        }
      }
  t.routes_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  auto coords_of = [&](int v, int c[3]) {
    c[0] = v % nx;
    c[1] = (v / nx) % ny;
    c[2] = v / (nx * ny);
  };
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      int ca[3], cb[3];
      coords_of(a, ca);
      coords_of(b, cb);
      auto& r = t.route_slot(a, b);
      int cur[3] = {ca[0], ca[1], ca[2]};
      for (int axis = 0; axis < 3; ++axis) {
        const int d = dims[axis];
        if (d == 1) continue;
        const int fwd = ((cb[axis] - cur[axis]) % d + d) % d;  // steps in +axis
        if (fwd == 0) continue;  // already aligned on this axis
        const bool positive = fwd <= d - fwd;  // ties go positive
        int steps = positive ? fwd : d - fwd;
        while (steps-- > 0) {
          int next[3] = {cur[0], cur[1], cur[2]};
          next[axis] = ((cur[axis] + (positive ? 1 : -1)) % d + d) % d;
          const int from = id_of(cur[0], cur[1], cur[2]);
          const int to = id_of(next[0], next[1], next[2]);
          const int base = positive
                               ? plus[static_cast<std::size_t>(axis)]
                                     [static_cast<std::size_t>(from)]
                               : plus[static_cast<std::size_t>(axis)]
                                     [static_cast<std::size_t>(to)] + 1;
          r.push_back(base);
          cur[0] = next[0];
          cur[1] = next[1];
          cur[2] = next[2];
        }
      }
    }
  }
  char buf[96];
  std::snprintf(buf, sizeof buf, "torus(%dx%dx%d)", nx, ny, nz);
  t.desc_ = buf;
  return t;
}

Topology Topology::dragonfly(int groups, int routers_per_group,
                             int nodes_per_router, double bw,
                             double hop_latency) {
  BX_CHECK(groups >= 1 && routers_per_group >= 1 && nodes_per_router >= 1,
           "dragonfly shape parameters must be positive");
  Topology t;
  t.kind_ = TopoKind::Dragonfly;
  const int n = groups * routers_per_group * nodes_per_router;
  t.nodes_ = n;
  for (int v = 0; v < n; ++v) t.add_vertex(VertexKind::Node);
  // Routers, group-major.
  std::vector<int> router(static_cast<std::size_t>(groups * routers_per_group));
  for (int g = 0; g < groups; ++g)
    for (int r = 0; r < routers_per_group; ++r)
      router[static_cast<std::size_t>(g * routers_per_group + r)] =
          t.add_vertex(VertexKind::Switch);
  auto rtr = [&](int g, int r) {
    return router[static_cast<std::size_t>(g * routers_per_group + r)];
  };
  auto router_of_node = [&](int node, int* g, int* r) {
    *g = node / (routers_per_group * nodes_per_router);
    *r = (node / nodes_per_router) % routers_per_group;
  };
  // Node <-> router edge links.
  std::vector<int> up(static_cast<std::size_t>(n)), down(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    int g, r;
    router_of_node(v, &g, &r);
    up[static_cast<std::size_t>(v)] = t.add_link(v, rtr(g, r), bw, hop_latency);
    down[static_cast<std::size_t>(v)] = t.add_link(rtr(g, r), v, bw, hop_latency);
  }
  // Intra-group all-to-all: local[g][a][b] = router a -> router b (a != b).
  auto lkey = [&](int g, int a, int b) {
    return (static_cast<std::size_t>(g) * static_cast<std::size_t>(routers_per_group) +
            static_cast<std::size_t>(a)) * static_cast<std::size_t>(routers_per_group) +
           static_cast<std::size_t>(b);
  };
  std::vector<int> local(static_cast<std::size_t>(groups) *
                             static_cast<std::size_t>(routers_per_group) *
                             static_cast<std::size_t>(routers_per_group),
                         -1);
  for (int g = 0; g < groups; ++g)
    for (int a = 0; a < routers_per_group; ++a)
      for (int b = a + 1; b < routers_per_group; ++b) {
        const int id = t.add_duplex(rtr(g, a), rtr(g, b), bw, hop_latency);
        local[lkey(g, a, b)] = id;
        local[lkey(g, b, a)] = id + 1;
      }
  // One global link per ordered group pair, anchored deterministically:
  // the gateway router toward group k is router k % routers_per_group.
  std::vector<int> global(static_cast<std::size_t>(groups) *
                              static_cast<std::size_t>(groups),
                          -1);
  for (int gi = 0; gi < groups; ++gi)
    for (int gk = gi + 1; gk < groups; ++gk) {
      const int id = t.add_duplex(rtr(gi, gk % routers_per_group),
                                  rtr(gk, gi % routers_per_group), bw,
                                  hop_latency);
      global[static_cast<std::size_t>(gi) * static_cast<std::size_t>(groups) +
             static_cast<std::size_t>(gk)] = id;
      global[static_cast<std::size_t>(gk) * static_cast<std::size_t>(groups) +
             static_cast<std::size_t>(gi)] = id + 1;
    }

  t.routes_.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      int ga, ra, gb, rb;
      router_of_node(a, &ga, &ra);
      router_of_node(b, &gb, &rb);
      auto& r = t.route_slot(a, b);
      r.push_back(up[static_cast<std::size_t>(a)]);
      if (ga == gb) {
        if (ra != rb) r.push_back(local[lkey(ga, ra, rb)]);
      } else {
        const int gw_src = gb % routers_per_group;  // gateway in group ga
        const int gw_dst = ga % routers_per_group;  // landing in group gb
        if (ra != gw_src) r.push_back(local[lkey(ga, ra, gw_src)]);
        r.push_back(global[static_cast<std::size_t>(ga) *
                               static_cast<std::size_t>(groups) +
                           static_cast<std::size_t>(gb)]);
        if (gw_dst != rb) r.push_back(local[lkey(gb, gw_dst, rb)]);
      }
      r.push_back(down[static_cast<std::size_t>(b)]);
    }
  }
  char buf[96];
  std::snprintf(buf, sizeof buf,
                "dragonfly(%d groups x %d routers x %d nodes)", groups,
                routers_per_group, nodes_per_router);
  t.desc_ = buf;
  return t;
}

}  // namespace brickx::netsim
