#include "netsim/fairshare.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace brickx::netsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Max-min fair rates for the active flows (progressive filling). `rate`
/// is written per active index; `on_link[L]` lists active indices crossing
/// link L (only links with traffic are visited).
void fill_rates(const std::vector<Flow>& flows,
                const std::vector<std::size_t>& order,
                const std::vector<char>& active,
                const std::vector<double>& link_bw,
                std::vector<double>& rate) {
  const std::size_t nlinks = link_bw.size();
  // Residual capacity and unassigned-flow count per link.
  std::vector<double> cap(link_bw);
  std::vector<int> unassigned(nlinks, 0);
  std::vector<char> assigned(flows.size(), 0);
  std::vector<char> saturated(nlinks, 0);
  int n_active = 0;
  for (std::size_t i : order) {
    if (!active[i]) continue;
    ++n_active;
    for (int L : flows[i].route) ++unassigned[static_cast<std::size_t>(L)];
  }
  while (n_active > 0) {
    // The tightest link sets the next fair-share level.
    double best = kInf;
    std::size_t best_link = nlinks;
    for (std::size_t L = 0; L < nlinks; ++L) {
      if (saturated[L] || unassigned[L] == 0) continue;
      const double share = cap[L] / static_cast<double>(unassigned[L]);
      if (share < best) {
        best = share;
        best_link = L;
      }
    }
    BX_CHECK(best_link < nlinks, "fair-share: active flow with no live link");
    // Freeze every unassigned flow crossing the bottleneck at `best` and
    // drain its share from the rest of its route.
    for (std::size_t i : order) {
      if (!active[i] || assigned[i]) continue;
      const Flow& f = flows[i];
      bool crosses = false;
      for (int L : f.route)
        if (static_cast<std::size_t>(L) == best_link) {
          crosses = true;
          break;
        }
      if (!crosses) continue;
      rate[i] = best;
      assigned[i] = 1;
      --n_active;
      for (int Li : f.route) {
        const auto L = static_cast<std::size_t>(Li);
        cap[L] -= best;
        if (cap[L] < 0.0) cap[L] = 0.0;
        --unassigned[L];
      }
    }
    saturated[best_link] = 1;
  }
}

}  // namespace

std::vector<double> solve_fair_share(const std::vector<Flow>& flows,
                                     const std::vector<double>& link_bw,
                                     std::vector<LinkUse>* use) {
  const std::size_t n = flows.size();
  std::vector<double> finish(n, 0.0);
  if (use != nullptr)
    BX_CHECK(use->size() == link_bw.size(),
             "fair-share: usage vector does not match the link count");
  // Canonical processing order: the solution must not depend on the order
  // the (multi-threaded) caller appended flows in.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (flows[a].start != flows[b].start) return flows[a].start < flows[b].start;
    if (flows[a].src != flows[b].src) return flows[a].src < flows[b].src;
    return flows[a].seq < flows[b].seq;
  });

  std::vector<double> remaining(n, 0.0);
  std::vector<char> active(n, 0);
  std::vector<double> rate(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    BX_CHECK(!flows[i].route.empty(), "fair-share: flow without a route");
    for (int L : flows[i].route)
      BX_CHECK(L >= 0 && static_cast<std::size_t>(L) < link_bw.size(),
               "fair-share: route references an unknown link");
    remaining[i] = flows[i].bytes;
    finish[i] = flows[i].start;  // zero-byte flows end where they start
    if (use != nullptr)
      for (int L : flows[i].route)
        (*use)[static_cast<std::size_t>(L)].bytes += flows[i].bytes;
  }

  std::size_t next = 0;  // next entry of `order` not yet admitted
  int n_active = 0;
  double t = 0.0;
  while (true) {
    if (n_active == 0) {
      // Skip forward to the next arrival (drop already-drained flows).
      while (next < n && flows[order[next]].bytes <= 0.0) ++next;
      if (next >= n) break;
      t = flows[order[next]].start;
    }
    // Admit everything that has started by t.
    while (next < n && flows[order[next]].start <= t) {
      const std::size_t i = order[next];
      ++next;
      if (flows[i].bytes <= 0.0) continue;
      active[i] = 1;
      ++n_active;
    }
    fill_rates(flows, order, active, link_bw, rate);
    // Next event: a new arrival or the earliest drain among active flows.
    double t_next = kInf;
    if (next < n) t_next = flows[order[next]].start;
    for (std::size_t i : order) {
      if (!active[i]) continue;
      BX_CHECK(rate[i] > 0.0, "fair-share: active flow got zero bandwidth");
      const double done = t + remaining[i] / rate[i];
      if (done < t_next) t_next = done;
    }
    const double dt = t_next - t;
    // Per-link usage over [t, t_next): every active flow contributes.
    if (use != nullptr && dt > 0.0) {
      std::vector<int> conc(link_bw.size(), 0);
      for (std::size_t i : order)
        if (active[i])
          for (int L : flows[i].route) ++conc[static_cast<std::size_t>(L)];
      for (std::size_t L = 0; L < link_bw.size(); ++L) {
        if (conc[L] == 0) continue;
        LinkUse& u = (*use)[L];
        u.busy_time += dt;
        u.flow_time += static_cast<double>(conc[L]) * dt;
        if (conc[L] > u.max_concurrent) u.max_concurrent = conc[L];
      }
    }
    // Drain and retire. A flow retires when its drain event *is* this
    // event (the same expression picked t_next, so the comparison is
    // exact), or when rounding pushed its residual to zero.
    for (std::size_t i : order) {
      if (!active[i]) continue;
      const double done = t + remaining[i] / rate[i];
      remaining[i] -= rate[i] * dt;
      if (done <= t_next || remaining[i] <= 0.0) {
        finish[i] = t_next;
        active[i] = 0;
        --n_active;
      }
    }
    t = t_next;
    if (n_active == 0 && next >= n) break;
  }
  return finish;
}

}  // namespace brickx::netsim
