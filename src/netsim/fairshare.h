#pragma once

// Flow-level contention solver: piecewise max-min fair bandwidth sharing.
//
// A flow is a message transfer over a fixed route of capacitated links.
// While several flows share a link, they time-share its bandwidth; rates
// are the max-min fair allocation (progressive filling) and are recomputed
// at every flow start/finish event, so each flow's transfer is a piecewise-
// linear drain of its byte count.
//
// The solver is a pure sequential function of its inputs: flows are
// processed in a canonical order (start time, then src, then seq), so the
// result is bit-deterministic and independent of the order the caller
// appended flows in. The contention fabric uses it to resolve each
// communication round; unit tests drive it directly to check conservation,
// monotonicity and determinism.

#include <cstdint>
#include <vector>

namespace brickx::netsim {

struct Flow {
  double start = 0.0;       ///< seconds (virtual time the flow enters)
  double bytes = 0.0;       ///< payload to drain
  std::vector<int> route;   ///< link ids traversed (non-empty)
  int src = 0;              ///< originating rank, for canonical ordering
  std::int64_t seq = 0;     ///< per-src sequence number, for canonical ordering
};

/// Per-link aggregate of one solve (or accumulated across solves).
struct LinkUse {
  double bytes = 0.0;      ///< total bytes carried
  double busy_time = 0.0;  ///< time with >= 1 active flow
  double flow_time = 0.0;  ///< integral of (#active flows) dt while busy
  int max_concurrent = 0;  ///< peak simultaneously active flows

  /// Busy-time-weighted mean number of flows sharing the link (>= 1 when
  /// the link ever carried traffic, 0 otherwise).
  [[nodiscard]] double mean_sharing() const {
    return busy_time > 0.0 ? flow_time / busy_time : 0.0;
  }
  void merge(const LinkUse& o) {
    bytes += o.bytes;
    busy_time += o.busy_time;
    flow_time += o.flow_time;
    if (o.max_concurrent > max_concurrent) max_concurrent = o.max_concurrent;
  }
};

/// Solve the fair-share schedule. Returns finish times aligned with the
/// *input order* of `flows`. `link_bw[i]` is the capacity of link id i;
/// every route entry must index into it. Zero-byte flows finish at their
/// start time. When `use` is non-null it must have link_bw.size() entries;
/// per-link usage is accumulated into it (not cleared first).
std::vector<double> solve_fair_share(const std::vector<Flow>& flows,
                                     const std::vector<double>& link_bw,
                                     std::vector<LinkUse>* use = nullptr);

}  // namespace brickx::netsim
