#pragma once

// Network topology graph for the netsim fabric: terminal nodes and switches
// as vertices, directed capacitated links as edges, and deterministic
// minimal routes precomputed for every terminal-node pair. Builders cover
// the fabrics the paper's machines actually run on (single switch, two-tier
// fat tree, 3D torus, dragonfly); link rates are supplied by the caller so
// src/model's calibration stays the single source of timing constants.
//
// Everything here is pure data + deterministic construction: the same
// builder arguments produce the same graph, routes and hop counts on every
// run, which the contention fabric depends on for reproducibility.

#include <cstdint>
#include <string>
#include <vector>

namespace brickx::netsim {

enum class VertexKind : std::uint8_t { Node, Switch };

/// One directed link. Bandwidth is per direction (full duplex is modeled as
/// two links); `latency` is the per-hop wire+switch traversal time.
struct Link {
  int src = 0;           ///< vertex id
  int dst = 0;           ///< vertex id
  double bw = 0.0;       ///< bytes/second
  double latency = 0.0;  ///< seconds per traversal
};

enum class TopoKind : std::uint8_t { SingleSwitch, FatTree, Torus3d, Dragonfly };

const char* topo_name(TopoKind k);

/// An immutable fabric graph with routes resolved at construction.
class Topology {
 public:
  /// Every node hangs off one crossbar switch; contention only at the
  /// node up/down links (classic full-bisection small cluster).
  static Topology single_switch(int nodes, double bw, double hop_latency);

  /// Two-tier fat tree: `nodes_per_leaf` hosts per leaf switch, `spines`
  /// spine switches each connected to every leaf. spines < leaves gives an
  /// oversubscribed core; the spine for a pair is chosen by a deterministic
  /// (a + b) % spines ECMP hash.
  static Topology fat_tree(int nodes, int nodes_per_leaf, int spines,
                           double bw, double hop_latency);

  /// 3D torus with one terminal node per router and dimension-ordered
  /// (X then Y then Z) minimal routing; distance ties route in the
  /// positive direction.
  static Topology torus3d(int nx, int ny, int nz, double bw,
                          double hop_latency);

  /// Dragonfly: `groups` groups of `routers_per_group` all-to-all-connected
  /// routers with `nodes_per_router` hosts each; one global link per
  /// ordered group pair, anchored at router `dst_group % routers_per_group`
  /// of the source group. Minimal (up to one local, one global, one local)
  /// routing.
  static Topology dragonfly(int groups, int routers_per_group,
                            int nodes_per_router, double bw,
                            double hop_latency);

  [[nodiscard]] TopoKind kind() const { return kind_; }
  [[nodiscard]] int nodes() const { return nodes_; }
  [[nodiscard]] int vertices() const {
    return static_cast<int>(vertex_kinds_.size());
  }
  [[nodiscard]] VertexKind vertex_kind(int v) const {
    return vertex_kinds_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  /// Link-id sequence from terminal node `a` to terminal node `b`
  /// (empty when a == b). Stable across runs by construction.
  [[nodiscard]] const std::vector<int>& route(int a, int b) const {
    return routes_[static_cast<std::size_t>(a) * static_cast<std::size_t>(nodes_) +
                   static_cast<std::size_t>(b)];
  }
  [[nodiscard]] int hop_count(int a, int b) const {
    return static_cast<int>(route(a, b).size());
  }
  [[nodiscard]] double path_latency(const std::vector<int>& route) const;

  /// Human-readable shape summary, e.g. "fat-tree(8 nodes, 2 leaves, 1 spine)".
  [[nodiscard]] const std::string& describe() const { return desc_; }

 private:
  Topology() = default;
  int add_vertex(VertexKind k);
  int add_link(int src, int dst, double bw, double latency);
  /// Both directions; returns the src->dst link id (the dst->src id is +1).
  int add_duplex(int a, int b, double bw, double latency);
  std::vector<int>& route_slot(int a, int b) {
    return routes_[static_cast<std::size_t>(a) * static_cast<std::size_t>(nodes_) +
                   static_cast<std::size_t>(b)];
  }

  TopoKind kind_ = TopoKind::SingleSwitch;
  int nodes_ = 0;
  std::vector<VertexKind> vertex_kinds_;
  std::vector<Link> links_;
  std::vector<std::vector<int>> routes_;  ///< [a * nodes_ + b]
  std::string desc_;
};

}  // namespace brickx::netsim
