#include "netsim/fabric.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace brickx::netsim {

const char* fabric_name(FabricKind k) {
  switch (k) {
    case FabricKind::Flat:
      return "flat";
    case FabricKind::SingleSwitch:
      return "single-switch";
    case FabricKind::FatTree:
      return "fat-tree";
    case FabricKind::Torus3d:
      return "torus";
    case FabricKind::Dragonfly:
      return "dragonfly";
  }
  return "?";
}

std::optional<FabricKind> parse_fabric(std::string_view s) {
  if (s == "flat") return FabricKind::Flat;
  if (s == "single-switch" || s == "switch") return FabricKind::SingleSwitch;
  if (s == "fat-tree" || s == "fattree") return FabricKind::FatTree;
  if (s == "torus" || s == "torus3d") return FabricKind::Torus3d;
  if (s == "dragonfly") return FabricKind::Dragonfly;
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// FlatFabric
// ---------------------------------------------------------------------------

FlatFabric::FlatFabric(int nranks, int ranks_per_node)
    : ranks_per_node_(ranks_per_node),
      ranks_(static_cast<std::size_t>(nranks)) {
  BX_CHECK(nranks >= 1, "FlatFabric needs at least one rank");
  BX_CHECK(ranks_per_node >= 1, "FlatFabric: ranks_per_node must be positive");
}

SendTiming FlatFabric::send(int src, int /*dst*/, std::size_t bytes,
                            double alpha, double bw, double t_ready) {
  // The pre-fabric Comm arithmetic, verbatim: departure = max(clock,
  // nic_free); nic_free = departure + bytes/bw; arrival = nic_free + alpha.
  RankState& rs = ranks_[static_cast<std::size_t>(src)];
  const double dep = std::max(t_ready, rs.nic_free);
  rs.nic_free = dep + static_cast<double>(bytes) / bw;
  rs.messages += 1;
  rs.queue_seconds += dep - t_ready;
  return SendTiming{dep, rs.nic_free, rs.nic_free + alpha, 0};
}

SendTiming FlatFabric::send_part(int src, int /*dst*/, std::size_t bytes,
                                 double alpha, double bw, double t_ready,
                                 bool first) {
  // Identical arithmetic to send() — on a private link a streamed
  // partition serializes on the sender NIC and its tail crosses the wire
  // in alpha like any other bytes — but the logical message is counted
  // once, on its first partition.
  RankState& rs = ranks_[static_cast<std::size_t>(src)];
  const double dep = std::max(t_ready, rs.nic_free);
  rs.nic_free = dep + static_cast<double>(bytes) / bw;
  if (first) rs.messages += 1;
  rs.queue_seconds += dep - t_ready;
  return SendTiming{dep, rs.nic_free, rs.nic_free + alpha, 0};
}

void FlatFabric::reset() {
  for (RankState& rs : ranks_) rs = RankState{};
}

FabricStats FlatFabric::stats() const {
  FabricStats s;
  for (const RankState& rs : ranks_) {
    s.messages += rs.messages;
    s.queue_seconds += rs.queue_seconds;
  }
  return s;
}

// ---------------------------------------------------------------------------
// ContentionFabric
// ---------------------------------------------------------------------------

ContentionFabric::ContentionFabric(FabricKind kind, Topology topo,
                                   std::vector<int> rank_node,
                                   double base_alpha)
    : kind_(kind),
      topo_(std::move(topo)),
      rank_node_(std::move(rank_node)),
      base_alpha_(base_alpha),
      ranks_(rank_node_.size()) {
  BX_CHECK(kind_ != FabricKind::Flat,
           "ContentionFabric cannot impersonate the flat fabric");
  BX_CHECK(!rank_node_.empty(), "ContentionFabric needs at least one rank");
  for (int n : rank_node_)
    BX_CHECK(n >= 0 && n < topo_.nodes(),
             "rank mapped to a node outside the topology");
  link_bw_.reserve(topo_.links().size());
  for (const Link& l : topo_.links()) link_bw_.push_back(l.bw);
  sharing_.assign(link_bw_.size(), 1.0);
  link_use_.assign(link_bw_.size(), LinkUse{});
}

SendTiming ContentionFabric::send(int src, int dst, std::size_t bytes,
                                  double alpha, double bw, double t_ready) {
  RankState& rs = ranks_[static_cast<std::size_t>(src)];
  rs.messages += 1;
  if (local(src, dst)) {
    // Same node: the shmem path never touches the fabric; alpha-beta with
    // sender NIC serialization, exactly like the flat model.
    const double dep = std::max(t_ready, rs.nic_free);
    rs.nic_free = dep + static_cast<double>(bytes) / bw;
    rs.queue_seconds += dep - t_ready;
    return SendTiming{dep, rs.nic_free, rs.nic_free + alpha, 0};
  }
  const std::vector<int>& route =
      topo_.route(rank_node_[static_cast<std::size_t>(src)],
                  rank_node_[static_cast<std::size_t>(dst)]);
  // Effective injection rate: the endpoint rate capped by the most
  // contended link of the route under the current (previous-round) sharing
  // factors. Everything read here is either rank-local or frozen until the
  // next epoch, so timing is independent of thread interleaving.
  double eff = bw;
  double share = 1.0;
  for (int L : route) {
    const auto l = static_cast<std::size_t>(L);
    eff = std::min(eff, link_bw_[l] / sharing_[l]);
    share = std::max(share, sharing_[l]);
  }
  const double start = std::max(t_ready, rs.nic_free);
  const double end = start + static_cast<double>(bytes) / eff;
  rs.nic_free = end;
  // The routed path supplies the base latency; whatever the caller's alpha
  // carries beyond the flat inter-node constant (GPUDirect registration,
  // UM faulting) still applies at the endpoints.
  const double extra = std::max(0.0, alpha - base_alpha_);
  const double arrive = end + topo_.path_latency(route) + extra;
  rs.queue_seconds += start - t_ready;
  rs.fabric_messages += 1;
  rs.hop_sum += static_cast<std::int64_t>(route.size());
  Flow f;
  f.start = start;
  f.bytes = static_cast<double>(bytes);
  f.route = route;
  f.src = src;
  f.seq = rs.seq++;
  {
    std::lock_guard lk(mu_);
    round_flows_.push_back(std::move(f));
    if (!span_set_ || start < span_min_) span_min_ = start;
    if (!span_set_ || end > span_max_) span_max_ = end;
    span_set_ = true;
  }
  return SendTiming{start, end, arrive, static_cast<int>(route.size()),
                    share};
}

SendTiming ContentionFabric::send_part(int src, int dst, std::size_t bytes,
                                       double alpha, double bw,
                                       double t_ready, bool first) {
  RankState& rs = ranks_[static_cast<std::size_t>(src)];
  if (local(src, dst)) {
    const double dep = std::max(t_ready, rs.nic_free);
    rs.nic_free = dep + static_cast<double>(bytes) / bw;
    if (first) rs.messages += 1;
    rs.queue_seconds += dep - t_ready;
    return SendTiming{dep, rs.nic_free, rs.nic_free + alpha, 0};
  }
  const std::vector<int>& route =
      topo_.route(rank_node_[static_cast<std::size_t>(src)],
                  rank_node_[static_cast<std::size_t>(dst)]);
  double eff = bw;
  double share = 1.0;
  for (int L : route) {
    const auto l = static_cast<std::size_t>(L);
    eff = std::min(eff, link_bw_[l] / sharing_[l]);
    share = std::max(share, sharing_[l]);
  }
  const double start = std::max(t_ready, rs.nic_free);
  const double end = start + static_cast<double>(bytes) / eff;
  rs.nic_free = end;
  const double extra = std::max(0.0, alpha - base_alpha_);
  const double arrive = end + topo_.path_latency(route) + extra;
  rs.queue_seconds += start - t_ready;
  {
    std::lock_guard lk(mu_);
    // Continuations extend the flow their first partition registered —
    // the fair-share solve sees one flow with the message's total bytes,
    // exactly like the bulk path — unless epoch()/reset() swept it (then
    // the tail becomes a fresh flow, but the message stays counted once).
    const bool extend = !first && rs.open_dst == dst &&
                        rs.open_epoch == epoch_id_ &&
                        rs.open_idx < round_flows_.size();
    if (extend) {
      round_flows_[rs.open_idx].bytes += static_cast<double>(bytes);
    } else {
      Flow f;
      f.start = start;
      f.bytes = static_cast<double>(bytes);
      f.route = route;
      f.src = src;
      f.seq = rs.seq++;
      rs.open_dst = dst;
      rs.open_idx = round_flows_.size();
      rs.open_epoch = epoch_id_;
      round_flows_.push_back(std::move(f));
    }
    if (!span_set_ || start < span_min_) span_min_ = start;
    if (!span_set_ || end > span_max_) span_max_ = end;
    span_set_ = true;
  }
  if (first) {
    rs.messages += 1;
    rs.fabric_messages += 1;
    rs.hop_sum += static_cast<std::int64_t>(route.size());
  }
  return SendTiming{start, end, arrive, static_cast<int>(route.size()),
                    share};
}

void ContentionFabric::epoch() {
  // Called with every rank parked inside a collective: no send() races.
  if (round_flows_.empty()) return;  // keep the current factors
  std::vector<LinkUse> use(link_bw_.size());
  (void)solve_fair_share(round_flows_, link_bw_, &use);
  for (std::size_t L = 0; L < use.size(); ++L) {
    link_use_[L].merge(use[L]);
    const double mean = use[L].mean_sharing();
    sharing_[L] = std::max(1.0, mean);
  }
  round_flows_.clear();
  ++epoch_id_;  // invalidate every rank's open partitioned flow
}

void ContentionFabric::reset() {
  for (RankState& rs : ranks_) rs = RankState{};
  round_flows_.clear();
  sharing_.assign(link_bw_.size(), 1.0);
  link_use_.assign(link_bw_.size(), LinkUse{});
  span_set_ = false;
  span_min_ = span_max_ = 0.0;
}

FabricStats ContentionFabric::stats() const {
  FabricStats s;
  for (const RankState& rs : ranks_) {
    s.messages += rs.messages;
    s.fabric_messages += rs.fabric_messages;
    s.hop_sum += rs.hop_sum;
    s.queue_seconds += rs.queue_seconds;
  }
  s.links = static_cast<int>(link_bw_.size());
  const double span = span_set_ ? span_max_ - span_min_ : 0.0;
  s.link_sharing.reserve(link_use_.size());
  s.link_util.reserve(link_use_.size());
  std::size_t busiest = 0;
  for (std::size_t L = 0; L < link_use_.size(); ++L) {
    const LinkUse& u = link_use_[L];
    s.link_sharing.push_back(u.mean_sharing());
    s.link_util.push_back(span > 0.0 ? u.busy_time / span : 0.0);
    s.max_link_sharing = std::max(s.max_link_sharing, u.mean_sharing());
    if (u.bytes > link_use_[busiest].bytes) busiest = L;
  }
  if (!link_use_.empty()) {
    s.busiest_link_bytes = link_use_[busiest].bytes;
    s.busiest_link_util = span > 0.0 ? link_use_[busiest].busy_time / span : 0.0;
  }
  return s;
}

std::string ContentionFabric::describe() const { return topo_.describe(); }

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

std::unique_ptr<Fabric> make_flat_fabric(int nranks, int ranks_per_node) {
  return std::make_unique<FlatFabric>(nranks, ranks_per_node);
}

namespace {

/// Near-cubic dims with x*y*z >= nodes (for the torus builder).
void torus_dims(int nodes, int d[3]) {
  d[0] = static_cast<int>(std::ceil(std::cbrt(static_cast<double>(nodes))));
  if (d[0] < 1) d[0] = 1;
  d[1] = static_cast<int>(std::ceil(
      std::sqrt(static_cast<double>(nodes) / static_cast<double>(d[0]))));
  if (d[1] < 1) d[1] = 1;
  d[2] = (nodes + d[0] * d[1] - 1) / (d[0] * d[1]);
  if (d[2] < 1) d[2] = 1;
}

}  // namespace

std::unique_ptr<Fabric> make_fabric(FabricKind kind, MapKind mapping,
                                    int nranks, int ranks_per_node,
                                    double link_bw, double hop_latency,
                                    double base_alpha,
                                    const std::vector<CommEdge>& comm_graph,
                                    std::array<int, 3> rank_grid) {
  BX_CHECK(kind != FabricKind::Flat,
           "make_fabric builds contention fabrics; the flat model needs no "
           "topology");
  BX_CHECK(nranks >= 1 && ranks_per_node >= 1,
           "make_fabric: bad rank geometry");
  const int nodes = (nranks + ranks_per_node - 1) / ranks_per_node;
  Topology topo = Topology::single_switch(1, link_bw, hop_latency);
  switch (kind) {
    case FabricKind::SingleSwitch:
      topo = Topology::single_switch(nodes, link_bw, hop_latency);
      break;
    case FabricKind::FatTree: {
      // 2 hosts per leaf, 2:1 oversubscribed core — inter-leaf routes and
      // shared spine links exist even at bench-scale node counts.
      const int per_leaf = 2;
      const int leaves = (nodes + per_leaf - 1) / per_leaf;
      const int spines = std::max(1, leaves / 2);
      topo = Topology::fat_tree(nodes, per_leaf, spines, link_bw, hop_latency);
      break;
    }
    case FabricKind::Torus3d: {
      int d[3];
      torus_dims(nodes, d);
      topo = Topology::torus3d(d[0], d[1], d[2], link_bw, hop_latency);
      break;
    }
    case FabricKind::Dragonfly: {
      // 2 hosts per router, 2 routers per group (Aries-like miniature).
      const int per_group = 4;
      const int groups = std::max(2, (nodes + per_group - 1) / per_group);
      topo = Topology::dragonfly(groups, 2, 2, link_bw, hop_latency);
      break;
    }
    case FabricKind::Flat:
      break;  // unreachable (checked above)
  }
  MapHints hints;
  hints.grid[0] = rank_grid[0];
  hints.grid[1] = rank_grid[1];
  hints.grid[2] = rank_grid[2];
  hints.topo = &topo;
  std::vector<int> map =
      make_map(mapping, nranks, ranks_per_node, comm_graph, hints);
  return std::make_unique<ContentionFabric>(kind, std::move(topo),
                                            std::move(map), base_alpha);
}

}  // namespace brickx::netsim
