#pragma once

// The Fabric is the narrow seam between simmpi's virtual-clock runtime and
// the network model: Comm hands it (src, dst, bytes, effective alpha/beta,
// ready time) and gets back when the message left the sender NIC and when
// it becomes visible at the receiver. Two implementations:
//
//  * FlatFabric — the legacy model: every message gets a private link and
//    serializes only on its sender's NIC. Bit-identical to the arithmetic
//    simmpi::Comm used before the fabric existed (departure = max(ready,
//    nic_free); nic_free = departure + bytes/bw; arrival = nic_free +
//    alpha). The default on every Runtime.
//
//  * ContentionFabric — routes inter-node messages over a Topology under a
//    pluggable process-to-node mapping, and time-shares link bandwidth
//    between concurrent messages. Contention factors are solved with the
//    exact piecewise max-min fair-share engine (fairshare.h) once per
//    *round* — the stretch of traffic between two collectives, a globally
//    quiescent point where Runtime calls epoch() — and applied to the next
//    round's flows. The one-round lag is what keeps timing bit-
//    deterministic while rank threads free-run: within a round a sender
//    needs only its own clock, its own NIC horizon and the (frozen) factor
//    table, never the racing state of other ranks. In the harness's
//    bulk-synchronous loop the warmup exchange populates the factors and
//    the measured rounds repeat the same traffic pattern, so the lagged
//    factors describe exactly the congestion the measured flows see.
//
// Threading contract: send() is called concurrently from rank threads
// (each rank only for src == its own rank); epoch() and reset() are called
// at globally quiescent points; stats() after run() returns.

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "netsim/fairshare.h"
#include "netsim/mapping.h"
#include "netsim/topology.h"

namespace brickx::netsim {

enum class FabricKind : std::uint8_t {
  Flat,          ///< legacy private-link alpha-beta model
  SingleSwitch,  ///< one crossbar; contention on node up/down links
  FatTree,       ///< two-tier, oversubscribed core
  Torus3d,       ///< 3D torus, dimension-ordered routing
  Dragonfly,     ///< groups + global links (Aries-class)
};

const char* fabric_name(FabricKind k);
/// Parse "flat" / "single-switch" / "fat-tree" / "torus" / "dragonfly".
std::optional<FabricKind> parse_fabric(std::string_view s);

/// What the runtime needs to time one message.
struct SendTiming {
  double inject_start = 0.0;  ///< first byte enters the sender NIC
  double inject_end = 0.0;    ///< sender-side completion ("send done")
  double arrival = 0.0;       ///< receiver-visible arrival of the last byte
  int hops = 0;               ///< fabric links traversed (0 = same node)
  /// Peak link-sharing factor applied along the route (1.0 on the flat
  /// model and node-local paths). Lets the critical-path analyzer split
  /// injection time into nominal serialization vs fabric contention.
  double sharing = 1.0;
};

/// Aggregate fabric observability, read once per run.
struct FabricStats {
  std::int64_t messages = 0;         ///< everything that went through send()
  std::int64_t fabric_messages = 0;  ///< subset that crossed the fabric
  std::int64_t hop_sum = 0;          ///< Σ hops over fabric messages
  double queue_seconds = 0.0;        ///< Σ (inject_start − ready)
  int links = 0;                     ///< topology link count (0 for flat)
  double max_link_sharing = 0.0;     ///< peak mean flows sharing one link
  double busiest_link_bytes = 0.0;   ///< bytes on the hottest link
  double busiest_link_util = 0.0;    ///< its busy time / traffic span
  /// Per-link mean sharing and utilization (empty for flat).
  std::vector<double> link_sharing;
  std::vector<double> link_util;
};

class Fabric {
 public:
  virtual ~Fabric() = default;
  [[nodiscard]] virtual FabricKind kind() const = 0;
  /// Do ranks src and dst share a node under this fabric's mapping?
  [[nodiscard]] virtual bool local(int src, int dst) const = 0;
  /// Node id of a rank under this fabric's mapping (the transport tier
  /// keys its on-node routing and aggregation frames by it).
  [[nodiscard]] virtual int node_of(int rank) const = 0;
  /// Time one message. `alpha`/`bw` are the effective endpoint link
  /// parameters the caller's cost model picked (memory-space adjustments
  /// included); `t_ready` is the sender's clock when the message is posted.
  virtual SendTiming send(int src, int dst, std::size_t bytes, double alpha,
                          double bw, double t_ready) = 0;
  /// Time one partition of a partitioned message (MPI_Psend-style). The
  /// partitions one (src, dst) pair readies between two start()s form ONE
  /// logical message: the first partition (`first` = true) pays the
  /// per-message costs — message counters, flow registration for the
  /// contention solve — and continuations stream over the established
  /// route: they still serialize on the sender NIC and traverse the full
  /// path, but register no new flow and no extra message. This is what
  /// makes partitioned delivery fabric-invariant with the bulk path (same
  /// flows, same bytes, same contention) instead of a per-partition
  /// message storm. The default prices every partition as its own message
  /// (correct, pessimistic) so custom fabrics need not override it.
  virtual SendTiming send_part(int src, int dst, std::size_t bytes,
                               double alpha, double bw, double t_ready,
                               bool first) {
    (void)first;
    return send(src, dst, bytes, alpha, bw, t_ready);
  }
  /// Globally quiescent point (every rank is inside a collective): close
  /// the current contention round.
  virtual void epoch() {}
  /// Start of a run(): clear NIC horizons and per-round state.
  virtual void reset() = 0;
  [[nodiscard]] virtual FabricStats stats() const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// The legacy model; every Runtime starts with one.
class FlatFabric final : public Fabric {
 public:
  FlatFabric(int nranks, int ranks_per_node);

  [[nodiscard]] FabricKind kind() const override { return FabricKind::Flat; }
  [[nodiscard]] bool local(int src, int dst) const override {
    return src / ranks_per_node_ == dst / ranks_per_node_;
  }
  [[nodiscard]] int node_of(int rank) const override {
    return rank / ranks_per_node_;
  }
  SendTiming send(int src, int dst, std::size_t bytes, double alpha,
                  double bw, double t_ready) override;
  SendTiming send_part(int src, int dst, std::size_t bytes, double alpha,
                       double bw, double t_ready, bool first) override;
  void reset() override;
  [[nodiscard]] FabricStats stats() const override;
  [[nodiscard]] std::string describe() const override { return "flat"; }

 private:
  struct RankState {
    double nic_free = 0.0;
    std::int64_t messages = 0;
    double queue_seconds = 0.0;
  };
  int ranks_per_node_;
  std::vector<RankState> ranks_;  ///< slot r touched only by rank r's thread
};

/// Topology-routed, contention-modeled fabric (see file comment).
class ContentionFabric final : public Fabric {
 public:
  /// `rank_node[r]` = node of rank r (nodes index into `topo`);
  /// `base_alpha` is the flat model's inter-node latency the endpoint
  /// `alpha` argument is measured against (its memory-space surcharge is
  /// kept on top of the routed path latency).
  ContentionFabric(FabricKind kind, Topology topo, std::vector<int> rank_node,
                   double base_alpha);

  [[nodiscard]] FabricKind kind() const override { return kind_; }
  [[nodiscard]] bool local(int src, int dst) const override {
    return rank_node_[static_cast<std::size_t>(src)] ==
           rank_node_[static_cast<std::size_t>(dst)];
  }
  [[nodiscard]] int node_of(int rank) const override {
    return rank_node_[static_cast<std::size_t>(rank)];
  }
  SendTiming send(int src, int dst, std::size_t bytes, double alpha,
                  double bw, double t_ready) override;
  SendTiming send_part(int src, int dst, std::size_t bytes, double alpha,
                       double bw, double t_ready, bool first) override;
  void epoch() override;
  void reset() override;
  [[nodiscard]] FabricStats stats() const override;
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const std::vector<int>& rank_node() const { return rank_node_; }
  /// Current per-link sharing factors (>= 1), frozen between epochs.
  [[nodiscard]] const std::vector<double>& sharing() const { return sharing_; }

 private:
  struct RankState {
    double nic_free = 0.0;
    std::int64_t messages = 0;
    std::int64_t fabric_messages = 0;
    std::int64_t hop_sum = 0;
    double queue_seconds = 0.0;
    std::int64_t seq = 0;  ///< per-src flow sequence for canonical ordering
    /// The flow a partitioned continuation extends: the round_flows_ index
    /// registered by this rank's most recent first-partition send_part,
    /// valid only while `open_epoch` matches the fabric's epoch counter.
    int open_dst = -1;
    std::size_t open_idx = 0;
    std::uint64_t open_epoch = 0;
  };

  FabricKind kind_;
  Topology topo_;
  std::vector<int> rank_node_;
  double base_alpha_;
  std::vector<double> link_bw_;

  std::vector<RankState> ranks_;  ///< slot r touched only by rank r's thread

  // Round state (mutated under mu_; epoch()/reset() run quiescent).
  std::mutex mu_;
  std::vector<Flow> round_flows_;
  std::vector<double> sharing_;     ///< factor applied to the current round
  std::vector<LinkUse> link_use_;   ///< cumulative, across solved rounds
  double span_min_ = 0.0, span_max_ = 0.0;
  bool span_set_ = false;
  /// Bumped by epoch()/reset(); invalidates every RankState::open_idx so a
  /// continuation never extends a flow the fair-share solve already swept.
  std::uint64_t epoch_id_ = 1;
};

/// Build a contention fabric sized for `nranks` over ceil(nranks /
/// ranks_per_node) nodes, with auto-chosen topology shape, the given
/// per-link rate constants, and the mapping strategy applied to
/// `comm_graph` (Greedy/Rcb/Embed read it). `rank_grid` is the Cartesian
/// rank-grid shape when known ({0,0,0} otherwise) — Rcb bisects on it,
/// and Embed weighs candidate nodes by the built topology's hop
/// distances. `kind` must not be Flat — use make_flat_fabric / the
/// Runtime default for that.
std::unique_ptr<Fabric> make_fabric(FabricKind kind, MapKind mapping,
                                    int nranks, int ranks_per_node,
                                    double link_bw, double hop_latency,
                                    double base_alpha,
                                    const std::vector<CommEdge>& comm_graph,
                                    std::array<int, 3> rank_grid = {0, 0, 0});

std::unique_ptr<Fabric> make_flat_fabric(int nranks, int ranks_per_node);

}  // namespace brickx::netsim
