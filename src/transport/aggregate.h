#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/error.h"

namespace brickx::transport {

/// Deterministic node-leader aggregation protocol, generic over the
/// sub-message type so it is testable without the MPI runtime (simmpi
/// instantiates it with its Envelope-carrying staging record).
///
/// Every staged sub-message is tagged with its sender's current *commit
/// generation* — the number of commit() calls that rank has made so far. A
/// frame keyed (src_node, dst_node, gen) seals once every member of
/// src_node has committed past `gen`; the committing call that raises the
/// node minimum seals all newly eligible frames in (gen asc, dst_node asc)
/// order, with sub-messages inside a frame ordered by (member rank,
/// per-rank staging order). Grouping, seal order and sub order are all
/// pure functions of each rank's program, never of thread interleaving, so
/// the framed flows — and everything timed off them — are bit-deterministic.
///
/// Liveness contract: co-located ranks must pass commit points in equal
/// counts between exchanges (bulk-synchronous phase alignment). Every
/// brickx workload satisfies this: all ranks run the same per-round
/// post-sends → wait → collective sequence, and finalize() force-seals any
/// leftovers at run-body end.
template <class Sub>
class Aggregator {
 public:
  struct Frame {
    int src_node = 0;
    int dst_node = 0;
    std::int64_t gen = 0;
    std::vector<Sub> subs;
  };
  /// Invoked with each sealed frame, under the aggregator lock — seals are
  /// serialized in protocol order. Must not re-enter the aggregator.
  using SealFn = std::function<void(Frame&&)>;

  /// `node_of[r]` maps rank r to its node id (contiguous from 0).
  Aggregator(std::vector<int> node_of, SealFn seal)
      : node_of_(std::move(node_of)), seal_(std::move(seal)) {
    BX_CHECK(!node_of_.empty(), "aggregator needs at least one rank");
    int nodes = 0;
    for (int n : node_of_) {
      BX_CHECK(n >= 0, "negative node id");
      nodes = std::max(nodes, n + 1);
    }
    commits_.assign(node_of_.size(), 0);
    ords_.assign(node_of_.size(), 0);
    nodes_.resize(static_cast<std::size_t>(nodes));
    for (std::size_t r = 0; r < node_of_.size(); ++r)
      nodes_[static_cast<std::size_t>(node_of_[r])].members.push_back(
          static_cast<int>(r));
  }

  /// Stage one sub-message from `src_rank` toward `dst_node`. `defer`
  /// pushes it one generation later than the sender's current one (used to
  /// realize reorder faults as a deterministic displacement).
  void stage(int src_rank, int dst_node, Sub sub, bool defer = false) {
    std::lock_guard<std::mutex> lk(mu_);
    const auto r = static_cast<std::size_t>(src_rank);
    NodeState& ns = nodes_[static_cast<std::size_t>(node_of_[r])];
    const std::int64_t gen = commits_[r] + (defer ? 1 : 0);
    ns.pending[{gen, dst_node}].push_back(
        Item{src_rank, ords_[r]++, std::move(sub)});
    staged_ += 1;
  }

  /// Rank reached a commit point (wait entry, collective entry). Seals
  /// every frame of its node that became eligible.
  void commit(int rank) {
    std::lock_guard<std::mutex> lk(mu_);
    bump(rank, commits_[static_cast<std::size_t>(rank)] + 1);
  }

  /// Run-body end: this rank stages nothing further; once all members of a
  /// node finalize, all its remaining frames seal.
  void finalize(int rank) {
    std::lock_guard<std::mutex> lk(mu_);
    bump(rank, std::numeric_limits<std::int64_t>::max());
  }

  /// Sub-messages staged but not yet sealed (0 after all ranks finalize).
  [[nodiscard]] std::int64_t pending() const {
    std::lock_guard<std::mutex> lk(mu_);
    return staged_;
  }

 private:
  struct Item {
    int rank;
    std::int64_t ord;  ///< per-rank staging ordinal (program order)
    Sub sub;
  };
  struct NodeState {
    std::vector<int> members;
    /// (gen, dst_node) → staged items; map order is the seal order.
    std::map<std::pair<std::int64_t, int>, std::vector<Item>> pending;
  };

  // Precondition: mu_ held.
  void bump(int rank, std::int64_t count) {
    const auto r = static_cast<std::size_t>(rank);
    commits_[r] = std::max(commits_[r], count);
    NodeState& ns = nodes_[static_cast<std::size_t>(node_of_[r])];
    std::int64_t min_commit = std::numeric_limits<std::int64_t>::max();
    for (int m : ns.members)
      min_commit = std::min(min_commit, commits_[static_cast<std::size_t>(m)]);
    while (!ns.pending.empty() && ns.pending.begin()->first.first < min_commit)
      seal_front(ns);
  }

  // Precondition: mu_ held.
  void seal_front(NodeState& ns) {
    auto it = ns.pending.begin();
    std::vector<Item>& items = it->second;
    std::stable_sort(items.begin(), items.end(),
                     [](const Item& a, const Item& b) {
                       return a.rank != b.rank ? a.rank < b.rank
                                               : a.ord < b.ord;
                     });
    Frame f;
    f.src_node = node_of_[static_cast<std::size_t>(items.front().rank)];
    f.dst_node = it->first.second;
    f.gen = it->first.first;
    f.subs.reserve(items.size());
    for (Item& item : items) f.subs.push_back(std::move(item.sub));
    staged_ -= static_cast<std::int64_t>(items.size());
    ns.pending.erase(it);
    seal_(std::move(f));
  }

  std::vector<int> node_of_;
  SealFn seal_;
  mutable std::mutex mu_;
  std::vector<std::int64_t> commits_;  ///< per-rank commit generation
  std::vector<std::int64_t> ords_;     ///< per-rank staging ordinal
  std::vector<NodeState> nodes_;
  std::int64_t staged_ = 0;
};

}  // namespace brickx::transport
