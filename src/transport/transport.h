#pragma once

#include <cstdint>
#include <string>

namespace brickx::transport {

/// On-node transport tier selector (DESIGN.md §13).
///
///  * Flat   — every message, same-node or not, takes the fabric send path
///             (legacy behavior; the default everywhere, so existing runs
///             stay byte-identical).
///  * Shm    — same-node pairs short-circuit the fabric: contiguous
///             payloads are pointer handoffs, strided ones a single copy
///             through a mapped view, charged with the on-node model.
///  * ShmAgg — Shm, plus node-leader aggregation: co-located ranks'
///             inter-node sends are coalesced into one framed fabric flow
///             per (node, neighbor-node) pair and unpacked at the
///             receiving node.
enum class Kind : std::uint8_t { Flat, Shm, ShmAgg };

/// Stable lowercase name ("flat" / "shm" / "shm-agg"), used by CLI flags,
/// fuzz config serialization and reports.
[[nodiscard]] const char* kind_name(Kind k);

/// Parse a name produced by kind_name. Returns false (out untouched) on
/// anything else.
[[nodiscard]] bool parse_kind(const std::string& s, Kind* out);

/// Transport-tier traffic accounting, kept by the runtime that owns the
/// tier and merged into harness results. All counts are send-side.
struct Stats {
  std::int64_t onnode_msgs = 0;     ///< same-node messages kept off the fabric
  std::int64_t onnode_bytes = 0;    ///< payload bytes of those messages
  std::int64_t onnode_copies = 0;   ///< strided payloads copied through a view
  std::int64_t agg_frames = 0;      ///< framed fabric flows injected
  std::int64_t agg_submsgs = 0;     ///< sub-messages carried in those frames
  std::int64_t agg_frame_bytes = 0; ///< framed bytes (headers + payloads)

  void merge(const Stats& o) {
    onnode_msgs += o.onnode_msgs;
    onnode_bytes += o.onnode_bytes;
    onnode_copies += o.onnode_copies;
    agg_frames += o.agg_frames;
    agg_submsgs += o.agg_submsgs;
    agg_frame_bytes += o.agg_frame_bytes;
  }
};

}  // namespace brickx::transport
