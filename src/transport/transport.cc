#include "transport/transport.h"

namespace brickx::transport {

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::Flat:
      return "flat";
    case Kind::Shm:
      return "shm";
    case Kind::ShmAgg:
      return "shm-agg";
  }
  return "?";
}

bool parse_kind(const std::string& s, Kind* out) {
  if (s == "flat") {
    *out = Kind::Flat;
  } else if (s == "shm") {
    *out = Kind::Shm;
  } else if (s == "shm-agg") {
    *out = Kind::ShmAgg;
  } else {
    return false;
  }
  return true;
}

}  // namespace brickx::transport
