#pragma once

// Causal critical-path and wait-state analysis over the obs trace.
//
// From one Session::Run (per-rank spans + sender-side FlowEvents +
// receiver-side RecvEvents + CollEvents) the analyzer builds the implicit
// causality DAG of the simulated job:
//
//  * program-order edges  — each rank's timeline is totally ordered by the
//    virtual clock (single-writer RankLog, monotone t0);
//  * message edges        — a binding receive (avail > wait_start) makes the
//    receiver's progress depend on the sender's post; the RecvEvent carries
//    the full sender-side timeline (post -> inject -> wire -> arrival), so
//    no cross-rank pairing is needed;
//  * collective edges     — the n-th collective on every rank is the same
//    global rendezvous; its exit is bound by the latest entry (plus the
//    modeled barrier cost).
//
// The critical path is extracted with a backward walk from the anchor
// (the latest event on any rank, i.e. the virtual makespan) to t = 0:
// local stretches are attributed to the covering depth-0 spans per
// (rank x Cat x phase), binding receives route the path through the
// sender's message timeline (queueing / injection / contention stretch /
// wire / fault delay / receiver-side latency), and collectives route it
// through the latest-entering rank. Segment boundaries are shared doubles,
// so the identity  sum(segment durations) == makespan  holds exactly
// (telescoping), which analyze_run verifies (identity_ok).
//
// Determinism contract: everything here is a pure function of the
// deterministic virtual-clock data — same Config => byte-identical JSON
// and text reports (same contract as chrome_trace_json; golden-tested).
//
// With BRICKX_OBS=0 the null-sink logs carry no events and every function
// degrades to an empty (but well-formed) analysis — no gating needed.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/session.h"

namespace brickx::obs {

/// What a stretch of the critical path was spent on.
enum class SegKind : std::uint8_t {
  Local,       ///< rank-local time, attributed to the covering depth-0 span
  MsgQueue,    ///< post -> inject_start: sender NIC backlog
  MsgInject,   ///< nominal serialization at the endpoint rate
  MsgContend,  ///< injection stretch from fabric link sharing
  MsgWire,     ///< path latency (alpha / routed hops)
  MsgFault,    ///< injected Delay fault
  MsgRecvLat,  ///< receiver memory-space latency (device/UM alpha extra)
  Collective,  ///< barrier cost from the latest entry to the joint exit
  MsgOnNode,     ///< on-node shared-memory handoff (transport tier)
  MsgAggUnpack,  ///< receiver-node unpack of an aggregation frame
};

/// Stable composition key for a non-Local segment kind.
const char* seg_class(SegKind k);

/// One stretch of the critical path, [t0, t1] in virtual seconds, forward
/// time order. For Local segments `cat`/`name`/`step` describe the covering
/// depth-0 span (name == nullptr: clock time outside any span, keyed
/// "untracked"); for message segments `rank` is the side doing the work
/// (sender for queue/inject/contention/wire/fault, receiver for recv
/// latency).
struct PathSegment {
  int rank = 0;
  SegKind kind = SegKind::Local;
  Cat cat = Cat::Calc;
  const char* name = nullptr;  ///< static-lifetime span label (Local only)
  std::int64_t step = -1;      ///< covering span's step tag (Local only)
  double t0 = 0.0;
  double t1 = 0.0;
};

/// Wait-state taxonomy over the WHOLE run (every rank, warmup included),
/// independent of which events the critical path visits.
struct WaitStates {
  double late_sender_s = 0.0;   ///< blocked before the sender even posted
  double transfer_s = 0.0;      ///< blocked on an in-flight transfer
  std::int64_t binding_waits = 0;      ///< receives that blocked the receiver
  std::int64_t late_sender_waits = 0;  ///< subset where post > wait_start
  std::int64_t late_receiver_msgs = 0; ///< fully hidden (avail <= wait_start)
  double queue_s = 0.0;       ///< sender NIC backlog over all sends
  double contention_s = 0.0;  ///< injection stretch beyond the nominal rate
  double fault_delay_s = 0.0; ///< injected Delay seconds on received msgs
  double recv_latency_s = 0.0;  ///< receiver memory-space arrival surcharge
  double coll_skew_s = 0.0;   ///< sum of (latest entry - own entry)
  std::int64_t collectives = 0;  ///< aligned collective rendezvous count
  double max_sharing = 1.0;   ///< peak link-sharing factor seen by any send
};

/// Full analysis of one run.
struct RunAnalysis {
  std::string label;
  int nranks = 0;
  double makespan = 0.0;      ///< latest event time on any rank (anchor)
  double path_seconds = 0.0;  ///< sum of segment durations
  bool identity_ok = true;    ///< path tiles [0, makespan] exactly
  std::vector<PathSegment> segments;  ///< the critical path, forward order

  /// Path composition: class -> seconds, sorted by seconds descending then
  /// class name (deterministic). Classes are cat_name() strings for Local
  /// segments, seg_class() strings otherwise, plus "untracked".
  std::vector<std::pair<std::string, double>> composition;

  std::vector<double> rank_seconds;  ///< per-rank time on the path

  /// Rank-local critical-path time per (rank x Cat x phase). `phase` is the
  /// covering span name, suffixed "/warmup" for warmup-step spans
  /// (step <= -2) so measured and warmup work stay separable.
  struct Attr {
    int rank = 0;
    Cat cat = Cat::Calc;
    std::string phase;
    double seconds = 0.0;
  };
  std::vector<Attr> attribution;  ///< sorted by (rank, cat, phase)

  WaitStates waits;

  /// Overlap potential: message time on the critical path is the portion
  /// concurrent-eligible with interior compute, so the headroom a perfect
  /// compute/communication overlap could reclaim is bounded by
  /// min(comm on path, calc on path) — an upper-bound estimate.
  double comm_on_path = 0.0;
  double calc_on_path = 0.0;
  double overlap_headroom = 0.0;
};

/// Analyze one run. Pure and deterministic; empty logs give an empty
/// analysis with makespan 0.
RunAnalysis analyze_run(const Session::Run& run);

/// Byte-deterministic reports over every run of a session (report.cc).
[[nodiscard]] std::string analysis_json(const Session& s);
[[nodiscard]] std::string analysis_text(const Session& s);

/// Writes text when `path` ends in ".txt", JSON otherwise.
void write_analysis(const Session& s, const std::string& path);

}  // namespace brickx::obs
