#pragma once

// A Session aggregates the traces of several simulated jobs (one Collector
// per harness::run) so a bench binary that sweeps many configurations can
// export one Chrome trace / metrics artifact covering all of them.
//
// Activation is a process-global ambient: benches activate a Session with
// Session::Scope; harness::run absorbs its Collector into the active
// session after each experiment. Only the main thread activates/absorbs,
// so no locking is needed.

#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace brickx::obs {

#if BRICKX_OBS

class Session {
 public:
  struct Run {
    std::string label;  ///< e.g. "MemMap/um"
    int nranks = 0;
    std::vector<RankLog> logs;  ///< one per rank
  };

  void absorb(std::string label, Collector&& c) {
    Run r;
    r.label = std::move(label);
    r.nranks = c.nranks();
    r.logs = c.take_logs();
    runs_.push_back(std::move(r));
  }

  [[nodiscard]] const std::vector<Run>& runs() const { return runs_; }
  [[nodiscard]] bool empty() const { return runs_.empty(); }

  /// The session harness::run currently reports into (null when none).
  static Session* active();

  /// Activates a session for the enclosing scope; restores the previous
  /// active session (usually none) on exit.
  class Scope {
   public:
    explicit Scope(Session& s);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Session* prev_;
  };

 private:
  std::vector<Run> runs_;
};

#else  // !BRICKX_OBS

class Session {
 public:
  struct Run {
    std::string label;
    int nranks = 0;
    std::vector<RankLog> logs;
  };

  void absorb(const std::string&, Collector&&) {}
  [[nodiscard]] const std::vector<Run>& runs() const {
    static const std::vector<Run> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] bool empty() const { return true; }
  static Session* active() { return nullptr; }

  class Scope {
   public:
    explicit Scope(Session&) {}
    ~Scope() {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
  };
};

#endif  // BRICKX_OBS

}  // namespace brickx::obs
