#pragma once

// Observability core: a per-rank span tracer and metrics registry stamped
// on the simmpi *virtual* clock, so traces and metrics are as deterministic
// as the simulation itself (same Config => byte-identical artifacts).
//
// Layering: obs depends only on common. simmpi, memmap, gpusim and harness
// all emit into it through an ambient per-thread binding (one rank thread =
// one RankLog), so deep library code needs no plumbed-through handles.
//
// Compile-time gate: BRICKX_OBS (default 1; configure with
// -DBRICKX_OBS=OFF). When 0, every type in this header collapses to an
// inline no-op null sink — callers compile unchanged and the layer costs
// nothing at runtime.

#ifndef BRICKX_OBS
#define BRICKX_OBS 1
#endif

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.h"

namespace brickx::obs {

/// Span categories, mirroring the paper's phase vocabulary: the harness's
/// calc/pack/call/wait breakdown plus the on-node data-movement phases the
/// paper attributes time to (datatype packing, mmap view setup, unified-
/// memory page migration) and collectives.
enum class Cat : std::uint8_t {
  Calc,
  Pack,
  Call,
  Wait,
  DtPack,
  MmapSetup,
  UmMigrate,
  Collective,
  Setup,   ///< exchange-plan construction (build-once or forced replan)
  OnNode,  ///< transport-tier on-node movement (view copies, frame staging)
};
inline constexpr int kCatCount = 10;

/// Stable lowercase category string ("calc", "dt_pack", ...).
inline const char* cat_name(Cat c) {
  switch (c) {
    case Cat::Calc:
      return "calc";
    case Cat::Pack:
      return "pack";
    case Cat::Call:
      return "call";
    case Cat::Wait:
      return "wait";
    case Cat::DtPack:
      return "dt_pack";
    case Cat::MmapSetup:
      return "mmap_setup";
    case Cat::UmMigrate:
      return "um_migrate";
    case Cat::Collective:
      return "collective";
    case Cat::Setup:
      return "setup";
    case Cat::OnNode:
      return "onnode";
  }
  return "?";
}

/// One closed span on a rank's timeline. Times are virtual seconds.
struct SpanEvent {
  Cat cat;
  const char* name;   ///< static-lifetime label
  std::int64_t step;  ///< harness timestep for measured phase spans; -1 else
  int depth;          ///< nesting depth at open (0 = top level)
  double t0 = 0.0;
  double t1 = 0.0;
};

/// One point-to-point message, recorded sender-side (subsumes the old
/// simmpi MsgEvent trace). Exported as flow arrows in Chrome traces.
struct FlowEvent {
  int src;
  int dst;
  int tag;
  std::uint64_t bytes;
  double depart;  ///< sender NIC finished injecting
  double arrive;  ///< receiver-visible arrival of the last byte
  /// Virtual time the send was posted (depart − post = NIC queueing +
  /// injection). The defaulted tail is appended in declaration order so
  /// older aggregate initializers still compile.
  double post = 0.0;
  double inject_start = 0.0;    ///< first byte entered the sender NIC
  double inject_nominal = 0.0;  ///< bytes / endpoint bw (uncontended inject)
  double fault_delay = 0.0;     ///< injected Delay seconds inside `arrive`
  double sharing = 1.0;         ///< peak link-sharing factor on the route
  bool onnode = false;          ///< took the on-node shared-memory tier
  /// Sub-messages in the aggregation frame this message rode in (0 when it
  /// was not aggregated).
  int agg_subs = 0;
  /// Partition index when this flow carries one partition of a partitioned
  /// request (-1 for whole-message traffic). Partition-granularity flow
  /// arrows are what let the analyzer convert overlap headroom into
  /// measured hiding.
  int part = -1;
};

/// One matched receive, recorded receiver-side at the wait() that consumed
/// it. Self-contained: the sender-side timeline (post → inject → arrival)
/// rides in on the envelope, so the analyzer never has to re-pair flows
/// across ranks (robust under reorder faults). Times are virtual seconds.
struct RecvEvent {
  int src = 0;
  int tag = 0;
  std::uint64_t bytes = 0;
  double post = 0.0;            ///< sender clock when the send was posted
  double inject_start = 0.0;    ///< first byte entered the sender NIC
  double depart = 0.0;          ///< sender NIC finished injecting
  double inject_nominal = 0.0;  ///< bytes / endpoint bw (uncontended inject)
  double arrive = 0.0;          ///< raw arrival (fault delay included)
  double fault_delay = 0.0;     ///< injected Delay seconds inside `arrive`
  double sharing = 1.0;         ///< peak link-sharing factor on the route
  double wait_start = 0.0;      ///< receiver clock when wait() matched
  double avail = 0.0;           ///< arrive + receiver memory-space latency
  bool onnode = false;          ///< took the on-node shared-memory tier
  /// Receiver-side aggregation unpack seconds inside `arrive` (cumulative
  /// over the frame's sub table up to and including this sub; 0 when the
  /// message was not aggregated).
  double agg_unpack = 0.0;
  /// Partition index when this receive consumed one partition of a
  /// partitioned request (-1 for whole-message receives). Each consumed
  /// partition records its own event, so message edges in the causality
  /// DAG carry partition granularity for free.
  int part = -1;
};

/// One collective rendezvous on a rank's timeline. All ranks record the
/// same ordinal for the same collective (collectives are global and every
/// rank participates), which is what lets the analyzer align the n-th
/// entries across ranks into one barrier edge.
struct CollEvent {
  double entry = 0.0;  ///< this rank's clock entering the collective
  double exit = 0.0;   ///< synchronized clock leaving it (same on all ranks)
};

enum class MetricKind : std::uint8_t { Counter, Gauge, Hist };

/// A named metric: monotonic counter, max-gauge, or Stats-backed histogram.
struct Metric {
  MetricKind kind = MetricKind::Counter;
  std::int64_t value = 0;  ///< counter sum
  double gauge = 0.0;      ///< max-gauge watermark
  Stats hist;
};

#if BRICKX_OBS

/// Event log of one rank. Single-writer: only that rank's thread appends,
/// so recording is lock-free and ordering is deterministic.
class RankLog {
 public:
  /// Open a span at t0; returns a stable index for close_span.
  std::size_t open_span(Cat cat, const char* name, std::int64_t step,
                        double t0);
  void close_span(std::size_t idx, double t1);
  /// Record an already-closed span [t0, t1] at the current depth.
  void note_span(Cat cat, const char* name, double t0, double t1);

  void flow(const FlowEvent& f) { flows_.push_back(f); }
  void clear_flows() { flows_.clear(); }
  void recv(const RecvEvent& r) { recvs_.push_back(r); }
  void collective(const CollEvent& c) { colls_.push_back(c); }

  void counter_add(std::string_view name, std::int64_t v);
  void gauge_max(std::string_view name, double v);
  void hist_add(std::string_view name, double v);

  [[nodiscard]] const std::vector<SpanEvent>& spans() const { return spans_; }
  [[nodiscard]] const std::vector<FlowEvent>& flows() const { return flows_; }
  [[nodiscard]] const std::vector<RecvEvent>& recvs() const { return recvs_; }
  [[nodiscard]] const std::vector<CollEvent>& collectives() const {
    return colls_;
  }
  [[nodiscard]] const std::map<std::string, Metric, std::less<>>& metrics()
      const {
    return metrics_;
  }
  [[nodiscard]] int depth() const { return depth_; }

 private:
  Metric& metric(std::string_view name, MetricKind kind);

  int depth_ = 0;
  std::vector<SpanEvent> spans_;
  std::vector<FlowEvent> flows_;
  std::vector<RecvEvent> recvs_;
  std::vector<CollEvent> colls_;
  std::map<std::string, Metric, std::less<>> metrics_;
};

/// One RankLog per rank of a simulated job. Install on a Runtime with
/// Runtime::set_collector; the harness creates one per experiment.
class Collector {
 public:
  explicit Collector(int nranks)
      : logs_(static_cast<std::size_t>(nranks)) {}

  [[nodiscard]] int nranks() const { return static_cast<int>(logs_.size()); }
  [[nodiscard]] RankLog& log(int rank) {
    return logs_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] const RankLog& log(int rank) const {
    return logs_[static_cast<std::size_t>(rank)];
  }
  [[nodiscard]] std::vector<RankLog> take_logs() { return std::move(logs_); }

 private:
  std::vector<RankLog> logs_;
};

/// --- ambient binding ------------------------------------------------------
/// Each rank thread is bound to (its RankLog, a pointer into its VClock's
/// time). Library code then emits spans/metrics with no handle plumbing.

void bind(RankLog* log, const double* vnow);
void unbind();
[[nodiscard]] RankLog* ambient_log();
/// Current virtual time of the bound clock (0 when unbound).
[[nodiscard]] double ambient_now();

class BindGuard {
 public:
  BindGuard(RankLog* log, const double* vnow) { bind(log, vnow); }
  ~BindGuard() { unbind(); }
  BindGuard(const BindGuard&) = delete;
  BindGuard& operator=(const BindGuard&) = delete;
};

/// RAII span on the ambient log; a no-op when the thread is unbound.
/// `step` tags harness phase spans with their timestep (see phase_sum).
class ObsSpan {
 public:
  explicit ObsSpan(Cat cat, const char* name = nullptr,
                   std::int64_t step = -1);
  ~ObsSpan();
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  RankLog* log_ = nullptr;
  std::size_t idx_ = 0;
};

/// Record a span [now, now + seconds] for a cost computed *before* the
/// caller advances the clock by it (the gpusim touch-hook pattern).
/// Records nothing when seconds == 0 or the thread is unbound.
void note_cost(Cat cat, const char* name, double seconds);

/// Zero-duration marker span at the current virtual time.
void instant(Cat cat, const char* name);

/// Ambient metrics; no-ops when the thread is unbound.
void counter_add(std::string_view name, std::int64_t v);
void gauge_max(std::string_view name, double v);
void hist_add(std::string_view name, double v);

/// Sum the durations of top-level phase spans matching (cat, name) with
/// step >= 0, grouping per step: each step's spans are summed first, then
/// added to the running total. This mirrors the harness's original
/// per-step `out.phase += (a) + (b)` accumulation order exactly, so phase
/// aggregates computed from spans are bit-identical to the seed's.
double phase_sum(const RankLog& log, Cat cat, const char* name);

/// Merge per-rank metrics (counters sum, gauges max, hists Stats::merge)
/// in rank order — deterministic.
std::map<std::string, Metric, std::less<>> merged_metrics(
    const std::vector<RankLog>& logs);

#else  // !BRICKX_OBS — null sink: same API, nothing recorded.

class RankLog {
 public:
  std::size_t open_span(Cat, const char*, std::int64_t, double) { return 0; }
  void close_span(std::size_t, double) {}
  void note_span(Cat, const char*, double, double) {}
  void flow(const FlowEvent&) {}
  void clear_flows() {}
  void recv(const RecvEvent&) {}
  void collective(const CollEvent&) {}
  void counter_add(std::string_view, std::int64_t) {}
  void gauge_max(std::string_view, double) {}
  void hist_add(std::string_view, double) {}
  [[nodiscard]] const std::vector<SpanEvent>& spans() const {
    static const std::vector<SpanEvent> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] const std::vector<FlowEvent>& flows() const {
    static const std::vector<FlowEvent> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] const std::vector<RecvEvent>& recvs() const {
    static const std::vector<RecvEvent> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] const std::vector<CollEvent>& collectives() const {
    static const std::vector<CollEvent> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] const std::map<std::string, Metric, std::less<>>& metrics()
      const {
    static const std::map<std::string, Metric, std::less<>> kEmpty;
    return kEmpty;
  }
  [[nodiscard]] int depth() const { return 0; }
};

class Collector {
 public:
  explicit Collector(int nranks) : nranks_(nranks) {}
  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] RankLog& log(int) { return log_; }
  [[nodiscard]] const RankLog& log(int) const { return log_; }
  [[nodiscard]] std::vector<RankLog> take_logs() { return {}; }

 private:
  int nranks_;
  RankLog log_;
};

inline void bind(RankLog*, const double*) {}
inline void unbind() {}
inline RankLog* ambient_log() { return nullptr; }
inline double ambient_now() { return 0.0; }

class BindGuard {
 public:
  BindGuard(RankLog*, const double*) {}
  ~BindGuard() {}
  BindGuard(const BindGuard&) = delete;
  BindGuard& operator=(const BindGuard&) = delete;
};

class ObsSpan {
 public:
  explicit ObsSpan(Cat, const char* = nullptr, std::int64_t = -1) {}
  ~ObsSpan() {}
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
};

inline void note_cost(Cat, const char*, double) {}
inline void instant(Cat, const char*) {}
inline void counter_add(std::string_view, std::int64_t) {}
inline void gauge_max(std::string_view, double) {}
inline void hist_add(std::string_view, double) {}
inline double phase_sum(const RankLog&, Cat, const char*) { return 0.0; }
inline std::map<std::string, Metric, std::less<>> merged_metrics(
    const std::vector<RankLog>&) {
  return {};
}

#endif  // BRICKX_OBS

}  // namespace brickx::obs
