#include "obs/obs.h"

namespace brickx::obs {

#if BRICKX_OBS

std::size_t RankLog::open_span(Cat cat, const char* name, std::int64_t step,
                               double t0) {
  SpanEvent ev;
  ev.cat = cat;
  ev.name = name != nullptr ? name : cat_name(cat);
  ev.step = step;
  ev.depth = depth_++;
  ev.t0 = t0;
  ev.t1 = t0;
  spans_.push_back(ev);
  return spans_.size() - 1;
}

void RankLog::close_span(std::size_t idx, double t1) {
  spans_[idx].t1 = t1;
  --depth_;
}

void RankLog::note_span(Cat cat, const char* name, double t0, double t1) {
  SpanEvent ev;
  ev.cat = cat;
  ev.name = name != nullptr ? name : cat_name(cat);
  ev.step = -1;
  ev.depth = depth_;
  ev.t0 = t0;
  ev.t1 = t1;
  spans_.push_back(ev);
}

Metric& RankLog::metric(std::string_view name, MetricKind kind) {
  auto it = metrics_.find(name);
  if (it == metrics_.end())
    it = metrics_.emplace(std::string(name), Metric{kind, 0, 0.0, Stats{}})
             .first;
  return it->second;
}

void RankLog::counter_add(std::string_view name, std::int64_t v) {
  metric(name, MetricKind::Counter).value += v;
}

void RankLog::gauge_max(std::string_view name, double v) {
  Metric& m = metric(name, MetricKind::Gauge);
  if (v > m.gauge) m.gauge = v;
}

void RankLog::hist_add(std::string_view name, double v) {
  metric(name, MetricKind::Hist).hist.add(v);
}

namespace {
struct Context {
  RankLog* log = nullptr;
  const double* vnow = nullptr;
};
thread_local Context g_ctx;
}  // namespace

void bind(RankLog* log, const double* vnow) { g_ctx = Context{log, vnow}; }
void unbind() { g_ctx = Context{}; }
RankLog* ambient_log() { return g_ctx.log; }
double ambient_now() { return g_ctx.vnow != nullptr ? *g_ctx.vnow : 0.0; }

ObsSpan::ObsSpan(Cat cat, const char* name, std::int64_t step) {
  if (g_ctx.log == nullptr) return;
  log_ = g_ctx.log;
  idx_ = log_->open_span(cat, name, step, *g_ctx.vnow);
}

ObsSpan::~ObsSpan() {
  if (log_ != nullptr) log_->close_span(idx_, *g_ctx.vnow);
}

void note_cost(Cat cat, const char* name, double seconds) {
  if (g_ctx.log == nullptr || seconds == 0.0) return;
  const double t = *g_ctx.vnow;
  g_ctx.log->note_span(cat, name, t, t + seconds);
}

void instant(Cat cat, const char* name) {
  if (g_ctx.log == nullptr) return;
  const double t = g_ctx.vnow != nullptr ? *g_ctx.vnow : 0.0;
  g_ctx.log->note_span(cat, name, t, t);
}

void counter_add(std::string_view name, std::int64_t v) {
  if (g_ctx.log != nullptr) g_ctx.log->counter_add(name, v);
}

void gauge_max(std::string_view name, double v) {
  if (g_ctx.log != nullptr) g_ctx.log->gauge_max(name, v);
}

void hist_add(std::string_view name, double v) {
  if (g_ctx.log != nullptr) g_ctx.log->hist_add(name, v);
}

double phase_sum(const RankLog& log, Cat cat, const char* name) {
  const std::string_view want(name);
  double total = 0.0;
  double group = 0.0;
  std::int64_t cur = -1;
  for (const SpanEvent& s : log.spans()) {
    if (s.cat != cat || s.depth != 0 || s.step < 0) continue;
    if (std::string_view(s.name) != want) continue;
    if (s.step != cur) {
      total += group;
      group = 0.0;
      cur = s.step;
    }
    group += s.t1 - s.t0;
  }
  total += group;
  return total;
}

std::map<std::string, Metric, std::less<>> merged_metrics(
    const std::vector<RankLog>& logs) {
  std::map<std::string, Metric, std::less<>> out;
  for (const RankLog& lg : logs) {
    for (const auto& [name, m] : lg.metrics()) {
      auto it = out.find(name);
      if (it == out.end()) {
        out.emplace(name, m);
        continue;
      }
      Metric& dst = it->second;
      switch (m.kind) {
        case MetricKind::Counter:
          dst.value += m.value;
          break;
        case MetricKind::Gauge:
          if (m.gauge > dst.gauge) dst.gauge = m.gauge;
          break;
        case MetricKind::Hist:
          dst.hist.merge(m.hist);
          break;
      }
    }
  }
  return out;
}

#endif  // BRICKX_OBS

}  // namespace brickx::obs
